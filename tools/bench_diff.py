#!/usr/bin/env python3
"""Compare two bench_ext_serve_throughput.csv runs and flag regressions.

Usage: bench_diff.py BASELINE.csv CANDIDATE.csv [--threshold PCT]

Rows are joined on their configuration key (sweep, shards, policy,
queue_capacity, producers, pinned, hardware_threads) and compared on
msgs_per_sec. A row whose candidate throughput is more than --threshold
percent (default 20) below the baseline is a regression.

Exit status: 0 when no regression, 1 when at least one row regressed,
2 on malformed input. CI runs this warn-only (continue-on-error): bench
numbers on shared runners are noisy, so the report is advisory — a human
reads the table before believing it.
"""

import argparse
import csv
import sys

KEY_FIELDS = ("sweep", "shards", "policy", "queue_capacity", "producers",
              "pinned", "hardware_threads")
METRIC = "msgs_per_sec"


def load(path):
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))
    if not rows:
        sys.exit(f"bench_diff: {path}: no data rows")
    table = {}
    for row in rows:
        try:
            key = tuple(row[k] for k in KEY_FIELDS)
            value = float(row[METRIC])
        except (KeyError, ValueError) as err:
            sys.exit(f"bench_diff: {path}: bad row {row}: {err}")
        table[key] = value
    return table


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=20.0,
                        help="regression threshold in percent (default 20)")
    args = parser.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)
    shared = sorted(set(base) & set(cand))
    if not shared:
        sys.exit("bench_diff: the two runs share no configuration rows")

    regressions = []
    print(f"{'configuration':<60} {'baseline':>12} {'candidate':>12} {'delta':>8}")
    for key in shared:
        b, c = base[key], cand[key]
        delta = 0.0 if b == 0 else (c - b) / b * 100.0
        label = " ".join(f"{k}={v}" for k, v in zip(KEY_FIELDS, key))
        flag = ""
        if delta < -args.threshold:
            regressions.append((label, b, c, delta))
            flag = "  << REGRESSION"
        print(f"{label:<60} {b:>12.1f} {c:>12.1f} {delta:>+7.1f}%{flag}")

    only_base = set(base) - set(cand)
    only_cand = set(cand) - set(base)
    if only_base:
        print(f"note: {len(only_base)} row(s) only in baseline (ignored)")
    if only_cand:
        print(f"note: {len(only_cand)} row(s) only in candidate (ignored)")

    if regressions:
        print(f"\n{len(regressions)} row(s) regressed more than "
              f"{args.threshold:.0f}% on {METRIC}:")
        for label, b, c, delta in regressions:
            print(f"  {label}: {b:.1f} -> {c:.1f} ({delta:+.1f}%)")
        return 1
    print(f"\nno regression beyond {args.threshold:.0f}% across "
          f"{len(shared)} shared row(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
