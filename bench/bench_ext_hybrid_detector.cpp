// Extension experiment — the plausibility companion detector (paper
// Sec. V-C: consistency checks "can work parallel as an additional detector
// along with VEHIGAN").
//
// Compares, on every attack of the matrix:
//   * VEHIGAN_10^10 alone,
//   * the rule-based PlausibilityDetector alone,
//   * the Hybrid (max of calibrated scores) fusion of the two,
// showing that the fusion keeps VEHIGAN's wins on complex maneuvers while
// inheriting the rule checker's sharpness on raw physics violations.

#include <iostream>

#include "bench_common.hpp"
#include "mbds/plausibility.hpp"

using namespace vehigan;

int main() {
  experiments::Workspace workspace(bench::bench_config());
  const auto& data = workspace.data();
  const auto& bundle = workspace.bundle();
  const std::size_t m = std::min<std::size_t>(10, bundle.detectors().size());

  std::cout << "=== Extension: VEHIGAN + plausibility hybrid (Sec. V-C suggestion) ===\n\n";

  auto vehigan = std::shared_ptr<mbds::VehiGan>(bundle.make_ensemble(m, m, 61));
  auto plausibility =
      std::make_shared<mbds::PlausibilityDetector>(data.scaler, workspace.config().train_sim.dt_s);
  plausibility->fit(data.train_windows);
  mbds::HybridDetector hybrid(vehigan, plausibility);
  hybrid.fit(data.train_windows);

  const std::vector<float> benign_gan = vehigan->score_all(data.test_benign);
  const std::vector<float> benign_plaus = plausibility->score_all(data.test_benign);
  const std::vector<float> benign_hybrid = hybrid.score_all(data.test_benign);

  experiments::TablePrinter table({"Attack", "VehiGAN", "Plausibility", "Hybrid"});
  double sum_gan = 0.0, sum_plaus = 0.0, sum_hybrid = 0.0;
  int hybrid_at_least_best = 0;
  for (const auto& attack : data.test_attacks) {
    const double a_gan = metrics::auroc(benign_gan, vehigan->score_all(attack.malicious));
    const double a_plaus =
        metrics::auroc(benign_plaus, plausibility->score_all(attack.malicious));
    const double a_hybrid = metrics::auroc(benign_hybrid, hybrid.score_all(attack.malicious));
    sum_gan += a_gan;
    sum_plaus += a_plaus;
    sum_hybrid += a_hybrid;
    if (a_hybrid + 0.05 >= std::max(a_gan, a_plaus)) ++hybrid_at_least_best;
    table.add_row(attack.attack_name, {a_gan, a_plaus, a_hybrid});
  }
  table.add_row("Average", {sum_gan / 35.0, sum_plaus / 35.0, sum_hybrid / 35.0});
  table.print();
  std::cout << "\nattacks where the hybrid is within 0.05 of the best member: "
            << hybrid_at_least_best << "/35\n"
            << "(plausibility is blind to ConstantPositionOffset by construction — only\n"
            << " additional raw features or map checks could cover it, per the paper.)\n";
  bench::write_telemetry_sidecar("ext_hybrid_detector");
  return 0;
}
