#pragma once

// Shared plumbing for the per-table/per-figure bench harnesses.
//
// Every harness runs against the same cached experiment workspace: the first
// binary to run trains the 60-model WGAN grid (~7 minutes on one core) and
// caches it under .cache/vehigan/<model-config-hash>/; all others load it.
// Set VEHIGAN_BENCH_SCALE=quick to run the whole suite at smoke-test scale.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "experiments/table_printer.hpp"
#include "experiments/workspace.hpp"
#include "metrics/roc.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/exporter.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/statusz.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace vehigan::bench {

inline experiments::ExperimentConfig bench_config() {
  const char* scale = std::getenv("VEHIGAN_BENCH_SCALE");
  if (scale != nullptr && std::string(scale) == "quick") {
    return experiments::ExperimentConfig::quick();
  }
  return experiments::ExperimentConfig::standard();
}

// ------------------------------------------------------- timing helpers ---
// Shared ad-hoc timing (the google-benchmark registrations stay the
// rigorous numbers); both build on util::Stopwatch so every harness reads
// the same steady clock.

/// Mean milliseconds per call over `reps` back-to-back calls of `body`.
template <typename F>
double mean_ms(int reps, F&& body) {
  util::Stopwatch sw;
  for (int r = 0; r < reps; ++r) benchmark::DoNotOptimize(body());
  return sw.elapsed_ms() / reps;
}

/// Best-of-reps milliseconds for one call of `body` (min, not mean: the
/// minimum is the least noise-contaminated estimate on a shared machine).
template <typename F>
double best_of_ms(int reps, F&& body) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    util::Stopwatch sw;
    benchmark::DoNotOptimize(body());
    best = std::min(best, sw.elapsed_ms());
  }
  return best;
}

// ------------------------------------------------ tracing / flight box ---
// Env-driven because google-benchmark owns argv. Call init at the top of
// main and finish after the runs:
//   VEHIGAN_TRACE_OUT=<path>     enable per-message causal tracing; write a
//                                Chrome trace_event JSON timeline at finish
//   VEHIGAN_TRACE_SAMPLE=<n>     trace 1-in-n senders (default 64)
//   VEHIGAN_BLACKBOX_OUT=<path>  arm the flight recorder: crash handler +
//                                dump at finish (and on service drain/stop)
//   VEHIGAN_PROFILE_OUT=<path>   start the sampling CPU profiler; write a
//                                collapsed-stack (flamegraph) sidecar at
//                                finish (<path>.chrome.json alongside)
//   VEHIGAN_PROFILE_HZ=<n>       sampling rate (default 99)
//   VEHIGAN_STATUSZ_OUT=<path>   write a statusz ops snapshot at finish

inline void init_observability_from_env() {
  if (const char* trace_out = std::getenv("VEHIGAN_TRACE_OUT"); trace_out != nullptr) {
    std::uint32_t sample = 64;
    if (const char* s = std::getenv("VEHIGAN_TRACE_SAMPLE"); s != nullptr) {
      sample = static_cast<std::uint32_t>(std::strtoul(s, nullptr, 10));
    }
    telemetry::TraceRecorder::global().enable(sample);
    telemetry::TraceRecorder::global().set_thread_name("bench-main");
  }
  if (const char* blackbox = std::getenv("VEHIGAN_BLACKBOX_OUT"); blackbox != nullptr) {
    telemetry::FlightRecorder::global().set_dump_path(blackbox);
    telemetry::FlightRecorder::global().install_crash_handler(blackbox);
  }
  if (std::getenv("VEHIGAN_PROFILE_OUT") != nullptr) {
    std::uint32_t hz = telemetry::Profiler::kDefaultHz;
    if (const char* s = std::getenv("VEHIGAN_PROFILE_HZ"); s != nullptr) {
      hz = static_cast<std::uint32_t>(std::strtoul(s, nullptr, 10));
    }
    if (!telemetry::Profiler::global().start(hz)) {
      std::cerr << "warning: VEHIGAN_PROFILE_OUT set but profiler failed to start\n";
    }
  }
  if (const char* statusz = std::getenv("VEHIGAN_STATUSZ_OUT"); statusz != nullptr) {
    telemetry::Statusz::global().set_dump_path(statusz);
  }
}

inline void finish_observability_from_env() {
  if (const char* trace_out = std::getenv("VEHIGAN_TRACE_OUT"); trace_out != nullptr) {
    telemetry::TraceRecorder::global().export_json(trace_out);
    std::cout << "trace timeline: " << trace_out << " ("
              << telemetry::TraceRecorder::global().event_count() << " events, "
              << telemetry::TraceRecorder::global().dropped() << " dropped)\n";
  }
  if (std::getenv("VEHIGAN_BLACKBOX_OUT") != nullptr &&
      telemetry::FlightRecorder::global().dump_if_configured()) {
    std::cout << "flight recorder dump: " << std::getenv("VEHIGAN_BLACKBOX_OUT") << "\n";
  }
  if (const char* profile_out = std::getenv("VEHIGAN_PROFILE_OUT");
      profile_out != nullptr) {
    auto& profiler = telemetry::Profiler::global();
    profiler.stop();
    const auto acc = profiler.accounting();
    profiler.write_collapsed(profile_out);
    profiler.write_chrome_trace(std::string(profile_out) + ".chrome.json");
    std::cout << "cpu profile: " << profile_out << " (" << acc.kept << " samples kept, "
              << (acc.overwritten + acc.torn + acc.lane_overflow) << " dropped)\n";
  }
  if (const char* statusz = std::getenv("VEHIGAN_STATUSZ_OUT"); statusz != nullptr) {
    if (telemetry::Statusz::global().write(statusz)) {
      std::cout << "statusz snapshot: " << statusz << "\n";
    }
  }
}

// ---------------------------------------------------- telemetry sidecar ---

/// Dumps the process-wide metrics registry next to the bench's results:
/// bench_results/<name>.telemetry.prom (Prometheus text exposition) and
/// bench_results/<name>.telemetry.csv. Call at the end of main so every
/// harness leaves a machine-readable record of what its run actually did
/// (windows scored, cache hits, per-stage latency distributions).
inline void write_telemetry_sidecar(const std::string& name) {
  const telemetry::MetricsSnapshot snap = telemetry::MetricsRegistry::global().snapshot();
  std::filesystem::create_directories("bench_results");
  const std::string base = "bench_results/" + name + ".telemetry";
  telemetry::write_file_atomic(base + ".prom", telemetry::to_prometheus(snap));
  telemetry::write_file_atomic(base + ".csv", telemetry::to_csv(snap));
  std::cout << "telemetry sidecar: " << base << ".{prom,csv}\n";
}

/// Per-member scores of one window set, precomputed so that ensemble sweeps
/// over (m, k) reuse forward passes instead of re-running the critics.
/// scores[member][window].
struct ScoreMatrix {
  std::vector<std::vector<float>> scores;

  /// Ensemble score of window `w` over an explicit member subset.
  [[nodiscard]] float ensemble(const std::vector<std::size_t>& members, std::size_t w) const {
    double sum = 0.0;
    for (std::size_t m : members) sum += scores[m][w];
    return static_cast<float>(sum / static_cast<double>(members.size()));
  }

  [[nodiscard]] std::size_t windows() const { return scores.empty() ? 0 : scores[0].size(); }
};

/// Scores `windows` with the top `m` detectors of the bundle (rank order).
inline ScoreMatrix score_matrix(const mbds::VehiGanBundle& bundle, std::size_t m,
                                const features::WindowSet& windows) {
  ScoreMatrix matrix;
  matrix.scores.reserve(m);
  for (std::size_t rank = 0; rank < m; ++rank) {
    matrix.scores.push_back(bundle.top(rank)->score_all(windows));
  }
  return matrix;
}

/// VEHIGAN_m^k scores with a fresh random k-subset per window, from
/// precomputed member scores (paper Sec. III-A2 semantics).
inline std::vector<float> ensemble_scores(const ScoreMatrix& matrix, std::size_t m,
                                          std::size_t k, util::Rng& rng) {
  std::vector<float> out(matrix.windows());
  for (std::size_t w = 0; w < out.size(); ++w) {
    const auto members = rng.sample_without_replacement(m, k);
    double sum = 0.0;
    for (std::size_t member : members) sum += matrix.scores[member][w];
    out[w] = static_cast<float>(sum / static_cast<double>(k));
  }
  return out;
}

/// Fraction of windows whose random-k ensemble score exceeds the mean
/// threshold of the drawn members (the Fig. 7 FPR measurement).
inline double ensemble_flag_rate(const mbds::VehiGanBundle& bundle, const ScoreMatrix& matrix,
                                 std::size_t m, std::size_t k, util::Rng& rng) {
  if (matrix.windows() == 0) return 0.0;
  std::size_t flagged = 0;
  for (std::size_t w = 0; w < matrix.windows(); ++w) {
    const auto members = rng.sample_without_replacement(m, k);
    double score = 0.0;
    double tau = 0.0;
    for (std::size_t member : members) {
      score += matrix.scores[member][w];
      tau += bundle.top(member)->threshold();
    }
    if (score / static_cast<double>(k) > tau / static_cast<double>(k)) ++flagged;
  }
  return static_cast<double>(flagged) / static_cast<double>(matrix.windows());
}

}  // namespace vehigan::bench
