#pragma once

// Shared plumbing for the per-table/per-figure bench harnesses.
//
// Every harness runs against the same cached experiment workspace: the first
// binary to run trains the 60-model WGAN grid (~7 minutes on one core) and
// caches it under .cache/vehigan/<model-config-hash>/; all others load it.
// Set VEHIGAN_BENCH_SCALE=quick to run the whole suite at smoke-test scale.

#include <cstdlib>
#include <string>
#include <vector>

#include "experiments/table_printer.hpp"
#include "experiments/workspace.hpp"
#include "metrics/roc.hpp"
#include "util/rng.hpp"

namespace vehigan::bench {

inline experiments::ExperimentConfig bench_config() {
  const char* scale = std::getenv("VEHIGAN_BENCH_SCALE");
  if (scale != nullptr && std::string(scale) == "quick") {
    return experiments::ExperimentConfig::quick();
  }
  return experiments::ExperimentConfig::standard();
}

/// Per-member scores of one window set, precomputed so that ensemble sweeps
/// over (m, k) reuse forward passes instead of re-running the critics.
/// scores[member][window].
struct ScoreMatrix {
  std::vector<std::vector<float>> scores;

  /// Ensemble score of window `w` over an explicit member subset.
  [[nodiscard]] float ensemble(const std::vector<std::size_t>& members, std::size_t w) const {
    double sum = 0.0;
    for (std::size_t m : members) sum += scores[m][w];
    return static_cast<float>(sum / static_cast<double>(members.size()));
  }

  [[nodiscard]] std::size_t windows() const { return scores.empty() ? 0 : scores[0].size(); }
};

/// Scores `windows` with the top `m` detectors of the bundle (rank order).
inline ScoreMatrix score_matrix(const mbds::VehiGanBundle& bundle, std::size_t m,
                                const features::WindowSet& windows) {
  ScoreMatrix matrix;
  matrix.scores.reserve(m);
  for (std::size_t rank = 0; rank < m; ++rank) {
    matrix.scores.push_back(bundle.top(rank)->score_all(windows));
  }
  return matrix;
}

/// VEHIGAN_m^k scores with a fresh random k-subset per window, from
/// precomputed member scores (paper Sec. III-A2 semantics).
inline std::vector<float> ensemble_scores(const ScoreMatrix& matrix, std::size_t m,
                                          std::size_t k, util::Rng& rng) {
  std::vector<float> out(matrix.windows());
  for (std::size_t w = 0; w < out.size(); ++w) {
    const auto members = rng.sample_without_replacement(m, k);
    double sum = 0.0;
    for (std::size_t member : members) sum += matrix.scores[member][w];
    out[w] = static_cast<float>(sum / static_cast<double>(k));
  }
  return out;
}

/// Fraction of windows whose random-k ensemble score exceeds the mean
/// threshold of the drawn members (the Fig. 7 FPR measurement).
inline double ensemble_flag_rate(const mbds::VehiGanBundle& bundle, const ScoreMatrix& matrix,
                                 std::size_t m, std::size_t k, util::Rng& rng) {
  if (matrix.windows() == 0) return 0.0;
  std::size_t flagged = 0;
  for (std::size_t w = 0; w < matrix.windows(); ++w) {
    const auto members = rng.sample_without_replacement(m, k);
    double score = 0.0;
    double tau = 0.0;
    for (std::size_t member : members) {
      score += matrix.scores[member][w];
      tau += bundle.top(member)->threshold();
    }
    if (score / static_cast<double>(k) > tau / static_cast<double>(k)) ++flagged;
  }
  return static_cast<double>(flagged) / static_cast<double>(matrix.windows());
}

}  // namespace vehigan::bench
