// Extension — end-to-end throughput of the serve::DetectionService.
//
// Drives a synthetic multi-sender 10 Hz BSM stream from 4 producer threads
// through the sharded detection service and measures sustained ingest
// throughput (msgs/sec, submit through drain) and the p99 of the per-shard
// drain cycle (dequeue -> ingest_batch -> report publish), read from the
// vehigan_serve_drain_seconds histogram deltas:
//
//   core matrix    shard sweep 1 / 2 / 4 / 8 under kBlock, repeated at every
//                  core budget in {1, 2, 4, 8} (clamped to this host's
//                  affinity mask via sched_setaffinity) — the scaling curve:
//                  each row's speedup is relative to the 1-shard run at the
//                  SAME budget, so parallelism and sharding overhead are
//                  separated honestly. hardware_threads records the budget
//                  actually in effect, never a wish.
//   pinned         4 shards with shard-to-core affinity (pin_shards), full
//                  core budget, against the unpinned 4-shard row
//   policy sweep   block / drop-newest / drop-oldest / fair-shed at 4 shards
//                  with deliberately tiny queues, showing what each policy
//                  trades: block keeps every message (throughput set by the
//                  slowest shard), the drop policies shed load to hold
//                  latency, fair-shed sheds from the heaviest senders
//
// The full table is exported to bench_results/ext_serve_throughput.csv with
// a telemetry sidecar. Expectation: msgs/sec increases monotonically from
// 1 -> 4 shards at a >= 4-core budget (target >= 2.5x at 4 shards); at a
// 1-core budget the sweep documents the overhead of sharding without
// parallelism instead.
//
// No trained workspace needed: throughput depends only on the architecture,
// so the ensembles are random-weight paper critics (m=4, k=2), content-keyed
// subset draws — the deployment configuration of the serving layer.

#include <benchmark/benchmark.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <sched.h>
#endif

#include "bench_common.hpp"
#include "experiments/table_printer.hpp"
#include "features/scaler.hpp"
#include "gan/architecture.hpp"
#include "mbds/ensemble.hpp"
#include "mbds/wgan_detector.hpp"
#include "serve/config.hpp"
#include "serve/service.hpp"
#include "telemetry/metrics.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

using namespace vehigan;

namespace {

bool quick_scale() {
  const char* scale = std::getenv("VEHIGAN_BENCH_SCALE");
  return scale != nullptr && std::string(scale) == "quick";
}

constexpr std::size_t kEnsembleM = 4;
constexpr std::size_t kEnsembleK = 2;
constexpr std::size_t kProducers = 4;

/// m critics spanning the paper's depth grid {6, 7, 8}, random weights.
std::vector<std::shared_ptr<mbds::WganDetector>> grid_critics(std::size_t m) {
  std::vector<std::shared_ptr<mbds::WganDetector>> detectors;
  util::Rng rng(2024);
  for (std::size_t i = 0; i < m; ++i) {
    gan::WganConfig config;
    config.id = static_cast<int>(i);
    config.layers = 6 + static_cast<int>(i % 3);
    gan::TrainedWgan model;
    model.config = config;
    model.discriminator = gan::build_discriminator(config, rng);
    auto det = std::make_shared<mbds::WganDetector>(std::move(model));
    det->set_calibration(0.0, 1.0);
    // Flag every complete window: report emission (cooldown-limited to one
    // per sender-second) is part of the drain cycle being measured.
    det->set_threshold(-1e9);
    detectors.push_back(std::move(det));
  }
  return detectors;
}

std::shared_ptr<mbds::VehiGan> serving_ensemble() {
  auto ensemble = std::make_shared<mbds::VehiGan>(grid_critics(kEnsembleM), kEnsembleK, 99);
  ensemble->set_subset_draw(mbds::SubsetDraw::kContentKeyed);
  return ensemble;
}

features::MinMaxScaler identity_scaler() {
  features::Series s;
  s.width = 12;
  for (std::size_t c = 0; c < 12; ++c) s.values.push_back(0.0F);
  for (std::size_t c = 0; c < 12; ++c) s.values.push_back(1.0F);
  features::MinMaxScaler scaler;
  scaler.fit({s});
  return scaler;
}

/// One producer's sub-stream: `senders` vehicles at 10 Hz for `ticks` steps,
/// in time order, with mild per-sender kinematic variety so the windows are
/// not degenerate.
std::vector<sim::Bsm> producer_stream(std::uint32_t first_id, std::size_t senders,
                                      std::size_t ticks) {
  std::vector<sim::Bsm> stream;
  stream.reserve(senders * ticks);
  for (std::size_t t = 0; t < ticks; ++t) {
    for (std::size_t v = 0; v < senders; ++v) {
      sim::Bsm m;
      m.vehicle_id = first_id + static_cast<std::uint32_t>(v);
      m.time = 0.1 * static_cast<double>(t);
      m.speed = 8.0 + static_cast<double>(v % 7);
      m.x = m.speed * m.time;
      m.y = 3.5 * static_cast<double>(v % 3);
      m.heading = 0.1 * static_cast<double>(v % 5);
      stream.push_back(m);
    }
  }
  return stream;
}

// ----------------------------------------------------- core-budget knobs ---

/// Cores this process may run on right now (the CI runner or container mask,
/// not the machine's nominal core count).
std::vector<int> allowed_cores() {
  std::vector<int> cores;
#if defined(__linux__)
  cpu_set_t mask;
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
      if (CPU_ISSET(cpu, &mask)) cores.push_back(cpu);
    }
  }
#endif
  if (cores.empty()) {
    const unsigned hw = std::thread::hardware_concurrency();
    for (int cpu = 0; cpu < static_cast<int>(hw == 0 ? 1 : hw); ++cpu) cores.push_back(cpu);
  }
  return cores;
}

/// Restricts this thread (and every thread it spawns afterwards — shard
/// workers and producers inherit the mask) to the first `budget` allowed
/// cores. Returns the budget actually applied.
std::size_t apply_core_budget(const std::vector<int>& cores, std::size_t budget) {
  const std::size_t n = std::min(budget, cores.size());
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  for (std::size_t i = 0; i < n; ++i) CPU_SET(cores[i], &mask);
  if (sched_setaffinity(0, sizeof(mask), &mask) != 0) return cores.size();
#endif
  return n;
}

// ------------------------------------------- p99 from histogram deltas -----

using Buckets = std::array<std::uint64_t, telemetry::Histogram::kBuckets>;

Buckets capture(const telemetry::Histogram& h) {
  Buckets b{};
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = h.bucket_count(i);
  return b;
}

/// p99 in milliseconds of the observations recorded between two captures
/// (upper bound of the bucket holding the 99th-percentile rank).
double p99_ms(const Buckets& before, const Buckets& after) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < before.size(); ++i) total += after[i] - before[i];
  if (total == 0) return 0.0;
  const std::uint64_t rank = (total * 99 + 99) / 100;  // ceil
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    cumulative += after[i] - before[i];
    if (cumulative >= rank) {
      // The overflow bucket has no finite upper bound; report its lower one.
      if (i >= telemetry::Histogram::kFiniteBuckets) {
        return telemetry::Histogram::bucket_lower_bound(i) * 1000.0;
      }
      return telemetry::Histogram::bucket_upper_bound(i) * 1000.0;
    }
  }
  return 0.0;
}

// ------------------------------------------------------------ one config ---

struct RunResult {
  double msgs_per_sec = 0.0;
  double p99_drain_ms = 0.0;
  std::uint64_t dropped = 0;
  std::uint64_t reports = 0;
  std::size_t messages = 0;
};

RunResult run_config(const serve::ServiceConfig& config, std::size_t senders,
                     std::size_t ticks) {
  serve::ServiceConfig effective = config;
  // VEHIGAN_LEDGER_OUT: route every verdict through the audit ledger so the
  // bench doubles as a ledger write-path stressor. Each run_config truncates
  // the file, so the surviving ledger covers exactly the last run.
  if (const char* ledger = std::getenv("VEHIGAN_LEDGER_OUT")) {
    effective.ledger_path = ledger;
  }
  serve::DetectionService service(
      effective, [](std::size_t) { return serving_ensemble(); }, identity_scaler());
  std::atomic<std::uint64_t> reports{0};
  service.set_report_sink([&](const mbds::MisbehaviorReport&) { reports.fetch_add(1); });

  auto& drain_hist =
      telemetry::MetricsRegistry::global().histogram("vehigan_serve_drain_seconds");
  const Buckets before = capture(drain_hist);
  const std::size_t per_producer = senders / kProducers;

  util::Stopwatch sw;
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const auto stream = producer_stream(
          static_cast<std::uint32_t>(1 + p * per_producer), per_producer, ticks);
      for (const sim::Bsm& message : stream) (void)service.submit(message);
    });
  }
  for (auto& t : producers) t.join();
  service.drain();
  const double elapsed_ms = sw.elapsed_ms();
  service.stop();

  RunResult result;
  result.messages = per_producer * kProducers * ticks;
  result.msgs_per_sec = static_cast<double>(result.messages) / (elapsed_ms / 1000.0);
  result.p99_drain_ms = p99_ms(before, capture(drain_hist));
  result.dropped = service.stats().total.dropped;
  result.reports = reports.load();
  return result;
}

// ------------------------------------------------- registered benchmarks ---

void bm_serve(benchmark::State& state) {
  serve::ServiceConfig config;
  config.num_shards = static_cast<std::size_t>(state.range(0));
  config.queue_capacity = 1024;
  config.policy = serve::OverloadPolicy::kBlock;
  const std::size_t senders = 16, ticks = 32;
  for (auto _ : state) {
    const RunResult r = run_config(config, senders, ticks);
    benchmark::DoNotOptimize(r.msgs_per_sec);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * senders * ticks));
}

}  // namespace

int main(int argc, char** argv) {
  bench::init_observability_from_env();  // VEHIGAN_TRACE_OUT / VEHIGAN_BLACKBOX_OUT
  const std::size_t senders = quick_scale() ? 48 : 64;
  const std::size_t ticks = quick_scale() ? 128 : 640;
  const std::vector<int> cores = allowed_cores();

  std::cout << "=== DetectionService throughput: msgs/sec and p99 drain latency ===\n"
            << "ensemble m=" << kEnsembleM << " k=" << kEnsembleK << " (content-keyed), "
            << senders << " senders x " << ticks << " ticks, " << kProducers
            << " producers (" << cores.size() << " cores in the affinity mask)\n\n";

  struct Row {
    std::string sweep;
    std::size_t shards;
    serve::OverloadPolicy policy;
    std::size_t capacity;
    bool pinned;
    std::size_t budget;  ///< core budget in effect (the honest thread count)
    RunResult result;
    double speedup;  ///< vs the 1-shard run at the same core budget
  };
  std::vector<Row> rows;

  // Core matrix: the shard sweep repeated at each emulated core budget.
  // Budgets beyond this host's mask are skipped, not faked.
  std::vector<std::size_t> budgets;
  for (std::size_t b : {1UL, 2UL, 4UL, 8UL}) {
    if (b <= cores.size()) budgets.push_back(b);
  }
  if (budgets.empty() || budgets.back() != cores.size()) budgets.push_back(cores.size());

  for (std::size_t budget : budgets) {
    const std::size_t effective = apply_core_budget(cores, budget);
    double baseline = 0.0;
    for (std::size_t shards : {1UL, 2UL, 4UL, 8UL}) {
      serve::ServiceConfig config;
      config.num_shards = shards;
      config.queue_capacity = 1024;
      config.policy = serve::OverloadPolicy::kBlock;
      const RunResult result = run_config(config, senders, ticks);
      if (shards == 1) baseline = result.msgs_per_sec;
      rows.push_back({"shards", shards, config.policy, config.queue_capacity,
                      /*pinned=*/false, effective, result,
                      baseline > 0.0 ? result.msgs_per_sec / baseline : 1.0});
    }
  }
  apply_core_budget(cores, cores.size());  // restore the full mask

  // Pinned run: 4 shards with shard-to-core affinity at the full budget,
  // comparable against the unpinned 4-shard row of the same budget above.
  {
    serve::ServiceConfig config;
    config.num_shards = 4;
    config.queue_capacity = 1024;
    config.policy = serve::OverloadPolicy::kBlock;
    config.pin_shards = true;
    double baseline = 0.0;
    for (const Row& row : rows) {
      if (row.sweep == "shards" && row.shards == 1 && row.budget == cores.size()) {
        baseline = row.result.msgs_per_sec;
      }
    }
    const RunResult result = run_config(config, senders, ticks);
    rows.push_back({"pinned", 4, config.policy, config.queue_capacity, /*pinned=*/true,
                    cores.size(), result,
                    baseline > 0.0 ? result.msgs_per_sec / baseline : 1.0});
  }

  // Policy sweep: 4 shards, queues 16 deep so overload actually happens.
  for (serve::OverloadPolicy policy :
       {serve::OverloadPolicy::kBlock, serve::OverloadPolicy::kDropNewest,
        serve::OverloadPolicy::kDropOldest, serve::OverloadPolicy::kFairShed}) {
    serve::ServiceConfig config;
    config.num_shards = 4;
    config.queue_capacity = 16;
    config.policy = policy;
    rows.push_back({"policy", 4, policy, config.queue_capacity, /*pinned=*/false,
                    cores.size(), run_config(config, senders, ticks), 0.0});
  }

  experiments::TablePrinter table(
      {"sweep", "cores", "shards", "policy", "capacity", "pinned", "msgs/sec", "speedup",
       "p99 drain ms", "dropped", "reports"});
  for (const Row& row : rows) {
    table.add_row({row.sweep, std::to_string(row.budget), std::to_string(row.shards),
                   serve::to_string(row.policy), std::to_string(row.capacity),
                   row.pinned ? "yes" : "no",
                   experiments::TablePrinter::format(row.result.msgs_per_sec, 0),
                   row.speedup > 0.0
                       ? experiments::TablePrinter::format(row.speedup, 2) + "x"
                       : "-",
                   experiments::TablePrinter::format(row.result.p99_drain_ms, 3),
                   std::to_string(row.result.dropped), std::to_string(row.result.reports)});
  }
  table.print();

  std::filesystem::create_directories("bench_results");
  util::CsvWriter csv("bench_results/ext_serve_throughput.csv");
  csv.write_row({"sweep", "shards", "policy", "queue_capacity", "producers", "messages",
                 "msgs_per_sec", "speedup_vs_1shard", "p99_drain_ms", "dropped", "reports",
                 "pinned", "adaptive_batch", "hardware_threads"});
  for (const Row& row : rows) {
    csv.write_row({row.sweep, std::to_string(row.shards), serve::to_string(row.policy),
                   std::to_string(row.capacity), std::to_string(kProducers),
                   std::to_string(row.result.messages),
                   experiments::TablePrinter::format(row.result.msgs_per_sec, 1),
                   experiments::TablePrinter::format(row.speedup, 3),
                   experiments::TablePrinter::format(row.result.p99_drain_ms, 4),
                   std::to_string(row.result.dropped), std::to_string(row.result.reports),
                   row.pinned ? "1" : "0", "1", std::to_string(row.budget)});
  }
  std::cout << "\nrows written to bench_results/ext_serve_throughput.csv\n"
            << "(the >= 2.5x 1->4 shard target applies to the >= 4-core budget rows; "
            << "this host's mask has " << cores.size() << " cores)\n\n";

  benchmark::RegisterBenchmark("serve/shards", bm_serve)
      ->Arg(1)
      ->Arg(4)
      ->Unit(benchmark::kMillisecond)
      ->MinTime(0.1);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  bench::write_telemetry_sidecar("ext_serve_throughput");
  bench::finish_observability_from_env();
  return 0;
}
