// Extension — the declarative scenario slate, end to end through the
// serving stack.
//
// Each scenario (synthetic ScenarioEngine compilations plus one VeReMi
// round-trip replay) is fed tick by tick into a sharded
// serve::DetectionService; the score-sink tap joins every scored window with
// the scenario's ground-truth labels. One CSV row per scenario:
//
//   auroc          window scores vs. sender labels through the full pipeline
//   p99_drain_ms   p99 of the per-shard drain cycle during this scenario
//   drop_rate      dropped / enqueued (kBlock here, so 0 unless overloaded)
//   drift_alarms   score/flag-rate drift alarms raised by the shard monitors
//
// plus message/sender/attacker counts, reports, evictions, and throughput.
// The full table lands in bench_results/ext_scenarios.csv with a telemetry
// sidecar. VEHIGAN_SCENARIO_SLATE=smoke runs a 3-scenario subset
// (grid-cruise, sybil-ghost, adaptive-prober) for CI.
//
// The ensembles are random-weight paper critics (m=4, k=2, content-keyed):
// the slate measures the harness — labeled-stream compilation, sharded
// serving, label joining — not detection quality, which the trained-grid
// table benches own. Thresholds flag every complete window so the report
// path runs and the adaptive prober faces real flagging pressure.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "data/veremi.hpp"
#include "experiments/table_printer.hpp"
#include "features/scaler.hpp"
#include "gan/architecture.hpp"
#include "mbds/ensemble.hpp"
#include "mbds/wgan_detector.hpp"
#include "scenario/config.hpp"
#include "scenario/engine.hpp"
#include "scenario/runner.hpp"
#include "scenario/veremi_replay.hpp"
#include "serve/config.hpp"
#include "sim/traffic_sim.hpp"
#include "util/csv.hpp"
#include "vasp/attack_types.hpp"
#include "vasp/dataset_builder.hpp"

using namespace vehigan;

namespace {

constexpr std::size_t kEnsembleM = 4;
constexpr std::size_t kEnsembleK = 2;

bool smoke_slate() {
  const char* slate = std::getenv("VEHIGAN_SCENARIO_SLATE");
  return slate != nullptr && std::string(slate) == "smoke";
}

std::vector<std::shared_ptr<mbds::WganDetector>> grid_critics(std::size_t m) {
  std::vector<std::shared_ptr<mbds::WganDetector>> detectors;
  util::Rng rng(2024);
  for (std::size_t i = 0; i < m; ++i) {
    gan::WganConfig config;
    config.id = static_cast<int>(i);
    config.layers = 6 + static_cast<int>(i % 3);
    gan::TrainedWgan model;
    model.config = config;
    model.discriminator = gan::build_discriminator(config, rng);
    auto det = std::make_shared<mbds::WganDetector>(std::move(model));
    det->set_calibration(0.0, 1.0);
    det->set_threshold(-1e9);  // flag every complete window (see header)
    detectors.push_back(std::move(det));
  }
  return detectors;
}

std::shared_ptr<mbds::VehiGan> serving_ensemble() {
  auto ensemble = std::make_shared<mbds::VehiGan>(grid_critics(kEnsembleM), kEnsembleK, 99);
  ensemble->set_subset_draw(mbds::SubsetDraw::kContentKeyed);
  return ensemble;
}

features::MinMaxScaler identity_scaler() {
  features::Series s;
  s.width = 12;
  for (std::size_t c = 0; c < 12; ++c) s.values.push_back(0.0F);
  for (std::size_t c = 0; c < 12; ++c) s.values.push_back(1.0F);
  features::MinMaxScaler scaler;
  scaler.fit({s});
  return scaler;
}

scenario::RunnerOptions runner_options() {
  scenario::RunnerOptions options;
  options.service.num_shards = 2;
  options.service.queue_capacity = 1024;
  options.service.policy = serve::OverloadPolicy::kBlock;
  options.service.report_cooldown_s = 1.0;
  options.service.evict_after_s = 5.0;  // arrival gaps actually trigger sweeps
  options.service.evict_every_s = 1.0;
  options.drain_every_ticks = 8;  // settle in bursts, not one giant backlog
  return options;
}

/// The VeReMi leg of the slate: synthesize a small fleet, inject one attack
/// cohort VASP-style, export it in the real VeReMi JSON-lines dialect,
/// re-import through VeremiReplaySource, and serve it. Timestamps are
/// rebased to an absolute clock (7 h into the day) — the configuration that
/// used to break wall-clock eviction.
/// Audit-ledger destination: `--ledger-out=BASE` (or VEHIGAN_LEDGER_OUT)
/// writes one verdict ledger per scenario at `BASE.<scenario>`, so ledgerq
/// record counts are verifiable per run.
std::string ledger_base_from(int& argc, char** argv) {
  std::string base;
  if (const char* env = std::getenv("VEHIGAN_LEDGER_OUT")) base = env;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    constexpr const char* kFlag = "--ledger-out=";
    if (arg.rfind(kFlag, 0) == 0) {
      base = arg.substr(std::string(kFlag).size());
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    }
  }
  return base;
}

scenario::RunnerOptions with_ledger(scenario::RunnerOptions options,
                                    const std::string& base, const std::string& name) {
  if (!base.empty()) options.service.ledger_path = base + "." + name;
  return options;
}

scenario::ScenarioOutcome run_veremi_replay(const scenario::RunnerOptions& options) {
  sim::TrafficSimConfig sim_cfg;
  sim_cfg.duration_s = 40.0;
  sim_cfg.num_platoons = 4;
  sim_cfg.vehicles_per_platoon = 4;
  sim_cfg.seed = 77;
  sim::BsmDataset benign = sim::TrafficSimulator(sim_cfg).run();
  for (sim::VehicleTrace& trace : benign.traces) {
    for (sim::Bsm& message : trace.messages) message.time += 25200.0;
  }
  const vasp::AttackSpec& spec = vasp::attack_by_name("ConstantPositionOffset");
  vasp::ScenarioOptions scenario_options;
  scenario_options.malicious_fraction = 0.25;
  scenario_options.seed = 78;
  const vasp::MisbehaviorDataset dataset =
      vasp::build_scenario(benign, spec, scenario_options);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "vehigan_bench_ext_scenarios";
  std::filesystem::create_directories(dir);
  const data::VeremiExport files = data::write_veremi(dataset, spec.index, dir, "replay");
  scenario::VeremiReplaySource source(files);
  const scenario::ScenarioOutcome outcome = scenario::run_scenario(
      source, "veremi-replay", options, [](std::size_t) { return serving_ensemble(); },
      identity_scaler());
  std::filesystem::remove_all(dir);
  return outcome;
}

void bm_compile(benchmark::State& state) {
  const std::vector<scenario::ScenarioConfig> slate = scenario::builtin_slate();
  const scenario::ScenarioConfig& config = slate[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    scenario::ScenarioEngine engine(config);
    benchmark::DoNotOptimize(engine.tick_count());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::init_observability_from_env();
  const bool smoke = smoke_slate();
  const scenario::RunnerOptions options = runner_options();
  const std::string ledger_base = ledger_base_from(argc, argv);

  std::cout << "=== Scenario slate through the sharded serving stack ===\n"
            << "ensemble m=" << kEnsembleM << " k=" << kEnsembleK << " (content-keyed, "
            << "random weights: this measures the harness, not detection quality), "
            << options.service.num_shards << " shards\n"
            << "slate: " << (smoke ? "smoke (3 scenarios)" : "full (6 builtin + VeReMi replay)")
            << "\n\n";

  std::vector<scenario::ScenarioOutcome> outcomes;
  for (const scenario::ScenarioConfig& config : scenario::builtin_slate()) {
    if (smoke && config.name != "grid-cruise" && config.name != "sybil-ghost" &&
        config.name != "adaptive-prober") {
      continue;
    }
    scenario::ScenarioEngine engine(config);
    outcomes.push_back(scenario::run_scenario(
        engine, config.name, with_ledger(options, ledger_base, config.name),
        [](std::size_t) { return serving_ensemble(); }, identity_scaler()));
  }
  if (!smoke) {
    outcomes.push_back(run_veremi_replay(with_ledger(options, ledger_base, "veremi-replay")));
  }
  if (!ledger_base.empty()) {
    std::cout << "verdict ledgers written to " << ledger_base << ".<scenario>\n\n";
  }

  experiments::TablePrinter table({"scenario", "messages", "senders", "attackers", "auroc",
                                   "online auroc", "p99 drain ms", "drop rate",
                                   "drift alarms", "reports", "evictions", "msgs/sec"});
  for (const scenario::ScenarioOutcome& o : outcomes) {
    table.add_row({o.name, std::to_string(o.messages), std::to_string(o.senders),
                   std::to_string(o.attackers), experiments::TablePrinter::format(o.auroc, 4),
                   experiments::TablePrinter::format(o.online_auroc, 4),
                   experiments::TablePrinter::format(o.p99_drain_ms, 3),
                   experiments::TablePrinter::format(o.drop_rate, 4),
                   std::to_string(o.drift_alarms), std::to_string(o.reports),
                   std::to_string(o.evictions),
                   experiments::TablePrinter::format(o.msgs_per_sec, 0)});
  }
  table.print();

  std::filesystem::create_directories("bench_results");
  util::CsvWriter csv("bench_results/ext_scenarios.csv");
  csv.write_row({"scenario", "messages", "senders", "attackers", "windows_scored", "auroc",
                 "online_auroc", "online_precision", "online_recall", "p99_drain_ms",
                 "drop_rate", "drift_alarms", "reports", "evictions", "msgs_per_sec"});
  for (const scenario::ScenarioOutcome& o : outcomes) {
    csv.write_row({o.name, std::to_string(o.messages), std::to_string(o.senders),
                   std::to_string(o.attackers), std::to_string(o.windows_scored),
                   experiments::TablePrinter::format(o.auroc, 4),
                   experiments::TablePrinter::format(o.online_auroc, 4),
                   experiments::TablePrinter::format(o.online_precision, 4),
                   experiments::TablePrinter::format(o.online_recall, 4),
                   experiments::TablePrinter::format(o.p99_drain_ms, 4),
                   experiments::TablePrinter::format(o.drop_rate, 4),
                   std::to_string(o.drift_alarms), std::to_string(o.reports),
                   std::to_string(o.evictions),
                   experiments::TablePrinter::format(o.msgs_per_sec, 1)});
  }
  std::cout << "\nrows written to bench_results/ext_scenarios.csv\n\n";

  benchmark::RegisterBenchmark("scenario/compile", bm_compile)
      ->Arg(0)  // grid-cruise
      ->Arg(4)  // sybil-ghost
      ->Unit(benchmark::kMillisecond)
      ->MinTime(0.1);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  bench::write_telemetry_sidecar("ext_scenarios");
  bench::finish_observability_from_env();
  return 0;
}
