// Fig. 7 — adversarial robustness of the ensemble VEHIGAN_m^k:
//   (a) gray-box single-model AFP: samples crafted on the best model, FPR of
//       VEHIGAN_m^k for every m and k (the compromised model is in the
//       ensemble),
//   (b) white-box multi-model AFP: the attacker back-propagates through all
//       m deployed critics and attacks their ensembled score.
//
// Expected shape (paper Sec. V-B2): single-model FPR of 80-100 % collapses
// to < 5 % once m >= 5 and k >= 2 (gray-box) / k >= 5 (multi-model) — the
// ~92 % FPR improvement headline.

#include <iostream>

#include "adv/fgsm.hpp"
#include "adv/robustness.hpp"
#include "bench_common.hpp"

using namespace vehigan;

namespace {

// The paper uses eps = 0.01; this repo's critics are smoother (see
// bench_fig5_adversarial), so the equivalent operating point — where the
// white-box single-model FPR reaches ~100 % — is eps = 0.1.
constexpr float kEps = 0.1F;

void print_sweep(const mbds::VehiGanBundle& bundle, const features::WindowSet& adv_set,
                 std::size_t max_m) {
  const bench::ScoreMatrix matrix = bench::score_matrix(bundle, max_m, adv_set);
  std::vector<std::string> headers = {"m \\ k"};
  for (std::size_t k = 1; k <= max_m; ++k) headers.push_back("k=" + std::to_string(k));
  experiments::TablePrinter table(std::move(headers));
  util::Rng rng(31);
  for (std::size_t m = 1; m <= max_m; ++m) {
    std::vector<std::string> row = {"m=" + std::to_string(m)};
    for (std::size_t k = 1; k <= max_m; ++k) {
      if (k > m) {
        row.emplace_back("-");
        continue;
      }
      row.push_back(experiments::TablePrinter::format(
          bench::ensemble_flag_rate(bundle, matrix, m, k, rng), 2));
    }
    table.add_row(std::move(row));
  }
  table.print();
}

}  // namespace

int main() {
  experiments::Workspace workspace(bench::bench_config());
  const auto& data = workspace.data();
  const auto& bundle = workspace.bundle();
  const std::size_t max_m = std::min<std::size_t>(10, bundle.detectors().size());
  const features::WindowSet benign = data.test_benign.subsample(4);

  std::cout << "=== Fig. 7: FPR of VehiGAN_m^k under AFP attacks (eps = " << kEps
            << ", " << benign.count() << " benign windows) ===\n\n";

  // Reference point: the single compromised model.
  auto& best = *bundle.top(0);
  const auto gray_set = adv::craft_adversarial(best, benign, kEps,
                                               adv::AttackGoal::kFalsePositive);
  const double single_fpr = adv::flag_rate(best, gray_set);
  std::cout << "white-box FPR on the compromised single model: "
            << experiments::TablePrinter::format(single_fpr, 2) << "\n\n";

  std::cout << "--- (a) gray-box: AFP samples from the best model vs the ensemble ---\n\n";
  print_sweep(bundle, gray_set, max_m);

  std::cout << "\n--- (b) white-box multi-model: attacker differentiates through all m "
               "candidates ---\n\n";
  // For each m the attacker re-crafts using the top-m critics jointly; the
  // table row m reports that attack against VEHIGAN_m^k.
  {
    std::vector<std::string> headers = {"m \\ k"};
    for (std::size_t k = 1; k <= max_m; ++k) headers.push_back("k=" + std::to_string(k));
    experiments::TablePrinter table(std::move(headers));
    util::Rng rng(37);
    double fpr_m_ge5_k_ge5_max = 0.0;
    for (std::size_t m = 1; m <= max_m; ++m) {
      std::vector<std::shared_ptr<mbds::WganDetector>> sources;
      for (std::size_t r = 0; r < m; ++r) sources.push_back(bundle.top(r));
      const auto multi_set =
          adv::craft_adversarial_multi(sources, benign, kEps, adv::AttackGoal::kFalsePositive);
      const bench::ScoreMatrix matrix = bench::score_matrix(bundle, max_m, multi_set);
      std::vector<std::string> row = {"m=" + std::to_string(m)};
      for (std::size_t k = 1; k <= max_m; ++k) {
        if (k > m) {
          row.emplace_back("-");
          continue;
        }
        const double fpr = bench::ensemble_flag_rate(bundle, matrix, m, k, rng);
        row.push_back(experiments::TablePrinter::format(fpr, 2));
        if (m > 5 && k >= 5) fpr_m_ge5_k_ge5_max = std::max(fpr_m_ge5_k_ge5_max, fpr);
      }
      table.add_row(std::move(row));
    }
    table.print();
    std::cout << "\nmax FPR over configurations with m>5, k>=5: "
              << experiments::TablePrinter::format(fpr_m_ge5_k_ge5_max, 2) << "\n";
  }

  std::cout << "\nheadline: single-model AFP FPR "
            << experiments::TablePrinter::format(single_fpr, 2)
            << " vs ensemble (m>=5) — the paper's ~92% FPR improvement under the\n"
            << "strongest adaptive attacker comes from this gap.\n";
  bench::write_telemetry_sidecar("fig7_ensemble_attacks");
  return 0;
}
