// Extension/ablation — SAE J2735 wire quantization.
//
// The paper's pipeline consumes simulator-exact BSM fields; deployed
// receivers decode quantized wire messages (cm positions, 0.02 m/s speed,
// 0.0125 deg heading, ...). This harness re-runs the detection evaluation on
// a wire-quantized copy of the test traffic — trained models, scaler, and
// thresholds untouched, exactly the train-offline/deploy-on-wire situation —
// and reports the AUROC deltas. Expected: deltas within noise; quantization
// steps sit far below the sensor-noise floor.

#include <iostream>

#include "bench_common.hpp"
#include "features/feature_engineering.hpp"
#include "net/codec.hpp"
#include "vasp/dataset_builder.hpp"

using namespace vehigan;

namespace {

features::WindowSet windows_of(const std::vector<sim::VehicleTrace>& traces,
                               const features::MinMaxScaler& scaler,
                               const experiments::ExperimentConfig& config) {
  std::vector<features::Series> series;
  for (const auto& trace : traces) {
    series.push_back(to_series(features::extract_features(trace)));
  }
  for (auto& s : series) {
    if (s.rows() > 0) scaler.transform(s);
  }
  auto set = make_windows(series, config.window, config.eval_stride);
  if (set.count() > config.max_attack_eval_windows) {
    set = set.subsample((set.count() + config.max_attack_eval_windows - 1) /
                        config.max_attack_eval_windows);
  }
  return set;
}

}  // namespace

int main() {
  experiments::Workspace workspace(bench::bench_config());
  const auto& config = workspace.config();
  const auto& bundle = workspace.bundle();
  const std::size_t m = std::min<std::size_t>(10, bundle.detectors().size());

  std::cout << "=== Ablation: exact vs J2735-quantized wire BSMs (VehiGAN_" << m << "^" << m
            << ") ===\n\n";

  const sim::BsmDataset exact_fleet = sim::TrafficSimulator(config.test_sim).run();
  const sim::BsmDataset wire_fleet = net::quantize_dataset(exact_fleet);

  auto benign_traces = [](const sim::BsmDataset& fleet) {
    return fleet.traces;
  };
  const features::WindowSet exact_benign =
      windows_of(benign_traces(exact_fleet), workspace.data().scaler, config);
  const features::WindowSet wire_benign =
      windows_of(benign_traces(wire_fleet), workspace.data().scaler, config);

  const bench::ScoreMatrix exact_matrix = bench::score_matrix(bundle, m, exact_benign);
  const bench::ScoreMatrix wire_matrix = bench::score_matrix(bundle, m, wire_benign);
  std::vector<std::size_t> all(m);
  for (std::size_t i = 0; i < m; ++i) all[i] = i;
  auto collapse = [&](const bench::ScoreMatrix& matrix) {
    std::vector<float> out(matrix.windows());
    for (std::size_t w = 0; w < out.size(); ++w) out[w] = matrix.ensemble(all, w);
    return out;
  };
  const std::vector<float> exact_benign_scores = collapse(exact_matrix);
  const std::vector<float> wire_benign_scores = collapse(wire_matrix);

  experiments::TablePrinter table({"Attack", "AUROC exact", "AUROC wire", "delta"});
  double max_abs_delta = 0.0;
  for (int index : {1, 5, 9, 17, 23, 24, 30, 34}) {
    const vasp::AttackSpec& spec = vasp::attack_by_index(index);
    const auto exact_scenario = vasp::build_scenario(exact_fleet, spec, config.scenario);
    const auto wire_scenario =
        vasp::build_scenario(wire_fleet, spec, config.scenario);
    std::vector<sim::VehicleTrace> exact_mal, wire_mal;
    for (const auto& labeled : exact_scenario.traces) {
      if (labeled.malicious) exact_mal.push_back(labeled.trace);
    }
    for (const auto& labeled : wire_scenario.traces) {
      if (labeled.malicious) wire_mal.push_back(net::quantize_dataset({{labeled.trace}}).traces[0]);
    }
    const auto exact_attack =
        collapse(bench::score_matrix(bundle, m, windows_of(exact_mal, workspace.data().scaler,
                                                           config)));
    const auto wire_attack = collapse(
        bench::score_matrix(bundle, m, windows_of(wire_mal, workspace.data().scaler, config)));
    const double a_exact = metrics::auroc(exact_benign_scores, exact_attack);
    const double a_wire = metrics::auroc(wire_benign_scores, wire_attack);
    max_abs_delta = std::max(max_abs_delta, std::abs(a_exact - a_wire));
    table.add_row(std::string(spec.name), {a_exact, a_wire, a_wire - a_exact});
  }
  table.print();
  std::cout << "\nmax |delta| = " << experiments::TablePrinter::format(max_abs_delta, 3)
            << "  (quantization steps sit below the sensor-noise floor; training on\n"
            << "   exact logs and deploying on wire-decoded BSMs costs ~nothing)\n";
  bench::write_telemetry_sidecar("ext_quantization");
  return 0;
}
