// Table III — AUROC of VEHIGAN vs the baseline detectors against every one
// of the 35 misbehaviors, plus the column averages. Detectors:
//   VehiGAN_10^10, VehiGAN_5^5          (this paper's system)
//   BaseAE                              (auto-encoder on raw BSM fields)
//   Vehi-AE, Vehi-PCA, Vehi-KNN, Vehi-GMM  (baselines on engineered features)
//
// Shape targets (paper Sec. V-C): feature engineering lifts every Vehi-*
// baseline above BaseAE; VehiGAN leads on the advanced heading & yaw-rate
// attacks; everyone fails on ConstantPositionOffset; acceleration attacks
// hurt VehiGAN (noisy benign acceleration).

#include <iostream>

#include "baselines/autoencoder.hpp"
#include "baselines/gmm.hpp"
#include "baselines/knn.hpp"
#include "baselines/pca.hpp"
#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/stopwatch.hpp"

using namespace vehigan;

int main() {
  experiments::Workspace workspace(bench::bench_config());
  const auto& data = workspace.data();
  const auto& bundle = workspace.bundle();

  std::cout << "=== Table III: AUROC vs baselines (35 attacks) ===\n\n";

  // ---- VEHIGAN ensembles: per-attack AUROC via precomputed member scores.
  const std::size_t max_m = std::min<std::size_t>(10, bundle.detectors().size());
  const bench::ScoreMatrix benign_matrix = bench::score_matrix(bundle, max_m, data.test_benign);
  auto vehigan_auroc = [&](std::size_t m, std::size_t a) {
    util::Rng rng(500 + m);
    std::vector<float> benign_scores(benign_matrix.windows());
    std::vector<std::size_t> all(m);
    for (std::size_t i = 0; i < m; ++i) all[i] = i;
    for (std::size_t w = 0; w < benign_scores.size(); ++w) {
      benign_scores[w] = benign_matrix.ensemble(all, w);
    }
    const bench::ScoreMatrix attack_matrix =
        bench::score_matrix(bundle, m, data.test_attacks[a].malicious);
    std::vector<float> attack_scores(attack_matrix.windows());
    for (std::size_t w = 0; w < attack_scores.size(); ++w) {
      attack_scores[w] = attack_matrix.ensemble(all, w);
    }
    return metrics::auroc(benign_scores, attack_scores);
  };

  // ---- Classical baselines, fit on the matching feature space.
  util::Stopwatch sw;
  std::cout << "fitting baselines..." << std::endl;
  baselines::AutoencoderDetector base_ae("Base-AE", baselines::AutoencoderConfig{});
  base_ae.fit(data.raw_train_windows);
  baselines::AutoencoderDetector vehi_ae("Vehi-AE", baselines::AutoencoderConfig{});
  vehi_ae.fit(data.train_windows);
  baselines::PcaDetector vehi_pca;
  vehi_pca.fit(data.train_windows);
  baselines::KnnDetector vehi_knn;
  vehi_knn.fit(data.train_windows);
  baselines::GmmDetector vehi_gmm;
  vehi_gmm.fit(data.train_windows);
  std::cout << "baselines ready in " << static_cast<int>(sw.elapsed_seconds()) << " s\n\n";

  const std::vector<float> base_ae_benign = base_ae.score_all(data.raw_test_benign);
  const std::vector<float> vehi_ae_benign = vehi_ae.score_all(data.test_benign);
  const std::vector<float> vehi_pca_benign = vehi_pca.score_all(data.test_benign);
  const std::vector<float> vehi_knn_benign = vehi_knn.score_all(data.test_benign);
  const std::vector<float> vehi_gmm_benign = vehi_gmm.score_all(data.test_benign);

  const std::vector<std::string> columns = {"VehiGAN_10^10", "VehiGAN_5^5", "Base-AE",
                                            "Vehi-AE", "Vehi-PCA", "Vehi-KNN", "Vehi-GMM"};
  experiments::TablePrinter table([&] {
    std::vector<std::string> headers = {"Attack"};
    headers.insert(headers.end(), columns.begin(), columns.end());
    headers.emplace_back("best");
    return headers;
  }());

  std::vector<double> column_sums(columns.size(), 0.0);
  std::vector<int> wins(columns.size(), 0);
  int vehigan_best_or_tied_advanced = 0;
  std::vector<std::vector<std::string>> csv_rows;
  for (std::size_t a = 0; a < data.test_attacks.size(); ++a) {
    std::vector<double> row_scores;
    row_scores.push_back(vehigan_auroc(10, a));
    row_scores.push_back(vehigan_auroc(5, a));
    row_scores.push_back(
        metrics::auroc(base_ae_benign, base_ae.score_all(data.raw_test_attacks[a].malicious)));
    const auto& malicious = data.test_attacks[a].malicious;
    row_scores.push_back(metrics::auroc(vehi_ae_benign, vehi_ae.score_all(malicious)));
    row_scores.push_back(metrics::auroc(vehi_pca_benign, vehi_pca.score_all(malicious)));
    row_scores.push_back(metrics::auroc(vehi_knn_benign, vehi_knn.score_all(malicious)));
    row_scores.push_back(metrics::auroc(vehi_gmm_benign, vehi_gmm.score_all(malicious)));

    std::size_t best = 0;
    for (std::size_t c = 0; c < row_scores.size(); ++c) {
      column_sums[c] += row_scores[c];
      if (row_scores[c] > row_scores[best]) best = c;
    }
    ++wins[best];
    if (a >= 29 && best <= 1) ++vehigan_best_or_tied_advanced;  // rows 30-35: coupled attacks

    std::vector<std::string> row = {data.test_attacks[a].attack_name};
    std::vector<std::string> csv_row = {data.test_attacks[a].attack_name};
    for (double v : row_scores) {
      row.push_back(experiments::TablePrinter::format(v, 2));
      csv_row.push_back(experiments::TablePrinter::format(v, 4));
    }
    csv_rows.push_back(std::move(csv_row));
    row.push_back(columns[best]);
    table.add_row(std::move(row));
  }
  {
    std::vector<std::string> avg_row = {"Average"};
    for (double sum : column_sums) {
      avg_row.push_back(experiments::TablePrinter::format(sum / 35.0, 2));
    }
    avg_row.emplace_back("");
    table.add_row(std::move(avg_row));
  }
  table.print();

  std::cout << "\nwins per detector:";
  for (std::size_t c = 0; c < columns.size(); ++c) {
    std::cout << "  " << columns[c] << "=" << wins[c];
  }
  std::cout << "\nadvanced heading&yaw-rate attacks where a VehiGAN variant is best: "
            << vehigan_best_or_tied_advanced << "/6\n";

  // CSV export for plotting.
  std::filesystem::create_directories("bench_results");
  util::CsvWriter csv("bench_results/table3_auroc.csv");
  std::vector<std::string> header = {"attack"};
  header.insert(header.end(), columns.begin(), columns.end());
  csv.write_row(header);
  for (const auto& row : csv_rows) csv.write_row(row);
  std::cout << "rows also written to bench_results/table3_auroc.csv\n";
  bench::write_telemetry_sidecar("table3_baseline_comparison");
  return 0;
}
