// Extension experiment — full event-driven co-simulation under increasing
// channel congestion. Unlike bench_ext_deployment (trace replay through a
// reception filter), this harness runs the discrete-event kernel: jittered
// 10 Hz transmissions, frame-level collisions, certificate verification, and
// CRL enforcement all interact. Reported per congestion level: medium
// statistics, RSU acceptance, detection outcome.

#include <iostream>

#include "bench_common.hpp"
#include "simnet/scenario.hpp"

using namespace vehigan;

int main() {
  experiments::Workspace workspace(bench::bench_config());
  auto ensemble = std::shared_ptr<mbds::VehiGan>(
      workspace.bundle().make_ensemble(std::min<std::size_t>(10, 60), 5, 53));

  sim::TrafficSimConfig traffic = workspace.config().test_sim;
  traffic.duration_s = 45.0;
  traffic.seed = 5151;
  const sim::BsmDataset fleet = sim::TrafficSimulator(traffic).run();

  std::cout << "=== Extension: event-driven V2X co-simulation (collisions + SCMS + VEHIGAN) "
               "===\n"
            << "fleet " << fleet.traces.size() << " vehicles, 45 s, attack "
            << vasp::attack_by_index(30).name << ", 25% attackers\n\n";

  experiments::TablePrinter table({"congestion", "sent", "delivered", "collision kills",
                                   "RSU accepted", "post-CRL drops", "MBRs", "recall",
                                   "honest revoked"});
  for (double congestion : {0.0, 0.2, 0.4}) {
    simnet::ScenarioConfig scenario;
    scenario.channel.p_congestion_loss = congestion;
    const simnet::ScenarioResult r =
        simnet::run_scenario(fleet, scenario, ensemble, workspace.data().scaler);
    table.add_row({experiments::TablePrinter::format(congestion, 1),
                   std::to_string(r.medium.frames_sent), std::to_string(r.medium.deliveries),
                   std::to_string(r.medium.collisions), std::to_string(r.rsu.accepted),
                   std::to_string(r.rsu.rejected_revoked), std::to_string(r.rsu.reports),
                   experiments::TablePrinter::format(r.attacker_recall(), 2),
                   std::to_string(r.honest_revoked())});
  }
  table.print();
  std::cout << "\n(recall should degrade gracefully with congestion while honest\n"
               " revocations stay at zero; post-CRL drops show enforcement closing\n"
               " the loop inside the same simulation.)\n";
  bench::write_telemetry_sidecar("ext_event_sim");
  return 0;
}
