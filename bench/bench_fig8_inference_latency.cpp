// Fig. 8 — scalability analysis: per-snapshot inference latency of every
// trained discriminator, (a) in the standard graph-walking runtime and
// (b) compiled to the allocation-free fused "lite" engine (the TFLite
// analogue), grouped by the number of layers in D.
//
// The paper's shape: standard inference sits comfortably under the 100 ms
// BSM interval; lite inference is orders of magnitude faster (< 0.4 ms),
// with a mild increase per extra layer.
//
// Built on google-benchmark; one registered benchmark per (model, runtime).

#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "nn/lite.hpp"

using namespace vehigan;

namespace {

struct Fixture {
  experiments::Workspace workspace{bench::bench_config()};
  std::vector<float> sample;
  std::vector<nn::Sequential> standard;          // one critic per model
  std::vector<nn::lite::LiteModel> lite;         // lite-compiled critics
  std::vector<std::string> names;
  std::vector<int> layers;

  Fixture() {
    const auto& models = workspace.models();
    const auto& data = workspace.data();
    sample.assign(data.test_benign.snapshot(0).begin(), data.test_benign.snapshot(0).end());
    for (const auto& model : models) {
      standard.push_back(model.discriminator.clone());
      lite.push_back(nn::lite::LiteModel::compile(
          model.discriminator, {1, model.config.window, model.config.width}));
      names.push_back(model.config.name());
      layers.push_back(model.config.layers);
    }
  }
};

Fixture& fixture() {
  static Fixture instance;
  return instance;
}

void standard_inference(benchmark::State& state, std::size_t index) {
  auto& fx = fixture();
  const std::size_t window = fx.workspace.config().window;
  for (auto _ : state) {
    const float score =
        nn::forward_scalar(fx.standard[index], fx.sample, window, features::kNumFeatures);
    benchmark::DoNotOptimize(score);
  }
}

void lite_inference(benchmark::State& state, std::size_t index) {
  auto& fx = fixture();
  for (auto _ : state) {
    const float score = fx.lite[index].infer_scalar(fx.sample);
    benchmark::DoNotOptimize(score);
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto& fx = fixture();

  // Per-layer-count averages printed up front (the Fig. 8 grouping); the
  // registered benchmarks below give the rigorous per-model numbers.
  std::map<int, std::pair<double, int>> standard_by_layers;
  std::map<int, std::pair<double, int>> lite_by_layers;
  const std::size_t window = fx.workspace.config().window;
  for (std::size_t i = 0; i < fx.standard.size(); ++i) {
    constexpr int kReps = 50;
    standard_by_layers[fx.layers[i]].first += bench::mean_ms(kReps, [&] {
      return nn::forward_scalar(fx.standard[i], fx.sample, window, features::kNumFeatures);
    });
    standard_by_layers[fx.layers[i]].second += 1;
    lite_by_layers[fx.layers[i]].first +=
        bench::mean_ms(kReps, [&] { return fx.lite[i].infer_scalar(fx.sample); });
    lite_by_layers[fx.layers[i]].second += 1;
  }
  std::cout << "=== Fig. 8: inference latency per snapshot, by discriminator depth ===\n\n";
  experiments::TablePrinter table(
      {"layers in D", "standard mean [ms]", "lite mean [ms]", "speedup", "models"});
  for (const auto& [depth, acc] : standard_by_layers) {
    const double std_ms = acc.first / acc.second;
    const double lite_ms = lite_by_layers[depth].first / lite_by_layers[depth].second;
    table.add_row({std::to_string(depth), experiments::TablePrinter::format(std_ms, 3),
                   experiments::TablePrinter::format(lite_ms, 4),
                   experiments::TablePrinter::format(std_ms / lite_ms, 1) + "x",
                   std::to_string(acc.second)});
  }
  table.print();
  std::cout << "\nBSM interval budget: 100 ms per message. Detailed per-model benchmarks "
               "follow.\n\n";

  // Register a representative subset with google-benchmark (one per
  // (z-dim-extreme, layer count) cell to keep the run short) plus the
  // biggest model in each runtime.
  for (std::size_t i = 0; i < fx.standard.size(); ++i) {
    if (fx.names[i].find("_e100") == std::string::npos) continue;  // 15 models
    benchmark::RegisterBenchmark(("standard/" + fx.names[i]).c_str(), standard_inference, i)
        ->Unit(benchmark::kMicrosecond)
        ->MinTime(0.05);
    benchmark::RegisterBenchmark(("lite/" + fx.names[i]).c_str(), lite_inference, i)
        ->Unit(benchmark::kMicrosecond)
        ->MinTime(0.05);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  bench::write_telemetry_sidecar("fig8_inference_latency");
  return 0;
}
