// Extension experiment — trajectory verification vs VEHIGAN.
//
// Related work (paper Sec. VI, Nguyen et al.) verifies motion behaviour by
// tracking predicted trajectories. This harness compares a classical
// constant-velocity Kalman tracker against VEHIGAN_10^10 at *trace level*
// (one score per vehicle): the tracker's score is its 90th-percentile NIS,
// VEHIGAN's is the mean of its per-window ensemble scores over the trace.
//
// Expected: the tracker dominates on position/speed lies (it models exactly
// that physics) and is blind to yaw-rate-only lies — the coverage gap the
// paper's wx/wy features close.

#include <iostream>
#include <map>

#include "baselines/kalman_tracker.hpp"
#include "bench_common.hpp"
#include "vasp/dataset_builder.hpp"

using namespace vehigan;

namespace {

/// Trace-level scores from per-window scores via the window->vehicle map.
std::vector<float> per_trace_mean(const std::vector<float>& window_scores,
                                  const std::vector<std::uint32_t>& vehicle_ids) {
  std::map<std::uint32_t, std::pair<double, std::size_t>> acc;
  for (std::size_t i = 0; i < window_scores.size(); ++i) {
    auto& slot = acc[vehicle_ids[i]];
    slot.first += window_scores[i];
    slot.second += 1;
  }
  std::vector<float> out;
  out.reserve(acc.size());
  for (const auto& [vehicle, sum_count] : acc) {
    out.push_back(static_cast<float>(sum_count.first / sum_count.second));
  }
  return out;
}

}  // namespace

int main() {
  experiments::Workspace workspace(bench::bench_config());
  const auto& data = workspace.data();
  const auto& bundle = workspace.bundle();
  const std::size_t m = std::min<std::size_t>(10, bundle.detectors().size());
  auto ensemble = bundle.make_ensemble(m, m, 83);
  baselines::KalmanTrackerDetector tracker;

  std::cout << "=== Extension: KF trajectory verification vs VehiGAN (trace-level AUROC) "
               "===\n\n";

  // Benign reference: the clean test fleet.
  const sim::BsmDataset fleet = sim::TrafficSimulator(workspace.config().test_sim).run();
  std::vector<float> tracker_benign;
  for (const auto& trace : fleet.traces) tracker_benign.push_back(tracker.trace_score(trace));
  const std::vector<float> gan_benign =
      per_trace_mean(ensemble->score_all(data.test_benign), data.test_benign.vehicle_ids);

  experiments::TablePrinter table({"Attack", "KF-Tracker", "VehiGAN", "winner"});
  double sum_kf = 0.0, sum_gan = 0.0;
  int kf_wins = 0, gan_wins = 0;
  for (std::size_t a = 0; a < data.test_attacks.size(); ++a) {
    const auto& scenario_windows = data.test_attacks[a];
    // Tracker consumes raw attacked traces.
    const auto scenario = vasp::build_scenario(
        fleet, vasp::attack_by_index(scenario_windows.attack_index),
        workspace.config().scenario);
    std::vector<float> tracker_attack;
    for (const auto& labeled : scenario.traces) {
      if (labeled.malicious) tracker_attack.push_back(tracker.trace_score(labeled.trace));
    }
    const double a_kf = metrics::auroc(tracker_benign, tracker_attack);
    const std::vector<float> gan_attack = per_trace_mean(
        ensemble->score_all(scenario_windows.malicious), scenario_windows.malicious.vehicle_ids);
    const double a_gan = metrics::auroc(gan_benign, gan_attack);
    sum_kf += a_kf;
    sum_gan += a_gan;
    const bool kf_better = a_kf > a_gan + 0.02;
    const bool gan_better = a_gan > a_kf + 0.02;
    if (kf_better) ++kf_wins;
    if (gan_better) ++gan_wins;
    table.add_row({std::string(scenario_windows.attack_name),
                   experiments::TablePrinter::format(a_kf, 2),
                   experiments::TablePrinter::format(a_gan, 2),
                   kf_better ? "KF" : gan_better ? "VehiGAN" : "~tie"});
  }
  table.add_row({"Average", experiments::TablePrinter::format(sum_kf / 35.0, 2),
                 experiments::TablePrinter::format(sum_gan / 35.0, 2), ""});
  table.print();
  std::cout << "\nwins: KF=" << kf_wins << "  VehiGAN=" << gan_wins
            << "  (rest ~tied)\n"
            << "(the tracker owns position/speed lies and, via the reported velocity\n"
            << " vector, heading lies too; it is blind to yaw-rate-only falsification —\n"
            << " the field VehiGAN's wx/wy features observe. Complementary coverage.)\n";
  bench::write_telemetry_sidecar("ext_tracker_comparison");
  return 0;
}
