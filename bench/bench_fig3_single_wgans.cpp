// Fig. 3 — performance of all 60 WGAN discriminators against each of the 35
// misbehaviors. The paper plots one line per model; this harness prints, per
// attack, the distribution over the grid (min / mean / max = "upper bound")
// plus the three models with the highest average AUROC, and reports the
// headline observation: no single WGAN dominates across attacks.
//
// The full 60x35 AUROC matrix is exported to bench_results/fig3_auroc.csv.

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <numeric>

#include "bench_common.hpp"
#include "util/csv.hpp"

using namespace vehigan;

int main() {
  experiments::Workspace workspace(bench::bench_config());
  const auto& data = workspace.data();
  const auto& bundle = workspace.bundle();
  const auto& detectors = bundle.detectors();
  const std::size_t num_models = detectors.size();

  std::cout << "=== Fig. 3: single-WGAN AUROC across all attacks (" << num_models
            << " models) ===\n\n";

  // Per-model benign scores once; per-(model, attack) AUROC.
  std::vector<std::vector<float>> benign(num_models);
  for (std::size_t i = 0; i < num_models; ++i) {
    benign[i] = detectors[i]->score_all(data.test_benign);
  }
  std::vector<std::vector<double>> auroc(num_models,
                                         std::vector<double>(data.test_attacks.size()));
  for (std::size_t i = 0; i < num_models; ++i) {
    for (std::size_t a = 0; a < data.test_attacks.size(); ++a) {
      auroc[i][a] = metrics::auroc(benign[i],
                                   detectors[i]->score_all(data.test_attacks[a].malicious));
    }
  }

  // Top-3 models by average AUROC over the test matrix (Fig. 3 highlights).
  std::vector<double> model_avg(num_models, 0.0);
  for (std::size_t i = 0; i < num_models; ++i) {
    model_avg[i] = std::accumulate(auroc[i].begin(), auroc[i].end(), 0.0) /
                   static_cast<double>(auroc[i].size());
  }
  std::vector<std::size_t> order(num_models);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return model_avg[a] > model_avg[b]; });

  std::cout << "top-3 models by mean test AUROC:\n";
  for (int r = 0; r < 3; ++r) {
    std::cout << "  " << detectors[order[r]]->name() << "  mean="
              << experiments::TablePrinter::format(model_avg[order[r]], 3) << "\n";
  }
  std::cout << "\n";

  experiments::TablePrinter table(
      {"Attack", "min", "mean", "max(UB)", "top1", "top2", "top3"});
  std::size_t attacks_where_a_top3_model_is_weak = 0;
  for (std::size_t a = 0; a < data.test_attacks.size(); ++a) {
    double lo = 1.0, hi = 0.0, sum = 0.0;
    for (std::size_t i = 0; i < num_models; ++i) {
      lo = std::min(lo, auroc[i][a]);
      hi = std::max(hi, auroc[i][a]);
      sum += auroc[i][a];
    }
    table.add_row(data.test_attacks[a].attack_name,
                  {lo, sum / static_cast<double>(num_models), hi, auroc[order[0]][a],
                   auroc[order[1]][a], auroc[order[2]][a]});
    for (int r = 0; r < 3; ++r) {
      if (auroc[order[r]][a] < 0.6) {
        ++attacks_where_a_top3_model_is_weak;
        break;
      }
    }
  }
  table.print();
  std::cout << "\nattacks where even a top-3 model scores < 0.6 AUROC: "
            << attacks_where_a_top3_model_is_weak << "/35\n"
            << "-> no single WGAN provides a comprehensive MBDS (paper Sec. V-A1),\n"
            << "   motivating the ADS-selected ensemble.\n";

  // CSV export of the full matrix for plotting.
  std::filesystem::create_directories("bench_results");
  util::CsvWriter csv("bench_results/fig3_auroc.csv");
  std::vector<std::string> header = {"model"};
  for (const auto& attack : data.test_attacks) header.emplace_back(attack.attack_name);
  csv.write_row(header);
  for (std::size_t i = 0; i < num_models; ++i) {
    std::vector<std::string> row = {detectors[i]->name()};
    for (double v : auroc[i]) row.push_back(experiments::TablePrinter::format(v, 4));
    csv.write_row(row);
  }
  std::cout << "full 60x35 matrix written to bench_results/fig3_auroc.csv\n";
  bench::write_telemetry_sidecar("fig3_single_wgans");
  return 0;
}
