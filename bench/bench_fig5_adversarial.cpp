// Fig. 5 — adversarial robustness of single-WGAN VEHIGAN_1^1:
//   (a) white-box AFP: FPR of the top-10 models vs epsilon, against a
//       magnitude-matched random-noise baseline,
//   (b) AFN: FNR of the top-10 models vs epsilon (intrinsic robustness),
//   (c) black-box transfer: AFP samples crafted on the best model, replayed
//       against the other nine.
//
// Expected shape: (a) FPR explodes with epsilon while noise stays low;
// (b) FNR barely moves; (c) transfer behaves like noise, not like (a).

#include <iostream>

#include "adv/fgsm.hpp"
#include "adv/robustness.hpp"
#include "bench_common.hpp"

using namespace vehigan;

namespace {
// The paper sweeps eps in [0, 0.02]. This repo's critics are smaller and
// smoother (weight-clipped, trained at reduced scale), so the same FPR
// transition happens at ~5x the paper's epsilon; the sweep covers both
// ranges and EXPERIMENTS.md records the rescaling.
constexpr float kEpsilons[] = {0.0F, 0.01F, 0.02F, 0.05F, 0.1F};
}

int main() {
  experiments::Workspace workspace(bench::bench_config());
  const auto& data = workspace.data();
  const auto& bundle = workspace.bundle();
  const std::size_t top = std::min<std::size_t>(10, bundle.detectors().size());

  // A manageable benign sample (every window needs one backward pass per
  // model per subplot).
  const features::WindowSet benign = data.test_benign.subsample(4);
  util::Rng noise_rng(5);

  std::cout << "=== Fig. 5a: white-box AFP attack vs random noise (top-" << top
            << " models) ===\n\n";
  {
    experiments::TablePrinter table({"eps", "FPR(FGSM) mean", "FPR(FGSM) min-max",
                                     "FPR(noise) mean"});
    for (float eps : kEpsilons) {
      double sum_adv = 0.0, lo = 1.0, hi = 0.0, sum_noise = 0.0;
      for (std::size_t r = 0; r < top; ++r) {
        auto& model = *bundle.top(r);
        const auto adv_set =
            adv::craft_adversarial(model, benign, eps, adv::AttackGoal::kFalsePositive);
        const double fpr = adv::flag_rate(model, adv_set);
        sum_adv += fpr;
        lo = std::min(lo, fpr);
        hi = std::max(hi, fpr);
        const auto noisy = adv::craft_noise(benign, eps, noise_rng);
        sum_noise += adv::flag_rate(model, noisy);
      }
      table.add_row({experiments::TablePrinter::format(eps, 3),
                     experiments::TablePrinter::format(sum_adv / top, 2),
                     experiments::TablePrinter::format(lo, 2) + "-" +
                         experiments::TablePrinter::format(hi, 2),
                     experiments::TablePrinter::format(sum_noise / top, 2)});
    }
    table.print();
  }

  std::cout << "\n=== Fig. 5b: AFN attack on misbehavior windows (top-" << top
            << " models) ===\n\n";
  {
    // Pool a sample of windows across attacks that the models detect, then
    // try to make them evade.
    features::WindowSet attacks;
    attacks.window = benign.window;
    attacks.width = benign.width;
    for (const auto& scenario : data.test_attacks) {
      attacks.extend(scenario.malicious.subsample(35));
    }
    experiments::TablePrinter table({"eps", "FNR mean", "FNR min-max"});
    for (float eps : kEpsilons) {
      double sum = 0.0, lo = 1.0, hi = 0.0;
      for (std::size_t r = 0; r < top; ++r) {
        auto& model = *bundle.top(r);
        const auto adv_set =
            adv::craft_adversarial(model, attacks, eps, adv::AttackGoal::kFalseNegative);
        const double fnr = adv::miss_rate(model, adv_set);
        sum += fnr;
        lo = std::min(lo, fnr);
        hi = std::max(hi, fnr);
      }
      table.add_row({experiments::TablePrinter::format(eps, 3),
                     experiments::TablePrinter::format(sum / top, 2),
                     experiments::TablePrinter::format(lo, 2) + "-" +
                         experiments::TablePrinter::format(hi, 2)});
    }
    table.print();
    std::cout << "(expected: FNR stays near its eps=0 level — AFN perturbations push\n"
                 " samples off the benign manifold instead of onto it, Sec. V-B1)\n";
  }

  std::cout << "\n=== Fig. 5c: black-box AFP transfer from the best model ===\n\n";
  {
    auto& surrogate = *bundle.top(0);
    experiments::TablePrinter table({"eps", "FPR white-box (source)",
                                     "FPR black-box mean", "FPR black-box min-max"});
    for (float eps : kEpsilons) {
      const auto adv_set =
          adv::craft_adversarial(surrogate, benign, eps, adv::AttackGoal::kFalsePositive);
      const double white = adv::flag_rate(surrogate, adv_set);
      double sum = 0.0, lo = 1.0, hi = 0.0;
      for (std::size_t r = 1; r < top; ++r) {
        const double fpr = adv::flag_rate(*bundle.top(r), adv_set);
        sum += fpr;
        lo = std::min(lo, fpr);
        hi = std::max(hi, fpr);
      }
      table.add_row({experiments::TablePrinter::format(eps, 3),
                     experiments::TablePrinter::format(white, 2),
                     experiments::TablePrinter::format(sum / (top - 1), 2),
                     experiments::TablePrinter::format(lo, 2) + "-" +
                         experiments::TablePrinter::format(hi, 2)});
    }
    table.print();
    std::cout << "(expected: black-box response ~ noise level -> adversarial samples do\n"
                 " not transfer across independently trained critics, Sec. V-B1)\n";
  }
  bench::write_telemetry_sidecar("fig5_adversarial");
  return 0;
}
