// Extension — throughput of the batched parallel ensemble inference engine.
//
// Compares three ways of scoring the same window set with a VEHIGAN_m^m
// ensemble of randomly initialised paper-architecture critics:
//
//   per-sample   one VehiGan::score() call per window (the pre-batching
//                deployment path: m graph walks per window, batch size 1)
//   batched x1   one VehiGan::score_all() call, no thread pool (one GEMM
//                per dense layer over up to kMaxBatch windows per member)
//   batched xT   score_all() with the members fanned out across a
//                util::ThreadPool of all hardware threads, each worker
//                scoring its member on a private critic clone
//
// Reported in windows/sec; the full table is exported to
// bench_results/ext_batch_inference.csv. Expectation: batched x1 wins on
// memory locality alone, and batched xT adds near-linear member-level
// scaling on multi-core hosts (>= 3x end-to-end on >= 4 hardware threads).
//
// No trained workspace needed: throughput only depends on the architecture,
// so critics are built directly with random weights.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "experiments/table_printer.hpp"
#include "features/windows.hpp"
#include "gan/architecture.hpp"
#include "mbds/ensemble.hpp"
#include "mbds/wgan_detector.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

using namespace vehigan;

namespace {

bool quick_scale() {
  const char* scale = std::getenv("VEHIGAN_BENCH_SCALE");
  return scale != nullptr && std::string(scale) == "quick";
}

/// m critics spanning the paper's depth grid {6, 7, 8}, random weights.
std::vector<std::shared_ptr<mbds::WganDetector>> grid_critics(std::size_t m) {
  std::vector<std::shared_ptr<mbds::WganDetector>> detectors;
  util::Rng rng(2024);
  for (std::size_t i = 0; i < m; ++i) {
    gan::WganConfig config;
    config.id = static_cast<int>(i);
    config.layers = 6 + static_cast<int>(i % 3);
    gan::TrainedWgan model;
    model.config = config;
    model.discriminator = gan::build_discriminator(config, rng);
    auto det = std::make_shared<mbds::WganDetector>(std::move(model));
    det->set_calibration(0.0, 1.0);
    det->set_threshold(0.0);
    detectors.push_back(std::move(det));
  }
  return detectors;
}

features::WindowSet random_windows(std::size_t count, std::size_t window, std::size_t width) {
  util::Rng rng(7);
  features::WindowSet set;
  set.window = window;
  set.width = width;
  std::vector<float> snapshot(window * width);
  for (std::size_t i = 0; i < count; ++i) {
    for (float& v : snapshot) v = rng.uniform_f(0.0F, 1.0F);
    set.append(snapshot, static_cast<std::uint32_t>(i));
  }
  return set;
}

struct Fixture {
  std::size_t m = quick_scale() ? 4 : 10;
  std::size_t num_windows = quick_scale() ? 64 : 512;
  features::WindowSet windows = random_windows(num_windows, 10, 12);
  // k == m so every mode runs every critic on every window: the comparison
  // measures the engine, not the subset draw.
  mbds::VehiGan per_sample{grid_critics(m), m, 1};
  mbds::VehiGan batched_one{grid_critics(m), m, 1};
  mbds::VehiGan batched_pooled{grid_critics(m), m, 1};
  std::size_t threads = std::max<std::size_t>(2, std::thread::hardware_concurrency());

  Fixture() { batched_pooled.set_thread_pool(std::make_shared<util::ThreadPool>(threads)); }
};

Fixture& fixture() {
  static Fixture instance;
  return instance;
}

double run_per_sample(mbds::VehiGan& ens, const features::WindowSet& windows) {
  double sink = 0.0;
  for (std::size_t i = 0; i < windows.count(); ++i) sink += ens.score(windows.snapshot(i));
  return sink;
}

double run_batched(mbds::VehiGan& ens, const features::WindowSet& windows) {
  const std::vector<float> scores = ens.score_all(windows);
  double sink = 0.0;
  for (float s : scores) sink += s;
  return sink;
}

/// Best-of-reps throughput in windows/sec, on bench_common's shared
/// best-of timing helper.
template <typename F>
double windows_per_sec(F&& body, std::size_t num_windows, int reps) {
  return static_cast<double>(num_windows) / (bench::best_of_ms(reps, body) / 1000.0);
}

void bm_per_sample(benchmark::State& state) {
  auto& fx = fixture();
  for (auto _ : state) benchmark::DoNotOptimize(run_per_sample(fx.per_sample, fx.windows));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * fx.num_windows));
}

void bm_batched_one_thread(benchmark::State& state) {
  auto& fx = fixture();
  for (auto _ : state) benchmark::DoNotOptimize(run_batched(fx.batched_one, fx.windows));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * fx.num_windows));
}

void bm_batched_pooled(benchmark::State& state) {
  auto& fx = fixture();
  for (auto _ : state) benchmark::DoNotOptimize(run_batched(fx.batched_pooled, fx.windows));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * fx.num_windows));
}

}  // namespace

int main(int argc, char** argv) {
  auto& fx = fixture();
  const int reps = quick_scale() ? 2 : 5;

  std::cout << "=== Batched parallel ensemble inference: windows/sec ===\n"
            << "ensemble m=k=" << fx.m << ", " << fx.num_windows << " windows of 10x12, "
            << fx.threads << " pool threads (" << std::thread::hardware_concurrency()
            << " hardware threads)\n\n";

  struct Mode {
    std::string name;
    std::size_t threads;
    double wps;
  };
  std::vector<Mode> modes;
  modes.push_back({"per-sample (1 thread, batch 1)", 1,
                   windows_per_sec([&] { return run_per_sample(fx.per_sample, fx.windows); },
                                   fx.num_windows, reps)});
  modes.push_back({"batched (1 thread)", 1,
                   windows_per_sec([&] { return run_batched(fx.batched_one, fx.windows); },
                                   fx.num_windows, reps)});
  modes.push_back({"batched (" + std::to_string(fx.threads) + " threads)", fx.threads,
                   windows_per_sec([&] { return run_batched(fx.batched_pooled, fx.windows); },
                                   fx.num_windows, reps)});

  const double baseline = modes[0].wps;
  experiments::TablePrinter table({"mode", "threads", "windows/sec", "speedup"});
  for (const auto& mode : modes) {
    table.add_row({mode.name, std::to_string(mode.threads),
                   experiments::TablePrinter::format(mode.wps, 1),
                   experiments::TablePrinter::format(mode.wps / baseline, 2) + "x"});
  }
  table.print();

  std::filesystem::create_directories("bench_results");
  util::CsvWriter csv("bench_results/ext_batch_inference.csv");
  csv.write_row({"mode", "threads", "hardware_threads", "ensemble_m", "num_windows",
                 "windows_per_sec", "speedup_vs_per_sample"});
  for (const auto& mode : modes) {
    csv.write_row({mode.name, std::to_string(mode.threads),
                   std::to_string(std::thread::hardware_concurrency()), std::to_string(fx.m),
                   std::to_string(fx.num_windows), experiments::TablePrinter::format(mode.wps, 1),
                   experiments::TablePrinter::format(mode.wps / baseline, 3)});
  }
  std::cout << "\nrows written to bench_results/ext_batch_inference.csv\n"
            << "(the >= 3x threaded-vs-per-sample target assumes >= 4 hardware threads)\n\n";

  benchmark::RegisterBenchmark("ensemble/per_sample", bm_per_sample)
      ->Unit(benchmark::kMillisecond)
      ->MinTime(0.1);
  benchmark::RegisterBenchmark("ensemble/batched_1thread", bm_batched_one_thread)
      ->Unit(benchmark::kMillisecond)
      ->MinTime(0.1);
  benchmark::RegisterBenchmark("ensemble/batched_pooled", bm_batched_pooled)
      ->Unit(benchmark::kMillisecond)
      ->MinTime(0.1);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  bench::write_telemetry_sidecar("ext_batch_inference");
  return 0;
}
