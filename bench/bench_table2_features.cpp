// Table II — physics-guided feature engineering: regenerates the relations
// between decomposed, relational, and delta features and verifies them
// empirically on simulated traffic. For each Table-II relation we report the
// Pearson correlation on benign traces (expected ~1) and under a misbehavior
// that breaks the relation (expected to collapse) — this is the mechanism
// that makes the engineered features detection-bearing.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "experiments/table_printer.hpp"
#include "features/feature_engineering.hpp"
#include "sim/traffic_sim.hpp"
#include "vasp/dataset_builder.hpp"

using namespace vehigan;

namespace {

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  const double n = static_cast<double>(a.size());
  double ma = 0, mb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0, va = 0, vb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  return cov / std::sqrt(std::max(va * vb, 1e-12));
}

/// Gathers (lhs, rhs) samples of one Table-II relation over a trace set.
struct Relation {
  std::string name;
  std::size_t lhs;          ///< FeatureRow index
  std::size_t rhs;          ///< FeatureRow index
  double rhs_scale;         ///< e.g. dt when rhs must be scaled by dt
};

double relation_correlation(const std::vector<sim::VehicleTrace>& traces,
                            const Relation& relation) {
  std::vector<double> lhs, rhs;
  for (const auto& trace : traces) {
    const auto series = features::extract_features(trace);
    for (const auto& row : series.rows) {
      lhs.push_back(row[relation.lhs]);
      rhs.push_back(row[relation.rhs] * relation.rhs_scale);
    }
  }
  return lhs.size() < 3 ? 0.0 : pearson(lhs, rhs);
}

}  // namespace

int main() {
  std::cout << "=== Table II: feature engineering relations ===\n\n";
  std::cout << "Raw -> decomposed/relational/delta feature map:\n"
            << "  Position (x, y)    : dx = x(t)-x(t-1), dy = y(t)-y(t-1)\n"
            << "  Speed v            : vx = v cos(h), vy = v sin(h); dx ~ vx*dt\n"
            << "  Acceleration a     : ax = a cos(h), ay = a sin(h); dvx ~ ax*dt\n"
            << "  Heading h          : dhx = cos(h(t))-cos(h(t-1)), dhy likewise\n"
            << "  Yaw rate w         : wx = w cos(h), wy = w sin(h); dhx ~ -wy*dt\n\n";

  sim::TrafficSimConfig traffic;
  traffic.duration_s = 90.0;
  traffic.num_platoons = 6;
  traffic.vehicles_per_platoon = 4;
  traffic.seed = 11;
  const sim::BsmDataset benign = sim::TrafficSimulator(traffic).run();

  using features::FeatureIndex;
  const double dt = traffic.dt_s;
  const std::vector<Relation> relations = {
      {"dx ~ vx*dt", FeatureIndex::kDx, FeatureIndex::kVx, dt},
      {"dy ~ vy*dt", FeatureIndex::kDy, FeatureIndex::kVy, dt},
      {"dvx ~ ax*dt", FeatureIndex::kDVx, FeatureIndex::kAx, dt},
      {"dvy ~ ay*dt", FeatureIndex::kDVy, FeatureIndex::kAy, dt},
      {"dhx ~ -wy*dt", FeatureIndex::kDHx, FeatureIndex::kWy, -dt},
      {"dhy ~ wx*dt", FeatureIndex::kDHy, FeatureIndex::kWx, dt},
  };

  // The attack that breaks each relation by falsifying one side of it.
  const std::vector<std::string> breakers = {"RandomPosition", "RandomPosition",
                                             "RandomAcceleration", "RandomAcceleration",
                                             "RandomYawRate", "RandomYawRate"};

  experiments::TablePrinter table({"Relation", "corr (benign)", "corr (attack)", "attack"});
  for (std::size_t i = 0; i < relations.size(); ++i) {
    const double benign_corr = relation_correlation(benign.traces, relations[i]);
    const auto scenario = vasp::build_scenario(
        benign, vasp::attack_by_name(breakers[i]), vasp::ScenarioOptions{});
    std::vector<sim::VehicleTrace> attacked;
    for (const auto& labeled : scenario.traces) {
      if (labeled.malicious) attacked.push_back(labeled.trace);
    }
    const double attack_corr = relation_correlation(attacked, relations[i]);
    table.add_row({relations[i].name, experiments::TablePrinter::format(benign_corr, 3),
                   experiments::TablePrinter::format(attack_corr, 3), breakers[i]});
  }
  table.print();
  std::cout << "\nBenign correlations near 1.0 and collapsed attack correlations confirm\n"
               "the physics-guided features carry the misbehavior signal (Sec. III-C).\n";
  bench::write_telemetry_sidecar("table2_features");
  return 0;
}
