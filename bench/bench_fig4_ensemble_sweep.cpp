// Fig. 4 — average AUROC of VEHIGAN_m^k over the candidate-pool size m and
// the deployed-subset size k. The paper's findings to reproduce:
//   * AUROC grows with m and plateaus around m >= 5,
//   * k does not need to equal m: k > m/2 already gives elevated scores.
//
// Also runs the DESIGN.md ablation: ADS-ranked candidates vs randomly picked
// candidates, isolating the value of the pre-evaluation step (Sec. III-E).

#include <iostream>

#include "bench_common.hpp"

using namespace vehigan;

namespace {

/// Average test AUROC of VEHIGAN_m^k given precomputed member score
/// matrices for benign and every attack.
double sweep_auroc(const bench::ScoreMatrix& benign,
                   const std::vector<bench::ScoreMatrix>& attacks, std::size_t m,
                   std::size_t k, std::uint64_t seed) {
  util::Rng rng(seed);
  const std::vector<float> benign_scores = bench::ensemble_scores(benign, m, k, rng);
  double sum = 0.0;
  for (const auto& attack : attacks) {
    const std::vector<float> attack_scores = bench::ensemble_scores(attack, m, k, rng);
    sum += metrics::auroc(benign_scores, attack_scores);
  }
  return sum / static_cast<double>(attacks.size());
}

}  // namespace

int main() {
  experiments::Workspace workspace(bench::bench_config());
  const auto& data = workspace.data();
  const auto& bundle = workspace.bundle();
  const std::size_t max_m = std::min<std::size_t>(10, bundle.detectors().size());

  std::cout << "=== Fig. 4: average AUROC of VehiGAN_m^k ===\n\n";

  // Member scores once, reused by every (m, k) cell.
  const bench::ScoreMatrix benign = bench::score_matrix(bundle, max_m, data.test_benign);
  std::vector<bench::ScoreMatrix> attacks;
  attacks.reserve(data.test_attacks.size());
  for (const auto& attack : data.test_attacks) {
    attacks.push_back(bench::score_matrix(bundle, max_m, attack.malicious));
  }

  std::vector<std::string> headers = {"m \\ k"};
  for (std::size_t k = 1; k <= max_m; ++k) headers.push_back("k=" + std::to_string(k));
  experiments::TablePrinter table(std::move(headers));
  double plateau_small_m = 0.0;  // best AUROC with m < 5
  double plateau_large_m = 0.0;  // best AUROC with m >= 5
  for (std::size_t m = 1; m <= max_m; ++m) {
    std::vector<std::string> row = {"m=" + std::to_string(m)};
    for (std::size_t k = 1; k <= max_m; ++k) {
      if (k > m) {
        row.emplace_back("-");
        continue;
      }
      const double score = sweep_auroc(benign, attacks, m, k, 1000 + m * 16 + k);
      row.push_back(experiments::TablePrinter::format(score, 3));
      if (m < 5) plateau_small_m = std::max(plateau_small_m, score);
      else plateau_large_m = std::max(plateau_large_m, score);
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::cout << "\nbest avg AUROC with m<5: "
            << experiments::TablePrinter::format(plateau_small_m, 3)
            << ", with m>=5: " << experiments::TablePrinter::format(plateau_large_m, 3)
            << " (expected: gains plateau around m >= 5, k > m/2 suffices)\n";

  // ---- Ablation: ADS selection vs random candidate pools -----------------
  std::cout << "\n--- ablation: ADS-ranked vs random candidate pool (m=5, k=5) ---\n";
  const std::size_t pool = bundle.detectors().size();
  bench::ScoreMatrix random_benign;
  std::vector<bench::ScoreMatrix> random_attacks(data.test_attacks.size());
  util::Rng pick(99);
  const auto random_members = pick.sample_without_replacement(pool, 5);
  for (std::size_t member : random_members) {
    random_benign.scores.push_back(bundle.detectors()[member]->score_all(data.test_benign));
    for (std::size_t a = 0; a < data.test_attacks.size(); ++a) {
      random_attacks[a].scores.push_back(
          bundle.detectors()[member]->score_all(data.test_attacks[a].malicious));
    }
  }
  const double ads_score = sweep_auroc(benign, attacks, 5, 5, 7);
  const double random_score = sweep_auroc(random_benign, random_attacks, 5, 5, 7);
  std::cout << "  ADS top-5 ensemble:    " << experiments::TablePrinter::format(ads_score, 3)
            << "\n  random-5 ensemble:     "
            << experiments::TablePrinter::format(random_score, 3)
            << "\n  (pre-evaluation should clearly beat random selection)\n";
  bench::write_telemetry_sidecar("fig4_ensemble_sweep");
  return 0;
}
