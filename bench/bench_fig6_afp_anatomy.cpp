// Fig. 6 — anatomy of one AFP attack on a benign input: the sign structure
// of the score gradient (a), and the benign vs adversarial feature values
// per time step (b), with eps = 0.01 as in the paper.

#include <iomanip>
#include <iostream>

#include "adv/fgsm.hpp"
#include "bench_common.hpp"
#include "features/feature_engineering.hpp"

using namespace vehigan;

int main() {
  experiments::Workspace workspace(bench::bench_config());
  const auto& data = workspace.data();
  const auto& bundle = workspace.bundle();
  auto& model = *bundle.top(0);
  // Paper illustrates eps = 0.01; we use the rescaled operating point of our
  // smaller critics (see bench_fig5_adversarial).
  constexpr float kEps = 0.1F;

  const auto snapshot = data.test_benign.snapshot(0);
  const auto gradient = model.score_gradient(snapshot);
  const auto adversarial =
      adv::fgsm_perturb(model, snapshot, kEps, adv::AttackGoal::kFalsePositive);

  std::cout << "=== Fig. 6: AFP attack anatomy (model " << model.name() << ", eps = " << kEps
            << ") ===\n\n";

  std::cout << "(a) sign(grad_x s(x)) per cell — '+' means the attacker raises the value\n\n";
  std::cout << "    t\\f ";
  for (auto name : features::feature_names()) std::cout << std::setw(5) << name;
  std::cout << "\n";
  const std::size_t w = data.test_benign.window;
  const std::size_t f = data.test_benign.width;
  for (std::size_t t = 0; t < w; ++t) {
    std::cout << "    t-" << std::setw(2) << std::left << (w - 1 - t) << std::right;
    for (std::size_t c = 0; c < f; ++c) {
      const float g = gradient[t * f + c];
      std::cout << std::setw(5) << (g > 0 ? "+" : g < 0 ? "-" : ".");
    }
    std::cout << "\n";
  }

  std::cout << "\n(b) benign -> adversarial values (scaled units), last three steps:\n\n";
  experiments::TablePrinter table({"feature", "benign t-2", "adv t-2", "benign t-1", "adv t-1",
                                   "benign t-0", "adv t-0"});
  for (std::size_t c = 0; c < f; ++c) {
    std::vector<std::string> row = {std::string(features::feature_names()[c])};
    for (std::size_t t = w - 3; t < w; ++t) {
      row.push_back(experiments::TablePrinter::format(snapshot[t * f + c], 3));
      row.push_back(experiments::TablePrinter::format(adversarial[t * f + c], 3));
    }
    table.add_row(std::move(row));
  }
  table.print();

  const float before = model.score(snapshot);
  const float after = model.score(adversarial);
  std::cout << "\nanomaly score: " << before << " -> " << after << " (threshold "
            << model.threshold() << ")"
            << (after > model.threshold() && before <= model.threshold()
                    ? "  => benign window now flagged as misbehavior (false positive)"
                    : "")
            << "\n"
            << "every cell moved by exactly +-" << kEps
            << " of its sensor's benign dynamic range — visually indistinguishable from\n"
            << "natural sensor noise, yet precisely aligned with the critic's gradient.\n";
  bench::write_telemetry_sidecar("fig6_afp_anatomy");
  return 0;
}
