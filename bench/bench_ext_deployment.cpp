// Extension experiment — deployment realism: online VEHIGAN detection at an
// RSU behind a lossy broadcast channel and under pseudonym rotation.
//
// The paper evaluates on complete, per-vehicle message logs; a deployed RSU
// sees neither: packets are lost with distance/congestion, and senders
// rotate pseudonyms, truncating per-sender history. This harness replays a
// live mixed scenario through the net::Channel and scms::PseudonymRotation
// substrates and reports, per (congestion loss, rotation period):
//   * attacker recall: fraction of attackers reported at least once,
//   * median time to first report,
//   * honest vehicles reported (false accusations).

#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "mbds/online.hpp"
#include "net/channel.hpp"
#include "scms/pseudonym.hpp"
#include "vasp/dataset_builder.hpp"

using namespace vehigan;

namespace {

struct DeploymentResult {
  double attacker_recall = 0.0;
  double median_latency_s = -1.0;
  std::size_t honest_reported = 0;
  std::size_t messages_received = 0;
};

struct AirMessage {
  const sim::Bsm* transmitted;
  double true_x, true_y;
};

DeploymentResult run_deployment(const experiments::Workspace& workspace_const,
                                experiments::Workspace& workspace,
                                const sim::BsmDataset& benign_fleet,
                                const vasp::MisbehaviorDataset& scenario,
                                double congestion_loss, double rotation_period,
                                std::uint64_t seed) {
  (void)workspace_const;
  // Ground truth: which true vehicle is malicious.
  std::map<std::uint32_t, bool> truth;
  for (const auto& labeled : scenario.traces) {
    truth[labeled.trace.vehicle_id] = labeled.malicious;
  }

  // Optional pseudonym rotation on the transmitted stream.
  sim::BsmDataset transmitted;
  for (const auto& labeled : scenario.traces) transmitted.traces.push_back(labeled.trace);
  std::map<std::uint32_t, std::uint32_t> ownership;
  if (rotation_period > 0.0) {
    scms::PseudonymRotation rotation(rotation_period, seed ^ 0xABCD);
    transmitted = rotation.apply(transmitted, ownership);
  } else {
    for (const auto& labeled : scenario.traces) {
      ownership[labeled.trace.vehicle_id] = labeled.trace.vehicle_id;
    }
  }

  // Pair every transmitted message with the sender's *true* position (the
  // channel cares about physics, not claimed coordinates). Rotation splits
  // traces but preserves global message order per vehicle, so we walk the
  // benign fleet in lockstep via per-vehicle counters.
  std::map<std::uint32_t, const sim::VehicleTrace*> benign_by_id;
  for (const auto& trace : benign_fleet.traces) benign_by_id[trace.vehicle_id] = &trace;
  std::map<std::uint32_t, std::size_t> cursor;
  std::multimap<double, AirMessage> air;
  for (const auto& trace : transmitted.traces) {
    const std::uint32_t owner = ownership.at(trace.vehicle_id);
    const sim::VehicleTrace* true_trace = benign_by_id.at(owner);
    for (const auto& message : trace.messages) {
      const std::size_t i = cursor[owner]++;
      air.emplace(message.time,
                  AirMessage{&message, true_trace->messages[i].x, true_trace->messages[i].y});
    }
  }

  // RSU in the middle of the grid.
  net::ChannelConfig channel_cfg;
  channel_cfg.p_congestion_loss = congestion_loss;
  net::Channel channel(channel_cfg, seed);
  const double rsu_x = 480.0, rsu_y = 480.0;

  auto ensemble =
      std::shared_ptr<mbds::VehiGan>(workspace.bundle().make_ensemble(10, 5, seed));
  mbds::OnlineMbds monitor(1, ensemble, workspace.data().scaler, /*cooldown=*/1.0);

  std::map<std::uint32_t, double> first_report;  // true vehicle -> time
  DeploymentResult result;
  for (const auto& [time, msg] : air) {
    if (!channel.received(msg.true_x, msg.true_y, rsu_x, rsu_y)) continue;
    ++result.messages_received;
    const auto report = monitor.ingest(*msg.transmitted);
    if (report) {
      const std::uint32_t owner = ownership.at(report->suspect_id);
      if (!first_report.contains(owner)) first_report[owner] = time;
    }
  }

  std::size_t attackers = 0, caught = 0;
  std::vector<double> latencies;
  for (const auto& [vehicle, malicious] : truth) {
    if (malicious) {
      ++attackers;
      if (first_report.contains(vehicle)) {
        ++caught;
        latencies.push_back(first_report.at(vehicle));
      }
    } else if (first_report.contains(vehicle)) {
      ++result.honest_reported;
    }
  }
  result.attacker_recall =
      attackers == 0 ? 0.0 : static_cast<double>(caught) / static_cast<double>(attackers);
  if (!latencies.empty()) {
    result.median_latency_s = util::percentile(latencies, 50.0);
  }
  return result;
}

}  // namespace

int main() {
  experiments::Workspace workspace(bench::bench_config());
  (void)workspace.bundle();  // train/load before timing anything

  // A live scenario on fresh traffic: coupled heading&yaw-rate attackers.
  sim::TrafficSimConfig traffic = workspace.config().test_sim;
  traffic.duration_s = 60.0;
  traffic.seed = 31337;
  const sim::BsmDataset fleet = sim::TrafficSimulator(traffic).run();
  vasp::ScenarioOptions scenario_opts;
  const auto scenario =
      vasp::build_scenario(fleet, vasp::attack_by_name("RandomHeadingYawRate"), scenario_opts);

  std::cout << "=== Extension: RSU deployment under packet loss & pseudonym rotation ===\n"
            << "fleet: " << fleet.traces.size() << " vehicles (" << scenario.malicious_count()
            << " attackers), RSU at grid center, range "
            << net::ChannelConfig{}.max_range_m << " m\n\n";

  experiments::TablePrinter table({"congestion loss", "pseudonym period", "received msgs",
                                   "attacker recall", "median latency [s]",
                                   "honest reported"});
  for (double loss : {0.0, 0.2, 0.4}) {
    for (double period : {-1.0, 20.0, 5.0}) {
      const DeploymentResult r = run_deployment(workspace, workspace, fleet, scenario, loss,
                                                period, 4242);
      table.add_row({experiments::TablePrinter::format(loss, 1),
                     period <= 0 ? "none" : experiments::TablePrinter::format(period, 0) + " s",
                     std::to_string(r.messages_received),
                     experiments::TablePrinter::format(r.attacker_recall, 2),
                     r.median_latency_s < 0 ? "-" :
                         experiments::TablePrinter::format(r.median_latency_s, 1),
                     std::to_string(r.honest_reported)});
    }
  }
  table.print();
  std::cout << "\n(expected: recall degrades gracefully with loss; faster pseudonym\n"
               " rotation delays detection by truncating per-sender windows, but the\n"
               " persistent attacker is still caught within a few rotation epochs.)\n";
  bench::write_telemetry_sidecar("ext_deployment");
  return 0;
}
