// Extension experiment — PGD vs FGSM against VEHIGAN.
//
// The paper evaluates single-step FGSM (Sec. III-G) and concludes the
// randomized ensemble neutralizes it. A natural follow-up attacker is
// iterated PGD at the same L_inf budget. This harness measures, at the
// FGSM operating point of Fig. 7:
//   * PGD vs FGSM on the single compromised model (PGD >= FGSM by design),
//   * whether PGD transfers to the randomized ensemble any better (it
//     should not: non-transferability is a property of the model pool, not
//     of the attack's step count).

#include <iostream>

#include "adv/fgsm.hpp"
#include "adv/pgd.hpp"
#include "adv/robustness.hpp"
#include "bench_common.hpp"

using namespace vehigan;

int main() {
  experiments::Workspace workspace(bench::bench_config());
  const auto& data = workspace.data();
  const auto& bundle = workspace.bundle();
  const std::size_t max_m = std::min<std::size_t>(10, bundle.detectors().size());
  const features::WindowSet benign = data.test_benign.subsample(6);

  adv::PgdOptions pgd_options;
  pgd_options.eps = 0.1F;
  pgd_options.step_size = 0.025F;
  pgd_options.iterations = 8;
  const float eps = pgd_options.eps;

  std::cout << "=== Extension: PGD (iterated) vs FGSM (one-step), eps = " << eps << " ===\n\n";

  auto& victim = *bundle.top(0);
  const auto fgsm_set =
      adv::craft_adversarial(victim, benign, eps, adv::AttackGoal::kFalsePositive);
  const auto pgd_set =
      adv::craft_pgd(victim, benign, pgd_options, adv::AttackGoal::kFalsePositive);

  experiments::TablePrinter single({"attack", "FPR on compromised model"});
  single.add_row({"none (clean)",
                  experiments::TablePrinter::format(adv::flag_rate(victim, benign), 2)});
  single.add_row({"FGSM", experiments::TablePrinter::format(adv::flag_rate(victim, fgsm_set), 2)});
  single.add_row({"PGD", experiments::TablePrinter::format(adv::flag_rate(victim, pgd_set), 2)});
  single.print();

  std::cout << "\nFPR of VehiGAN_m^(m/2+1) under both attacks (gray-box transfer):\n\n";
  experiments::TablePrinter table({"m", "k", "FGSM", "PGD", "multi-model PGD"});
  util::Rng rng(47);
  for (std::size_t m = 2; m <= max_m; m += 2) {
    const std::size_t k = m / 2 + 1;
    const bench::ScoreMatrix fgsm_matrix = bench::score_matrix(bundle, max_m, fgsm_set);
    const bench::ScoreMatrix pgd_matrix = bench::score_matrix(bundle, max_m, pgd_set);
    std::vector<std::shared_ptr<mbds::WganDetector>> sources;
    for (std::size_t r = 0; r < m; ++r) sources.push_back(bundle.top(r));
    const auto pgd_multi_set =
        adv::craft_pgd_multi(sources, benign, pgd_options, adv::AttackGoal::kFalsePositive);
    const bench::ScoreMatrix multi_matrix = bench::score_matrix(bundle, max_m, pgd_multi_set);
    table.add_row(
        {std::to_string(m), std::to_string(k),
         experiments::TablePrinter::format(
             bench::ensemble_flag_rate(bundle, fgsm_matrix, m, k, rng), 2),
         experiments::TablePrinter::format(
             bench::ensemble_flag_rate(bundle, pgd_matrix, m, k, rng), 2),
         experiments::TablePrinter::format(
             bench::ensemble_flag_rate(bundle, multi_matrix, m, k, rng), 2)});
  }
  table.print();
  std::cout << "\nfindings:\n"
               " * single-model PGD transfers no better than FGSM — iteration count does\n"
               "   not buy transferability across independently trained critics;\n"
               " * BUT multi-model PGD (white-box access to all candidates + iteration)\n"
               "   largely defeats the randomized ensemble at the same eps budget. The\n"
               "   paper evaluates only single-step FGSM (Sec. III-G); its adaptive-attack\n"
               "   robustness claim does not extend to an iterated adaptive attacker.\n"
               "   This mirrors the adversarial-ML literature on ensembles of weak\n"
               "   defenses and is recorded as a negative result in EXPERIMENTS.md.\n";
  bench::write_telemetry_sidecar("ext_pgd_robustness");
  return 0;
}
