// Extension/ablation — Lipschitz regularization of the critic: weight
// clipping (Arjovsky WGAN, this repo's default) vs gradient penalty
// (Gulrajani WGAN-GP, which the paper cites as the popular variant).
//
// Trains a small matched pool under each regime on the same data/seeds and
// compares training cost and detection quality, quantifying the DESIGN.md
// trade-off that justified defaulting to clipping on a single CPU core.

#include <iostream>

#include "bench_common.hpp"
#include "mbds/pipeline.hpp"
#include "util/stopwatch.hpp"

using namespace vehigan;

namespace {

struct PoolResult {
  double train_seconds = 0.0;
  double best_avg_auroc = 0.0;
  double mean_avg_auroc = 0.0;
};

PoolResult evaluate_pool(gan::Regularization reg, gan::GeneratorArch arch,
                         const experiments::ExperimentData& data,
                         const experiments::ExperimentConfig& config) {
  gan::TrainOptions opts = config.train_opts;
  opts.reg = reg;
  opts.generator_arch = arch;
  const gan::WganTrainer trainer(opts);

  util::Stopwatch sw;
  std::vector<mbds::WganDetector> detectors;
  int id = 0;
  for (std::size_t z : {8UL, 32UL, 64UL}) {
    for (int layers : {6, 7}) {
      gan::WganConfig cfg;
      cfg.id = id++;
      cfg.z_dim = z;
      cfg.layers = layers;
      cfg.train_epochs = 6;
      detectors.emplace_back(trainer.train(cfg, data.train_windows));
    }
  }
  PoolResult result;
  result.train_seconds = sw.elapsed_seconds();

  double best = 0.0, sum = 0.0;
  for (auto& detector : detectors) {
    const auto raw = detector.score_all(data.train_windows);
    detector.calibrate(raw);
    const auto benign = detector.score_all(data.test_benign);
    double avg = 0.0;
    for (const auto& attack : data.test_attacks) {
      avg += metrics::auroc(benign, detector.score_all(attack.malicious));
    }
    avg /= static_cast<double>(data.test_attacks.size());
    best = std::max(best, avg);
    sum += avg;
  }
  result.best_avg_auroc = best;
  result.mean_avg_auroc = sum / static_cast<double>(detectors.size());
  return result;
}

}  // namespace

int main() {
  experiments::ExperimentConfig config = bench::bench_config();
  const experiments::ExperimentData data = build_experiment_data(config);

  std::cout << "=== Ablation: critic regularization & generator architecture "
               "(6-model pools, same seeds) ===\n\n";
  const PoolResult clip = evaluate_pool(gan::Regularization::kWeightClipping,
                                        gan::GeneratorArch::kUpsampleConv, data, config);
  const PoolResult gp = evaluate_pool(gan::Regularization::kGradientPenalty,
                                      gan::GeneratorArch::kUpsampleConv, data, config);
  const PoolResult deconv = evaluate_pool(gan::Regularization::kWeightClipping,
                                          gan::GeneratorArch::kTransposedConv, data, config);

  experiments::TablePrinter table(
      {"variant", "train time [s]", "best model avg AUROC", "pool mean avg AUROC"});
  table.add_row({"clip + upsample G (default)",
                 experiments::TablePrinter::format(clip.train_seconds, 1),
                 experiments::TablePrinter::format(clip.best_avg_auroc, 3),
                 experiments::TablePrinter::format(clip.mean_avg_auroc, 3)});
  table.add_row({"gradient penalty + upsample G",
                 experiments::TablePrinter::format(gp.train_seconds, 1),
                 experiments::TablePrinter::format(gp.best_avg_auroc, 3),
                 experiments::TablePrinter::format(gp.mean_avg_auroc, 3)});
  table.add_row({"clip + transposed-conv G",
                 experiments::TablePrinter::format(deconv.train_seconds, 1),
                 experiments::TablePrinter::format(deconv.best_avg_auroc, 3),
                 experiments::TablePrinter::format(deconv.mean_avg_auroc, 3)});
  table.print();
  std::cout << "\n(the GP pass costs ~2x per step — three extra critic passes via the\n"
               " finite-difference double-backprop; detection quality decides the default.)\n";
  bench::write_telemetry_sidecar("ext_regularization");
  return 0;
}
