// Table I — the attack matrix: attack types x targeted fields with the
// 1-based attack indices, regenerated from the vasp registry. This harness
// verifies and prints the exact threat model the dataset builder implements.

#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "experiments/table_printer.hpp"
#include "vasp/attack_types.hpp"

using namespace vehigan;

int main() {
  std::cout << "=== Table I: attack matrix (attack index per type x field) ===\n\n";

  const vasp::AttackType types[] = {
      vasp::AttackType::kRandom,        vasp::AttackType::kRandomOffset,
      vasp::AttackType::kConstant,      vasp::AttackType::kConstantOffset,
      vasp::AttackType::kHigh,          vasp::AttackType::kLow,
      vasp::AttackType::kOpposite,      vasp::AttackType::kPerpendicular,
      vasp::AttackType::kRotating,
  };
  const vasp::TargetField fields[] = {
      vasp::TargetField::kPosition, vasp::TargetField::kSpeed,
      vasp::TargetField::kAcceleration, vasp::TargetField::kHeading,
      vasp::TargetField::kYawRate, vasp::TargetField::kHeadingYawRate,
  };

  std::map<std::pair<int, int>, int> index;
  for (const auto& spec : vasp::attack_matrix()) {
    index[{static_cast<int>(spec.type), static_cast<int>(spec.field)}] = spec.index;
  }

  std::vector<std::string> headers = {"Attack Type"};
  for (auto field : fields) headers.emplace_back(vasp::to_string(field));
  experiments::TablePrinter table(std::move(headers));
  for (auto type : types) {
    std::vector<std::string> row = {std::string(vasp::to_string(type))};
    for (auto field : fields) {
      const auto it = index.find({static_cast<int>(type), static_cast<int>(field)});
      row.push_back(it == index.end() ? "-" : std::to_string(it->second));
    }
    table.add_row(std::move(row));
  }
  table.print();

  std::cout << "\n35 in-scope misbehaviors (index: name):\n";
  for (const auto& spec : vasp::attack_matrix()) {
    std::cout << "  " << spec.index << ": " << spec.name
              << (vasp::is_advanced(spec) ? "  [advanced: coupled heading & yaw rate]" : "")
              << "\n";
  }
  bench::write_telemetry_sidecar("table1_attack_matrix");
  return 0;
}
