#include "baselines/autoencoder.hpp"

#include <numeric>
#include <stdexcept>

#include "nn/layers.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace vehigan::baselines {

void AutoencoderDetector::fit(const features::WindowSet& benign) {
  if (benign.count() < config_.batch_size) {
    throw std::invalid_argument("AutoencoderDetector::fit: fewer windows than one batch");
  }
  dim_ = benign.values_per_window();

  util::Rng rng(config_.seed);
  net_ = nn::Sequential();
  auto& enc1 = net_.add<nn::Dense>(dim_, config_.hidden);
  enc1.init_weights(rng);
  net_.add<nn::LeakyReLU>(0.2F);
  auto& enc2 = net_.add<nn::Dense>(config_.hidden, config_.bottleneck);
  enc2.init_weights(rng);
  net_.add<nn::LeakyReLU>(0.2F);
  auto& dec1 = net_.add<nn::Dense>(config_.bottleneck, config_.hidden);
  dec1.init_weights(rng);
  net_.add<nn::LeakyReLU>(0.2F);
  auto& dec2 = net_.add<nn::Dense>(config_.hidden, dim_);
  dec2.init_weights(rng);
  net_.add<nn::Sigmoid>();  // inputs are min-max scaled into [0, 1]

  nn::Adam optimizer(config_.lr);
  auto params = net_.parameters();
  const std::size_t batch = config_.batch_size;

  std::vector<std::size_t> order(benign.count());
  std::iota(order.begin(), order.end(), std::size_t{0});

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_mse = 0.0;
    std::size_t steps = 0;
    for (std::size_t start = 0; start + batch <= order.size(); start += batch) {
      nn::Tensor input({batch, dim_});
      for (std::size_t b = 0; b < batch; ++b) {
        const auto snap = benign.snapshot(order[start + b]);
        std::copy(snap.begin(), snap.end(), input.data() + b * dim_);
      }
      net_.zero_grad();
      const nn::Tensor output = net_.forward(input);
      // MSE loss gradient: dL/dy = 2 (y - x) / (B * d).
      nn::Tensor grad(output.shape());
      const float scale = 2.0F / static_cast<float>(batch * dim_);
      double loss = 0.0;
      for (std::size_t i = 0; i < output.size(); ++i) {
        const float diff = output[i] - input[i];
        grad[i] = scale * diff;
        loss += static_cast<double>(diff) * diff;
      }
      (void)net_.backward(grad);
      optimizer.step(params);
      epoch_mse += loss / static_cast<double>(batch * dim_);
      ++steps;
    }
    if (steps > 0) final_train_mse_ = epoch_mse / static_cast<double>(steps);
  }
}

float AutoencoderDetector::score(std::span<const float> snapshot) {
  if (dim_ == 0) throw std::logic_error("AutoencoderDetector::score: fit() not called");
  if (snapshot.size() != dim_) {
    throw std::invalid_argument("AutoencoderDetector::score: bad width");
  }
  nn::Tensor input({1, dim_}, std::vector<float>(snapshot.begin(), snapshot.end()));
  const nn::Tensor output = net_.forward(input);
  double mse = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) {
    const double diff = output[i] - input[i];
    mse += diff * diff;
  }
  return static_cast<float>(mse / static_cast<double>(dim_));
}

}  // namespace vehigan::baselines
