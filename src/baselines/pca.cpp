#include "baselines/pca.hpp"

#include <cmath>
#include <stdexcept>

#include "util/linalg.hpp"

namespace vehigan::baselines {

void PcaDetector::fit(const features::WindowSet& benign) {
  const std::size_t n = benign.count();
  dim_ = benign.values_per_window();
  if (n < 2 || dim_ == 0) throw std::invalid_argument("PcaDetector::fit: not enough data");

  mean_.assign(dim_, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto snap = benign.snapshot(i);
    for (std::size_t d = 0; d < dim_; ++d) mean_[d] += snap[d];
  }
  for (auto& m : mean_) m /= static_cast<double>(n);

  std::vector<double> cov(dim_ * dim_, 0.0);
  std::vector<double> centered(dim_);
  for (std::size_t i = 0; i < n; ++i) {
    const auto snap = benign.snapshot(i);
    for (std::size_t d = 0; d < dim_; ++d) centered[d] = snap[d] - mean_[d];
    for (std::size_t r = 0; r < dim_; ++r) {
      const double cr = centered[r];
      for (std::size_t c = r; c < dim_; ++c) cov[r * dim_ + c] += cr * centered[c];
    }
  }
  const double denom = static_cast<double>(n - 1);
  for (std::size_t r = 0; r < dim_; ++r) {
    for (std::size_t c = r; c < dim_; ++c) {
      cov[r * dim_ + c] /= denom;
      cov[c * dim_ + r] = cov[r * dim_ + c];
    }
  }

  const util::EigenResult eig = util::jacobi_eigen_symmetric(std::move(cov), dim_);
  eigenvalues_ = eig.values;
  eigenvectors_ = eig.vectors;

  double total = 0.0;
  for (double v : eigenvalues_) total += std::max(v, 0.0);
  double cum = 0.0;
  major_ = dim_;
  for (std::size_t j = 0; j < dim_; ++j) {
    cum += std::max(eigenvalues_[j], 0.0);
    if (cum >= variance_retained_ * total) {
      major_ = j + 1;
      break;
    }
  }
}

float PcaDetector::score(std::span<const float> snapshot) {
  if (mean_.empty()) throw std::logic_error("PcaDetector::score: fit() not called");
  if (snapshot.size() != dim_) throw std::invalid_argument("PcaDetector::score: bad width");
  double score = 0.0;
  // Variance-normalized energy on the retained major components.
  for (std::size_t j = 0; j < major_; ++j) {
    const double* axis = eigenvectors_.data() + j * dim_;
    double proj = 0.0;
    for (std::size_t d = 0; d < dim_; ++d) proj += (snapshot[d] - mean_[d]) * axis[d];
    const double lambda = std::max(eigenvalues_[j], 1e-9);
    score += proj * proj / lambda;
  }
  return static_cast<float>(score);
}

}  // namespace vehigan::baselines
