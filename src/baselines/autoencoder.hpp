#pragma once

#include "mbds/anomaly_detector.hpp"
#include "nn/sequential.hpp"

namespace vehigan::baselines {

/// Hyper-parameters of the auto-encoder baseline (Sec. IV-B4).
struct AutoencoderConfig {
  std::size_t hidden = 64;       ///< encoder/decoder hidden width
  std::size_t bottleneck = 16;   ///< latent dimension
  int epochs = 10;
  std::size_t batch_size = 64;
  float lr = 1e-3F;
  std::uint64_t seed = 99;
};

/// Deep-learning baseline: a dense auto-encoder over flattened snapshots
/// trained with MSE on benign windows; the anomaly score is the mean squared
/// reconstruction error. Two named instances are evaluated in the paper:
/// BaseAE (raw field windows) and Vehi-AE (engineered-feature windows) —
/// this class covers both; the caller picks the feature space and the name.
///
/// Substitution note (DESIGN.md): the paper uses a CNN AE in Keras; a dense
/// AE over the same flattened windows keeps the identical anomaly-score
/// semantics (reconstruction error of a benign-manifold bottleneck) at a
/// fraction of the single-core training cost.
class AutoencoderDetector : public mbds::AnomalyDetector {
 public:
  AutoencoderDetector(std::string name, AutoencoderConfig config)
      : name_(std::move(name)), config_(config) {}

  /// Trains the AE on benign windows; records the final training MSE.
  void fit(const features::WindowSet& benign);

  [[nodiscard]] std::string name() const override { return name_; }
  float score(std::span<const float> snapshot) override;

  [[nodiscard]] double final_train_mse() const { return final_train_mse_; }
  [[nodiscard]] nn::Sequential& network() { return net_; }

 private:
  std::string name_;
  AutoencoderConfig config_;
  std::size_t dim_ = 0;
  nn::Sequential net_;
  double final_train_mse_ = 0.0;
};

}  // namespace vehigan::baselines
