#pragma once

#include <vector>

#include "mbds/anomaly_detector.hpp"
#include "util/rng.hpp"

namespace vehigan::baselines {

/// Probabilistic baseline (Sec. IV-B3): diagonal-covariance Gaussian mixture
/// fitted with EM on benign windows; the outlier score is the negative
/// log-likelihood, so windows that no mixture component explains well score
/// high.
class GmmDetector : public mbds::AnomalyDetector {
 public:
  /// @param components  number of mixture components
  /// @param em_iters    EM iterations
  /// @param seed        initialization seed (means drawn from the data)
  explicit GmmDetector(std::size_t components = 4, int em_iters = 25,
                       std::uint64_t seed = 17)
      : components_(components), em_iters_(em_iters), seed_(seed) {}

  void fit(const features::WindowSet& benign);

  [[nodiscard]] std::string name() const override { return "Vehi-GMM"; }
  float score(std::span<const float> snapshot) override;

  [[nodiscard]] std::size_t components() const { return components_; }

 private:
  /// log N(x | mean_c, diag var_c) + log weight_c.
  [[nodiscard]] double component_log_joint(std::size_t c, std::span<const float> x) const;

  std::size_t components_;
  int em_iters_;
  std::uint64_t seed_;
  std::size_t dim_ = 0;
  std::vector<double> weights_;    ///< [components]
  std::vector<double> means_;      ///< [components][dim]
  std::vector<double> variances_;  ///< [components][dim], floored
  std::vector<double> log_norm_;   ///< cached -0.5*(d log 2pi + sum log var)
};

}  // namespace vehigan::baselines
