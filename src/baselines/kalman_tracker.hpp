#pragma once

#include <array>

#include "mbds/anomaly_detector.hpp"
#include "sim/bsm.hpp"

namespace vehigan::baselines {

/// Trajectory-verification baseline (paper Sec. VI, Nguyen et al.): a
/// per-vehicle constant-velocity Kalman filter tracks the *reported*
/// positions; the anomaly evidence is the normalized innovation squared
/// (NIS) — how far each new report falls from the track's prediction,
/// in units of the track's own uncertainty — plus the mismatch between the
/// reported velocity vector and the reported position increments.
///
/// State: [x, y, vx, vy]; measurement: reported position (x, y). The
/// detector consumes raw BSM traces (not engineered windows) — it is the
/// classical non-ML point of comparison.
struct KalmanTrackerOptions {
  double dt = 0.1;                ///< BSM period [s]
  double process_accel = 2.5;     ///< process-noise acceleration scale [m/s^2]
  double measurement_sigma = 0.5; ///< position measurement noise [m]
  std::size_t warmup = 3;         ///< messages before scores count
};

class KalmanTrackerDetector {
 public:
  using Options = KalmanTrackerOptions;

  explicit KalmanTrackerDetector(Options options = {}) : options_(options) {}

  /// Scores one full trace: runs the filter over the reported positions and
  /// returns, per message after warm-up, the combined NIS + velocity
  /// consistency score. Higher = less consistent with any physical track.
  [[nodiscard]] std::vector<float> score_trace(const sim::VehicleTrace& trace) const;

  /// Convenience: the trace-level anomaly score used in comparisons — the
  /// 90th percentile of per-message scores (robust to a few clean messages
  /// at the start of an attack).
  [[nodiscard]] float trace_score(const sim::VehicleTrace& trace) const;

  [[nodiscard]] std::string name() const { return "KF-Tracker"; }

 private:
  Options options_;
};

}  // namespace vehigan::baselines
