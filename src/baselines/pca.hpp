#pragma once

#include <vector>

#include "mbds/anomaly_detector.hpp"

namespace vehigan::baselines {

/// Linear-model baseline (Sec. IV-B1): PCA outlier detection after Shyu et
/// al. The detector fits principal components on benign windows and scores a
/// sample by the variance-weighted squared projections on the retained
/// *major* components — "the sum of weighted projected distances to the
/// eigenvector hyperplane". Samples far along the benign correlation
/// structure score high; the characteristic blind spot (reproduced from the
/// paper, where Vehi-PCA is the weakest engineered-feature baseline) is
/// that anomalies orthogonal to the major subspace project to ~0 and are
/// missed.
class PcaDetector : public mbds::AnomalyDetector {
 public:
  /// @param variance_retained fraction of total variance assigned to the
  ///        "major" components; the remainder defines the minor subspace.
  explicit PcaDetector(double variance_retained = 0.95)
      : variance_retained_(variance_retained) {}

  /// Fits mean, principal axes, and the major/minor split on benign windows.
  void fit(const features::WindowSet& benign);

  [[nodiscard]] std::string name() const override { return "Vehi-PCA"; }
  float score(std::span<const float> snapshot) override;

  [[nodiscard]] std::size_t num_major_components() const { return major_; }
  [[nodiscard]] std::size_t dimension() const { return dim_; }

 private:
  double variance_retained_;
  std::size_t dim_ = 0;
  std::size_t major_ = 0;
  std::vector<double> mean_;
  std::vector<double> eigenvalues_;   ///< descending
  std::vector<double> eigenvectors_;  ///< column-major [component][dim]
};

}  // namespace vehigan::baselines
