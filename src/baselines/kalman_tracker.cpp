#include "baselines/kalman_tracker.hpp"

#include <cmath>

#include "util/math.hpp"

namespace vehigan::baselines {

namespace {

/// Minimal fixed-size constant-velocity Kalman filter. State [x y vx vy],
/// covariance kept as a full symmetric 4x4.
struct CvKalman {
  std::array<double, 4> x{};
  std::array<double, 16> p{};

  static std::size_t idx(std::size_t r, std::size_t c) { return r * 4 + c; }

  void init(double px, double py, double measurement_var) {
    x = {px, py, 0.0, 0.0};
    p.fill(0.0);
    p[idx(0, 0)] = p[idx(1, 1)] = measurement_var;
    p[idx(2, 2)] = p[idx(3, 3)] = 100.0;  // unknown initial velocity
  }

  void predict(double dt, double q_accel) {
    // x <- F x
    x[0] += dt * x[2];
    x[1] += dt * x[3];
    // P <- F P F^T + Q (exploit F's sparsity).
    std::array<double, 16> fp{};
    for (std::size_t c = 0; c < 4; ++c) {
      fp[idx(0, c)] = p[idx(0, c)] + dt * p[idx(2, c)];
      fp[idx(1, c)] = p[idx(1, c)] + dt * p[idx(3, c)];
      fp[idx(2, c)] = p[idx(2, c)];
      fp[idx(3, c)] = p[idx(3, c)];
    }
    std::array<double, 16> next{};
    for (std::size_t r = 0; r < 4; ++r) {
      next[idx(r, 0)] = fp[idx(r, 0)] + dt * fp[idx(r, 2)];
      next[idx(r, 1)] = fp[idx(r, 1)] + dt * fp[idx(r, 3)];
      next[idx(r, 2)] = fp[idx(r, 2)];
      next[idx(r, 3)] = fp[idx(r, 3)];
    }
    p = next;
    const double q = q_accel * q_accel;
    const double dt2 = dt * dt;
    p[idx(0, 0)] += q * dt2 * dt2 / 4.0;
    p[idx(1, 1)] += q * dt2 * dt2 / 4.0;
    p[idx(0, 2)] += q * dt2 * dt / 2.0;
    p[idx(2, 0)] += q * dt2 * dt / 2.0;
    p[idx(1, 3)] += q * dt2 * dt / 2.0;
    p[idx(3, 1)] += q * dt2 * dt / 2.0;
    p[idx(2, 2)] += q * dt2;
    p[idx(3, 3)] += q * dt2;
  }

  /// Measurement update with z = (px, py); returns the NIS.
  double update(double zx, double zy, double r_var) {
    const double y0 = zx - x[0];
    const double y1 = zy - x[1];
    // S = H P H^T + R is the top-left 2x2 of P plus R.
    const double s00 = p[idx(0, 0)] + r_var;
    const double s01 = p[idx(0, 1)];
    const double s11 = p[idx(1, 1)] + r_var;
    const double det = std::max(s00 * s11 - s01 * s01, 1e-12);
    const double i00 = s11 / det;
    const double i01 = -s01 / det;
    const double i11 = s00 / det;
    const double nis = y0 * (i00 * y0 + i01 * y1) + y1 * (i01 * y0 + i11 * y1);

    // K = P H^T S^-1 (4x2).
    std::array<double, 8> k{};
    for (std::size_t r = 0; r < 4; ++r) {
      const double ph0 = p[idx(r, 0)];
      const double ph1 = p[idx(r, 1)];
      k[r * 2 + 0] = ph0 * i00 + ph1 * i01;
      k[r * 2 + 1] = ph0 * i01 + ph1 * i11;
    }
    for (std::size_t r = 0; r < 4; ++r) {
      x[r] += k[r * 2] * y0 + k[r * 2 + 1] * y1;
    }
    // P <- (I - K H) P ; KH only hits the first two columns of the update.
    std::array<double, 16> next = p;
    for (std::size_t r = 0; r < 4; ++r) {
      for (std::size_t c = 0; c < 4; ++c) {
        next[idx(r, c)] -= k[r * 2] * p[idx(0, c)] + k[r * 2 + 1] * p[idx(1, c)];
      }
    }
    p = next;
    return nis;
  }
};

}  // namespace

std::vector<float> KalmanTrackerDetector::score_trace(const sim::VehicleTrace& trace) const {
  std::vector<float> scores;
  if (trace.messages.size() < options_.warmup + 2) return scores;
  const double r_var = options_.measurement_sigma * options_.measurement_sigma;

  CvKalman filter;
  filter.init(trace.messages.front().x, trace.messages.front().y, r_var);
  for (std::size_t i = 1; i < trace.messages.size(); ++i) {
    const sim::Bsm& m = trace.messages[i];
    const double dt = std::max(m.time - trace.messages[i - 1].time, 1e-3);
    filter.predict(dt, options_.process_accel);
    const double nis = filter.update(m.x, m.y, r_var);

    // Cross-field check: reported velocity vector vs the track's velocity.
    const double rep_vx = m.speed * std::cos(m.heading);
    const double rep_vy = m.speed * std::sin(m.heading);
    const double dvx = rep_vx - filter.x[2];
    const double dvy = rep_vy - filter.x[3];
    const double vel_var = filter.p[CvKalman::idx(2, 2)] + filter.p[CvKalman::idx(3, 3)] + 1.0;
    const double vel_term = (dvx * dvx + dvy * dvy) / vel_var;

    if (i >= options_.warmup) {
      scores.push_back(static_cast<float>(nis + vel_term));
    }
  }
  return scores;
}

float KalmanTrackerDetector::trace_score(const sim::VehicleTrace& trace) const {
  const std::vector<float> scores = score_trace(trace);
  if (scores.empty()) return 0.0F;
  return static_cast<float>(util::percentile(scores, 90.0));
}

}  // namespace vehigan::baselines
