#include "baselines/knn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vehigan::baselines {

void KnnDetector::fit(const features::WindowSet& benign) {
  if (benign.count() <= k_) throw std::invalid_argument("KnnDetector::fit: need > k windows");
  dim_ = benign.values_per_window();
  const std::size_t stride =
      benign.count() > max_reference_ ? (benign.count() + max_reference_ - 1) / max_reference_
                                      : 1;
  reference_.clear();
  count_ = 0;
  for (std::size_t i = 0; i < benign.count(); i += stride) {
    const auto snap = benign.snapshot(i);
    reference_.insert(reference_.end(), snap.begin(), snap.end());
    ++count_;
  }
}

float KnnDetector::score(std::span<const float> snapshot) {
  if (count_ == 0) throw std::logic_error("KnnDetector::score: fit() not called");
  if (snapshot.size() != dim_) throw std::invalid_argument("KnnDetector::score: bad width");

  // Keep the k smallest squared distances in a max-heap-by-front vector.
  std::vector<float> best(k_, std::numeric_limits<float>::max());
  for (std::size_t r = 0; r < count_; ++r) {
    const float* ref = reference_.data() + r * dim_;
    float dist2 = 0.0F;
    for (std::size_t d = 0; d < dim_; ++d) {
      const float diff = snapshot[d] - ref[d];
      dist2 += diff * diff;
      if (dist2 >= best.front()) break;  // early exit: already worse than k-th
    }
    if (dist2 < best.front()) {
      std::pop_heap(best.begin(), best.end());
      best.back() = dist2;
      std::push_heap(best.begin(), best.end());
    }
  }
  return std::sqrt(best.front());  // distance to the k-th nearest neighbor
}

}  // namespace vehigan::baselines
