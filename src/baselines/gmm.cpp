#include "baselines/gmm.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/math.hpp"

namespace vehigan::baselines {

namespace {
constexpr double kVarFloor = 1e-6;
constexpr double kLog2Pi = 1.8378770664093453;
}  // namespace

double GmmDetector::component_log_joint(std::size_t c, std::span<const float> x) const {
  const double* mean = means_.data() + c * dim_;
  const double* var = variances_.data() + c * dim_;
  double maha = 0.0;
  for (std::size_t d = 0; d < dim_; ++d) {
    const double diff = x[d] - mean[d];
    maha += diff * diff / var[d];
  }
  return std::log(weights_[c]) + log_norm_[c] - 0.5 * maha;
}

void GmmDetector::fit(const features::WindowSet& benign) {
  const std::size_t n = benign.count();
  dim_ = benign.values_per_window();
  if (n < components_ * 2) throw std::invalid_argument("GmmDetector::fit: not enough windows");

  util::Rng rng(seed_);
  weights_.assign(components_, 1.0 / static_cast<double>(components_));
  means_.assign(components_ * dim_, 0.0);
  variances_.assign(components_ * dim_, 0.0);

  // Init: means from random distinct samples; variances from global spread.
  const auto picks = rng.sample_without_replacement(n, components_);
  for (std::size_t c = 0; c < components_; ++c) {
    const auto snap = benign.snapshot(picks[c]);
    for (std::size_t d = 0; d < dim_; ++d) means_[c * dim_ + d] = snap[d];
  }
  std::vector<double> global_mean(dim_, 0.0), global_var(dim_, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto snap = benign.snapshot(i);
    for (std::size_t d = 0; d < dim_; ++d) global_mean[d] += snap[d];
  }
  for (auto& m : global_mean) m /= static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto snap = benign.snapshot(i);
    for (std::size_t d = 0; d < dim_; ++d) {
      const double diff = snap[d] - global_mean[d];
      global_var[d] += diff * diff;
    }
  }
  for (auto& v : global_var) v = std::max(v / static_cast<double>(n), kVarFloor);
  for (std::size_t c = 0; c < components_; ++c) {
    for (std::size_t d = 0; d < dim_; ++d) variances_[c * dim_ + d] = global_var[d];
  }

  std::vector<double> resp(n * components_);
  log_norm_.assign(components_, 0.0);
  for (int iter = 0; iter < em_iters_; ++iter) {
    // Refresh the cached normalizers.
    for (std::size_t c = 0; c < components_; ++c) {
      double log_det = 0.0;
      for (std::size_t d = 0; d < dim_; ++d) log_det += std::log(variances_[c * dim_ + d]);
      log_norm_[c] = -0.5 * (static_cast<double>(dim_) * kLog2Pi + log_det);
    }
    // E-step: responsibilities via log-sum-exp.
    for (std::size_t i = 0; i < n; ++i) {
      const auto snap = benign.snapshot(i);
      double max_log = -std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < components_; ++c) {
        resp[i * components_ + c] = component_log_joint(c, snap);
        max_log = std::max(max_log, resp[i * components_ + c]);
      }
      double denom = 0.0;
      for (std::size_t c = 0; c < components_; ++c) {
        resp[i * components_ + c] = std::exp(resp[i * components_ + c] - max_log);
        denom += resp[i * components_ + c];
      }
      for (std::size_t c = 0; c < components_; ++c) resp[i * components_ + c] /= denom;
    }
    // M-step.
    for (std::size_t c = 0; c < components_; ++c) {
      double nk = 0.0;
      std::vector<double> mean(dim_, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        const double r = resp[i * components_ + c];
        nk += r;
        const auto snap = benign.snapshot(i);
        for (std::size_t d = 0; d < dim_; ++d) mean[d] += r * snap[d];
      }
      nk = std::max(nk, 1e-9);
      for (std::size_t d = 0; d < dim_; ++d) means_[c * dim_ + d] = mean[d] / nk;
      std::vector<double> var(dim_, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        const double r = resp[i * components_ + c];
        const auto snap = benign.snapshot(i);
        for (std::size_t d = 0; d < dim_; ++d) {
          const double diff = snap[d] - means_[c * dim_ + d];
          var[d] += r * diff * diff;
        }
      }
      for (std::size_t d = 0; d < dim_; ++d) {
        variances_[c * dim_ + d] = std::max(var[d] / nk, kVarFloor);
      }
      weights_[c] = std::max(nk / static_cast<double>(n), 1e-9);
    }
  }
  // Final normalizer refresh for scoring.
  for (std::size_t c = 0; c < components_; ++c) {
    double log_det = 0.0;
    for (std::size_t d = 0; d < dim_; ++d) log_det += std::log(variances_[c * dim_ + d]);
    log_norm_[c] = -0.5 * (static_cast<double>(dim_) * kLog2Pi + log_det);
  }
}

float GmmDetector::score(std::span<const float> snapshot) {
  if (means_.empty()) throw std::logic_error("GmmDetector::score: fit() not called");
  if (snapshot.size() != dim_) throw std::invalid_argument("GmmDetector::score: bad width");
  double max_log = -std::numeric_limits<double>::infinity();
  std::vector<double> logs(components_);
  for (std::size_t c = 0; c < components_; ++c) {
    logs[c] = component_log_joint(c, snapshot);
    max_log = std::max(max_log, logs[c]);
  }
  double sum = 0.0;
  for (double l : logs) sum += std::exp(l - max_log);
  const double log_likelihood = max_log + std::log(sum);
  return static_cast<float>(-log_likelihood);
}

}  // namespace vehigan::baselines
