#pragma once

#include <vector>

#include "mbds/anomaly_detector.hpp"

namespace vehigan::baselines {

/// Proximity-based baseline (Sec. IV-B2): the outlier score of a sample is
/// its Euclidean distance to its k-th nearest benign training window
/// (Ramaswamy et al.). Exact brute-force search; the reference set is
/// deterministically subsampled to bound the O(|train| * dim) per-query
/// cost on a single core.
class KnnDetector : public mbds::AnomalyDetector {
 public:
  /// @param k                which neighbor's distance is the score
  /// @param max_reference    cap on stored training windows (evenly
  ///                         subsampled when exceeded)
  explicit KnnDetector(std::size_t k = 5, std::size_t max_reference = 2000)
      : k_(k), max_reference_(max_reference) {}

  void fit(const features::WindowSet& benign);

  [[nodiscard]] std::string name() const override { return "Vehi-KNN"; }
  float score(std::span<const float> snapshot) override;

  [[nodiscard]] std::size_t reference_count() const { return count_; }

 private:
  std::size_t k_;
  std::size_t max_reference_;
  std::size_t dim_ = 0;
  std::size_t count_ = 0;
  std::vector<float> reference_;  ///< count_ x dim_ row-major
};

}  // namespace vehigan::baselines
