#include "vasp/injector.hpp"

#include <cmath>
#include <stdexcept>

#include "util/math.hpp"

namespace vehigan::vasp {

using util::kPi;
using util::wrap_angle;

MisbehaviorInjector::MisbehaviorInjector(AttackSpec spec, AttackParams params, util::Rng rng)
    : spec_(spec), params_(params), rng_(rng) {}

sim::VehicleTrace MisbehaviorInjector::attack_trace(const sim::VehicleTrace& benign) {
  sim::VehicleTrace attacked;
  attacked.vehicle_id = benign.vehicle_id;
  attacked.messages = benign.messages;
  if (attacked.messages.empty()) return attacked;

  TraceContext ctx = begin(attacked.messages.front().time);
  double prev_time = ctx.start_time;
  for (auto& msg : attacked.messages) {
    const double dt = msg.time - prev_time;
    prev_time = msg.time;
    apply_message(msg, ctx, dt > 0.0 ? dt : 0.1);
  }
  return attacked;
}

MisbehaviorInjector::TraceContext MisbehaviorInjector::begin(double start_time) {
  TraceContext ctx;
  ctx.start_time = start_time;
  // Draw the per-trace constants used by Constant/ConstantOffset variants.
  ctx.const_x = rng_.uniform(params_.playground_min, params_.playground_max);
  ctx.const_y = rng_.uniform(params_.playground_min, params_.playground_max);
  ctx.rotation_phase = rng_.uniform(0.0, 2.0 * kPi);
  switch (spec_.field) {
    case TargetField::kPosition:
      // ConstantOffset: a fixed translation vector of fixed magnitude and
      // random direction; Constant uses (const_x, const_y) directly.
      break;
    case TargetField::kSpeed:
      ctx.const_scalar = spec_.type == AttackType::kConstant
                             ? rng_.uniform(0.0, params_.speed_random_max)
                             : (rng_.bernoulli(0.5) ? 1.0 : -1.0) * params_.speed_const_offset;
      break;
    case TargetField::kAcceleration:
      ctx.const_scalar = spec_.type == AttackType::kConstant
                             ? rng_.uniform(-params_.accel_random_max, params_.accel_random_max)
                             : (rng_.bernoulli(0.5) ? 1.0 : -1.0) * params_.accel_const_offset;
      break;
    case TargetField::kHeading:
      ctx.const_scalar = spec_.type == AttackType::kConstant
                             ? rng_.uniform(0.0, 2.0 * kPi)
                             : (rng_.bernoulli(0.5) ? 1.0 : -1.0) * params_.heading_const_offset;
      break;
    case TargetField::kYawRate:
    case TargetField::kHeadingYawRate:
      ctx.const_scalar = spec_.type == AttackType::kConstant
                             ? rng_.uniform(-params_.yaw_random_max, params_.yaw_random_max)
                             : (rng_.bernoulli(0.5) ? 1.0 : -1.0) * params_.yaw_const_offset;
      break;
  }
  if (spec_.field == TargetField::kPosition && spec_.type == AttackType::kConstantOffset) {
    const double direction = rng_.uniform(0.0, 2.0 * kPi);
    ctx.const_x = params_.pos_const_offset * std::cos(direction);
    ctx.const_y = params_.pos_const_offset * std::sin(direction);
  }
  return ctx;
}

void MisbehaviorInjector::apply_message(sim::Bsm& msg, TraceContext& ctx, double dt) {
  switch (spec_.field) {
    case TargetField::kPosition: apply_position(msg, ctx); break;
    case TargetField::kSpeed: apply_speed(msg, ctx); break;
    case TargetField::kAcceleration: apply_acceleration(msg, ctx); break;
    case TargetField::kHeading: apply_heading(msg, ctx); break;
    case TargetField::kYawRate: apply_yaw_rate(msg, ctx); break;
    case TargetField::kHeadingYawRate: apply_heading_yaw_rate(msg, ctx, dt); break;
  }
}

void MisbehaviorInjector::apply_position(sim::Bsm& msg, TraceContext& ctx) {
  switch (spec_.type) {
    case AttackType::kRandom:
      msg.x = rng_.uniform(params_.playground_min, params_.playground_max);
      msg.y = rng_.uniform(params_.playground_min, params_.playground_max);
      break;
    case AttackType::kRandomOffset: {
      const double direction = rng_.uniform(0.0, 2.0 * kPi);
      const double magnitude = rng_.uniform(0.0, params_.pos_offset_max);
      msg.x += magnitude * std::cos(direction);
      msg.y += magnitude * std::sin(direction);
      break;
    }
    case AttackType::kConstant:
      msg.x = ctx.const_x;
      msg.y = ctx.const_y;
      break;
    case AttackType::kConstantOffset:
      msg.x += ctx.const_x;
      msg.y += ctx.const_y;
      break;
    default:
      throw std::logic_error("position attack: unsupported type");
  }
}

void MisbehaviorInjector::apply_speed(sim::Bsm& msg, TraceContext& ctx) {
  switch (spec_.type) {
    case AttackType::kRandom:
      msg.speed = rng_.uniform(0.0, params_.speed_random_max);
      break;
    case AttackType::kRandomOffset:
      msg.speed = std::max(0.0, msg.speed + rng_.uniform(-params_.speed_offset_max,
                                                         params_.speed_offset_max));
      break;
    case AttackType::kConstant:
      msg.speed = ctx.const_scalar;
      break;
    case AttackType::kConstantOffset:
      msg.speed = std::max(0.0, msg.speed + ctx.const_scalar);
      break;
    case AttackType::kHigh:
      msg.speed = params_.speed_high * rng_.uniform(0.95, 1.05);
      break;
    case AttackType::kLow:
      msg.speed = params_.speed_low * rng_.uniform(0.0, 1.0);
      break;
    default:
      throw std::logic_error("speed attack: unsupported type");
  }
}

void MisbehaviorInjector::apply_acceleration(sim::Bsm& msg, TraceContext& ctx) {
  switch (spec_.type) {
    case AttackType::kRandom:
      msg.accel = rng_.uniform(-params_.accel_random_max, params_.accel_random_max);
      break;
    case AttackType::kRandomOffset:
      msg.accel += rng_.uniform(-params_.accel_offset_max, params_.accel_offset_max);
      break;
    case AttackType::kConstant:
      msg.accel = ctx.const_scalar;
      break;
    case AttackType::kConstantOffset:
      msg.accel += ctx.const_scalar;
      break;
    case AttackType::kHigh:
      msg.accel = params_.accel_high * rng_.uniform(0.9, 1.1);
      break;
    case AttackType::kLow:
      msg.accel = params_.accel_low * rng_.uniform(0.9, 1.1);
      break;
    default:
      throw std::logic_error("acceleration attack: unsupported type");
  }
}

void MisbehaviorInjector::apply_heading(sim::Bsm& msg, TraceContext& ctx) {
  switch (spec_.type) {
    case AttackType::kRandom:
      msg.heading = rng_.uniform(0.0, 2.0 * kPi);
      break;
    case AttackType::kRandomOffset:
      msg.heading = wrap_angle(msg.heading + rng_.uniform(-params_.heading_offset_max,
                                                          params_.heading_offset_max));
      break;
    case AttackType::kConstant:
      msg.heading = wrap_angle(ctx.const_scalar);
      break;
    case AttackType::kConstantOffset:
      msg.heading = wrap_angle(msg.heading + ctx.const_scalar);
      break;
    case AttackType::kOpposite:
      msg.heading = wrap_angle(msg.heading + kPi);
      break;
    case AttackType::kPerpendicular:
      msg.heading = wrap_angle(msg.heading + kPi / 2.0);
      break;
    case AttackType::kRotating:
      msg.heading = wrap_angle(ctx.rotation_phase +
                               params_.heading_rotation_rate * (msg.time - ctx.start_time));
      break;
    default:
      throw std::logic_error("heading attack: unsupported type");
  }
}

void MisbehaviorInjector::apply_yaw_rate(sim::Bsm& msg, TraceContext& ctx) {
  switch (spec_.type) {
    case AttackType::kRandom:
      msg.yaw_rate = rng_.uniform(-params_.yaw_random_max, params_.yaw_random_max);
      break;
    case AttackType::kRandomOffset:
      msg.yaw_rate += rng_.uniform(-params_.yaw_offset_max, params_.yaw_offset_max);
      break;
    case AttackType::kConstant:
      msg.yaw_rate = ctx.const_scalar;
      break;
    case AttackType::kConstantOffset:
      msg.yaw_rate += ctx.const_scalar;
      break;
    case AttackType::kHigh:
      msg.yaw_rate = params_.yaw_high * rng_.uniform(0.9, 1.1);
      break;
    case AttackType::kLow:
      msg.yaw_rate = params_.yaw_low * rng_.uniform(0.9, 1.1);
      break;
    default:
      throw std::logic_error("yaw-rate attack: unsupported type");
  }
}

double MisbehaviorInjector::fake_yaw_value(const sim::Bsm& msg, TraceContext& ctx) {
  switch (spec_.type) {
    case AttackType::kRandom:
      return rng_.uniform(-params_.yaw_random_max, params_.yaw_random_max);
    case AttackType::kRandomOffset:
      return msg.yaw_rate + rng_.uniform(-params_.yaw_offset_max, params_.yaw_offset_max);
    case AttackType::kConstant:
      return ctx.const_scalar;
    case AttackType::kConstantOffset:
      return msg.yaw_rate + ctx.const_scalar;
    case AttackType::kHigh:
      return params_.yaw_high * rng_.uniform(0.9, 1.1);
    case AttackType::kLow:
      return params_.yaw_low * rng_.uniform(0.9, 1.1);
    default:
      throw std::logic_error("heading&yaw attack: unsupported type");
  }
}

void MisbehaviorInjector::apply_heading_yaw_rate(sim::Bsm& msg, TraceContext& ctx, double dt) {
  // Advanced coupled attack (Fig. 1b): fabricate a yaw-rate signal and keep
  // the transmitted heading consistent with it by integration, staging a
  // plausible maneuver (e.g. a sustained right turn) that the vehicle is not
  // actually performing.
  if (!ctx.integrated_heading_init) {
    ctx.integrated_heading = msg.heading;
    ctx.integrated_heading_init = true;
  }
  const double fake_yaw = fake_yaw_value(msg, ctx);
  ctx.integrated_heading = wrap_angle(ctx.integrated_heading + fake_yaw * dt);
  msg.yaw_rate = fake_yaw;
  msg.heading = ctx.integrated_heading;
}

}  // namespace vehigan::vasp
