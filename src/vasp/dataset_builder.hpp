#pragma once

#include <string>
#include <vector>

#include "sim/bsm.hpp"
#include "util/rng.hpp"
#include "vasp/injector.hpp"

namespace vehigan::vasp {

/// One vehicle's transmitted trace with its ground-truth label.
struct LabeledTrace {
  sim::VehicleTrace trace;
  bool malicious = false;
};

/// A misbehavior scenario dataset: the full fleet's transmitted BSMs where a
/// fraction of vehicles persistently broadcasts one attack from the matrix.
struct MisbehaviorDataset {
  std::string attack_name;
  std::vector<LabeledTrace> traces;

  [[nodiscard]] std::size_t malicious_count() const {
    std::size_t n = 0;
    for (const auto& t : traces) n += t.malicious ? 1 : 0;
    return n;
  }
};

/// Options mirroring the paper's VASP run (Sec. IV-A): persistent attack
/// policy with 25 % malicious vehicles.
struct ScenarioOptions {
  double malicious_fraction = 0.25;
  AttackParams params;
  std::uint64_t seed = 7;
};

/// Builds the misbehavior scenario for one attack: selects
/// ceil(fraction * fleet) vehicles uniformly at random as attackers and
/// replaces their transmitted traces with injected ones. Benign vehicles'
/// traces are passed through untouched.
MisbehaviorDataset build_scenario(const sim::BsmDataset& benign, const AttackSpec& spec,
                                  const ScenarioOptions& options);

}  // namespace vehigan::vasp
