#include "vasp/attack_types.hpp"

#include <stdexcept>

namespace vehigan::vasp {

namespace {

using AT = AttackType;
using TF = TargetField;

/// Attack indices follow Table I: 1-4 position, 5-10 speed, 11-16
/// acceleration, 17-23 heading, 24-29 yaw rate, 30-35 heading & yaw rate.
constexpr std::array<AttackSpec, 35> kMatrix = {{
    {1, AT::kRandom, TF::kPosition, "RandomPosition"},
    {2, AT::kRandomOffset, TF::kPosition, "RandomPositionOffset"},
    {3, AT::kConstant, TF::kPosition, "PlaygroundConstantPosition"},
    {4, AT::kConstantOffset, TF::kPosition, "ConstantPositionOffset"},
    {5, AT::kRandom, TF::kSpeed, "RandomSpeed"},
    {6, AT::kRandomOffset, TF::kSpeed, "RandomSpeedOffset"},
    {7, AT::kConstant, TF::kSpeed, "ConstantSpeed"},
    {8, AT::kConstantOffset, TF::kSpeed, "ConstantSpeedOffset"},
    {9, AT::kHigh, TF::kSpeed, "HighSpeed"},
    {10, AT::kLow, TF::kSpeed, "LowSpeed"},
    {11, AT::kRandom, TF::kAcceleration, "RandomAcceleration"},
    {12, AT::kRandomOffset, TF::kAcceleration, "RandomAccelerationOffset"},
    {13, AT::kConstant, TF::kAcceleration, "ConstantAcceleration"},
    {14, AT::kConstantOffset, TF::kAcceleration, "ConstantAccelerationOffset"},
    {15, AT::kHigh, TF::kAcceleration, "HighAcceleration"},
    {16, AT::kLow, TF::kAcceleration, "LowAcceleration"},
    {17, AT::kRandom, TF::kHeading, "RandomHeading"},
    {18, AT::kRandomOffset, TF::kHeading, "RandomHeadingOffset"},
    {19, AT::kConstant, TF::kHeading, "ConstantHeading"},
    {20, AT::kConstantOffset, TF::kHeading, "ConstantHeadingOffset"},
    {21, AT::kOpposite, TF::kHeading, "OppositeHeading"},
    {22, AT::kPerpendicular, TF::kHeading, "PerpendicularHeading"},
    {23, AT::kRotating, TF::kHeading, "RotatingHeading"},
    {24, AT::kRandom, TF::kYawRate, "RandomYawRate"},
    {25, AT::kRandomOffset, TF::kYawRate, "RandomYawRateOffset"},
    {26, AT::kConstant, TF::kYawRate, "ConstantYawRate"},
    {27, AT::kConstantOffset, TF::kYawRate, "ConstantYawRateOffset"},
    {28, AT::kHigh, TF::kYawRate, "HighYawRate"},
    {29, AT::kLow, TF::kYawRate, "LowYawRate"},
    {30, AT::kRandom, TF::kHeadingYawRate, "RandomHeadingYawRate"},
    {31, AT::kRandomOffset, TF::kHeadingYawRate, "RandomHeadingYawRateOffset"},
    {32, AT::kConstant, TF::kHeadingYawRate, "ConstantHeadingYawRate"},
    {33, AT::kConstantOffset, TF::kHeadingYawRate, "ConstantHeadingYawRateOffset"},
    {34, AT::kHigh, TF::kHeadingYawRate, "HighHeadingYawRate"},
    {35, AT::kLow, TF::kHeadingYawRate, "LowHeadingYawRate"},
}};

}  // namespace

std::span<const AttackSpec> attack_matrix() { return kMatrix; }

const AttackSpec& attack_by_name(std::string_view name) {
  for (const auto& spec : kMatrix) {
    if (spec.name == name) return spec;
  }
  throw std::out_of_range("attack_by_name: unknown attack '" + std::string(name) + "'");
}

const AttackSpec& attack_by_index(int index) {
  for (const auto& spec : kMatrix) {
    if (spec.index == index) return spec;
  }
  throw std::out_of_range("attack_by_index: index " + std::to_string(index) + " not in [1,35]");
}

std::string_view to_string(AttackType type) {
  switch (type) {
    case AttackType::kRandom: return "Random";
    case AttackType::kRandomOffset: return "RandomOffset";
    case AttackType::kConstant: return "Constant";
    case AttackType::kConstantOffset: return "ConstantOffset";
    case AttackType::kHigh: return "High";
    case AttackType::kLow: return "Low";
    case AttackType::kOpposite: return "Opposite";
    case AttackType::kPerpendicular: return "Perpendicular";
    case AttackType::kRotating: return "Rotating";
  }
  return "?";
}

std::string_view to_string(TargetField field) {
  switch (field) {
    case TargetField::kPosition: return "Position";
    case TargetField::kSpeed: return "Speed";
    case TargetField::kAcceleration: return "Acceleration";
    case TargetField::kHeading: return "Heading";
    case TargetField::kYawRate: return "YawRate";
    case TargetField::kHeadingYawRate: return "Heading&YawRate";
  }
  return "?";
}

}  // namespace vehigan::vasp
