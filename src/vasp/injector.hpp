#pragma once

#include "sim/bsm.hpp"
#include "util/rng.hpp"
#include "vasp/attack_types.hpp"

namespace vehigan::vasp {

/// Magnitude parameters of the attack injectors. Defaults are tuned to the
/// VASP-style scenario: an urban playground a few kilometers across, urban
/// speeds, and "significantly high/low" values that are physically extreme
/// but syntactically valid BSM field values.
struct AttackParams {
  // Playground bounds for fabricated positions (matches an 8x8 grid of
  // 120 m blocks).
  double playground_min = 0.0;
  double playground_max = 960.0;

  double pos_offset_max = 150.0;    ///< random-offset magnitude for position [m]
  double pos_const_offset = 80.0;   ///< constant-offset magnitude for position [m]

  double speed_random_max = 40.0;   ///< random speed range [0, max] [m/s]
  double speed_offset_max = 8.0;    ///< random speed offset [m/s]
  double speed_const_offset = 6.0;  ///< constant speed offset [m/s]
  double speed_high = 65.0;         ///< "significantly high" speed [m/s]
  double speed_low = 0.2;           ///< "significantly low" speed [m/s]

  double accel_random_max = 10.0;   ///< random accel range [-max, max] [m/s^2]
  double accel_offset_max = 4.0;    ///< random accel offset [m/s^2]
  double accel_const_offset = 3.0;  ///< constant accel offset [m/s^2]
  double accel_high = 10.0;         ///< high accel [m/s^2]
  double accel_low = -10.0;         ///< low (hard phantom braking) [m/s^2]

  double heading_offset_max = 3.141592653589793;  ///< random heading offset [rad]
  double heading_const_offset = 1.0;              ///< constant heading offset [rad]
  double heading_rotation_rate = 0.6;             ///< RotatingHeading rate [rad/s]

  double yaw_random_max = 2.0;      ///< random yaw range [-max, max] [rad/s]
  double yaw_offset_max = 1.0;      ///< random yaw offset [rad/s]
  double yaw_const_offset = 0.8;    ///< constant yaw offset [rad/s]
  double yaw_high = 2.0;            ///< high yaw rate (sharp right-turn stage) [rad/s]
  double yaw_low = -2.0;            ///< low yaw rate [rad/s]
};

/// Applies one misbehavior from the attack matrix to a vehicle's transmitted
/// BSM stream (the ground-truth motion is untouched — the attacker lies only
/// in what it broadcasts, Sec. II-C).
///
/// Single-field attacks (indices 1-29) mutate exactly the targeted field and
/// leave correlated fields inconsistent, as the threat model assumes.
/// Advanced attacks (30-35) fabricate a yaw-rate signal and integrate it into
/// the transmitted heading so the two fields stay mutually coherent while
/// both diverge from the vehicle's true motion.
class MisbehaviorInjector {
 public:
  /// Per-trace attack state. Constant/ConstantOffset variants draw their
  /// fake values once per trace (in begin()); the advanced coupled attacks
  /// keep a running integrated heading across messages.
  struct TraceContext {
    double const_x = 0.0, const_y = 0.0;      ///< constant position / offset
    double const_scalar = 0.0;                 ///< constant speed/accel/heading/yaw
    double rotation_phase = 0.0;               ///< RotatingHeading initial phase
    double start_time = 0.0;
    double integrated_heading = 0.0;           ///< advanced attacks: running heading
    bool integrated_heading_init = false;
  };

  MisbehaviorInjector(AttackSpec spec, AttackParams params, util::Rng rng);

  /// Returns the attacked copy of a benign trace. The attack policy is
  /// "persistent": every message of the trace is mutated.
  [[nodiscard]] sim::VehicleTrace attack_trace(const sim::VehicleTrace& benign);

  /// Streaming interface (used by the event-driven simulation, where
  /// messages are produced one at a time): draws the per-trace constants
  /// for a new attack episode starting at `start_time`.
  [[nodiscard]] TraceContext begin(double start_time);

  /// Mutates one transmitted message in place given the time since the
  /// previous message of this trace.
  void apply_message(sim::Bsm& msg, TraceContext& ctx, double dt);

  [[nodiscard]] const AttackSpec& spec() const { return spec_; }

 private:
  void apply_position(sim::Bsm& msg, TraceContext& ctx);
  void apply_speed(sim::Bsm& msg, TraceContext& ctx);
  void apply_acceleration(sim::Bsm& msg, TraceContext& ctx);
  void apply_heading(sim::Bsm& msg, TraceContext& ctx);
  void apply_yaw_rate(sim::Bsm& msg, TraceContext& ctx);
  void apply_heading_yaw_rate(sim::Bsm& msg, TraceContext& ctx, double dt);

  /// Fabricated yaw-rate value for the advanced (coupled) attacks.
  double fake_yaw_value(const sim::Bsm& msg, TraceContext& ctx);

  AttackSpec spec_;
  AttackParams params_;
  util::Rng rng_;
};

}  // namespace vehigan::vasp
