#include "vasp/dataset_builder.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace vehigan::vasp {

MisbehaviorDataset build_scenario(const sim::BsmDataset& benign, const AttackSpec& spec,
                                  const ScenarioOptions& options) {
  MisbehaviorDataset dataset;
  dataset.attack_name = std::string(spec.name);
  if (benign.traces.empty()) return dataset;

  // Derive the attacker set and the injector stream from independent RNG
  // splits salted by the attack index, so every scenario draws its own
  // attackers and fake values but remains reproducible.
  util::Rng master(options.seed);
  util::Rng pick_rng = master.split(static_cast<std::uint64_t>(spec.index) * 2);
  util::Rng inject_rng = master.split(static_cast<std::uint64_t>(spec.index) * 2 + 1);

  const std::size_t fleet = benign.traces.size();
  const auto num_malicious = static_cast<std::size_t>(
      std::max(1.0, std::ceil(options.malicious_fraction * static_cast<double>(fleet))));
  const auto chosen = pick_rng.sample_without_replacement(fleet, std::min(num_malicious, fleet));
  const std::unordered_set<std::size_t> malicious_set(chosen.begin(), chosen.end());

  MisbehaviorInjector injector(spec, options.params, inject_rng);
  dataset.traces.reserve(fleet);
  for (std::size_t i = 0; i < fleet; ++i) {
    LabeledTrace labeled;
    labeled.malicious = malicious_set.contains(i);
    labeled.trace = labeled.malicious ? injector.attack_trace(benign.traces[i])
                                      : benign.traces[i];
    dataset.traces.push_back(std::move(labeled));
  }
  return dataset;
}

}  // namespace vehigan::vasp
