#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace vehigan::vasp {

/// Attack type, i.e. how the targeted field's value is fabricated (rows of
/// Table I in the paper).
enum class AttackType : std::uint8_t {
  kRandom,          ///< random value each message
  kRandomOffset,    ///< true value + fresh random offset each message
  kConstant,        ///< one constant fake value for the whole attack
  kConstantOffset,  ///< true value + one constant offset
  kHigh,            ///< significantly high value
  kLow,             ///< significantly low value
  kOpposite,        ///< opposite of the true heading (heading only)
  kPerpendicular,   ///< perpendicular to the true heading (heading only)
  kRotating,        ///< heading rotating over time (heading only)
};

/// Targeted BSM field(s) (columns of Table I).
enum class TargetField : std::uint8_t {
  kPosition,
  kSpeed,
  kAcceleration,
  kHeading,
  kYawRate,
  kHeadingYawRate,  ///< advanced: both fields, mutated coherently
};

/// One cell of the attack matrix: a concrete misbehavior.
struct AttackSpec {
  int index = 0;  ///< 1-based attack index as in Table I
  AttackType type = AttackType::kRandom;
  TargetField field = TargetField::kPosition;
  std::string_view name;  ///< paper naming, e.g. "RandomPosition"
};

/// The 35 in-scope misbehaviors of the paper (Table I / Table III), in
/// Table III row order grouped by field then type.
std::span<const AttackSpec> attack_matrix();

/// Looks up a spec by its paper name; throws std::out_of_range if unknown.
const AttackSpec& attack_by_name(std::string_view name);

/// Looks up a spec by its 1-based Table-I index; throws if out of range.
const AttackSpec& attack_by_index(int index);

std::string_view to_string(AttackType type);
std::string_view to_string(TargetField field);

/// True for the six advanced attacks that mutate heading & yaw rate together.
inline bool is_advanced(const AttackSpec& spec) {
  return spec.field == TargetField::kHeadingYawRate;
}

}  // namespace vehigan::vasp
