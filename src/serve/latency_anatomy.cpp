#include "serve/latency_anatomy.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <string>

#include "telemetry/exporter.hpp"
#include "telemetry/statusz.hpp"

namespace vehigan::serve {

namespace {

using telemetry::Histogram;

/// Approximate quantile from the log-linear buckets: upper bound of the
/// bucket containing the q-th observation (worst-case 25 % relative error,
/// same resolution the Prometheus exporter offers).
double approx_quantile(const Histogram& h, double q) {
  const std::uint64_t total = h.count();
  if (total == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    cumulative += h.bucket_count(i);
    if (cumulative > target) return Histogram::bucket_upper_bound(i);
  }
  return Histogram::bucket_upper_bound(Histogram::kBuckets - 1);
}

void stage_row(telemetry::StatuszWriter& w, const char* stage, const Histogram& h) {
  const std::uint64_t n = h.count();
  const double mean = n > 0 ? h.sum() / static_cast<double>(n) : 0.0;
  w.line(std::string(stage) + " count=" + std::to_string(n) +
         " sum_s=" + telemetry::format_double(h.sum()) +
         " mean_s=" + telemetry::format_double(mean) +
         " p50_s=" + telemetry::format_double(approx_quantile(h, 0.50)) +
         " p99_s=" + telemetry::format_double(approx_quantile(h, 0.99)));
}

}  // namespace

LatencyAnatomy::LatencyAnatomy()
    : queue_wait_seconds(
          telemetry::MetricsRegistry::global().histogram("vehigan_serve_queue_wait_seconds")),
      assembly_seconds(telemetry::MetricsRegistry::global().histogram(
          "vehigan_serve_drain_assembly_seconds")),
      compute_seconds(
          telemetry::MetricsRegistry::global().histogram("vehigan_serve_compute_seconds")),
      cycle_seconds(
          telemetry::MetricsRegistry::global().histogram("vehigan_serve_cycle_seconds")),
      e2e_seconds(
          telemetry::MetricsRegistry::global().histogram("vehigan_serve_e2e_seconds")),
      merge_seconds(telemetry::MetricsRegistry::global().histogram(
          "vehigan_serve_report_merge_seconds")) {
  worst_.reserve(kExemplars);
  telemetry::Statusz::global().register_section("anatomy", [this](telemetry::StatuszWriter& w) {
    stage_row(w, "queue_wait", queue_wait_seconds);
    stage_row(w, "drain_assembly", assembly_seconds);
    stage_row(w, "compute", compute_seconds);
    stage_row(w, "cycle", cycle_seconds);
    // Inner compute stages recorded by OnlineMbds; shown here so the whole
    // queue-wait -> assembly -> window-build -> score -> decide -> merge
    // decomposition reads off one section.
    auto& reg = telemetry::MetricsRegistry::global();
    stage_row(w, "window_build", reg.histogram("vehigan_mbds_window_build_seconds"));
    stage_row(w, "score", reg.histogram("vehigan_mbds_score_seconds"));
    stage_row(w, "decide", reg.histogram("vehigan_mbds_decide_seconds"));
    stage_row(w, "e2e", e2e_seconds);
    stage_row(w, "report_merge", merge_seconds);
    for (const Exemplar& e : exemplars()) {
      w.line("exemplar e2e_s=" + telemetry::format_double(e.seconds) +
             " trace_id=" + std::to_string(e.trace_id) +
             " station=" + std::to_string(e.station_id) +
             " shard=" + std::to_string(e.shard));
    }
  });
}

LatencyAnatomy& LatencyAnatomy::global() {
  static LatencyAnatomy* anatomy = new LatencyAnatomy();  // leaked: process lifetime
  return *anatomy;
}

std::uint64_t LatencyAnatomy::now_ns() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - epoch)
                      .count();
  // 0 means "unstamped"; the first tick of the epoch maps to 1.
  return static_cast<std::uint64_t>(ns) + 1;
}

void LatencyAnatomy::offer_exemplar(double seconds, std::uint64_t trace_id,
                                    std::uint32_t station_id, std::uint32_t shard) {
  // Fast reject: once the reservoir is full, only latencies above the
  // current admission floor can change it.
  const double floor = std::bit_cast<double>(floor_bits_.load(std::memory_order_relaxed));
  if (seconds <= floor) return;

  const std::lock_guard<std::mutex> lock(mutex_);
  if (worst_.size() < kExemplars) {
    worst_.push_back({seconds, trace_id, station_id, shard});
    if (worst_.size() < kExemplars) return;  // floor stays 0 until full
  } else {
    auto weakest = std::min_element(
        worst_.begin(), worst_.end(),
        [](const Exemplar& a, const Exemplar& b) { return a.seconds < b.seconds; });
    if (seconds <= weakest->seconds) return;  // raced past the fast path
    *weakest = {seconds, trace_id, station_id, shard};
  }
  const double new_floor =
      std::min_element(worst_.begin(), worst_.end(),
                       [](const Exemplar& a, const Exemplar& b) {
                         return a.seconds < b.seconds;
                       })
          ->seconds;
  floor_bits_.store(std::bit_cast<std::uint64_t>(new_floor), std::memory_order_relaxed);
}

std::vector<LatencyAnatomy::Exemplar> LatencyAnatomy::exemplars() const {
  std::vector<Exemplar> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out = worst_;
  }
  std::sort(out.begin(), out.end(),
            [](const Exemplar& a, const Exemplar& b) { return a.seconds > b.seconds; });
  return out;
}

void LatencyAnatomy::reset_exemplars() {
  const std::lock_guard<std::mutex> lock(mutex_);
  worst_.clear();
  floor_bits_.store(0, std::memory_order_relaxed);
}

}  // namespace vehigan::serve
