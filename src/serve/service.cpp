#include "serve/service.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "serve/latency_anatomy.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/exporter.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/statusz.hpp"
#include "telemetry/trace_context.hpp"
#include "util/hash.hpp"

namespace vehigan::serve {

namespace {

struct ServiceTelemetry {
  telemetry::Gauge& tracked_vehicles;
  telemetry::Gauge& queue_depth;
  telemetry::Gauge& shard_busy_fraction;
  telemetry::Gauge& collector_busy_fraction;

  static ServiceTelemetry& get() {
    auto& reg = telemetry::MetricsRegistry::global();
    static ServiceTelemetry tel{
        reg.gauge("vehigan_serve_tracked_vehicles"),
        reg.gauge("vehigan_serve_queue_depth"),
        reg.gauge("vehigan_serve_shard_busy_fraction"),
        reg.gauge("vehigan_serve_collector_busy_fraction"),
    };
    return tel;
  }
};

void shard_statusz_row(telemetry::StatuszWriter& w, std::size_t index,
                       const ShardStats& s) {
  w.line("shard[" + std::to_string(index) + "] enq=" + std::to_string(s.enqueued) +
         " scored=" + std::to_string(s.scored) + " dropped=" + std::to_string(s.dropped) +
         " reports=" + std::to_string(s.reports) + " depth=" + std::to_string(s.queue_depth) +
         " peak=" + std::to_string(s.queue_peak) +
         " batch_limit=" + std::to_string(s.batch_limit) +
         " tracked=" + std::to_string(s.tracked_vehicles) +
         " drift_alarms=" + std::to_string(s.drift_alarms) +
         " busy=" + telemetry::format_double(s.busy_fraction()));
}

}  // namespace

DetectionService::DetectionService(const ServiceConfig& config,
                                   const DetectorFactory& factory,
                                   features::MinMaxScaler scaler, ScoreSink score_sink)
    : config_(config) {
  if (config_.num_shards == 0) {
    throw std::invalid_argument("DetectionService: num_shards must be >= 1");
  }
  if (config_.queue_capacity == 0) {
    throw std::invalid_argument("DetectionService: queue_capacity must be >= 1");
  }
  if (!factory) throw std::invalid_argument("DetectionService: null detector factory");
  if (!config_.ledger_path.empty()) {
    ledger_ = std::make_unique<VerdictLedger>(VerdictLedger::Options{
        .path = config_.ledger_path, .rotate_bytes = config_.ledger_rotate_bytes});
    summaries_.resize(config_.num_shards);
  }
  collector_ = std::make_unique<ReportCollector>(config_.num_shards);
  shards_.reserve(config_.num_shards);
  for (std::size_t i = 0; i < config_.num_shards; ++i) {
    auto detector = std::make_unique<mbds::OnlineMbds>(
        config_.station_id, factory(i), scaler, config_.report_cooldown_s,
        config_.gap_reset_s);
    if (ledger_) {
      // Summary tap runs on the owning shard's worker (per-window, in that
      // sender's message order), then chains the caller's sink unchanged.
      detector->set_score_sink([this, score_sink, i](const sim::Bsm& message,
                                                     const mbds::DetectionResult& result) {
        SenderSummary& summary = summaries_[i][message.vehicle_id];
        if (summary.windows == 0) {
          summary.sender = message.vehicle_id;
          summary.first_time = message.time;
          summary.score_min = result.score;
          summary.score_max = result.score;
        }
        ++summary.windows;
        if (result.flagged) ++summary.flagged;
        summary.last_time = message.time;
        summary.score_min = std::min(summary.score_min, static_cast<double>(result.score));
        summary.score_max = std::max(summary.score_max, static_cast<double>(result.score));
        summary.score_sum += static_cast<double>(result.score);
        if (score_sink) score_sink(i, message, result);
      });
    } else if (score_sink) {
      detector->set_score_sink(
          [score_sink, i](const sim::Bsm& message, const mbds::DetectionResult& result) {
            score_sink(i, message, result);
          });
    }
    shards_.push_back(std::make_unique<Shard>(i, config_, std::move(detector)));
  }
  // With a ledger every collector-delivered report is appended before the
  // user sink sees it; the collector serializes sink calls, so ledger
  // appends are uncontended.
  if (ledger_) {
    collector_->set_sink(
        [this](const mbds::MisbehaviorReport& report) { ledger_->append_report(report); });
  }
  // Each shard publishes its drain cycle's reports into its own collector
  // lane; the collector thread merges lanes and drives the user sink. The
  // collector exists before any worker starts, so no publish can race
  // construction.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->start([this, i](std::vector<mbds::MisbehaviorReport>& batch) {
      collector_->publish(i, batch);
    });
  }
  // Instantiating the anatomy here (not lazily on the first scored message)
  // guarantees its statusz section exists whenever a service does.
  (void)LatencyAnatomy::global();
  statusz_section_ = telemetry::Statusz::global().register_section(
      "serve", [this](telemetry::StatuszWriter& w) {
        const ServiceStats snapshot = stats();
        w.kv("shards", static_cast<std::uint64_t>(shards_.size()));
        w.kv("policy", to_string(config_.policy));
        w.kv("queue_capacity", static_cast<std::uint64_t>(config_.queue_capacity));
        w.kv("enqueued", snapshot.total.enqueued);
        w.kv("scored", snapshot.total.scored);
        w.kv("dropped", snapshot.total.dropped);
        w.kv("reports", snapshot.total.reports);
        w.kv("queue_depth", static_cast<std::uint64_t>(snapshot.total.queue_depth));
        w.kv("drift_alarms", snapshot.total.drift_alarms);
        w.kv("busy_fraction", snapshot.total.busy_fraction());
        w.kv("collector_busy_fraction", collector_->busy_fraction());
        if (ledger_) {
          const VerdictLedger::Stats ls = ledger_->stats();
          w.line("ledger path=" + ledger_->path().string() +
                 " verdicts=" + std::to_string(ls.verdicts) +
                 " summaries=" + std::to_string(ls.summaries) +
                 " bytes=" + std::to_string(ls.bytes_written) +
                 " rotations=" + std::to_string(ls.rotations) +
                 " write_errors=" + std::to_string(ls.write_errors));
        }
        for (std::size_t i = 0; i < snapshot.shards.size(); ++i) {
          shard_statusz_row(w, i, snapshot.shards[i]);
        }
      });
}

DetectionService::~DetectionService() {
  // Unregister before stop(): once this returns no render can reach the
  // shards, and explicit drain()/stop() calls earlier still saw the section.
  telemetry::Statusz::global().unregister_section(statusz_section_);
  stop();
}

std::size_t DetectionService::shard_of(std::uint32_t station_id) const {
  util::Fnv1a hash;
  hash.add_pod(station_id);
  return hash.value() % shards_.size();
}

bool DetectionService::submit(const sim::Bsm& message) {
  auto& recorder = telemetry::TraceRecorder::global();
  if (recorder.sampled(message.vehicle_id)) {
    // Stamped on the producer thread: the trace id born here is recomputed
    // bit-identically by the shard, OnlineMbds, and the emitted report, so
    // the exported timeline joins submit -> drain -> score -> report
    // without widening the queue's element type.
    const std::uint64_t t0 = recorder.now_ns();
    const bool admitted = shards_[shard_of(message.vehicle_id)]->submit(message);
    recorder.record_complete("submit", t0, recorder.now_ns() - t0,
                             telemetry::trace_id_of(message.vehicle_id, message.time),
                             "station", message.vehicle_id);
    return admitted;
  }
  return shards_[shard_of(message.vehicle_id)]->submit(message);
}

std::size_t DetectionService::submit_batch(std::span<const sim::Bsm> messages) {
  std::size_t admitted = 0;
  for (const sim::Bsm& message : messages) {
    if (submit(message)) ++admitted;
  }
  return admitted;
}

void DetectionService::set_report_sink(ReportSink sink) {
  if (ledger_) {
    collector_->set_sink(
        [this, sink = std::move(sink)](const mbds::MisbehaviorReport& report) {
          ledger_->append_report(report);
          if (sink) sink(report);
        });
    return;
  }
  collector_->set_sink(std::move(sink));
}

void DetectionService::flush_summaries() {
  for (auto& shard_summaries : summaries_) {
    for (const auto& [sender, summary] : shard_summaries) {
      ledger_->append_summary(summary);
    }
    // Clear so each flushed summary covers exactly one inter-drain window.
    shard_summaries.clear();
  }
}

void DetectionService::drain() {
  // Settle every shard first (reports published to the lanes), then wait
  // for the collector to hand everything published to the sink — so
  // "drained" still implies "reports delivered", as under the old
  // single-mutex sink.
  for (auto& shard : shards_) shard->wait_idle();
  collector_->flush();
  if (ledger_) {
    flush_summaries();  // shards idle: summary maps are quiescent
    ledger_->flush();
  }
  // Quiescent point: a black-box snapshot here captures every event of the
  // batches that just settled (no-op unless a dump path is configured).
  telemetry::FlightRecorder::global().dump_if_configured();
  telemetry::Statusz::global().dump_if_configured();
}

void DetectionService::stop() {
  if (stopped_.exchange(true)) return;
  // Close every queue first so all workers flush their backlogs in
  // parallel, then join; only then stop the collector so every published
  // report is delivered before shutdown completes.
  for (auto& shard : shards_) shard->close();
  for (auto& shard : shards_) shard->join();
  collector_->stop();
  if (ledger_) {
    flush_summaries();  // workers joined: summary maps are quiescent
    ledger_->flush();
  }
  telemetry::FlightRecorder::global().dump_if_configured();
  telemetry::Statusz::global().dump_if_configured();
}

ShardStats DetectionService::shard_stats(std::size_t shard) const {
  return shards_.at(shard)->stats();
}

ServiceStats DetectionService::stats() const {
  ServiceStats stats;
  stats.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    stats.shards.push_back(shard->stats());
    stats.total += stats.shards.back();
  }
  ServiceTelemetry& tel = ServiceTelemetry::get();
  tel.tracked_vehicles.set(static_cast<double>(stats.total.tracked_vehicles));
  tel.queue_depth.set(static_cast<double>(stats.total.queue_depth));
  tel.shard_busy_fraction.set(stats.total.busy_fraction());
  tel.collector_busy_fraction.set(collector_->busy_fraction());
  return stats;
}

}  // namespace vehigan::serve
