#include "serve/shard.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "serve/latency_anatomy.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/trace.hpp"
#include "telemetry/trace_context.hpp"

namespace vehigan::serve {

namespace {

/// Resolved once; shards of every service share the same process-wide
/// families (per-shard detail lives in ShardStats, not in metric names, to
/// bound cardinality — same policy as the per-grid-member aggregation).
struct ServeTelemetry {
  telemetry::Counter& enqueued_total;
  telemetry::Counter& scored_total;
  telemetry::Counter& dropped_total;
  telemetry::Counter& reports_total;
  telemetry::Counter& drains_total;
  telemetry::Counter& evict_sweeps_total;
  telemetry::Histogram& drain_seconds;
  telemetry::Gauge& queue_peak;
  telemetry::Gauge& batch_peak;
  telemetry::Gauge& batch_limit;

  static ServeTelemetry& get() {
    auto& reg = telemetry::MetricsRegistry::global();
    static ServeTelemetry tel{
        reg.counter("vehigan_serve_enqueued_total"),
        reg.counter("vehigan_serve_scored_total"),
        reg.counter("vehigan_serve_dropped_total"),
        reg.counter("vehigan_serve_reports_total"),
        reg.counter("vehigan_serve_drains_total"),
        reg.counter("vehigan_serve_evict_sweeps_total"),
        reg.histogram("vehigan_serve_drain_seconds"),
        reg.gauge("vehigan_serve_queue_peak_depth"),
        reg.gauge("vehigan_serve_batch_size_peak"),
        reg.gauge("vehigan_serve_batch_limit"),
    };
    return tel;
  }
};

/// Pins the calling thread to one core (round-robin by shard index). Best
/// effort: failures (restricted affinity masks, exotic schedulers) are
/// ignored — the thread simply stays on the process mask.
void pin_to_core(std::size_t index) {
#if defined(__linux__)
  unsigned cores = std::thread::hardware_concurrency();
  if (cores == 0) cores = 1;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(index % cores), &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)index;
#endif
}

}  // namespace

Shard::Shard(std::size_t index, const ServiceConfig& config,
             std::unique_ptr<mbds::OnlineMbds> detector)
    : index_(index),
      config_(config),
      detector_(std::move(detector)),
      queue_(config.queue_capacity, config.policy,
             [](const StampedBsm& stamped) { return stamped.msg.vehicle_id; }) {
  detector_->set_eviction_policy({config.evict_after_s, config.evict_every_s});
}

Shard::~Shard() {
  close();
  join();
}

void Shard::start(PublishFn publish) {
  publish_ = std::move(publish);
  worker_ = std::thread([this] { run(); });
}

void Shard::notify_settled() {
  // Empty critical section: pairs the counter updates with wait_idle's
  // predicate check so a waiter can't test-then-sleep across our notify.
  { const std::scoped_lock lock(idle_mutex_); }
  idle_cv_.notify_all();
}

bool Shard::submit(const sim::Bsm& message) {
  ServeTelemetry& tel = ServeTelemetry::get();
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  tel.enqueued_total.add(1);
  // Flight events land in the *producer's* ring (this is the producer's
  // call frame); the trace id is the same one every later stage recomputes.
  const bool traced = telemetry::enabled();
  const std::uint64_t trace =
      traced ? telemetry::trace_id_of(message.vehicle_id, message.time) : 0;
  // The submit stamp rides the queue: the drain loop joins it with its own
  // dequeue/settle stamps into queue-wait and end-to-end histograms.
  auto result = queue_.push({message, traced ? LatencyAnatomy::now_ns() : 0});
  switch (result.outcome) {
    case BoundedQueue<StampedBsm>::Push::kAccepted:
      telemetry::FlightRecorder::record(telemetry::FlightEventKind::kEnqueue,
                                        message.vehicle_id, trace, index_);
      return true;
    case BoundedQueue<StampedBsm>::Push::kReplacedOldest:
    case BoundedQueue<StampedBsm>::Push::kReplacedHeaviest: {
      // The *evicted* message is the shed one; the offered one is in. The
      // drop event must therefore carry the evicted message's identity and
      // trace id, or the flight recorder pins the loss on the wrong sender.
      const sim::Bsm& evicted = result.evicted->msg;
      telemetry::FlightRecorder::record(telemetry::FlightEventKind::kEnqueue,
                                        message.vehicle_id, trace, index_);
      telemetry::FlightRecorder::record(
          telemetry::FlightEventKind::kDrop, evicted.vehicle_id,
          traced ? telemetry::trace_id_of(evicted.vehicle_id, evicted.time) : 0, index_);
      dropped_.fetch_add(1, std::memory_order_relaxed);
      tel.dropped_total.add(1);
      notify_settled();
      return true;
    }
    case BoundedQueue<StampedBsm>::Push::kRejected:
    case BoundedQueue<StampedBsm>::Push::kClosed:
      telemetry::FlightRecorder::record(telemetry::FlightEventKind::kDrop,
                                        message.vehicle_id, trace, index_);
      dropped_.fetch_add(1, std::memory_order_relaxed);
      tel.dropped_total.add(1);
      notify_settled();
      return false;
  }
  return false;
}

void Shard::wait_idle() {
  std::unique_lock lock(idle_mutex_);
  idle_cv_.wait(lock, [&] {
    return scored_.load(std::memory_order_relaxed) +
               dropped_.load(std::memory_order_relaxed) >=
           enqueued_.load(std::memory_order_relaxed);
  });
}

void Shard::close() { queue_.close(); }

void Shard::join() {
  if (worker_.joinable()) worker_.join();
}

void Shard::refresh_detector_stats() {
  const mbds::OnlineMbds::Stats mbds_stats = detector_->stats();
  tracked_.store(mbds_stats.tracked_vehicles, std::memory_order_relaxed);
  buffered_.store(mbds_stats.buffered_messages, std::memory_order_relaxed);
  evictions_.store(mbds_stats.evictions_total, std::memory_order_relaxed);
  const auto drift = detector_->drift_monitor().stats();
  drift_alarms_.store(drift.score_alarms + drift.flag_rate_alarms,
                      std::memory_order_relaxed);
}

void Shard::run() {
  ServeTelemetry& tel = ServeTelemetry::get();
  LatencyAnatomy& anatomy = LatencyAnatomy::global();
  auto& recorder = telemetry::TraceRecorder::global();
  recorder.set_thread_name("shard-" + std::to_string(index_));
  telemetry::Profiler::attach_current_thread();
  if (config_.pin_shards) pin_to_core(index_);

  // Adaptive drain sizing: `limit` is the per-cycle batch cap, walked
  // between min_batch and the hard cap toward the drain-latency budget.
  // Fixed `max_batch` semantics are preserved when adaptation is off.
  const std::size_t hard_cap =
      config_.max_batch > 0 ? config_.max_batch : config_.queue_capacity;
  const std::size_t min_batch =
      std::max<std::size_t>(1, std::min(config_.min_batch, hard_cap));
  std::size_t limit = config_.adaptive_batch ? hard_cap : config_.max_batch;
  batch_limit_.store(limit, std::memory_order_relaxed);

  std::vector<StampedBsm> batch;
  std::vector<sim::Bsm> bsms;  // unwrapped view handed to the detector
  std::vector<mbds::MisbehaviorReport> reports;
  double latest_time = -std::numeric_limits<double>::infinity();
  for (;;) {
    batch.clear();
    // Anatomy stamps: three clock reads per *cycle* (block start, dequeue,
    // settle), none per message — gated entirely on the telemetry switch.
    const std::uint64_t t_block = telemetry::enabled() ? LatencyAnatomy::now_ns() : 0;
    const std::size_t n = queue_.drain_blocking(batch, limit);
    const std::uint64_t t_dequeue = t_block != 0 ? LatencyAnatomy::now_ns() : 0;
    if (t_block != 0) {
      blocked_ns_.fetch_add(t_dequeue - t_block, std::memory_order_relaxed);
    }
    if (n == 0) break;  // closed and fully flushed
    telemetry::FlightRecorder::record(telemetry::FlightEventKind::kDrainStart,
                                      config_.station_id, 0, n);

    batches_.fetch_add(1, std::memory_order_relaxed);
    std::size_t peak = batch_peak_.load(std::memory_order_relaxed);
    while (n > peak &&
           !batch_peak_.compare_exchange_weak(peak, n, std::memory_order_relaxed)) {
    }
    tel.drains_total.add(1);
    tel.batch_peak.set_max(static_cast<double>(n));
    tel.queue_peak.set_max(static_cast<double>(queue_.peak_size()));

    // Drain assembly: unwrap the stamped batch into the contiguous Bsm view
    // the detector ingests.
    bsms.clear();
    for (const StampedBsm& stamped : batch) bsms.push_back(stamped.msg);
    if (t_dequeue != 0) {
      anatomy.assembly_seconds.observe(
          static_cast<double>(LatencyAnatomy::now_ns() - t_dequeue) * 1e-9);
    }

    double drain_ms = 0.0;
    {
      telemetry::ScopedSpan drain_span(tel.drain_seconds, "serve_drain");
      const bool tracing = recorder.enabled();
      const auto cycle_t0 = std::chrono::steady_clock::now();
      const std::uint64_t drain_t0 = tracing ? recorder.now_ns() : 0;
      reports.clear();
      (void)detector_->ingest_batch(bsms, reports);
      if (tracing) {
        recorder.record_complete("drain", drain_t0, recorder.now_ns() - drain_t0, 0,
                                 "batch", n);
      }
      reports_.fetch_add(reports.size(), std::memory_order_relaxed);
      tel.reports_total.add(reports.size());
      telemetry::FlightRecorder::record(telemetry::FlightEventKind::kDrainEnd,
                                        config_.station_id, 0, reports.size());
      // One publish per cycle: the collector moves the elements out and the
      // vector's capacity stays here. The worker never blocks on the user
      // sink — delivery happens on the collector thread.
      if (publish_ && !reports.empty()) publish_(reports);
      drain_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - cycle_t0)
                     .count();
    }
    if (config_.adaptive_batch) {
      if (drain_ms > config_.target_drain_ms) {
        limit = std::max(min_batch, limit / 2);
      } else if (n >= limit && drain_ms < 0.5 * config_.target_drain_ms) {
        limit = std::min(hard_cap, limit * 2);
      }
      batch_limit_.store(limit, std::memory_order_relaxed);
      tel.batch_limit.set(static_cast<double>(limit));
    }

    // Staleness sweep, clocked by message time so replays behave identically
    // at any wall speed (VeReMi traces carry absolute timestamps). OnlineMbds
    // owns the replay clock and cadence; the cutoff trails the newest message
    // this shard has seen, so senders quiet for evict_after_s lose their
    // window state regardless of how fast the stream is fed.
    for (const sim::Bsm& message : bsms) latest_time = std::max(latest_time, message.time);
    if (detector_->advance_time(latest_time).swept) tel.evict_sweeps_total.add(1);

    // Settle last, with the detector gauges already snapshotted:
    // wait_idle() returning implies the batch's reports have been published
    // and stats() observes post-sweep values.
    refresh_detector_stats();
    if (t_dequeue != 0) {
      const std::uint64_t t_settle = LatencyAnatomy::now_ns();
      busy_ns_.fetch_add(t_settle - t_dequeue, std::memory_order_relaxed);
      const double cycle_s = static_cast<double>(t_settle - t_dequeue) * 1e-9;
      anatomy.cycle_seconds.observe(cycle_s);
      // Per-message anatomy from the shared stamps. The identity
      // e2e == queue_wait + compute holds exactly per message (all three
      // derive from submit_ns / t_dequeue / t_settle), which the anatomy
      // test exploits to reconcile the histograms.
      for (const StampedBsm& stamped : batch) {
        if (stamped.submit_ns == 0 || stamped.submit_ns > t_dequeue) continue;
        const double queue_wait_s =
            static_cast<double>(t_dequeue - stamped.submit_ns) * 1e-9;
        anatomy.queue_wait_seconds.observe(queue_wait_s);
        anatomy.compute_seconds.observe(cycle_s);
        anatomy.e2e_seconds.observe(queue_wait_s + cycle_s);
        anatomy.offer_exemplar(
            queue_wait_s + cycle_s,
            telemetry::trace_id_of(stamped.msg.vehicle_id, stamped.msg.time),
            stamped.msg.vehicle_id, static_cast<std::uint32_t>(index_));
      }
    }
    tel.scored_total.add(n);
    scored_.fetch_add(n, std::memory_order_relaxed);
    notify_settled();
  }
  // Exit edge (queue closed and flushed): one final snapshot so stats()
  // after stop() reflects the detector's terminal state even if the last
  // cycle was a pure close wakeup.
  refresh_detector_stats();
  telemetry::FlightRecorder::record(telemetry::FlightEventKind::kStop, config_.station_id, 0,
                                    scored_.load(std::memory_order_relaxed));
}

ShardStats Shard::stats() const {
  ShardStats s;
  s.enqueued = enqueued_.load(std::memory_order_relaxed);
  s.scored = scored_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.reports = reports_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.queue_depth = queue_.size();
  s.queue_peak = queue_.peak_size();
  s.batch_peak = batch_peak_.load(std::memory_order_relaxed);
  s.batch_limit = batch_limit_.load(std::memory_order_relaxed);
  s.tracked_vehicles = tracked_.load(std::memory_order_relaxed);
  s.buffered_messages = buffered_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.drift_alarms = drift_alarms_.load(std::memory_order_relaxed);
  s.busy_ns = busy_ns_.load(std::memory_order_relaxed);
  s.blocked_ns = blocked_ns_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace vehigan::serve
