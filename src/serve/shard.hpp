#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "mbds/online.hpp"
#include "serve/bounded_queue.hpp"
#include "serve/config.hpp"
#include "sim/bsm.hpp"

namespace vehigan::serve {

/// Queue element: the message plus its submit-time stamp (LatencyAnatomy
/// clock, 0 = unstamped because telemetry was disabled at submit). The stamp
/// must ride the queue — unlike trace ids it cannot be recomputed later, and
/// it is what turns the drain loop's cycle timings into per-message
/// queue-wait / end-to-end latency.
struct StampedBsm {
  sim::Bsm msg;
  std::uint64_t submit_ns = 0;
};

/// One partition of the service: the sole owner of the per-sender window
/// state of every station id hashed onto it, so that state needs no locks.
/// Producers push into the bounded ingress queue; the worker thread drains
/// a bounded backlog per cycle (adaptively sized toward the configured
/// drain-latency budget), coalesces it into one OnlineMbds::ingest_batch
/// call, runs periodic staleness sweeps, and publishes the cycle's reports
/// in one call to the (shard-local, collector-merged) publish function —
/// the worker never blocks on the sink or on other shards.
class Shard {
 public:
  /// Hands one drain cycle's reports downstream. The callee moves the
  /// elements out and leaves the vector empty (capacity intact), so the
  /// shard reuses the same buffer every cycle.
  using PublishFn = std::function<void(std::vector<mbds::MisbehaviorReport>&)>;

  Shard(std::size_t index, const ServiceConfig& config,
        std::unique_ptr<mbds::OnlineMbds> detector);
  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  /// Starts the worker thread. `publish` is invoked from the worker, once
  /// per drain cycle that produced reports, in per-sender order.
  void start(PublishFn publish);

  /// Producer-side entry. Counts the message as enqueued, applies the
  /// overload policy, and returns false iff the *offered* message was shed
  /// (tail drop or post-stop submit). An eviction under kDropOldest /
  /// kFairShed returns true — the offered message was admitted; the evicted
  /// one is counted in dropped (and its flight-recorder drop event carries
  /// the *evicted* message's identity).
  bool submit(const sim::Bsm& message);

  /// Blocks until every message ever offered is settled: scored (its
  /// reports published downstream) or dropped. Producers should be
  /// quiescent. Report *delivery* to the user sink is the collector's
  /// flush() — DetectionService::drain() sequences both.
  void wait_idle();

  /// Closes the ingress queue and joins the worker after it flushes the
  /// remaining backlog. Idempotent.
  void close();
  void join();

  [[nodiscard]] ShardStats stats() const;
  [[nodiscard]] std::size_t index() const { return index_; }

 private:
  void run();
  void notify_settled();
  /// Snapshots detector-owned gauges (tracked/buffered/evictions/alarms)
  /// into the atomics stats() reads. Worker thread only; called after every
  /// batch *and* on every idle/exit edge so stats() never reports pre-sweep
  /// values once the queue is quiet.
  void refresh_detector_stats();

  std::size_t index_;
  ServiceConfig config_;
  std::unique_ptr<mbds::OnlineMbds> detector_;
  BoundedQueue<StampedBsm> queue_;
  PublishFn publish_;
  std::thread worker_;

  // Exact-accounting counters: enqueued_ moves on the producer side,
  // scored_/dropped_ settle each message exactly once. The pair
  // (idle_mutex_, idle_cv_) only sequences wakeups; the predicate reads the
  // atomics.
  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> scored_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> reports_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::size_t> batch_peak_{0};
  std::atomic<std::size_t> batch_limit_{0};
  std::atomic<std::size_t> tracked_{0};
  std::atomic<std::size_t> buffered_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> drift_alarms_{0};
  // Worker utilization: busy covers dequeue -> settle, blocked covers the
  // drain_blocking wait. busy / (busy + blocked) is the shard's busy
  // fraction (stays 0 while telemetry is disabled — no clock reads then).
  std::atomic<std::uint64_t> busy_ns_{0};
  std::atomic<std::uint64_t> blocked_ns_{0};
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
};

}  // namespace vehigan::serve
