#include "serve/report_collector.hpp"

#include <algorithm>
#include <iterator>
#include <limits>

#include "serve/latency_anatomy.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"

namespace vehigan::serve {

ReportCollector::ReportCollector(std::size_t lanes) {
  lanes_.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) lanes_.push_back(std::make_unique<Lane>());
  worker_ = std::thread([this] { run(); });
}

ReportCollector::~ReportCollector() { stop(); }

void ReportCollector::set_sink(Sink sink) {
  const std::scoped_lock lock(mutex_);
  sink_ = std::move(sink);
}

void ReportCollector::publish(std::size_t lane, std::vector<mbds::MisbehaviorReport>& batch) {
  if (batch.empty()) return;
  const std::size_t n = batch.size();
  // One clock read per publish; every report in the batch shares it.
  const std::uint64_t publish_ns =
      telemetry::enabled() ? LatencyAnatomy::now_ns() : 0;
  {
    Lane& l = *lanes_[lane];
    const std::scoped_lock lane_lock(l.mutex);
    l.pending.insert(l.pending.end(), std::make_move_iterator(batch.begin()),
                     std::make_move_iterator(batch.end()));
    l.pending_ns.resize(l.pending.size(), publish_ns);
  }
  batch.clear();  // elements moved out; capacity stays with the shard
  {
    const std::scoped_lock lock(mutex_);
    published_ += n;
  }
  wake_.notify_one();
}

void ReportCollector::flush() {
  std::unique_lock lock(mutex_);
  const std::uint64_t target = published_;
  settled_.wait(lock, [&] { return delivered_ >= target; });
}

void ReportCollector::stop() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void ReportCollector::run() {
  telemetry::TraceRecorder::global().set_thread_name("collector");
  telemetry::Profiler::attach_current_thread();
  LatencyAnatomy& anatomy = LatencyAnatomy::global();
  // Per-lane staging swapped out of the lanes each sweep; indices track the
  // k-way merge position. Reused across sweeps to avoid churn.
  std::vector<std::vector<mbds::MisbehaviorReport>> staged(lanes_.size());
  std::vector<std::vector<std::uint64_t>> staged_ns(lanes_.size());
  std::vector<std::size_t> heads(lanes_.size(), 0);
  for (;;) {
    Sink sink;
    const std::uint64_t t_idle = telemetry::enabled() ? LatencyAnatomy::now_ns() : 0;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [&] { return stopping_ || delivered_ < published_; });
      if (stopping_ && delivered_ >= published_) return;
      sink = sink_;
    }
    const std::uint64_t t_wake = t_idle != 0 ? LatencyAnatomy::now_ns() : 0;
    if (t_idle != 0) idle_ns_.fetch_add(t_wake - t_idle, std::memory_order_relaxed);

    // Sweep: take every lane's backlog in one short lock each.
    std::size_t total = 0;
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      Lane& lane = *lanes_[i];
      staged[i].clear();
      staged_ns[i].clear();
      heads[i] = 0;
      {
        const std::scoped_lock lane_lock(lane.mutex);
        staged[i].swap(lane.pending);
        staged_ns[i].swap(lane.pending_ns);
      }
      total += staged[i].size();
    }
    if (total == 0) continue;  // raced with a publisher mid-update; rewait

    // k-way merge by report time (ties toward the lower lane index). Lanes
    // are consumed FIFO, so per-sender order — all of a sender's reports
    // live in one lane — is preserved exactly.
    for (std::size_t delivered = 0; delivered < total; ++delivered) {
      std::size_t best = lanes_.size();
      double best_time = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < lanes_.size(); ++i) {
        if (heads[i] >= staged[i].size()) continue;
        const double t = staged[i][heads[i]].time;
        if (best == lanes_.size() || t < best_time) {
          best = i;
          best_time = t;
        }
      }
      const std::size_t at = heads[best]++;
      const mbds::MisbehaviorReport& report = staged[best][at];
      if (sink) sink(report);
      const std::uint64_t publish_ns = staged_ns[best][at];
      if (publish_ns != 0) {
        anatomy.merge_seconds.observe(
            static_cast<double>(LatencyAnatomy::now_ns() - publish_ns) * 1e-9);
      }
    }
    if (t_wake != 0) {
      busy_ns_.fetch_add(LatencyAnatomy::now_ns() - t_wake, std::memory_order_relaxed);
    }

    {
      const std::scoped_lock lock(mutex_);
      delivered_ += total;
    }
    settled_.notify_all();
  }
}

double ReportCollector::busy_fraction() const {
  const std::uint64_t busy = busy_ns_.load(std::memory_order_relaxed);
  const std::uint64_t idle = idle_ns_.load(std::memory_order_relaxed);
  const std::uint64_t denom = busy + idle;
  return denom == 0 ? 0.0 : static_cast<double>(busy) / static_cast<double>(denom);
}

}  // namespace vehigan::serve
