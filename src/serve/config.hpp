#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vehigan::serve {

/// What a shard's bounded ingress queue does when a producer pushes into a
/// full queue. Chosen once per service in ServiceConfig.
enum class OverloadPolicy {
  kBlock,       ///< backpressure: the producer blocks until the shard drains
  kDropNewest,  ///< shed the incoming message (tail drop)
  kDropOldest,  ///< shed the oldest queued message to admit the new one
  kFairShed,    ///< shed the oldest queued message of the *heaviest* sender
                ///< (per-sender fair admission control; an offered message
                ///< from the heaviest sender itself is tail-dropped instead,
                ///< so no single chatty/Sybil sender can monopolize a full
                ///< queue or starve quieter senders out of it)
};

[[nodiscard]] constexpr const char* to_string(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kBlock: return "block";
    case OverloadPolicy::kDropNewest: return "drop-newest";
    case OverloadPolicy::kDropOldest: return "drop-oldest";
    case OverloadPolicy::kFairShed: return "fair-shed";
  }
  return "?";
}

/// Parses the CLI spelling used by examples and benches; nullopt on unknown.
[[nodiscard]] inline std::optional<OverloadPolicy> policy_from_string(std::string_view name) {
  if (name == "block") return OverloadPolicy::kBlock;
  if (name == "drop-newest") return OverloadPolicy::kDropNewest;
  if (name == "drop-oldest") return OverloadPolicy::kDropOldest;
  if (name == "fair-shed") return OverloadPolicy::kFairShed;
  return std::nullopt;
}

/// Static configuration of a DetectionService.
struct ServiceConfig {
  std::size_t num_shards = 4;        ///< worker threads / state partitions
  std::size_t queue_capacity = 1024; ///< bounded ingress depth per shard
  OverloadPolicy policy = OverloadPolicy::kBlock;
  std::size_t max_batch = 0;         ///< cap messages per drain cycle (0 = drain all)

  // Adaptive drain batch sizing: each shard adjusts its per-cycle batch cap
  // toward `target_drain_ms` of drain latency (halve when a cycle runs over
  // budget, double when a saturated cycle finishes well under), bounded by
  // [min_batch, max_batch-or-queue_capacity]. Keeps p99 drain latency flat
  // under backlog spikes instead of letting one giant coalesced batch
  // monopolize the worker. Correctness is batch-size invariant (the batch
  // path consumes ensemble state in message order), so this only moves
  // latency/throughput trade-offs. Set false to restore fixed `max_batch`.
  bool adaptive_batch = true;
  double target_drain_ms = 5.0;      ///< drain-cycle latency budget
  std::size_t min_batch = 32;        ///< adaptive floor (also the cold-start step)

  // Pins shard worker i to core i % hardware_concurrency
  // (pthread_setaffinity_np; no-op off Linux or on failure). Off by default:
  // pinning helps dedicated many-core serving hosts and hurts oversubscribed
  // ones, so it is an explicit deployment decision.
  bool pin_shards = false;

  // Per-shard OnlineMbds knobs (see mbds::OnlineMbds).
  std::uint32_t station_id = 0;      ///< reporter id stamped on every MBR
  double report_cooldown_s = 1.0;
  double gap_reset_s = 0.25;

  // Staleness sweeps: senders idle for longer than `evict_after_s` (message
  // time, not wall time) are evicted; sweeps run at most once per
  // `evict_every_s` of message-time progress. `evict_after_s <= 0` disables
  // sweeping (then the caller inherits OnlineMbds's unbounded-growth
  // contract).
  double evict_after_s = 30.0;
  double evict_every_s = 5.0;

  // Verdict audit ledger (serve/verdict_ledger.hpp). When `ledger_path` is
  // non-empty the service appends every emitted MisbehaviorReport to a
  // crash-safe binary ledger at that path (plus per-sender score summaries
  // at each drain/stop), rotating files past `ledger_rotate_bytes`.
  std::string ledger_path;
  std::size_t ledger_rotate_bytes = 64ULL << 20;
};

/// Point-in-time counters of one shard. The invariant the serve tests pin:
/// after drain()/stop(), enqueued == scored + dropped, exactly — every
/// message offered to submit() is accounted for once.
struct ShardStats {
  std::uint64_t enqueued = 0;   ///< messages offered to this shard
  std::uint64_t scored = 0;     ///< messages handed to OnlineMbds::ingest_batch
  std::uint64_t dropped = 0;    ///< messages shed (tail drop, head drop, or post-stop)
  std::uint64_t reports = 0;    ///< misbehavior reports emitted
  std::uint64_t batches = 0;    ///< drain cycles that processed >= 1 message
  std::size_t queue_depth = 0;  ///< current ingress backlog
  std::size_t queue_peak = 0;   ///< high-water mark of queue_depth
  std::size_t batch_peak = 0;   ///< largest single coalesced batch
  std::size_t batch_limit = 0;  ///< current adaptive drain cap (0 = unlimited)
  std::size_t tracked_vehicles = 0;   ///< live senders in this shard's window state
  std::size_t buffered_messages = 0;  ///< raw BSMs held in this shard's buffers
  std::uint64_t evictions = 0;        ///< senders dropped by staleness sweeps
  std::uint64_t drift_alarms = 0;     ///< drift-monitor alarms (score + flag-rate)
  std::uint64_t busy_ns = 0;          ///< worker ns spent dequeue -> settle
  std::uint64_t blocked_ns = 0;       ///< worker ns blocked waiting for ingress

  /// busy / (busy + blocked); 0.0 until the worker has recorded either
  /// (e.g. telemetry disabled, or the worker never ran).
  [[nodiscard]] double busy_fraction() const {
    const std::uint64_t denom = busy_ns + blocked_ns;
    return denom == 0 ? 0.0
                      : static_cast<double>(busy_ns) / static_cast<double>(denom);
  }

  ShardStats& operator+=(const ShardStats& other) {
    enqueued += other.enqueued;
    scored += other.scored;
    dropped += other.dropped;
    reports += other.reports;
    batches += other.batches;
    queue_depth += other.queue_depth;
    queue_peak = queue_peak > other.queue_peak ? queue_peak : other.queue_peak;
    batch_peak = batch_peak > other.batch_peak ? batch_peak : other.batch_peak;
    batch_limit = batch_limit > other.batch_limit ? batch_limit : other.batch_limit;
    tracked_vehicles += other.tracked_vehicles;
    buffered_messages += other.buffered_messages;
    evictions += other.evictions;
    drift_alarms += other.drift_alarms;
    busy_ns += other.busy_ns;
    blocked_ns += other.blocked_ns;
    return *this;
  }
};

/// Aggregate + per-shard view returned by DetectionService::stats().
/// total.queue_peak / total.batch_peak are maxima over shards; every other
/// total field is the sum.
struct ServiceStats {
  ShardStats total;
  std::vector<ShardStats> shards;
};

}  // namespace vehigan::serve
