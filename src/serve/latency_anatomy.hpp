#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "telemetry/metrics.hpp"

namespace vehigan::serve {

/// Serving latency anatomy: decomposes per-message end-to-end latency into
/// the stages an operator can actually act on. All stamps come from one
/// steady clock (now_ns(), measured from a process-local epoch), so the
/// stage identity is exact per message:
///
///   e2e = queue_wait + compute                       (same three stamps)
///
/// with per-*cycle* stages nested inside compute:
///
///   t_submit  --queue_wait-->  t_dequeue  --compute-->  t_settle
///                                  |-- assembly --| (drain/batch build)
///                                  |------------ cycle -------------|
///
/// window-build / score / decide inside the cycle come from the existing
/// OnlineMbds histograms (vehigan_mbds_window_build_seconds, ...); the
/// report collector adds merge (lane publish -> sink delivery). The
/// anatomy test asserts these reconcile: sum(e2e) == sum(queue_wait) +
/// sum(compute) to float tolerance, and the nested stages stay contained.
///
/// Histograms live in the global MetricsRegistry (so exporters and the
/// statusz "anatomy" section see them); this class just resolves them once
/// and carries the p99 exemplar reservoir (worst-K end-to-end latencies
/// with their PR-5 trace ids) that histograms can't.
class LatencyAnatomy {
 public:
  static constexpr std::size_t kExemplars = 8;  ///< worst-K kept

  static LatencyAnatomy& global();

  /// Steady-clock ns since the first call in this process. 0 is reserved
  /// for "unstamped" (telemetry disabled at submit time), so the first real
  /// stamp is remapped to 1.
  static std::uint64_t now_ns();

  telemetry::Histogram& queue_wait_seconds;  ///< submit -> shard dequeue
  telemetry::Histogram& assembly_seconds;    ///< dequeue -> batch assembled (per cycle)
  telemetry::Histogram& compute_seconds;     ///< dequeue -> scored+reported (per msg)
  telemetry::Histogram& cycle_seconds;       ///< dequeue -> settle (per drain cycle)
  telemetry::Histogram& e2e_seconds;         ///< submit -> settle (per msg)
  telemetry::Histogram& merge_seconds;       ///< report publish -> sink delivery

  /// One worst-case end-to-end latency with enough identity to chase it
  /// through the flight recorder / Chrome trace.
  struct Exemplar {
    double seconds = 0.0;
    std::uint64_t trace_id = 0;
    std::uint32_t station_id = 0;
    std::uint32_t shard = 0;
  };

  /// Offers a latency to the worst-K reservoir. Fast path is one relaxed
  /// load against the current floor — only candidates that would displace
  /// an entry take the mutex.
  void offer_exemplar(double seconds, std::uint64_t trace_id,
                      std::uint32_t station_id, std::uint32_t shard);

  /// Worst-first copy of the reservoir.
  [[nodiscard]] std::vector<Exemplar> exemplars() const;

  void reset_exemplars();

 private:
  LatencyAnatomy();

  mutable std::mutex mutex_;
  std::vector<Exemplar> worst_;                    ///< unsorted reservoir
  std::atomic<std::uint64_t> floor_bits_{0};       ///< bit_cast of admission floor
};

}  // namespace vehigan::serve
