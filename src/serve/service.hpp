#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "features/scaler.hpp"
#include "mbds/ensemble.hpp"
#include "mbds/report.hpp"
#include "serve/config.hpp"
#include "serve/report_collector.hpp"
#include "serve/shard.hpp"
#include "serve/verdict_ledger.hpp"
#include "sim/bsm.hpp"

namespace vehigan::serve {

/// City-scale online detection front end: accepts BSM streams from
/// arbitrarily many producer threads, hashes each message by sender
/// station id onto one of N shards (each sender's window state is owned by
/// exactly one worker — no locks on the scoring path), coalesces every
/// shard's backlog into one OnlineMbds::ingest_batch call per drain cycle,
/// and publishes each cycle's reports into a shard-local lane merged by a
/// dedicated collector thread into a single serialized sink (see
/// ReportCollector — shards never block on the sink or on each other).
///
/// Ordering guarantee: per sender. If a sender's messages are submitted in
/// order (from one producer, or externally ordered), its windows are scored
/// and its reports emitted in that order, for any shard count. Cross-sender
/// interleaving is unspecified once num_shards > 1. Sink callbacks are
/// serialized — at most one runs at a time, so the sink needs no internal
/// locking.
///
/// Determinism: with OverloadPolicy::kBlock and num_shards == 1 the service
/// reproduces sequential OnlineMbds::ingest byte for byte. For shard-count-
/// invariant per-sender verdicts, build the ensembles with
/// VehiGan::set_subset_draw(SubsetDraw::kContentKeyed) — then re-sharding
/// (or re-batching) never changes any sender's report sequence. Both are
/// pinned by tests/serve_test.cpp.
class DetectionService {
 public:
  using ReportSink = std::function<void(const mbds::MisbehaviorReport&)>;
  /// Builds the ensemble deployed on one shard. Called once per shard at
  /// construction; each shard must get its own VehiGan instance (the
  /// ensemble is stateful and single-threaded by design).
  using DetectorFactory = std::function<std::shared_ptr<mbds::VehiGan>(std::size_t shard)>;
  /// Optional observer of every scored window (flagged or not). Invoked on
  /// the owning shard's worker thread, once per window, in that sender's
  /// message order; sinks for *different* shards run concurrently, so a
  /// shared sink must either be thread-safe or keep per-shard state. This is
  /// how the scenario harness joins ground-truth labels to raw scores for
  /// AUROC — reports alone only cover the flagged class.
  using ScoreSink =
      std::function<void(std::size_t shard, const sim::Bsm&, const mbds::DetectionResult&)>;

  DetectionService(const ServiceConfig& config, const DetectorFactory& factory,
                   features::MinMaxScaler scaler, ScoreSink score_sink = nullptr);
  ~DetectionService();  // stop()s

  DetectionService(const DetectionService&) = delete;
  DetectionService& operator=(const DetectionService&) = delete;

  /// Thread-safe ingest of one BSM. Returns false iff the offered message
  /// was shed (kDropNewest tail drop, or submit after stop()). Under kBlock
  /// this call blocks while the target shard's queue is full.
  bool submit(const sim::Bsm& message);

  /// Convenience loop over submit(); returns how many were admitted.
  std::size_t submit_batch(std::span<const sim::Bsm> messages);

  /// Installs the report sink. Callbacks are serialized and arrive in
  /// per-sender order. Install before the first submit to see every report.
  void set_report_sink(ReportSink sink);

  /// Blocks until every message accepted so far is settled — scored (and
  /// its reports delivered to the sink) or dropped. Producers should be
  /// quiescent while draining; messages submitted concurrently may or may
  /// not be covered.
  void drain();

  /// Graceful shutdown: closes all ingress queues, lets every worker flush
  /// its remaining backlog, then joins. Subsequent submits are counted as
  /// dropped. Idempotent; the destructor calls it.
  void stop();

  /// Stable shard assignment of a sender (FNV-1a of the station id).
  [[nodiscard]] std::size_t shard_of(std::uint32_t station_id) const;

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  [[nodiscard]] const ServiceConfig& config() const { return config_; }

  [[nodiscard]] ShardStats shard_stats(std::size_t shard) const;

  /// Aggregate + per-shard counters. Also refreshes the service-level
  /// gauges (vehigan_serve_tracked_vehicles, vehigan_serve_queue_depth) so
  /// periodic metric dumps observe shard memory and backlog.
  [[nodiscard]] ServiceStats stats() const;

  /// The verdict audit ledger, or nullptr when config.ledger_path is empty.
  [[nodiscard]] const VerdictLedger* ledger() const { return ledger_.get(); }

 private:
  /// Drain-time flush of the per-shard sender summaries into the ledger as
  /// type-2 records. Callers must hold the shard-idle happens-before edge
  /// (wait_idle()/join()) — the summary maps are shard-thread-owned.
  void flush_summaries();

  ServiceConfig config_;
  std::unique_ptr<VerdictLedger> ledger_;
  /// Per-shard sender -> running summary, written only by that shard's
  /// worker (score-sink callback), read/cleared at drain/stop quiescence.
  std::vector<std::unordered_map<std::uint32_t, SenderSummary>> summaries_;
  // Declared before shards_ on purpose: shards are destroyed first (their
  // workers stop publishing), then the collector flushes and joins.
  std::unique_ptr<ReportCollector> collector_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> stopped_{false};
  std::uint64_t statusz_section_ = 0;  ///< "serve" section handle
};

}  // namespace vehigan::serve
