#include "serve/verdict_ledger.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "util/hash.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define VEHIGAN_LEDGER_POSIX 1
#else
#include <cstdio>
#endif

namespace vehigan::serve {

namespace fs = std::filesystem;

namespace {

constexpr const char kMagic[] = "vehigan-ledger-v1";
constexpr std::size_t kMagicLen = sizeof(kMagic) - 1;
/// Staged records the crash hook can write; also the flush watermark.
constexpr std::size_t kStagingCapacity = 256 * 1024;
/// A verdict carries ~a dozen BSMs; anything past this is a corrupt length.
constexpr std::uint32_t kMaxBody = 16 * 1024 * 1024;

// --- little-endian POD append/read (host LE assumed, as in nn::io) ---

template <typename T>
void put(std::string& out, T v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

/// Bounds-checked cursor over a decoded file; get() returns false instead
/// of throwing so the reader can stop at a torn tail.
struct Cursor {
  const char* data;
  std::size_t size;
  std::size_t pos = 0;

  template <typename T>
  bool get(T& out) {
    if (size - pos < sizeof(T)) return false;
    std::memcpy(&out, data + pos, sizeof(T));
    pos += sizeof(T);
    return true;
  }
};

std::string encode_verdict(const mbds::MisbehaviorReport& report) {
  std::string body;
  body.reserve(64 + report.evidence.size() * sizeof(double) * 8);
  put<std::uint8_t>(body, static_cast<std::uint8_t>(LedgerRecord::Type::kVerdict));
  put<std::uint32_t>(body, report.reporter_id);
  put<std::uint32_t>(body, report.suspect_id);
  put<double>(body, report.time);
  put<float>(body, report.score);
  put<double>(body, report.threshold);
  put<std::uint64_t>(body, report.trace_id);
  put<std::uint64_t>(body, report.model_hash);
  put<float>(body, report.critic_spread);
  put<std::uint32_t>(body, static_cast<std::uint32_t>(report.evidence.size()));
  for (const sim::Bsm& m : report.evidence) {
    put<std::uint32_t>(body, m.vehicle_id);
    put<double>(body, m.time);
    put<double>(body, m.x);
    put<double>(body, m.y);
    put<double>(body, m.speed);
    put<double>(body, m.accel);
    put<double>(body, m.heading);
    put<double>(body, m.yaw_rate);
  }
  return body;
}

std::string encode_summary(const SenderSummary& summary) {
  std::string body;
  put<std::uint8_t>(body, static_cast<std::uint8_t>(LedgerRecord::Type::kSummary));
  put<std::uint32_t>(body, summary.sender);
  put<std::uint64_t>(body, summary.windows);
  put<std::uint64_t>(body, summary.flagged);
  put<double>(body, summary.first_time);
  put<double>(body, summary.last_time);
  put<double>(body, summary.score_min);
  put<double>(body, summary.score_max);
  put<double>(body, summary.score_sum);
  return body;
}

bool decode_verdict(Cursor& c, mbds::MisbehaviorReport& report) {
  std::uint32_t evidence_count = 0;
  if (!c.get(report.reporter_id) || !c.get(report.suspect_id) || !c.get(report.time) ||
      !c.get(report.score) || !c.get(report.threshold) || !c.get(report.trace_id) ||
      !c.get(report.model_hash) || !c.get(report.critic_spread) || !c.get(evidence_count)) {
    return false;
  }
  constexpr std::size_t kBsmBytes = sizeof(std::uint32_t) + 7 * sizeof(double);
  if (evidence_count > (c.size - c.pos) / kBsmBytes) return false;
  report.evidence.resize(evidence_count);
  for (sim::Bsm& m : report.evidence) {
    if (!c.get(m.vehicle_id) || !c.get(m.time) || !c.get(m.x) || !c.get(m.y) ||
        !c.get(m.speed) || !c.get(m.accel) || !c.get(m.heading) || !c.get(m.yaw_rate)) {
      return false;
    }
  }
  return true;
}

bool decode_summary(Cursor& c, SenderSummary& summary) {
  return c.get(summary.sender) && c.get(summary.windows) && c.get(summary.flagged) &&
         c.get(summary.first_time) && c.get(summary.last_time) && c.get(summary.score_min) &&
         c.get(summary.score_max) && c.get(summary.score_sum);
}

std::string file_header() {
  std::string header;
  put<std::uint64_t>(header, kMagicLen);
  header.append(kMagic, kMagicLen);
  return header;
}

// --- platform file primitives ---

#ifdef VEHIGAN_LEDGER_POSIX

int open_trunc(const fs::path& path) {
  return ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
}

bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) return false;
    done += static_cast<std::size_t>(n);
  }
  return true;
}

void close_file(int fd) {
  if (fd >= 0) ::close(fd);
}

#else  // non-POSIX fallback: cstdio, no async-signal-safe crash flush

// FILE* handles are kept in a registry indexed by the int handle the class
// stores, so both platform branches share the same member type.
std::vector<std::FILE*>& file_registry() {
  static std::vector<std::FILE*> g_files;
  return g_files;
}

int open_trunc(const fs::path& path) {
  std::FILE* file = std::fopen(path.string().c_str(), "wb");
  if (file == nullptr) return -1;
  file_registry().push_back(file);
  return static_cast<int>(file_registry().size() - 1);
}

std::FILE*& file_of(int fd) { return file_registry().at(static_cast<std::size_t>(fd)); }

bool write_all(int fd, const char* data, std::size_t size) {
  return std::fwrite(data, 1, size, file_of(fd)) == size;
}

void close_file(int fd) {
  if (fd >= 0 && file_of(fd) != nullptr) {
    std::fclose(file_of(fd));
    file_of(fd) = nullptr;
  }
}

#endif

// --- crash-hook table: fixed slots, claimed/released lock-free ---

constexpr std::size_t kMaxLiveLedgers = 16;
std::atomic<VerdictLedger*> g_live_ledgers[kMaxLiveLedgers] = {};

void ledger_crash_hook() {
  for (auto& slot : g_live_ledgers) {
    VerdictLedger* ledger = slot.load(std::memory_order_acquire);
    if (ledger != nullptr) ledger->crash_flush();
  }
}

struct LedgerTelemetry {
  telemetry::Counter& records_total;
  telemetry::Counter& flushes_total;
  telemetry::Counter& rotations_total;
  telemetry::Counter& write_errors_total;

  static LedgerTelemetry& get() {
    auto& reg = telemetry::MetricsRegistry::global();
    static LedgerTelemetry tel{
        reg.counter("vehigan_ledger_records_total"),
        reg.counter("vehigan_ledger_flushes_total"),
        reg.counter("vehigan_ledger_rotations_total"),
        reg.counter("vehigan_ledger_write_errors_total"),
    };
    return tel;
  }
};

}  // namespace

VerdictLedger::VerdictLedger(Options options) : options_(std::move(options)) {
  staging_.resize(kStagingCapacity);  // fixed: the crash hook reads data() lock-free
  fd_ = open_trunc(options_.path);
  if (fd_ < 0) {
    throw std::runtime_error("VerdictLedger: cannot create " + options_.path.string());
  }
  const std::string header = file_header();
  if (!write_all(fd_, header.data(), header.size())) {
    close_file(fd_);
    throw std::runtime_error("VerdictLedger: cannot write header to " +
                             options_.path.string());
  }
  file_bytes_ = header.size();
  stats_.bytes_written = header.size();

  for (std::size_t i = 0; i < kMaxLiveLedgers; ++i) {
    VerdictLedger* expected = nullptr;
    if (g_live_ledgers[i].compare_exchange_strong(expected, this,
                                                  std::memory_order_acq_rel)) {
      crash_slot_ = i;
      break;
    }
  }
  static bool hook_registered =
      telemetry::FlightRecorder::register_crash_hook(&ledger_crash_hook);
  (void)hook_registered;
}

VerdictLedger::~VerdictLedger() {
  // Deregister before tearing down: once the slot is clear the crash hook
  // can no longer reach this instance mid-destruction.
  if (crash_slot_ != SIZE_MAX) {
    g_live_ledgers[crash_slot_].store(nullptr, std::memory_order_release);
  }
  flush();
  std::lock_guard<std::mutex> lock(mutex_);
  close_file(fd_);
  fd_ = -1;
}

void VerdictLedger::append_record(std::uint8_t type, const std::string& body) {
  (void)type;
  std::lock_guard<std::mutex> lock(mutex_);
  scratch_.clear();
  put<std::uint32_t>(scratch_, static_cast<std::uint32_t>(body.size()));
  scratch_.append(body);
  put<std::uint64_t>(scratch_, util::Fnv1a().add(body).value());

  std::size_t staged = staged_published_.load(std::memory_order_relaxed);
  if (staged + scratch_.size() > staging_.size()) {
    flush_locked();
    staged = 0;
  }
  if (scratch_.size() > staging_.size()) {
    // A record bigger than the whole staging buffer (oversized evidence
    // window) goes straight to the file.
    if (!write_all(fd_, scratch_.data(), scratch_.size())) {
      ++stats_.write_errors;
      LedgerTelemetry::get().write_errors_total.add(1);
      return;
    }
    file_bytes_ += scratch_.size();
    stats_.bytes_written += scratch_.size();
    rotate_locked();
    return;
  }
  std::memcpy(staging_.data() + staged, scratch_.data(), scratch_.size());
  // Publish the new complete-record boundary only after the bytes are in
  // place: the crash hook writes exactly [0, staged_published_).
  staged_published_.store(staged + scratch_.size(), std::memory_order_release);
}

void VerdictLedger::append_report(const mbds::MisbehaviorReport& report) {
  append_record(static_cast<std::uint8_t>(LedgerRecord::Type::kVerdict),
                encode_verdict(report));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.verdicts;
  }
  LedgerTelemetry::get().records_total.add(1);
}

void VerdictLedger::append_summary(const SenderSummary& summary) {
  append_record(static_cast<std::uint8_t>(LedgerRecord::Type::kSummary),
                encode_summary(summary));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.summaries;
  }
  LedgerTelemetry::get().records_total.add(1);
}

void VerdictLedger::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  flush_locked();
  rotate_locked();
}

void VerdictLedger::flush_locked() {
  const std::size_t staged = staged_published_.load(std::memory_order_relaxed);
  if (staged == 0 || fd_ < 0) return;
  // The flushing_ flag fences the crash hook out while these bytes are
  // mid-write: double-writing them from the hook would duplicate records.
  flushing_.store(true, std::memory_order_release);
  const bool ok = write_all(fd_, staging_.data(), staged);
  staged_published_.store(0, std::memory_order_relaxed);
  flushing_.store(false, std::memory_order_release);
  if (!ok) {
    ++stats_.write_errors;
    LedgerTelemetry::get().write_errors_total.add(1);
    return;
  }
  file_bytes_ += staged;
  stats_.bytes_written += staged;
  LedgerTelemetry::get().flushes_total.add(1);
}

void VerdictLedger::rotate_locked() {
  if (options_.rotate_bytes == 0 || file_bytes_ <= options_.rotate_bytes) return;
  close_file(fd_);
  fd_ = -1;
  fs::path rotated = options_.path;
  rotated += "." + std::to_string(stats_.rotations + 1);
  std::error_code ec;
  fs::rename(options_.path, rotated, ec);  // best effort; reopen regardless
  fd_ = open_trunc(options_.path);
  if (fd_ < 0) {
    ++stats_.write_errors;
    LedgerTelemetry::get().write_errors_total.add(1);
    return;
  }
  const std::string header = file_header();
  if (!write_all(fd_, header.data(), header.size())) {
    ++stats_.write_errors;
    LedgerTelemetry::get().write_errors_total.add(1);
  }
  file_bytes_ = header.size();
  ++stats_.rotations;
  LedgerTelemetry::get().rotations_total.add(1);
}

VerdictLedger::Stats VerdictLedger::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void VerdictLedger::crash_flush() noexcept {
#ifdef VEHIGAN_LEDGER_POSIX
  if (flushing_.load(std::memory_order_acquire)) return;
  const std::size_t staged = staged_published_.load(std::memory_order_acquire);
  if (staged == 0 || fd_ < 0) return;
  // Raw ::write only — no locks, no allocation, no stdio. A concurrent
  // append can at worst be publishing a longer prefix; the one read above
  // covers complete records by construction.
  (void)write_all(fd_, staging_.data(), staged);
#endif
}

LedgerReadResult read_ledger(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_ledger: cannot open " + path.string());
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  LedgerReadResult result;
  Cursor c{bytes.data(), bytes.size()};
  std::uint64_t magic_len = 0;
  if (!c.get(magic_len) || magic_len != kMagicLen || bytes.size() - c.pos < kMagicLen ||
      std::memcmp(bytes.data() + c.pos, kMagic, kMagicLen) != 0) {
    throw std::runtime_error("read_ledger: " + path.string() + " is not a vehigan ledger");
  }
  c.pos += kMagicLen;
  result.intact_bytes = c.pos;

  while (c.pos < c.size) {
    std::uint32_t body_len = 0;
    if (!c.get(body_len)) {
      result.torn_tail = true;
      result.tail_error = "torn record header";
      break;
    }
    if (body_len == 0 || body_len > kMaxBody) {
      result.torn_tail = true;
      result.tail_error = "implausible record length";
      break;
    }
    if (c.size - c.pos < body_len + sizeof(std::uint64_t)) {
      result.torn_tail = true;
      result.tail_error = "torn record body";
      break;
    }
    const char* body = c.data + c.pos;
    std::uint64_t stored = 0;
    std::memcpy(&stored, body + body_len, sizeof(stored));
    if (util::Fnv1a().add_bytes(body, body_len).value() != stored) {
      result.torn_tail = true;
      result.tail_error = "record checksum mismatch";
      break;
    }
    Cursor rc{body, body_len};
    std::uint8_t type = 0;
    (void)rc.get(type);  // body_len >= 1 checked above
    LedgerRecord record;
    bool ok = false;
    if (type == static_cast<std::uint8_t>(LedgerRecord::Type::kVerdict)) {
      record.type = LedgerRecord::Type::kVerdict;
      ok = decode_verdict(rc, record.report);
      if (ok) ++result.verdicts;
    } else if (type == static_cast<std::uint8_t>(LedgerRecord::Type::kSummary)) {
      record.type = LedgerRecord::Type::kSummary;
      ok = decode_summary(rc, record.summary);
      if (ok) ++result.summaries;
    } else {
      // Checksum-valid record of a future writer: skip, keep scanning.
      ++result.unknown;
      c.pos += body_len + sizeof(std::uint64_t);
      result.intact_bytes = c.pos;
      continue;
    }
    if (!ok || rc.pos != rc.size) {
      result.torn_tail = true;
      result.tail_error = "record body does not parse";
      break;
    }
    result.records.push_back(std::move(record));
    c.pos += body_len + sizeof(std::uint64_t);
    result.intact_bytes = c.pos;
  }
  return result;
}

}  // namespace vehigan::serve
