#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "mbds/report.hpp"

namespace vehigan::serve {

/// Per-sender score summary over one inter-drain window: the "what was
/// normal for this sender" context a verdict audit needs next to the
/// flagged windows themselves. Written as type-2 ledger records at every
/// DetectionService::drain()/stop().
struct SenderSummary {
  std::uint32_t sender = 0;
  std::uint64_t windows = 0;  ///< windows scored for this sender
  std::uint64_t flagged = 0;  ///< windows over threshold
  double first_time = 0.0;    ///< message time of the first scored window
  double last_time = 0.0;
  double score_min = 0.0;
  double score_max = 0.0;
  double score_sum = 0.0;  ///< mean = score_sum / windows
};

/// One decoded ledger record.
struct LedgerRecord {
  enum class Type : std::uint8_t {
    kVerdict = 1,  ///< a MisbehaviorReport as delivered by the collector
    kSummary = 2,  ///< per-sender score summary for one drain window
  };
  Type type = Type::kVerdict;
  mbds::MisbehaviorReport report;  ///< valid when type == kVerdict
  SenderSummary summary;           ///< valid when type == kSummary
};

/// Outcome of read_ledger: every intact prefix record, plus what (if
/// anything) stopped the scan. A torn tail is expected after a crash — the
/// reader never throws for it.
struct LedgerReadResult {
  std::vector<LedgerRecord> records;
  std::uint64_t verdicts = 0;
  std::uint64_t summaries = 0;
  std::uint64_t unknown = 0;     ///< valid-checksum records of a future type (skipped)
  std::uint64_t intact_bytes = 0;  ///< file prefix covered by decoded records
  bool torn_tail = false;
  std::string tail_error;  ///< why the scan stopped early (empty when clean)
};

/// Crash-safe append-only audit log of every verdict the serving stack
/// emits ("accountable misbehavior reports", paper Sec. I/III-F), in the
/// spirit of the model-store v2 format: a length-prefixed magic header,
/// then length-prefixed FNV-1a-checksummed binary records
///
///   [u32 body_len][body: u8 type + fields][u64 fnv1a(body)]
///
/// so a reader can trust any record whose checksum matches and stop cleanly
/// at a torn tail (partial write, crash, byte flip). See DESIGN.md Sec. 10
/// for the field layout.
///
/// Write path: appends stage into a fixed in-memory buffer under a mutex
/// (called only from the collector thread and from drain-time summary
/// flushes, so the lock is uncontended); flush() — wired to
/// DetectionService::drain()/stop() — writes the staged bytes out. Crash
/// path: the staged prefix length is published atomically, and an
/// async-signal-safe crash hook (FlightRecorder::register_crash_hook)
/// ::write()s that prefix raw, so even a SIGSEGV mid-run loses at most the
/// record being encoded. Opening truncates: one ledger file per run, with
/// size-based rotation renaming filled files to `<path>.1`, `<path>.2`, ...
/// (newest records always live at `<path>`).
class VerdictLedger {
 public:
  struct Options {
    std::filesystem::path path;
    /// Rotate after the current file exceeds this many bytes (0 = never).
    std::size_t rotate_bytes = 64ULL << 20;
  };

  struct Stats {
    std::uint64_t verdicts = 0;
    std::uint64_t summaries = 0;
    std::uint64_t bytes_written = 0;  ///< flushed to the current file
    std::uint64_t rotations = 0;
    std::uint64_t write_errors = 0;
  };

  /// Opens (truncating) `options.path` and registers the crash hook.
  /// Throws std::runtime_error when the file cannot be created.
  explicit VerdictLedger(Options options);
  ~VerdictLedger();  ///< flush() + close; deregisters from the crash table

  VerdictLedger(const VerdictLedger&) = delete;
  VerdictLedger& operator=(const VerdictLedger&) = delete;

  void append_report(const mbds::MisbehaviorReport& report);
  void append_summary(const SenderSummary& summary);

  /// Writes every staged record to the file and applies rotation. Called by
  /// DetectionService::drain()/stop(); safe from any thread.
  void flush();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const std::filesystem::path& path() const { return options_.path; }

  /// Async-signal-safe best-effort flush of the staged prefix, for crash
  /// hooks only: no locks, no allocation; skips when a regular flush is
  /// mid-write (those bytes are already on their way out).
  void crash_flush() noexcept;

 private:
  void append_record(std::uint8_t type, const std::string& body);
  void flush_locked();
  void rotate_locked();

  Options options_;
  mutable std::mutex mutex_;
  int fd_ = -1;
  std::vector<char> staging_;
  /// Bytes of staging_ forming complete records — the only prefix the crash
  /// hook may write. Stored atomically so the (lock-free) hook reads a
  /// record boundary, never a half-encoded tail.
  std::atomic<std::size_t> staged_published_{0};
  std::atomic<bool> flushing_{false};
  std::uint64_t file_bytes_ = 0;  ///< bytes flushed to the *current* file
  std::string scratch_;           ///< per-append encode buffer (capacity reused)
  Stats stats_;
  std::size_t crash_slot_ = SIZE_MAX;  ///< index in the global crash table
};

/// Decodes a ledger file, tolerating a torn tail: returns every record
/// whose length/checksum framing validates, in file order, and reports why
/// the scan stopped. Throws std::runtime_error only when the file cannot be
/// opened or its header is not a vehigan ledger.
[[nodiscard]] LedgerReadResult read_ledger(const std::filesystem::path& path);

}  // namespace vehigan::serve
