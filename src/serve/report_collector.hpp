#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "mbds/report.hpp"

namespace vehigan::serve {

/// Shard-local report sinks plus a k-way merge: each shard publishes its
/// drain cycle's reports into its own lane (one short uncontended lock per
/// *cycle*, not per report), and a single collector thread merges the lanes
/// by report time and delivers to the user sink.
///
/// This replaces the PR-4 design of a single service-wide sink mutex taken
/// once per report from inside every shard's drain loop — the first
/// serialization point that capped sharded throughput: with N shards
/// flagging heavily, every worker queued on one mutex (and on however long
/// the user's sink callback ran) in its scoring path. Here shards never
/// block on the sink or on each other; the sink's cost lands on the
/// collector thread.
///
/// Guarantees preserved from the single-sink design:
/// - **Serialized sink.** Only the collector thread invokes the sink — at
///   most one callback at a time, so sinks still need no internal locking.
/// - **Per-sender order.** A sender's reports are produced by exactly one
///   shard, in message order, and a lane is drained FIFO; the merge only
///   interleaves *across* lanes (by report time, ties toward the lower
///   lane), so per-sender report sequences are byte-identical to the
///   single-sink service for any shard count.
/// - **Flush semantics.** flush() blocks until everything published before
///   the call has been delivered; DetectionService::drain()/stop() call it,
///   so "drained" still implies "reports delivered".
class ReportCollector {
 public:
  using Sink = std::function<void(const mbds::MisbehaviorReport&)>;

  explicit ReportCollector(std::size_t lanes);
  ~ReportCollector();  // stop()s

  ReportCollector(const ReportCollector&) = delete;
  ReportCollector& operator=(const ReportCollector&) = delete;

  /// Installs the delivery sink. Install before the first publish to see
  /// every report.
  void set_sink(Sink sink);

  /// Moves `batch`'s reports into lane `lane` (elements are moved out;
  /// the vector itself is left empty with capacity intact for reuse by the
  /// shard's drain loop). Called from shard worker threads.
  void publish(std::size_t lane, std::vector<mbds::MisbehaviorReport>& batch);

  /// Blocks until every report published before this call has been handed
  /// to the sink.
  void flush();

  /// flush(), then joins the collector thread. Idempotent; publishes after
  /// stop() are delivered by nobody (callers stop shards first).
  void stop();

  /// busy / (busy + idle) of the collector thread, where busy covers
  /// sweep+merge+sink and idle the wake_ wait. 0.0 before the first sweep
  /// or while telemetry is disabled (no clock reads then).
  [[nodiscard]] double busy_fraction() const;

 private:
  struct Lane {
    std::mutex mutex;
    std::vector<mbds::MisbehaviorReport> pending;
    /// Publish stamp (LatencyAnatomy clock, 0 = unstamped) per pending
    /// report, kept index-parallel to `pending` — the merge latency is
    /// delivery time minus this.
    std::vector<std::uint64_t> pending_ns;
  };

  void run();

  std::vector<std::unique_ptr<Lane>> lanes_;
  std::atomic<std::uint64_t> busy_ns_{0};
  std::atomic<std::uint64_t> idle_ns_{0};

  std::mutex mutex_;  ///< guards sink_, counters, stopping_
  std::condition_variable wake_;     ///< publisher -> collector
  std::condition_variable settled_;  ///< collector -> flush() waiters
  Sink sink_;
  std::uint64_t published_ = 0;
  std::uint64_t delivered_ = 0;
  bool stopping_ = false;
  std::thread worker_;
};

}  // namespace vehigan::serve
