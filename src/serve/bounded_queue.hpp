#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "serve/config.hpp"

namespace vehigan::serve {

/// Bounded multi-producer / single-consumer mailbox between submit() callers
/// and one shard worker. Deliberately a mutex + two condvars rather than a
/// lock-free ring: producers touch the lock for nanoseconds per message, the
/// consumer takes everything in one critical section per drain cycle, and
/// the implementation is trivially TSan-provable — the property the soak
/// test in CI actually certifies.
///
/// The overload policy is applied *here*, at admission, so a full queue can
/// never stall the scoring path (except under kBlock, where stalling the
/// producer is the point).
template <typename T>
class BoundedQueue {
 public:
  /// Admission outcome of one push. Exactly one message is "lost" per
  /// kReplacedOldest (the evicted head) and per kRejected / kClosed (the
  /// offered message) — callers turn these into exact drop counts.
  enum class Push {
    kAccepted,        ///< enqueued into spare capacity
    kReplacedOldest,  ///< enqueued, evicting the oldest queued item
    kRejected,        ///< not enqueued: full under kDropNewest
    kClosed,          ///< not enqueued: queue closed
  };

  BoundedQueue(std::size_t capacity, OverloadPolicy policy)
      : capacity_(std::max<std::size_t>(1, capacity)), policy_(policy) {}

  Push push(T value) {
    std::unique_lock lock(mutex_);
    if (policy_ == OverloadPolicy::kBlock) {
      not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    }
    if (closed_) return Push::kClosed;
    Push result = Push::kAccepted;
    if (items_.size() >= capacity_) {
      if (policy_ == OverloadPolicy::kDropNewest) return Push::kRejected;
      // kDropOldest (kBlock can't get here: the wait above guarantees room).
      items_.pop_front();
      result = Push::kReplacedOldest;
    }
    items_.push_back(std::move(value));
    peak_ = std::max(peak_, items_.size());
    lock.unlock();
    not_empty_.notify_one();
    return result;
  }

  /// Consumer side: blocks until at least one item is queued (or the queue
  /// is closed), then moves up to `max_batch` items (0 = all) into `out`.
  /// Returns the number taken; 0 means closed-and-drained — the consumer's
  /// termination signal.
  std::size_t drain_blocking(std::vector<T>& out, std::size_t max_batch = 0) {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    return drain_locked(out, max_batch, lock);
  }

  /// Non-blocking variant: takes whatever is queued right now.
  std::size_t drain(std::vector<T>& out, std::size_t max_batch = 0) {
    std::unique_lock lock(mutex_);
    return drain_locked(out, max_batch, lock);
  }

  /// Closes the queue: subsequent pushes return kClosed, blocked producers
  /// wake with kClosed, and the consumer keeps draining until empty.
  void close() {
    {
      const std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    const std::scoped_lock lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t peak_size() const {
    const std::scoped_lock lock(mutex_);
    return peak_;
  }

  [[nodiscard]] bool closed() const {
    const std::scoped_lock lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  std::size_t drain_locked(std::vector<T>& out, std::size_t max_batch,
                           std::unique_lock<std::mutex>& lock) {
    const std::size_t n =
        max_batch == 0 ? items_.size() : std::min(max_batch, items_.size());
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    lock.unlock();
    if (n > 0) not_full_.notify_all();
    return n;
  }

  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t capacity_;
  OverloadPolicy policy_;
  std::size_t peak_ = 0;
  bool closed_ = false;
};

}  // namespace vehigan::serve
