#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "serve/config.hpp"

namespace vehigan::serve {

/// Bounded multi-producer / single-consumer mailbox between submit() callers
/// and one shard worker. Deliberately a mutex + two condvars rather than a
/// lock-free ring: producers touch the lock for nanoseconds per message, the
/// consumer takes everything in one critical section per drain cycle, and
/// the implementation is trivially TSan-provable — the property the soak
/// test in CI actually certifies.
///
/// The overload policy is applied *here*, at admission, so a full queue can
/// never stall the scoring path (except under kBlock, where stalling the
/// producer is the point).
template <typename T>
class BoundedQueue {
 public:
  /// Admission outcome of one push. Exactly one message is "lost" per
  /// kReplacedOldest / kReplacedHeaviest (the evicted element, surfaced in
  /// PushResult::evicted) and per kRejected / kClosed (the offered message)
  /// — callers turn these into exact drop counts and attribute each drop to
  /// the element that was actually shed.
  enum class Push {
    kAccepted,          ///< enqueued into spare capacity
    kReplacedOldest,    ///< enqueued, evicting the oldest queued item
    kReplacedHeaviest,  ///< enqueued, evicting the heaviest sender's oldest item
    kRejected,          ///< not enqueued: full under kDropNewest, or the
                        ///< offered sender is the heaviest under kFairShed
    kClosed,            ///< not enqueued: queue closed
  };

  /// Outcome plus the evicted element (engaged iff outcome is one of the
  /// kReplaced* values), so drops are attributed to the message that was
  /// actually lost, not the one that displaced it.
  struct PushResult {
    Push outcome = Push::kAccepted;
    std::optional<T> evicted;
  };

  /// Maps an element to its sender, used only by kFairShed to keep
  /// per-sender queue occupancy counts. A fair-shed queue without a key
  /// function degrades to kDropOldest.
  using KeyFn = std::function<std::uint32_t(const T&)>;

  BoundedQueue(std::size_t capacity, OverloadPolicy policy, KeyFn key = nullptr)
      : capacity_(std::max<std::size_t>(1, capacity)),
        policy_(policy == OverloadPolicy::kFairShed && !key ? OverloadPolicy::kDropOldest
                                                            : policy),
        key_(std::move(key)) {}

  PushResult push(T value) {
    std::unique_lock lock(mutex_);
    if (policy_ == OverloadPolicy::kBlock) {
      not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    }
    if (closed_) return {Push::kClosed, std::nullopt};
    PushResult result;
    if (items_.size() >= capacity_) {
      switch (policy_) {
        case OverloadPolicy::kDropNewest:
          return {Push::kRejected, std::nullopt};
        case OverloadPolicy::kDropOldest:
          result.outcome = Push::kReplacedOldest;
          result.evicted = std::move(items_.front());
          items_.pop_front();
          break;
        case OverloadPolicy::kFairShed: {
          // Shed from the sender holding the most queued messages. When the
          // offered sender is (one of) the heaviest, admitting it by evicting
          // someone else would only entrench the imbalance — tail-drop the
          // offer instead. Under perfectly uniform occupancy this reduces to
          // drop-newest, which is the fair outcome: every sender already has
          // an equal share of the queue.
          const std::uint32_t offered = key_(value);
          const auto heaviest = heaviest_sender();
          const std::size_t offered_count =
              counts_.count(offered) ? counts_.at(offered) : 0;
          if (offered_count >= heaviest.second) return {Push::kRejected, std::nullopt};
          for (auto it = items_.begin(); it != items_.end(); ++it) {
            if (key_(*it) == heaviest.first) {
              result.outcome = Push::kReplacedHeaviest;
              result.evicted = std::move(*it);
              items_.erase(it);
              if (--counts_[heaviest.first] == 0) counts_.erase(heaviest.first);
              break;
            }
          }
          if (!result.evicted) {  // defensive: count map out of sync
            const std::uint32_t head = key_(items_.front());
            if (--counts_[head] == 0) counts_.erase(head);
            result.outcome = Push::kReplacedOldest;
            result.evicted = std::move(items_.front());
            items_.pop_front();
          }
          break;
        }
        case OverloadPolicy::kBlock:
          break;  // unreachable: the wait above guarantees room
      }
    }
    if (policy_ == OverloadPolicy::kFairShed) ++counts_[key_(value)];
    items_.push_back(std::move(value));
    peak_ = std::max(peak_, items_.size());
    lock.unlock();
    not_empty_.notify_one();
    return result;
  }

  /// Consumer side: blocks until at least one item is queued (or the queue
  /// is closed), then moves up to `max_batch` items (0 = all) into `out`.
  /// Returns the number taken; 0 means closed-and-drained — the consumer's
  /// termination signal.
  std::size_t drain_blocking(std::vector<T>& out, std::size_t max_batch = 0) {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    return drain_locked(out, max_batch, lock);
  }

  /// Non-blocking variant: takes whatever is queued right now.
  std::size_t drain(std::vector<T>& out, std::size_t max_batch = 0) {
    std::unique_lock lock(mutex_);
    return drain_locked(out, max_batch, lock);
  }

  /// Closes the queue: subsequent pushes return kClosed, blocked producers
  /// wake with kClosed, and the consumer keeps draining until empty.
  void close() {
    {
      const std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    const std::scoped_lock lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t peak_size() const {
    const std::scoped_lock lock(mutex_);
    return peak_;
  }

  [[nodiscard]] bool closed() const {
    const std::scoped_lock lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  /// (sender, count) with the most queued messages; ties break toward the
  /// smallest sender id so shedding is deterministic. Pre: counts_ nonempty.
  [[nodiscard]] std::pair<std::uint32_t, std::size_t> heaviest_sender() const {
    std::pair<std::uint32_t, std::size_t> best{0, 0};
    for (const auto& [sender, count] : counts_) {
      if (count > best.second || (count == best.second && sender < best.first) ||
          best.second == 0) {
        best = {sender, count};
      }
    }
    return best;
  }

  std::size_t drain_locked(std::vector<T>& out, std::size_t max_batch,
                           std::unique_lock<std::mutex>& lock) {
    const std::size_t n =
        max_batch == 0 ? items_.size() : std::min(max_batch, items_.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (policy_ == OverloadPolicy::kFairShed) {
        const std::uint32_t sender = key_(items_.front());
        if (--counts_[sender] == 0) counts_.erase(sender);
      }
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    lock.unlock();
    if (n > 0) not_full_.notify_all();
    return n;
  }

  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t capacity_;
  OverloadPolicy policy_;
  KeyFn key_;
  std::unordered_map<std::uint32_t, std::size_t> counts_;  ///< kFairShed only
  std::size_t peak_ = 0;
  bool closed_ = false;
};

}  // namespace vehigan::serve
