#pragma once

#include <memory>
#include <optional>

#include "mbds/online.hpp"
#include "scms/authority.hpp"
#include "simnet/medium.hpp"
#include "vasp/injector.hpp"

namespace vehigan::simnet {

/// An OBU node in the event-driven simulation: replays a precomputed motion
/// trace, transmitting one signed BSM per trace message (with a small
/// per-vehicle phase jitter so the fleet does not synchronize into
/// collisions). An optional misbehavior injector turns the node into an
/// insider attacker: the *transmitted* payload is falsified while the true
/// motion (used by the medium for reception physics) stays honest.
class VehicleNode {
 public:
  VehicleNode(EventLoop& loop, BroadcastMedium& medium, sim::VehicleTrace trace,
              scms::PseudonymCertificate certificate, std::uint64_t holder_secret,
              double phase_jitter_s,
              std::shared_ptr<vasp::MisbehaviorInjector> injector = nullptr);

  /// Schedules every transmission of the trace onto the loop.
  void start();

  [[nodiscard]] std::uint32_t vehicle_id() const { return trace_.vehicle_id; }
  [[nodiscard]] bool is_attacker() const { return injector_ != nullptr; }
  [[nodiscard]] std::size_t transmitted() const { return transmitted_; }

  /// True physical position at the latest transmitted message (polled by the
  /// medium for frames from *other* senders arriving here — vehicles are
  /// also receivers so that the medium models their channel load).
  [[nodiscard]] std::pair<double, double> true_position() const;

 private:
  void transmit_index(std::size_t index);

  EventLoop& loop_;
  BroadcastMedium& medium_;
  sim::VehicleTrace trace_;
  scms::PseudonymCertificate certificate_;
  std::uint64_t secret_;
  double jitter_;
  std::shared_ptr<vasp::MisbehaviorInjector> injector_;
  std::optional<vasp::MisbehaviorInjector::TraceContext> attack_ctx_;
  double last_attack_time_ = 0.0;
  std::size_t medium_id_ = 0;
  std::size_t cursor_ = 0;      ///< latest transmitted trace index
  std::size_t transmitted_ = 0;
};

/// An RSU node: verifies every received frame against the credential
/// authority (dropping outsiders, tampered frames, and CRL-revoked senders),
/// feeds accepted payloads into the online VEHIGAN monitor, and forwards
/// misbehavior reports to the MA; on revocation the suspect's certificates
/// go onto the CRL, closing the paper's enforcement loop.
class RsuNode {
 public:
  struct Stats {
    std::size_t received = 0;
    std::size_t accepted = 0;
    std::size_t rejected_signature = 0;
    std::size_t rejected_revoked = 0;
    std::size_t rejected_other = 0;
    std::size_t reports = 0;
  };

  RsuNode(EventLoop& loop, BroadcastMedium& medium, double x, double y,
          scms::CredentialAuthority& ca, mbds::MisbehaviorAuthority& ma,
          std::shared_ptr<mbds::VehiGan> detector, features::MinMaxScaler scaler);

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void on_receive(const scms::SignedBsm& frame);

  EventLoop& loop_;
  double x_, y_;
  scms::CredentialAuthority& ca_;
  mbds::MisbehaviorAuthority& ma_;
  mbds::OnlineMbds monitor_;
  Stats stats_;
};

}  // namespace vehigan::simnet
