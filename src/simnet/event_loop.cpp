#include "simnet/event_loop.hpp"

#include <stdexcept>
#include <string>

namespace vehigan::simnet {

void EventLoop::schedule_at(double time, Handler fn) {
  if (time < now_) {
    throw std::logic_error("EventLoop::schedule_at: time " + std::to_string(time) +
                           " is in the past (now " + std::to_string(now_) + ")");
  }
  queue_.push(Event{time, next_seq_++, std::move(fn)});
}

void EventLoop::run_until(double horizon) {
  while (!queue_.empty() && queue_.top().time <= horizon) {
    // Move the handler out before popping so it can schedule new events.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    ++processed_;
    event.fn();
  }
  if (horizon > now_) now_ = horizon;
}

}  // namespace vehigan::simnet
