#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/channel.hpp"
#include "scms/envelope.hpp"
#include "simnet/event_loop.hpp"

namespace vehigan::simnet {

/// Shared broadcast medium with frame-level collisions — the DSRC channel of
/// the Veins stack. On transmit, every registered node other than the sender
/// samples the distance-dependent channel; surviving frames are delivered
/// after air time + propagation delay unless another frame overlaps them at
/// that receiver, in which case *both* are destroyed (classic broadcast
/// collision; there is no capture effect modeled).
class BroadcastMedium {
 public:
  /// Node attachment: the medium polls `position` (true physical location)
  /// at delivery-decision time and calls `on_receive` for clean frames.
  struct Attachment {
    std::function<std::pair<double, double>()> position;
    std::function<void(const scms::SignedBsm&)> on_receive;
  };

  struct Stats {
    std::size_t frames_sent = 0;
    std::size_t deliveries = 0;       ///< clean receptions across all nodes
    std::size_t channel_losses = 0;   ///< lost to range/fading/congestion
    std::size_t collisions = 0;       ///< receptions destroyed by overlap
  };

  /// @param bitrate_bps   channel bit rate (DSRC: 6 Mb/s)
  /// @param frame_bytes   over-the-air frame size (payload + cert + sig)
  BroadcastMedium(EventLoop& loop, net::ChannelConfig channel, std::uint64_t seed,
                  double bitrate_bps = 6e6, std::size_t frame_bytes = 120);

  /// Registers a node; returns its id (used to skip self-reception).
  std::size_t attach(Attachment attachment);

  /// Broadcasts one frame from `sender` whose true antenna position is
  /// (true_x, true_y).
  void transmit(std::size_t sender, double true_x, double true_y,
                const scms::SignedBsm& frame);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] double airtime() const { return airtime_; }

 private:
  struct Reception {
    double start = 0.0;
    double end = 0.0;
    std::shared_ptr<bool> corrupted;
  };

  EventLoop& loop_;
  net::Channel channel_;
  double airtime_;
  std::vector<Attachment> nodes_;
  std::vector<Reception> in_flight_;  ///< last reception per node
  Stats stats_;
};

}  // namespace vehigan::simnet
