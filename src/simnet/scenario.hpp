#pragma once

#include <set>

#include "simnet/nodes.hpp"
#include "vasp/attack_types.hpp"

namespace vehigan::simnet {

/// One fully wired event-driven V2X scenario: traffic traces turned into
/// OBU nodes on a collision-prone broadcast medium, an RSU running VEHIGAN,
/// the credential authority, and the misbehavior authority.
struct ScenarioConfig {
  double rsu_x = 480.0;
  double rsu_y = 480.0;
  net::ChannelConfig channel;
  double tx_jitter_max_s = 0.02;   ///< per-vehicle BSM phase jitter
  double malicious_fraction = 0.25;
  int attack_index = 30;           ///< RandomHeadingYawRate by default
  std::size_t revocation_quota = 3;
  std::uint64_t seed = 97;
};

struct ScenarioResult {
  BroadcastMedium::Stats medium;
  RsuNode::Stats rsu;
  std::set<std::uint32_t> attackers;
  std::set<std::uint32_t> revoked;
  double duration_s = 0.0;
  std::size_t events_processed = 0;

  [[nodiscard]] double attacker_recall() const {
    if (attackers.empty()) return 0.0;
    std::size_t caught = 0;
    for (std::uint32_t id : attackers) caught += revoked.contains(id) ? 1 : 0;
    return static_cast<double>(caught) / static_cast<double>(attackers.size());
  }
  [[nodiscard]] std::size_t honest_revoked() const {
    std::size_t count = 0;
    for (std::uint32_t id : revoked) count += attackers.contains(id) ? 0 : 1;
    return count;
  }
};

/// Runs the scenario to completion: every vehicle transmits its whole trace;
/// the RSU detects, reports, and the CA revokes. Deterministic per seed.
ScenarioResult run_scenario(const sim::BsmDataset& fleet, const ScenarioConfig& config,
                            std::shared_ptr<mbds::VehiGan> detector,
                            const features::MinMaxScaler& scaler);

}  // namespace vehigan::simnet
