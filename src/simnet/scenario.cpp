#include "simnet/scenario.hpp"

#include <cmath>
#include <memory>

namespace vehigan::simnet {

ScenarioResult run_scenario(const sim::BsmDataset& fleet, const ScenarioConfig& config,
                            std::shared_ptr<mbds::VehiGan> detector,
                            const features::MinMaxScaler& scaler) {
  util::Rng master(config.seed);
  util::Rng pick_rng = master.split(1);
  util::Rng jitter_rng = master.split(2);
  util::Rng enroll_rng = master.split(3);
  util::Rng inject_rng = master.split(4);

  EventLoop loop;
  BroadcastMedium medium(loop, config.channel, master.split(5).seed());
  scms::CredentialAuthority ca;
  mbds::MisbehaviorAuthority ma(config.revocation_quota);
  RsuNode rsu(loop, medium, config.rsu_x, config.rsu_y, ca, ma, std::move(detector), scaler);

  // Attacker selection mirrors vasp::build_scenario semantics.
  const std::size_t fleet_size = fleet.traces.size();
  const auto num_malicious = static_cast<std::size_t>(
      std::max(1.0, std::ceil(config.malicious_fraction * static_cast<double>(fleet_size))));
  const auto chosen =
      pick_rng.sample_without_replacement(fleet_size, std::min(num_malicious, fleet_size));
  std::set<std::size_t> malicious(chosen.begin(), chosen.end());

  const vasp::AttackSpec& spec = vasp::attack_by_index(config.attack_index);

  ScenarioResult result;
  double horizon = 0.0;
  std::vector<std::unique_ptr<VehicleNode>> vehicles;
  vehicles.reserve(fleet_size);
  for (std::size_t i = 0; i < fleet_size; ++i) {
    const auto& trace = fleet.traces[i];
    if (trace.messages.empty()) continue;
    const std::uint64_t secret = ca.enroll(trace.vehicle_id, enroll_rng);
    const auto cert = ca.issue(trace.vehicle_id, trace.vehicle_id, 0.0,
                               trace.messages.back().time + 10.0);
    std::shared_ptr<vasp::MisbehaviorInjector> injector;
    if (malicious.contains(i)) {
      injector = std::make_shared<vasp::MisbehaviorInjector>(
          spec, vasp::AttackParams{}, inject_rng.split(i));
      result.attackers.insert(trace.vehicle_id);
    }
    vehicles.push_back(std::make_unique<VehicleNode>(
        loop, medium, trace, cert, secret,
        jitter_rng.uniform(0.0, config.tx_jitter_max_s), injector));
    horizon = std::max(horizon, trace.messages.back().time + 1.0);
  }
  for (auto& vehicle : vehicles) vehicle->start();

  loop.run_until(horizon);

  result.medium = medium.stats();
  result.rsu = rsu.stats();
  result.revoked = ma.revocation_list();
  result.duration_s = horizon;
  result.events_processed = loop.processed();
  return result;
}

}  // namespace vehigan::simnet
