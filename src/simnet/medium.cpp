#include "simnet/medium.hpp"

#include <cmath>

#include "telemetry/metrics.hpp"

namespace vehigan::simnet {

namespace {
constexpr double kSpeedOfLight = 3.0e8;

/// Mirrors BroadcastMedium::Stats into the process-wide registry so an RSU
/// deployment (or a bench sidecar) sees channel load next to MBDS latency.
struct MediumTelemetry {
  telemetry::Counter& frames_tx_total;
  telemetry::Counter& frames_delivered_total;
  telemetry::Counter& frames_lost_total;
  telemetry::Counter& frames_collided_total;

  static MediumTelemetry& get() {
    auto& reg = telemetry::MetricsRegistry::global();
    static MediumTelemetry tel{
        reg.counter("vehigan_simnet_frames_tx_total"),
        reg.counter("vehigan_simnet_frames_delivered_total"),
        reg.counter("vehigan_simnet_frames_lost_total"),
        reg.counter("vehigan_simnet_frames_collided_total"),
    };
    return tel;
  }
};

}  // namespace

BroadcastMedium::BroadcastMedium(EventLoop& loop, net::ChannelConfig channel,
                                 std::uint64_t seed, double bitrate_bps,
                                 std::size_t frame_bytes)
    : loop_(loop),
      channel_(channel, seed),
      airtime_(static_cast<double>(frame_bytes) * 8.0 / bitrate_bps) {}

std::size_t BroadcastMedium::attach(Attachment attachment) {
  nodes_.push_back(std::move(attachment));
  in_flight_.push_back({});
  return nodes_.size() - 1;
}

void BroadcastMedium::transmit(std::size_t sender, double true_x, double true_y,
                               const scms::SignedBsm& frame) {
  ++stats_.frames_sent;
  MediumTelemetry::get().frames_tx_total.add(1);
  const double t_start = loop_.now();
  for (std::size_t node = 0; node < nodes_.size(); ++node) {
    if (node == sender) continue;
    const auto [rx_x, rx_y] = nodes_[node].position();
    if (!channel_.received(true_x, true_y, rx_x, rx_y)) {
      // Out of range or faded: the radio never locks on, no collision state.
      ++stats_.channel_losses;
      MediumTelemetry::get().frames_lost_total.add(1);
      continue;
    }
    const double distance = std::hypot(true_x - rx_x, true_y - rx_y);
    const double arrive = t_start + distance / kSpeedOfLight;
    const double done = arrive + airtime_;

    auto corrupted = std::make_shared<bool>(false);
    Reception& previous = in_flight_[node];
    if (previous.corrupted && arrive < previous.end) {
      // Overlap at this receiver: both frames destroyed. Each destroyed
      // frame is counted once, at its delivery event.
      *previous.corrupted = true;
      *corrupted = true;
    }
    in_flight_[node] = Reception{arrive, done, corrupted};

    const scms::SignedBsm copy = frame;
    loop_.schedule_at(done, [this, node, copy, corrupted] {
      if (*corrupted) {
        ++stats_.collisions;
        MediumTelemetry::get().frames_collided_total.add(1);
        return;
      }
      ++stats_.deliveries;
      MediumTelemetry::get().frames_delivered_total.add(1);
      nodes_[node].on_receive(copy);
    });
  }
}

}  // namespace vehigan::simnet
