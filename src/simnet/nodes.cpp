#include "simnet/nodes.hpp"

namespace vehigan::simnet {

VehicleNode::VehicleNode(EventLoop& loop, BroadcastMedium& medium, sim::VehicleTrace trace,
                         scms::PseudonymCertificate certificate, std::uint64_t holder_secret,
                         double phase_jitter_s,
                         std::shared_ptr<vasp::MisbehaviorInjector> injector)
    : loop_(loop),
      medium_(medium),
      trace_(std::move(trace)),
      certificate_(certificate),
      secret_(holder_secret),
      jitter_(phase_jitter_s),
      injector_(std::move(injector)) {
  medium_id_ = medium_.attach(BroadcastMedium::Attachment{
      [this] { return true_position(); },
      // Vehicles receive (for channel-load realism) but this simulation's
      // detectors live on the RSU; OBU-side self-defense would hook here.
      [](const scms::SignedBsm&) {}});
}

std::pair<double, double> VehicleNode::true_position() const {
  if (trace_.messages.empty()) return {0.0, 0.0};
  const auto& m = trace_.messages[std::min(cursor_, trace_.messages.size() - 1)];
  return {m.x, m.y};
}

void VehicleNode::start() {
  if (trace_.messages.empty()) return;
  if (injector_) {
    attack_ctx_ = injector_->begin(trace_.messages.front().time);
    last_attack_time_ = trace_.messages.front().time;
  }
  for (std::size_t i = 0; i < trace_.messages.size(); ++i) {
    loop_.schedule_at(trace_.messages[i].time + jitter_, [this, i] { transmit_index(i); });
  }
}

void VehicleNode::transmit_index(std::size_t index) {
  cursor_ = index;
  const sim::Bsm& truth = trace_.messages[index];
  sim::Bsm payload = truth;
  if (injector_ && attack_ctx_) {
    const double dt = index == 0 ? 0.1 : truth.time - last_attack_time_;
    last_attack_time_ = truth.time;
    injector_->apply_message(payload, *attack_ctx_, dt > 0.0 ? dt : 0.1);
  }
  const scms::SignedBsm frame = scms::sign_bsm(payload, certificate_, secret_);
  // Physical reception uses the vehicle's true position even when the
  // payload lies about it.
  medium_.transmit(medium_id_, truth.x, truth.y, frame);
  ++transmitted_;
}

RsuNode::RsuNode(EventLoop& loop, BroadcastMedium& medium, double x, double y,
                 scms::CredentialAuthority& ca, mbds::MisbehaviorAuthority& ma,
                 std::shared_ptr<mbds::VehiGan> detector, features::MinMaxScaler scaler)
    : loop_(loop),
      x_(x),
      y_(y),
      ca_(ca),
      ma_(ma),
      monitor_(/*station_id=*/9000, std::move(detector), std::move(scaler),
               /*report_cooldown=*/1.0) {
  monitor_.set_report_sink([this](const mbds::MisbehaviorReport& report) {
    ++stats_.reports;
    if (ma_.submit(report)) {
      ca_.revoke_pseudonym(report.suspect_id);
    }
  });
  medium.attach(BroadcastMedium::Attachment{
      [this] { return std::make_pair(x_, y_); },
      [this](const scms::SignedBsm& frame) { on_receive(frame); }});
}

void RsuNode::on_receive(const scms::SignedBsm& frame) {
  ++stats_.received;
  switch (ca_.verify(frame, loop_.now())) {
    case scms::VerifyResult::kAccepted:
      ++stats_.accepted;
      (void)monitor_.ingest(frame.payload);
      break;
    case scms::VerifyResult::kRevoked:
      ++stats_.rejected_revoked;
      break;
    case scms::VerifyResult::kBadCaSignature:
    case scms::VerifyResult::kBadMessageSignature:
      ++stats_.rejected_signature;
      break;
    default:
      ++stats_.rejected_other;
  }
}

}  // namespace vehigan::simnet
