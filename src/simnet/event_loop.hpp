#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace vehigan::simnet {

/// Discrete-event simulation kernel — the OMNeT++ role in the paper's stack,
/// reduced to what V2X co-simulation needs: a time-ordered event queue with
/// deterministic FIFO tie-breaking and a run-until-horizon driver.
///
/// Handlers may schedule further events (at or after the current time);
/// scheduling into the past throws, which turns causality bugs into loud
/// failures instead of silent reordering.
class EventLoop {
 public:
  using Handler = std::function<void()>;

  /// Schedules `fn` at absolute simulation time `time` (>= now()).
  void schedule_at(double time, Handler fn);

  /// Schedules `fn` `delay` seconds from now (delay >= 0).
  void schedule_in(double delay, Handler fn) { schedule_at(now_ + delay, std::move(fn)); }

  [[nodiscard]] double now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::size_t processed() const { return processed_; }

  /// Processes every event with time <= horizon, in (time, insertion) order.
  /// now() ends at max(processed event time, horizon).
  void run_until(double horizon);

 private:
  struct Event {
    double time;
    std::uint64_t seq;  ///< FIFO tie-break for equal timestamps
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
};

}  // namespace vehigan::simnet
