#include "net/channel.hpp"

#include <cmath>

namespace vehigan::net {

double Channel::delivery_probability(double distance_m) const {
  if (distance_m < 0.0) return 0.0;
  if (distance_m > config_.max_range_m) return 0.0;
  const double t = distance_m / config_.max_range_m;
  const double base =
      config_.p_delivery_near + t * (config_.p_delivery_edge - config_.p_delivery_near);
  return base * (1.0 - config_.p_congestion_loss);
}

bool Channel::received(double true_tx_x, double true_tx_y, double rx_x, double rx_y) {
  const double distance = std::hypot(true_tx_x - rx_x, true_tx_y - rx_y);
  const double p = delivery_probability(distance);
  if (p <= 0.0) return false;
  return rng_.bernoulli(p);
}

}  // namespace vehigan::net
