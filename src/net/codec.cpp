#include "net/codec.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "telemetry/metrics.hpp"
#include "util/math.hpp"

namespace vehigan::net {

namespace {

struct CodecTelemetry {
  telemetry::Counter& encoded_total;
  telemetry::Counter& decoded_total;
  telemetry::Counter& bytes_encoded_total;
  telemetry::Counter& bytes_decoded_total;

  static CodecTelemetry& get() {
    auto& reg = telemetry::MetricsRegistry::global();
    static CodecTelemetry tel{
        reg.counter("vehigan_net_bsm_encoded_total"),
        reg.counter("vehigan_net_bsm_decoded_total"),
        reg.counter("vehigan_net_bytes_encoded_total"),
        reg.counter("vehigan_net_bytes_decoded_total"),
    };
    return tel;
  }
};

constexpr double kPosUnit = 0.01;         // 1 cm
constexpr double kSpeedUnit = 0.02;       // m/s
constexpr double kAccelUnit = 0.01;       // m/s^2
constexpr double kHeadingUnit = 0.0125 * util::kPi / 180.0;  // rad
constexpr double kYawUnit = 0.01 * util::kPi / 180.0;        // rad/s
constexpr double kTimeUnit = 0.01;        // 10 ms

template <typename Int>
Int saturate(double value) {
  const double lo = static_cast<double>(std::numeric_limits<Int>::min());
  const double hi = static_cast<double>(std::numeric_limits<Int>::max());
  return static_cast<Int>(std::llround(util::clamp(value, lo, hi)));
}

template <typename Int>
void put(std::string& out, Int v) {
  for (std::size_t i = 0; i < sizeof(Int); ++i) {
    out.push_back(static_cast<char>((static_cast<std::uint64_t>(v) >> (8 * i)) & 0xFF));
  }
}

template <typename Int>
Int get(const std::string& in, std::size_t& offset) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < sizeof(Int); ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[offset + i])) << (8 * i);
  }
  offset += sizeof(Int);
  return static_cast<Int>(v);
}

}  // namespace

std::string encode_bsm(const sim::Bsm& message) {
  std::string wire;
  wire.reserve(kWireSize);
  put<std::uint32_t>(wire, message.vehicle_id);
  put<std::uint32_t>(wire, saturate<std::uint32_t>(message.time / kTimeUnit));
  put<std::int32_t>(wire, saturate<std::int32_t>(message.x / kPosUnit));
  put<std::int32_t>(wire, saturate<std::int32_t>(message.y / kPosUnit));
  put<std::uint16_t>(wire, saturate<std::uint16_t>(std::max(message.speed, 0.0) / kSpeedUnit));
  put<std::int16_t>(wire, saturate<std::int16_t>(message.accel / kAccelUnit));
  put<std::uint16_t>(wire,
                     saturate<std::uint16_t>(util::wrap_angle(message.heading) / kHeadingUnit));
  put<std::int16_t>(wire, saturate<std::int16_t>(message.yaw_rate / kYawUnit));
  CodecTelemetry& tel = CodecTelemetry::get();
  tel.encoded_total.add(1);
  tel.bytes_encoded_total.add(wire.size());
  return wire;
}

sim::Bsm decode_bsm(const std::string& wire) {
  if (wire.size() != kWireSize) {
    throw std::invalid_argument("decode_bsm: expected " + std::to_string(kWireSize) +
                                " bytes, got " + std::to_string(wire.size()));
  }
  std::size_t offset = 0;
  sim::Bsm m;
  m.vehicle_id = get<std::uint32_t>(wire, offset);
  m.time = get<std::uint32_t>(wire, offset) * kTimeUnit;
  m.x = get<std::int32_t>(wire, offset) * kPosUnit;
  m.y = get<std::int32_t>(wire, offset) * kPosUnit;
  m.speed = get<std::uint16_t>(wire, offset) * kSpeedUnit;
  m.accel = get<std::int16_t>(wire, offset) * kAccelUnit;
  m.heading = get<std::uint16_t>(wire, offset) * kHeadingUnit;
  m.yaw_rate = get<std::int16_t>(wire, offset) * kYawUnit;
  CodecTelemetry& tel = CodecTelemetry::get();
  tel.decoded_total.add(1);
  tel.bytes_decoded_total.add(wire.size());
  return m;
}

sim::BsmDataset quantize_dataset(const sim::BsmDataset& dataset) {
  sim::BsmDataset out;
  out.traces.reserve(dataset.traces.size());
  for (const auto& trace : dataset.traces) {
    sim::VehicleTrace quantized;
    quantized.vehicle_id = trace.vehicle_id;
    quantized.messages.reserve(trace.messages.size());
    for (const auto& message : trace.messages) {
      quantized.messages.push_back(quantize_bsm(message));
    }
    out.traces.push_back(std::move(quantized));
  }
  return out;
}

}  // namespace vehigan::net
