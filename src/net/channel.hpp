#pragma once

#include <cstdint>

#include "sim/bsm.hpp"
#include "util/rng.hpp"

namespace vehigan::net {

/// DSRC/C-V2X broadcast channel model — the role Veins/OMNeT++ play in the
/// paper's stack. Deliberately at the abstraction level the MBDS cares
/// about: whether a given receiver hears a given BSM, not waveform physics.
///
/// Reception model:
///  * hard range cutoff `max_range_m` (beyond it nothing is received),
///  * distance-dependent loss: delivery probability decays smoothly from
///    `p_delivery_near` at the transmitter to `p_delivery_edge` at the
///    cutoff (a logistic-free linear ramp keeps it analyzable in tests),
///  * independent per-message congestion loss `p_congestion_loss`
///    (collisions on the shared channel at high densities).
struct ChannelConfig {
  double max_range_m = 300.0;      ///< typical DSRC line-of-sight range
  double p_delivery_near = 0.99;   ///< delivery probability at distance 0
  double p_delivery_edge = 0.60;   ///< delivery probability at max range
  double p_congestion_loss = 0.0;  ///< extra i.i.d. loss (channel load)
};

/// Samples receptions for one receiver position.
class Channel {
 public:
  Channel(ChannelConfig config, std::uint64_t seed) : config_(config), rng_(seed) {}

  /// Delivery probability for a transmitter at the given distance (0 beyond
  /// the range cutoff). Deterministic — unit-testable separately from the
  /// sampling.
  [[nodiscard]] double delivery_probability(double distance_m) const;

  /// Samples whether a BSM transmitted at (msg.x, msg.y) is received at
  /// (rx_x, rx_y). The transmitted coordinates may be falsified by an
  /// attacker; physical reception depends on the *true* position, so the
  /// caller passes it explicitly.
  bool received(double true_tx_x, double true_tx_y, double rx_x, double rx_y);

  [[nodiscard]] const ChannelConfig& config() const { return config_; }

 private:
  ChannelConfig config_;
  util::Rng rng_;
};

}  // namespace vehigan::net
