#pragma once

#include <cstdint>
#include <string>

#include "sim/bsm.hpp"

namespace vehigan::net {

/// Fixed-size binary wire format for BSMs with SAE J2735-style field
/// quantization. The paper's stack transmits real encoded BSMs; the
/// quantization granularity below mirrors the standard's units, so features
/// computed from decoded messages carry realistic quantization noise:
///
///   field     unit            width   J2735 analogue
///   x, y      1 cm            i32     Position3D (lat/lon 0.1 udeg ~ cm)
///   speed     0.02 m/s        u16     TransmissionAndSpeed
///   accel     0.01 m/s^2      i16     AccelerationSet4Way.longitudinal
///   heading   0.0125 deg      u16     Heading
///   yaw rate  0.01 deg/s      i16     YawRate
///   time      10 ms           u32     DSecond (widened beyond one minute)
///   id        -               u32     TemporaryID
///
/// Encoded size: kWireSize bytes, little-endian.
inline constexpr std::size_t kWireSize = 4 + 4 + 4 + 4 + 2 + 2 + 2 + 2;

/// Encodes one BSM; values outside a field's representable range are
/// saturated (as real encoders do).
std::string encode_bsm(const sim::Bsm& message);

/// Decodes one wire message. Throws std::invalid_argument on wrong size.
sim::Bsm decode_bsm(const std::string& wire);

/// Convenience: the quantization applied by an encode/decode round trip —
/// what a receiver actually sees. Used by the quantization-ablation bench.
inline sim::Bsm quantize_bsm(const sim::Bsm& message) { return decode_bsm(encode_bsm(message)); }

/// Applies wire quantization to every message of a dataset.
sim::BsmDataset quantize_dataset(const sim::BsmDataset& dataset);

}  // namespace vehigan::net
