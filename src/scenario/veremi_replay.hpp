#pragma once

#include "data/veremi.hpp"
#include "scenario/source.hpp"

namespace vehigan::scenario {

/// Replays a parsed VeReMi trace pair through the ScenarioSource interface,
/// so recorded real-format datasets drive the exact same serving path as the
/// synthetic engine. VeReMi timestamps are absolute simulation times (e.g.
/// 25200.0 = 7 h into the day); ticks are sliced on the trace's own clock
/// starting at its earliest message — nothing is rebased, which is what
/// makes the message-time eviction fix observable end to end.
class VeremiReplaySource : public ScenarioSource {
 public:
  /// Loads `<stem>.json` / `<stem>.gt.json` (throws on malformed traces,
  /// see data::read_veremi) and slices the global time-sorted schedule into
  /// `dt_s` ticks.
  explicit VeremiReplaySource(const data::VeremiExport& files, double dt_s = 0.1);

  /// Replays an already-imported dataset (e.g. a write_veremi round trip).
  explicit VeremiReplaySource(const data::VeremiImport& import, double dt_s = 0.1);

  bool next(std::vector<sim::Bsm>& out) override;
  [[nodiscard]] const std::map<std::uint32_t, int>& attacker_type() const override {
    return attacker_type_;
  }

  [[nodiscard]] std::size_t tick_count() const { return ticks_.size(); }
  [[nodiscard]] double start_time() const { return start_time_; }

 private:
  void build(const data::VeremiImport& import, double dt_s);

  std::map<std::uint32_t, int> attacker_type_;
  std::vector<std::vector<sim::Bsm>> ticks_;
  double start_time_ = 0.0;
  std::size_t cursor_ = 0;
};

}  // namespace vehigan::scenario
