#include "scenario/source.hpp"

namespace vehigan::scenario {

LabeledStream drain_all(ScenarioSource& source) {
  LabeledStream stream;
  std::vector<sim::Bsm> tick;
  while (source.next(tick)) stream.ticks.push_back(tick);
  stream.attacker_type = source.attacker_type();
  return stream;
}

}  // namespace vehigan::scenario
