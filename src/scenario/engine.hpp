#pragma once

#include <unordered_map>

#include "scenario/config.hpp"
#include "scenario/source.hpp"
#include "util/rng.hpp"
#include "vasp/injector.hpp"

namespace vehigan::scenario {

/// Compiles a declarative ScenarioConfig into a deterministic labeled BSM
/// stream (the top half of the testing pipeline the paper drives with
/// SUMO/VASP traces). The compilation pipeline:
///
///   1. benign IDM traffic on the grid map (TrafficSimulator, config seed);
///   2. arrival shaping — whole platoons are time-shifted per the arrival
///      pattern (platoons are mutually independent, so shifting preserves
///      every IDM interaction exactly);
///   3. cohort selection — persistent/adaptive cohorts claim distinct
///      existing vehicles; Sybil cohorts mint fresh station ids broadcasting
///      one shared ghost trajectory with per-identity offsets;
///   4. channel impairments — honest messages inside a GPS-degraded zone
///      drop out or get inflated position noise (attacker messages are
///      untouched: their fields are fabricated, not measured);
///   5. persistent attacks are baked into the stream; adaptive attacks are
///      applied at emission time so the magnitude scale can react to
///      detector feedback.
///
/// Every random draw derives from Rng(config.seed) via fixed split salts, so
/// the stream is a pure function of (config, seed): byte-identical across
/// processes (pinned by tests/scenario_test.cpp). With a feedback oracle
/// installed, emission additionally depends on the oracle's answers — and
/// nothing else.
class ScenarioEngine : public ScenarioSource {
 public:
  explicit ScenarioEngine(ScenarioConfig config);

  bool next(std::vector<sim::Bsm>& out) override;
  [[nodiscard]] const std::map<std::uint32_t, int>& attacker_type() const override {
    return attacker_type_;
  }
  [[nodiscard]] bool wants_feedback() const override { return !adaptive_.empty(); }
  void set_feedback(Feedback feedback) override { feedback_ = std::move(feedback); }

  [[nodiscard]] const ScenarioConfig& config() const { return config_; }
  [[nodiscard]] std::size_t tick_count() const { return ticks_.size(); }

  /// Restarts emission from tick 0. Adaptive state (magnitude scales, probe
  /// clocks) is NOT reset; use a fresh engine for an independent replay.
  void rewind() { cursor_ = 0; }

 private:
  /// Emission-time state of one adaptive attacker.
  struct AdaptiveState {
    vasp::MisbehaviorInjector injector;
    vasp::MisbehaviorInjector::TraceContext ctx;
    double attack_start = 0.0;
    double probe_period = 2.0;
    double backoff = 0.5;
    double recover = 1.15;
    double scale = 1.0;          ///< current magnitude (1 = full attack)
    double next_probe_time = 0.0;
    double last_time = 0.0;
    bool started = false;
    std::uint64_t last_flag_count = 0;
  };

  void compile();
  void apply_adaptive(sim::Bsm& message, AdaptiveState& state);

  ScenarioConfig config_;
  std::map<std::uint32_t, int> attacker_type_;
  std::vector<std::vector<sim::Bsm>> ticks_;
  std::unordered_map<std::uint32_t, AdaptiveState> adaptive_;
  Feedback feedback_;
  std::size_t cursor_ = 0;
};

}  // namespace vehigan::scenario
