#include "scenario/veremi_replay.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace vehigan::scenario {

VeremiReplaySource::VeremiReplaySource(const data::VeremiExport& files, double dt_s) {
  build(data::read_veremi(files), dt_s);
}

VeremiReplaySource::VeremiReplaySource(const data::VeremiImport& import, double dt_s) {
  build(import, dt_s);
}

void VeremiReplaySource::build(const data::VeremiImport& import, double dt_s) {
  if (dt_s <= 0.0) throw std::invalid_argument("VeremiReplaySource: dt_s must be > 0");
  attacker_type_ = import.attacker_type;
  // Senders present in the message log but absent from the ground truth are
  // conservatively labeled honest — real VeReMi ground-truth files only list
  // a subset of senders in some releases.
  double min_time = std::numeric_limits<double>::infinity();
  double max_time = -std::numeric_limits<double>::infinity();
  for (const sim::VehicleTrace& trace : import.dataset.traces) {
    attacker_type_.try_emplace(trace.vehicle_id, 0);
    for (const sim::Bsm& message : trace.messages) {
      min_time = std::min(min_time, message.time);
      max_time = std::max(max_time, message.time);
    }
  }
  if (!std::isfinite(min_time)) return;  // empty trace: zero ticks
  start_time_ = min_time;

  // Tick k covers [start + k*dt, start + (k+1)*dt): the replay advances on
  // the trace's own absolute clock.
  const auto tick_of = [&](double time) {
    return static_cast<std::size_t>(std::floor((time - min_time) / dt_s + 1e-9));
  };
  ticks_.assign(tick_of(max_time) + 1, {});
  for (const sim::VehicleTrace& trace : import.dataset.traces) {
    for (const sim::Bsm& message : trace.messages) ticks_[tick_of(message.time)].push_back(message);
  }
  for (std::vector<sim::Bsm>& tick : ticks_) {
    std::sort(tick.begin(), tick.end(), [](const sim::Bsm& a, const sim::Bsm& b) {
      return a.time != b.time ? a.time < b.time : a.vehicle_id < b.vehicle_id;
    });
  }
}

bool VeremiReplaySource::next(std::vector<sim::Bsm>& out) {
  out.clear();
  if (cursor_ >= ticks_.size()) return false;
  out = ticks_[cursor_++];
  return true;
}

}  // namespace vehigan::scenario
