#include "scenario/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/noise.hpp"
#include "sim/road_network.hpp"
#include "sim/traffic_sim.hpp"
#include "util/math.hpp"
#include "vasp/attack_types.hpp"

namespace vehigan::scenario {

namespace {

bool inside(const GpsDegradedZone& zone, const sim::Bsm& message) {
  return message.x >= zone.x_min && message.x <= zone.x_max && message.y >= zone.y_min &&
         message.y <= zone.y_max;
}

}  // namespace

ScenarioEngine::ScenarioEngine(ScenarioConfig config) : config_(std::move(config)) {
  if (config_.dt_s <= 0.0) throw std::invalid_argument("ScenarioEngine: dt_s must be > 0");
  if (config_.vehicles_per_platoon <= 0) {
    throw std::invalid_argument("ScenarioEngine: vehicles_per_platoon must be >= 1");
  }
  compile();
}

void ScenarioEngine::compile() {
  // 1. Benign IDM traffic on the grid. The simulator's own seed is the
  // scenario seed; every additional draw below comes from decorrelated
  // split() children with fixed salts, so adding a cohort or a zone never
  // perturbs the other layers' streams.
  sim::TrafficSimConfig sim_cfg;
  sim_cfg.duration_s = config_.duration_s;
  sim_cfg.dt_s = config_.dt_s;
  sim_cfg.num_platoons = config_.num_platoons;
  sim_cfg.vehicles_per_platoon = config_.vehicles_per_platoon;
  sim_cfg.network = config_.map;
  sim_cfg.seed = config_.seed;
  sim::BsmDataset fleet = sim::TrafficSimulator(sim_cfg).run();

  const util::Rng master(config_.seed);

  // 2. Arrival shaping: platoons are mutually independent, so a whole-platoon
  // time shift preserves all IDM interactions. Shifts are quantized to the
  // tick grid to keep the stream tick-aligned.
  util::Rng arrival_rng = master.split(1);
  std::vector<double> platoon_shift(static_cast<std::size_t>(config_.num_platoons), 0.0);
  for (double& shift : platoon_shift) {
    double s = 0.0;
    switch (config_.arrival.pattern) {
      case ArrivalPattern::kImmediate:
        break;
      case ArrivalPattern::kUniform:
        s = arrival_rng.uniform(0.0, 0.5 * config_.duration_s);
        break;
      case ArrivalPattern::kRushHour:
        s = util::clamp(arrival_rng.normal(config_.arrival.peak_time_s, config_.arrival.sigma_s),
                        0.0, 0.75 * config_.duration_s);
        break;
    }
    shift = std::round(s / config_.dt_s) * config_.dt_s;
  }
  const auto vpp = static_cast<std::uint32_t>(config_.vehicles_per_platoon);
  for (sim::VehicleTrace& trace : fleet.traces) {
    // TrafficSimulator assigns ids sequentially per platoon starting at 1.
    const std::size_t platoon =
        std::min<std::size_t>((trace.vehicle_id - 1) / vpp, platoon_shift.size() - 1);
    if (platoon_shift[platoon] == 0.0) continue;
    for (sim::Bsm& message : trace.messages) message.time += platoon_shift[platoon];
  }

  // 3a. Persistent/adaptive cohorts claim distinct existing vehicles.
  for (const sim::VehicleTrace& trace : fleet.traces) attacker_type_[trace.vehicle_id] = 0;
  std::vector<std::uint32_t> available;
  available.reserve(fleet.traces.size());
  for (const sim::VehicleTrace& trace : fleet.traces) available.push_back(trace.vehicle_id);
  std::sort(available.begin(), available.end());
  util::Rng pick_rng = master.split(2);
  struct Claim {
    std::uint32_t vehicle_id;
    std::size_t cohort;
    std::size_t member;
  };
  std::vector<Claim> claims;
  for (std::size_t i = 0; i < config_.cohorts.size(); ++i) {
    const AttackerCohort& cohort = config_.cohorts[i];
    if (cohort.mode == CohortMode::kSybil) continue;
    const vasp::AttackSpec spec = vasp::attack_by_name(cohort.attack);
    for (int j = 0; j < cohort.count; ++j) {
      if (available.empty()) {
        throw std::runtime_error("ScenarioEngine: more attackers than vehicles in \"" +
                                 config_.name + "\"");
      }
      const std::size_t at = pick_rng.index(available.size());
      const std::uint32_t id = available[at];
      available.erase(available.begin() + static_cast<std::ptrdiff_t>(at));
      attacker_type_[id] = spec.index;
      claims.push_back({id, i, static_cast<std::size_t>(j)});
    }
  }

  // 4. Channel impairments on honest traffic. Attacker fields are fabricated,
  // not measured, so degraded GNSS does not touch them.
  if (!config_.gps_zones.empty()) {
    util::Rng zone_rng = master.split(3);
    const double base_sigma = sim_cfg.noise.pos_sigma;
    for (sim::VehicleTrace& trace : fleet.traces) {
      if (attacker_type_.at(trace.vehicle_id) != 0) continue;
      std::vector<sim::Bsm> kept;
      kept.reserve(trace.messages.size());
      for (sim::Bsm message : trace.messages) {
        const GpsDegradedZone* hit = nullptr;
        for (const GpsDegradedZone& zone : config_.gps_zones) {
          if (inside(zone, message)) {
            hit = &zone;
            break;
          }
        }
        if (hit != nullptr) {
          if (zone_rng.bernoulli(hit->dropout_p)) continue;
          const double extra = base_sigma * std::max(0.0, hit->pos_sigma_scale - 1.0);
          message.x += zone_rng.normal(0.0, extra);
          message.y += zone_rng.normal(0.0, extra);
        }
        kept.push_back(message);
      }
      trace.messages = std::move(kept);
    }
  }

  // 3b. Bake persistent attacks into the stream / arm adaptive injectors.
  // Streaming application (not attack_trace) so the cohort's start_time_s
  // gives a clean onset: the attacker drives honestly, then turns.
  for (const Claim& claim : claims) {
    const AttackerCohort& cohort = config_.cohorts[claim.cohort];
    const vasp::AttackSpec spec = vasp::attack_by_name(cohort.attack);
    util::Rng injector_rng = master.split(1000 + 64 * claim.cohort + claim.member);
    vasp::MisbehaviorInjector injector(spec, config_.attack_params, injector_rng);
    if (cohort.mode == CohortMode::kAdaptive) {
      AdaptiveState state{std::move(injector), {}, cohort.start_time_s,
                          cohort.probe_period_s, cohort.backoff, cohort.recover,
                          /*scale=*/1.0, /*next_probe_time=*/0.0, /*last_time=*/0.0,
                          /*started=*/false, /*last_flag_count=*/0};
      adaptive_.emplace(claim.vehicle_id, std::move(state));
      continue;
    }
    for (sim::VehicleTrace& trace : fleet.traces) {
      if (trace.vehicle_id != claim.vehicle_id) continue;
      vasp::MisbehaviorInjector::TraceContext ctx;
      bool started = false;
      double last_time = 0.0;
      for (sim::Bsm& message : trace.messages) {
        if (message.time < cohort.start_time_s) continue;
        if (!started) {
          ctx = injector.begin(message.time);
          started = true;
          last_time = message.time;
        }
        injector.apply_message(message, ctx, message.time - last_time);
        last_time = message.time;
      }
      break;
    }
  }

  // 3c. Sybil cohorts: fresh identities colluding on one ghost trajectory.
  std::uint32_t next_id = 0;
  for (const auto& [id, type] : attacker_type_) next_id = std::max(next_id, id);
  ++next_id;
  for (std::size_t i = 0; i < config_.cohorts.size(); ++i) {
    const AttackerCohort& cohort = config_.cohorts[i];
    if (cohort.mode != CohortMode::kSybil) continue;
    util::Rng ghost_rng = master.split(4000 + i);
    const sim::RoadNetwork network(config_.map);
    const sim::Route route = network.random_route(ghost_rng, 400.0);
    const double speed = route.speed_limit;
    const double start = std::round(cohort.start_time_s / config_.dt_s) * config_.dt_s;
    for (int j = 0; j < cohort.count; ++j) {
      sim::VehicleTrace ghost;
      ghost.vehicle_id = next_id++;
      attacker_type_[ghost.vehicle_id] = kSybilAttackerType;
      // Each colluding identity reports the shared ghost with its own small
      // constant offset + independent sensor noise — consistent enough to
      // corroborate each other, distinct enough to look like many vehicles.
      const double dx = ghost_rng.normal(0.0, 2.0);
      const double dy = ghost_rng.normal(0.0, 2.0);
      for (double t = start; t <= config_.duration_s + 1e-9; t += config_.dt_s) {
        const double arc = speed * (t - start);
        if (arc > route.path.total_length()) break;
        const sim::Pose pose = route.path.pose_at(arc);
        sim::Bsm truth;
        truth.vehicle_id = ghost.vehicle_id;
        truth.time = std::round(t / config_.dt_s) * config_.dt_s;
        truth.x = pose.x + dx;
        truth.y = pose.y + dy;
        truth.speed = speed;
        truth.accel = 0.0;
        truth.heading = pose.heading;
        truth.yaw_rate = pose.curvature * speed;
        ghost.messages.push_back(sim_cfg.noise.apply(truth, ghost_rng));
      }
      fleet.traces.push_back(std::move(ghost));
    }
  }

  // 5. Compile the tick-major schedule: every message lands in its tick
  // bucket; within a tick, (time, station id) ordering makes the wire order
  // deterministic and sharding-friendly.
  double max_time = 0.0;
  for (const sim::VehicleTrace& trace : fleet.traces) {
    for (const sim::Bsm& message : trace.messages) max_time = std::max(max_time, message.time);
  }
  ticks_.assign(static_cast<std::size_t>(std::llround(max_time / config_.dt_s)) + 1, {});
  for (const sim::VehicleTrace& trace : fleet.traces) {
    for (const sim::Bsm& message : trace.messages) {
      const auto tick = static_cast<std::size_t>(std::llround(message.time / config_.dt_s));
      ticks_[tick].push_back(message);
    }
  }
  for (std::vector<sim::Bsm>& tick : ticks_) {
    std::sort(tick.begin(), tick.end(), [](const sim::Bsm& a, const sim::Bsm& b) {
      return a.time != b.time ? a.time < b.time : a.vehicle_id < b.vehicle_id;
    });
  }
}

void ScenarioEngine::apply_adaptive(sim::Bsm& message, AdaptiveState& state) {
  if (message.time < state.attack_start) return;
  if (feedback_ && message.time >= state.next_probe_time) {
    const std::uint64_t flags = feedback_(message.vehicle_id);
    if (flags > state.last_flag_count) {
      state.scale *= state.backoff;  // caught since last probe: back off hard
    } else {
      // Clean since last probe: creep back toward the full attack. The
      // additive epsilon lets a fully backed-off attacker re-emerge.
      state.scale = std::min(1.0, state.scale * state.recover + 1e-3);
    }
    state.last_flag_count = flags;
    state.next_probe_time = message.time + state.probe_period;
  }
  const double dt = state.started ? message.time - state.last_time : 0.0;
  if (!state.started) {
    state.ctx = state.injector.begin(message.time);
    state.started = true;
  }
  state.last_time = message.time;

  sim::Bsm attacked = message;
  state.injector.apply_message(attacked, state.ctx, dt);
  // Blend the transmitted message between honest (scale 0) and the full
  // attack (scale 1); angles blend along the shortest arc.
  const double w = state.scale;
  message.x += w * (attacked.x - message.x);
  message.y += w * (attacked.y - message.y);
  message.speed = std::max(0.0, message.speed + w * (attacked.speed - message.speed));
  message.accel += w * (attacked.accel - message.accel);
  message.heading = util::wrap_angle(message.heading +
                                     w * util::angle_diff(attacked.heading, message.heading));
  message.yaw_rate += w * (attacked.yaw_rate - message.yaw_rate);
}

bool ScenarioEngine::next(std::vector<sim::Bsm>& out) {
  out.clear();
  if (cursor_ >= ticks_.size()) return false;
  out = ticks_[cursor_++];
  if (!adaptive_.empty()) {
    for (sim::Bsm& message : out) {
      const auto it = adaptive_.find(message.vehicle_id);
      if (it != adaptive_.end()) apply_adaptive(message, it->second);
    }
  }
  return true;
}

}  // namespace vehigan::scenario
