#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "sim/bsm.hpp"

namespace vehigan::scenario {

/// A fully materialized labeled stream: one message vector per tick (ticks
/// may be empty — nobody transmitted) plus the sender -> attackerType label
/// map (0 = honest, 1-35 = attack matrix, 36 = Sybil ghost).
struct LabeledStream {
  std::vector<std::vector<sim::Bsm>> ticks;
  std::map<std::uint32_t, int> attacker_type;

  [[nodiscard]] std::size_t message_count() const {
    std::size_t n = 0;
    for (const auto& tick : ticks) n += tick.size();
    return n;
  }
};

/// A tick-clocked producer of labeled BSM traffic. Both the synthetic
/// ScenarioEngine and VeremiReplaySource implement this, so the runner,
/// benches, and tests drive either through the identical code path.
///
/// Determinism contract: without feedback installed, the emitted stream is a
/// pure function of the source's construction inputs (config + seed, or the
/// trace files) — byte-identical across processes. With feedback, it is a
/// pure function of those inputs plus the feedback values returned.
class ScenarioSource {
 public:
  /// Cumulative "times the detector flagged this station" oracle, probed by
  /// adaptive attackers. Cumulative (not since-last-probe) so probing is
  /// idempotent and the caller needs no per-attacker state.
  using Feedback = std::function<std::uint64_t(std::uint32_t station_id)>;

  virtual ~ScenarioSource() = default;

  /// Emits the next tick into `out` (cleared first). Returns false when the
  /// stream is exhausted; a true return with an empty `out` is a quiet tick,
  /// not the end.
  virtual bool next(std::vector<sim::Bsm>& out) = 0;

  /// Ground-truth labels for every sender this source will ever emit.
  [[nodiscard]] virtual const std::map<std::uint32_t, int>& attacker_type() const = 0;

  /// True when this source probes detector verdicts (adaptive cohorts). The
  /// runner must then settle the pipeline (DetectionService::drain) before
  /// each next() call so feedback reads a quiescent detector.
  [[nodiscard]] virtual bool wants_feedback() const { return false; }

  /// Installs the verdict oracle. Default: ignored.
  virtual void set_feedback(Feedback feedback) { (void)feedback; }
};

/// Runs a source to exhaustion. Convenience for tests and offline tools;
/// the serving path feeds ticks incrementally instead.
[[nodiscard]] LabeledStream drain_all(ScenarioSource& source);

}  // namespace vehigan::scenario
