#include "scenario/config.hpp"

#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "vasp/attack_types.hpp"

namespace vehigan::scenario {

namespace {

using data::Json;

/// Schema guard: a typoed knob must fail the load, not silently revert to
/// its default under a benchmark.
void reject_unknown_keys(const Json& object, const char* where,
                         std::initializer_list<const char*> known) {
  const std::set<std::string> allowed(known.begin(), known.end());
  for (const auto& [key, value] : object.as_object()) {
    if (!allowed.contains(key)) {
      throw std::runtime_error(std::string("scenario config: unknown key \"") + key +
                               "\" in " + where);
    }
  }
}

double number_or(const Json& object, const char* key, double fallback) {
  return object.contains(key) ? object.at(key).as_number() : fallback;
}

ArrivalPattern arrival_pattern_from_string(const std::string& name) {
  if (name == "immediate") return ArrivalPattern::kImmediate;
  if (name == "uniform") return ArrivalPattern::kUniform;
  if (name == "rush-hour") return ArrivalPattern::kRushHour;
  throw std::runtime_error("scenario config: unknown arrival pattern \"" + name + "\"");
}

CohortMode cohort_mode_from_string(const std::string& name) {
  if (name == "persistent") return CohortMode::kPersistent;
  if (name == "sybil") return CohortMode::kSybil;
  if (name == "adaptive") return CohortMode::kAdaptive;
  throw std::runtime_error("scenario config: unknown cohort mode \"" + name + "\"");
}

ArrivalConfig arrival_from_json(const Json& doc) {
  reject_unknown_keys(doc, "arrival", {"pattern", "peak_time_s", "sigma_s"});
  ArrivalConfig arrival;
  if (doc.contains("pattern")) {
    arrival.pattern = arrival_pattern_from_string(doc.at("pattern").as_string());
  }
  arrival.peak_time_s = number_or(doc, "peak_time_s", arrival.peak_time_s);
  arrival.sigma_s = number_or(doc, "sigma_s", arrival.sigma_s);
  return arrival;
}

GpsDegradedZone zone_from_json(const Json& doc) {
  reject_unknown_keys(doc, "gps_degraded[]",
                      {"x_min", "x_max", "y_min", "y_max", "pos_sigma_scale", "dropout_p"});
  GpsDegradedZone zone;
  zone.x_min = number_or(doc, "x_min", zone.x_min);
  zone.x_max = number_or(doc, "x_max", zone.x_max);
  zone.y_min = number_or(doc, "y_min", zone.y_min);
  zone.y_max = number_or(doc, "y_max", zone.y_max);
  zone.pos_sigma_scale = number_or(doc, "pos_sigma_scale", zone.pos_sigma_scale);
  zone.dropout_p = number_or(doc, "dropout_p", zone.dropout_p);
  return zone;
}

AttackerCohort cohort_from_json(const Json& doc) {
  reject_unknown_keys(doc, "attackers[]",
                      {"attack", "count", "mode", "start_time_s", "probe_period_s",
                       "backoff", "recover"});
  AttackerCohort cohort;
  if (doc.contains("attack")) cohort.attack = doc.at("attack").as_string();
  cohort.count = static_cast<int>(number_or(doc, "count", cohort.count));
  if (doc.contains("mode")) cohort.mode = cohort_mode_from_string(doc.at("mode").as_string());
  cohort.start_time_s = number_or(doc, "start_time_s", cohort.start_time_s);
  cohort.probe_period_s = number_or(doc, "probe_period_s", cohort.probe_period_s);
  cohort.backoff = number_or(doc, "backoff", cohort.backoff);
  cohort.recover = number_or(doc, "recover", cohort.recover);
  // Fail at load time, not mid-compile: the name must be in the matrix
  // (Sybil cohorts fabricate whole trajectories and ignore it).
  if (cohort.mode != CohortMode::kSybil) (void)vasp::attack_by_name(cohort.attack);
  return cohort;
}

sim::RoadNetworkConfig map_from_json(const Json& doc) {
  reject_unknown_keys(doc, "map", {"grid_cols", "grid_rows", "block_length_m"});
  sim::RoadNetworkConfig map;
  map.grid_cols = static_cast<int>(number_or(doc, "grid_cols", map.grid_cols));
  map.grid_rows = static_cast<int>(number_or(doc, "grid_rows", map.grid_rows));
  map.block_length_m = number_or(doc, "block_length_m", map.block_length_m);
  return map;
}

}  // namespace

ScenarioConfig scenario_from_json(const Json& doc) {
  reject_unknown_keys(doc, "scenario",
                      {"name", "seed", "duration_s", "dt_s", "platoons",
                       "vehicles_per_platoon", "map", "arrival", "gps_degraded",
                       "attackers"});
  ScenarioConfig config;
  if (doc.contains("name")) config.name = doc.at("name").as_string();
  config.seed = static_cast<std::uint64_t>(number_or(doc, "seed", 1.0));
  config.duration_s = number_or(doc, "duration_s", config.duration_s);
  config.dt_s = number_or(doc, "dt_s", config.dt_s);
  config.num_platoons = static_cast<int>(number_or(doc, "platoons", config.num_platoons));
  config.vehicles_per_platoon =
      static_cast<int>(number_or(doc, "vehicles_per_platoon", config.vehicles_per_platoon));
  if (doc.contains("map")) config.map = map_from_json(doc.at("map"));
  if (doc.contains("arrival")) config.arrival = arrival_from_json(doc.at("arrival"));
  if (doc.contains("gps_degraded")) {
    for (const Json& zone : doc.at("gps_degraded").as_array()) {
      config.gps_zones.push_back(zone_from_json(zone));
    }
  }
  if (doc.contains("attackers")) {
    for (const Json& cohort : doc.at("attackers").as_array()) {
      config.cohorts.push_back(cohort_from_json(cohort));
    }
  }
  return config;
}

data::Json scenario_to_json(const ScenarioConfig& config) {
  Json::Object root;
  root["name"] = Json(config.name);
  root["seed"] = Json(static_cast<double>(config.seed));
  root["duration_s"] = Json(config.duration_s);
  root["dt_s"] = Json(config.dt_s);
  root["platoons"] = Json(config.num_platoons);
  root["vehicles_per_platoon"] = Json(config.vehicles_per_platoon);

  Json::Object map;
  map["grid_cols"] = Json(config.map.grid_cols);
  map["grid_rows"] = Json(config.map.grid_rows);
  map["block_length_m"] = Json(config.map.block_length_m);
  root["map"] = Json(std::move(map));

  Json::Object arrival;
  arrival["pattern"] = Json(to_string(config.arrival.pattern));
  arrival["peak_time_s"] = Json(config.arrival.peak_time_s);
  arrival["sigma_s"] = Json(config.arrival.sigma_s);
  root["arrival"] = Json(std::move(arrival));

  Json::Array zones;
  for (const GpsDegradedZone& zone : config.gps_zones) {
    Json::Object z;
    z["x_min"] = Json(zone.x_min);
    z["x_max"] = Json(zone.x_max);
    z["y_min"] = Json(zone.y_min);
    z["y_max"] = Json(zone.y_max);
    z["pos_sigma_scale"] = Json(zone.pos_sigma_scale);
    z["dropout_p"] = Json(zone.dropout_p);
    zones.push_back(Json(std::move(z)));
  }
  root["gps_degraded"] = Json(std::move(zones));

  Json::Array cohorts;
  for (const AttackerCohort& cohort : config.cohorts) {
    Json::Object c;
    c["attack"] = Json(cohort.attack);
    c["count"] = Json(cohort.count);
    c["mode"] = Json(to_string(cohort.mode));
    c["start_time_s"] = Json(cohort.start_time_s);
    c["probe_period_s"] = Json(cohort.probe_period_s);
    c["backoff"] = Json(cohort.backoff);
    c["recover"] = Json(cohort.recover);
    cohorts.push_back(Json(std::move(c)));
  }
  root["attackers"] = Json(std::move(cohorts));
  return Json(std::move(root));
}

ScenarioConfig scenario_from_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("scenario config: cannot open " + path.string());
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return scenario_from_json(Json::parse(text.str()));
  } catch (const std::exception& error) {
    throw std::runtime_error("scenario config: " + path.string() + ": " + error.what());
  }
}

std::vector<ScenarioConfig> builtin_slate() {
  std::vector<ScenarioConfig> slate;

  {  // Baseline: calm grid cruising with one classic persistent attacker.
    ScenarioConfig c;
    c.name = "grid-cruise";
    c.seed = 11;
    c.cohorts.push_back({.attack = "HighYawRate", .count = 2,
                         .mode = CohortMode::kPersistent, .start_time_s = 5.0});
    slate.push_back(c);
  }
  {  // Rush hour: platoons surge in around the burst peak; load spikes.
    ScenarioConfig c;
    c.name = "rush-hour-burst";
    c.seed = 22;
    c.num_platoons = 10;
    c.arrival = {ArrivalPattern::kRushHour, /*peak_time_s=*/20.0, /*sigma_s=*/8.0};
    c.cohorts.push_back({.attack = "RandomPosition", .count = 3,
                         .mode = CohortMode::kPersistent, .start_time_s = 10.0});
    slate.push_back(c);
  }
  {  // Urban canyon: a corridor of degraded GNSS crossing the grid center.
    ScenarioConfig c;
    c.name = "gps-degraded-corridor";
    c.seed = 33;
    c.gps_zones.push_back({.x_min = 300.0, .x_max = 620.0, .y_min = 0.0, .y_max = 960.0,
                           .pos_sigma_scale = 6.0, .dropout_p = 0.15});
    c.cohorts.push_back({.attack = "ConstantPositionOffset", .count = 2,
                         .mode = CohortMode::kPersistent, .start_time_s = 8.0});
    slate.push_back(c);
  }
  {  // Dense platooning: long tight platoons, staggered uniform arrivals.
    ScenarioConfig c;
    c.name = "platoon-dense";
    c.seed = 44;
    c.num_platoons = 4;
    c.vehicles_per_platoon = 8;
    c.arrival.pattern = ArrivalPattern::kUniform;
    c.cohorts.push_back({.attack = "HighSpeed", .count = 2,
                         .mode = CohortMode::kPersistent, .start_time_s = 12.0});
    slate.push_back(c);
  }
  {  // Sybil collusion: six fresh identities broadcast one coordinated ghost.
    ScenarioConfig c;
    c.name = "sybil-ghost";
    c.seed = 55;
    c.cohorts.push_back({.count = 6, .mode = CohortMode::kSybil, .start_time_s = 10.0});
    slate.push_back(c);
  }
  {  // Adaptive prober: backs its magnitudes off whenever it gets flagged,
     // trying to ride under the detector (and the PR-5 drift monitors).
    ScenarioConfig c;
    c.name = "adaptive-prober";
    c.seed = 66;
    c.cohorts.push_back({.attack = "ConstantSpeedOffset", .count = 2,
                         .mode = CohortMode::kAdaptive, .start_time_s = 5.0,
                         .probe_period_s = 2.0, .backoff = 0.5, .recover = 1.15});
    slate.push_back(c);
  }
  return slate;
}

}  // namespace vehigan::scenario
