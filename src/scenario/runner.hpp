#pragma once

#include <cstdint>
#include <string>

#include "features/scaler.hpp"
#include "scenario/source.hpp"
#include "serve/service.hpp"

namespace vehigan::scenario {

/// How the runner feeds a source through a DetectionService.
struct RunnerOptions {
  serve::ServiceConfig service;
  /// Settle the pipeline (DetectionService::drain) every N ticks so latency
  /// accumulates in realistic bursts instead of one giant backlog. 0 = only
  /// the final drain. Sources that want_feedback() are drained before every
  /// tick regardless, so adaptive probes read a quiescent detector (making
  /// the whole run deterministic given the detector).
  std::size_t drain_every_ticks = 0;
};

/// End-to-end result of one scenario run through the serving stack.
struct ScenarioOutcome {
  std::string name;
  std::size_t messages = 0;        ///< messages emitted by the source
  std::size_t senders = 0;         ///< distinct station ids labeled
  std::size_t attackers = 0;       ///< labeled malicious senders
  std::size_t windows_scored = 0;  ///< score-sink observations
  double auroc = 0.5;              ///< window scores vs. sender ground truth (exact, post-run)
  /// Streaming estimates from telemetry::QualityMonitor, computed online
  /// during the run (no retained score stream). online_auroc tracks `auroc`
  /// to within the monitor's binning error (pinned <= 0.02 by tests).
  double online_auroc = 0.5;
  double online_precision = 0.0;  ///< TP / flagged at the deployed threshold
  double online_recall = 0.0;     ///< TP / labeled-positive windows
  double p99_drain_ms = 0.0;       ///< p99 shard drain latency during this run
  double drop_rate = 0.0;          ///< dropped / enqueued
  std::uint64_t reports = 0;
  std::uint64_t evictions = 0;
  std::uint64_t drift_alarms = 0;
  double wall_seconds = 0.0;
  double msgs_per_sec = 0.0;
};

/// Feeds the source tick by tick through a DetectionService built from
/// `options.service` + the given detector factory/scaler, joins the score
/// stream with the source's ground-truth labels, and reports per-scenario
/// AUROC / latency / drop-rate / drift-alarm counts. The AUROC tap is the
/// DetectionService score sink, so "positive" scores are windows of labeled
/// attackers as actually scored by the sharded pipeline — dropped messages
/// simply contribute no windows.
[[nodiscard]] ScenarioOutcome run_scenario(
    ScenarioSource& source, const std::string& name, const RunnerOptions& options,
    const serve::DetectionService::DetectorFactory& factory,
    const features::MinMaxScaler& scaler);

}  // namespace vehigan::scenario
