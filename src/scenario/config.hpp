#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "data/json.hpp"
#include "sim/road_network.hpp"
#include "vasp/injector.hpp"

namespace vehigan::scenario {

/// When the platoons of a scenario enter the network. The simulator runs
/// every platoon from t=0; the engine time-shifts whole platoons afterwards,
/// which preserves the IDM interactions *within* each platoon exactly
/// (platoons are mutually independent by construction).
enum class ArrivalPattern {
  kImmediate,  ///< everyone on the road at t=0
  kUniform,    ///< arrivals spread uniformly over the first half of the run
  kRushHour,   ///< Gaussian arrival burst around peak_time_s
};

[[nodiscard]] constexpr const char* to_string(ArrivalPattern pattern) {
  switch (pattern) {
    case ArrivalPattern::kImmediate: return "immediate";
    case ArrivalPattern::kUniform: return "uniform";
    case ArrivalPattern::kRushHour: return "rush-hour";
  }
  return "?";
}

struct ArrivalConfig {
  ArrivalPattern pattern = ArrivalPattern::kImmediate;
  double peak_time_s = 0.0;  ///< rush-hour burst center [s]
  double sigma_s = 30.0;     ///< rush-hour burst width [s]
};

/// An axis-aligned region of degraded GNSS reception (urban canyon, tunnel
/// approach). Honest messages sent from inside a zone either drop out
/// entirely or carry inflated position noise — the benign failure mode a
/// robust detector must not confuse with misbehavior.
struct GpsDegradedZone {
  double x_min = 0.0, x_max = 0.0;
  double y_min = 0.0, y_max = 0.0;
  double pos_sigma_scale = 4.0;  ///< multiplier on the base position sigma
  double dropout_p = 0.0;        ///< per-message loss probability inside
};

enum class CohortMode {
  kPersistent,  ///< classic VASP attacker: every transmitted message mutated
  kSybil,       ///< coordinated ghost-vehicle collusion under fresh identities
  kAdaptive,    ///< probes detector verdicts and backs off to stay undetected
};

[[nodiscard]] constexpr const char* to_string(CohortMode mode) {
  switch (mode) {
    case CohortMode::kPersistent: return "persistent";
    case CohortMode::kSybil: return "sybil";
    case CohortMode::kAdaptive: return "adaptive";
  }
  return "?";
}

/// The attackerType label used for Sybil ghosts. The paper's matrix covers
/// single-transmitter attacks 1-35; coordinated ghost collusion is this
/// repo's extension, labeled one past the matrix.
inline constexpr int kSybilAttackerType = 36;

/// A group of attackers sharing one strategy.
struct AttackerCohort {
  std::string attack = "HighYawRate";  ///< attack_matrix name; unused by kSybil
  int count = 1;                       ///< attackers (or ghost identities for kSybil)
  CohortMode mode = CohortMode::kPersistent;
  double start_time_s = 0.0;           ///< attack onset [s]

  // kAdaptive: every probe_period_s of stream time the attacker checks
  // whether the detector flagged it since the last probe. Flagged -> the
  // attack magnitude scale is multiplied by `backoff`; clean -> it creeps
  // back up by `recover` (capped at 1). scale=1 is the full attack, scale=0
  // is honest behavior.
  double probe_period_s = 2.0;
  double backoff = 0.5;
  double recover = 1.15;
};

/// A complete declarative scenario: compiled by ScenarioEngine into a
/// deterministic labeled BSM stream (see DESIGN.md Sec. 9 for the schema).
/// Everything stochastic derives from `seed` — same config + same seed is
/// byte-identical, across runs and processes.
struct ScenarioConfig {
  std::string name = "scenario";
  std::uint64_t seed = 1;
  double duration_s = 60.0;
  double dt_s = 0.1;
  int num_platoons = 6;
  int vehicles_per_platoon = 4;
  sim::RoadNetworkConfig map;
  ArrivalConfig arrival;
  std::vector<GpsDegradedZone> gps_zones;
  std::vector<AttackerCohort> cohorts;
  vasp::AttackParams attack_params;  ///< magnitudes shared by every cohort
};

/// JSON (de)serialization of the declarative schema. Unknown keys are
/// rejected loudly (a typoed knob silently reverting to its default would
/// invalidate a benchmark); missing keys take their defaults.
[[nodiscard]] ScenarioConfig scenario_from_json(const data::Json& doc);
[[nodiscard]] data::Json scenario_to_json(const ScenarioConfig& config);
[[nodiscard]] ScenarioConfig scenario_from_file(const std::filesystem::path& path);

/// The built-in synthetic slate used by bench_ext_scenarios and the smoke
/// tests: six scenarios spanning calm cruising, rush-hour load, degraded
/// GNSS, dense platooning, Sybil collusion, and an adaptive prober.
[[nodiscard]] std::vector<ScenarioConfig> builtin_slate();

}  // namespace vehigan::scenario
