#include "scenario/runner.hpp"

#include <array>
#include <chrono>
#include <set>
#include <unordered_map>
#include <vector>

#include "metrics/roc.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/quality.hpp"

namespace vehigan::scenario {

namespace {

using Buckets = std::array<std::uint64_t, telemetry::Histogram::kBuckets>;

Buckets capture(const telemetry::Histogram& histogram) {
  Buckets buckets{};
  for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] = histogram.bucket_count(i);
  return buckets;
}

/// p99 in ms of the observations recorded between two captures: the upper
/// bound of the bucket holding the ceil-99% rank (lower bound for the
/// unbounded overflow bucket). Histograms are process-global, so the delta
/// isolates this run from whatever ran before it in the same process.
double p99_ms(const Buckets& before, const Buckets& after) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < before.size(); ++i) total += after[i] - before[i];
  if (total == 0) return 0.0;
  const std::uint64_t rank = (total * 99 + 99) / 100;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    cumulative += after[i] - before[i];
    if (cumulative >= rank) {
      if (i >= telemetry::Histogram::kFiniteBuckets) {
        return telemetry::Histogram::bucket_lower_bound(i) * 1000.0;
      }
      return telemetry::Histogram::bucket_upper_bound(i) * 1000.0;
    }
  }
  return 0.0;
}

/// Per-shard score log. Each shard's sink calls arrive only from that
/// shard's worker thread, so per-shard vectors need no locking; they are
/// merged after the service has stopped.
struct ShardScores {
  std::vector<std::pair<std::uint32_t, float>> scores;  ///< (sender, window score)
  std::unordered_map<std::uint32_t, std::uint64_t> flag_counts;
};

}  // namespace

ScenarioOutcome run_scenario(ScenarioSource& source, const std::string& name,
                             const RunnerOptions& options,
                             const serve::DetectionService::DetectorFactory& factory,
                             const features::MinMaxScaler& scaler) {
  ScenarioOutcome outcome;
  outcome.name = name;

  std::vector<ShardScores> shard_scores(options.service.num_shards);
  // Online quality tap: label each window as it is scored (the label map is
  // complete before the first tick — ScenarioSource contract) and fold it
  // into the streaming monitor. Lock-free after warmup, so concurrent shard
  // sinks are fine.
  telemetry::QualityMonitor quality;
  std::unordered_map<std::uint32_t, bool> malicious;
  for (const auto& [sender, type] : source.attacker_type()) {
    malicious.emplace(sender, type != 0);
  }
  serve::DetectionService service(
      options.service, factory, scaler,
      [&shard_scores, &quality, &malicious](std::size_t shard, const sim::Bsm& message,
                                            const mbds::DetectionResult& result) {
        ShardScores& log = shard_scores[shard];
        log.scores.emplace_back(message.vehicle_id, result.score);
        if (result.flagged) ++log.flag_counts[message.vehicle_id];
        const auto it = malicious.find(message.vehicle_id);
        quality.observe(result.score, it != malicious.end() && it->second,
                        result.flagged);
      });

  // Adaptive sources probe cumulative per-station flag counts. The runner
  // drains before every tick in that mode, so the shard workers are idle
  // whenever this closure reads their logs.
  const bool feedback_mode = source.wants_feedback();
  if (feedback_mode) {
    source.set_feedback([&shard_scores, &service](std::uint32_t station) {
      const ShardScores& log = shard_scores[service.shard_of(station)];
      const auto it = log.flag_counts.find(station);
      return it == log.flag_counts.end() ? std::uint64_t{0} : it->second;
    });
  }

  auto& drain_hist =
      telemetry::MetricsRegistry::global().histogram("vehigan_serve_drain_seconds");
  const Buckets before = capture(drain_hist);

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<sim::Bsm> tick;
  std::size_t tick_index = 0;
  while (source.next(tick)) {
    if (feedback_mode) service.drain();
    outcome.messages += tick.size();
    (void)service.submit_batch(tick);
    ++tick_index;
    if (options.drain_every_ticks != 0 && tick_index % options.drain_every_ticks == 0) {
      service.drain();
    }
  }
  service.drain();
  outcome.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  service.stop();

  const serve::ServiceStats stats = service.stats();
  outcome.p99_drain_ms = p99_ms(before, capture(drain_hist));
  outcome.drop_rate = stats.total.enqueued == 0
                          ? 0.0
                          : static_cast<double>(stats.total.dropped) /
                                static_cast<double>(stats.total.enqueued);
  outcome.reports = stats.total.reports;
  outcome.evictions = stats.total.evictions;
  outcome.drift_alarms = stats.total.drift_alarms;
  outcome.msgs_per_sec = outcome.wall_seconds > 0.0
                             ? static_cast<double>(outcome.messages) / outcome.wall_seconds
                             : 0.0;

  // Join scores with ground truth: a window is positive iff its sender is a
  // labeled attacker. auroc() returns 0.5 when either class is empty (a
  // benign-only scenario is a calibration run, not a failure).
  const std::map<std::uint32_t, int>& labels = source.attacker_type();
  outcome.senders = labels.size();
  for (const auto& [sender, type] : labels) {
    if (type != 0) ++outcome.attackers;
  }
  std::vector<float> negatives;
  std::vector<float> positives;
  for (const ShardScores& log : shard_scores) {
    outcome.windows_scored += log.scores.size();
    for (const auto& [sender, score] : log.scores) {
      const auto it = labels.find(sender);
      const bool malicious = it != labels.end() && it->second != 0;
      (malicious ? positives : negatives).push_back(score);
    }
  }
  outcome.auroc = metrics::auroc(negatives, positives);

  quality.publish_metrics();  // vehigan_quality_* gauges reflect this run
  const telemetry::QualityMonitor::Snapshot online = quality.snapshot();
  outcome.online_auroc = online.auroc;
  outcome.online_precision = online.precision;
  outcome.online_recall = online.recall;
  return outcome;
}

}  // namespace vehigan::scenario
