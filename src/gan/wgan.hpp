#pragma once

#include <vector>

#include "features/windows.hpp"
#include "gan/architecture.hpp"
#include "nn/optimizer.hpp"

namespace vehigan::gan {

/// How the critic's Lipschitz constraint is enforced.
enum class Regularization {
  kWeightClipping,   ///< original WGAN [Arjovsky'17]; default here
  kGradientPenalty,  ///< WGAN-GP [Gulrajani'17]; d(GP)/d(theta) computed via
                     ///< a finite-difference directional double-backprop
};

/// Generator upsampling style (architecture ablation).
enum class GeneratorArch {
  kUpsampleConv,    ///< nearest-neighbor UpSample2D + Conv2D (default)
  kTransposedConv,  ///< learned Conv2DTranspose (DCGAN style)
};

/// Training hyper-parameters (paper Sec. IV-A1, scaled batch size).
struct TrainOptions {
  std::size_t batch_size = 64;
  GeneratorArch generator_arch = GeneratorArch::kUpsampleConv;
  float lr = 1e-3F;              ///< paper Sec. IV-A1
  int n_critic = 5;              ///< critic updates per generator update
  Regularization reg = Regularization::kWeightClipping;
  float clip_value = 0.03F;      ///< weight-clipping bound c
  float gp_lambda = 10.0F;       ///< gradient-penalty coefficient
  float gp_fd_step = 1e-3F;      ///< finite-difference step for d(GP)/d(theta)
  std::uint64_t seed = 1234;
};

/// Per-epoch training statistics.
struct EpochStats {
  double critic_loss = 0.0;      ///< E[D(fake)] - E[D(real)] (minimized)
  double wasserstein_est = 0.0;  ///< E[D(real)] - E[D(fake)]
  double generator_loss = 0.0;   ///< -E[D(fake)]
};

/// A trained WGAN instance: the config it was built from, both networks,
/// and the training history.
struct TrainedWgan {
  WganConfig config;
  nn::Sequential generator;
  nn::Sequential discriminator;
  std::vector<EpochStats> history;
  /// FNV-1a 64 of the model's serialized payload (config + history + both
  /// networks) — identical to the v2 checkpoint checksum, so a loaded model
  /// carries the exact hash stored in its file. 0 = not yet computed (e.g.
  /// fresh from the trainer); gan::content_hash() / WganDetector fill it in.
  std::uint64_t content_hash = 0;
};

/// Trains one WGAN on benign window snapshots.
///
/// Standard WGAN loop: for each minibatch the critic is updated to widen
/// E[D(real)] - E[D(fake)]; after every n_critic critic updates the
/// generator takes one step to fool the critic. Lipschitz-ness via weight
/// clipping or gradient penalty per TrainOptions. All randomness (init,
/// shuffling, noise) derives from opts.seed + config.id, so grid members
/// are reproducible and mutually independent.
class WganTrainer {
 public:
  explicit WganTrainer(TrainOptions opts) : opts_(opts) {}

  [[nodiscard]] TrainedWgan train(const WganConfig& config,
                                  const features::WindowSet& benign_windows) const;

  /// Draws `count` generated snapshots from a trained generator.
  static features::WindowSet sample(TrainedWgan& model, std::size_t count, util::Rng& rng);

 private:
  TrainOptions opts_;
};

}  // namespace vehigan::gan
