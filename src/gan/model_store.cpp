#include "gan/model_store.hpp"

#include <fstream>

#include "nn/io.hpp"

namespace vehigan::gan {

namespace io = nn::io;

void save_wgan(const TrainedWgan& model, const std::filesystem::path& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_wgan: cannot open " + path.string());
  io::write_string(out, "vehigan-wgan-v1");
  io::write_u64(out, static_cast<std::uint64_t>(model.config.id));
  io::write_u64(out, model.config.z_dim);
  io::write_u64(out, static_cast<std::uint64_t>(model.config.layers));
  io::write_u64(out, static_cast<std::uint64_t>(model.config.paper_epochs));
  io::write_u64(out, static_cast<std::uint64_t>(model.config.train_epochs));
  io::write_u64(out, model.config.window);
  io::write_u64(out, model.config.width);
  io::write_u64(out, model.history.size());
  for (const auto& epoch : model.history) {
    io::write_f32(out, static_cast<float>(epoch.critic_loss));
    io::write_f32(out, static_cast<float>(epoch.wasserstein_est));
    io::write_f32(out, static_cast<float>(epoch.generator_loss));
  }
  model.generator.save(out);
  model.discriminator.save(out);
  if (!out) throw std::runtime_error("save_wgan: write failed for " + path.string());
}

TrainedWgan load_wgan(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_wgan: cannot open " + path.string());
  const std::string magic = io::read_string(in);
  if (magic != "vehigan-wgan-v1") {
    throw std::runtime_error("load_wgan: bad magic in " + path.string());
  }
  TrainedWgan model;
  model.config.id = static_cast<int>(io::read_u64(in));
  model.config.z_dim = io::read_u64(in);
  model.config.layers = static_cast<int>(io::read_u64(in));
  model.config.paper_epochs = static_cast<int>(io::read_u64(in));
  model.config.train_epochs = static_cast<int>(io::read_u64(in));
  model.config.window = io::read_u64(in);
  model.config.width = io::read_u64(in);
  const std::uint64_t epochs = io::read_u64(in);
  model.history.resize(epochs);
  for (auto& epoch : model.history) {
    epoch.critic_loss = io::read_f32(in);
    epoch.wasserstein_est = io::read_f32(in);
    epoch.generator_loss = io::read_f32(in);
  }
  model.generator = nn::Sequential::load(in);
  model.discriminator = nn::Sequential::load(in);
  return model;
}

}  // namespace vehigan::gan
