#include "gan/model_store.hpp"

#include <fstream>
#include <sstream>
#include <system_error>

#include "nn/io.hpp"
#include "telemetry/trace.hpp"
#include "util/hash.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define VEHIGAN_HAVE_FSYNC 1
#endif

namespace vehigan::gan {

namespace io = nn::io;
namespace fs = std::filesystem;

namespace {

constexpr const char kMagicV2[] = "vehigan-wgan-v2";
constexpr const char kMagicV1[] = "vehigan-wgan-v1";

/// Upper bound on the persisted epoch count: train_epochs tops out at tens,
/// so anything beyond this is a corrupt length field, not a real history.
constexpr std::uint64_t kMaxEpochs = 1ULL << 20;

void check_write(std::ostream& out, const char* section, const fs::path& path) {
  if (!out) {
    throw std::runtime_error(std::string("save_wgan: write failed (") + section + ") for " +
                             path.string());
  }
}

/// Flushes file-system caches so the bytes behind `path` survive a crash
/// that happens after the subsequent rename.
void sync_file(const fs::path& path) {
#ifdef VEHIGAN_HAVE_FSYNC
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

std::string serialize_metadata(const TrainedWgan& model) {
  std::ostringstream os(std::ios::binary);
  io::write_u64(os, static_cast<std::uint64_t>(model.config.id));
  io::write_u64(os, model.config.z_dim);
  io::write_u64(os, static_cast<std::uint64_t>(model.config.layers));
  io::write_u64(os, static_cast<std::uint64_t>(model.config.paper_epochs));
  io::write_u64(os, static_cast<std::uint64_t>(model.config.train_epochs));
  io::write_u64(os, model.config.window);
  io::write_u64(os, model.config.width);
  io::write_u64(os, model.history.size());
  // f64 on purpose: EpochStats holds doubles, and the v1 format's narrowing
  // to f32 made critic_loss/wasserstein_est round-trip lossily.
  for (const auto& epoch : model.history) {
    io::write_f64(os, epoch.critic_loss);
    io::write_f64(os, epoch.wasserstein_est);
    io::write_f64(os, epoch.generator_loss);
  }
  return std::move(os).str();
}

std::string serialize_network(const nn::Sequential& net) {
  std::ostringstream os(std::ios::binary);
  net.save(os);
  return std::move(os).str();
}

void parse_metadata(std::istream& in, TrainedWgan& model) {
  model.config.id = static_cast<int>(io::read_u64(in));
  model.config.z_dim = io::read_u64(in);
  model.config.layers = static_cast<int>(io::read_u64(in));
  model.config.paper_epochs = static_cast<int>(io::read_u64(in));
  model.config.train_epochs = static_cast<int>(io::read_u64(in));
  model.config.window = io::read_u64(in);
  model.config.width = io::read_u64(in);
  const std::uint64_t epochs = io::read_u64(in);
  if (epochs > kMaxEpochs) throw std::runtime_error("implausible history length");
  model.history.resize(epochs);
  for (auto& epoch : model.history) {
    epoch.critic_loss = io::read_f64(in);
    epoch.wasserstein_est = io::read_f64(in);
    epoch.generator_loss = io::read_f64(in);
  }
}

/// Legacy v1 body (everything after the magic): no length/checksum framing,
/// f32 history. Kept so caches written before the v2 format stay readable.
TrainedWgan load_v1_body(std::istream& in) {
  TrainedWgan model;
  model.config.id = static_cast<int>(io::read_u64(in));
  model.config.z_dim = io::read_u64(in);
  model.config.layers = static_cast<int>(io::read_u64(in));
  model.config.paper_epochs = static_cast<int>(io::read_u64(in));
  model.config.train_epochs = static_cast<int>(io::read_u64(in));
  model.config.window = io::read_u64(in);
  model.config.width = io::read_u64(in);
  const std::uint64_t epochs = io::read_u64(in);
  if (epochs > kMaxEpochs) throw std::runtime_error("implausible history length");
  model.history.resize(epochs);
  for (auto& epoch : model.history) {
    epoch.critic_loss = io::read_f32(in);
    epoch.wasserstein_est = io::read_f32(in);
    epoch.generator_loss = io::read_f32(in);
  }
  model.generator = nn::Sequential::load(in);
  model.discriminator = nn::Sequential::load(in);
  return model;
}

[[noreturn]] void corrupt(const fs::path& path, const std::string& why) {
  throw CorruptCheckpoint("load_wgan: corrupt checkpoint " + path.string() + ": " + why);
}

}  // namespace

void save_wgan(const TrainedWgan& model, const fs::path& path) {
  telemetry::Tracer tracer;
  auto span = tracer.span("vehigan_store_save_seconds");
  tracer.registry().counter("vehigan_store_saves_total").add(1);
  // Serialize the payload sections up front so (a) the checksum covers the
  // exact bytes that land on disk and (b) serialization errors surface
  // before any file exists.
  const std::string metadata = serialize_metadata(model);
  const std::string generator = serialize_network(model.generator);
  const std::string discriminator = serialize_network(model.discriminator);
  const std::uint64_t payload_size = metadata.size() + generator.size() + discriminator.size();
  util::Fnv1a checksum;
  checksum.add(metadata).add(generator).add(discriminator);

  // Atomic publish: all writes go to a sibling tmp file; only a fully
  // written, flushed, checksummed file is renamed to the final path, so a
  // crash (even kill -9) at any point never leaves a torn file at `path`.
  fs::path tmp = path;
  tmp += ".tmp";
  try {
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) throw std::runtime_error("save_wgan: cannot open " + tmp.string());
      io::write_string(out, kMagicV2);
      io::write_u64(out, payload_size);
      check_write(out, "header", path);
      out.write(metadata.data(), static_cast<std::streamsize>(metadata.size()));
      check_write(out, "metadata/history", path);
      out.write(generator.data(), static_cast<std::streamsize>(generator.size()));
      check_write(out, "generator", path);
      out.write(discriminator.data(), static_cast<std::streamsize>(discriminator.size()));
      check_write(out, "discriminator", path);
      io::write_u64(out, checksum.value());
      out.flush();
      check_write(out, "checksum footer", path);
    }
    sync_file(tmp);
    fs::rename(tmp, path);
  } catch (...) {
    // Never leave partial state behind: the destination was not touched,
    // and the tmp file is removed on its way out.
    std::error_code ec;
    fs::remove(tmp, ec);
    throw;
  }
}

TrainedWgan load_wgan(const fs::path& path) {
  telemetry::Tracer tracer;
  auto span = tracer.span("vehigan_store_load_seconds");
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_wgan: cannot open " + path.string());

  std::string magic;
  try {
    magic = io::read_string(in);
  } catch (const std::exception& e) {
    corrupt(path, e.what());
  }

  if (magic == kMagicV1) {
    try {
      TrainedWgan model = load_v1_body(in);
      // v1 files carry no checksum; re-serialize so a legacy load still
      // reports the same provenance hash its v2 re-save would store.
      model.content_hash = content_hash(model);
      return model;
    } catch (const CorruptCheckpoint&) {
      throw;
    } catch (const std::exception& e) {
      corrupt(path, std::string("v1 body: ") + e.what());
    }
  }
  if (magic != kMagicV2) corrupt(path, "bad magic");

  // v2: the file must be exactly header + payload + footer. Checking the
  // declared payload length against the real file size first means a
  // corrupt length field fails cleanly here instead of driving a huge
  // allocation or a short read.
  std::uint64_t payload_size = 0;
  try {
    payload_size = io::read_u64(in);
  } catch (const std::exception& e) {
    corrupt(path, e.what());
  }
  const std::uint64_t header_size = sizeof(std::uint64_t) + magic.size() + sizeof(std::uint64_t);
  const std::uint64_t footer_size = sizeof(std::uint64_t);
  std::error_code ec;
  const std::uint64_t file_size = fs::file_size(path, ec);
  if (ec) corrupt(path, "cannot stat file: " + ec.message());
  if (payload_size > file_size || header_size + payload_size + footer_size != file_size) {
    corrupt(path, "payload length does not match file size (truncated or trailing bytes)");
  }

  std::string payload(payload_size, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!in) corrupt(path, "truncated payload");
  std::uint64_t stored_checksum = 0;
  try {
    stored_checksum = io::read_u64(in);
  } catch (const std::exception& e) {
    corrupt(path, e.what());
  }
  const std::uint64_t actual_checksum = util::Fnv1a().add(payload).value();
  if (actual_checksum != stored_checksum) {
    corrupt(path, "checksum mismatch (stored " + std::to_string(stored_checksum) + ", computed " +
                      std::to_string(actual_checksum) + ")");
  }

  // The payload is now proven to be the saved bytes; parse failures past
  // this point still map to CorruptCheckpoint (writer/format bugs), never
  // to a silent wrong-weights load.
  std::istringstream ps(payload, std::ios::binary);
  TrainedWgan model;
  try {
    parse_metadata(ps, model);
    model.generator = nn::Sequential::load(ps);
    model.discriminator = nn::Sequential::load(ps);
  } catch (const std::exception& e) {
    corrupt(path, std::string("payload parse: ") + e.what());
  }
  if (ps.peek() != std::istringstream::traits_type::eof()) {
    corrupt(path, "payload has trailing bytes");
  }
  // The stored checksum just proved itself against the payload bytes, so it
  // IS the content hash — no re-serialization needed on the load path.
  model.content_hash = stored_checksum;
  return model;
}

std::uint64_t content_hash(const TrainedWgan& model) {
  util::Fnv1a checksum;
  checksum.add(serialize_metadata(model))
      .add(serialize_network(model.generator))
      .add(serialize_network(model.discriminator));
  return checksum.value();
}

}  // namespace vehigan::gan
