#include "gan/architecture.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/layers.hpp"

namespace vehigan::gan {

std::string WganConfig::name() const {
  return "wgan_z" + std::to_string(z_dim) + "_l" + std::to_string(layers) + "_e" +
         std::to_string(paper_epochs);
}

std::vector<WganConfig> default_grid(const GridScale& scale, std::size_t window,
                                     std::size_t width) {
  const std::size_t z_dims[] = {8, 16, 32, 48, 64};
  const int layer_counts[] = {6, 7, 8};
  const int epoch_tiers[] = {25, 50, 75, 100};
  std::vector<WganConfig> grid;
  grid.reserve(60);
  int id = 0;
  for (std::size_t z : z_dims) {
    for (int layers : layer_counts) {
      for (int epochs : epoch_tiers) {
        WganConfig cfg;
        cfg.id = id++;
        cfg.z_dim = z;
        cfg.layers = layers;
        cfg.paper_epochs = epochs;
        cfg.train_epochs = std::max(
            1, static_cast<int>(std::lround(static_cast<double>(epochs) * scale.epoch_scale)));
        cfg.window = window;
        cfg.width = width;
        grid.push_back(cfg);
      }
    }
  }
  return grid;
}

nn::Sequential build_generator(const WganConfig& config, util::Rng& rng) {
  if (config.layers < 6 || config.layers > 8) {
    throw std::invalid_argument("build_generator: layers must be in {6,7,8}");
  }
  const std::size_t half_h = (config.window + 1) / 2;
  const std::size_t half_w = (config.width + 1) / 2;
  constexpr std::size_t kBaseChannels = 16;

  nn::Sequential g;
  auto& stem = g.add<nn::Dense>(config.z_dim, kBaseChannels * half_h * half_w);
  stem.init_weights(rng);
  g.add<nn::LeakyReLU>(0.2F);
  g.add<nn::Reshape>(std::vector<std::size_t>{kBaseChannels, half_h, half_w});

  // Depth knob: extra same-resolution conv blocks before up-sampling.
  const int extra_blocks = config.layers - 6;
  for (int i = 0; i < extra_blocks; ++i) {
    auto& conv = g.add<nn::Conv2D>(kBaseChannels, kBaseChannels, 2, 2, 1);
    conv.init_weights(rng);
    g.add<nn::LeakyReLU>(0.2F);
  }

  g.add<nn::UpSample2D>(2);
  auto& refine = g.add<nn::Conv2D>(kBaseChannels, kBaseChannels / 2, 2, 2, 1);
  refine.init_weights(rng);
  g.add<nn::LeakyReLU>(0.2F);
  auto& head = g.add<nn::Conv2D>(kBaseChannels / 2, 1, 2, 2, 1);
  head.init_weights(rng);
  g.add<nn::Sigmoid>();
  return g;
}

nn::Sequential build_generator_deconv(const WganConfig& config, util::Rng& rng) {
  if (config.layers < 6 || config.layers > 8) {
    throw std::invalid_argument("build_generator_deconv: layers must be in {6,7,8}");
  }
  const std::size_t half_h = (config.window + 1) / 2;
  const std::size_t half_w = (config.width + 1) / 2;
  constexpr std::size_t kBaseChannels = 16;

  nn::Sequential g;
  auto& stem = g.add<nn::Dense>(config.z_dim, kBaseChannels * half_h * half_w);
  stem.init_weights(rng);
  g.add<nn::LeakyReLU>(0.2F);
  g.add<nn::Reshape>(std::vector<std::size_t>{kBaseChannels, half_h, half_w});
  const int extra_blocks = config.layers - 6;
  for (int i = 0; i < extra_blocks; ++i) {
    auto& conv = g.add<nn::Conv2D>(kBaseChannels, kBaseChannels, 2, 2, 1);
    conv.init_weights(rng);
    g.add<nn::LeakyReLU>(0.2F);
  }
  // Learned 2x upsampling replaces UpSample2D + refine conv.
  auto& deconv = g.add<nn::Conv2DTranspose>(kBaseChannels, kBaseChannels / 2, 2, 2, 2);
  deconv.init_weights(rng);
  g.add<nn::LeakyReLU>(0.2F);
  auto& head = g.add<nn::Conv2D>(kBaseChannels / 2, 1, 2, 2, 1);
  head.init_weights(rng);
  g.add<nn::Sigmoid>();
  return g;
}

nn::Sequential build_discriminator(const WganConfig& config, util::Rng& rng) {
  if (config.layers < 6 || config.layers > 8) {
    throw std::invalid_argument("build_discriminator: layers must be in {6,7,8}");
  }
  const int conv_blocks = config.layers - 4;  // {2, 3, 4}
  nn::Sequential d;
  std::size_t channels = 1;
  std::size_t h = config.window;
  std::size_t w = config.width;
  for (int i = 0; i < conv_blocks; ++i) {
    const std::size_t out_ch = std::min<std::size_t>(8UL << i, 16);
    const std::size_t stride = i < 2 ? 2 : 1;  // downsample twice, then keep
    auto& conv = d.add<nn::Conv2D>(channels, out_ch, 2, 2, stride);
    conv.init_weights(rng);
    d.add<nn::LeakyReLU>(0.2F);
    const auto [oh, ow] = conv.output_hw(h, w);
    h = oh;
    w = ow;
    channels = out_ch;
  }
  d.add<nn::Flatten>();
  auto& hidden = d.add<nn::Dense>(channels * h * w, 32);
  hidden.init_weights(rng);
  d.add<nn::LeakyReLU>(0.2F);
  auto& head = d.add<nn::Dense>(32, 1);
  head.init_weights(rng);
  return d;
}

}  // namespace vehigan::gan
