#pragma once

#include <filesystem>

#include "gan/wgan.hpp"

namespace vehigan::gan {

/// On-disk persistence of trained WGANs ("model checkpoints and relevant
/// training statistics", Sec. III-D). One file per model holds the config,
/// both networks, and the per-epoch history, so the expensive grid training
/// can be shared across every bench binary via the experiment cache.
void save_wgan(const TrainedWgan& model, const std::filesystem::path& path);

TrainedWgan load_wgan(const std::filesystem::path& path);

}  // namespace vehigan::gan
