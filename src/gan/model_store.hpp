#pragma once

#include <filesystem>
#include <stdexcept>

#include "gan/wgan.hpp"

namespace vehigan::gan {

/// Thrown by load_wgan when a checkpoint file exists but fails validation:
/// bad magic, length/size mismatch, checksum mismatch, truncated or
/// malformed payload. Distinct from plain std::runtime_error (used for a
/// missing/unopenable file) so callers such as Workspace::models() can
/// quarantine the file and retrain instead of aborting.
class CorruptCheckpoint : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// On-disk persistence of trained WGANs ("model checkpoints and relevant
/// training statistics", Sec. III-D). One file per model holds the config,
/// both networks, and the per-epoch history, so the expensive grid training
/// can be shared across every bench binary via the experiment cache.
///
/// v2 on-disk layout (DESIGN.md Sec. 6):
///   magic   "vehigan-wgan-v2" (length-prefixed string)
///   u64     payload length in bytes
///   payload config (7 x u64) | history count + 3 x f64 per epoch |
///           generator | discriminator (nn::Sequential streams)
///   u64     FNV-1a 64 checksum of the payload bytes
///
/// save_wgan is crash-safe: it writes `<path>.tmp`, flushes and fsyncs,
/// then renames over `<path>`, so a killed process never leaves a torn
/// file at the final checkpoint path. The stream is checked after each
/// section so a failed write names what was being written.
void save_wgan(const TrainedWgan& model, const std::filesystem::path& path);

/// Loads and validates a checkpoint. Reads both v2 files and legacy v1
/// files (no checksum, f32 history). Throws std::runtime_error if the file
/// cannot be opened and CorruptCheckpoint if it fails validation; a
/// successful return implies the payload bytes matched the stored checksum
/// (v2), i.e. the loaded weights are provably the saved weights.
TrainedWgan load_wgan(const std::filesystem::path& path);

/// FNV-1a 64 of the model's serialized payload — the exact checksum
/// save_wgan writes into (and load_wgan verifies against) a v2 checkpoint,
/// so hashing an in-memory model and loading its saved file agree. This is
/// the provenance identity threaded through WganDetector/VehiGan into
/// MisbehaviorReport.model_hash and the verdict ledger.
[[nodiscard]] std::uint64_t content_hash(const TrainedWgan& model);

}  // namespace vehigan::gan
