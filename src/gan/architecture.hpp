#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/sequential.hpp"
#include "util/rng.hpp"

namespace vehigan::gan {

/// One point of the WGAN hyper-parameter grid of Sec. IV-A1. The paper's
/// grid is z_dim x depth x training epochs = 5 x 3 x 4 = 60 model instances.
struct WganConfig {
  int id = 0;                  ///< stable grid index [0, 59]
  std::size_t z_dim = 32;      ///< noise-vector dimension d
  int layers = 6;              ///< depth knob in {6, 7, 8}
  int paper_epochs = 25;       ///< the epoch tier as named in the paper
  int train_epochs = 4;        ///< actual epochs run at this repo's scale
  std::size_t window = 10;     ///< w: snapshot time steps
  std::size_t width = 12;      ///< f: features per step

  /// e.g. "wgan_z32_l6_e25" — stable across runs, used as the cache key.
  [[nodiscard]] std::string name() const;
};

/// Scaling knobs applied when instantiating the paper's grid.
struct GridScale {
  /// train_epochs = max(1, round(paper_epochs * epoch_scale)); the default
  /// maps {25, 50, 75, 100} -> {4, 8, 12, 16}, sized for a single CPU core
  /// (the full 60-model grid trains in ~7 minutes at 2000 windows).
  double epoch_scale = 0.16;
};

/// The 60-model grid: z in {8,16,32,48,64} x layers in {6,7,8} x paper
/// epochs in {25,50,75,100}, ids assigned in that nesting order.
std::vector<WganConfig> default_grid(const GridScale& scale = {},
                                     std::size_t window = 10, std::size_t width = 12);

/// Builds the generator G: z in R^d -> snapshot in R^{w x f} (output in
/// [0, 1] via sigmoid since training data is min-max scaled).
///
/// Structure: Dense(z -> C*ceil(w/2)*ceil(f/2)) + LeakyReLU + Reshape +
/// (layers-6 extra conv blocks) + UpSample2D(2) + Conv2D 2x2 + LeakyReLU +
/// Conv2D 2x2 -> 1 channel + Sigmoid. The 2x2 kernels and LeakyReLU follow
/// Sec. IV-A1; if 2*ceil(w/2) exceeds w the final rows/cols are produced by
/// a cropping conv (we keep w, f even-sized by default: 10 x 12).
nn::Sequential build_generator(const WganConfig& config, util::Rng& rng);

/// DCGAN-style generator variant: learned transposed-conv upsampling instead
/// of nearest-neighbor UpSample2D + Conv2D. Same input/output contract as
/// build_generator; provided for the architecture ablation.
nn::Sequential build_generator_deconv(const WganConfig& config, util::Rng& rng);

/// Builds the critic/discriminator D: snapshot [1, w, f] -> scalar score
/// (higher = more real). Structure: (layers-4) Conv2D 2x2 + LeakyReLU blocks
/// (first two strided), Flatten, Dense(32) + LeakyReLU, Dense(1) linear —
/// linear output as required by the Wasserstein objective.
nn::Sequential build_discriminator(const WganConfig& config, util::Rng& rng);

}  // namespace vehigan::gan
