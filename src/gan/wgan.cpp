#include "gan/wgan.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/logging.hpp"

namespace vehigan::gan {

namespace {

/// Grid members train concurrently on the workspace pool, so the loss
/// gauges are last-writer-wins across members — they show *a* live training
/// trajectory; per-member history stays in TrainedWgan::history.
struct TrainTelemetry {
  telemetry::Histogram& epoch_seconds;
  telemetry::Histogram& critic_step_seconds;
  telemetry::Histogram& generator_step_seconds;
  telemetry::Counter& epochs_total;
  telemetry::Gauge& critic_loss;
  telemetry::Gauge& wasserstein_est;
  telemetry::Gauge& generator_loss;
  telemetry::Gauge& epochs_per_second;

  static TrainTelemetry& get() {
    auto& reg = telemetry::MetricsRegistry::global();
    static TrainTelemetry tel{
        reg.histogram("vehigan_train_epoch_seconds"),
        reg.histogram("vehigan_train_critic_step_seconds"),
        reg.histogram("vehigan_train_generator_step_seconds"),
        reg.counter("vehigan_train_epochs_total"),
        reg.gauge("vehigan_train_critic_loss"),
        reg.gauge("vehigan_train_wasserstein_est"),
        reg.gauge("vehigan_train_generator_loss"),
        reg.gauge("vehigan_train_epochs_per_second"),
    };
    return tel;
  }
};

using features::WindowSet;
using nn::Sequential;
using nn::Tensor;

/// Gathers the selected windows into a [B, 1, w, f] batch tensor.
Tensor make_real_batch(const WindowSet& windows, const std::vector<std::size_t>& order,
                       std::size_t start, std::size_t batch) {
  const std::size_t values = windows.values_per_window();
  Tensor out({batch, 1, windows.window, windows.width});
  for (std::size_t b = 0; b < batch; ++b) {
    const auto snap = windows.snapshot(order[start + b]);
    std::copy(snap.begin(), snap.end(), out.data() + b * values);
  }
  return out;
}

Tensor make_noise(std::size_t batch, std::size_t z_dim, util::Rng& rng) {
  Tensor z({batch, z_dim});
  for (std::size_t i = 0; i < z.size(); ++i) z[i] = rng.normal_f();
  return z;
}

void clip_parameters(Sequential& model, float clip) {
  for (auto& param : model.parameters()) {
    for (auto& v : *param.values) v = std::clamp(v, -clip, clip);
  }
}

/// Uniform [B,1] gradient tensor used to turn a batch of critic outputs into
/// a scalar mean loss: dy[b] = weight for every sample.
Tensor uniform_grad(std::size_t batch, float weight) {
  Tensor g({batch, 1});
  for (std::size_t i = 0; i < batch; ++i) g[i] = weight;
  return g;
}

double batch_mean(const Tensor& scores) {
  double sum = 0.0;
  for (std::size_t i = 0; i < scores.size(); ++i) sum += scores[i];
  return sum / static_cast<double>(scores.size());
}

/// Accumulates the gradient-penalty contribution into the critic's parameter
/// gradients (see DESIGN.md): for interpolates x_hat with input gradients
/// g_i, d(GP)/d(theta) = mean_i coef_i * d/d(theta)[g_i^T grad_x D] and the
/// inner term is evaluated as a finite difference of two backprops along the
/// direction g_i.
void accumulate_gradient_penalty(Sequential& critic, const Tensor& x_hat,
                                 const TrainOptions& opts) {
  const std::size_t batch = x_hat.dim(0);
  const std::size_t per_sample = x_hat.size() / batch;

  // Pass 1: harvest g = grad_x D(x_hat). Parameter gradients accumulated
  // here are garbage for training, so the caller invokes this function
  // before accumulating the main loss and we zero them afterwards.
  critic.zero_grad();
  (void)critic.forward(x_hat);
  const Tensor g_input = critic.backward(uniform_grad(batch, 1.0F));
  critic.zero_grad();

  // Per-sample norms, FD steps, and chain-rule coefficients.
  std::vector<float> norms(batch, 0.0F);
  for (std::size_t b = 0; b < batch; ++b) {
    double acc = 0.0;
    const float* g = g_input.data() + b * per_sample;
    for (std::size_t i = 0; i < per_sample; ++i) acc += static_cast<double>(g[i]) * g[i];
    norms[b] = static_cast<float>(std::sqrt(acc));
  }

  Tensor x_pert = x_hat;
  std::vector<float> inv_h(batch, 0.0F);
  Tensor dy_base({batch, 1});
  for (std::size_t b = 0; b < batch; ++b) {
    const float norm = std::max(norms[b], 1e-8F);
    const float h = opts.gp_fd_step / norm;  // keeps the FD displacement ~gp_fd_step
    inv_h[b] = 1.0F / h;
    const float coef = 2.0F * opts.gp_lambda * (norm - 1.0F) / norm /
                       static_cast<float>(batch);
    dy_base[b] = coef;
    float* xp = x_pert.data() + b * per_sample;
    const float* g = g_input.data() + b * per_sample;
    for (std::size_t i = 0; i < per_sample; ++i) xp[i] += h * g[i];
  }

  // Pass 2 (+): grad_theta D(x_hat + h*g) weighted by +coef/h.
  Tensor dy_plus({batch, 1});
  for (std::size_t b = 0; b < batch; ++b) dy_plus[b] = dy_base[b] * inv_h[b];
  (void)critic.forward(x_pert);
  (void)critic.backward(dy_plus);

  // Pass 3 (-): grad_theta D(x_hat) weighted by -coef/h.
  Tensor dy_minus({batch, 1});
  for (std::size_t b = 0; b < batch; ++b) dy_minus[b] = -dy_base[b] * inv_h[b];
  (void)critic.forward(x_hat);
  (void)critic.backward(dy_minus);
}

}  // namespace

TrainedWgan WganTrainer::train(const WganConfig& config,
                               const features::WindowSet& windows) const {
  if (windows.count() < opts_.batch_size) {
    throw std::invalid_argument("WganTrainer::train: fewer windows (" +
                                std::to_string(windows.count()) + ") than one batch");
  }
  if (windows.window != config.window || windows.width != config.width) {
    throw std::invalid_argument("WganTrainer::train: window shape mismatch");
  }

  util::Rng master(opts_.seed + static_cast<std::uint64_t>(config.id) * 7919);
  util::Rng init_g = master.split(1);
  util::Rng init_d = master.split(2);
  util::Rng noise_rng = master.split(3);
  util::Rng shuffle_rng = master.split(4);

  TrainedWgan model;
  model.config = config;
  model.generator = opts_.generator_arch == GeneratorArch::kTransposedConv
                        ? build_generator_deconv(config, init_g)
                        : build_generator(config, init_g);
  model.discriminator = build_discriminator(config, init_d);

  nn::RmsProp opt_d(opts_.lr);
  nn::RmsProp opt_g(opts_.lr);
  auto params_d = model.discriminator.parameters();
  auto params_g = model.generator.parameters();

  const std::size_t batch = opts_.batch_size;
  std::vector<std::size_t> order(windows.count());
  std::iota(order.begin(), order.end(), std::size_t{0});

  const float inv_b = 1.0F / static_cast<float>(batch);
  TrainTelemetry& tel = TrainTelemetry::get();
  for (int epoch = 0; epoch < config.train_epochs; ++epoch) {
    telemetry::ScopedSpan epoch_span(tel.epoch_seconds, "train_epoch");
    shuffle_rng.shuffle(order);
    EpochStats stats;
    std::size_t critic_steps = 0;
    std::size_t gen_steps = 0;
    int since_gen = 0;
    for (std::size_t start = 0; start + batch <= order.size(); start += batch) {
      // ---- Critic update ----
      telemetry::ScopedSpan critic_span(tel.critic_step_seconds, "critic_step");
      model.discriminator.zero_grad();
      const Tensor real = make_real_batch(windows, order, start, batch);
      const Tensor z = make_noise(batch, config.z_dim, noise_rng);
      const Tensor fake = model.generator.forward(z);

      if (opts_.reg == Regularization::kGradientPenalty) {
        // Interpolates between real and fake, per sample.
        Tensor x_hat = real;
        const std::size_t per_sample = real.size() / batch;
        for (std::size_t b = 0; b < batch; ++b) {
          const float eps = noise_rng.uniform_f();
          float* xh = x_hat.data() + b * per_sample;
          const float* fk = fake.data() + b * per_sample;
          for (std::size_t i = 0; i < per_sample; ++i) {
            xh[i] = eps * xh[i] + (1.0F - eps) * fk[i];
          }
        }
        accumulate_gradient_penalty(model.discriminator, x_hat, opts_);
      }

      const Tensor d_real = model.discriminator.forward(real);
      (void)model.discriminator.backward(uniform_grad(batch, -inv_b));
      const Tensor d_fake = model.discriminator.forward(fake);
      (void)model.discriminator.backward(uniform_grad(batch, inv_b));
      opt_d.step(params_d);
      if (opts_.reg == Regularization::kWeightClipping) {
        clip_parameters(model.discriminator, opts_.clip_value);
      }

      const double w_est = batch_mean(d_real) - batch_mean(d_fake);
      stats.critic_loss += -w_est;
      stats.wasserstein_est += w_est;
      ++critic_steps;
      critic_span.stop();

      // ---- Generator update every n_critic critic steps ----
      if (++since_gen >= opts_.n_critic) {
        since_gen = 0;
        telemetry::ScopedSpan gen_span(tel.generator_step_seconds, "generator_step");
        const Tensor z_g = make_noise(batch, config.z_dim, noise_rng);
        const Tensor fake_g = model.generator.forward(z_g);
        const Tensor d_out = model.discriminator.forward(fake_g);
        model.discriminator.zero_grad();
        const Tensor d_fake_grad = model.discriminator.backward(uniform_grad(batch, -inv_b));
        model.generator.zero_grad();
        (void)model.generator.backward(d_fake_grad);
        opt_g.step(params_g);
        stats.generator_loss += -batch_mean(d_out);
        ++gen_steps;
      }
    }
    if (critic_steps > 0) {
      stats.critic_loss /= static_cast<double>(critic_steps);
      stats.wasserstein_est /= static_cast<double>(critic_steps);
    }
    if (gen_steps > 0) stats.generator_loss /= static_cast<double>(gen_steps);
    model.history.push_back(stats);
    const double epoch_elapsed = epoch_span.stop();
    tel.epochs_total.add(1);
    tel.critic_loss.set(stats.critic_loss);
    tel.wasserstein_est.set(stats.wasserstein_est);
    tel.generator_loss.set(stats.generator_loss);
    if (epoch_elapsed > 0.0) tel.epochs_per_second.set(1.0 / epoch_elapsed);
    util::log_debug("wgan ", config.name(), " epoch ", epoch + 1, "/", config.train_epochs,
                    " W~", stats.wasserstein_est);
  }
  return model;
}

features::WindowSet WganTrainer::sample(TrainedWgan& model, std::size_t count, util::Rng& rng) {
  features::WindowSet out;
  out.window = model.config.window;
  out.width = model.config.width;
  const Tensor z = make_noise(count, model.config.z_dim, rng);
  const Tensor fake = model.generator.forward(z);
  out.data.assign(fake.data(), fake.data() + fake.size());
  out.vehicle_ids.assign(count, 0);
  return out;
}

}  // namespace vehigan::gan
