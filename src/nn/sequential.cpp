#include "nn/sequential.hpp"

#include <fstream>

#include "nn/io.hpp"
#include "nn/serialize.hpp"

namespace vehigan::nn {

Sequential& Sequential::operator=(const Sequential& other) {
  if (this == &other) return *this;
  layers_.clear();
  layers_.reserve(other.layers_.size());
  for (const auto& layer : other.layers_) layers_.push_back(layer->clone());
  return *this;
}

Tensor Sequential::forward(const Tensor& input) {
  Tensor current = input;
  for (auto& layer : layers_) current = layer->forward(current);
  return current;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor current = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    current = (*it)->backward(current);
  }
  return current;
}

std::vector<Param> Sequential::parameters() {
  std::vector<Param> params;
  for (auto& layer : layers_) {
    for (auto& p : layer->parameters()) params.push_back(p);
  }
  return params;
}

void Sequential::zero_grad() {
  for (auto& layer : layers_) layer->zero_grad();
}

std::size_t Sequential::parameter_count() const {
  std::size_t count = 0;
  for (const auto& layer : layers_) {
    for (const auto& p : const_cast<Layer&>(*layer).parameters()) count += p.values->size();
  }
  return count;
}

Sequential Sequential::clone() const {
  Sequential copy;
  copy = *this;
  return copy;
}

void Sequential::save(std::ostream& out) const {
  io::write_string(out, "vehigan-seq-v1");
  io::write_u64(out, layers_.size());
  for (const auto& layer : layers_) {
    io::write_string(out, layer->kind());
    layer->serialize(out);
  }
}

void Sequential::save_file(const std::filesystem::path& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("Sequential::save_file: cannot open " + path.string());
  save(out);
}

Sequential Sequential::load(std::istream& in) {
  const std::string magic = io::read_string(in);
  if (magic != "vehigan-seq-v1") {
    throw std::runtime_error("Sequential::load: bad magic '" + magic + "'");
  }
  Sequential model;
  const std::uint64_t count = io::read_u64(in);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string kind = io::read_string(in);
    model.add_layer(deserialize_layer(kind, in));
  }
  return model;
}

Sequential Sequential::load_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("Sequential::load_file: cannot open " + path.string());
  return load(in);
}

float forward_scalar(Sequential& model, std::span<const float> sample, std::size_t window,
                     std::size_t width) {
  Tensor input({1, 1, window, width},
               std::vector<float>(sample.begin(), sample.end()));
  const Tensor output = model.forward(input);
  if (output.size() != 1) {
    throw std::runtime_error("forward_scalar: model output is not scalar, shape " +
                             output.shape_string());
  }
  return output[0];
}

std::vector<float> forward_scalars(Sequential& model, std::span<const float> samples,
                                   std::size_t count, std::size_t window, std::size_t width) {
  if (count == 0) return {};
  const std::size_t stride = window * width;
  if (samples.size() != count * stride) {
    throw std::invalid_argument("forward_scalars: expected " + std::to_string(count * stride) +
                                " floats, got " + std::to_string(samples.size()));
  }
  Tensor input({count, 1, window, width},
               std::vector<float>(samples.begin(), samples.end()));
  const Tensor output = model.forward(input);
  if (output.size() != count) {
    throw std::runtime_error("forward_scalars: model output is not one scalar per sample, shape " +
                             output.shape_string());
  }
  return {output.data(), output.data() + output.size()};
}

}  // namespace vehigan::nn
