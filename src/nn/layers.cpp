#include "nn/layers.hpp"

#include <cmath>

#include "nn/io.hpp"
#include "util/linalg.hpp"

namespace vehigan::nn {

namespace {

void expect_rank(const Tensor& t, std::size_t rank, const char* who) {
  if (t.rank() != rank) {
    throw std::invalid_argument(std::string(who) + ": expected rank " + std::to_string(rank) +
                                " tensor, got " + t.shape_string());
  }
}

}  // namespace

// ---------------------------------------------------------------- Dense ----

Dense::Dense(std::size_t in_features, std::size_t out_features)
    : in_(in_features),
      out_(out_features),
      w_(in_features * out_features, 0.0F),
      b_(out_features, 0.0F),
      dw_(in_features * out_features, 0.0F),
      db_(out_features, 0.0F) {}

void Dense::init_weights(util::Rng& rng) {
  // He-uniform: bound = sqrt(6 / fan_in); good default under LeakyReLU.
  const float bound = std::sqrt(6.0F / static_cast<float>(in_));
  for (auto& w : w_) w = rng.uniform_f(-bound, bound);
  std::fill(b_.begin(), b_.end(), 0.0F);
}

Tensor Dense::forward(const Tensor& input) {
  expect_rank(input, 2, "Dense::forward");
  if (input.dim(1) != in_) {
    throw std::invalid_argument("Dense::forward: input width " + std::to_string(input.dim(1)) +
                                " != " + std::to_string(in_));
  }
  cached_input_ = input;
  const std::size_t n = input.dim(0);
  Tensor output({n, out_});
  // One GEMM over the whole batch; accumulation order per output element
  // matches the former per-row loop, so results are unchanged for n == 1.
  util::gemm_nt_bias(n, out_, in_, input.data(), w_.data(), b_.data(), output.data());
  return output;
}

Tensor Dense::backward(const Tensor& grad_output) {
  expect_rank(grad_output, 2, "Dense::backward");
  const std::size_t n = grad_output.dim(0);
  Tensor grad_input({n, in_});
  for (std::size_t i = 0; i < n; ++i) {
    const float* dy = grad_output.data() + i * out_;
    const float* x = cached_input_.data() + i * in_;
    float* dx = grad_input.data() + i * in_;
    for (std::size_t o = 0; o < out_; ++o) {
      const float g = dy[o];
      if (g == 0.0F) continue;
      float* dw_row = dw_.data() + o * in_;
      const float* w_row = w_.data() + o * in_;
      db_[o] += g;
      for (std::size_t k = 0; k < in_; ++k) {
        dw_row[k] += g * x[k];
        dx[k] += g * w_row[k];
      }
    }
  }
  return grad_input;
}

std::vector<Param> Dense::parameters() { return {{&w_, &dw_}, {&b_, &db_}}; }

void Dense::serialize(std::ostream& out) const {
  io::write_u64(out, in_);
  io::write_u64(out, out_);
  io::write_f32_vector(out, w_);
  io::write_f32_vector(out, b_);
}

std::unique_ptr<Layer> Dense::clone() const {
  auto copy = std::make_unique<Dense>(in_, out_);
  copy->w_ = w_;
  copy->b_ = b_;
  return copy;
}

// --------------------------------------------------------------- Conv2D ----

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel_h,
               std::size_t kernel_w, std::size_t stride)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kh_(kernel_h),
      kw_(kernel_w),
      stride_(stride),
      w_(out_channels * in_channels * kernel_h * kernel_w, 0.0F),
      b_(out_channels, 0.0F),
      dw_(w_.size(), 0.0F),
      db_(out_channels, 0.0F) {
  if (stride_ == 0) throw std::invalid_argument("Conv2D: stride must be > 0");
}

void Conv2D::init_weights(util::Rng& rng) {
  const auto fan_in = static_cast<float>(in_ch_ * kh_ * kw_);
  const float bound = std::sqrt(6.0F / fan_in);
  for (auto& w : w_) w = rng.uniform_f(-bound, bound);
  std::fill(b_.begin(), b_.end(), 0.0F);
}

std::pair<std::size_t, std::size_t> Conv2D::output_hw(std::size_t h, std::size_t w) const {
  // "same" padding semantics: out = ceil(in / stride).
  return {(h + stride_ - 1) / stride_, (w + stride_ - 1) / stride_};
}

std::pair<std::size_t, std::size_t> Conv2D::padding(std::size_t h, std::size_t w) const {
  const auto [oh, ow] = output_hw(h, w);
  const std::size_t pad_h_total =
      std::max<std::size_t>((oh - 1) * stride_ + kh_, h) - h;
  const std::size_t pad_w_total =
      std::max<std::size_t>((ow - 1) * stride_ + kw_, w) - w;
  return {pad_h_total / 2, pad_w_total / 2};
}

Tensor Conv2D::forward(const Tensor& input) {
  expect_rank(input, 4, "Conv2D::forward");
  if (input.dim(1) != in_ch_) {
    throw std::invalid_argument("Conv2D::forward: channel mismatch, input " +
                                input.shape_string());
  }
  cached_input_ = input;
  const std::size_t n = input.dim(0);
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);
  const auto [oh, ow] = output_hw(h, w);
  const auto [pad_top, pad_left] = padding(h, w);

  Tensor output({n, out_ch_, oh, ow});
  const std::size_t in_plane = h * w;
  const std::size_t out_plane = oh * ow;
  for (std::size_t i = 0; i < n; ++i) {
    const float* x = input.data() + i * in_ch_ * in_plane;
    float* y = output.data() + i * out_ch_ * out_plane;
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      const float* w_oc = w_.data() + oc * in_ch_ * kh_ * kw_;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float acc = b_[oc];
          for (std::size_t ic = 0; ic < in_ch_; ++ic) {
            const float* x_ic = x + ic * in_plane;
            const float* w_ic = w_oc + ic * kh_ * kw_;
            for (std::size_t ky = 0; ky < kh_; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
                  static_cast<std::ptrdiff_t>(pad_top);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
              for (std::size_t kx = 0; kx < kw_; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                    static_cast<std::ptrdiff_t>(pad_left);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
                acc += w_ic[ky * kw_ + kx] *
                       x_ic[static_cast<std::size_t>(iy) * w + static_cast<std::size_t>(ix)];
              }
            }
          }
          y[oc * out_plane + oy * ow + ox] = acc;
        }
      }
    }
  }
  return output;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  expect_rank(grad_output, 4, "Conv2D::backward");
  const std::size_t n = cached_input_.dim(0);
  const std::size_t h = cached_input_.dim(2);
  const std::size_t w = cached_input_.dim(3);
  const auto [oh, ow] = output_hw(h, w);
  const auto [pad_top, pad_left] = padding(h, w);

  Tensor grad_input(cached_input_.shape());
  const std::size_t in_plane = h * w;
  const std::size_t out_plane = oh * ow;
  for (std::size_t i = 0; i < n; ++i) {
    const float* x = cached_input_.data() + i * in_ch_ * in_plane;
    const float* dy = grad_output.data() + i * out_ch_ * out_plane;
    float* dx = grad_input.data() + i * in_ch_ * in_plane;
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      const float* w_oc = w_.data() + oc * in_ch_ * kh_ * kw_;
      float* dw_oc = dw_.data() + oc * in_ch_ * kh_ * kw_;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          const float g = dy[oc * out_plane + oy * ow + ox];
          if (g == 0.0F) continue;
          db_[oc] += g;
          for (std::size_t ic = 0; ic < in_ch_; ++ic) {
            const float* x_ic = x + ic * in_plane;
            float* dx_ic = dx + ic * in_plane;
            const float* w_ic = w_oc + ic * kh_ * kw_;
            float* dw_ic = dw_oc + ic * kh_ * kw_;
            for (std::size_t ky = 0; ky < kh_; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
                  static_cast<std::ptrdiff_t>(pad_top);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
              for (std::size_t kx = 0; kx < kw_; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                    static_cast<std::ptrdiff_t>(pad_left);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
                const std::size_t xi =
                    static_cast<std::size_t>(iy) * w + static_cast<std::size_t>(ix);
                dw_ic[ky * kw_ + kx] += g * x_ic[xi];
                dx_ic[xi] += g * w_ic[ky * kw_ + kx];
              }
            }
          }
        }
      }
    }
  }
  return grad_input;
}

std::vector<Param> Conv2D::parameters() { return {{&w_, &dw_}, {&b_, &db_}}; }

void Conv2D::serialize(std::ostream& out) const {
  io::write_u64(out, in_ch_);
  io::write_u64(out, out_ch_);
  io::write_u64(out, kh_);
  io::write_u64(out, kw_);
  io::write_u64(out, stride_);
  io::write_f32_vector(out, w_);
  io::write_f32_vector(out, b_);
}

std::unique_ptr<Layer> Conv2D::clone() const {
  auto copy = std::make_unique<Conv2D>(in_ch_, out_ch_, kh_, kw_, stride_);
  copy->w_ = w_;
  copy->b_ = b_;
  return copy;
}

// ------------------------------------------------------ Conv2DTranspose ----

Conv2DTranspose::Conv2DTranspose(std::size_t in_channels, std::size_t out_channels,
                                 std::size_t kernel_h, std::size_t kernel_w, std::size_t stride)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kh_(kernel_h),
      kw_(kernel_w),
      stride_(stride),
      w_(in_channels * out_channels * kernel_h * kernel_w, 0.0F),
      b_(out_channels, 0.0F),
      dw_(w_.size(), 0.0F),
      db_(out_channels, 0.0F) {
  if (stride_ == 0) throw std::invalid_argument("Conv2DTranspose: stride must be > 0");
}

void Conv2DTranspose::init_weights(util::Rng& rng) {
  const auto fan_in = static_cast<float>(in_ch_ * kh_ * kw_);
  const float bound = std::sqrt(6.0F / fan_in);
  for (auto& w : w_) w = rng.uniform_f(-bound, bound);
  std::fill(b_.begin(), b_.end(), 0.0F);
}

Tensor Conv2DTranspose::forward(const Tensor& input) {
  expect_rank(input, 4, "Conv2DTranspose::forward");
  if (input.dim(1) != in_ch_) {
    throw std::invalid_argument("Conv2DTranspose::forward: channel mismatch, input " +
                                input.shape_string());
  }
  cached_input_ = input;
  const std::size_t n = input.dim(0);
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);
  const std::size_t oh = h * stride_;
  const std::size_t ow = w * stride_;
  // Same-style cropping: out = in * stride exactly.
  const std::size_t pad = (std::max(kh_, kw_) > stride_ ? (std::max(kh_, kw_) - stride_) / 2 : 0);

  Tensor output({n, out_ch_, oh, ow});
  const std::size_t in_plane = h * w;
  const std::size_t out_plane = oh * ow;
  for (std::size_t i = 0; i < n; ++i) {
    const float* x = input.data() + i * in_ch_ * in_plane;
    float* y = output.data() + i * out_ch_ * out_plane;
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      float* y_oc = y + oc * out_plane;
      for (std::size_t p = 0; p < out_plane; ++p) y_oc[p] = b_[oc];
    }
    for (std::size_t ic = 0; ic < in_ch_; ++ic) {
      const float* x_ic = x + ic * in_plane;
      const float* w_ic = w_.data() + ic * out_ch_ * kh_ * kw_;
      for (std::size_t iy = 0; iy < h; ++iy) {
        for (std::size_t ix = 0; ix < w; ++ix) {
          const float v = x_ic[iy * w + ix];
          if (v == 0.0F) continue;
          for (std::size_t oc = 0; oc < out_ch_; ++oc) {
            const float* w_oc = w_ic + oc * kh_ * kw_;
            float* y_oc = y + oc * out_plane;
            for (std::size_t ky = 0; ky < kh_; ++ky) {
              const std::ptrdiff_t oy = static_cast<std::ptrdiff_t>(iy * stride_ + ky) -
                                        static_cast<std::ptrdiff_t>(pad);
              if (oy < 0 || oy >= static_cast<std::ptrdiff_t>(oh)) continue;
              for (std::size_t kx = 0; kx < kw_; ++kx) {
                const std::ptrdiff_t ox = static_cast<std::ptrdiff_t>(ix * stride_ + kx) -
                                          static_cast<std::ptrdiff_t>(pad);
                if (ox < 0 || ox >= static_cast<std::ptrdiff_t>(ow)) continue;
                y_oc[static_cast<std::size_t>(oy) * ow + static_cast<std::size_t>(ox)] +=
                    v * w_oc[ky * kw_ + kx];
              }
            }
          }
        }
      }
    }
  }
  return output;
}

Tensor Conv2DTranspose::backward(const Tensor& grad_output) {
  expect_rank(grad_output, 4, "Conv2DTranspose::backward");
  const std::size_t n = cached_input_.dim(0);
  const std::size_t h = cached_input_.dim(2);
  const std::size_t w = cached_input_.dim(3);
  const std::size_t oh = h * stride_;
  const std::size_t ow = w * stride_;
  const std::size_t pad = (std::max(kh_, kw_) > stride_ ? (std::max(kh_, kw_) - stride_) / 2 : 0);

  Tensor grad_input(cached_input_.shape());
  const std::size_t in_plane = h * w;
  const std::size_t out_plane = oh * ow;
  for (std::size_t i = 0; i < n; ++i) {
    const float* x = cached_input_.data() + i * in_ch_ * in_plane;
    const float* dy = grad_output.data() + i * out_ch_ * out_plane;
    float* dx = grad_input.data() + i * in_ch_ * in_plane;
    // Bias gradient: sum over all output positions.
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      const float* dy_oc = dy + oc * out_plane;
      float acc = 0.0F;
      for (std::size_t p = 0; p < out_plane; ++p) acc += dy_oc[p];
      db_[oc] += acc;
    }
    for (std::size_t ic = 0; ic < in_ch_; ++ic) {
      const float* x_ic = x + ic * in_plane;
      float* dx_ic = dx + ic * in_plane;
      const float* w_ic = w_.data() + ic * out_ch_ * kh_ * kw_;
      float* dw_ic = dw_.data() + ic * out_ch_ * kh_ * kw_;
      for (std::size_t iy = 0; iy < h; ++iy) {
        for (std::size_t ix = 0; ix < w; ++ix) {
          const float v = x_ic[iy * w + ix];
          float dx_acc = 0.0F;
          for (std::size_t oc = 0; oc < out_ch_; ++oc) {
            const float* w_oc = w_ic + oc * kh_ * kw_;
            float* dw_oc = dw_ic + oc * kh_ * kw_;
            const float* dy_oc = dy + oc * out_plane;
            for (std::size_t ky = 0; ky < kh_; ++ky) {
              const std::ptrdiff_t oy = static_cast<std::ptrdiff_t>(iy * stride_ + ky) -
                                        static_cast<std::ptrdiff_t>(pad);
              if (oy < 0 || oy >= static_cast<std::ptrdiff_t>(oh)) continue;
              for (std::size_t kx = 0; kx < kw_; ++kx) {
                const std::ptrdiff_t ox = static_cast<std::ptrdiff_t>(ix * stride_ + kx) -
                                          static_cast<std::ptrdiff_t>(pad);
                if (ox < 0 || ox >= static_cast<std::ptrdiff_t>(ow)) continue;
                const float g = dy_oc[static_cast<std::size_t>(oy) * ow +
                                      static_cast<std::size_t>(ox)];
                dw_oc[ky * kw_ + kx] += v * g;
                dx_acc += w_oc[ky * kw_ + kx] * g;
              }
            }
          }
          dx_ic[iy * w + ix] += dx_acc;
        }
      }
    }
  }
  return grad_input;
}

std::vector<Param> Conv2DTranspose::parameters() { return {{&w_, &dw_}, {&b_, &db_}}; }

void Conv2DTranspose::serialize(std::ostream& out) const {
  io::write_u64(out, in_ch_);
  io::write_u64(out, out_ch_);
  io::write_u64(out, kh_);
  io::write_u64(out, kw_);
  io::write_u64(out, stride_);
  io::write_f32_vector(out, w_);
  io::write_f32_vector(out, b_);
}

std::unique_ptr<Layer> Conv2DTranspose::clone() const {
  auto copy = std::make_unique<Conv2DTranspose>(in_ch_, out_ch_, kh_, kw_, stride_);
  copy->w_ = w_;
  copy->b_ = b_;
  return copy;
}

// ----------------------------------------------------------- UpSample2D ----

Tensor UpSample2D::forward(const Tensor& input) {
  expect_rank(input, 4, "UpSample2D::forward");
  cached_shape_ = input.shape();
  const std::size_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
  Tensor output({n, c, h * factor_, w * factor_});
  const std::size_t ow = w * factor_;
  for (std::size_t i = 0; i < n * c; ++i) {
    const float* x = input.data() + i * h * w;
    float* y = output.data() + i * h * factor_ * ow;
    for (std::size_t yy = 0; yy < h * factor_; ++yy) {
      const float* x_row = x + (yy / factor_) * w;
      float* y_row = y + yy * ow;
      for (std::size_t xx = 0; xx < ow; ++xx) y_row[xx] = x_row[xx / factor_];
    }
  }
  return output;
}

Tensor UpSample2D::backward(const Tensor& grad_output) {
  const std::size_t n = cached_shape_[0], c = cached_shape_[1], h = cached_shape_[2],
                    w = cached_shape_[3];
  Tensor grad_input(cached_shape_);
  const std::size_t ow = w * factor_;
  for (std::size_t i = 0; i < n * c; ++i) {
    const float* dy = grad_output.data() + i * h * factor_ * ow;
    float* dx = grad_input.data() + i * h * w;
    for (std::size_t yy = 0; yy < h * factor_; ++yy) {
      float* dx_row = dx + (yy / factor_) * w;
      const float* dy_row = dy + yy * ow;
      for (std::size_t xx = 0; xx < ow; ++xx) dx_row[xx / factor_] += dy_row[xx];
    }
  }
  return grad_input;
}

void UpSample2D::serialize(std::ostream& out) const { io::write_u64(out, factor_); }

std::unique_ptr<Layer> UpSample2D::clone() const { return std::make_unique<UpSample2D>(factor_); }

// ------------------------------------------------------------ LeakyReLU ----

Tensor LeakyReLU::forward(const Tensor& input) {
  cached_input_ = input;
  Tensor output(input.shape());
  for (std::size_t i = 0; i < input.size(); ++i) {
    const float v = input[i];
    output[i] = v > 0.0F ? v : alpha_ * v;
  }
  return output;
}

Tensor LeakyReLU::backward(const Tensor& grad_output) {
  Tensor grad_input(cached_input_.shape());
  for (std::size_t i = 0; i < grad_output.size(); ++i) {
    grad_input[i] = grad_output[i] * (cached_input_[i] > 0.0F ? 1.0F : alpha_);
  }
  return grad_input;
}

void LeakyReLU::serialize(std::ostream& out) const { io::write_f32(out, alpha_); }

std::unique_ptr<Layer> LeakyReLU::clone() const { return std::make_unique<LeakyReLU>(alpha_); }

// -------------------------------------------------------------- Sigmoid ----

Tensor Sigmoid::forward(const Tensor& input) {
  Tensor output(input.shape());
  for (std::size_t i = 0; i < input.size(); ++i) {
    output[i] = 1.0F / (1.0F + std::exp(-input[i]));
  }
  cached_output_ = output;
  return output;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  Tensor grad_input(cached_output_.shape());
  for (std::size_t i = 0; i < grad_output.size(); ++i) {
    const float y = cached_output_[i];
    grad_input[i] = grad_output[i] * y * (1.0F - y);
  }
  return grad_input;
}

void Sigmoid::serialize(std::ostream&) const {}

std::unique_ptr<Layer> Sigmoid::clone() const { return std::make_unique<Sigmoid>(); }

// ----------------------------------------------------------------- Tanh ----

Tensor Tanh::forward(const Tensor& input) {
  Tensor output(input.shape());
  for (std::size_t i = 0; i < input.size(); ++i) output[i] = std::tanh(input[i]);
  cached_output_ = output;
  return output;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  Tensor grad_input(cached_output_.shape());
  for (std::size_t i = 0; i < grad_output.size(); ++i) {
    const float y = cached_output_[i];
    grad_input[i] = grad_output[i] * (1.0F - y * y);
  }
  return grad_input;
}

void Tanh::serialize(std::ostream&) const {}

std::unique_ptr<Layer> Tanh::clone() const { return std::make_unique<Tanh>(); }

// -------------------------------------------------------------- Flatten ----

Tensor Flatten::forward(const Tensor& input) {
  cached_shape_ = input.shape();
  const std::size_t n = input.dim(0);
  return input.reshaped({n, input.size() / n});
}

Tensor Flatten::backward(const Tensor& grad_output) { return grad_output.reshaped(cached_shape_); }

void Flatten::serialize(std::ostream&) const {}

std::unique_ptr<Layer> Flatten::clone() const { return std::make_unique<Flatten>(); }

// -------------------------------------------------------------- Reshape ----

Tensor Reshape::forward(const Tensor& input) {
  cached_shape_ = input.shape();
  std::vector<std::size_t> shape = {input.dim(0)};
  shape.insert(shape.end(), target_.begin(), target_.end());
  return input.reshaped(std::move(shape));
}

Tensor Reshape::backward(const Tensor& grad_output) { return grad_output.reshaped(cached_shape_); }

void Reshape::serialize(std::ostream& out) const { io::write_shape(out, target_); }

std::unique_ptr<Layer> Reshape::clone() const { return std::make_unique<Reshape>(target_); }

}  // namespace vehigan::nn
