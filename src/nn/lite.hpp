#pragma once

#include <span>
#include <vector>

#include "nn/sequential.hpp"

namespace vehigan::nn::lite {

/// A "lite" compiled model, playing the role TensorFlow Lite plays in the
/// paper's Fig. 8: the trained graph is flattened ahead of time into a
/// sequence of fused kernels over two preallocated ping-pong buffers, so
/// inference performs zero heap allocations, no virtual dispatch per layer,
/// no shape checks, and activation functions are fused into the producing
/// kernel.
///
/// Supported layers: Dense, Conv2D, UpSample2D, LeakyReLU/Sigmoid/Tanh
/// (fused), Flatten/Reshape (free). Single-sample inference only — exactly
/// the MBDS deployment profile (one window per received BSM).
class LiteModel {
 public:
  /// Compiles a trained model for a fixed per-sample input shape
  /// (e.g. {1, 10, 12} for a discriminator, {z_dim} for a generator).
  /// Throws std::invalid_argument on unsupported layers.
  static LiteModel compile(const Sequential& model,
                           const std::vector<std::size_t>& input_sample_shape);

  /// Runs inference. `input` must have exactly input_size() values; the
  /// returned span points into an internal buffer valid until the next call.
  std::span<const float> infer(std::span<const float> input);

  /// Convenience for discriminator-style scalar outputs.
  float infer_scalar(std::span<const float> input);

  [[nodiscard]] std::size_t input_size() const { return input_size_; }
  [[nodiscard]] std::size_t output_size() const { return output_size_; }
  [[nodiscard]] std::size_t op_count() const { return ops_.size(); }

 private:
  enum class Activation : std::uint8_t { kNone, kLeakyRelu, kSigmoid, kTanh };

  struct Op {
    enum class Kind : std::uint8_t { kDense, kConv2d, kUpsample, kElementwise } kind;
    Activation act = Activation::kNone;
    float alpha = 0.0F;  ///< LeakyReLU slope
    // Dense:
    std::size_t in = 0, out = 0;
    // Conv: geometry resolved at compile time.
    std::size_t in_ch = 0, out_ch = 0, kh = 0, kw = 0, stride = 0;
    std::size_t h_in = 0, w_in = 0, h_out = 0, w_out = 0;
    std::size_t pad_top = 0, pad_left = 0;
    // Upsample:
    std::size_t factor = 0, channels = 0;
    // Offsets into the packed weight arena.
    std::size_t w_offset = 0, b_offset = 0;
    std::size_t out_values = 0;  ///< total output element count
  };

  static Activation fuse_activation(const Layer& layer, float& alpha);
  void run_op(const Op& op, const float* in, float* out) const;
  static void apply_activation(Activation act, float alpha, float* data, std::size_t n);

  std::vector<Op> ops_;
  std::vector<float> arena_;  ///< all weights/biases packed contiguously
  std::vector<float> buf_a_, buf_b_;
  std::size_t input_size_ = 0;
  std::size_t output_size_ = 0;
};

}  // namespace vehigan::nn::lite
