#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace vehigan::nn {

/// A trainable parameter blob with its gradient accumulator, exposed by
/// layers to the optimizers.
struct Param {
  std::vector<float>* values = nullptr;
  std::vector<float>* grads = nullptr;
};

/// Base class of all network layers.
///
/// The training contract is the classic two-pass one:
///  * `forward(x)` computes the output and caches whatever the backward pass
///    needs (inputs, masks). Layers are therefore stateful between a
///    forward and its matching backward; a Sequential is used by one thread
///    at a time.
///  * `backward(dL/dy)` accumulates parameter gradients (+=) and returns
///    dL/dx, so gradients w.r.t. the *input* are available at the front of
///    the chain — that is what FGSM (Eqs. 6-7) and the gradient-penalty
///    trainer consume.
class Layer {
 public:
  virtual ~Layer() = default;

  virtual Tensor forward(const Tensor& input) = 0;
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Trainable parameters; empty for activations/reshapes.
  virtual std::vector<Param> parameters() { return {}; }

  /// Short stable identifier used for serialization dispatch.
  [[nodiscard]] virtual std::string kind() const = 0;

  /// Writes layer config + weights; the matching reader lives in
  /// serialize.cpp keyed on kind().
  virtual void serialize(std::ostream& out) const = 0;

  /// Deep copy (used to snapshot models during grid training).
  [[nodiscard]] virtual std::unique_ptr<Layer> clone() const = 0;

  void zero_grad() {
    for (auto& p : parameters()) {
      std::fill(p.grads->begin(), p.grads->end(), 0.0F);
    }
  }
};

}  // namespace vehigan::nn
