#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "nn/layer.hpp"

namespace vehigan::nn {

/// Reconstructs one layer from the stream given its kind() tag. Throws
/// std::runtime_error on unknown tags or truncated streams.
std::unique_ptr<Layer> deserialize_layer(const std::string& kind, std::istream& in);

}  // namespace vehigan::nn
