#pragma once

#include <filesystem>
#include <memory>
#include <span>
#include <vector>

#include "nn/layer.hpp"

namespace vehigan::nn {

/// A feed-forward stack of layers — the model container used for both the
/// WGAN generator/discriminator and the auto-encoder baseline.
///
/// Thread-safety: forward/backward mutate per-layer caches, so one
/// Sequential may be driven by one thread at a time. Independent clones are
/// fully independent.
class Sequential {
 public:
  Sequential() = default;

  Sequential(Sequential&&) noexcept = default;
  Sequential& operator=(Sequential&&) noexcept = default;
  Sequential(const Sequential& other) { *this = other; }
  Sequential& operator=(const Sequential& other);

  template <typename L, typename... Args>
  L& add(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  void add_layer(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  [[nodiscard]] std::size_t layer_count() const { return layers_.size(); }
  [[nodiscard]] Layer& layer(std::size_t i) { return *layers_.at(i); }
  [[nodiscard]] const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  /// Runs the full forward pass; caches per-layer state for backward.
  Tensor forward(const Tensor& input);

  /// Backpropagates dL/dy through the stack, accumulating parameter
  /// gradients, and returns dL/dx (the input gradient used by FGSM and the
  /// gradient-penalty trainer).
  Tensor backward(const Tensor& grad_output);

  /// All trainable parameters, front to back.
  std::vector<Param> parameters();

  void zero_grad();

  /// Total number of trainable scalars.
  [[nodiscard]] std::size_t parameter_count() const;

  /// Deep copy including weights (not caches).
  [[nodiscard]] Sequential clone() const;

  void save(std::ostream& out) const;
  void save_file(const std::filesystem::path& path) const;
  static Sequential load(std::istream& in);
  static Sequential load_file(const std::filesystem::path& path);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Convenience: forward a single sample shaped [1, window, width] through a
/// discriminator-style network that outputs [1, 1]; returns the scalar.
float forward_scalar(Sequential& model, std::span<const float> sample,
                     std::size_t window, std::size_t width);

/// Batched analogue of forward_scalar: `count` contiguous samples of
/// window*width floats go through the critic as one [count, 1, window, width]
/// tensor — one layer-graph walk (and one Dense GEMM per dense layer) instead
/// of `count` — and the [count, 1] output is returned as per-sample scalars.
/// Per-sample results are identical to forward_scalar on each row.
std::vector<float> forward_scalars(Sequential& model, std::span<const float> samples,
                                   std::size_t count, std::size_t window, std::size_t width);

}  // namespace vehigan::nn
