#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace vehigan::nn {

namespace {

void ensure_state(std::vector<std::vector<float>>& state, const std::vector<Param>& params) {
  if (state.empty()) {
    state.reserve(params.size());
    for (const auto& p : params) state.emplace_back(p.values->size(), 0.0F);
    return;
  }
  if (state.size() != params.size()) {
    throw std::invalid_argument("Optimizer: parameter list changed between steps");
  }
}

}  // namespace

void Sgd::step(const std::vector<Param>& params) {
  for (const auto& p : params) {
    auto& v = *p.values;
    const auto& g = *p.grads;
    for (std::size_t i = 0; i < v.size(); ++i) v[i] -= lr_ * g[i];
  }
}

void RmsProp::step(const std::vector<Param>& params) {
  ensure_state(mean_square_, params);
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    auto& v = *params[pi].values;
    const auto& g = *params[pi].grads;
    auto& ms = mean_square_[pi];
    for (std::size_t i = 0; i < v.size(); ++i) {
      ms[i] = rho_ * ms[i] + (1.0F - rho_) * g[i] * g[i];
      v[i] -= lr_ * g[i] / (std::sqrt(ms[i]) + eps_);
    }
  }
}

void Adam::step(const std::vector<Param>& params) {
  ensure_state(m_, params);
  ensure_state(v_, params);
  ++t_;
  const float bias1 = 1.0F - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0F - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    auto& w = *params[pi].values;
    const auto& g = *params[pi].grads;
    auto& m = m_[pi];
    auto& v = v_[pi];
    for (std::size_t i = 0; i < w.size(); ++i) {
      m[i] = beta1_ * m[i] + (1.0F - beta1_) * g[i];
      v[i] = beta2_ * v[i] + (1.0F - beta2_) * g[i] * g[i];
      const float m_hat = m[i] / bias1;
      const float v_hat = v[i] / bias2;
      w[i] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

}  // namespace vehigan::nn
