#pragma once

#include <cstdint>
#include <numeric>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace vehigan::nn {

/// Dense row-major float tensor. This is deliberately a small value type —
/// the whole network stack (10x12 windows, <100k parameters per model) fits
/// comfortably in caches, so we optimize for clarity and copy-safety rather
/// than views/striding.
class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(std::vector<std::size_t> shape) : shape_(std::move(shape)) {
    data_.assign(element_count(shape_), 0.0F);
  }

  Tensor(std::vector<std::size_t> shape, std::vector<float> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    if (data_.size() != element_count(shape_)) {
      throw std::invalid_argument("Tensor: data size does not match shape");
    }
  }

  [[nodiscard]] static std::size_t element_count(const std::vector<std::size_t>& shape) {
    return std::accumulate(shape.begin(), shape.end(), std::size_t{1},
                           [](std::size_t a, std::size_t b) { return a * b; });
  }

  [[nodiscard]] const std::vector<std::size_t>& shape() const { return shape_; }
  [[nodiscard]] std::size_t rank() const { return shape_.size(); }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::size_t dim(std::size_t i) const { return shape_.at(i); }

  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }
  [[nodiscard]] std::span<float> values() { return data_; }
  [[nodiscard]] std::span<const float> values() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  /// Reinterprets the tensor with a new shape of identical element count.
  [[nodiscard]] Tensor reshaped(std::vector<std::size_t> new_shape) const {
    if (element_count(new_shape) != size()) {
      throw std::invalid_argument("Tensor::reshaped: element count mismatch");
    }
    return Tensor(std::move(new_shape), data_);
  }

  /// "NxHxW..." string for error messages.
  [[nodiscard]] std::string shape_string() const {
    std::string s;
    for (std::size_t i = 0; i < shape_.size(); ++i) {
      if (i) s += 'x';
      s += std::to_string(shape_[i]);
    }
    return s.empty() ? "scalar" : s;
  }

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

}  // namespace vehigan::nn
