#include "nn/serialize.hpp"

#include <stdexcept>

#include "nn/io.hpp"
#include "nn/layers.hpp"

namespace vehigan::nn {

std::unique_ptr<Layer> deserialize_layer(const std::string& kind, std::istream& in) {
  if (kind == "dense") {
    const std::size_t in_f = io::read_u64(in);
    const std::size_t out_f = io::read_u64(in);
    auto layer = std::make_unique<Dense>(in_f, out_f);
    layer->weights() = io::read_f32_vector(in);
    layer->bias() = io::read_f32_vector(in);
    if (layer->weights().size() != in_f * out_f || layer->bias().size() != out_f) {
      throw std::runtime_error("deserialize dense: weight size mismatch");
    }
    return layer;
  }
  if (kind == "conv2d") {
    const std::size_t in_ch = io::read_u64(in);
    const std::size_t out_ch = io::read_u64(in);
    const std::size_t kh = io::read_u64(in);
    const std::size_t kw = io::read_u64(in);
    const std::size_t stride = io::read_u64(in);
    auto layer = std::make_unique<Conv2D>(in_ch, out_ch, kh, kw, stride);
    layer->weights() = io::read_f32_vector(in);
    layer->bias() = io::read_f32_vector(in);
    if (layer->weights().size() != out_ch * in_ch * kh * kw || layer->bias().size() != out_ch) {
      throw std::runtime_error("deserialize conv2d: weight size mismatch");
    }
    return layer;
  }
  if (kind == "conv2d_transpose") {
    const std::size_t in_ch = io::read_u64(in);
    const std::size_t out_ch = io::read_u64(in);
    const std::size_t kh = io::read_u64(in);
    const std::size_t kw = io::read_u64(in);
    const std::size_t stride = io::read_u64(in);
    auto layer = std::make_unique<Conv2DTranspose>(in_ch, out_ch, kh, kw, stride);
    layer->weights() = io::read_f32_vector(in);
    layer->bias() = io::read_f32_vector(in);
    if (layer->weights().size() != in_ch * out_ch * kh * kw || layer->bias().size() != out_ch) {
      throw std::runtime_error("deserialize conv2d_transpose: weight size mismatch");
    }
    return layer;
  }
  if (kind == "upsample2d") return std::make_unique<UpSample2D>(io::read_u64(in));
  if (kind == "leaky_relu") return std::make_unique<LeakyReLU>(io::read_f32(in));
  if (kind == "sigmoid") return std::make_unique<Sigmoid>();
  if (kind == "tanh") return std::make_unique<Tanh>();
  if (kind == "flatten") return std::make_unique<Flatten>();
  if (kind == "reshape") return std::make_unique<Reshape>(io::read_shape(in));
  throw std::runtime_error("deserialize_layer: unknown layer kind '" + kind + "'");
}

}  // namespace vehigan::nn
