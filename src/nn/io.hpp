#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace vehigan::nn::io {

/// Tiny binary (de)serialization primitives shared by layer serialization
/// and the model store. Little-endian host assumed (x86-64 target).

inline void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("nn::io: truncated stream (u64)");
  return v;
}

inline void write_f32(std::ostream& out, float v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline float read_f32(std::istream& in) {
  float v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("nn::io: truncated stream (f32)");
  return v;
}

inline void write_f64(std::ostream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline double read_f64(std::istream& in) {
  double v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("nn::io: truncated stream (f64)");
  return v;
}

inline void write_string(std::ostream& out, const std::string& s) {
  write_u64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

inline std::string read_string(std::istream& in) {
  const std::uint64_t n = read_u64(in);
  // A length beyond any sane tag/name means the stream is not ours; fail
  // cleanly instead of attempting a huge allocation.
  if (n > (1ULL << 20)) throw std::runtime_error("nn::io: implausible string length");
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  if (!in) throw std::runtime_error("nn::io: truncated stream (string)");
  return s;
}

inline void write_f32_vector(std::ostream& out, const std::vector<float>& v) {
  write_u64(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(float)));
}

inline std::vector<float> read_f32_vector(std::istream& in) {
  const std::uint64_t n = read_u64(in);
  // Largest real tensor in this codebase is a few million scalars; a length
  // beyond this bound is a corrupt or hostile stream. Reject it before the
  // resize so a flipped length byte cannot drive a multi-GB allocation.
  if (n > (1ULL << 27)) throw std::runtime_error("nn::io: implausible f32 vector length");
  std::vector<float> v(n);
  in.read(reinterpret_cast<char*>(v.data()), static_cast<std::streamsize>(n * sizeof(float)));
  if (!in) throw std::runtime_error("nn::io: truncated stream (f32 vector)");
  return v;
}

inline void write_shape(std::ostream& out, const std::vector<std::size_t>& shape) {
  write_u64(out, shape.size());
  for (std::size_t d : shape) write_u64(out, d);
}

inline std::vector<std::size_t> read_shape(std::istream& in) {
  const std::uint64_t n = read_u64(in);
  // Tensors here are rank <= 4; anything larger means a corrupt stream.
  if (n > 64) throw std::runtime_error("nn::io: implausible shape rank");
  std::vector<std::size_t> shape(n);
  for (auto& d : shape) d = read_u64(in);
  return shape;
}

}  // namespace vehigan::nn::io
