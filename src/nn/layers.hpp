#pragma once

#include <cstdint>

#include "nn/layer.hpp"

namespace vehigan::nn {

/// Fully connected layer: y = x W^T + b, batched over the leading dimension.
/// Weights are row-major [out_features][in_features].
class Dense : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param> parameters() override;
  [[nodiscard]] std::string kind() const override { return "dense"; }
  void serialize(std::ostream& out) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;

  /// He-uniform initialization scaled for LeakyReLU nonlinearities.
  void init_weights(util::Rng& rng);

  [[nodiscard]] std::size_t in_features() const { return in_; }
  [[nodiscard]] std::size_t out_features() const { return out_; }
  [[nodiscard]] std::vector<float>& weights() { return w_; }
  [[nodiscard]] std::vector<float>& bias() { return b_; }
  [[nodiscard]] const std::vector<float>& weights() const { return w_; }
  [[nodiscard]] const std::vector<float>& bias() const { return b_; }

 private:
  friend class SerializedReader;
  std::size_t in_;
  std::size_t out_;
  std::vector<float> w_, b_;
  std::vector<float> dw_, db_;
  Tensor cached_input_;
};

/// 2-D convolution over NCHW tensors with "same"-style padding, the building
/// block of both G and D (paper uses 2x2 kernels with LeakyReLU).
class Conv2D : public Layer {
 public:
  Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel_h,
         std::size_t kernel_w, std::size_t stride = 1);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param> parameters() override;
  [[nodiscard]] std::string kind() const override { return "conv2d"; }
  void serialize(std::ostream& out) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;

  void init_weights(util::Rng& rng);

  [[nodiscard]] std::size_t in_channels() const { return in_ch_; }
  [[nodiscard]] std::size_t out_channels() const { return out_ch_; }
  [[nodiscard]] std::size_t kernel_h() const { return kh_; }
  [[nodiscard]] std::size_t kernel_w() const { return kw_; }
  [[nodiscard]] std::size_t stride() const { return stride_; }
  [[nodiscard]] std::vector<float>& weights() { return w_; }
  [[nodiscard]] std::vector<float>& bias() { return b_; }
  [[nodiscard]] const std::vector<float>& weights() const { return w_; }
  [[nodiscard]] const std::vector<float>& bias() const { return b_; }

  /// Output spatial size for an input of (h, w) under same padding.
  [[nodiscard]] std::pair<std::size_t, std::size_t> output_hw(std::size_t h, std::size_t w) const;

 private:
  friend class SerializedReader;
  /// Computes the top/left zero-padding for same-style output size.
  [[nodiscard]] std::pair<std::size_t, std::size_t> padding(std::size_t h, std::size_t w) const;

  std::size_t in_ch_, out_ch_, kh_, kw_, stride_;
  // w_[oc][ic][kh][kw] row-major.
  std::vector<float> w_, b_;
  std::vector<float> dw_, db_;
  Tensor cached_input_;
};

/// Transposed 2-D convolution (a.k.a. deconvolution), stride-s upsampling
/// with learned kernels — the DCGAN-style alternative to
/// UpSample2D+Conv2D in the generator. Output spatial size: in * stride
/// (same-style). Weights are [in_ch][out_ch][kh][kw] row-major.
class Conv2DTranspose : public Layer {
 public:
  Conv2DTranspose(std::size_t in_channels, std::size_t out_channels, std::size_t kernel_h,
                  std::size_t kernel_w, std::size_t stride = 2);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param> parameters() override;
  [[nodiscard]] std::string kind() const override { return "conv2d_transpose"; }
  void serialize(std::ostream& out) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;

  void init_weights(util::Rng& rng);

  [[nodiscard]] std::size_t in_channels() const { return in_ch_; }
  [[nodiscard]] std::size_t out_channels() const { return out_ch_; }
  [[nodiscard]] std::size_t stride() const { return stride_; }
  [[nodiscard]] std::vector<float>& weights() { return w_; }
  [[nodiscard]] std::vector<float>& bias() { return b_; }
  [[nodiscard]] const std::vector<float>& weights() const { return w_; }
  [[nodiscard]] const std::vector<float>& bias() const { return b_; }

 private:
  std::size_t in_ch_, out_ch_, kh_, kw_, stride_;
  std::vector<float> w_, b_;
  std::vector<float> dw_, db_;
  Tensor cached_input_;
};

/// Nearest-neighbor 2-D up-sampling by an integer factor (generator blocks).
class UpSample2D : public Layer {
 public:
  explicit UpSample2D(std::size_t factor) : factor_(factor) {}

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string kind() const override { return "upsample2d"; }
  void serialize(std::ostream& out) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;

  [[nodiscard]] std::size_t factor() const { return factor_; }

 private:
  std::size_t factor_;
  std::vector<std::size_t> cached_shape_;
};

/// LeakyReLU(x) = x if x > 0 else alpha * x.
class LeakyReLU : public Layer {
 public:
  explicit LeakyReLU(float alpha = 0.2F) : alpha_(alpha) {}

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string kind() const override { return "leaky_relu"; }
  void serialize(std::ostream& out) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;

  [[nodiscard]] float alpha() const { return alpha_; }

 private:
  float alpha_;
  Tensor cached_input_;
};

/// Logistic sigmoid; used as the generator's output activation since
/// training windows are min-max scaled into [0, 1].
class Sigmoid : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string kind() const override { return "sigmoid"; }
  void serialize(std::ostream& out) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;

 private:
  Tensor cached_output_;
};

/// Hyperbolic tangent activation.
class Tanh : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string kind() const override { return "tanh"; }
  void serialize(std::ostream& out) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;

 private:
  Tensor cached_output_;
};

/// Collapses all per-sample dimensions: [N, ...] -> [N, M].
class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string kind() const override { return "flatten"; }
  void serialize(std::ostream& out) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;

 private:
  std::vector<std::size_t> cached_shape_;
};

/// Reshapes each sample to a fixed target shape: [N, M] -> [N, target...].
class Reshape : public Layer {
 public:
  explicit Reshape(std::vector<std::size_t> target_sample_shape)
      : target_(std::move(target_sample_shape)) {}

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string kind() const override { return "reshape"; }
  void serialize(std::ostream& out) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;

  [[nodiscard]] const std::vector<std::size_t>& target() const { return target_; }

 private:
  std::vector<std::size_t> target_;
  std::vector<std::size_t> cached_shape_;
};

}  // namespace vehigan::nn
