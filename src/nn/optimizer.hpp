#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace vehigan::nn {

/// Base interface of first-order optimizers. `step` consumes the gradients
/// accumulated since the last zero_grad and updates the parameter values in
/// place. Optimizers keep per-parameter state keyed by position, so the same
/// parameter list must be passed on every call.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual void step(const std::vector<Param>& params) = 0;
};

/// Plain SGD (used in tests as the ground-truth-simple optimizer).
class Sgd : public Optimizer {
 public:
  explicit Sgd(float lr) : lr_(lr) {}
  void step(const std::vector<Param>& params) override;

 private:
  float lr_;
};

/// RMSProp — Arjovsky et al. recommend it over momentum methods for the
/// WGAN critic because momentum interacts badly with the non-stationary
/// clipped objective.
class RmsProp : public Optimizer {
 public:
  explicit RmsProp(float lr, float rho = 0.9F, float eps = 1e-7F)
      : lr_(lr), rho_(rho), eps_(eps) {}
  void step(const std::vector<Param>& params) override;

 private:
  float lr_, rho_, eps_;
  std::vector<std::vector<float>> mean_square_;
};

/// Adam (Kingma & Ba) — used for the generator and the AE baseline.
class Adam : public Optimizer {
 public:
  explicit Adam(float lr, float beta1 = 0.9F, float beta2 = 0.999F, float eps = 1e-7F)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}
  void step(const std::vector<Param>& params) override;

 private:
  float lr_, beta1_, beta2_, eps_;
  std::vector<std::vector<float>> m_, v_;
  long t_ = 0;
};

}  // namespace vehigan::nn
