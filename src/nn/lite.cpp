#include "nn/lite.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/layers.hpp"

namespace vehigan::nn::lite {

namespace {

std::size_t product(const std::vector<std::size_t>& shape) {
  std::size_t p = 1;
  for (std::size_t d : shape) p *= d;
  return p;
}

}  // namespace

LiteModel::Activation LiteModel::fuse_activation(const Layer& layer, float& alpha) {
  if (const auto* lrelu = dynamic_cast<const LeakyReLU*>(&layer)) {
    alpha = lrelu->alpha();
    return Activation::kLeakyRelu;
  }
  if (dynamic_cast<const Sigmoid*>(&layer) != nullptr) return Activation::kSigmoid;
  if (dynamic_cast<const Tanh*>(&layer) != nullptr) return Activation::kTanh;
  return Activation::kNone;
}

LiteModel LiteModel::compile(const Sequential& model,
                             const std::vector<std::size_t>& input_sample_shape) {
  LiteModel lite;
  lite.input_size_ = product(input_sample_shape);

  // Shape of the value currently flowing through the plan. For spatial ops we
  // track {C, H, W}; dense ops flatten implicitly.
  std::vector<std::size_t> shape = input_sample_shape;
  std::size_t max_values = lite.input_size_;

  for (std::size_t li = 0; li < model.layer_count(); ++li) {
    const Layer& layer = model.layer(li);

    if (const auto* dense = dynamic_cast<const Dense*>(&layer)) {
      if (product(shape) != dense->in_features()) {
        throw std::invalid_argument("LiteModel: dense input mismatch at layer " +
                                    std::to_string(li));
      }
      Op op;
      op.kind = Op::Kind::kDense;
      op.in = dense->in_features();
      op.out = dense->out_features();
      op.w_offset = lite.arena_.size();
      lite.arena_.insert(lite.arena_.end(), dense->weights().begin(), dense->weights().end());
      op.b_offset = lite.arena_.size();
      lite.arena_.insert(lite.arena_.end(), dense->bias().begin(), dense->bias().end());
      op.out_values = op.out;
      lite.ops_.push_back(op);
      shape = {op.out};
    } else if (const auto* conv = dynamic_cast<const Conv2D*>(&layer)) {
      if (shape.size() != 3 || shape[0] != conv->in_channels()) {
        throw std::invalid_argument("LiteModel: conv input mismatch at layer " +
                                    std::to_string(li));
      }
      Op op;
      op.kind = Op::Kind::kConv2d;
      op.in_ch = conv->in_channels();
      op.out_ch = conv->out_channels();
      op.kh = conv->kernel_h();
      op.kw = conv->kernel_w();
      op.stride = conv->stride();
      op.h_in = shape[1];
      op.w_in = shape[2];
      const auto [oh, ow] = conv->output_hw(op.h_in, op.w_in);
      op.h_out = oh;
      op.w_out = ow;
      const std::size_t pad_h_total =
          std::max<std::size_t>((oh - 1) * op.stride + op.kh, op.h_in) - op.h_in;
      const std::size_t pad_w_total =
          std::max<std::size_t>((ow - 1) * op.stride + op.kw, op.w_in) - op.w_in;
      op.pad_top = pad_h_total / 2;
      op.pad_left = pad_w_total / 2;
      op.w_offset = lite.arena_.size();
      lite.arena_.insert(lite.arena_.end(), conv->weights().begin(), conv->weights().end());
      op.b_offset = lite.arena_.size();
      lite.arena_.insert(lite.arena_.end(), conv->bias().begin(), conv->bias().end());
      op.out_values = op.out_ch * oh * ow;
      lite.ops_.push_back(op);
      shape = {op.out_ch, oh, ow};
    } else if (const auto* up = dynamic_cast<const UpSample2D*>(&layer)) {
      if (shape.size() != 3) {
        throw std::invalid_argument("LiteModel: upsample needs CHW input at layer " +
                                    std::to_string(li));
      }
      Op op;
      op.kind = Op::Kind::kUpsample;
      op.factor = up->factor();
      op.channels = shape[0];
      op.h_in = shape[1];
      op.w_in = shape[2];
      op.h_out = shape[1] * op.factor;
      op.w_out = shape[2] * op.factor;
      op.out_values = op.channels * op.h_out * op.w_out;
      lite.ops_.push_back(op);
      shape = {op.channels, op.h_out, op.w_out};
    } else if (dynamic_cast<const Flatten*>(&layer) != nullptr) {
      shape = {product(shape)};  // free: buffers are already flat
    } else if (const auto* reshape = dynamic_cast<const Reshape*>(&layer)) {
      if (product(reshape->target()) != product(shape)) {
        throw std::invalid_argument("LiteModel: reshape size mismatch at layer " +
                                    std::to_string(li));
      }
      shape = reshape->target();
    } else {
      float alpha = 0.0F;
      const Activation act = fuse_activation(layer, alpha);
      if (act == Activation::kNone) {
        throw std::invalid_argument("LiteModel: unsupported layer kind '" + layer.kind() + "'");
      }
      // Fuse into the previous compute op when possible.
      if (!lite.ops_.empty() && lite.ops_.back().act == Activation::kNone &&
          lite.ops_.back().kind != Op::Kind::kUpsample) {
        lite.ops_.back().act = act;
        lite.ops_.back().alpha = alpha;
      } else {
        Op op;
        op.kind = Op::Kind::kElementwise;
        op.act = act;
        op.alpha = alpha;
        op.out_values = product(shape);
        lite.ops_.push_back(op);
      }
    }
    max_values = std::max(max_values, product(shape));
  }

  lite.output_size_ = product(shape);
  lite.buf_a_.assign(max_values, 0.0F);
  lite.buf_b_.assign(max_values, 0.0F);
  return lite;
}

void LiteModel::apply_activation(Activation act, float alpha, float* data, std::size_t n) {
  switch (act) {
    case Activation::kNone:
      break;
    case Activation::kLeakyRelu:
      for (std::size_t i = 0; i < n; ++i) {
        if (data[i] < 0.0F) data[i] *= alpha;
      }
      break;
    case Activation::kSigmoid:
      for (std::size_t i = 0; i < n; ++i) data[i] = 1.0F / (1.0F + std::exp(-data[i]));
      break;
    case Activation::kTanh:
      for (std::size_t i = 0; i < n; ++i) data[i] = std::tanh(data[i]);
      break;
  }
}

void LiteModel::run_op(const Op& op, const float* in, float* out) const {
  switch (op.kind) {
    case Op::Kind::kDense: {
      const float* __restrict w = arena_.data() + op.w_offset;
      const float* __restrict b = arena_.data() + op.b_offset;
      const float* __restrict x = in;
      for (std::size_t o = 0; o < op.out; ++o) {
        const float* __restrict w_row = w + o * op.in;
        // Four independent accumulators let the compiler pipeline/vectorize
        // the dot product without -ffast-math reassociation.
        float a0 = 0.0F, a1 = 0.0F, a2 = 0.0F, a3 = 0.0F;
        std::size_t k = 0;
        for (; k + 4 <= op.in; k += 4) {
          a0 += w_row[k] * x[k];
          a1 += w_row[k + 1] * x[k + 1];
          a2 += w_row[k + 2] * x[k + 2];
          a3 += w_row[k + 3] * x[k + 3];
        }
        float acc = b[o] + (a0 + a1) + (a2 + a3);
        for (; k < op.in; ++k) acc += w_row[k] * x[k];
        out[o] = acc;
      }
      apply_activation(op.act, op.alpha, out, op.out);
      break;
    }
    case Op::Kind::kConv2d: {
      const float* __restrict w = arena_.data() + op.w_offset;
      const float* __restrict b = arena_.data() + op.b_offset;
      const std::size_t in_plane = op.h_in * op.w_in;
      const std::size_t out_plane = op.h_out * op.w_out;

      if (op.kh == 2 && op.kw == 2) {
        // Specialized 2x2 kernel (the paper's architecture): per output
        // pixel the four taps are addressed directly, and interior pixels
        // skip all bounds checks.
        for (std::size_t oc = 0; oc < op.out_ch; ++oc) {
          const float* __restrict w_oc = w + oc * op.in_ch * 4;
          float* __restrict out_oc = out + oc * out_plane;
          const float bias = b[oc];
          for (std::size_t oy = 0; oy < op.h_out; ++oy) {
            const std::ptrdiff_t iy0 = static_cast<std::ptrdiff_t>(oy * op.stride) -
                                       static_cast<std::ptrdiff_t>(op.pad_top);
            const bool y_interior = iy0 >= 0 && iy0 + 1 < static_cast<std::ptrdiff_t>(op.h_in);
            for (std::size_t ox = 0; ox < op.w_out; ++ox) {
              const std::ptrdiff_t ix0 = static_cast<std::ptrdiff_t>(ox * op.stride) -
                                         static_cast<std::ptrdiff_t>(op.pad_left);
              float acc = bias;
              if (y_interior && ix0 >= 0 && ix0 + 1 < static_cast<std::ptrdiff_t>(op.w_in)) {
                const std::size_t base = static_cast<std::size_t>(iy0) * op.w_in +
                                         static_cast<std::size_t>(ix0);
                const float* __restrict in_px = in + base;
                const float* __restrict w_ic = w_oc;
                for (std::size_t ic = 0; ic < op.in_ch; ++ic) {
                  const float* __restrict p = in_px + ic * in_plane;
                  acc += w_ic[0] * p[0] + w_ic[1] * p[1] + w_ic[2] * p[op.w_in] +
                         w_ic[3] * p[op.w_in + 1];
                  w_ic += 4;
                }
              } else {
                for (std::size_t ic = 0; ic < op.in_ch; ++ic) {
                  const float* __restrict in_ic = in + ic * in_plane;
                  const float* __restrict w_ic = w_oc + ic * 4;
                  for (std::size_t ky = 0; ky < 2; ++ky) {
                    const std::ptrdiff_t iy = iy0 + static_cast<std::ptrdiff_t>(ky);
                    if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(op.h_in)) continue;
                    for (std::size_t kx = 0; kx < 2; ++kx) {
                      const std::ptrdiff_t ix = ix0 + static_cast<std::ptrdiff_t>(kx);
                      if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(op.w_in)) continue;
                      acc += w_ic[ky * 2 + kx] *
                             in_ic[static_cast<std::size_t>(iy) * op.w_in +
                                   static_cast<std::size_t>(ix)];
                    }
                  }
                }
              }
              out_oc[oy * op.w_out + ox] = acc;
            }
          }
        }
        apply_activation(op.act, op.alpha, out, op.out_values);
        break;
      }

      for (std::size_t oc = 0; oc < op.out_ch; ++oc) {
        const float* w_oc = w + oc * op.in_ch * op.kh * op.kw;
        float* out_oc = out + oc * out_plane;
        for (std::size_t oy = 0; oy < op.h_out; ++oy) {
          for (std::size_t ox = 0; ox < op.w_out; ++ox) {
            float acc = b[oc];
            for (std::size_t ic = 0; ic < op.in_ch; ++ic) {
              const float* in_ic = in + ic * in_plane;
              const float* w_ic = w_oc + ic * op.kh * op.kw;
              for (std::size_t ky = 0; ky < op.kh; ++ky) {
                const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy * op.stride + ky) -
                                          static_cast<std::ptrdiff_t>(op.pad_top);
                if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(op.h_in)) continue;
                for (std::size_t kx = 0; kx < op.kw; ++kx) {
                  const std::ptrdiff_t ix = static_cast<std::ptrdiff_t>(ox * op.stride + kx) -
                                            static_cast<std::ptrdiff_t>(op.pad_left);
                  if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(op.w_in)) continue;
                  acc += w_ic[ky * op.kw + kx] *
                         in_ic[static_cast<std::size_t>(iy) * op.w_in +
                               static_cast<std::size_t>(ix)];
                }
              }
            }
            out_oc[oy * op.w_out + ox] = acc;
          }
        }
      }
      apply_activation(op.act, op.alpha, out, op.out_values);
      break;
    }
    case Op::Kind::kUpsample: {
      for (std::size_t c = 0; c < op.channels; ++c) {
        const float* in_c = in + c * op.h_in * op.w_in;
        float* out_c = out + c * op.h_out * op.w_out;
        for (std::size_t yy = 0; yy < op.h_out; ++yy) {
          const float* in_row = in_c + (yy / op.factor) * op.w_in;
          float* out_row = out_c + yy * op.w_out;
          for (std::size_t xx = 0; xx < op.w_out; ++xx) out_row[xx] = in_row[xx / op.factor];
        }
      }
      break;
    }
    case Op::Kind::kElementwise: {
      for (std::size_t i = 0; i < op.out_values; ++i) out[i] = in[i];
      apply_activation(op.act, op.alpha, out, op.out_values);
      break;
    }
  }
}

std::span<const float> LiteModel::infer(std::span<const float> input) {
  if (input.size() != input_size_) {
    throw std::invalid_argument("LiteModel::infer: expected " + std::to_string(input_size_) +
                                " inputs, got " + std::to_string(input.size()));
  }
  std::copy(input.begin(), input.end(), buf_a_.begin());
  float* cur = buf_a_.data();
  float* next = buf_b_.data();
  std::size_t out_values = input_size_;
  for (const auto& op : ops_) {
    run_op(op, cur, next);
    std::swap(cur, next);
    out_values = op.out_values;
  }
  return {cur, out_values};
}

float LiteModel::infer_scalar(std::span<const float> input) {
  const auto out = infer(input);
  if (out.size() != 1) {
    throw std::runtime_error("LiteModel::infer_scalar: output has " +
                             std::to_string(out.size()) + " values");
  }
  return out[0];
}

}  // namespace vehigan::nn::lite
