#include "sim/bsm.hpp"

#include <map>

#include "util/csv.hpp"

namespace vehigan::sim {

void write_bsm_csv(const BsmDataset& dataset, const std::filesystem::path& path) {
  util::CsvWriter writer(path);
  writer.write_row(bsm_csv_header());
  for (const auto& trace : dataset.traces) {
    for (const auto& m : trace.messages) {
      writer.write_row_numeric({static_cast<double>(m.vehicle_id), m.time, m.x, m.y, m.speed,
                                m.accel, m.heading, m.yaw_rate});
    }
  }
}

BsmDataset read_bsm_csv(const std::filesystem::path& path) {
  const util::CsvTable table = util::read_csv(path);
  const std::size_t c_id = table.column("vehicle_id");
  const std::size_t c_time = table.column("time");
  const std::size_t c_x = table.column("x");
  const std::size_t c_y = table.column("y");
  const std::size_t c_speed = table.column("speed");
  const std::size_t c_accel = table.column("accel");
  const std::size_t c_heading = table.column("heading");
  const std::size_t c_yaw = table.column("yaw_rate");

  std::map<std::uint32_t, VehicleTrace> by_vehicle;
  for (const auto& row : table.rows) {
    Bsm m;
    m.vehicle_id = static_cast<std::uint32_t>(std::stoul(row[c_id]));
    m.time = std::stod(row[c_time]);
    m.x = std::stod(row[c_x]);
    m.y = std::stod(row[c_y]);
    m.speed = std::stod(row[c_speed]);
    m.accel = std::stod(row[c_accel]);
    m.heading = std::stod(row[c_heading]);
    m.yaw_rate = std::stod(row[c_yaw]);
    auto& trace = by_vehicle[m.vehicle_id];
    trace.vehicle_id = m.vehicle_id;
    trace.messages.push_back(m);
  }

  BsmDataset dataset;
  dataset.traces.reserve(by_vehicle.size());
  for (auto& [id, trace] : by_vehicle) dataset.traces.push_back(std::move(trace));
  return dataset;
}

}  // namespace vehigan::sim
