#pragma once

#include "sim/bsm.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace vehigan::sim {

/// Gaussian sensor-noise model applied to every transmitted BSM.
///
/// The defaults mimic GNSS/IMU-grade noise, with deliberately *larger*
/// acceleration noise: the paper reports that VASP's benign acceleration is
/// noticeably noisy (a known simulation artifact that degrades WGAN
/// performance on acceleration attacks, Sec. V-C). Reproducing that artifact
/// is required to reproduce Table III's shape.
struct SensorNoiseModel {
  double pos_sigma = 0.35;      ///< [m]
  double speed_sigma = 0.12;    ///< [m/s]
  double accel_sigma = 0.45;    ///< [m/s^2] — intentionally high (VASP artifact)
  double heading_sigma = 0.01;  ///< [rad]
  double yaw_sigma = 0.015;     ///< [rad/s]

  /// Returns a noisy copy of the ground-truth message.
  [[nodiscard]] Bsm apply(const Bsm& truth, util::Rng& rng) const {
    Bsm noisy = truth;
    noisy.x += rng.normal(0.0, pos_sigma);
    noisy.y += rng.normal(0.0, pos_sigma);
    noisy.speed = std::max(0.0, noisy.speed + rng.normal(0.0, speed_sigma));
    noisy.accel += rng.normal(0.0, accel_sigma);
    noisy.heading = util::wrap_angle(noisy.heading + rng.normal(0.0, heading_sigma));
    noisy.yaw_rate += rng.normal(0.0, yaw_sigma);
    return noisy;
  }
};

}  // namespace vehigan::sim
