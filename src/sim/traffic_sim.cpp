#include "sim/traffic_sim.hpp"

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "util/math.hpp"

namespace vehigan::sim {

namespace {

/// Mutable state of one simulated vehicle.
struct VehicleState {
  std::uint32_t id = 0;
  double depart_time = 0.0;
  double s = 0.0;      ///< arc length along the platoon route [m]
  double v = 0.0;      ///< speed [m/s]
  double a = 0.0;      ///< longitudinal acceleration [m/s^2]
  bool active = false;
  bool finished = false;
  VehicleTrace trace;
};

struct Platoon {
  Route route;
  std::vector<VehicleState> vehicles;  ///< index 0 = platoon leader (front)
  double desired_speed_jitter = 1.0;   ///< per-platoon multiplier on the limit
};

}  // namespace

BsmDataset TrafficSimulator::run() const {
  const auto& cfg = config_;
  util::Rng master(cfg.seed);
  util::Rng route_rng = master.split(1);
  util::Rng noise_rng = master.split(2);
  util::Rng jitter_rng = master.split(3);

  // Route length needed so the fastest vehicle stays on-route for the whole
  // simulation: limit * duration plus margin.
  const double min_route_len =
      cfg.network.max_speed_limit * cfg.duration_s + 200.0;

  RoadNetwork network(cfg.network);
  std::vector<Platoon> platoons;
  platoons.reserve(static_cast<std::size_t>(cfg.num_platoons));
  std::uint32_t next_id = 1;
  for (int p = 0; p < cfg.num_platoons; ++p) {
    Platoon platoon;
    platoon.route = network.random_route(route_rng, min_route_len);
    platoon.desired_speed_jitter = jitter_rng.uniform(0.85, 1.1);
    for (int i = 0; i < cfg.vehicles_per_platoon; ++i) {
      VehicleState veh;
      veh.id = next_id++;
      veh.depart_time = i * cfg.spawn_stagger_s + jitter_rng.uniform(0.0, 1.0);
      // Leader starts farthest along the route; followers behind it.
      veh.s = (cfg.vehicles_per_platoon - 1 - i) * cfg.spawn_spacing_m;
      veh.v = 0.0;
      veh.trace.vehicle_id = veh.id;
      platoon.vehicles.push_back(std::move(veh));
    }
    platoons.push_back(std::move(platoon));
  }

  const auto steps = static_cast<std::size_t>(std::llround(cfg.duration_s / cfg.dt_s));
  for (std::size_t step = 0; step < steps; ++step) {
    const double t = static_cast<double>(step) * cfg.dt_s;
    for (auto& platoon : platoons) {
      const double limit = platoon.route.speed_limit * platoon.desired_speed_jitter;
      for (std::size_t i = 0; i < platoon.vehicles.size(); ++i) {
        auto& veh = platoon.vehicles[i];
        if (veh.finished) continue;
        if (!veh.active) {
          if (t >= veh.depart_time) veh.active = true;
          else continue;
        }

        // Leader gap within the platoon (vehicle i follows vehicle i-1).
        double gap = std::numeric_limits<double>::infinity();
        double dv = 0.0;
        if (i > 0 && !platoon.vehicles[i - 1].finished) {
          const auto& lead = platoon.vehicles[i - 1];
          gap = lead.s - veh.s - cfg.idm.vehicle_length;
          dv = veh.v - lead.v;
        }

        const double v_safe =
            platoon.route.path.safe_speed_at(veh.s, limit, cfg.a_lat_max, cfg.curve_lookahead_m);
        veh.a = idm_acceleration(cfg.idm, veh.v, v_safe, gap, dv);
        // Semi-implicit Euler keeps the update stable at dt = 0.1 s.
        veh.v = std::max(0.0, veh.v + veh.a * cfg.dt_s);
        veh.s += veh.v * cfg.dt_s;
        if (veh.s >= platoon.route.path.total_length()) {
          veh.finished = true;
          continue;
        }

        const Pose pose = platoon.route.path.pose_at(veh.s);
        Bsm truth;
        truth.vehicle_id = veh.id;
        truth.time = t;
        truth.x = pose.x;
        truth.y = pose.y;
        truth.speed = veh.v;
        truth.accel = veh.a;
        truth.heading = pose.heading;
        truth.yaw_rate = pose.curvature * veh.v;
        veh.trace.messages.push_back(cfg.noise.apply(truth, noise_rng));
      }
    }
  }

  BsmDataset dataset;
  for (auto& platoon : platoons) {
    for (auto& veh : platoon.vehicles) {
      if (!veh.trace.messages.empty()) dataset.traces.push_back(std::move(veh.trace));
    }
  }
  return dataset;
}

}  // namespace vehigan::sim
