#include "sim/path.hpp"

#include <algorithm>
#include <cmath>

#include "util/math.hpp"

namespace vehigan::sim {

Pose PathSegment::pose_at(double s) const {
  s = util::clamp(s, 0.0, length);
  Pose p;
  if (curvature == 0.0) {
    p.x = x0 + s * std::cos(heading0);
    p.y = y0 + s * std::sin(heading0);
    p.heading = util::wrap_angle(heading0);
    p.curvature = 0.0;
  } else {
    // Circular arc: the center is at distance r = 1/|kappa| to the left
    // (kappa > 0) or right (kappa < 0) of the start heading.
    const double theta = heading0 + curvature * s;
    p.x = x0 + (std::sin(theta) - std::sin(heading0)) / curvature;
    p.y = y0 - (std::cos(theta) - std::cos(heading0)) / curvature;
    p.heading = util::wrap_angle(theta);
    p.curvature = curvature;
  }
  return p;
}

Path::Path(std::vector<PathSegment> segments) : segments_(std::move(segments)) {
  cumulative_.reserve(segments_.size());
  double acc = 0.0;
  for (const auto& seg : segments_) {
    cumulative_.push_back(acc);
    acc += seg.length;
  }
  total_length_ = acc;
}

Pose Path::pose_at(double s) const {
  if (segments_.empty()) return Pose{};
  s = util::clamp(s, 0.0, total_length_);
  // Find the segment containing s: the last cumulative_ entry <= s.
  auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), s);
  const auto idx = static_cast<std::size_t>(std::distance(cumulative_.begin(), it)) - 1;
  return segments_[idx].pose_at(s - cumulative_[idx]);
}

double Path::safe_speed_at(double s, double road_limit, double a_lat_max,
                           double lookahead) const {
  double limit = road_limit;
  // Sample the curvature ahead; a handful of samples is plenty at urban speeds.
  constexpr int kSamples = 8;
  for (int i = 0; i <= kSamples; ++i) {
    const double ahead = s + lookahead * static_cast<double>(i) / kSamples;
    const double kappa = std::abs(pose_at(ahead).curvature);
    if (kappa > 1e-9) {
      limit = std::min(limit, std::sqrt(a_lat_max / kappa));
    }
  }
  return limit;
}

}  // namespace vehigan::sim
