#pragma once

#include <cstdint>

#include "sim/bsm.hpp"
#include "sim/idm.hpp"
#include "sim/noise.hpp"
#include "sim/road_network.hpp"
#include "util/rng.hpp"

namespace vehigan::sim {

/// Configuration of one benign traffic simulation (replaces the
/// SUMO/Veins/VASP benign run of Sec. IV-A).
struct TrafficSimConfig {
  double duration_s = 600.0;   ///< simulated wall time (paper: 3000 s)
  double dt_s = 0.1;           ///< integration + BSM period (10 Hz)
  int num_platoons = 12;       ///< independent routes with interacting vehicles
  int vehicles_per_platoon = 5;///< IDM-coupled vehicles per route
  double spawn_spacing_m = 28.0;  ///< initial bumper spacing within a platoon
  double spawn_stagger_s = 3.0;   ///< departure stagger within a platoon
  RoadNetworkConfig network;
  IdmParams idm;
  SensorNoiseModel noise;
  double a_lat_max = 2.0;      ///< comfort lateral acceleration in turns [m/s^2]
  double curve_lookahead_m = 25.0;
  std::uint64_t seed = 42;
};

/// Microscopic traffic simulator.
///
/// Vehicles are organized in platoons: all members of a platoon share one
/// route and interact through the IDM (followers brake/accelerate in response
/// to their leader), producing realistic stop-and-go texture; platoons are
/// mutually independent. Each vehicle transmits one BSM per step with sensor
/// noise applied. A vehicle despawns when it reaches the end of its route,
/// so traces have heterogeneous lengths, like the paper's dataset.
class TrafficSimulator {
 public:
  explicit TrafficSimulator(TrafficSimConfig config) : config_(config) {}

  /// Runs the full simulation and returns all per-vehicle BSM traces.
  [[nodiscard]] BsmDataset run() const;

  [[nodiscard]] const TrafficSimConfig& config() const { return config_; }

 private:
  TrafficSimConfig config_;
};

}  // namespace vehigan::sim
