#pragma once

#include <vector>

namespace vehigan::sim {

/// Pose of a vehicle on a path at some arc length.
struct Pose {
  double x = 0.0;
  double y = 0.0;
  double heading = 0.0;    ///< [rad], wrapped into [0, 2*pi)
  double curvature = 0.0;  ///< [1/m]; yaw rate = curvature * speed
};

/// One primitive of a driving path: a straight line (curvature == 0) or a
/// circular arc (curvature != 0, signed: + = left turn). Paths built from
/// these primitives are C1-continuous in position and heading, so the
/// kinematic relations the feature engineering relies on (Table II) hold
/// exactly up to sensor noise.
struct PathSegment {
  double x0 = 0.0;        ///< start position X [m]
  double y0 = 0.0;        ///< start position Y [m]
  double heading0 = 0.0;  ///< heading at the start [rad]
  double length = 0.0;    ///< arc length [m]
  double curvature = 0.0; ///< 0 for straight; +-1/r for arcs

  /// Pose at arc length s in [0, length] from the segment start.
  [[nodiscard]] Pose pose_at(double s) const;

  /// Pose at the end of the segment (used to chain segments).
  [[nodiscard]] Pose end_pose() const { return pose_at(length); }
};

/// A driving path: a chained sequence of segments with a prefix-sum index so
/// that pose lookup by total arc length is O(log n).
class Path {
 public:
  Path() = default;
  explicit Path(std::vector<PathSegment> segments);

  [[nodiscard]] double total_length() const { return total_length_; }
  [[nodiscard]] const std::vector<PathSegment>& segments() const { return segments_; }

  /// Pose at total arc length s; s is clamped into [0, total_length].
  [[nodiscard]] Pose pose_at(double s) const;

  /// Speed a vehicle should not exceed at arc length s, combining the road
  /// speed limit with the lateral-acceleration comfort limit in curves
  /// (v <= sqrt(a_lat_max / |kappa|)). Looks ahead `lookahead` meters so
  /// vehicles brake *before* entering a turn, like real drivers (and SUMO).
  [[nodiscard]] double safe_speed_at(double s, double road_limit, double a_lat_max,
                                     double lookahead) const;

 private:
  std::vector<PathSegment> segments_;
  std::vector<double> cumulative_;  ///< cumulative_[i] = length of segments [0, i)
  double total_length_ = 0.0;
};

}  // namespace vehigan::sim
