#include "sim/road_network.hpp"

#include <cmath>

#include "util/math.hpp"

namespace vehigan::sim {

namespace {

/// Cardinal direction as an index: 0=E, 1=N, 2=W, 3=S.
struct GridCursor {
  int col = 0;
  int row = 0;
  int dir = 0;
};

int dx_of(int dir) { return dir == 0 ? 1 : dir == 2 ? -1 : 0; }
int dy_of(int dir) { return dir == 1 ? 1 : dir == 3 ? -1 : 0; }

bool move_stays_inside(const GridCursor& c, int dir, int cols, int rows) {
  const int nc = c.col + dx_of(dir);
  const int nr = c.row + dy_of(dir);
  return nc >= 0 && nc < cols && nr >= 0 && nr < rows;
}

}  // namespace

Route RoadNetwork::random_route(util::Rng& rng, double min_length_m) const {
  const auto& cfg = config_;
  GridCursor cursor;
  // Start well inside the grid so early turns have room.
  cursor.col = static_cast<int>(rng.uniform_int(1, cfg.grid_cols - 2));
  cursor.row = static_cast<int>(rng.uniform_int(1, cfg.grid_rows - 2));
  cursor.dir = static_cast<int>(rng.uniform_int(0, 3));

  std::vector<PathSegment> segments;
  Pose pen;  // running pen position/heading for chaining segments
  pen.x = cursor.col * cfg.block_length_m;
  pen.y = cursor.row * cfg.block_length_m;
  pen.heading = cursor.dir * util::kPi / 2.0;

  double built = 0.0;
  // Straight blocks are shortened at each end to make room for corner arcs.
  const double arc_len = cfg.turn_radius_m * util::kPi / 2.0;
  const double straight_len = cfg.block_length_m - 2.0 * cfg.turn_radius_m;

  while (built < min_length_m) {
    // Straight block along the current direction.
    PathSegment straight;
    straight.x0 = pen.x;
    straight.y0 = pen.y;
    straight.heading0 = pen.heading;
    straight.length = straight_len;
    straight.curvature = 0.0;
    segments.push_back(straight);
    pen = straight.end_pose();
    built += straight.length;

    cursor.col += dx_of(cursor.dir);
    cursor.row += dy_of(cursor.dir);

    // Choose the next maneuver; re-draw until the move stays inside the grid.
    int turn = 0;  // 0 straight, +1 left, -1 right
    for (int attempt = 0; attempt < 16; ++attempt) {
      const double u = rng.uniform();
      if (u < cfg.p_straight) turn = 0;
      else if (u < cfg.p_straight + cfg.p_left) turn = 1;
      else turn = -1;
      const int nd = ((cursor.dir + turn) % 4 + 4) % 4;
      if (move_stays_inside(cursor, nd, cfg.grid_cols, cfg.grid_rows)) {
        cursor.dir = nd;
        break;
      }
      turn = 0;  // fall back; loop re-draws
    }
    // If even going straight would leave the grid, force a legal turn.
    if (!move_stays_inside(cursor, cursor.dir, cfg.grid_cols, cfg.grid_rows)) {
      for (int t : {1, -1, 2}) {
        const int nd = ((cursor.dir + t) % 4 + 4) % 4;
        if (move_stays_inside(cursor, nd, cfg.grid_cols, cfg.grid_rows)) {
          cursor.dir = nd;
          turn = t;
          break;
        }
      }
    }

    if (turn == 0 || turn == 2) {
      // Through movement (or dead-end U-turn approximated as straight): pad
      // the intersection crossing with a short straight piece.
      PathSegment cross = straight;
      cross.x0 = pen.x;
      cross.y0 = pen.y;
      cross.heading0 = pen.heading;
      cross.length = 2.0 * cfg.turn_radius_m;
      segments.push_back(cross);
      pen = cross.end_pose();
      built += cross.length;
    } else {
      PathSegment arc;
      arc.x0 = pen.x;
      arc.y0 = pen.y;
      arc.heading0 = pen.heading;
      arc.length = arc_len;
      arc.curvature = (turn == 1 ? 1.0 : -1.0) / cfg.turn_radius_m;
      segments.push_back(arc);
      pen = arc.end_pose();
      built += arc.length;
    }
  }

  Route route;
  route.path = Path(std::move(segments));
  route.speed_limit = rng.uniform(cfg.min_speed_limit, cfg.max_speed_limit);
  return route;
}

}  // namespace vehigan::sim
