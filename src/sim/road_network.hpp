#pragma once

#include "sim/path.hpp"
#include "util/rng.hpp"

namespace vehigan::sim {

/// Parameters of the synthetic urban grid used in place of the Boston SUMO
/// network. A Manhattan grid with per-street speed limits and smooth
/// quarter-circle turns reproduces the kinematic repertoire the detectors
/// see: cruising, braking into turns, turning (heading + yaw-rate episodes),
/// and accelerating out of them.
struct RoadNetworkConfig {
  int grid_cols = 8;               ///< intersections per row
  int grid_rows = 8;               ///< intersections per column
  double block_length_m = 120.0;   ///< straight distance between intersections
  double turn_radius_m = 8.0;      ///< quarter-circle corner radius
  double min_speed_limit = 8.0;    ///< slowest street [m/s]
  double max_speed_limit = 16.0;   ///< fastest street [m/s]
  double p_straight = 0.5;         ///< route choice probabilities at corners
  double p_left = 0.25;
  double p_right = 0.25;
};

/// A generated route: the geometric path plus the per-meter speed limit
/// profile (piecewise constant per block; we simplify to one limit per route
/// drawn from the street-limit range, which preserves cross-vehicle speed
/// diversity without per-edge bookkeeping).
struct Route {
  Path path;
  double speed_limit = 13.0;  ///< [m/s]
};

/// Synthetic grid road network + random route generator.
class RoadNetwork {
 public:
  explicit RoadNetwork(RoadNetworkConfig config) : config_(config) {}

  [[nodiscard]] const RoadNetworkConfig& config() const { return config_; }

  /// Generates a random route of at least `min_length_m` meters starting at a
  /// random intersection with a random cardinal heading. Turns are smooth
  /// arcs; straights are full blocks. Routes stay inside the grid by turning
  /// away from the boundary when necessary.
  [[nodiscard]] Route random_route(util::Rng& rng, double min_length_m) const;

 private:
  RoadNetworkConfig config_;
};

}  // namespace vehigan::sim
