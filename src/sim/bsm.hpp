#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace vehigan::sim {

/// A Basic Safety Message (SAE J2735) restricted to the core kinematic fields
/// the paper's detectors consume (Table II). Transmitted every 100 ms by each
/// vehicle. Units: meters, m/s, m/s^2, radians (heading in [0, 2*pi),
/// measured from +X counter-clockwise), rad/s.
struct Bsm {
  std::uint32_t vehicle_id = 0;  ///< short-term pseudonym of the sender
  double time = 0.0;             ///< transmission time [s]
  double x = 0.0;                ///< position X [m]
  double y = 0.0;                ///< position Y [m]
  double speed = 0.0;            ///< scalar speed [m/s]
  double accel = 0.0;            ///< scalar longitudinal acceleration [m/s^2]
  double heading = 0.0;          ///< heading angle [rad]
  double yaw_rate = 0.0;         ///< heading change rate [rad/s]
};

/// The continuous BSM time series of one vehicle, ordered by time.
struct VehicleTrace {
  std::uint32_t vehicle_id = 0;
  std::vector<Bsm> messages;
};

/// A full simulated dataset: one trace per vehicle.
struct BsmDataset {
  std::vector<VehicleTrace> traces;

  [[nodiscard]] std::size_t total_messages() const {
    std::size_t n = 0;
    for (const auto& t : traces) n += t.messages.size();
    return n;
  }
};

/// CSV schema used by the dataset_generator example and the VASP-style
/// dataset release: one row per BSM.
inline const std::vector<std::string>& bsm_csv_header() {
  static const std::vector<std::string> header = {
      "vehicle_id", "time", "x", "y", "speed", "accel", "heading", "yaw_rate"};
  return header;
}

/// Writes a dataset to CSV (rows ordered by vehicle, then time).
void write_bsm_csv(const BsmDataset& dataset, const std::filesystem::path& path);

/// Reads a dataset back from CSV, regrouping rows by vehicle id. Rows within
/// each vehicle keep file order (which write_bsm_csv keeps time-sorted).
BsmDataset read_bsm_csv(const std::filesystem::path& path);

}  // namespace vehigan::sim
