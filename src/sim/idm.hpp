#pragma once

#include <cmath>

namespace vehigan::sim {

/// Intelligent Driver Model (Treiber et al.) parameters. The IDM is the
/// standard car-following model in SUMO-class simulators; it yields smooth,
/// physically plausible speed/acceleration profiles.
struct IdmParams {
  double a_max = 1.8;        ///< maximum acceleration [m/s^2]
  double b_comfort = 2.2;    ///< comfortable deceleration [m/s^2]
  double min_gap = 2.0;      ///< standstill bumper gap s0 [m]
  double headway = 1.4;      ///< desired time headway T [s]
  double delta = 4.0;        ///< acceleration exponent
  double vehicle_length = 4.5;  ///< [m], used to compute net gaps
};

/// IDM longitudinal acceleration.
/// @param v        current speed [m/s]
/// @param v_desired free-flow target speed (speed limit / curve limit) [m/s]
/// @param gap      net distance to the leader [m]; +infinity when leaderless
/// @param dv       approach rate v - v_leader [m/s]; 0 when leaderless
inline double idm_acceleration(const IdmParams& p, double v, double v_desired, double gap,
                               double dv) {
  const double v0 = std::max(v_desired, 0.1);
  const double free_term = 1.0 - std::pow(std::max(v, 0.0) / v0, p.delta);
  if (!std::isfinite(gap) || gap > 1e6) {
    return p.a_max * free_term;
  }
  const double s_star =
      p.min_gap + std::max(0.0, v * p.headway + v * dv / (2.0 * std::sqrt(p.a_max * p.b_comfort)));
  const double interaction = s_star / std::max(gap, 0.1);
  return p.a_max * (free_term - interaction * interaction);
}

}  // namespace vehigan::sim
