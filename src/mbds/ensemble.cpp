#include "mbds/ensemble.hpp"

#include <stdexcept>

namespace vehigan::mbds {

VehiGan::VehiGan(std::vector<std::shared_ptr<WganDetector>> candidates, std::size_t k,
                 std::uint64_t seed)
    : candidates_(std::move(candidates)), k_(k), rng_(seed) {
  if (candidates_.empty()) throw std::invalid_argument("VehiGan: no candidates");
  if (k_ == 0 || k_ > candidates_.size()) {
    throw std::invalid_argument("VehiGan: k must be in [1, m]");
  }
}

std::string VehiGan::name() const {
  return "VehiGAN_m" + std::to_string(candidates_.size()) + "_k" + std::to_string(k_);
}

std::vector<std::size_t> VehiGan::draw_members() {
  if (k_ == candidates_.size()) {
    std::vector<std::size_t> all(candidates_.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    return all;
  }
  return rng_.sample_without_replacement(candidates_.size(), k_);
}

float VehiGan::score_with_members(std::span<const float> snapshot,
                                  std::span<const std::size_t> members) {
  double sum = 0.0;
  for (std::size_t idx : members) sum += candidates_[idx]->score(snapshot);
  return static_cast<float>(sum / static_cast<double>(members.size()));
}

float VehiGan::score(std::span<const float> snapshot) {
  const auto members = draw_members();
  return score_with_members(snapshot, members);
}

DetectionResult VehiGan::evaluate(std::span<const float> snapshot) {
  DetectionResult result;
  result.members = draw_members();
  result.score = score_with_members(snapshot, result.members);
  double tau = 0.0;
  for (std::size_t idx : result.members) tau += candidates_[idx]->threshold();
  result.threshold = tau / static_cast<double>(result.members.size());
  result.flagged = result.score > result.threshold;
  return result;
}

}  // namespace vehigan::mbds
