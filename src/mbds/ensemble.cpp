#include "mbds/ensemble.hpp"

#include <algorithm>
#include <stdexcept>

#include "mbds/provenance.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/hash.hpp"

namespace vehigan::mbds {

namespace {

struct EnsembleTelemetry {
  telemetry::Histogram& evaluate_seconds;
  telemetry::Histogram& member_score_seconds;
  telemetry::Counter& windows_total;
  telemetry::Gauge& pool_queue_depth;
  telemetry::Gauge& pool_queue_peak;

  static EnsembleTelemetry& get() {
    auto& reg = telemetry::MetricsRegistry::global();
    static EnsembleTelemetry tel{
        reg.histogram("vehigan_ensemble_evaluate_seconds"),
        reg.histogram("vehigan_ensemble_member_score_seconds"),
        reg.counter("vehigan_ensemble_windows_total"),
        reg.gauge("vehigan_ensemble_pool_queue_depth"),
        reg.gauge("vehigan_ensemble_pool_queue_peak"),
    };
    return tel;
  }
};

}  // namespace

VehiGan::VehiGan(std::vector<std::shared_ptr<WganDetector>> candidates, std::size_t k,
                 std::uint64_t seed)
    : candidates_(std::move(candidates)), k_(k), seed_(seed), rng_(seed) {
  if (candidates_.empty()) throw std::invalid_argument("VehiGan: no candidates");
  if (k_ == 0 || k_ > candidates_.size()) {
    throw std::invalid_argument("VehiGan: k must be in [1, m]");
  }
  util::Fnv1a hash;
  hash.add_pod(candidates_.size());
  hash.add_pod(k_);
  for (const auto& candidate : candidates_) hash.add_pod(candidate->model().content_hash);
  provenance_hash_ = hash.value();
  ModelProvenance::global().register_ensemble(*this);
}

std::string VehiGan::name() const {
  return "VehiGAN_m" + std::to_string(candidates_.size()) + "_k" + std::to_string(k_);
}

std::vector<std::size_t> VehiGan::draw_members(std::span<const float> snapshot) {
  if (k_ == candidates_.size()) {
    std::vector<std::size_t> all(candidates_.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    return all;
  }
  if (subset_draw_ == SubsetDraw::kContentKeyed) {
    // One throwaway Rng per prediction, seeded by (ensemble seed, window
    // bytes): a pure function of the input, so the draw is the same no
    // matter when, where, or in which batch this window is scored.
    util::Fnv1a hash;
    hash.add_pod(seed_);
    hash.add_bytes(snapshot.data(), snapshot.size_bytes());
    util::Rng keyed(hash.value());
    return keyed.sample_without_replacement(candidates_.size(), k_);
  }
  return rng_.sample_without_replacement(candidates_.size(), k_);
}

float VehiGan::score_with_members(std::span<const float> snapshot,
                                  std::span<const std::size_t> members) {
  double sum = 0.0;
  for (std::size_t idx : members) sum += candidates_[idx]->score(snapshot);
  return static_cast<float>(sum / static_cast<double>(members.size()));
}

float VehiGan::score(std::span<const float> snapshot) {
  const auto members = draw_members(snapshot);
  return score_with_members(snapshot, members);
}

DetectionResult VehiGan::evaluate(std::span<const float> snapshot) {
  DetectionResult result;
  result.members = draw_members(snapshot);
  // Per-member scores are kept (not just their mean) so the ensemble-health
  // tap sees per-critic distributions and disagreement for free. The
  // ensemble score accumulates in drawn-member order, exactly as
  // score_with_members does, so scores stay bit-identical to score().
  result.member_scores.reserve(result.members.size());
  double sum = 0.0;
  double tau = 0.0;
  for (std::size_t idx : result.members) {
    const float s = candidates_[idx]->score(snapshot);
    result.member_scores.push_back(s);
    sum += s;
    tau += candidates_[idx]->threshold();
  }
  const auto k = static_cast<double>(result.members.size());
  result.score = static_cast<float>(sum / k);
  result.threshold = tau / k;
  result.flagged = result.score > result.threshold;
  const auto [lo, hi] =
      std::minmax_element(result.member_scores.begin(), result.member_scores.end());
  result.spread = *hi - *lo;
  return result;
}

std::vector<DetectionResult> VehiGan::evaluate_all(const features::WindowSet& windows) {
  const std::size_t n = windows.count();
  std::vector<DetectionResult> results(n);
  if (n == 0) return results;

  EnsembleTelemetry& tel = EnsembleTelemetry::get();
  telemetry::ScopedSpan eval_span(tel.evaluate_seconds, "ensemble_evaluate");
  tel.windows_total.add(n);

  // Draw every subset up front, one draw_members() per window in window
  // order — the exact RNG consumption of the sequential evaluate() loop, so
  // Fig. 7-style runs reproduce regardless of which path scored them. (In
  // content-keyed mode the draw only reads the window bytes and consumes no
  // shared RNG at all.)
  std::vector<std::vector<std::size_t>> subsets;
  subsets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) subsets.push_back(draw_members(windows.snapshot(i)));

  // Invert into per-member window lists (ascending, since windows are
  // visited in order) for the batched per-member forwards.
  std::vector<std::vector<std::size_t>> member_rows(candidates_.size());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t idx : subsets[i]) member_rows[idx].push_back(i);
  }

  // scores[member][j] = calibrated score of window member_rows[member][j].
  // Each task writes only its own member's slot, so the fan-out needs no
  // synchronization beyond parallel_for's join.
  std::vector<std::vector<float>> scores(candidates_.size());
  const std::size_t stride = windows.values_per_window();
  auto score_member = [&](std::size_t member) {
    const std::vector<std::size_t>& rows = member_rows[member];
    if (rows.empty()) return;
    telemetry::ScopedSpan member_span(tel.member_score_seconds, "member_score");
    WganDetector& det = *candidates_[member];
    // Gather this member's windows into one packed buffer.
    std::vector<float> packed(rows.size() * stride);
    for (std::size_t j = 0; j < rows.size(); ++j) {
      const auto snap = windows.snapshot(rows[j]);
      std::copy(snap.begin(), snap.end(), packed.begin() + j * stride);
    }
    // Per-task critic clone: forward mutates per-layer caches, and the same
    // detector may be shared with other ensembles or scored concurrently.
    nn::Sequential critic = det.model().discriminator.clone();
    std::vector<float> out;
    out.reserve(rows.size());
    for (std::size_t begin = 0; begin < rows.size(); begin += WganDetector::kMaxBatch) {
      const std::size_t chunk = std::min(WganDetector::kMaxBatch, rows.size() - begin);
      const std::vector<float> d = nn::forward_scalars(
          critic, std::span<const float>(packed).subspan(begin * stride, chunk * stride), chunk,
          det.window(), det.width());
      for (float v : d) out.push_back(det.calibrated(-v));
    }
    scores[member] = std::move(out);
  };
  if (pool_) {
    // Sample the pool's backlog as the fan-out is dispatched: queue depth
    // right before this batch's tasks are queued (other users' load), plus
    // the lifetime high-water mark after the join.
    tel.pool_queue_depth.set(static_cast<double>(pool_->queue_depth()));
    pool_->parallel_for(candidates_.size(), score_member);
    tel.pool_queue_peak.set(static_cast<double>(pool_->peak_queue_depth()));
  } else {
    for (std::size_t member = 0; member < candidates_.size(); ++member) score_member(member);
  }

  // Recombine per window. Windows ascend, and each member_rows list ascends,
  // so a cursor per member walks its score vector in lockstep. Accumulation
  // runs in drawn-member order, matching score_with_members bit-for-bit.
  std::vector<std::size_t> cursor(candidates_.size(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    DetectionResult& result = results[i];
    result.members = std::move(subsets[i]);
    result.member_scores.reserve(result.members.size());
    double sum = 0.0;
    double tau = 0.0;
    for (std::size_t idx : result.members) {
      const float s = scores[idx][cursor[idx]++];
      result.member_scores.push_back(s);
      sum += s;
      tau += candidates_[idx]->threshold();
    }
    const auto k = static_cast<double>(result.members.size());
    result.score = static_cast<float>(sum / k);
    result.threshold = tau / k;
    result.flagged = result.score > result.threshold;
    const auto [lo, hi] =
        std::minmax_element(result.member_scores.begin(), result.member_scores.end());
    result.spread = *hi - *lo;
  }
  return results;
}

std::vector<float> VehiGan::score_all(const features::WindowSet& windows) {
  std::vector<DetectionResult> results = evaluate_all(windows);
  std::vector<float> scores;
  scores.reserve(results.size());
  for (const DetectionResult& r : results) scores.push_back(r.score);
  return scores;
}

}  // namespace vehigan::mbds
