#include "mbds/ensemble_health.hpp"

#include <bit>
#include <string>

#include "telemetry/exporter.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/statusz.hpp"

namespace vehigan::mbds {

namespace {

void add_double(std::atomic<std::uint64_t>& bits, double delta) {
  std::uint64_t old = bits.load(std::memory_order_relaxed);
  while (!bits.compare_exchange_weak(
      old, std::bit_cast<std::uint64_t>(std::bit_cast<double>(old) + delta),
      std::memory_order_relaxed)) {
  }
}

void max_double(std::atomic<std::uint64_t>& bits, double v) {
  std::uint64_t old = bits.load(std::memory_order_relaxed);
  while (std::bit_cast<double>(old) < v &&
         !bits.compare_exchange_weak(old, std::bit_cast<std::uint64_t>(v),
                                     std::memory_order_relaxed)) {
  }
}

void min_double(std::atomic<std::uint64_t>& bits, double v) {
  std::uint64_t old = bits.load(std::memory_order_relaxed);
  while (std::bit_cast<double>(old) > v &&
         !bits.compare_exchange_weak(old, std::bit_cast<std::uint64_t>(v),
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

EnsembleHealth& EnsembleHealth::global() {
  static EnsembleHealth health;
  return health;
}

EnsembleHealth::EnsembleHealth() {
  // Seed min/max so the first observation wins both races.
  for (Slot& slot : slots_) {
    slot.min_bits.store(std::bit_cast<std::uint64_t>(1e300), std::memory_order_relaxed);
    slot.max_bits.store(std::bit_cast<std::uint64_t>(-1e300), std::memory_order_relaxed);
  }
  statusz_section_ = telemetry::Statusz::global().register_section(
      "ensemble", [this](telemetry::StatuszWriter& w) {
        const Snapshot snap = snapshot();
        w.kv("windows", snap.windows);
        w.kv("critics", static_cast<std::uint64_t>(snap.critics.size()));
        w.kv("spread_mean", snap.spread_mean);
        w.kv("spread_max", snap.spread_max);
        if (snap.overflow != 0) w.kv("overflow_members", snap.overflow);
        for (std::size_t i = 0; i < snap.critics.size(); ++i) {
          const CriticStats& c = snap.critics[i];
          if (c.contributions == 0) continue;
          w.line("critic[" + std::to_string(i) +
                 "] windows=" + std::to_string(c.contributions) +
                 " mean=" + telemetry::format_double(c.mean) +
                 " min=" + telemetry::format_double(c.min) +
                 " max=" + telemetry::format_double(c.max));
        }
      });
}

void EnsembleHealth::observe(const DetectionResult& result) {
  if (result.member_scores.size() != result.members.size() || result.members.empty()) return;
  windows_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t j = 0; j < result.members.size(); ++j) {
    const std::size_t idx = result.members[j];
    if (idx >= kMaxCritics) {
      overflow_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const auto score = static_cast<double>(result.member_scores[j]);
    Slot& slot = slots_[idx];
    slot.count.fetch_add(1, std::memory_order_relaxed);
    add_double(slot.sum_bits, score);
    min_double(slot.min_bits, score);
    max_double(slot.max_bits, score);
  }
  const auto spread = static_cast<double>(result.spread);
  spread_count_.fetch_add(1, std::memory_order_relaxed);
  add_double(spread_sum_bits_, spread);
  max_double(spread_max_bits_, spread);
}

void EnsembleHealth::publish_metrics() {
  // One publisher at a time; a concurrent caller's refresh is redundant.
  if (publishing_.exchange(true, std::memory_order_acquire)) return;
  // Handles cached across calls: the registry lookup (mutex) runs once per
  // live slot for the process lifetime, then refreshes are plain stores.
  struct CriticGauges {
    telemetry::Gauge* contributions = nullptr;
    telemetry::Gauge* mean = nullptr;
    telemetry::Gauge* min = nullptr;
    telemetry::Gauge* max = nullptr;
  };
  static CriticGauges cache[kMaxCritics];
  auto& reg = telemetry::MetricsRegistry::global();
  static telemetry::Gauge& spread_mean = reg.gauge("vehigan_mbds_critic_spread_mean");
  static telemetry::Gauge& spread_max = reg.gauge("vehigan_mbds_critic_spread_max");

  const Snapshot snap = snapshot();
  for (std::size_t i = 0; i < snap.critics.size(); ++i) {
    const CriticStats& c = snap.critics[i];
    if (c.contributions == 0) continue;
    CriticGauges& g = cache[i];
    if (g.contributions == nullptr) {
      const std::string prefix = "vehigan_mbds_critic_" + std::to_string(i);
      g.contributions = &reg.gauge(prefix + "_contributions");
      g.mean = &reg.gauge(prefix + "_score_mean");
      g.min = &reg.gauge(prefix + "_score_min");
      g.max = &reg.gauge(prefix + "_score_max");
    }
    g.contributions->set(static_cast<double>(c.contributions));
    g.mean->set(c.mean);
    g.min->set(c.min);
    g.max->set(c.max);
  }
  spread_mean.set(snap.spread_mean);
  spread_max.set(snap.spread_max);
  publishing_.store(false, std::memory_order_release);
}

EnsembleHealth::Snapshot EnsembleHealth::snapshot() const {
  Snapshot snap;
  snap.windows = windows_.load(std::memory_order_relaxed);
  snap.overflow = overflow_.load(std::memory_order_relaxed);
  std::size_t live = 0;
  for (std::size_t i = 0; i < kMaxCritics; ++i) {
    if (slots_[i].count.load(std::memory_order_relaxed) != 0) live = i + 1;
  }
  snap.critics.resize(live);
  for (std::size_t i = 0; i < live; ++i) {
    const Slot& slot = slots_[i];
    CriticStats& c = snap.critics[i];
    c.contributions = slot.count.load(std::memory_order_relaxed);
    if (c.contributions == 0) continue;
    c.mean = std::bit_cast<double>(slot.sum_bits.load(std::memory_order_relaxed)) /
             static_cast<double>(c.contributions);
    c.min = std::bit_cast<double>(slot.min_bits.load(std::memory_order_relaxed));
    c.max = std::bit_cast<double>(slot.max_bits.load(std::memory_order_relaxed));
  }
  const std::uint64_t spreads = spread_count_.load(std::memory_order_relaxed);
  if (spreads != 0) {
    snap.spread_mean =
        std::bit_cast<double>(spread_sum_bits_.load(std::memory_order_relaxed)) /
        static_cast<double>(spreads);
    snap.spread_max = std::bit_cast<double>(spread_max_bits_.load(std::memory_order_relaxed));
  }
  return snap;
}

void EnsembleHealth::reset() {
  for (Slot& slot : slots_) {
    slot.count.store(0, std::memory_order_relaxed);
    slot.sum_bits.store(0, std::memory_order_relaxed);
    slot.min_bits.store(std::bit_cast<std::uint64_t>(1e300), std::memory_order_relaxed);
    slot.max_bits.store(std::bit_cast<std::uint64_t>(-1e300), std::memory_order_relaxed);
  }
  windows_.store(0, std::memory_order_relaxed);
  overflow_.store(0, std::memory_order_relaxed);
  spread_sum_bits_.store(0, std::memory_order_relaxed);
  spread_count_.store(0, std::memory_order_relaxed);
  spread_max_bits_.store(0, std::memory_order_relaxed);
}

}  // namespace vehigan::mbds
