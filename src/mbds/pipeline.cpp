#include "mbds/pipeline.hpp"

#include <stdexcept>

#include "util/logging.hpp"

namespace vehigan::mbds {

VehiGanBundle::VehiGanBundle(std::vector<std::shared_ptr<WganDetector>> detectors,
                             std::vector<ModelEvaluation> evaluations,
                             std::vector<std::size_t> ranking)
    : detectors_(std::move(detectors)),
      evaluations_(std::move(evaluations)),
      ranking_(std::move(ranking)) {}

std::unique_ptr<VehiGan> VehiGanBundle::make_ensemble(std::size_t m, std::size_t k,
                                                      std::uint64_t seed) const {
  if (m == 0 || m > ranking_.size()) {
    throw std::invalid_argument("make_ensemble: m must be in [1, " +
                                std::to_string(ranking_.size()) + "]");
  }
  std::vector<std::shared_ptr<WganDetector>> members;
  members.reserve(m);
  for (std::size_t rank = 0; rank < m; ++rank) members.push_back(top(rank));
  return std::make_unique<VehiGan>(std::move(members), k, seed);
}

VehiGanBundle build_bundle(std::vector<gan::TrainedWgan> models,
                           const features::WindowSet& benign_train_windows,
                           const ValidationSet& validation, const VehiGanBuildOptions& options) {
  std::vector<std::shared_ptr<WganDetector>> detectors;
  detectors.reserve(models.size());
  for (auto& model : models) {
    detectors.push_back(std::make_shared<WganDetector>(std::move(model)));
  }

  // Calibrate each member on its benign training scores, then set its
  // threshold as the p-th percentile of the calibrated scores (Sec. III-F).
  for (const auto& detector : detectors) {
    const std::vector<float> raw = detector->score_all(benign_train_windows);
    detector->calibrate(raw);
    std::vector<float> calibrated(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      calibrated[i] = static_cast<float>((raw[i] - detector->calibration_mean()) /
                                         detector->calibration_std());
    }
    detector->set_threshold(
        percentile_threshold(calibrated, options.threshold_percentile));
  }

  util::log_info("pre-evaluating ", detectors.size(), " WGANs on ", validation.attacks.size(),
                 " validation attacks");
  std::vector<ModelEvaluation> evaluations = pre_evaluate(detectors, validation);
  std::vector<std::size_t> ranking = select_top_m(evaluations, detectors.size());
  // Keep the full ranking in the bundle; top_m only caps ensemble creation,
  // and callers can still inspect the full table.
  if (options.top_m < ranking.size()) {
    // Ranking is complete; make_ensemble enforces m <= ranking size. Nothing
    // to trim here — top_m is advisory documentation of the paper's default.
  }
  return VehiGanBundle(std::move(detectors), std::move(evaluations), std::move(ranking));
}

}  // namespace vehigan::mbds
