#pragma once

#include <memory>

#include "mbds/wgan_detector.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace vehigan::mbds {

/// Outcome of one ensemble evaluation, including the thresholds of the
/// members drawn for this prediction.
struct DetectionResult {
  float score = 0.0F;       ///< ensembled anomaly score s_ens = -mean D_i(x)
  double threshold = 0.0;   ///< mean threshold of the k deployed members
  bool flagged = false;     ///< score > threshold
  std::vector<std::size_t> members;  ///< candidate indices used
  /// Calibrated per-member scores, index-parallel to `members`. The ensemble
  /// score is their mean; the per-member view feeds the ensemble-health tap
  /// (per-critic distributions, inter-critic disagreement) without a second
  /// forward pass.
  std::vector<float> member_scores;
  /// Inter-critic disagreement of this prediction's k-subset:
  /// max(member_scores) - min(member_scores). 0 when k == 1.
  float spread = 0.0F;
};

/// How the per-prediction k-subset is drawn. The choice changes *which*
/// members score a given window, never how a drawn subset is scored.
enum class SubsetDraw {
  /// One draw from the ensemble's sequential RNG per prediction, in call
  /// order (the paper's semantics, and the default). Subset sequences are
  /// reproducible for a fixed global evaluation order, but a window's subset
  /// depends on how many predictions preceded it.
  kSequentialRng,
  /// Subset = f(seed, window bytes): the draw is keyed by an FNV-1a hash of
  /// the snapshot contents, so identical windows always deploy identical
  /// subsets regardless of arrival interleaving, batching, or which service
  /// shard scores them. This is what lets `serve::DetectionService` promise
  /// per-sender verdict sequences that are invariant under re-sharding. The
  /// defense property is preserved: subsets still vary unpredictably across
  /// windows (any input change reshuffles the draw), and an attacker without
  /// the seed cannot predict the deployed subset.
  kContentKeyed,
};

/// VEHIGAN_m^k (Sec. III-A2/III-F): the ensemble detector over m candidate
/// WGAN critics, of which a *fresh random subset of k* is deployed on every
/// prediction. The subset re-randomization is part of the defense — it is
/// what defeats single-model (gray-box) adversarial transfer in Fig. 7a.
///
/// Thresholding: each member carries its own percentile threshold; the
/// ensemble threshold for a prediction is the mean of the drawn members'
/// thresholds (Sec. III-F).
class VehiGan : public AnomalyDetector {
 public:
  /// @param candidates top-m detectors selected by ADS (with thresholds set)
  /// @param k          members deployed per prediction, 1 <= k <= m
  /// @param seed       seed of the per-prediction subset sampler
  VehiGan(std::vector<std::shared_ptr<WganDetector>> candidates, std::size_t k,
          std::uint64_t seed);

  [[nodiscard]] std::string name() const override;

  /// Anomaly score with a fresh random k-subset (use evaluate() when the
  /// matching threshold is also needed).
  float score(std::span<const float> snapshot) override;

  /// Full detection decision: draws k members, averages scores and
  /// thresholds, and applies s > tau.
  DetectionResult evaluate(std::span<const float> snapshot);

  /// Batched bulk scoring. Subsets are drawn per window in window order —
  /// exactly the RNG consumption of calling score() in a loop, so the
  /// per-prediction member sequence (and every score) matches the sequential
  /// path bit-for-bit. Member critics run batched, fanned out across the
  /// thread pool when one is set.
  std::vector<float> score_all(const features::WindowSet& windows) override;

  /// Batched analogue of calling evaluate() on every window; same
  /// subset-sequence guarantee as score_all().
  std::vector<DetectionResult> evaluate_all(const features::WindowSet& windows);

  /// Optional worker pool for the per-member fan-out in score_all /
  /// evaluate_all. Each member task operates on its own clone of the member's
  /// critic (Sequential forward mutates per-layer caches, and detectors may
  /// be shared between ensembles), so the fan-out is data-race free. Without
  /// a pool the batched path runs inline on the calling thread.
  void set_thread_pool(std::shared_ptr<util::ThreadPool> pool) { pool_ = std::move(pool); }
  [[nodiscard]] const std::shared_ptr<util::ThreadPool>& thread_pool() const { return pool_; }

  /// Selects the subset-draw mode (see SubsetDraw). Switch before the first
  /// prediction: changing it mid-stream changes which members later windows
  /// deploy (but never corrupts state).
  void set_subset_draw(SubsetDraw mode) { subset_draw_ = mode; }
  [[nodiscard]] SubsetDraw subset_draw() const { return subset_draw_; }

  /// Deterministic scoring with an explicit member subset (used by the
  /// white-box multi-model attacker and by tests).
  float score_with_members(std::span<const float> snapshot,
                           std::span<const std::size_t> members);

  [[nodiscard]] std::size_t m() const { return candidates_.size(); }
  [[nodiscard]] std::size_t k() const { return k_; }
  [[nodiscard]] const std::vector<std::shared_ptr<WganDetector>>& candidates() const {
    return candidates_;
  }

  /// Provenance identity of the deployed ensemble: FNV-1a over (m, k) and
  /// every candidate's checkpoint content hash *in candidate order*.
  /// Computed once at construction; stamped into MisbehaviorReport.model_hash
  /// so a verdict names exactly the weights that produced it. Two shards
  /// built from the same candidate list report the same hash.
  [[nodiscard]] std::uint64_t provenance_hash() const { return provenance_hash_; }

 private:
  std::vector<std::size_t> draw_members(std::span<const float> snapshot);

  std::vector<std::shared_ptr<WganDetector>> candidates_;
  std::size_t k_;
  std::uint64_t provenance_hash_ = 0;
  std::uint64_t seed_;
  util::Rng rng_;
  SubsetDraw subset_draw_ = SubsetDraw::kSequentialRng;
  std::shared_ptr<util::ThreadPool> pool_;
};

}  // namespace vehigan::mbds
