#include "mbds/pre_evaluation.hpp"

#include <algorithm>
#include <numeric>

#include "metrics/roc.hpp"

namespace vehigan::mbds {

std::vector<ModelEvaluation> pre_evaluate(
    const std::vector<std::shared_ptr<WganDetector>>& detectors,
    const ValidationSet& validation, DetectionScoreMetric metric) {
  std::vector<ModelEvaluation> evaluations;
  evaluations.reserve(detectors.size());
  for (const auto& detector : detectors) {
    ModelEvaluation eval;
    eval.model_id = detector->model().config.id;
    eval.model_name = detector->name();
    const std::vector<float> benign_scores = detector->score_all(validation.benign_windows);
    double sum = 0.0;
    for (const auto& scenario : validation.attacks) {
      const std::vector<float> attack_scores = detector->score_all(scenario.malicious_windows);
      const double ds = metric == DetectionScoreMetric::kAuroc
                            ? metrics::auroc(benign_scores, attack_scores)
                            : metrics::auprc(benign_scores, attack_scores);
      eval.per_attack_score.push_back(ds);
      sum += ds;
    }
    eval.ads = validation.attacks.empty()
                   ? 0.0
                   : sum / static_cast<double>(validation.attacks.size());
    evaluations.push_back(std::move(eval));
  }
  return evaluations;
}

std::vector<std::size_t> select_top_m(const std::vector<ModelEvaluation>& evaluations,
                                      std::size_t m) {
  std::vector<std::size_t> order(evaluations.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (evaluations[a].ads != evaluations[b].ads) return evaluations[a].ads > evaluations[b].ads;
    return evaluations[a].model_id < evaluations[b].model_id;
  });
  order.resize(std::min(m, order.size()));
  return order;
}

}  // namespace vehigan::mbds
