#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "sim/bsm.hpp"

namespace vehigan::mbds {

/// Misbehavior report (MBR, Sec. I/III-F): when the ensemble flags a
/// vehicle, the ego/RSU sends the evidence — the offending BSM window and
/// the scores — to the Misbehavior Authority.
struct MisbehaviorReport {
  std::uint32_t reporter_id = 0;   ///< OBU/RSU issuing the report
  std::uint32_t suspect_id = 0;    ///< pseudonym of the flagged vehicle
  double time = 0.0;               ///< detection time [s]
  float score = 0.0F;              ///< ensembled anomaly score
  double threshold = 0.0;          ///< ensemble threshold at decision time
  std::vector<sim::Bsm> evidence;  ///< the w most recent BSMs of the suspect
  /// Causal trace id of the BSM that triggered the report
  /// (telemetry::trace_id_of(suspect_id, time)), so the MA can join a
  /// verdict back to the serving-side trace timeline. 0 = not recorded
  /// (e.g. decoded from a pre-trace record).
  std::uint64_t trace_id = 0;
  /// Provenance of the decision: VehiGan::provenance_hash() of the ensemble
  /// that scored this window (FNV-1a over m, k, and every candidate's
  /// checkpoint content hash). 0 = not recorded (legacy record).
  std::uint64_t model_hash = 0;
  /// Inter-critic disagreement of the flagging prediction's k-subset
  /// (DetectionResult::spread). 0 when not recorded or k == 1.
  float critic_spread = 0.0F;
};

/// Misbehavior Authority (MA) model: the SCMS component that collects MBRs,
/// investigates, and revokes credentials by putting repeat offenders on the
/// certificate revocation list (CRL).
///
/// Memory contract: by default every submitted report (evidence included)
/// is retained forever — fine for bounded simulations, unbounded for a
/// long-lived authority fed by a serving stack. `set_retention` caps the
/// stored log; revocation counting is kept in a separate per-suspect map
/// that retention never touches, so is_revoked / report_count behave
/// identically at any cap.
class MisbehaviorAuthority {
 public:
  /// Retention cap on the stored report log. Evidence is dropped first:
  /// only the newest `max_evidence_reports` retained reports keep their BSM
  /// evidence payloads (the memory hog — ~700 bytes/report vs. ~50 for the
  /// verdict fields); beyond `max_reports` the oldest report records are
  /// dropped entirely. 0 = unbounded (the legacy default) for either knob;
  /// max_evidence_reports is clamped to max_reports when both are set.
  struct RetentionPolicy {
    std::size_t max_reports = 0;
    std::size_t max_evidence_reports = 0;
  };

  /// @param revocation_quota distinct reports required before revocation;
  ///        a small quota > 1 tolerates isolated false positives.
  explicit MisbehaviorAuthority(std::size_t revocation_quota = 3)
      : quota_(revocation_quota) {}

  /// Files a report; returns true if this report triggered revocation.
  bool submit(const MisbehaviorReport& report);

  /// Installs the retention cap and applies it to the already-stored log.
  void set_retention(RetentionPolicy policy);
  [[nodiscard]] const RetentionPolicy& retention() const { return retention_; }
  /// Reports whose evidence was stripped by retention (lifetime tally).
  [[nodiscard]] std::uint64_t evidence_dropped() const { return evidence_dropped_; }
  /// Report records dropped entirely by retention (lifetime tally).
  [[nodiscard]] std::uint64_t reports_dropped() const { return reports_dropped_; }

  [[nodiscard]] bool is_revoked(std::uint32_t vehicle_id) const {
    return revoked_.contains(vehicle_id);
  }

  [[nodiscard]] const std::set<std::uint32_t>& revocation_list() const { return revoked_; }
  [[nodiscard]] std::size_t report_count(std::uint32_t vehicle_id) const;
  [[nodiscard]] const std::deque<MisbehaviorReport>& reports() const { return reports_; }

 private:
  void apply_retention();

  std::size_t quota_;
  RetentionPolicy retention_;
  std::deque<MisbehaviorReport> reports_;
  /// Index into reports_ of the oldest report that still holds evidence
  /// (everything before it was stripped). Monotone per-element: evidence is
  /// stripped oldest-first and never restored, so this cursor only needs to
  /// advance as old entries fall off the front.
  std::size_t evidence_begin_ = 0;
  std::uint64_t evidence_dropped_ = 0;
  std::uint64_t reports_dropped_ = 0;
  std::map<std::uint32_t, std::size_t> counts_;
  std::set<std::uint32_t> revoked_;
};

}  // namespace vehigan::mbds
