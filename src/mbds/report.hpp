#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "sim/bsm.hpp"

namespace vehigan::mbds {

/// Misbehavior report (MBR, Sec. I/III-F): when the ensemble flags a
/// vehicle, the ego/RSU sends the evidence — the offending BSM window and
/// the scores — to the Misbehavior Authority.
struct MisbehaviorReport {
  std::uint32_t reporter_id = 0;   ///< OBU/RSU issuing the report
  std::uint32_t suspect_id = 0;    ///< pseudonym of the flagged vehicle
  double time = 0.0;               ///< detection time [s]
  float score = 0.0F;              ///< ensembled anomaly score
  double threshold = 0.0;          ///< ensemble threshold at decision time
  std::vector<sim::Bsm> evidence;  ///< the w most recent BSMs of the suspect
  /// Causal trace id of the BSM that triggered the report
  /// (telemetry::trace_id_of(suspect_id, time)), so the MA can join a
  /// verdict back to the serving-side trace timeline. 0 = not recorded
  /// (e.g. decoded from a pre-trace record).
  std::uint64_t trace_id = 0;
};

/// Misbehavior Authority (MA) model: the SCMS component that collects MBRs,
/// investigates, and revokes credentials by putting repeat offenders on the
/// certificate revocation list (CRL).
class MisbehaviorAuthority {
 public:
  /// @param revocation_quota distinct reports required before revocation;
  ///        a small quota > 1 tolerates isolated false positives.
  explicit MisbehaviorAuthority(std::size_t revocation_quota = 3)
      : quota_(revocation_quota) {}

  /// Files a report; returns true if this report triggered revocation.
  bool submit(const MisbehaviorReport& report);

  [[nodiscard]] bool is_revoked(std::uint32_t vehicle_id) const {
    return revoked_.contains(vehicle_id);
  }

  [[nodiscard]] const std::set<std::uint32_t>& revocation_list() const { return revoked_; }
  [[nodiscard]] std::size_t report_count(std::uint32_t vehicle_id) const;
  [[nodiscard]] const std::vector<MisbehaviorReport>& reports() const { return reports_; }

 private:
  std::size_t quota_;
  std::vector<MisbehaviorReport> reports_;
  std::map<std::uint32_t, std::size_t> counts_;
  std::set<std::uint32_t> revoked_;
};

}  // namespace vehigan::mbds
