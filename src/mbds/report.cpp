#include "mbds/report.hpp"

namespace vehigan::mbds {

bool MisbehaviorAuthority::submit(const MisbehaviorReport& report) {
  reports_.push_back(report);
  const std::size_t count = ++counts_[report.suspect_id];
  if (count >= quota_ && !revoked_.contains(report.suspect_id)) {
    revoked_.insert(report.suspect_id);
    return true;
  }
  return false;
}

std::size_t MisbehaviorAuthority::report_count(std::uint32_t vehicle_id) const {
  const auto it = counts_.find(vehicle_id);
  return it == counts_.end() ? 0 : it->second;
}

}  // namespace vehigan::mbds
