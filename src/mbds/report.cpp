#include "mbds/report.hpp"

#include <algorithm>

namespace vehigan::mbds {

bool MisbehaviorAuthority::submit(const MisbehaviorReport& report) {
  reports_.push_back(report);
  apply_retention();
  const std::size_t count = ++counts_[report.suspect_id];
  if (count >= quota_ && !revoked_.contains(report.suspect_id)) {
    revoked_.insert(report.suspect_id);
    return true;
  }
  return false;
}

void MisbehaviorAuthority::set_retention(RetentionPolicy policy) {
  if (policy.max_reports != 0 && policy.max_evidence_reports != 0) {
    policy.max_evidence_reports = std::min(policy.max_evidence_reports, policy.max_reports);
  }
  retention_ = policy;
  apply_retention();
}

void MisbehaviorAuthority::apply_retention() {
  // Evidence first: strip BSM payloads from the oldest reports until only
  // the newest max_evidence_reports still carry theirs. The verdict fields
  // (suspect, score, threshold, model hash, trace) stay queryable.
  if (retention_.max_evidence_reports != 0) {
    while (reports_.size() - evidence_begin_ > retention_.max_evidence_reports) {
      MisbehaviorReport& oldest = reports_[evidence_begin_++];
      if (!oldest.evidence.empty()) {
        oldest.evidence.clear();
        oldest.evidence.shrink_to_fit();
        ++evidence_dropped_;
      }
    }
  }
  // Then whole records. counts_/revoked_ are deliberately untouched:
  // revocation is driven by the per-suspect tally, not the stored log.
  if (retention_.max_reports != 0) {
    while (reports_.size() > retention_.max_reports) {
      reports_.pop_front();
      if (evidence_begin_ > 0) --evidence_begin_;
      ++reports_dropped_;
    }
  }
}

std::size_t MisbehaviorAuthority::report_count(std::uint32_t vehicle_id) const {
  const auto it = counts_.find(vehicle_id);
  return it == counts_.end() ? 0 : it->second;
}

}  // namespace vehigan::mbds
