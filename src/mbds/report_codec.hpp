#pragma once

#include <string>

#include "mbds/report.hpp"

namespace vehigan::mbds {

/// Wire encoding of misbehavior reports (the MBR protocol of Sec. I/II):
/// the OBU/RSU serializes the report — scores, thresholds, and the full BSM
/// evidence window — as a JSON document for submission to the Misbehavior
/// Authority, which deserializes and re-validates it. JSON keeps the
/// evidence human-auditable, matching how MBR drafts structure reports.
std::string encode_report(const MisbehaviorReport& report);

/// Parses a report; throws std::runtime_error / std::out_of_range on
/// malformed or incomplete documents.
MisbehaviorReport decode_report(const std::string& text);

}  // namespace vehigan::mbds
