#include "mbds/provenance.hpp"

#include "mbds/ensemble.hpp"
#include "telemetry/exporter.hpp"
#include "telemetry/statusz.hpp"

namespace vehigan::mbds {

std::string provenance_hex(std::uint64_t hash) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string hex(16, '0');
  for (int i = 15; i >= 0; --i) {
    hex[static_cast<std::size_t>(i)] = kDigits[hash & 0xF];
    hash >>= 4;
  }
  return hex;
}

ModelProvenance& ModelProvenance::global() {
  static ModelProvenance provenance;
  return provenance;
}

ModelProvenance::ModelProvenance() {
  statusz_section_ = telemetry::Statusz::global().register_section(
      "models", [this](telemetry::StatuszWriter& w) {
        const std::vector<EnsembleInfo> ensembles = snapshot();
        w.kv("ensembles", static_cast<std::uint64_t>(ensembles.size()));
        for (const EnsembleInfo& e : ensembles) {
          w.line("ensemble[" + provenance_hex(e.hash) + "] name=" + e.name +
                 " m=" + std::to_string(e.m) + " k=" + std::to_string(e.k) +
                 " instances=" + std::to_string(e.instances));
          for (std::size_t i = 0; i < e.candidates.size(); ++i) {
            const CandidateInfo& c = e.candidates[i];
            w.line("  candidate[" + std::to_string(i) + "] name=" + c.name +
                   " hash=" + provenance_hex(c.content_hash) +
                   " threshold=" + telemetry::format_double(c.threshold));
          }
        }
      });
}

void ModelProvenance::register_ensemble(const VehiGan& ensemble) {
  std::lock_guard<std::mutex> lock(mutex_);
  EnsembleInfo& info = ensembles_[ensemble.provenance_hash()];
  ++info.instances;
  if (info.instances > 1) return;  // identical build already described
  info.hash = ensemble.provenance_hash();
  info.name = ensemble.name();
  info.m = ensemble.m();
  info.k = ensemble.k();
  info.candidates.reserve(ensemble.candidates().size());
  for (const auto& candidate : ensemble.candidates()) {
    info.candidates.push_back({candidate->name(), candidate->model().content_hash,
                               candidate->threshold()});
  }
}

ModelProvenance::EnsembleInfo ModelProvenance::lookup(std::uint64_t hash) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = ensembles_.find(hash);
  return it == ensembles_.end() ? EnsembleInfo{} : it->second;
}

std::vector<ModelProvenance::EnsembleInfo> ModelProvenance::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<EnsembleInfo> out;
  out.reserve(ensembles_.size());
  for (const auto& [hash, info] : ensembles_) out.push_back(info);
  return out;
}

void ModelProvenance::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  ensembles_.clear();
}

}  // namespace vehigan::mbds
