#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "features/feature_engineering.hpp"
#include "features/scaler.hpp"
#include "features/series.hpp"
#include "features/windows.hpp"
#include "mbds/ensemble.hpp"
#include "mbds/report.hpp"
#include "telemetry/drift.hpp"

namespace vehigan::mbds {

/// The testing-phase runtime of VEHIGAN (bottom half of Fig. 2), deployable
/// on an OBU or RSU: it consumes raw BSMs vehicle by vehicle, maintains the
/// most recent w-message snapshot x_v per sender, runs the ensemble on every
/// update, and emits a MisbehaviorReport whenever s_v > tau_ens.
///
/// Memory contract: per-sender state grows with every *distinct* station id
/// ever ingested and is never released implicitly — under pseudonym churn
/// (SCMS rotation mints a fresh id every few minutes) the map grows without
/// bound. Callers owning a long-lived instance MUST run `evict_stale`
/// periodically; `serve::DetectionService` does this per shard, and
/// `examples/rsu_monitor` wires it into its replay loop. `stats()` exposes
/// the live footprint so deployments can alert on unexpected growth.
class OnlineMbds {
 public:
  using ReportSink = std::function<void(const MisbehaviorReport&)>;
  /// Observer of every scored window (flagged or not), invoked once per
  /// window in message order with the triggering BSM and the full ensemble
  /// verdict. This is the label-joining tap the scenario harness uses to
  /// compute AUROC through the serving stack: reports only exist for flagged
  /// windows, but AUROC needs the scores of both classes.
  using ScoreSink = std::function<void(const sim::Bsm&, const DetectionResult&)>;

  /// Point-in-time footprint + lifetime eviction tally of this instance.
  struct Stats {
    std::size_t tracked_vehicles = 0;   ///< senders with live buffer state
    std::size_t buffered_messages = 0;  ///< raw BSMs held across all buffers
    std::uint64_t evictions_total = 0;  ///< buffers dropped by evict_stale
  };

  /// Message-time staleness sweeping for long-lived replay/serving owners.
  /// BSM streams carry their own clock (VeReMi traces have *absolute*
  /// timestamps), so sweeps are driven by `advance_time` — never by wall
  /// time: a trace replayed at 1000x wall speed evicts exactly the same
  /// senders at exactly the same stream positions as a live run would.
  struct EvictionPolicy {
    double evict_after_s = 0.0;  ///< idle threshold in message time; <= 0 disables
    double evict_every_s = 5.0;  ///< min message-time progress between sweeps
  };

  /// Outcome of one advance_time call.
  struct SweepResult {
    bool swept = false;        ///< a sweep ran (cadence was due)
    std::size_t evicted = 0;   ///< buffers dropped by that sweep
  };

  /// @param station_id      identity of this OBU/RSU (for MBR provenance)
  /// @param detector        the deployed VEHIGAN_m^k ensemble
  /// @param scaler          the training-time min-max scaler
  /// @param report_cooldown minimum seconds between reports per suspect
  ///                        (BSMs arrive at 10 Hz; one MBR per offense burst
  ///                        is enough for the MA)
  /// @param gap_reset_s     a reception gap larger than this resets the
  ///                        vehicle's snapshot buffer: the engineered delta
  ///                        features assume consecutive 100 ms messages, so
  ///                        windows must not straddle packet-loss bursts
  OnlineMbds(std::uint32_t station_id, std::shared_ptr<VehiGan> detector,
             features::MinMaxScaler scaler, double report_cooldown = 1.0,
             double gap_reset_s = 0.25);

  /// Feeds one received BSM. Returns the report if this message triggered
  /// one (also forwarded to the sink, if set).
  std::optional<MisbehaviorReport> ingest(const sim::Bsm& message);

  /// Feeds one simulation tick's worth of BSMs at once: buffers every
  /// message, then scores all completed windows in a single batched ensemble
  /// call (VehiGan::evaluate_all), which fans the members out across the
  /// ensemble's thread pool if one is set. Reports (and sink callbacks, and
  /// cooldown bookkeeping) are emitted in message order, so the result is
  /// identical to calling ingest() per message — just one ensemble dispatch
  /// per tick instead of one per vehicle.
  std::vector<MisbehaviorReport> ingest_batch(std::span<const sim::Bsm> messages);

  /// Allocation-reusing variant for long-lived owners (the serving drain
  /// loop): appends this batch's reports to `out` (not cleared) and returns
  /// how many were appended. All window scratch — pending-window list,
  /// batched WindowSet, evidence staging — lives in member buffers whose
  /// capacity persists across calls, so a steady-state drain cycle performs
  /// no per-batch vector allocations of its own. Results are identical to
  /// the returning overload.
  std::size_t ingest_batch(std::span<const sim::Bsm> messages,
                           std::vector<MisbehaviorReport>& out);

  void set_report_sink(ReportSink sink) { sink_ = std::move(sink); }

  /// Observes every scored window. Called from `observe_result`, so it runs
  /// once per window in message order on both ingest paths — installing one
  /// cannot perturb detection results or report sequences.
  void set_score_sink(ScoreSink sink) { score_sink_ = std::move(sink); }

  /// Installs (and resets) the message-time sweep policy consumed by
  /// `advance_time`. Does not affect explicit `evict_stale` calls.
  void set_eviction_policy(EvictionPolicy policy);
  [[nodiscard]] const EvictionPolicy& eviction_policy() const { return eviction_policy_; }

  /// Advances the replay clock to `message_time` (monotonic max — late or
  /// reordered batches never move it backwards) and runs an `evict_stale`
  /// sweep when the policy's cadence is due. Call after ingesting each
  /// message/batch with the newest timestamp seen; a no-op when
  /// `evict_after_s <= 0`.
  SweepResult advance_time(double message_time);

  /// Drops per-vehicle state not updated since `before_time` (pseudonym
  /// churn / vehicles leaving range). Returns the number of buffers dropped.
  std::size_t evict_stale(double before_time);

  /// O(tracked_vehicles); meant for periodic sampling, not the per-message
  /// hot path.
  [[nodiscard]] Stats stats() const;

  /// Replaces (and resets) the score-drift monitor's tuning. Call before
  /// the first ingest; changing it mid-stream discards the learned
  /// baseline. Tests use this to shrink the warmup.
  void set_drift_config(telemetry::DriftConfig config);

  /// Streaming p50/p95/p99, EWMA drift state, and alarm counts over every
  /// window this instance has scored (see DESIGN.md Sec. 7). Instances are
  /// single-threaded (one per shard), so the monitor needs no locking.
  [[nodiscard]] const telemetry::ScoreDriftMonitor& drift_monitor() const { return drift_; }

  [[nodiscard]] std::size_t tracked_vehicles() const { return buffers_.size(); }
  [[nodiscard]] std::size_t window() const { return window_; }

 private:
  struct VehicleBuffer {
    std::deque<sim::Bsm> recent;  ///< last window_+1 raw messages
    double last_report_time = -1e18;
    double last_update_time = 0.0;
  };

  /// Buffers one message; returns the vehicle's buffer iff it now holds a
  /// complete window (window_+1 consecutive messages).
  VehicleBuffer* buffer_message(const sim::Bsm& message);

  /// Extracts + scales the engineered feature window from a full buffer
  /// into the member scratch Series (returned by reference; valid until the
  /// next call). Reuses trace/feature/series scratch capacity.
  const features::Series& snapshot_series(const VehicleBuffer& buffer);

  /// Applies the flag + cooldown decision for one scored window; emits the
  /// report (and sink callback) when it fires. `evidence` is only copied
  /// into the report when the decision actually fires.
  std::optional<MisbehaviorReport> finalize(const sim::Bsm& message, VehicleBuffer& buffer,
                                            const DetectionResult& result,
                                            std::span<const sim::Bsm> evidence);

  /// Feeds one scored window into the drift monitor and the flight
  /// recorder (score + decide events). Called once per window, in message
  /// order, by both ingest paths.
  void observe_result(const sim::Bsm& message, const DetectionResult& result);

  std::uint32_t station_id_;
  std::shared_ptr<VehiGan> detector_;
  features::MinMaxScaler scaler_;
  std::size_t window_;
  double cooldown_;
  double gap_reset_s_;
  ReportSink sink_;
  ScoreSink score_sink_;
  std::unordered_map<std::uint32_t, VehicleBuffer> buffers_;

  /// One batch-in-flight window scratch, reused across ingest/ingest_batch
  /// calls (capacity persists; contents are transient). Instances are
  /// single-threaded, so plain members suffice.
  struct PendingWindow {
    const sim::Bsm* message = nullptr;
    std::size_t evidence_offset = 0;  ///< into evidence_arena_
    std::size_t evidence_len = 0;
  };
  std::vector<PendingWindow> pending_scratch_;
  features::WindowSet ready_scratch_;
  std::vector<sim::Bsm> evidence_arena_;
  sim::VehicleTrace trace_scratch_;
  features::FeatureSeries feature_scratch_;
  features::Series series_scratch_;

  std::uint64_t evictions_total_ = 0;
  telemetry::ScoreDriftMonitor drift_;
  EvictionPolicy eviction_policy_;
  double replay_clock_ = -1e18;     ///< newest message time seen by advance_time
  double last_sweep_time_ = -1e18;  ///< replay-clock value at the last sweep
};

}  // namespace vehigan::mbds
