#pragma once

#include <memory>
#include <string>
#include <vector>

#include "features/windows.hpp"
#include "mbds/wgan_detector.hpp"

namespace vehigan::mbds {

/// Windows of one attack scenario in the validation split.
struct ValidationScenario {
  std::string attack_name;
  features::WindowSet malicious_windows;  ///< windows from attacker vehicles only
};

/// The validation dataset X_valid of Sec. III-E: benign windows plus
/// representative attack traces used to pre-evaluate candidate WGANs.
struct ValidationSet {
  features::WindowSet benign_windows;
  std::vector<ValidationScenario> attacks;
};

/// Which classifier metric serves as the detection score DS (Sec. III-E:
/// "any commonly used metric, such as AUROC, AUPRC, etc.").
enum class DetectionScoreMetric { kAuroc, kAuprc };

/// Pre-evaluation result of one WGAN (Sec. III-E).
struct ModelEvaluation {
  int model_id = 0;
  std::string model_name;
  std::vector<double> per_attack_score;  ///< DS_i^j = AUROC vs attack j
  double ads = 0.0;                      ///< average discriminative score (Eq. 4)
};

/// Computes each detector's detection score against every validation attack
/// and its ADS. `detectors` are scored in place (forward passes only).
std::vector<ModelEvaluation> pre_evaluate(
    const std::vector<std::shared_ptr<WganDetector>>& detectors, const ValidationSet& validation,
    DetectionScoreMetric metric = DetectionScoreMetric::kAuroc);

/// Indices into `evaluations` of the top-m models by ADS, descending
/// (ties broken by lower model id for determinism). m is clamped to size.
std::vector<std::size_t> select_top_m(const std::vector<ModelEvaluation>& evaluations,
                                      std::size_t m);

}  // namespace vehigan::mbds
