#include "mbds/wgan_detector.hpp"

#include "gan/model_store.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/math.hpp"

namespace vehigan::mbds {

namespace {

/// One aggregate family across all grid members: per-call latency of a
/// single model's batched scoring (the Fig. 8 quantity), not one histogram
/// per model — 60 members would blow up exposition cardinality.
struct DetectorTelemetry {
  telemetry::Histogram& score_seconds;
  telemetry::Counter& windows_total;

  static DetectorTelemetry& get() {
    auto& reg = telemetry::MetricsRegistry::global();
    static DetectorTelemetry tel{
        reg.histogram("vehigan_detector_score_seconds"),
        reg.counter("vehigan_detector_windows_total"),
    };
    return tel;
  }
};

}  // namespace

WganDetector::WganDetector(gan::TrainedWgan model) : model_(std::move(model)) {
  // Checkpoint-loaded models arrive with the stored checksum already in
  // place; in-memory models (trainer output, test fixtures) get hashed here
  // so every deployed critic carries a provenance identity.
  if (model_.content_hash == 0) model_.content_hash = gan::content_hash(model_);
}

float WganDetector::raw_score(std::span<const float> snapshot) {
  // s(x) = -D(x): the critic outputs higher values for real-looking inputs.
  return -nn::forward_scalar(model_.discriminator, snapshot, window(), width());
}

float WganDetector::score(std::span<const float> snapshot) {
  return calibrated(raw_score(snapshot));
}

std::vector<float> WganDetector::raw_score_batch(std::span<const float> data, std::size_t count) {
  const std::size_t stride = window() * width();
  std::vector<float> raw;
  raw.reserve(count);
  for (std::size_t begin = 0; begin < count; begin += kMaxBatch) {
    const std::size_t chunk = std::min(kMaxBatch, count - begin);
    const std::vector<float> d = nn::forward_scalars(
        model_.discriminator, data.subspan(begin * stride, chunk * stride), chunk, window(),
        width());
    for (float v : d) raw.push_back(-v);
  }
  return raw;
}

std::vector<float> WganDetector::score_all(const features::WindowSet& windows) {
  if (windows.window != window() || windows.width != width()) {
    throw std::invalid_argument("WganDetector::score_all: window shape " +
                                std::to_string(windows.window) + "x" +
                                std::to_string(windows.width) + " does not match model " +
                                std::to_string(window()) + "x" + std::to_string(width()));
  }
  DetectorTelemetry& tel = DetectorTelemetry::get();
  telemetry::ScopedSpan span(tel.score_seconds, "detector_score");
  tel.windows_total.add(windows.count());
  auto& recorder = telemetry::TraceRecorder::global();
  const bool tracing = recorder.enabled();
  const std::uint64_t t0 = tracing ? recorder.now_ns() : 0;
  std::vector<float> scores = raw_score_batch(windows.data, windows.count());
  for (float& s : scores) s = calibrated(s);
  if (tracing) {
    // Batch-level (one ensemble member's GEMM pass); per-message trace ids
    // attach one level up, where OnlineMbds knows the sender of each window.
    recorder.record_complete("wgan_score_all", t0, recorder.now_ns() - t0, 0, "windows",
                             windows.count());
  }
  return scores;
}

void WganDetector::calibrate(std::span<const float> benign_raw_scores) {
  std::vector<double> scores(benign_raw_scores.begin(), benign_raw_scores.end());
  cal_mean_ = util::mean(scores);
  cal_std_ = std::max(util::stddev(scores), 1e-9);
}

void WganDetector::set_calibration(double mean, double stddev) {
  cal_mean_ = mean;
  cal_std_ = std::max(stddev, 1e-9);
}

std::vector<float> WganDetector::score_gradient(std::span<const float> snapshot) {
  nn::Tensor input({1, 1, window(), width()},
                   std::vector<float>(snapshot.begin(), snapshot.end()));
  (void)model_.discriminator.forward(input);
  model_.discriminator.zero_grad();
  // d s / d D(x) = -1 in raw units; the calibration scale 1/sigma is a
  // positive constant, so it never changes the FGSM sign but keeps the
  // gradient consistent with score().
  nn::Tensor upstream({1, 1});
  upstream[0] = static_cast<float>(-1.0 / cal_std_);
  const nn::Tensor grad = model_.discriminator.backward(upstream);
  return {grad.data(), grad.data() + grad.size()};
}

}  // namespace vehigan::mbds
