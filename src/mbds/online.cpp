#include "mbds/online.hpp"

#include <bit>

#include "features/feature_engineering.hpp"
#include "features/series.hpp"
#include "mbds/ensemble_health.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "telemetry/trace_context.hpp"

namespace vehigan::mbds {

namespace {

/// Metric handles resolved once; every ingest path then touches only the
/// lock-free primitives. Span hierarchy: ingest{,_batch} -> window_build ->
/// score -> decide (DESIGN.md Sec. 7).
struct OnlineTelemetry {
  telemetry::Histogram& ingest_seconds;
  telemetry::Histogram& ingest_batch_seconds;
  telemetry::Histogram& window_build_seconds;
  telemetry::Histogram& score_seconds;
  telemetry::Histogram& decide_seconds;
  telemetry::Counter& messages_total;
  telemetry::Counter& windows_scored_total;
  telemetry::Counter& reports_total;
  telemetry::Counter& evictions_total;
  telemetry::Counter& score_drift_alarms_total;
  telemetry::Gauge& tracked_vehicles;
  telemetry::Gauge& score_p50;
  telemetry::Gauge& score_p95;
  telemetry::Gauge& score_p99;
  telemetry::Gauge& flag_rate;

  static OnlineTelemetry& get() {
    auto& reg = telemetry::MetricsRegistry::global();
    static OnlineTelemetry tel{
        reg.histogram("vehigan_mbds_ingest_seconds"),
        reg.histogram("vehigan_mbds_ingest_batch_seconds"),
        reg.histogram("vehigan_mbds_window_build_seconds"),
        reg.histogram("vehigan_mbds_score_seconds"),
        reg.histogram("vehigan_mbds_decide_seconds"),
        reg.counter("vehigan_mbds_messages_total"),
        reg.counter("vehigan_mbds_windows_scored_total"),
        reg.counter("vehigan_mbds_reports_total"),
        reg.counter("vehigan_mbds_evictions_total"),
        reg.counter("vehigan_mbds_score_drift_alarms_total"),
        reg.gauge("vehigan_mbds_tracked_vehicles"),
        reg.gauge("vehigan_mbds_score_p50"),
        reg.gauge("vehigan_mbds_score_p95"),
        reg.gauge("vehigan_mbds_score_p99"),
        reg.gauge("vehigan_mbds_flag_rate"),
    };
    return tel;
  }
};

/// Refreshes the score-distribution gauges from the drift monitor (and the
/// ensemble-health critic gauges, which share the cadence). Called once per
/// ingest()/ingest_batch(), not per window.
void publish_drift(OnlineTelemetry& tel, const telemetry::ScoreDriftMonitor& monitor) {
  const auto stats = monitor.stats();
  tel.score_p50.set(stats.p50);
  tel.score_p95.set(stats.p95);
  tel.score_p99.set(stats.p99);
  tel.flag_rate.set(stats.flag_rate_ewma);
  if (telemetry::enabled()) EnsembleHealth::global().publish_metrics();
}

}  // namespace

OnlineMbds::OnlineMbds(std::uint32_t station_id, std::shared_ptr<VehiGan> detector,
                       features::MinMaxScaler scaler, double report_cooldown,
                       double gap_reset_s)
    : station_id_(station_id),
      detector_(std::move(detector)),
      scaler_(std::move(scaler)),
      window_(detector_->candidates().front()->window()),
      cooldown_(report_cooldown),
      gap_reset_s_(gap_reset_s) {}

OnlineMbds::VehicleBuffer* OnlineMbds::buffer_message(const sim::Bsm& message) {
  VehicleBuffer& buffer = buffers_[message.vehicle_id];
  // A reception gap (packet loss, shadowing) invalidates the delta features
  // across the gap; restart the snapshot rather than score garbage.
  if (!buffer.recent.empty() &&
      message.time - buffer.recent.back().time > gap_reset_s_) {
    buffer.recent.clear();
  }
  buffer.recent.push_back(message);
  buffer.last_update_time = message.time;
  // The engineered features consume message pairs, so a w-step snapshot
  // needs w+1 raw messages.
  while (buffer.recent.size() > window_ + 1) buffer.recent.pop_front();
  return buffer.recent.size() < window_ + 1 ? nullptr : &buffer;
}

const features::Series& OnlineMbds::snapshot_series(const VehicleBuffer& buffer) {
  trace_scratch_.vehicle_id = buffer.recent.front().vehicle_id;
  trace_scratch_.messages.assign(buffer.recent.begin(), buffer.recent.end());
  features::extract_features_into(trace_scratch_, feature_scratch_);
  features::to_series_into(feature_scratch_, series_scratch_);
  scaler_.transform(series_scratch_);
  return series_scratch_;
}

std::optional<MisbehaviorReport> OnlineMbds::finalize(const sim::Bsm& message,
                                                      VehicleBuffer& buffer,
                                                      const DetectionResult& result,
                                                      std::span<const sim::Bsm> evidence) {
  if (!result.flagged) return std::nullopt;
  if (message.time - buffer.last_report_time < cooldown_) return std::nullopt;
  buffer.last_report_time = message.time;

  MisbehaviorReport report;
  report.reporter_id = station_id_;
  report.suspect_id = message.vehicle_id;
  report.time = message.time;
  report.score = result.score;
  report.threshold = result.threshold;
  report.evidence.assign(evidence.begin(), evidence.end());
  report.trace_id = telemetry::trace_id_of(message.vehicle_id, message.time);
  report.model_hash = detector_->provenance_hash();
  report.critic_spread = result.spread;
  telemetry::FlightRecorder::record(
      telemetry::FlightEventKind::kReport, message.vehicle_id, report.trace_id,
      std::bit_cast<std::uint64_t>(static_cast<double>(result.score)));
  auto& recorder = telemetry::TraceRecorder::global();
  if (recorder.sampled(message.vehicle_id)) {
    recorder.record_complete("report", recorder.now_ns(), 0, report.trace_id, "station",
                             message.vehicle_id);
  }
  if (sink_) sink_(report);
  return report;
}

void OnlineMbds::observe_result(const sim::Bsm& message, const DetectionResult& result) {
  if (score_sink_) score_sink_(message, result);
  if (!telemetry::enabled()) return;
  EnsembleHealth::global().observe(result);
  const std::uint64_t trace = telemetry::trace_id_of(message.vehicle_id, message.time);
  telemetry::FlightRecorder::record(
      telemetry::FlightEventKind::kScore, message.vehicle_id, trace,
      std::bit_cast<std::uint64_t>(static_cast<double>(result.score)));
  telemetry::FlightRecorder::record(telemetry::FlightEventKind::kDecide, message.vehicle_id,
                                    trace, result.flagged ? 1 : 0);
  if (drift_.observe(result.score, result.flagged)) {
    OnlineTelemetry::get().score_drift_alarms_total.add(1);
  }
}

std::optional<MisbehaviorReport> OnlineMbds::ingest(const sim::Bsm& message) {
  OnlineTelemetry& tel = OnlineTelemetry::get();
  telemetry::ScopedSpan ingest_span(tel.ingest_seconds, "ingest");
  tel.messages_total.add(1);

  telemetry::ScopedSpan build_span(tel.window_build_seconds, "window_build");
  VehicleBuffer* buffer = buffer_message(message);
  tel.tracked_vehicles.set(static_cast<double>(buffers_.size()));
  if (buffer == nullptr) return std::nullopt;
  const features::Series series = snapshot_series(*buffer);
  build_span.stop();

  telemetry::ScopedSpan score_span(tel.score_seconds, "score");
  auto& recorder = telemetry::TraceRecorder::global();
  const bool traced = recorder.sampled(message.vehicle_id);
  const std::uint64_t score_t0 = traced ? recorder.now_ns() : 0;
  const DetectionResult result = detector_->evaluate(series.values);
  if (traced) {
    recorder.record_complete("score", score_t0, recorder.now_ns() - score_t0,
                             telemetry::trace_id_of(message.vehicle_id, message.time),
                             "station", message.vehicle_id);
  }
  score_span.stop();
  tel.windows_scored_total.add(1);
  observe_result(message, result);

  telemetry::ScopedSpan decide_span(tel.decide_seconds, "decide");
  // trace_scratch_ still holds this window's messages (snapshot_series
  // filled it and the buffer has not advanced since) — it doubles as the
  // contiguous evidence staging, so nothing is copied unless a report fires.
  auto report = finalize(message, *buffer, result, trace_scratch_.messages);
  if (report) tel.reports_total.add(1);
  publish_drift(tel, drift_);
  return report;
}

std::vector<MisbehaviorReport> OnlineMbds::ingest_batch(std::span<const sim::Bsm> messages) {
  std::vector<MisbehaviorReport> out;
  (void)ingest_batch(messages, out);
  return out;
}

std::size_t OnlineMbds::ingest_batch(std::span<const sim::Bsm> messages,
                                     std::vector<MisbehaviorReport>& out) {
  OnlineTelemetry& tel = OnlineTelemetry::get();
  telemetry::ScopedSpan batch_span(tel.ingest_batch_seconds, "ingest_batch");
  tel.messages_total.add(messages.size());

  // Phase 1: buffer every message in arrival order, collecting each window
  // that completes. Evidence is copied into the arena at completion time: a
  // later message from the same vehicle in this batch advances the deque.
  // All three scratch structures reuse their capacity from previous batches.
  std::vector<PendingWindow>& pending = pending_scratch_;
  features::WindowSet& ready = ready_scratch_;
  pending.clear();
  ready.clear();
  evidence_arena_.clear();
  {
    telemetry::ScopedSpan build_span(tel.window_build_seconds, "window_build");
    for (const sim::Bsm& message : messages) {
      VehicleBuffer* buffer = buffer_message(message);
      if (buffer == nullptr) continue;
      const features::Series& series = snapshot_series(*buffer);
      if (ready.count() == 0) {
        ready.window = window_;
        ready.width = series.width;
      }
      ready.append(series.values, message.vehicle_id);
      const std::size_t offset = evidence_arena_.size();
      evidence_arena_.insert(evidence_arena_.end(), buffer->recent.begin(),
                             buffer->recent.end());
      pending.push_back({&message, offset, buffer->recent.size()});
    }
  }
  tel.tracked_vehicles.set(static_cast<double>(buffers_.size()));
  if (pending.empty()) return 0;

  // Phase 2: one batched ensemble dispatch for the whole tick. evaluate_all
  // draws subsets in window (== message) order, so scores and reports are
  // identical to the per-message ingest() loop.
  telemetry::ScopedSpan score_span(tel.score_seconds, "score");
  auto& recorder = telemetry::TraceRecorder::global();
  const bool tracing = recorder.enabled();
  const std::uint64_t score_t0 = tracing ? recorder.now_ns() : 0;
  const std::vector<DetectionResult> results = detector_->evaluate_all(ready);
  if (tracing) {
    // One batched GEMM scored every window, so sampled windows share the
    // batch's (start, duration) but keep their own trace ids: the timeline
    // shows which messages rode which dispatch.
    const std::uint64_t score_dur = recorder.now_ns() - score_t0;
    for (const PendingWindow& p : pending) {
      const std::uint32_t id = p.message->vehicle_id;
      if (!recorder.sampled(id)) continue;
      recorder.record_complete("score", score_t0, score_dur,
                               telemetry::trace_id_of(id, p.message->time), "station", id);
    }
  }
  score_span.stop();
  tel.windows_scored_total.add(pending.size());

  // Phase 3: apply flag + cooldown decisions in message order.
  telemetry::ScopedSpan decide_span(tel.decide_seconds, "decide");
  std::size_t emitted = 0;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    observe_result(*pending[i].message, results[i]);
    VehicleBuffer& buffer = buffers_[pending[i].message->vehicle_id];
    const std::span<const sim::Bsm> evidence{
        evidence_arena_.data() + pending[i].evidence_offset, pending[i].evidence_len};
    auto report = finalize(*pending[i].message, buffer, results[i], evidence);
    if (report) {
      out.push_back(std::move(*report));
      ++emitted;
    }
  }
  tel.reports_total.add(emitted);
  publish_drift(tel, drift_);
  return emitted;
}

void OnlineMbds::set_eviction_policy(EvictionPolicy policy) {
  eviction_policy_ = policy;
  replay_clock_ = -1e18;
  last_sweep_time_ = -1e18;
}

OnlineMbds::SweepResult OnlineMbds::advance_time(double message_time) {
  if (message_time > replay_clock_) replay_clock_ = message_time;
  SweepResult result;
  if (eviction_policy_.evict_after_s <= 0.0) return result;
  // First call seeds the cadence without sweeping: nothing can be stale
  // before the stream's clock has spanned evict_after_s of message time.
  if (last_sweep_time_ <= -1e18) {
    last_sweep_time_ = replay_clock_;
    return result;
  }
  if (replay_clock_ - last_sweep_time_ < eviction_policy_.evict_every_s) return result;
  result.swept = true;
  result.evicted = evict_stale(replay_clock_ - eviction_policy_.evict_after_s);
  last_sweep_time_ = replay_clock_;
  return result;
}

std::size_t OnlineMbds::evict_stale(double before_time) {
  std::size_t dropped = 0;
  for (auto it = buffers_.begin(); it != buffers_.end();) {
    if (it->second.last_update_time < before_time) {
      it = buffers_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  evictions_total_ += dropped;
  OnlineTelemetry& tel = OnlineTelemetry::get();
  tel.evictions_total.add(dropped);
  tel.tracked_vehicles.set(static_cast<double>(buffers_.size()));
  telemetry::FlightRecorder::record(telemetry::FlightEventKind::kEvict, station_id_, 0,
                                    dropped);
  return dropped;
}

void OnlineMbds::set_drift_config(telemetry::DriftConfig config) {
  drift_ = telemetry::ScoreDriftMonitor(config);
}

OnlineMbds::Stats OnlineMbds::stats() const {
  Stats s;
  s.tracked_vehicles = buffers_.size();
  for (const auto& [id, buffer] : buffers_) s.buffered_messages += buffer.recent.size();
  s.evictions_total = evictions_total_;
  return s;
}

}  // namespace vehigan::mbds
