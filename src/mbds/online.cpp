#include "mbds/online.hpp"

#include "features/feature_engineering.hpp"
#include "features/series.hpp"

namespace vehigan::mbds {

OnlineMbds::OnlineMbds(std::uint32_t station_id, std::shared_ptr<VehiGan> detector,
                       features::MinMaxScaler scaler, double report_cooldown,
                       double gap_reset_s)
    : station_id_(station_id),
      detector_(std::move(detector)),
      scaler_(std::move(scaler)),
      window_(detector_->candidates().front()->window()),
      cooldown_(report_cooldown),
      gap_reset_s_(gap_reset_s) {}

OnlineMbds::VehicleBuffer* OnlineMbds::buffer_message(const sim::Bsm& message) {
  VehicleBuffer& buffer = buffers_[message.vehicle_id];
  // A reception gap (packet loss, shadowing) invalidates the delta features
  // across the gap; restart the snapshot rather than score garbage.
  if (!buffer.recent.empty() &&
      message.time - buffer.recent.back().time > gap_reset_s_) {
    buffer.recent.clear();
  }
  buffer.recent.push_back(message);
  buffer.last_update_time = message.time;
  // The engineered features consume message pairs, so a w-step snapshot
  // needs w+1 raw messages.
  while (buffer.recent.size() > window_ + 1) buffer.recent.pop_front();
  return buffer.recent.size() < window_ + 1 ? nullptr : &buffer;
}

features::Series OnlineMbds::snapshot_series(const VehicleBuffer& buffer) const {
  sim::VehicleTrace mini;
  mini.vehicle_id = buffer.recent.front().vehicle_id;
  mini.messages.assign(buffer.recent.begin(), buffer.recent.end());
  features::Series series = to_series(features::extract_features(mini));
  scaler_.transform(series);
  return series;
}

std::optional<MisbehaviorReport> OnlineMbds::finalize(const sim::Bsm& message,
                                                      VehicleBuffer& buffer,
                                                      const DetectionResult& result,
                                                      std::vector<sim::Bsm> evidence) {
  if (!result.flagged) return std::nullopt;
  if (message.time - buffer.last_report_time < cooldown_) return std::nullopt;
  buffer.last_report_time = message.time;

  MisbehaviorReport report;
  report.reporter_id = station_id_;
  report.suspect_id = message.vehicle_id;
  report.time = message.time;
  report.score = result.score;
  report.threshold = result.threshold;
  report.evidence = std::move(evidence);
  if (sink_) sink_(report);
  return report;
}

std::optional<MisbehaviorReport> OnlineMbds::ingest(const sim::Bsm& message) {
  VehicleBuffer* buffer = buffer_message(message);
  if (buffer == nullptr) return std::nullopt;
  const features::Series series = snapshot_series(*buffer);
  const DetectionResult result = detector_->evaluate(series.values);
  return finalize(message, *buffer, result,
                  {buffer->recent.begin(), buffer->recent.end()});
}

std::vector<MisbehaviorReport> OnlineMbds::ingest_batch(std::span<const sim::Bsm> messages) {
  // Phase 1: buffer every message in arrival order, collecting each window
  // that completes. Evidence is copied at completion time: a later message
  // from the same vehicle in this batch advances the deque.
  struct Pending {
    const sim::Bsm* message;
    std::vector<sim::Bsm> evidence;
  };
  std::vector<Pending> pending;
  features::WindowSet ready;
  for (const sim::Bsm& message : messages) {
    VehicleBuffer* buffer = buffer_message(message);
    if (buffer == nullptr) continue;
    const features::Series series = snapshot_series(*buffer);
    if (ready.count() == 0) {
      ready.window = window_;
      ready.width = series.width;
    }
    ready.append(series.values, message.vehicle_id);
    pending.push_back({&message, {buffer->recent.begin(), buffer->recent.end()}});
  }
  if (pending.empty()) return {};

  // Phase 2: one batched ensemble dispatch for the whole tick. evaluate_all
  // draws subsets in window (== message) order, so scores and reports are
  // identical to the per-message ingest() loop.
  const std::vector<DetectionResult> results = detector_->evaluate_all(ready);

  // Phase 3: apply flag + cooldown decisions in message order.
  std::vector<MisbehaviorReport> reports;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    VehicleBuffer& buffer = buffers_[pending[i].message->vehicle_id];
    auto report =
        finalize(*pending[i].message, buffer, results[i], std::move(pending[i].evidence));
    if (report) reports.push_back(std::move(*report));
  }
  return reports;
}

void OnlineMbds::evict_stale(double before_time) {
  for (auto it = buffers_.begin(); it != buffers_.end();) {
    if (it->second.last_update_time < before_time) {
      it = buffers_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace vehigan::mbds
