#include "mbds/online.hpp"

#include "features/feature_engineering.hpp"
#include "features/series.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace vehigan::mbds {

namespace {

/// Metric handles resolved once; every ingest path then touches only the
/// lock-free primitives. Span hierarchy: ingest{,_batch} -> window_build ->
/// score -> decide (DESIGN.md Sec. 7).
struct OnlineTelemetry {
  telemetry::Histogram& ingest_seconds;
  telemetry::Histogram& ingest_batch_seconds;
  telemetry::Histogram& window_build_seconds;
  telemetry::Histogram& score_seconds;
  telemetry::Histogram& decide_seconds;
  telemetry::Counter& messages_total;
  telemetry::Counter& windows_scored_total;
  telemetry::Counter& reports_total;
  telemetry::Counter& evictions_total;
  telemetry::Gauge& tracked_vehicles;

  static OnlineTelemetry& get() {
    auto& reg = telemetry::MetricsRegistry::global();
    static OnlineTelemetry tel{
        reg.histogram("vehigan_mbds_ingest_seconds"),
        reg.histogram("vehigan_mbds_ingest_batch_seconds"),
        reg.histogram("vehigan_mbds_window_build_seconds"),
        reg.histogram("vehigan_mbds_score_seconds"),
        reg.histogram("vehigan_mbds_decide_seconds"),
        reg.counter("vehigan_mbds_messages_total"),
        reg.counter("vehigan_mbds_windows_scored_total"),
        reg.counter("vehigan_mbds_reports_total"),
        reg.counter("vehigan_mbds_evictions_total"),
        reg.gauge("vehigan_mbds_tracked_vehicles"),
    };
    return tel;
  }
};

}  // namespace

OnlineMbds::OnlineMbds(std::uint32_t station_id, std::shared_ptr<VehiGan> detector,
                       features::MinMaxScaler scaler, double report_cooldown,
                       double gap_reset_s)
    : station_id_(station_id),
      detector_(std::move(detector)),
      scaler_(std::move(scaler)),
      window_(detector_->candidates().front()->window()),
      cooldown_(report_cooldown),
      gap_reset_s_(gap_reset_s) {}

OnlineMbds::VehicleBuffer* OnlineMbds::buffer_message(const sim::Bsm& message) {
  VehicleBuffer& buffer = buffers_[message.vehicle_id];
  // A reception gap (packet loss, shadowing) invalidates the delta features
  // across the gap; restart the snapshot rather than score garbage.
  if (!buffer.recent.empty() &&
      message.time - buffer.recent.back().time > gap_reset_s_) {
    buffer.recent.clear();
  }
  buffer.recent.push_back(message);
  buffer.last_update_time = message.time;
  // The engineered features consume message pairs, so a w-step snapshot
  // needs w+1 raw messages.
  while (buffer.recent.size() > window_ + 1) buffer.recent.pop_front();
  return buffer.recent.size() < window_ + 1 ? nullptr : &buffer;
}

features::Series OnlineMbds::snapshot_series(const VehicleBuffer& buffer) const {
  sim::VehicleTrace mini;
  mini.vehicle_id = buffer.recent.front().vehicle_id;
  mini.messages.assign(buffer.recent.begin(), buffer.recent.end());
  features::Series series = to_series(features::extract_features(mini));
  scaler_.transform(series);
  return series;
}

std::optional<MisbehaviorReport> OnlineMbds::finalize(const sim::Bsm& message,
                                                      VehicleBuffer& buffer,
                                                      const DetectionResult& result,
                                                      std::vector<sim::Bsm> evidence) {
  if (!result.flagged) return std::nullopt;
  if (message.time - buffer.last_report_time < cooldown_) return std::nullopt;
  buffer.last_report_time = message.time;

  MisbehaviorReport report;
  report.reporter_id = station_id_;
  report.suspect_id = message.vehicle_id;
  report.time = message.time;
  report.score = result.score;
  report.threshold = result.threshold;
  report.evidence = std::move(evidence);
  if (sink_) sink_(report);
  return report;
}

std::optional<MisbehaviorReport> OnlineMbds::ingest(const sim::Bsm& message) {
  OnlineTelemetry& tel = OnlineTelemetry::get();
  telemetry::ScopedSpan ingest_span(tel.ingest_seconds, "ingest");
  tel.messages_total.add(1);

  telemetry::ScopedSpan build_span(tel.window_build_seconds, "window_build");
  VehicleBuffer* buffer = buffer_message(message);
  tel.tracked_vehicles.set(static_cast<double>(buffers_.size()));
  if (buffer == nullptr) return std::nullopt;
  const features::Series series = snapshot_series(*buffer);
  build_span.stop();

  telemetry::ScopedSpan score_span(tel.score_seconds, "score");
  const DetectionResult result = detector_->evaluate(series.values);
  score_span.stop();
  tel.windows_scored_total.add(1);

  telemetry::ScopedSpan decide_span(tel.decide_seconds, "decide");
  auto report = finalize(message, *buffer, result,
                         {buffer->recent.begin(), buffer->recent.end()});
  if (report) tel.reports_total.add(1);
  return report;
}

std::vector<MisbehaviorReport> OnlineMbds::ingest_batch(std::span<const sim::Bsm> messages) {
  OnlineTelemetry& tel = OnlineTelemetry::get();
  telemetry::ScopedSpan batch_span(tel.ingest_batch_seconds, "ingest_batch");
  tel.messages_total.add(messages.size());

  // Phase 1: buffer every message in arrival order, collecting each window
  // that completes. Evidence is copied at completion time: a later message
  // from the same vehicle in this batch advances the deque.
  struct Pending {
    const sim::Bsm* message;
    std::vector<sim::Bsm> evidence;
  };
  std::vector<Pending> pending;
  features::WindowSet ready;
  {
    telemetry::ScopedSpan build_span(tel.window_build_seconds, "window_build");
    for (const sim::Bsm& message : messages) {
      VehicleBuffer* buffer = buffer_message(message);
      if (buffer == nullptr) continue;
      const features::Series series = snapshot_series(*buffer);
      if (ready.count() == 0) {
        ready.window = window_;
        ready.width = series.width;
      }
      ready.append(series.values, message.vehicle_id);
      pending.push_back({&message, {buffer->recent.begin(), buffer->recent.end()}});
    }
  }
  tel.tracked_vehicles.set(static_cast<double>(buffers_.size()));
  if (pending.empty()) return {};

  // Phase 2: one batched ensemble dispatch for the whole tick. evaluate_all
  // draws subsets in window (== message) order, so scores and reports are
  // identical to the per-message ingest() loop.
  telemetry::ScopedSpan score_span(tel.score_seconds, "score");
  const std::vector<DetectionResult> results = detector_->evaluate_all(ready);
  score_span.stop();
  tel.windows_scored_total.add(pending.size());

  // Phase 3: apply flag + cooldown decisions in message order.
  telemetry::ScopedSpan decide_span(tel.decide_seconds, "decide");
  std::vector<MisbehaviorReport> reports;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    VehicleBuffer& buffer = buffers_[pending[i].message->vehicle_id];
    auto report =
        finalize(*pending[i].message, buffer, results[i], std::move(pending[i].evidence));
    if (report) reports.push_back(std::move(*report));
  }
  tel.reports_total.add(reports.size());
  return reports;
}

std::size_t OnlineMbds::evict_stale(double before_time) {
  std::size_t dropped = 0;
  for (auto it = buffers_.begin(); it != buffers_.end();) {
    if (it->second.last_update_time < before_time) {
      it = buffers_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  evictions_total_ += dropped;
  OnlineTelemetry& tel = OnlineTelemetry::get();
  tel.evictions_total.add(dropped);
  tel.tracked_vehicles.set(static_cast<double>(buffers_.size()));
  return dropped;
}

OnlineMbds::Stats OnlineMbds::stats() const {
  Stats s;
  s.tracked_vehicles = buffers_.size();
  for (const auto& [id, buffer] : buffers_) s.buffered_messages += buffer.recent.size();
  s.evictions_total = evictions_total_;
  return s;
}

}  // namespace vehigan::mbds
