#include "mbds/online.hpp"

#include "features/feature_engineering.hpp"
#include "features/series.hpp"

namespace vehigan::mbds {

OnlineMbds::OnlineMbds(std::uint32_t station_id, std::shared_ptr<VehiGan> detector,
                       features::MinMaxScaler scaler, double report_cooldown,
                       double gap_reset_s)
    : station_id_(station_id),
      detector_(std::move(detector)),
      scaler_(std::move(scaler)),
      window_(detector_->candidates().front()->window()),
      cooldown_(report_cooldown),
      gap_reset_s_(gap_reset_s) {}

std::optional<MisbehaviorReport> OnlineMbds::ingest(const sim::Bsm& message) {
  VehicleBuffer& buffer = buffers_[message.vehicle_id];
  // A reception gap (packet loss, shadowing) invalidates the delta features
  // across the gap; restart the snapshot rather than score garbage.
  if (!buffer.recent.empty() &&
      message.time - buffer.recent.back().time > gap_reset_s_) {
    buffer.recent.clear();
  }
  buffer.recent.push_back(message);
  buffer.last_update_time = message.time;
  // The engineered features consume message pairs, so a w-step snapshot
  // needs w+1 raw messages.
  while (buffer.recent.size() > window_ + 1) buffer.recent.pop_front();
  if (buffer.recent.size() < window_ + 1) return std::nullopt;

  sim::VehicleTrace mini;
  mini.vehicle_id = message.vehicle_id;
  mini.messages.assign(buffer.recent.begin(), buffer.recent.end());
  features::Series series = to_series(features::extract_features(mini));
  scaler_.transform(series);

  const DetectionResult result = detector_->evaluate(series.values);
  if (!result.flagged) return std::nullopt;
  if (message.time - buffer.last_report_time < cooldown_) return std::nullopt;
  buffer.last_report_time = message.time;

  MisbehaviorReport report;
  report.reporter_id = station_id_;
  report.suspect_id = message.vehicle_id;
  report.time = message.time;
  report.score = result.score;
  report.threshold = result.threshold;
  report.evidence = mini.messages;
  if (sink_) sink_(report);
  return report;
}

void OnlineMbds::evict_stale(double before_time) {
  for (auto it = buffers_.begin(); it != buffers_.end();) {
    if (it->second.last_update_time < before_time) {
      it = buffers_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace vehigan::mbds
