#include "mbds/anomaly_detector.hpp"

#include "util/math.hpp"

namespace vehigan::mbds {

std::vector<float> AnomalyDetector::score_all(const features::WindowSet& windows) {
  std::vector<float> scores;
  scores.reserve(windows.count());
  for (std::size_t i = 0; i < windows.count(); ++i) {
    scores.push_back(score(windows.snapshot(i)));
  }
  return scores;
}

double percentile_threshold(std::span<const float> benign_scores, double p) {
  return util::percentile(std::vector<float>(benign_scores.begin(), benign_scores.end()), p);
}

}  // namespace vehigan::mbds
