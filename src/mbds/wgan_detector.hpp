#pragma once

#include "gan/wgan.hpp"
#include "mbds/anomaly_detector.hpp"

namespace vehigan::mbds {

/// Single WGAN-based detector (VEHIGAN_1^1): wraps a trained critic and
/// scores snapshots with s(x) = -D(x). Also exposes the input gradient of
/// the anomaly score, which the adversarial module uses for FGSM (Eqs. 6-7)
/// and the evaluation uses for Fig. 6.
///
/// Calibration: independently trained critics output on wildly different
/// scales, so before ensembling, each detector is calibrated with the mean
/// and standard deviation of its *benign training* scores; score() then
/// returns (s - mu) / sigma. The affine map changes nothing about a single
/// model (AUROC is rank-based and FGSM uses only the gradient sign) but
/// makes the paper's score averaging (Sec. III-F) meaningful across members.
class WganDetector : public AnomalyDetector {
 public:
  explicit WganDetector(gan::TrainedWgan model);

  [[nodiscard]] std::string name() const override { return model_.config.name(); }
  float score(std::span<const float> snapshot) override;

  /// Batched scoring: forwards the windows through the critic in chunks of
  /// kMaxBatch (one GEMM per dense layer per chunk) instead of one graph walk
  /// per window. Per-window results are identical to score().
  std::vector<float> score_all(const features::WindowSet& windows) override;

  /// Batched raw scores -D(x) over `count` windows stored contiguously
  /// (window*width floats each), uncalibrated.
  std::vector<float> raw_score_batch(std::span<const float> data, std::size_t count);

  /// Applies this detector's calibration to a raw score, exactly as score()
  /// does. Read-only — safe to call concurrently (e.g. from ensemble worker
  /// threads operating on critic clones).
  [[nodiscard]] float calibrated(float raw) const {
    return static_cast<float>((raw - cal_mean_) / cal_std_);
  }

  /// Upper bound on windows per batched forward; bounds the peak size of the
  /// intermediate conv activations ([batch, channels, h, w] per layer).
  static constexpr std::size_t kMaxBatch = 256;

  /// Computes the calibration (mean, stddev) from benign training scores.
  /// Call before thresholding; thresholds are in calibrated units.
  void calibrate(std::span<const float> benign_raw_scores);

  /// Sets the calibration directly (deserialization, tests).
  void set_calibration(double mean, double stddev);
  [[nodiscard]] double calibration_mean() const { return cal_mean_; }
  [[nodiscard]] double calibration_std() const { return cal_std_; }

  /// Raw anomaly score -D(x) without calibration.
  float raw_score(std::span<const float> snapshot);

  /// grad_x s(x) = -grad_x D(x), same layout as the snapshot.
  std::vector<float> score_gradient(std::span<const float> snapshot);

  /// Detection threshold management (p-th percentile of benign scores).
  void set_threshold(double tau) { threshold_ = tau; }
  [[nodiscard]] double threshold() const { return threshold_; }
  [[nodiscard]] bool flags(std::span<const float> snapshot) {
    return score(snapshot) > threshold_;
  }

  [[nodiscard]] const gan::TrainedWgan& model() const { return model_; }
  [[nodiscard]] gan::TrainedWgan& model() { return model_; }
  [[nodiscard]] std::size_t window() const { return model_.config.window; }
  [[nodiscard]] std::size_t width() const { return model_.config.width; }

 private:
  gan::TrainedWgan model_;
  double threshold_ = 0.0;
  double cal_mean_ = 0.0;
  double cal_std_ = 1.0;
};

}  // namespace vehigan::mbds
