#include "mbds/report_codec.hpp"

#include "data/json.hpp"

namespace vehigan::mbds {

using data::Json;

namespace {

std::string hex_u64(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string hex(16, '0');
  for (int i = 15; i >= 0; --i) {
    hex[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return hex;
}

}  // namespace

std::string encode_report(const MisbehaviorReport& report) {
  Json::Object object;
  object["version"] = Json(1);
  object["reporter"] = Json(static_cast<double>(report.reporter_id));
  object["suspect"] = Json(static_cast<double>(report.suspect_id));
  object["time"] = Json(report.time);
  object["score"] = Json(static_cast<double>(report.score));
  object["threshold"] = Json(report.threshold);
  if (report.trace_id != 0) object["trace"] = Json(hex_u64(report.trace_id));
  // Same hex-string treatment as the trace id (a u64 does not survive the
  // JSON double round-trip), and the same legacy contract: the key is absent
  // when unrecorded, so pre-provenance decoders never see it.
  if (report.model_hash != 0) object["model"] = Json(hex_u64(report.model_hash));
  if (report.critic_spread != 0.0F) {
    object["spread"] = Json(static_cast<double>(report.critic_spread));
  }
  Json::Array evidence;
  for (const auto& m : report.evidence) {
    Json::Object bsm;
    bsm["id"] = Json(static_cast<double>(m.vehicle_id));
    bsm["t"] = Json(m.time);
    bsm["x"] = Json(m.x);
    bsm["y"] = Json(m.y);
    bsm["v"] = Json(m.speed);
    bsm["a"] = Json(m.accel);
    bsm["h"] = Json(m.heading);
    bsm["w"] = Json(m.yaw_rate);
    evidence.emplace_back(std::move(bsm));
  }
  object["evidence"] = Json(std::move(evidence));
  return Json(std::move(object)).dump();
}

MisbehaviorReport decode_report(const std::string& text) {
  const Json doc = Json::parse(text);
  if (!doc.contains("version") || doc.at("version").as_number() != 1.0) {
    throw std::runtime_error("decode_report: unsupported report version");
  }
  MisbehaviorReport report;
  report.reporter_id = static_cast<std::uint32_t>(doc.at("reporter").as_number());
  report.suspect_id = static_cast<std::uint32_t>(doc.at("suspect").as_number());
  report.time = doc.at("time").as_number();
  report.score = static_cast<float>(doc.at("score").as_number());
  report.threshold = doc.at("threshold").as_number();
  if (doc.contains("trace")) {
    // Pre-trace (original v1) records simply lack the key -> trace_id stays 0.
    report.trace_id = std::stoull(doc.at("trace").as_string(), nullptr, 16);
  }
  if (doc.contains("model")) {
    // Pre-provenance records lack the key -> model_hash stays 0.
    report.model_hash = std::stoull(doc.at("model").as_string(), nullptr, 16);
  }
  if (doc.contains("spread")) {
    report.critic_spread = static_cast<float>(doc.at("spread").as_number());
  }
  for (const auto& entry : doc.at("evidence").as_array()) {
    sim::Bsm m;
    m.vehicle_id = static_cast<std::uint32_t>(entry.at("id").as_number());
    m.time = entry.at("t").as_number();
    m.x = entry.at("x").as_number();
    m.y = entry.at("y").as_number();
    m.speed = entry.at("v").as_number();
    m.accel = entry.at("a").as_number();
    m.heading = entry.at("h").as_number();
    m.yaw_rate = entry.at("w").as_number();
    report.evidence.push_back(m);
  }
  return report;
}

}  // namespace vehigan::mbds
