#include "mbds/report_codec.hpp"

#include "data/json.hpp"

namespace vehigan::mbds {

using data::Json;

std::string encode_report(const MisbehaviorReport& report) {
  Json::Object object;
  object["version"] = Json(1);
  object["reporter"] = Json(static_cast<double>(report.reporter_id));
  object["suspect"] = Json(static_cast<double>(report.suspect_id));
  object["time"] = Json(report.time);
  object["score"] = Json(static_cast<double>(report.score));
  object["threshold"] = Json(report.threshold);
  if (report.trace_id != 0) {
    // Hex string, not a JSON number: a u64 does not survive the double
    // round-trip, and a missing key keeps old decoders working unchanged.
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string hex(16, '0');
    std::uint64_t v = report.trace_id;
    for (int i = 15; i >= 0; --i) {
      hex[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
      v >>= 4;
    }
    object["trace"] = Json(std::move(hex));
  }
  Json::Array evidence;
  for (const auto& m : report.evidence) {
    Json::Object bsm;
    bsm["id"] = Json(static_cast<double>(m.vehicle_id));
    bsm["t"] = Json(m.time);
    bsm["x"] = Json(m.x);
    bsm["y"] = Json(m.y);
    bsm["v"] = Json(m.speed);
    bsm["a"] = Json(m.accel);
    bsm["h"] = Json(m.heading);
    bsm["w"] = Json(m.yaw_rate);
    evidence.emplace_back(std::move(bsm));
  }
  object["evidence"] = Json(std::move(evidence));
  return Json(std::move(object)).dump();
}

MisbehaviorReport decode_report(const std::string& text) {
  const Json doc = Json::parse(text);
  if (!doc.contains("version") || doc.at("version").as_number() != 1.0) {
    throw std::runtime_error("decode_report: unsupported report version");
  }
  MisbehaviorReport report;
  report.reporter_id = static_cast<std::uint32_t>(doc.at("reporter").as_number());
  report.suspect_id = static_cast<std::uint32_t>(doc.at("suspect").as_number());
  report.time = doc.at("time").as_number();
  report.score = static_cast<float>(doc.at("score").as_number());
  report.threshold = doc.at("threshold").as_number();
  if (doc.contains("trace")) {
    // Pre-trace (original v1) records simply lack the key -> trace_id stays 0.
    report.trace_id = std::stoull(doc.at("trace").as_string(), nullptr, 16);
  }
  for (const auto& entry : doc.at("evidence").as_array()) {
    sim::Bsm m;
    m.vehicle_id = static_cast<std::uint32_t>(entry.at("id").as_number());
    m.time = entry.at("t").as_number();
    m.x = entry.at("x").as_number();
    m.y = entry.at("y").as_number();
    m.speed = entry.at("v").as_number();
    m.accel = entry.at("a").as_number();
    m.heading = entry.at("h").as_number();
    m.yaw_rate = entry.at("w").as_number();
    report.evidence.push_back(m);
  }
  return report;
}

}  // namespace vehigan::mbds
