#pragma once

#include <memory>

#include "gan/wgan.hpp"
#include "mbds/ensemble.hpp"
#include "mbds/pre_evaluation.hpp"

namespace vehigan::mbds {

/// Options of the training-phase tail (Sec. III-E/F): candidate pool size
/// and the percentile of benign scores used as each member's threshold.
struct VehiGanBuildOptions {
  std::size_t top_m = 10;
  double threshold_percentile = 99.0;
};

/// Everything the VEHIGAN training phase produces: the wrapped grid of
/// detectors (thresholds set), the pre-evaluation table, and the ADS
/// ranking. Ensembles of any (m, k) <= (top candidates) are minted from it.
class VehiGanBundle {
 public:
  VehiGanBundle(std::vector<std::shared_ptr<WganDetector>> detectors,
                std::vector<ModelEvaluation> evaluations, std::vector<std::size_t> ranking);

  /// All grid detectors in training order (index == grid id order).
  [[nodiscard]] const std::vector<std::shared_ptr<WganDetector>>& detectors() const {
    return detectors_;
  }

  /// Pre-evaluation table aligned with detectors().
  [[nodiscard]] const std::vector<ModelEvaluation>& evaluations() const { return evaluations_; }

  /// Detector indices sorted by ADS descending.
  [[nodiscard]] const std::vector<std::size_t>& ranking() const { return ranking_; }

  /// The i-th best detector (rank 0 = highest ADS).
  [[nodiscard]] const std::shared_ptr<WganDetector>& top(std::size_t rank) const {
    return detectors_.at(ranking_.at(rank));
  }

  /// Builds VEHIGAN_m^k from the top-m candidates.
  [[nodiscard]] std::unique_ptr<VehiGan> make_ensemble(std::size_t m, std::size_t k,
                                                       std::uint64_t seed) const;

 private:
  std::vector<std::shared_ptr<WganDetector>> detectors_;
  std::vector<ModelEvaluation> evaluations_;
  std::vector<std::size_t> ranking_;
};

/// Assembles the bundle from trained grid models: wraps each model in a
/// WganDetector, sets its threshold from the benign training windows, runs
/// the ADS pre-evaluation on the validation set, and ranks the grid.
VehiGanBundle build_bundle(std::vector<gan::TrainedWgan> models,
                           const features::WindowSet& benign_train_windows,
                           const ValidationSet& validation, const VehiGanBuildOptions& options);

}  // namespace vehigan::mbds
