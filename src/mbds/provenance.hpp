#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace vehigan::mbds {

class VehiGan;

/// Process-wide registry of every deployed ensemble's provenance: which
/// candidate checkpoints (by content hash) a VehiGan was built from, its
/// (m, k), and how many instances share that identity (a sharded service
/// constructs one per shard). VehiGan registers itself at construction, so
/// the statusz "models" section lists exactly the weights that can have
/// produced any MisbehaviorReport.model_hash seen downstream — the lookup
/// side of the verdict ledger's provenance stamp.
class ModelProvenance {
 public:
  struct CandidateInfo {
    std::string name;                ///< WganConfig::name()
    std::uint64_t content_hash = 0;  ///< checkpoint payload hash
    double threshold = 0.0;          ///< calibrated threshold at registration
  };

  struct EnsembleInfo {
    std::uint64_t hash = 0;  ///< VehiGan::provenance_hash()
    std::string name;        ///< "VehiGAN_m<m>_k<k>"
    std::size_t m = 0;
    std::size_t k = 0;
    std::uint64_t instances = 0;  ///< constructions sharing this identity
    std::vector<CandidateInfo> candidates;
  };

  static ModelProvenance& global();

  ModelProvenance(const ModelProvenance&) = delete;
  ModelProvenance& operator=(const ModelProvenance&) = delete;

  /// Records one ensemble construction, deduplicated by provenance hash
  /// (identical builds only bump `instances`). Called from the VehiGan
  /// constructor; cold path, mutex-guarded.
  void register_ensemble(const VehiGan& ensemble);

  /// Provenance of a known ensemble hash; empty-name EnsembleInfo when the
  /// hash was never registered in this process.
  [[nodiscard]] EnsembleInfo lookup(std::uint64_t hash) const;

  [[nodiscard]] std::vector<EnsembleInfo> snapshot() const;

  /// Drops every registration. Test isolation only.
  void reset();

 private:
  ModelProvenance();

  mutable std::mutex mutex_;
  std::map<std::uint64_t, EnsembleInfo> ensembles_;
  std::uint64_t statusz_section_ = 0;
};

/// 16-digit lowercase hex of a provenance/content/trace hash — the shared
/// spelling across report_codec, statusz, ledgerq, and the trace timelines.
[[nodiscard]] std::string provenance_hex(std::uint64_t hash);

}  // namespace vehigan::mbds
