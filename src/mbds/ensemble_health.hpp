#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "mbds/ensemble.hpp"

namespace vehigan::mbds {

/// Process-wide ensemble-health accumulator: per-critic score
/// distributions, per-critic contribution counts, and inter-critic
/// disagreement (the spread of each prediction's k-subset), fed from
/// OnlineMbds's score path (observe_result) on every scored window. Pure
/// observation — it reads DetectionResult.member_scores, which the ensemble
/// computes anyway, so installing it cannot perturb verdicts.
///
/// Slots are indexed by *candidate index within the ensemble*. Every shard
/// of a service deploys the same candidate list, so slot i aggregates the
/// same critic across shards; distinct ensembles sharing a process fold by
/// rank (statusz's "models" section disambiguates which ensembles are
/// live). observe() is a handful of relaxed atomic RMWs per member — cheap
/// enough to sit inside the <5% telemetry overhead guard.
///
/// Exported metrics (refreshed by publish_metrics, called on OnlineMbds's
/// once-per-batch drift cadence):
///   vehigan_mbds_critic_<i>_contributions  windows critic i scored (gauge)
///   vehigan_mbds_critic_<i>_score_mean/_min/_max
///   vehigan_mbds_critic_spread_mean / _max  inter-critic disagreement
class EnsembleHealth {
 public:
  /// Slots for per-critic accounting; grid ensembles top out at m = 60.
  /// Members beyond this index are tallied in Snapshot::overflow.
  static constexpr std::size_t kMaxCritics = 64;

  /// Point-in-time per-critic aggregate.
  struct CriticStats {
    std::uint64_t contributions = 0;  ///< windows this critic helped score
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  struct Snapshot {
    std::vector<CriticStats> critics;  ///< index = candidate index; trailing empty slots trimmed
    std::uint64_t windows = 0;         ///< predictions observed
    std::uint64_t overflow = 0;        ///< member observations beyond kMaxCritics
    double spread_mean = 0.0;          ///< mean k-subset disagreement
    double spread_max = 0.0;           ///< worst disagreement seen
  };

  static EnsembleHealth& global();

  EnsembleHealth(const EnsembleHealth&) = delete;
  EnsembleHealth& operator=(const EnsembleHealth&) = delete;

  /// Folds one prediction in. Thread-safe, lock-free; a no-op for results
  /// without member scores (hand-built test fixtures).
  void observe(const DetectionResult& result);

  /// Refreshes the vehigan_mbds_critic_* gauges from the accumulators.
  /// Thread-safe; concurrent callers skip instead of queuing (it is a
  /// refresh, not a delta).
  void publish_metrics();

  [[nodiscard]] Snapshot snapshot() const;

  /// Zeroes every accumulator. Callers must ensure no concurrent observe().
  /// Test isolation only.
  void reset();

 private:
  EnsembleHealth();

  /// All-atomic so observe() never takes a lock. Sum/min/max are double bit
  /// patterns updated by relaxed CAS (the Gauge::add idiom).
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_bits{0};
    std::atomic<std::uint64_t> min_bits{0};
    std::atomic<std::uint64_t> max_bits{0};
  };

  Slot slots_[kMaxCritics];
  std::atomic<std::uint64_t> windows_{0};
  std::atomic<std::uint64_t> overflow_{0};
  std::atomic<std::uint64_t> spread_sum_bits_{0};
  std::atomic<std::uint64_t> spread_count_{0};
  std::atomic<std::uint64_t> spread_max_bits_{0};
  std::atomic<bool> publishing_{false};
  std::uint64_t statusz_section_ = 0;
};

}  // namespace vehigan::mbds
