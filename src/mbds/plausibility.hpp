#pragma once

#include <array>

#include "features/scaler.hpp"
#include "mbds/anomaly_detector.hpp"

namespace vehigan::mbds {

/// Physics plausibility checker — the classical rule-based MBDS the paper
/// positions as a *companion* detector ("consistency checks ... can work
/// parallel as an additional detector along with VEHIGAN", Sec. V-C).
///
/// For every consecutive step in a snapshot it evaluates the Table-II
/// consistency residuals in physical units:
///     r_pos   = | d_pos - v_vec * dt |       (position vs velocity)
///     r_vel   = | d_vel - a_vec * dt |       (velocity change vs accel)
///     r_head  = | d_head - w_vec * dt |      (heading change vs yaw rate)
/// Each residual family is normalized by its benign standard deviation
/// (calibrated in fit()), and the anomaly score is the largest normalized
/// mean residual. Honest traffic scores ~O(1); physics violations explode;
/// attacks that do not violate physics (ConstantPositionOffset) stay
/// invisible — by design, exactly the paper's observation.
class PlausibilityDetector : public AnomalyDetector {
 public:
  /// @param scaler the training scaler (snapshots arrive scaled; residuals
  ///               are evaluated in physical units)
  /// @param dt     BSM period [s]
  PlausibilityDetector(features::MinMaxScaler scaler, double dt = 0.1);

  /// Calibrates per-residual-family noise scales on benign windows.
  void fit(const features::WindowSet& benign);

  [[nodiscard]] std::string name() const override { return "Plausibility"; }
  float score(std::span<const float> snapshot) override;

  static constexpr std::size_t kNumResiduals = 6;

  /// Raw (unnormalized) mean residuals of one snapshot; exposed for tests
  /// and for explaining reports.
  [[nodiscard]] std::array<double, kNumResiduals> residuals(
      std::span<const float> snapshot) const;

 private:
  features::MinMaxScaler scaler_;
  double dt_;
  std::array<double, kNumResiduals> noise_scale_{};
  bool fitted_ = false;
};

/// Parallel composition of two detectors (Sec. V-C suggestion): both run on
/// every snapshot and the fused score is the *maximum* of their calibrated
/// scores, so either detector alone can raise the alarm. Calibration maps
/// both score distributions onto comparable units (benign mean/std).
class HybridDetector : public AnomalyDetector {
 public:
  HybridDetector(std::shared_ptr<AnomalyDetector> first,
                 std::shared_ptr<AnomalyDetector> second);

  /// Calibrates both members' benign score distributions.
  void fit(const features::WindowSet& benign);

  [[nodiscard]] std::string name() const override;
  float score(std::span<const float> snapshot) override;

 private:
  struct Calibrated {
    std::shared_ptr<AnomalyDetector> detector;
    double mean = 0.0;
    double std = 1.0;
  };
  Calibrated first_;
  Calibrated second_;
  bool fitted_ = false;
};

}  // namespace vehigan::mbds
