#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "features/windows.hpp"

namespace vehigan::mbds {

/// Common interface of every misbehavior detector in the repo — the WGAN
/// discriminators, the VehiGAN ensemble, and all classical baselines.
///
/// Convention (Sec. III-F): `score` returns an *anomaly score*, higher =
/// more anomalous; a sample is flagged as misbehavior when
/// score > threshold. For WGAN discriminators s(x) = -D(x) (Eq. 5).
class AnomalyDetector {
 public:
  virtual ~AnomalyDetector() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Anomaly score of one snapshot (window*width scaled floats).
  virtual float score(std::span<const float> snapshot) = 0;

  /// Bulk scoring; the default loops over score(). Detectors may override
  /// with batched implementations, but every override must return exactly
  /// what the per-sample loop would — including any internal RNG consumption
  /// (one draw per window, in window order) — so results never depend on
  /// which path scored them. WganDetector and VehiGan batch their critics
  /// under this contract; tests/batch_equivalence_test.cpp pins it.
  virtual std::vector<float> score_all(const features::WindowSet& windows);
};

/// Computes the detection threshold tau as the p-th percentile of benign
/// training scores (Sec. III-F, p typically 99.0-99.99).
double percentile_threshold(std::span<const float> benign_scores, double p);

}  // namespace vehigan::mbds
