#include "mbds/plausibility.hpp"

#include <cmath>
#include <stdexcept>

#include "features/feature_engineering.hpp"

namespace vehigan::mbds {

using features::FeatureIndex;

PlausibilityDetector::PlausibilityDetector(features::MinMaxScaler scaler, double dt)
    : scaler_(std::move(scaler)), dt_(dt) {
  noise_scale_.fill(1.0);
}

std::array<double, PlausibilityDetector::kNumResiduals> PlausibilityDetector::residuals(
    std::span<const float> snapshot) const {
  const std::size_t width = scaler_.width();
  if (width != features::kNumFeatures || snapshot.size() % width != 0) {
    throw std::invalid_argument("PlausibilityDetector: snapshot/scaler width mismatch");
  }
  const std::size_t rows = snapshot.size() / width;
  std::array<double, kNumResiduals> acc{};
  for (std::size_t r = 0; r < rows; ++r) {
    // Unscale this row back to physical units.
    std::array<double, features::kNumFeatures> v{};
    for (std::size_t c = 0; c < width; ++c) {
      v[c] = scaler_.unscale_value(c, snapshot[r * width + c]);
    }
    acc[0] += std::abs(v[FeatureIndex::kDx] - v[FeatureIndex::kVx] * dt_);
    acc[1] += std::abs(v[FeatureIndex::kDy] - v[FeatureIndex::kVy] * dt_);
    acc[2] += std::abs(v[FeatureIndex::kDVx] - v[FeatureIndex::kAx] * dt_);
    acc[3] += std::abs(v[FeatureIndex::kDVy] - v[FeatureIndex::kAy] * dt_);
    acc[4] += std::abs(v[FeatureIndex::kDHx] + v[FeatureIndex::kWy] * dt_);
    acc[5] += std::abs(v[FeatureIndex::kDHy] - v[FeatureIndex::kWx] * dt_);
  }
  for (auto& a : acc) a /= static_cast<double>(rows);
  return acc;
}

void PlausibilityDetector::fit(const features::WindowSet& benign) {
  if (benign.count() == 0) throw std::invalid_argument("PlausibilityDetector::fit: no data");
  std::array<double, kNumResiduals> sum{};
  std::array<double, kNumResiduals> sum_sq{};
  for (std::size_t i = 0; i < benign.count(); ++i) {
    const auto res = residuals(benign.snapshot(i));
    for (std::size_t f = 0; f < kNumResiduals; ++f) {
      sum[f] += res[f];
      sum_sq[f] += res[f] * res[f];
    }
  }
  const double n = static_cast<double>(benign.count());
  for (std::size_t f = 0; f < kNumResiduals; ++f) {
    const double mean = sum[f] / n;
    const double var = std::max(sum_sq[f] / n - mean * mean, 0.0);
    // Scale = benign mean + one std: honest windows land around 1.
    noise_scale_[f] = std::max(mean + std::sqrt(var), 1e-6);
  }
  fitted_ = true;
}

float PlausibilityDetector::score(std::span<const float> snapshot) {
  if (!fitted_) throw std::logic_error("PlausibilityDetector::score: fit() not called");
  const auto res = residuals(snapshot);
  double worst = 0.0;
  for (std::size_t f = 0; f < kNumResiduals; ++f) {
    worst = std::max(worst, res[f] / noise_scale_[f]);
  }
  return static_cast<float>(worst);
}

HybridDetector::HybridDetector(std::shared_ptr<AnomalyDetector> first,
                               std::shared_ptr<AnomalyDetector> second) {
  if (!first || !second) throw std::invalid_argument("HybridDetector: null member");
  first_.detector = std::move(first);
  second_.detector = std::move(second);
}

std::string HybridDetector::name() const {
  return first_.detector->name() + "+" + second_.detector->name();
}

void HybridDetector::fit(const features::WindowSet& benign) {
  if (benign.count() < 2) throw std::invalid_argument("HybridDetector::fit: not enough data");
  auto calibrate = [&](Calibrated& member) {
    const std::vector<float> scores = member.detector->score_all(benign);
    double sum = 0.0, sum_sq = 0.0;
    for (float s : scores) {
      sum += s;
      sum_sq += static_cast<double>(s) * s;
    }
    const double n = static_cast<double>(scores.size());
    member.mean = sum / n;
    member.std = std::max(std::sqrt(std::max(sum_sq / n - member.mean * member.mean, 0.0)),
                          1e-9);
  };
  calibrate(first_);
  calibrate(second_);
  fitted_ = true;
}

float HybridDetector::score(std::span<const float> snapshot) {
  if (!fitted_) throw std::logic_error("HybridDetector::score: fit() not called");
  const double a = (first_.detector->score(snapshot) - first_.mean) / first_.std;
  const double b = (second_.detector->score(snapshot) - second_.mean) / second_.std;
  return static_cast<float>(std::max(a, b));
}

}  // namespace vehigan::mbds
