#pragma once

#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

namespace vehigan::util {

/// Deterministic random number generator used by every stochastic component
/// in the library (simulator, attack injectors, model initialization, FGSM
/// noise baselines, ensemble sampling).
///
/// Design notes:
///  * Every subsystem receives an explicit `Rng` (or seed); there is no
///    global RNG state, so experiments are reproducible bit-for-bit given a
///    config seed.
///  * `split()` derives an independent child stream, so that e.g. adding one
///    more model to a training grid does not perturb the streams of the
///    others.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Derives an independent child generator. Mixing with splitmix64-style
  /// constants keeps children decorrelated even for adjacent salts.
  [[nodiscard]] Rng split(std::uint64_t salt) const {
    std::uint64_t z = seed_ + 0x9E3779B97F4A7C15ULL * (salt + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return Rng(z ^ (z >> 31));
  }

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform float in [lo, hi).
  float uniform_f(float lo = 0.0F, float hi = 1.0F) {
    return std::uniform_real_distribution<float>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  float normal_f(float mean = 0.0F, float stddev = 1.0F) {
    return std::normal_distribution<float>(mean, stddev)(engine_);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) {
    if (n == 0) throw std::invalid_argument("Rng::index: n must be > 0");
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  /// Samples k distinct indices from [0, n) without replacement.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace vehigan::util
