#include "util/linalg.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace vehigan::util {

EigenResult jacobi_eigen_symmetric(std::vector<double> a, std::size_t n, int max_sweeps) {
  if (a.size() != n * n) throw std::invalid_argument("jacobi: matrix size != n*n");
  // v starts as identity and accumulates the rotations (columns in row-major
  // v[i*n + j] = component i of eigenvector j while iterating; transposed to
  // the documented layout at the end).
  std::vector<double> v(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  auto off_diagonal_norm = [&]() {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) s += a[i * n + j] * a[i * n + j];
    }
    return std::sqrt(s);
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm() < 1e-12) break;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a[p * n + q];
        if (std::abs(apq) < 1e-18) continue;
        const double app = a[p * n + p];
        const double aqq = a[q * n + q];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply the rotation to rows/columns p and q of a.
        for (std::size_t i = 0; i < n; ++i) {
          const double aip = a[i * n + p];
          const double aiq = a[i * n + q];
          a[i * n + p] = c * aip - s * aiq;
          a[i * n + q] = s * aip + c * aiq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double api = a[p * n + i];
          const double aqi = a[q * n + i];
          a[p * n + i] = c * api - s * aqi;
          a[q * n + i] = s * api + c * aqi;
        }
        // Accumulate into the eigenvector matrix.
        for (std::size_t i = 0; i < n; ++i) {
          const double vip = v[i * n + p];
          const double viq = v[i * n + q];
          v[i * n + p] = c * vip - s * viq;
          v[i * n + q] = s * vip + c * viq;
        }
      }
    }
  }

  // Sort by eigenvalue descending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return a[x * n + x] > a[y * n + y]; });

  EigenResult result;
  result.n = n;
  result.values.reserve(n);
  result.vectors.resize(n * n);
  for (std::size_t jj = 0; jj < n; ++jj) {
    const std::size_t j = order[jj];
    result.values.push_back(a[j * n + j]);
    for (std::size_t i = 0; i < n; ++i) result.vectors[jj * n + i] = v[i * n + j];
  }
  return result;
}

void gemm_nt_bias(std::size_t n, std::size_t out, std::size_t in, const float* a, const float* b,
                  const float* bias, float* c) {
  // Block over rows so the B panel (out x in, the weight matrix) streams
  // through cache once per row block instead of once per row. The k loop
  // stays innermost and ascending per output element, which keeps every
  // C[i][o] bit-identical to the unblocked single-row product.
  constexpr std::size_t kRowBlock = 32;
  for (std::size_t i0 = 0; i0 < n; i0 += kRowBlock) {
    const std::size_t i1 = std::min(n, i0 + kRowBlock);
    for (std::size_t o = 0; o < out; ++o) {
      const float* b_row = b + o * in;
      for (std::size_t i = i0; i < i1; ++i) {
        const float* a_row = a + i * in;
        float acc = bias != nullptr ? bias[o] : 0.0F;
        for (std::size_t k = 0; k < in; ++k) acc += b_row[k] * a_row[k];
        c[i * out + o] = acc;
      }
    }
  }
}

}  // namespace vehigan::util
