#include "util/rng.hpp"

#include <numeric>

namespace vehigan::util {

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("sample_without_replacement: k > n");
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  // Partial Fisher-Yates: after k swaps the first k entries are the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + index(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace vehigan::util
