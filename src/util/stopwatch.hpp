#pragma once

#include <chrono>
#include <cstdint>

namespace vehigan::util {

/// Monotonic stopwatch used for the Fig. 8 inference-latency measurements,
/// coarse progress reporting during training, and the bench timing helpers.
/// Every reading derives from std::chrono::steady_clock, so elapsed times
/// are immune to wall-clock steps (NTP slew, suspend/resume).
class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;

  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }

  /// Integer nanoseconds — lossless at any uptime, for telemetry histograms
  /// and sub-microsecond bench deltas where double milliseconds round.
  [[nodiscard]] std::uint64_t elapsed_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_).count());
  }

 private:
  Clock::time_point start_;
};

}  // namespace vehigan::util
