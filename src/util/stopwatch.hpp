#pragma once

#include <chrono>

namespace vehigan::util {

/// Wall-clock stopwatch used for the Fig. 8 inference-latency measurements
/// and coarse progress reporting during training.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace vehigan::util
