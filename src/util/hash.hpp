#pragma once

#include <cstdint>
#include <string>

namespace vehigan::util {

/// Incremental FNV-1a 64-bit hash. Used by the experiment workspace to key
/// on-disk caches by the full experiment configuration, so that changing any
/// knob invalidates exactly the artifacts it affects.
class Fnv1a {
 public:
  Fnv1a& add_bytes(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      state_ ^= bytes[i];
      state_ *= 0x100000001B3ULL;
    }
    return *this;
  }

  Fnv1a& add(const std::string& s) { return add_bytes(s.data(), s.size()); }

  template <typename T>
  Fnv1a& add_pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return add_bytes(&value, sizeof(value));
  }

  [[nodiscard]] std::uint64_t value() const { return state_; }

  /// Hex string of the digest, usable as a directory name.
  [[nodiscard]] std::string hex() const {
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    std::uint64_t v = state_;
    for (int i = 15; i >= 0; --i) {
      out[static_cast<std::size_t>(i)] = digits[v & 0xF];
      v >>= 4;
    }
    return out;
  }

 private:
  std::uint64_t state_ = 0xCBF29CE484222325ULL;
};

}  // namespace vehigan::util
