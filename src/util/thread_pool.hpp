#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vehigan::util {

/// Fixed-size worker pool used to train independent WGAN grid members in
/// parallel and to run per-model inference for the ensemble. On a single-core
/// host the pool degenerates gracefully to one worker.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Tasks submitted but not yet picked up by a worker. Lock-free sample for
  /// telemetry gauges (the ensemble exports it as
  /// vehigan_ensemble_pool_queue_depth); momentarily stale by design.
  [[nodiscard]] std::size_t queue_depth() const {
    return pending_.load(std::memory_order_relaxed);
  }

  /// High-water mark of queue_depth() over the pool's lifetime.
  [[nodiscard]] std::size_t peak_queue_depth() const {
    return peak_depth_.load(std::memory_order_relaxed);
  }

  /// Enqueues a task; the returned future reports its result or exception.
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using Result = std::invoke_result_t<F>;
    auto packaged = std::make_shared<std::packaged_task<Result()>>(std::forward<F>(task));
    std::future<Result> future = packaged->get_future();
    {
      const std::scoped_lock lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      tasks_.emplace([packaged] { (*packaged)(); });
    }
    const std::size_t depth = pending_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::size_t peak = peak_depth_.load(std::memory_order_relaxed);
    while (depth > peak &&
           !peak_depth_.compare_exchange_weak(peak, depth, std::memory_order_relaxed)) {
    }
    cv_.notify_one();
    return future;
  }

  /// Runs `fn(i)` for i in [0, n) across the pool and blocks until all done.
  /// Exceptions from tasks are rethrown (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> peak_depth_{0};
};

}  // namespace vehigan::util
