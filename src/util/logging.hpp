#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace vehigan::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Minimal thread-safe leveled logger. The library logs sparingly (training
/// progress, cache hits, MBR emission); examples and benches raise or lower
/// the level as appropriate.
class Logger {
 public:
  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  void log(LogLevel level, const std::string& message) {
    if (level < level_) return;
    const std::scoped_lock lock(mutex_);
    std::ostream& out = (level >= LogLevel::kWarn) ? std::cerr : std::clog;
    out << "[" << name(level) << "] " << message << '\n';
  }

 private:
  Logger() = default;

  static const char* name(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug: return "debug";
      case LogLevel::kInfo: return "info ";
      case LogLevel::kWarn: return "warn ";
      case LogLevel::kError: return "error";
      case LogLevel::kOff: return "off  ";
    }
    return "?";
  }

  LogLevel level_ = LogLevel::kInfo;
  std::mutex mutex_;
};

namespace detail {
inline void format_into(std::ostringstream&) {}

template <typename T, typename... Rest>
void format_into(std::ostringstream& os, const T& value, const Rest&... rest) {
  os << value;
  format_into(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, const Args&... args) {
  if (level < Logger::instance().level()) return;
  std::ostringstream os;
  detail::format_into(os, args...);
  Logger::instance().log(level, os.str());
}

template <typename... Args>
void log_debug(const Args&... args) { log(LogLevel::kDebug, args...); }
template <typename... Args>
void log_info(const Args&... args) { log(LogLevel::kInfo, args...); }
template <typename... Args>
void log_warn(const Args&... args) { log(LogLevel::kWarn, args...); }
template <typename... Args>
void log_error(const Args&... args) { log(LogLevel::kError, args...); }

}  // namespace vehigan::util
