#pragma once

#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace vehigan::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Minimal thread-safe leveled logger. The library logs sparingly (training
/// progress, cache hits, MBR emission); examples and benches raise or lower
/// the level as appropriate.
///
/// Environment overrides, parsed once at construction so multi-process
/// tests and benches can raise verbosity without code edits:
///  * VEHIGAN_LOG_LEVEL = debug|info|warn|error|off sets the initial level
///    (set_level still wins afterwards);
///  * VEHIGAN_LOG_TIMESTAMPS = 1 enables monotonic timestamps.
///
/// Timestamps are monotonic (steady_clock seconds since logger creation,
/// `[+12.345s]`), so interleaved lines from concurrent trainers order
/// correctly even if the wall clock steps.
class Logger {
 public:
  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  void set_timestamps(bool on) { timestamps_ = on; }
  [[nodiscard]] bool timestamps() const { return timestamps_; }

  /// Monotonic seconds since the logger was first used.
  [[nodiscard]] double uptime_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

  void log(LogLevel level, const std::string& message) {
    if (level < level_) return;
    std::ostringstream line;
    if (timestamps_) {
      line << "[+" << std::fixed << std::setprecision(3) << uptime_seconds() << "s] ";
    }
    line << "[" << name(level) << "] " << message << '\n';
    const std::scoped_lock lock(mutex_);
    std::ostream& out = (level >= LogLevel::kWarn) ? std::cerr : std::clog;
    out << line.str();
  }

  /// Parses a level name (as accepted in VEHIGAN_LOG_LEVEL); falls back to
  /// `fallback` on anything unrecognized.
  static LogLevel parse_level(const char* text, LogLevel fallback = LogLevel::kInfo) {
    if (text == nullptr) return fallback;
    const std::string s(text);
    if (s == "debug") return LogLevel::kDebug;
    if (s == "info") return LogLevel::kInfo;
    if (s == "warn" || s == "warning") return LogLevel::kWarn;
    if (s == "error") return LogLevel::kError;
    if (s == "off" || s == "none") return LogLevel::kOff;
    return fallback;
  }

 private:
  Logger() : start_(std::chrono::steady_clock::now()) {
    level_ = parse_level(std::getenv("VEHIGAN_LOG_LEVEL"), LogLevel::kInfo);
    if (const char* ts = std::getenv("VEHIGAN_LOG_TIMESTAMPS");
        ts != nullptr && *ts != '\0' && std::string(ts) != "0") {
      timestamps_ = true;
    }
  }

  static const char* name(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug: return "debug";
      case LogLevel::kInfo: return "info ";
      case LogLevel::kWarn: return "warn ";
      case LogLevel::kError: return "error";
      case LogLevel::kOff: return "off  ";
    }
    return "?";
  }

  LogLevel level_ = LogLevel::kInfo;
  bool timestamps_ = false;
  std::chrono::steady_clock::time_point start_;
  std::mutex mutex_;
};

namespace detail {
inline void format_into(std::ostringstream&) {}

template <typename T, typename... Rest>
void format_into(std::ostringstream& os, const T& value, const Rest&... rest) {
  os << value;
  format_into(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, const Args&... args) {
  if (level < Logger::instance().level()) return;
  std::ostringstream os;
  detail::format_into(os, args...);
  Logger::instance().log(level, os.str());
}

template <typename... Args>
void log_debug(const Args&... args) { log(LogLevel::kDebug, args...); }
template <typename... Args>
void log_info(const Args&... args) { log(LogLevel::kInfo, args...); }
template <typename... Args>
void log_warn(const Args&... args) { log(LogLevel::kWarn, args...); }
template <typename... Args>
void log_error(const Args&... args) { log(LogLevel::kError, args...); }

}  // namespace vehigan::util
