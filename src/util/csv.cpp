#include "util/csv.hpp"

#include <sstream>
#include <stdexcept>

namespace vehigan::util {

std::size_t CsvTable::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw std::out_of_range("CsvTable: no column named '" + name + "'");
}

CsvWriter::CsvWriter(const std::filesystem::path& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path.string());
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string escaped = "\"";
  for (char c : cell) {
    if (c == '"') escaped += "\"\"";
    else escaped += c;
  }
  escaped += '"';
  return escaped;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row_numeric(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) {
    std::ostringstream os;
    os.precision(17);
    os << v;
    text.push_back(os.str());
  }
  write_row(text);
}

namespace {

/// Splits one logical CSV record (quotes already balanced) into cells.
std::vector<std::string> split_record(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c != '\r') {
      cell += c;
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

}  // namespace

CsvTable read_csv(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv: cannot open " + path.string());
  CsvTable table;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto cells = split_record(line);
    if (first) {
      table.header = std::move(cells);
      first = false;
    } else {
      if (cells.size() != table.header.size()) {
        throw std::runtime_error("read_csv: ragged row in " + path.string());
      }
      table.rows.push_back(std::move(cells));
    }
  }
  return table;
}

}  // namespace vehigan::util
