#pragma once

#include <cstddef>
#include <vector>

namespace vehigan::util {

/// Eigen decomposition of a real symmetric matrix, eigenvalues sorted
/// descending. `vectors` is column-major: vectors[j * n + i] is component i
/// of the j-th eigenvector (matching values[j]).
struct EigenResult {
  std::vector<double> values;
  std::vector<double> vectors;
  std::size_t n = 0;

  [[nodiscard]] const double* eigenvector(std::size_t j) const { return vectors.data() + j * n; }
};

/// Cyclic Jacobi rotation method. Robust and simple; O(n^3) per sweep, which
/// is ample for the <=200-dimensional covariance matrices of the PCA
/// baseline. `a` is the row-major symmetric input (only used as a value).
EigenResult jacobi_eigen_symmetric(std::vector<double> a, std::size_t n, int max_sweeps = 64);

}  // namespace vehigan::util
