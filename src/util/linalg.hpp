#pragma once

#include <cstddef>
#include <vector>

namespace vehigan::util {

/// Eigen decomposition of a real symmetric matrix, eigenvalues sorted
/// descending. `vectors` is column-major: vectors[j * n + i] is component i
/// of the j-th eigenvector (matching values[j]).
struct EigenResult {
  std::vector<double> values;
  std::vector<double> vectors;
  std::size_t n = 0;

  [[nodiscard]] const double* eigenvector(std::size_t j) const { return vectors.data() + j * n; }
};

/// Cyclic Jacobi rotation method. Robust and simple; O(n^3) per sweep, which
/// is ample for the <=200-dimensional covariance matrices of the PCA
/// baseline. `a` is the row-major symmetric input (only used as a value).
EigenResult jacobi_eigen_symmetric(std::vector<double> a, std::size_t n, int max_sweeps = 64);

/// Row-major GEMM with a transposed right factor and broadcast bias:
///   C[n x out] = A[n x in] * B[out x in]^T, then C[i][o] += bias[o].
///
/// This is the batched inference workhorse of nn::Dense: one call covers all
/// N windows of a batch instead of N separate vector products. The per-output
/// accumulation runs over k in ascending order, exactly like the scalar
/// single-row product, so a batched forward is bit-identical to N single-row
/// forwards (the batch-equivalence tests rely on this).
void gemm_nt_bias(std::size_t n, std::size_t out, std::size_t in, const float* a, const float* b,
                  const float* bias, float* c);

}  // namespace vehigan::util
