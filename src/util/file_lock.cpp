#include "util/file_lock.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#define VEHIGAN_HAVE_FLOCK 1
#endif

namespace vehigan::util {

namespace {
[[noreturn]] void fail(const char* what, const std::filesystem::path& path) {
  throw std::runtime_error(std::string("FileLock: ") + what + " " + path.string() + ": " +
                           std::strerror(errno));
}
}  // namespace

FileLock::FileLock(std::filesystem::path path) : path_(std::move(path)) {
#ifdef VEHIGAN_HAVE_FLOCK
  fd_ = ::open(path_.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (fd_ < 0) fail("cannot open", path_);
#endif
}

FileLock::~FileLock() {
#ifdef VEHIGAN_HAVE_FLOCK
  if (held_) ::flock(fd_, LOCK_UN);
  if (fd_ >= 0) ::close(fd_);
#endif
}

void FileLock::lock() {
#ifdef VEHIGAN_HAVE_FLOCK
  int rc = 0;
  do {
    rc = ::flock(fd_, LOCK_EX);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) fail("cannot lock", path_);
#endif
  held_ = true;
}

bool FileLock::try_lock() {
#ifdef VEHIGAN_HAVE_FLOCK
  int rc = 0;
  do {
    rc = ::flock(fd_, LOCK_EX | LOCK_NB);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    if (errno == EWOULDBLOCK) return false;
    fail("cannot try-lock", path_);
  }
#endif
  held_ = true;
  return true;
}

void FileLock::unlock() {
#ifdef VEHIGAN_HAVE_FLOCK
  if (held_ && ::flock(fd_, LOCK_UN) != 0) fail("cannot unlock", path_);
#endif
  held_ = false;
}

}  // namespace vehigan::util
