#pragma once

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace vehigan::util {

/// A parsed CSV table: a header row plus data rows of equal width.
/// Used to export simulated BSM datasets and experiment results, and to
/// re-import them (dataset_generator example; regression tests).
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column; throws std::out_of_range if absent.
  [[nodiscard]] std::size_t column(const std::string& name) const;
};

/// Streaming CSV writer. Values containing separators/quotes/newlines are
/// quoted per RFC 4180.
class CsvWriter {
 public:
  explicit CsvWriter(const std::filesystem::path& path);

  void write_row(const std::vector<std::string>& cells);

  /// Convenience: formats doubles with enough precision to round-trip.
  void write_row_numeric(const std::vector<double>& cells);

 private:
  std::ofstream out_;
};

/// Reads an entire CSV file (first row = header). Handles quoted fields.
CsvTable read_csv(const std::filesystem::path& path);

/// Escapes one cell per RFC 4180 if needed.
std::string csv_escape(const std::string& cell);

}  // namespace vehigan::util
