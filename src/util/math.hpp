#pragma once

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

namespace vehigan::util {

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;

/// Wraps an angle (radians) into [0, 2*pi).
inline double wrap_angle(double theta) {
  theta = std::fmod(theta, kTwoPi);
  if (theta < 0) theta += kTwoPi;
  return theta;
}

/// Smallest signed difference a-b between two angles, in (-pi, pi].
inline double angle_diff(double a, double b) {
  double d = std::fmod(a - b, kTwoPi);
  if (d > kPi) d -= kTwoPi;
  if (d <= -kPi) d += kTwoPi;
  return d;
}

/// Arithmetic mean; 0 for an empty range.
inline double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) / static_cast<double>(values.size());
}

inline double mean_f(std::span<const float> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (float v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

/// Population standard deviation.
inline double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double accum = 0.0;
  for (double v : values) accum += (v - m) * (v - m);
  return std::sqrt(accum / static_cast<double>(values.size()));
}

/// p-th percentile (p in [0, 100]) with linear interpolation between order
/// statistics; matches numpy.percentile(interpolation="linear"). Used for the
/// detection-threshold rule of VEHIGAN Sec. III-F (p typically 99..99.99).
template <typename T>
double percentile(std::vector<T> values, double p) {
  if (values.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p outside [0,100]");
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return static_cast<double>(values[lo]) + frac * (static_cast<double>(values[hi]) - static_cast<double>(values[lo]));
}

template <typename T>
T clamp(T v, T lo, T hi) {
  return std::min(std::max(v, lo), hi);
}

}  // namespace vehigan::util
