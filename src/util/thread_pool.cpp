#include "util/thread_pool.hpp"

#include <algorithm>

namespace vehigan::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    pending_.fetch_sub(1, std::memory_order_relaxed);
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace vehigan::util
