#pragma once

#include <filesystem>

namespace vehigan::util {

/// Inter-process advisory lock over a dedicated lock file (BasicLockable, so
/// it composes with std::scoped_lock / std::unique_lock). Used by the
/// experiment workspace so N concurrent bench processes sharing one cache
/// directory elect exactly one trainer; the rest block in lock() and then
/// find the grid fully cached.
///
/// POSIX implementation is flock(2): the lock is tied to the open file
/// description, so two FileLock instances exclude each other whether they
/// live in different processes or in different threads of one process, and
/// the kernel drops the lock automatically if the holder dies (kill -9 never
/// wedges the cache). The lock file itself is left in place — its content is
/// irrelevant, only the lock state matters.
class FileLock {
 public:
  /// Creates (if needed) and opens the lock file. Does NOT acquire the lock.
  explicit FileLock(std::filesystem::path path);
  ~FileLock();

  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;
  FileLock(FileLock&&) = delete;
  FileLock& operator=(FileLock&&) = delete;

  /// Blocks until the exclusive lock is held.
  void lock();

  /// Non-blocking acquire; true iff the lock was obtained.
  bool try_lock();

  void unlock();

  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
  int fd_ = -1;
  bool held_ = false;
};

}  // namespace vehigan::util
