#include "data/json.hpp"

#include <cctype>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace vehigan::data {

namespace {

[[noreturn]] void fail(const std::string& what, std::size_t pos) {
  throw std::runtime_error("Json::parse: " + what + " at offset " + std::to_string(pos));
}

void skip_ws(const std::string& s, std::size_t& pos) {
  while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                            s[pos] == '\r')) {
    ++pos;
  }
}

std::string parse_string(const std::string& s, std::size_t& pos) {
  if (s[pos] != '"') fail("expected string", pos);
  ++pos;
  std::string out;
  while (pos < s.size() && s[pos] != '"') {
    if (s[pos] == '\\') {
      if (pos + 1 >= s.size()) fail("dangling escape", pos);
      ++pos;
      switch (s[pos]) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 >= s.size()) fail("truncated \\u escape", pos);
          // Pass the code unit through as UTF-8 for the BMP subset we emit.
          const std::string hex = s.substr(pos + 1, 4);
          const auto code = static_cast<unsigned>(std::stoul(hex, nullptr, 16));
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          pos += 4;
          break;
        }
        default: fail("unknown escape", pos);
      }
      ++pos;
    } else {
      out += s[pos++];
    }
  }
  if (pos >= s.size()) fail("unterminated string", pos);
  ++pos;  // closing quote
  return out;
}

}  // namespace

bool Json::as_bool() const {
  if (!is_bool()) throw std::runtime_error("Json: not a bool");
  return std::get<bool>(value_);
}

double Json::as_number() const {
  if (!is_number()) throw std::runtime_error("Json: not a number");
  return std::get<double>(value_);
}

const std::string& Json::as_string() const {
  if (!is_string()) throw std::runtime_error("Json: not a string");
  return std::get<std::string>(value_);
}

const Json::Array& Json::as_array() const {
  if (!is_array()) throw std::runtime_error("Json: not an array");
  return std::get<Array>(value_);
}

const Json::Object& Json::as_object() const {
  if (!is_object()) throw std::runtime_error("Json: not an object");
  return std::get<Object>(value_);
}

const Json& Json::at(const std::string& key) const {
  const auto& object = as_object();
  const auto it = object.find(key);
  if (it == object.end()) throw std::out_of_range("Json: missing key '" + key + "'");
  return it->second;
}

bool Json::contains(const std::string& key) const {
  return is_object() && as_object().contains(key);
}

const Json& Json::at(std::size_t index) const {
  const auto& array = as_array();
  if (index >= array.size()) throw std::out_of_range("Json: index out of range");
  return array[index];
}

std::string Json::dump() const {
  std::ostringstream out;
  struct Dumper {
    std::ostringstream& out;
    void operator()(std::nullptr_t) { out << "null"; }
    void operator()(bool b) { out << (b ? "true" : "false"); }
    void operator()(double d) {
      if (std::isfinite(d) && d == std::floor(d) && std::abs(d) < 1e15) {
        out << static_cast<long long>(d);
      } else {
        out.precision(17);
        out << d;
      }
    }
    void operator()(const std::string& s) {
      out << '"';
      for (char c : s) {
        switch (c) {
          case '"': out << "\\\""; break;
          case '\\': out << "\\\\"; break;
          case '\n': out << "\\n"; break;
          case '\r': out << "\\r"; break;
          case '\t': out << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
              char buf[8];
              std::snprintf(buf, sizeof(buf), "\\u%04x", c);
              out << buf;
            } else {
              out << c;
            }
        }
      }
      out << '"';
    }
    void operator()(const Array& a) {
      out << '[';
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i) out << ',';
        out << a[i].dump();
      }
      out << ']';
    }
    void operator()(const Object& o) {
      out << '{';
      bool first = true;
      for (const auto& [key, value] : o) {
        if (!first) out << ',';
        first = false;
        Dumper{out}(key);
        out << ':' << value.dump();
      }
      out << '}';
    }
  };
  std::visit(Dumper{out}, value_);
  return out.str();
}

Json Json::parse_prefix(const std::string& text, std::size_t& pos) {
  skip_ws(text, pos);
  if (pos >= text.size()) fail("unexpected end of input", pos);
  const char c = text[pos];
  if (c == 'n') {
    if (text.compare(pos, 4, "null") != 0) fail("bad literal", pos);
    pos += 4;
    return Json(nullptr);
  }
  if (c == 't') {
    if (text.compare(pos, 4, "true") != 0) fail("bad literal", pos);
    pos += 4;
    return Json(true);
  }
  if (c == 'f') {
    if (text.compare(pos, 5, "false") != 0) fail("bad literal", pos);
    pos += 5;
    return Json(false);
  }
  if (c == '"') return Json(parse_string(text, pos));
  if (c == '[') {
    ++pos;
    Array array;
    skip_ws(text, pos);
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
      return Json(std::move(array));
    }
    for (;;) {
      array.push_back(parse_prefix(text, pos));
      skip_ws(text, pos);
      if (pos >= text.size()) fail("unterminated array", pos);
      if (text[pos] == ',') {
        ++pos;
        continue;
      }
      if (text[pos] == ']') {
        ++pos;
        return Json(std::move(array));
      }
      fail("expected ',' or ']'", pos);
    }
  }
  if (c == '{') {
    ++pos;
    Object object;
    skip_ws(text, pos);
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return Json(std::move(object));
    }
    for (;;) {
      skip_ws(text, pos);
      std::string key = parse_string(text, pos);
      skip_ws(text, pos);
      if (pos >= text.size() || text[pos] != ':') fail("expected ':'", pos);
      ++pos;
      object[std::move(key)] = parse_prefix(text, pos);
      skip_ws(text, pos);
      if (pos >= text.size()) fail("unterminated object", pos);
      if (text[pos] == ',') {
        ++pos;
        continue;
      }
      if (text[pos] == '}') {
        ++pos;
        return Json(std::move(object));
      }
      fail("expected ',' or '}'", pos);
    }
  }
  // Number.
  const std::size_t start = pos;
  if (text[pos] == '-' || text[pos] == '+') ++pos;
  while (pos < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[pos])) || text[pos] == '.' ||
          text[pos] == 'e' || text[pos] == 'E' || text[pos] == '-' || text[pos] == '+')) {
    ++pos;
  }
  if (pos == start) fail("unexpected character", pos);
  try {
    return Json(std::stod(text.substr(start, pos - start)));
  } catch (const std::exception&) {
    fail("bad number", start);
  }
}

Json Json::parse(const std::string& text) {
  std::size_t pos = 0;
  Json value = parse_prefix(text, pos);
  skip_ws(text, pos);
  if (pos != text.size()) fail("trailing content", pos);
  return value;
}

}  // namespace vehigan::data
