#pragma once

#include <filesystem>
#include <map>

#include "sim/bsm.hpp"
#include "vasp/dataset_builder.hpp"

namespace vehigan::data {

/// VeReMi-style dataset interchange (the paper benchmarks against VeReMi /
/// VeReMi-Extension [16][17], the community's comparable-evaluation format).
///
/// Files:
///  * `<stem>.json`       — JSON-lines message log, one object per BSM:
///      {"type":3,"sendTime":t,"sender":id,
///       "pos":[x,y,0],"spd":[vx,vy,0],"acl":[ax,ay,0],"hed":[hx,hy,0],
///       "yaw":w}
///    pos/spd/acl/hed mirror VeReMi-Extension's vector fields; `yaw` is this
///    repo's documented extension (VeReMi carries no yaw rate; without it
///    the import would be lossy for attacks 24-35).
///  * `<stem>.gt.json`    — JSON-lines ground truth:
///      {"sender":id,"attackerType":k}   (0 = honest; 1-35 = attack index)
///
/// Scalars are reconstructed on import: speed = |spd|, heading from hed,
/// accel = sign(spd.acl) * |acl| (longitudinal component).
struct VeremiExport {
  std::filesystem::path messages;
  std::filesystem::path ground_truth;
};

/// Writes a misbehavior scenario in the dialect above. Returns the paths.
VeremiExport write_veremi(const vasp::MisbehaviorDataset& scenario, int attack_index,
                          const std::filesystem::path& directory, const std::string& stem);

/// Reads the dialect back: the dataset grouped per sender plus the label map
/// sender -> attackerType (0 = honest).
///
/// Tolerance/rejection contract (pinned by tests/data_test.cpp fixtures):
///  * unknown keys (rcvTime, senderPseudo, messageID, ...) are ignored, so
///    real VeReMi receiver logs import as-is;
///  * records with a "type" other than 3 (e.g. type-2 GPS self-reports) are
///    skipped — they are not channel messages;
///  * a malformed or truncated line, a missing required field, or a
///    short pos/spd/acl/hed vector throws std::runtime_error carrying
///    "<file>:<line>: malformed record: ..." so corrupt traces fail loudly.
struct VeremiImport {
  sim::BsmDataset dataset;
  std::map<std::uint32_t, int> attacker_type;
};

VeremiImport read_veremi(const VeremiExport& files);

}  // namespace vehigan::data
