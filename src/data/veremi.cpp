#include "data/veremi.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "data/json.hpp"
#include "util/math.hpp"

namespace vehigan::data {

namespace {

Json bsm_to_json(const sim::Bsm& m) {
  const double hx = std::cos(m.heading);
  const double hy = std::sin(m.heading);
  Json::Object object;
  object["type"] = Json(3);  // VeReMi BSM record type
  object["sendTime"] = Json(m.time);
  object["sender"] = Json(static_cast<double>(m.vehicle_id));
  object["pos"] = Json(Json::Array{Json(m.x), Json(m.y), Json(0.0)});
  object["spd"] =
      Json(Json::Array{Json(m.speed * hx), Json(m.speed * hy), Json(0.0)});
  object["acl"] =
      Json(Json::Array{Json(m.accel * hx), Json(m.accel * hy), Json(0.0)});
  object["hed"] = Json(Json::Array{Json(hx), Json(hy), Json(0.0)});
  object["yaw"] = Json(m.yaw_rate);
  return Json(std::move(object));
}

/// Rejection path for corrupt trace files: every parse/shape failure is
/// rethrown with the file and 1-based line it came from, so a truncated
/// download or a hand-edited trace fails loudly and locatably instead of
/// importing garbage windows.
[[noreturn]] void fail_record(const std::filesystem::path& file, std::size_t lineno,
                              const std::string& what) {
  throw std::runtime_error("read_veremi: " + file.string() + ":" + std::to_string(lineno) +
                           ": malformed record: " + what);
}

sim::Bsm json_to_bsm(const Json& record) {
  for (const char* key : {"sendTime", "sender", "pos", "spd", "acl", "hed"}) {
    if (!record.contains(key)) {
      throw std::runtime_error(std::string("missing field \"") + key + "\"");
    }
  }
  sim::Bsm m;
  m.vehicle_id = static_cast<std::uint32_t>(record.at("sender").as_number());
  m.time = record.at("sendTime").as_number();
  m.x = record.at("pos").at(0).as_number();
  m.y = record.at("pos").at(1).as_number();
  const double sx = record.at("spd").at(0).as_number();
  const double sy = record.at("spd").at(1).as_number();
  m.speed = std::hypot(sx, sy);
  const double hx = record.at("hed").at(0).as_number();
  const double hy = record.at("hed").at(1).as_number();
  m.heading = util::wrap_angle(std::atan2(hy, hx));
  const double ax = record.at("acl").at(0).as_number();
  const double ay = record.at("acl").at(1).as_number();
  // Longitudinal accel: magnitude signed by alignment with the heading.
  const double along = ax * hx + ay * hy;
  m.accel = (along >= 0 ? 1.0 : -1.0) * std::hypot(ax, ay);
  m.yaw_rate = record.contains("yaw") ? record.at("yaw").as_number() : 0.0;
  return m;
}

}  // namespace

VeremiExport write_veremi(const vasp::MisbehaviorDataset& scenario, int attack_index,
                          const std::filesystem::path& directory, const std::string& stem) {
  std::filesystem::create_directories(directory);
  VeremiExport files;
  files.messages = directory / (stem + ".json");
  files.ground_truth = directory / (stem + ".gt.json");

  std::ofstream messages(files.messages);
  std::ofstream truth(files.ground_truth);
  if (!messages || !truth) {
    throw std::runtime_error("write_veremi: cannot open output files in " + directory.string());
  }
  for (const auto& labeled : scenario.traces) {
    for (const auto& m : labeled.trace.messages) {
      messages << bsm_to_json(m).dump() << '\n';
    }
    Json::Object gt;
    gt["sender"] = Json(static_cast<double>(labeled.trace.vehicle_id));
    gt["attackerType"] = Json(labeled.malicious ? attack_index : 0);
    truth << Json(std::move(gt)).dump() << '\n';
  }
  return files;
}

VeremiImport read_veremi(const VeremiExport& files) {
  VeremiImport result;

  std::ifstream messages(files.messages);
  if (!messages) throw std::runtime_error("read_veremi: cannot open " + files.messages.string());
  std::map<std::uint32_t, sim::VehicleTrace> by_sender;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(messages, line)) {
    ++lineno;
    if (line.empty()) continue;
    try {
      const Json record = Json::parse(line);
      // Real VeReMi receiver logs interleave type-2 GPS self-reports with
      // the type-3 BSMs; only the latter are channel messages. A truncated
      // file fails here too: its cut-off final line is not valid JSON.
      if (record.contains("type") && record.at("type").as_number() != 3.0) continue;
      const sim::Bsm m = json_to_bsm(record);
      auto& trace = by_sender[m.vehicle_id];
      trace.vehicle_id = m.vehicle_id;
      trace.messages.push_back(m);
    } catch (const std::exception& error) {
      fail_record(files.messages, lineno, error.what());
    }
  }
  for (auto& [sender, trace] : by_sender) result.dataset.traces.push_back(std::move(trace));

  std::ifstream truth(files.ground_truth);
  if (!truth) {
    throw std::runtime_error("read_veremi: cannot open " + files.ground_truth.string());
  }
  lineno = 0;
  while (std::getline(truth, line)) {
    ++lineno;
    if (line.empty()) continue;
    try {
      const Json record = Json::parse(line);
      if (!record.contains("sender") || !record.contains("attackerType")) {
        throw std::runtime_error("ground-truth record needs \"sender\" and \"attackerType\"");
      }
      result.attacker_type[static_cast<std::uint32_t>(record.at("sender").as_number())] =
          static_cast<int>(record.at("attackerType").as_number());
    } catch (const std::exception& error) {
      fail_record(files.ground_truth, lineno, error.what());
    }
  }
  return result;
}

}  // namespace vehigan::data
