#pragma once

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace vehigan::data {

/// Minimal JSON document model — just enough for the VeReMi-style dataset
/// interchange (numbers, strings, bools, null, arrays, objects). No
/// external dependency; the parser is a straightforward recursive-descent
/// over UTF-8 text with \uXXXX escapes passed through unvalidated.
class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(long long i) : value_(static_cast<double>(i)) {}
  Json(unsigned u) : value_(static_cast<double>(u)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(value_); }
  [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(value_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(value_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(value_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(value_); }

  /// Typed accessors; throw std::runtime_error on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object field lookup; throws std::out_of_range when absent.
  [[nodiscard]] const Json& at(const std::string& key) const;
  [[nodiscard]] bool contains(const std::string& key) const;

  /// Array element; throws std::out_of_range.
  [[nodiscard]] const Json& at(std::size_t index) const;

  /// Serializes to compact JSON (no whitespace), numbers with enough
  /// precision to round-trip doubles.
  [[nodiscard]] std::string dump() const;

  /// Parses one JSON document; throws std::runtime_error with a position
  /// on malformed input. Trailing non-whitespace is an error.
  static Json parse(const std::string& text);

  /// Parses a document starting at `pos` (updated past the value); used for
  /// JSON-lines streams.
  static Json parse_prefix(const std::string& text, std::size_t& pos);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

}  // namespace vehigan::data
