#pragma once

#include <iosfwd>
#include <vector>

#include "features/series.hpp"

namespace vehigan::features {

/// Per-column min-max scaler mapping training data to [0, 1].
///
/// Fit on *benign training* series only; at test time, misbehaving values
/// scale outside [0, 1], which is part of the detection signal, so transform
/// never clips. The scaler also defines the unit in which FGSM's epsilon is
/// expressed: eps = 0.01 corresponds to a 1 % change of a sensor's benign
/// dynamic range, as in Sec. V-B.
class MinMaxScaler {
 public:
  MinMaxScaler() = default;

  /// Computes per-column minima/maxima over all rows of all series.
  /// Degenerate columns (max == min) map to 0.5.
  void fit(const std::vector<Series>& series);

  [[nodiscard]] bool fitted() const { return !min_.empty(); }
  [[nodiscard]] std::size_t width() const { return min_.size(); }

  /// In-place transform of one series: v -> (v - min) / (max - min).
  void transform(Series& s) const;

  /// In-place inverse transform (used to express adversarial perturbations
  /// back in physical units for reports).
  void inverse_transform(Series& s) const;

  /// Scales a single value of column c.
  [[nodiscard]] float scale_value(std::size_t c, float v) const;
  [[nodiscard]] float unscale_value(std::size_t c, float v) const;

  [[nodiscard]] const std::vector<float>& column_min() const { return min_; }
  [[nodiscard]] const std::vector<float>& column_max() const { return max_; }

  /// Binary (de)serialization for the experiment cache.
  void save(std::ostream& out) const;
  static MinMaxScaler load(std::istream& in);

 private:
  std::vector<float> min_;
  std::vector<float> max_;
};

}  // namespace vehigan::features
