#include "features/series.hpp"

namespace vehigan::features {

Series to_series(const FeatureSeries& fs) {
  Series s;
  to_series_into(fs, s);
  return s;
}

void to_series_into(const FeatureSeries& fs, Series& s) {
  s.vehicle_id = fs.vehicle_id;
  s.width = kNumFeatures;
  s.values.clear();
  s.values.reserve(fs.rows.size() * kNumFeatures);
  for (const auto& row : fs.rows) {
    s.values.insert(s.values.end(), row.begin(), row.end());
  }
}

Series extract_raw_series(const sim::VehicleTrace& trace) {
  Series s;
  s.vehicle_id = trace.vehicle_id;
  s.width = kNumRawFeatures;
  if (trace.messages.size() < 2) return s;
  s.values.reserve((trace.messages.size() - 1) * kNumRawFeatures);
  for (std::size_t i = 1; i < trace.messages.size(); ++i) {
    const sim::Bsm& m = trace.messages[i];
    s.values.push_back(static_cast<float>(m.x));
    s.values.push_back(static_cast<float>(m.y));
    s.values.push_back(static_cast<float>(m.speed));
    s.values.push_back(static_cast<float>(m.accel));
    s.values.push_back(static_cast<float>(m.heading));
    s.values.push_back(static_cast<float>(m.yaw_rate));
  }
  return s;
}

}  // namespace vehigan::features
