#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "features/feature_engineering.hpp"
#include "sim/bsm.hpp"

namespace vehigan::features {

/// Number of raw BSM fields used when training on unengineered inputs
/// (the BaseAE baseline of Sec. IV-B): {x, y, speed, accel, heading, yaw}.
inline constexpr std::size_t kNumRawFeatures = 6;

/// A per-vehicle multivariate time series of arbitrary width, the common
/// currency between feature extraction, scaling, and windowing. Row-major:
/// values[r * width + c].
struct Series {
  std::uint32_t vehicle_id = 0;
  std::size_t width = 0;
  std::vector<float> values;

  [[nodiscard]] std::size_t rows() const { return width == 0 ? 0 : values.size() / width; }

  [[nodiscard]] std::span<const float> row(std::size_t r) const {
    return std::span<const float>(values).subspan(r * width, width);
  }

  [[nodiscard]] std::span<float> row(std::size_t r) {
    return std::span<float>(values).subspan(r * width, width);
  }
};

/// Converts an engineered FeatureSeries into the generic Series format.
Series to_series(const FeatureSeries& fs);

/// Allocation-reusing variant of to_series: clears and refills `out`,
/// keeping its value buffer's capacity across calls (serving hot path).
void to_series_into(const FeatureSeries& fs, Series& out);

/// Extracts the *raw* field series {x, y, speed, accel, heading, yaw_rate}
/// for one vehicle, aligned with the engineered series (the first message is
/// dropped so row r corresponds to the same BSM in both representations).
Series extract_raw_series(const sim::VehicleTrace& trace);

}  // namespace vehigan::features
