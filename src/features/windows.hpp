#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "features/series.hpp"

namespace vehigan::features {

/// A set of 2-D snapshots x in R^{w x f} (Sec. III-C): `count` windows of
/// `window` consecutive time steps by `width` features, stored contiguously
/// row-major as data[i * window * width + t * width + c].
struct WindowSet {
  std::size_t window = 0;  ///< w: time steps per snapshot
  std::size_t width = 0;   ///< f: features per step
  std::vector<float> data;
  std::vector<std::uint32_t> vehicle_ids;  ///< source vehicle per snapshot

  [[nodiscard]] std::size_t count() const {
    const std::size_t stride = window * width;
    return stride == 0 ? 0 : data.size() / stride;
  }

  [[nodiscard]] std::size_t values_per_window() const { return window * width; }

  [[nodiscard]] std::span<const float> snapshot(std::size_t i) const {
    return std::span<const float>(data).subspan(i * values_per_window(), values_per_window());
  }

  [[nodiscard]] std::span<float> snapshot(std::size_t i) {
    return std::span<float>(data).subspan(i * values_per_window(), values_per_window());
  }

  void append(std::span<const float> snapshot_data, std::uint32_t vehicle_id);

  /// Drops every window but keeps the shape and the buffers' capacity —
  /// lets long-lived owners (the serving drain loop) rebuild the set each
  /// cycle without reallocating.
  void clear() {
    data.clear();
    vehicle_ids.clear();
  }

  /// Keeps every k-th window (deterministic subsampling used to bound the
  /// single-core training cost; windows of one vehicle are highly
  /// overlapping, so subsampling loses little information).
  [[nodiscard]] WindowSet subsample(std::size_t keep_every) const;

  /// Concatenates another window set (shapes must match).
  void extend(const WindowSet& other);
};

/// Slides a window of `window` steps with the given stride over each series
/// and collects all full windows. Series shorter than `window` contribute
/// nothing.
WindowSet make_windows(const std::vector<Series>& series, std::size_t window, std::size_t stride);

}  // namespace vehigan::features
