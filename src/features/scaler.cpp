#include "features/scaler.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace vehigan::features {

void MinMaxScaler::fit(const std::vector<Series>& series) {
  min_.clear();
  max_.clear();
  std::size_t width = 0;
  for (const auto& s : series) {
    if (s.rows() == 0) continue;
    if (width == 0) width = s.width;
    if (s.width != width) throw std::invalid_argument("MinMaxScaler::fit: mixed widths");
  }
  if (width == 0) throw std::invalid_argument("MinMaxScaler::fit: no data");
  min_.assign(width, std::numeric_limits<float>::max());
  max_.assign(width, std::numeric_limits<float>::lowest());
  for (const auto& s : series) {
    for (std::size_t r = 0; r < s.rows(); ++r) {
      const auto row = s.row(r);
      for (std::size_t c = 0; c < width; ++c) {
        min_[c] = std::min(min_[c], row[c]);
        max_[c] = std::max(max_[c], row[c]);
      }
    }
  }
}

float MinMaxScaler::scale_value(std::size_t c, float v) const {
  const float range = max_[c] - min_[c];
  if (range <= 0.0F) return 0.5F;
  return (v - min_[c]) / range;
}

float MinMaxScaler::unscale_value(std::size_t c, float v) const {
  const float range = max_[c] - min_[c];
  if (range <= 0.0F) return min_[c];
  return min_[c] + v * range;
}

void MinMaxScaler::transform(Series& s) const {
  if (s.width != width()) throw std::invalid_argument("MinMaxScaler::transform: width mismatch");
  for (std::size_t r = 0; r < s.rows(); ++r) {
    auto row = s.row(r);
    for (std::size_t c = 0; c < s.width; ++c) row[c] = scale_value(c, row[c]);
  }
}

void MinMaxScaler::inverse_transform(Series& s) const {
  if (s.width != width()) throw std::invalid_argument("MinMaxScaler: width mismatch");
  for (std::size_t r = 0; r < s.rows(); ++r) {
    auto row = s.row(r);
    for (std::size_t c = 0; c < s.width; ++c) row[c] = unscale_value(c, row[c]);
  }
}

void MinMaxScaler::save(std::ostream& out) const {
  const auto width = static_cast<std::uint64_t>(min_.size());
  out.write(reinterpret_cast<const char*>(&width), sizeof(width));
  out.write(reinterpret_cast<const char*>(min_.data()),
            static_cast<std::streamsize>(min_.size() * sizeof(float)));
  out.write(reinterpret_cast<const char*>(max_.data()),
            static_cast<std::streamsize>(max_.size() * sizeof(float)));
}

MinMaxScaler MinMaxScaler::load(std::istream& in) {
  MinMaxScaler scaler;
  std::uint64_t width = 0;
  in.read(reinterpret_cast<char*>(&width), sizeof(width));
  scaler.min_.resize(width);
  scaler.max_.resize(width);
  in.read(reinterpret_cast<char*>(scaler.min_.data()),
          static_cast<std::streamsize>(width * sizeof(float)));
  in.read(reinterpret_cast<char*>(scaler.max_.data()),
          static_cast<std::streamsize>(width * sizeof(float)));
  if (!in) throw std::runtime_error("MinMaxScaler::load: truncated stream");
  return scaler;
}

}  // namespace vehigan::features
