#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/bsm.hpp"

namespace vehigan::features {

/// Number of engineered features per BSM (the core feature set F of
/// Sec. III-C).
inline constexpr std::size_t kNumFeatures = 12;

/// One engineered feature vector. Order matches the paper's core set:
///   { dx, dy, vx, vy, dvx, dvy, ax, ay, dhx, dhy, wx, wy }
using FeatureRow = std::array<float, kNumFeatures>;

/// Indices into FeatureRow, named for readability in tests and attacks.
enum FeatureIndex : std::size_t {
  kDx = 0,   ///< x(t) - x(t-1)
  kDy = 1,   ///< y(t) - y(t-1)
  kVx = 2,   ///< v * cos(heading)
  kVy = 3,   ///< v * sin(heading)
  kDVx = 4,  ///< vx(t) - vx(t-1)
  kDVy = 5,  ///< vy(t) - vy(t-1)
  kAx = 6,   ///< a * cos(heading)
  kAy = 7,   ///< a * sin(heading)
  kDHx = 8,  ///< cos(heading(t)) - cos(heading(t-1))
  kDHy = 9,  ///< sin(heading(t)) - sin(heading(t-1))
  kWx = 10,  ///< yaw_rate * cos(heading)
  kWy = 11,  ///< yaw_rate * sin(heading)
};

/// Human-readable names for reports/exports, index-aligned with FeatureRow.
const std::array<std::string_view, kNumFeatures>& feature_names();

/// The engineered time series of one vehicle. Row i is derived from BSMs
/// i and i+1 of the raw trace (delta features need two consecutive
/// messages), so `rows.size() == messages.size() - 1`.
struct FeatureSeries {
  std::uint32_t vehicle_id = 0;
  std::vector<FeatureRow> rows;
  std::vector<double> times;  ///< timestamp of the later message in each pair
};

/// Physics-guided vector decomposition of Table II. Produces the engineered
/// feature series for one vehicle's transmitted BSM stream. Consistency
/// relations (dx ~ vx*dt, dvx ~ ax*dt, dhx ~ wx-ish) hold for honest
/// messages up to sensor noise, and break under misbehavior — that is the
/// detection signal.
FeatureSeries extract_features(const sim::VehicleTrace& trace);

/// Allocation-reusing variant: clears and refills `out` (its vectors keep
/// their capacity across calls), producing exactly the same rows as
/// extract_features. This is the serving hot path — one call per completed
/// window per drain cycle — where per-call vector churn is measurable.
void extract_features_into(const sim::VehicleTrace& trace, FeatureSeries& out);

}  // namespace vehigan::features
