#include "features/feature_engineering.hpp"

#include <cmath>

namespace vehigan::features {

const std::array<std::string_view, kNumFeatures>& feature_names() {
  static const std::array<std::string_view, kNumFeatures> names = {
      "dx", "dy", "vx", "vy", "dvx", "dvy", "ax", "ay", "dhx", "dhy", "wx", "wy"};
  return names;
}

FeatureSeries extract_features(const sim::VehicleTrace& trace) {
  FeatureSeries series;
  extract_features_into(trace, series);
  return series;
}

void extract_features_into(const sim::VehicleTrace& trace, FeatureSeries& series) {
  series.vehicle_id = trace.vehicle_id;
  series.rows.clear();
  series.times.clear();
  const auto& msgs = trace.messages;
  if (msgs.size() < 2) return;
  series.rows.reserve(msgs.size() - 1);
  series.times.reserve(msgs.size() - 1);

  auto vx_of = [](const sim::Bsm& m) { return m.speed * std::cos(m.heading); };
  auto vy_of = [](const sim::Bsm& m) { return m.speed * std::sin(m.heading); };

  for (std::size_t i = 1; i < msgs.size(); ++i) {
    const sim::Bsm& prev = msgs[i - 1];
    const sim::Bsm& cur = msgs[i];
    FeatureRow row{};
    row[kDx] = static_cast<float>(cur.x - prev.x);
    row[kDy] = static_cast<float>(cur.y - prev.y);
    row[kVx] = static_cast<float>(vx_of(cur));
    row[kVy] = static_cast<float>(vy_of(cur));
    row[kDVx] = static_cast<float>(vx_of(cur) - vx_of(prev));
    row[kDVy] = static_cast<float>(vy_of(cur) - vy_of(prev));
    row[kAx] = static_cast<float>(cur.accel * std::cos(cur.heading));
    row[kAy] = static_cast<float>(cur.accel * std::sin(cur.heading));
    row[kDHx] = static_cast<float>(std::cos(cur.heading) - std::cos(prev.heading));
    row[kDHy] = static_cast<float>(std::sin(cur.heading) - std::sin(prev.heading));
    row[kWx] = static_cast<float>(cur.yaw_rate * std::cos(cur.heading));
    row[kWy] = static_cast<float>(cur.yaw_rate * std::sin(cur.heading));
    series.rows.push_back(row);
    series.times.push_back(cur.time);
  }
}

}  // namespace vehigan::features
