#include "features/windows.hpp"

#include <stdexcept>

namespace vehigan::features {

void WindowSet::append(std::span<const float> snapshot_data, std::uint32_t vehicle_id) {
  if (snapshot_data.size() != values_per_window()) {
    throw std::invalid_argument("WindowSet::append: shape mismatch");
  }
  data.insert(data.end(), snapshot_data.begin(), snapshot_data.end());
  vehicle_ids.push_back(vehicle_id);
}

WindowSet WindowSet::subsample(std::size_t keep_every) const {
  if (keep_every <= 1) return *this;
  WindowSet out;
  out.window = window;
  out.width = width;
  for (std::size_t i = 0; i < count(); i += keep_every) {
    out.append(snapshot(i), vehicle_ids[i]);
  }
  return out;
}

void WindowSet::extend(const WindowSet& other) {
  if (window != other.window || width != other.width) {
    throw std::invalid_argument("WindowSet::extend: shape mismatch");
  }
  data.insert(data.end(), other.data.begin(), other.data.end());
  vehicle_ids.insert(vehicle_ids.end(), other.vehicle_ids.begin(), other.vehicle_ids.end());
}

WindowSet make_windows(const std::vector<Series>& series, std::size_t window,
                       std::size_t stride) {
  if (window == 0 || stride == 0) {
    throw std::invalid_argument("make_windows: window and stride must be > 0");
  }
  WindowSet set;
  set.window = window;
  for (const auto& s : series) {
    if (s.rows() == 0) continue;
    if (set.width == 0) set.width = s.width;
    if (s.width != set.width) throw std::invalid_argument("make_windows: mixed widths");
    if (s.rows() < window) continue;
    for (std::size_t start = 0; start + window <= s.rows(); start += stride) {
      const std::span<const float> block(s.values.data() + start * s.width, window * s.width);
      set.append(block, s.vehicle_id);
    }
  }
  return set;
}

}  // namespace vehigan::features
