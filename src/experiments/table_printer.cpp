#include "experiments/table_printer.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

namespace vehigan::experiments {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::add_row(const std::string& label, const std::vector<double>& values,
                           int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format(v, precision));
  add_row(std::move(cells));
}

std::string TablePrinter::format(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

void TablePrinter::print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::cout << (c == 0 ? "" : "  ");
      std::cout << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) std::cout << ' ';
    }
    std::cout << '\n';
  };
  print_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) rule += "  ";
    rule += std::string(widths[c], '-');
  }
  std::cout << rule << '\n';
  for (const auto& row : rows_) print_row(row);
  std::cout.flush();
}

}  // namespace vehigan::experiments
