#pragma once

#include <filesystem>
#include <functional>
#include <memory>

#include "experiments/data.hpp"
#include "gan/model_store.hpp"
#include "mbds/pipeline.hpp"

namespace vehigan::experiments {

/// The shared experiment runtime used by every bench binary and the larger
/// examples. It owns:
///  * the preprocessed ExperimentData (rebuilt deterministically per run —
///    simulation + feature engineering cost seconds),
///  * the trained 60-model WGAN grid, cached on disk under
///    `<cache_root>/<config hash>/model_<id>.bin` so the grid trains once
///    and every bench reuses it,
///  * the assembled VehiGanBundle (thresholds + ADS ranking).
///
/// Cache integrity: models() only trusts checkpoints that pass load_wgan's
/// checksum validation. A file that fails validation is quarantined (renamed
/// to `<name>.bin.corrupt`, logged) and its model retrained. A `grid.lock`
/// advisory file lock serializes the check-train-load sequence across
/// processes sharing the cache directory, so concurrent benches elect one
/// trainer and the rest wait, then load.
class Workspace {
 public:
  explicit Workspace(ExperimentConfig config,
                     std::filesystem::path cache_root = default_cache_root());

  [[nodiscard]] static std::filesystem::path default_cache_root();

  [[nodiscard]] const ExperimentConfig& config() const { return config_; }

  /// Lazily builds (and memoizes in-process) the preprocessed data.
  const ExperimentData& data();

  /// Lazily trains-or-loads the full WGAN grid.
  const std::vector<gan::TrainedWgan>& models();

  /// Lazily assembles the bundle (thresholds + pre-evaluation + ranking).
  const mbds::VehiGanBundle& bundle();

  /// Directory holding this config's cached artifacts.
  [[nodiscard]] std::filesystem::path cache_dir() const;

  /// Observer invoked once per model actually (re)trained by models() —
  /// i.e. on every cache miss or quarantined checkpoint, not on cache hits.
  /// May be called concurrently from the training pool's worker threads.
  /// Used by tests to assert "exactly one training pass" across concurrent
  /// workspaces sharing a cache directory.
  void set_train_hook(std::function<void(const gan::WganConfig&)> hook) {
    train_hook_ = std::move(hook);
  }

 private:
  ExperimentConfig config_;
  std::filesystem::path cache_root_;
  std::unique_ptr<ExperimentData> data_;
  std::unique_ptr<std::vector<gan::TrainedWgan>> models_;
  std::unique_ptr<mbds::VehiGanBundle> bundle_;
  std::function<void(const gan::WganConfig&)> train_hook_;
};

}  // namespace vehigan::experiments
