#pragma once

#include <string>
#include <vector>

#include "experiments/config.hpp"
#include "features/scaler.hpp"
#include "features/windows.hpp"
#include "mbds/pre_evaluation.hpp"

namespace vehigan::experiments {

/// Scored material for one attack in a split: the malicious windows only
/// (the matching benign windows live once per split).
struct EvalScenario {
  std::string attack_name;
  int attack_index = 0;
  features::WindowSet malicious;
};

/// Everything the detectors consume, fully preprocessed and scaled:
///  * engineered-feature windows for VehiGAN and the Vehi-* baselines,
///  * raw-field windows for the BaseAE ablation,
/// across the train (benign-only), validation, and test splits.
struct ExperimentData {
  features::MinMaxScaler scaler;      ///< engineered features, fit on train
  features::MinMaxScaler raw_scaler;  ///< raw fields, fit on train

  features::WindowSet train_windows;      ///< engineered, benign, scaled
  features::WindowSet raw_train_windows;  ///< raw, benign, scaled

  features::WindowSet valid_benign;
  std::vector<EvalScenario> valid_attacks;

  features::WindowSet test_benign;
  std::vector<EvalScenario> test_attacks;      ///< all 35 misbehaviors
  features::WindowSet raw_test_benign;
  std::vector<EvalScenario> raw_test_attacks;  ///< raw-feature mirror

  /// Assembles the mbds::ValidationSet view used for ADS pre-evaluation.
  [[nodiscard]] mbds::ValidationSet validation_set() const;
};

/// Runs the three traffic simulations, injects every attack of the matrix,
/// engineers features, fits scalers on benign training data, and windows
/// everything. Deterministic given the config.
ExperimentData build_experiment_data(const ExperimentConfig& config);

}  // namespace vehigan::experiments
