#pragma once

#include <string>
#include <vector>

namespace vehigan::experiments {

/// Fixed-width console table used by the bench harnesses to print the
/// paper's tables/figure series in a diff-friendly layout.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: first cell is a label, the rest are numbers printed with
  /// the given precision.
  void add_row(const std::string& label, const std::vector<double>& values, int precision = 2);

  /// Renders the table (header, separator, rows) to stdout.
  void print() const;

  static std::string format(double value, int precision);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vehigan::experiments
