#include "experiments/data.hpp"

#include "features/feature_engineering.hpp"
#include "util/logging.hpp"
#include "vasp/attack_types.hpp"

namespace vehigan::experiments {

namespace {

using features::MinMaxScaler;
using features::Series;
using features::WindowSet;

std::vector<Series> engineered_series(const std::vector<sim::VehicleTrace>& traces) {
  std::vector<Series> out;
  out.reserve(traces.size());
  for (const auto& trace : traces) {
    out.push_back(to_series(features::extract_features(trace)));
  }
  return out;
}

std::vector<Series> raw_series(const std::vector<sim::VehicleTrace>& traces) {
  std::vector<Series> out;
  out.reserve(traces.size());
  for (const auto& trace : traces) out.push_back(features::extract_raw_series(trace));
  return out;
}

/// Scales the series in place and windows them with an overall cap.
WindowSet scaled_windows(std::vector<Series> series, const MinMaxScaler& scaler,
                         std::size_t window, std::size_t stride, std::size_t cap) {
  for (auto& s : series) {
    if (s.rows() > 0) scaler.transform(s);
  }
  WindowSet set = make_windows(series, window, stride);
  if (cap > 0 && set.count() > cap) {
    set = set.subsample((set.count() + cap - 1) / cap);
  }
  return set;
}

std::vector<sim::VehicleTrace> malicious_traces(const vasp::MisbehaviorDataset& scenario) {
  std::vector<sim::VehicleTrace> out;
  for (const auto& labeled : scenario.traces) {
    if (labeled.malicious) out.push_back(labeled.trace);
  }
  return out;
}

}  // namespace

mbds::ValidationSet ExperimentData::validation_set() const {
  mbds::ValidationSet set;
  set.benign_windows = valid_benign;
  for (const auto& scenario : valid_attacks) {
    set.attacks.push_back({scenario.attack_name, scenario.malicious});
  }
  return set;
}

ExperimentData build_experiment_data(const ExperimentConfig& config) {
  ExperimentData data;

  // ---- Training split: benign only --------------------------------------
  util::log_info("simulating benign training traffic (", config.train_sim.duration_s, " s)");
  const sim::BsmDataset train = sim::TrafficSimulator(config.train_sim).run();
  util::log_info("training fleet: ", train.traces.size(), " vehicles, ",
                 train.total_messages(), " BSMs");

  std::vector<Series> train_eng = engineered_series(train.traces);
  data.scaler.fit(train_eng);
  data.train_windows = scaled_windows(std::move(train_eng), data.scaler, config.window,
                                      config.train_stride, config.max_train_windows);

  std::vector<Series> train_raw = raw_series(train.traces);
  data.raw_scaler.fit(train_raw);
  data.raw_train_windows = scaled_windows(std::move(train_raw), data.raw_scaler, config.window,
                                          config.train_stride, config.max_train_windows);

  // ---- Validation split: benign + representative attacks ----------------
  const sim::BsmDataset valid = sim::TrafficSimulator(config.valid_sim).run();
  data.valid_benign = scaled_windows(engineered_series(valid.traces), data.scaler, config.window,
                                     config.eval_stride, config.max_benign_eval_windows);
  vasp::ScenarioOptions valid_opts = config.scenario;
  valid_opts.seed = config.scenario.seed ^ 0x5A5A5A5AULL;
  for (int index : config.validation_attack_indices) {
    const vasp::AttackSpec& spec = vasp::attack_by_index(index);
    const vasp::MisbehaviorDataset scenario = vasp::build_scenario(valid, spec, valid_opts);
    EvalScenario eval;
    eval.attack_name = scenario.attack_name;
    eval.attack_index = spec.index;
    eval.malicious =
        scaled_windows(engineered_series(malicious_traces(scenario)), data.scaler, config.window,
                       config.eval_stride, config.max_attack_eval_windows);
    data.valid_attacks.push_back(std::move(eval));
  }

  // ---- Test split: benign + the full 35-attack matrix -------------------
  const sim::BsmDataset test = sim::TrafficSimulator(config.test_sim).run();
  data.test_benign = scaled_windows(engineered_series(test.traces), data.scaler, config.window,
                                    config.eval_stride, config.max_benign_eval_windows);
  data.raw_test_benign =
      scaled_windows(raw_series(test.traces), data.raw_scaler, config.window, config.eval_stride,
                     config.max_benign_eval_windows);
  for (const vasp::AttackSpec& spec : vasp::attack_matrix()) {
    const vasp::MisbehaviorDataset scenario = vasp::build_scenario(test, spec, config.scenario);
    const std::vector<sim::VehicleTrace> attackers = malicious_traces(scenario);

    EvalScenario eng;
    eng.attack_name = scenario.attack_name;
    eng.attack_index = spec.index;
    eng.malicious = scaled_windows(engineered_series(attackers), data.scaler, config.window,
                                   config.eval_stride, config.max_attack_eval_windows);
    data.test_attacks.push_back(std::move(eng));

    EvalScenario raw;
    raw.attack_name = scenario.attack_name;
    raw.attack_index = spec.index;
    raw.malicious = scaled_windows(raw_series(attackers), data.raw_scaler, config.window,
                                   config.eval_stride, config.max_attack_eval_windows);
    data.raw_test_attacks.push_back(std::move(raw));
  }

  util::log_info("experiment data ready: ", data.train_windows.count(), " train windows, ",
                 data.test_benign.count(), " benign test windows, ", data.test_attacks.size(),
                 " attack scenarios");
  return data;
}

}  // namespace vehigan::experiments
