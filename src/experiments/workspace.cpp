#include "experiments/workspace.hpp"

#include <atomic>
#include <cstdlib>
#include <optional>

#include "util/logging.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace vehigan::experiments {

namespace fs = std::filesystem;

Workspace::Workspace(ExperimentConfig config, fs::path cache_root)
    : config_(std::move(config)), cache_root_(std::move(cache_root)) {}

fs::path Workspace::default_cache_root() {
  if (const char* env = std::getenv("VEHIGAN_CACHE_DIR"); env != nullptr && *env != '\0') {
    return fs::path(env);
  }
  return fs::path(".cache") / "vehigan";
}

fs::path Workspace::cache_dir() const { return cache_root_ / config_.model_cache_key(); }

const ExperimentData& Workspace::data() {
  if (!data_) {
    data_ = std::make_unique<ExperimentData>(build_experiment_data(config_));
  }
  return *data_;
}

const std::vector<gan::TrainedWgan>& Workspace::models() {
  if (models_) return *models_;

  const fs::path dir = cache_dir();
  fs::create_directories(dir);
  const std::vector<gan::WganConfig> grid =
      gan::default_grid(config_.grid_scale, config_.window, features::kNumFeatures);

  models_ = std::make_unique<std::vector<gan::TrainedWgan>>();
  models_->reserve(grid.size());

  // Fast path: every model already cached.
  bool all_cached = true;
  for (const auto& cfg : grid) {
    if (!fs::exists(dir / (cfg.name() + ".bin"))) {
      all_cached = false;
      break;
    }
  }
  if (all_cached) {
    util::log_info("loading ", grid.size(), " cached WGANs from ", dir.string());
    for (const auto& cfg : grid) models_->push_back(gan::load_wgan(dir / (cfg.name() + ".bin")));
    return *models_;
  }

  const features::WindowSet& train = data().train_windows;
  const gan::WganTrainer trainer(config_.train_opts);
  util::Stopwatch total;

  // Grid members are mutually independent (per-model RNG streams), so train
  // the missing ones across all cores. On a single-core host this degrades
  // to the sequential loop.
  std::vector<std::optional<gan::TrainedWgan>> slots(grid.size());
  std::atomic<std::size_t> completed{0};
  util::ThreadPool pool;
  pool.parallel_for(grid.size(), [&](std::size_t i) {
    const gan::WganConfig& cfg = grid[i];
    const fs::path path = dir / (cfg.name() + ".bin");
    if (fs::exists(path)) {
      slots[i] = gan::load_wgan(path);
      return;
    }
    util::Stopwatch sw;
    gan::TrainedWgan model = trainer.train(cfg, train);
    gan::save_wgan(model, path);
    util::log_info("trained ", cfg.name(), " (", cfg.train_epochs, " epochs) in ",
                   static_cast<int>(sw.elapsed_seconds()), " s [", ++completed, "/",
                   grid.size(), "]");
    slots[i] = std::move(model);
  });
  for (auto& slot : slots) models_->push_back(std::move(*slot));
  util::log_info("WGAN grid ready in ", static_cast<int>(total.elapsed_seconds()), " s");
  return *models_;
}

const mbds::VehiGanBundle& Workspace::bundle() {
  if (!bundle_) {
    // Copy the trained models into the bundle so the workspace keeps its own
    // grid for callers that need pristine models.
    std::vector<gan::TrainedWgan> copies = models();
    bundle_ = std::make_unique<mbds::VehiGanBundle>(mbds::build_bundle(
        std::move(copies), data().train_windows, data().validation_set(), config_.build_opts));
  }
  return *bundle_;
}

}  // namespace vehigan::experiments
