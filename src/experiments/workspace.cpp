#include "experiments/workspace.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/file_lock.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace vehigan::experiments {

namespace fs = std::filesystem;

namespace {

/// Tries to load a validated checkpoint. Returns nullopt when the file is
/// absent; on a corrupt file, quarantines it (rename to `<file>.corrupt`)
/// so the bad bytes stay available for post-mortem but can never be loaded
/// again, and reports a miss so the caller retrains.
std::optional<gan::TrainedWgan> load_or_quarantine(const fs::path& path) {
  auto& reg = telemetry::MetricsRegistry::global();
  // Resolve both outcome counters up front so every snapshot exposes the
  // full hit/miss pair (a zero is informative; an absent series is not).
  auto& hits = reg.counter("vehigan_store_cache_hit_total");
  auto& misses = reg.counter("vehigan_store_cache_miss_total");
  if (!fs::exists(path)) {
    misses.add(1);
    return std::nullopt;
  }
  try {
    gan::TrainedWgan model = gan::load_wgan(path);
    hits.add(1);
    return model;
  } catch (const gan::CorruptCheckpoint& e) {
    reg.counter("vehigan_store_quarantine_total").add(1);
    misses.add(1);
    fs::path quarantine = path;
    quarantine += ".corrupt";
    std::error_code ec;
    fs::rename(path, quarantine, ec);
    if (ec) fs::remove(path, ec);  // rename failed (exotic FS) — drop the bad file instead
    util::log_warn("quarantined corrupt checkpoint ", path.string(), " -> ",
                   quarantine.string(), " (", e.what(), "); retraining");
    return std::nullopt;
  }
}

}  // namespace

Workspace::Workspace(ExperimentConfig config, fs::path cache_root)
    : config_(std::move(config)), cache_root_(std::move(cache_root)) {}

fs::path Workspace::default_cache_root() {
  if (const char* env = std::getenv("VEHIGAN_CACHE_DIR"); env != nullptr && *env != '\0') {
    return fs::path(env);
  }
  return fs::path(".cache") / "vehigan";
}

fs::path Workspace::cache_dir() const { return cache_root_ / config_.model_cache_key(); }

const ExperimentData& Workspace::data() {
  if (!data_) {
    data_ = std::make_unique<ExperimentData>(build_experiment_data(config_));
  }
  return *data_;
}

const std::vector<gan::TrainedWgan>& Workspace::models() {
  if (models_) return *models_;

  const fs::path dir = cache_dir();
  fs::create_directories(dir);
  const std::vector<gan::WganConfig> grid =
      gan::default_grid(config_.grid_scale, config_.window, features::kNumFeatures);

  // One trainer per cache directory: concurrent processes (and concurrent
  // Workspace instances in-process) sharing this config's cache serialize
  // here. The winner trains whatever is missing; the others block, then see
  // a fully populated cache and take the pure-load path below.
  util::FileLock grid_lock(dir / "grid.lock");
  telemetry::ScopedSpan lock_span(
      telemetry::MetricsRegistry::global().histogram("vehigan_store_lock_wait_seconds"),
      "grid_lock_wait");
  const std::scoped_lock lock(grid_lock);
  lock_span.stop();

  std::vector<std::optional<gan::TrainedWgan>> slots(grid.size());
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    slots[i] = load_or_quarantine(dir / (grid[i].name() + ".bin"));
    if (!slots[i]) missing.push_back(i);
  }

  models_ = std::make_unique<std::vector<gan::TrainedWgan>>();
  models_->reserve(grid.size());
  if (missing.empty()) {
    util::log_info("loaded ", grid.size(), " validated cached WGANs from ", dir.string());
    for (auto& slot : slots) models_->push_back(std::move(*slot));
    return *models_;
  }

  const features::WindowSet& train = data().train_windows;
  const gan::WganTrainer trainer(config_.train_opts);
  util::Stopwatch total;

  // Grid members are mutually independent (per-model RNG streams), so train
  // the missing ones across all cores. On a single-core host this degrades
  // to the sequential loop.
  std::atomic<std::size_t> completed{0};
  util::ThreadPool pool;
  pool.parallel_for(missing.size(), [&](std::size_t m) {
    const std::size_t i = missing[m];
    const gan::WganConfig& cfg = grid[i];
    if (train_hook_) train_hook_(cfg);
    util::Stopwatch sw;
    gan::TrainedWgan model = trainer.train(cfg, train);
    gan::save_wgan(model, dir / (cfg.name() + ".bin"));
    util::log_info("trained ", cfg.name(), " (", cfg.train_epochs, " epochs) in ",
                   static_cast<int>(sw.elapsed_seconds()), " s [", ++completed, "/",
                   missing.size(), "]");
    slots[i] = std::move(model);
  });
  for (auto& slot : slots) models_->push_back(std::move(*slot));
  util::log_info("WGAN grid ready in ", static_cast<int>(total.elapsed_seconds()), " s (",
                 missing.size(), " trained, ", grid.size() - missing.size(), " cached)");
  return *models_;
}

const mbds::VehiGanBundle& Workspace::bundle() {
  if (!bundle_) {
    // Copy the trained models into the bundle so the workspace keeps its own
    // grid for callers that need pristine models.
    std::vector<gan::TrainedWgan> copies = models();
    bundle_ = std::make_unique<mbds::VehiGanBundle>(mbds::build_bundle(
        std::move(copies), data().train_windows, data().validation_set(), config_.build_opts));
  }
  return *bundle_;
}

}  // namespace vehigan::experiments
