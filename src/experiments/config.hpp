#pragma once

#include "gan/architecture.hpp"
#include "gan/wgan.hpp"
#include "mbds/pipeline.hpp"
#include "sim/traffic_sim.hpp"
#include "vasp/dataset_builder.hpp"

namespace vehigan::experiments {

/// Every knob of one end-to-end reproduction run. All benches and examples
/// are parameterized by this one struct; its content hash keys the on-disk
/// model cache, so editing any knob retrains exactly what it invalidates.
struct ExperimentConfig {
  // Traffic simulations. Train/valid/test use independent seeds so no BSM is
  // shared between splits.
  sim::TrafficSimConfig train_sim;
  sim::TrafficSimConfig valid_sim;
  sim::TrafficSimConfig test_sim;

  // Attack scenario construction (25 % attackers, persistent policy).
  vasp::ScenarioOptions scenario;

  // Windowing.
  std::size_t window = 10;          ///< w
  std::size_t train_stride = 2;     ///< stride between training snapshots
  std::size_t eval_stride = 3;      ///< stride between evaluation snapshots

  // Budget caps (deterministic even subsampling), sized for one CPU core.
  std::size_t max_train_windows = 2000;
  std::size_t max_benign_eval_windows = 1200;
  std::size_t max_attack_eval_windows = 500;

  // Model grid + training.
  gan::GridScale grid_scale;
  gan::TrainOptions train_opts;
  mbds::VehiGanBuildOptions build_opts;

  /// Attacks used for validation-time ADS pre-evaluation (attack matrix
  /// indices). The paper assumes the defender holds *representative* traces,
  /// not the full test matrix; the default covers a Random and a High attack
  /// per targeted field, which empirically yields the most robust top-10.
  std::vector<int> validation_attack_indices = {1, 5, 9, 11, 17, 24, 28, 30, 34};

  std::uint64_t seed = 20240607;

  /// Tiny configuration for unit/integration tests (~seconds end to end).
  static ExperimentConfig quick();

  /// Default bench-scale configuration (DESIGN.md Sec. 5).
  static ExperimentConfig standard();

  /// Content hash over the knobs that affect *trained models* (training
  /// traffic, windowing caps, grid, trainer options). Evaluation-side knobs
  /// (validation attack list, eval sims/caps) are deliberately excluded so
  /// changing them never invalidates the expensive model cache.
  [[nodiscard]] std::string model_cache_key() const;

  /// Full content hash including evaluation knobs (used by tests and any
  /// cache of evaluation artifacts).
  [[nodiscard]] std::string cache_key() const;
};

}  // namespace vehigan::experiments
