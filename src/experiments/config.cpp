#include "experiments/config.hpp"

#include "util/hash.hpp"

namespace vehigan::experiments {

namespace {

sim::TrafficSimConfig make_sim(double duration, int platoons, int per_platoon,
                               std::uint64_t seed) {
  sim::TrafficSimConfig cfg;
  cfg.duration_s = duration;
  cfg.num_platoons = platoons;
  cfg.vehicles_per_platoon = per_platoon;
  cfg.seed = seed;
  return cfg;
}

}  // namespace

ExperimentConfig ExperimentConfig::quick() {
  ExperimentConfig cfg;
  cfg.train_sim = make_sim(70.0, 4, 3, 101);
  cfg.valid_sim = make_sim(45.0, 3, 3, 202);
  cfg.test_sim = make_sim(45.0, 3, 3, 303);
  cfg.train_stride = 4;
  cfg.eval_stride = 5;
  cfg.max_train_windows = 600;
  cfg.max_benign_eval_windows = 250;
  cfg.max_attack_eval_windows = 120;
  cfg.grid_scale.epoch_scale = 0.04;  // {1,2,3,4} epochs
  cfg.train_opts.batch_size = 32;
  cfg.build_opts.top_m = 10;
  return cfg;
}

ExperimentConfig ExperimentConfig::standard() {
  ExperimentConfig cfg;
  cfg.train_sim = make_sim(240.0, 10, 5, 101);
  cfg.valid_sim = make_sim(120.0, 6, 4, 202);
  cfg.test_sim = make_sim(120.0, 6, 4, 303);
  return cfg;
}

namespace {

void add_sim_fields(util::Fnv1a& hash, const sim::TrafficSimConfig& s) {
  hash.add_pod(s.duration_s)
      .add_pod(s.dt_s)
      .add_pod(s.num_platoons)
      .add_pod(s.vehicles_per_platoon)
      .add_pod(s.spawn_spacing_m)
      .add_pod(s.spawn_stagger_s)
      .add_pod(s.seed)
      .add_pod(s.network.grid_cols)
      .add_pod(s.network.grid_rows)
      .add_pod(s.network.block_length_m)
      .add_pod(s.network.turn_radius_m)
      .add_pod(s.network.min_speed_limit)
      .add_pod(s.network.max_speed_limit)
      .add_pod(s.noise.pos_sigma)
      .add_pod(s.noise.speed_sigma)
      .add_pod(s.noise.accel_sigma)
      .add_pod(s.noise.heading_sigma)
      .add_pod(s.noise.yaw_sigma);
}

}  // namespace

std::string ExperimentConfig::model_cache_key() const {
  util::Fnv1a hash;
  add_sim_fields(hash, train_sim);
  hash.add_pod(window).add_pod(train_stride).add_pod(max_train_windows);
  hash.add_pod(grid_scale.epoch_scale);
  hash.add_pod(train_opts.batch_size)
      .add_pod(train_opts.lr)
      .add_pod(train_opts.n_critic)
      .add_pod(static_cast<int>(train_opts.reg))
      .add_pod(train_opts.clip_value)
      .add_pod(train_opts.gp_lambda)
      .add_pod(train_opts.seed);
  hash.add_pod(seed);
  return hash.hex();
}

std::string ExperimentConfig::cache_key() const {
  util::Fnv1a hash;
  auto add_sim = [&hash](const sim::TrafficSimConfig& s) {
    hash.add_pod(s.duration_s)
        .add_pod(s.dt_s)
        .add_pod(s.num_platoons)
        .add_pod(s.vehicles_per_platoon)
        .add_pod(s.spawn_spacing_m)
        .add_pod(s.spawn_stagger_s)
        .add_pod(s.seed)
        .add_pod(s.network.grid_cols)
        .add_pod(s.network.grid_rows)
        .add_pod(s.network.block_length_m)
        .add_pod(s.network.turn_radius_m)
        .add_pod(s.network.min_speed_limit)
        .add_pod(s.network.max_speed_limit)
        .add_pod(s.noise.pos_sigma)
        .add_pod(s.noise.speed_sigma)
        .add_pod(s.noise.accel_sigma)
        .add_pod(s.noise.heading_sigma)
        .add_pod(s.noise.yaw_sigma);
  };
  add_sim(train_sim);
  add_sim(valid_sim);
  add_sim(test_sim);
  hash.add_pod(scenario.malicious_fraction).add_pod(scenario.seed);
  hash.add_pod(window).add_pod(train_stride).add_pod(eval_stride);
  hash.add_pod(max_train_windows)
      .add_pod(max_benign_eval_windows)
      .add_pod(max_attack_eval_windows);
  hash.add_pod(grid_scale.epoch_scale);
  hash.add_pod(train_opts.batch_size)
      .add_pod(train_opts.lr)
      .add_pod(train_opts.n_critic)
      .add_pod(static_cast<int>(train_opts.reg))
      .add_pod(train_opts.clip_value)
      .add_pod(train_opts.gp_lambda)
      .add_pod(train_opts.seed);
  hash.add_pod(build_opts.top_m).add_pod(build_opts.threshold_percentile);
  for (int idx : validation_attack_indices) hash.add_pod(idx);
  hash.add_pod(seed);
  return hash.hex();
}

}  // namespace vehigan::experiments
