#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace vehigan::telemetry {

/// Sink handed to each statusz section provider. One kv()/line() call adds
/// the entry to *both* renderings: the human text dump ("key: value" lines)
/// and the JSON object for that section (lines land in a "lines" array, so
/// the JSON stays mechanically valid no matter what a section emits).
class StatuszWriter {
 public:
  void kv(std::string_view key, std::string_view value);
  void kv(std::string_view key, const char* value) { kv(key, std::string_view(value)); }
  void kv(std::string_view key, double value);
  void kv(std::string_view key, std::uint64_t value);
  void kv(std::string_view key, bool value);
  /// Free-form row (per-shard tables, hot stacks, exemplars).
  void line(std::string_view text);

 private:
  friend class Statusz;
  std::string text_;
  std::string json_members_;
  std::vector<std::string> lines_;
};

/// One-stop ops snapshot: a single human-readable text (and machine JSON)
/// dump of everything an operator asks first — shards, queue depths, batch
/// limits, drop attribution, drift alarms, utilization, profiler accounting
/// and top-K hot stacks. Subsystems *register sections* (DetectionService
/// registers "serve", the latency anatomy registers "anatomy") so the
/// telemetry layer never depends on the layers it reports on; built-in
/// sections cover the profiler, the flight recorder, and the metrics
/// registry.
///
/// Dump points: periodically from rsu_monitor / city_scale_rsu, on
/// DetectionService::drain()/stop() via dump_if_configured(), and — because
/// rendering allocates and is *not* async-signal-safe — from the crash
/// handler via a pre-rendered cache: every write()/refresh_crash_cache()
/// stores the rendered text in a fixed double-buffered static buffer, and
/// crash_dump_cached() (called by the flight-recorder crash handler, next
/// to the flight-recorder post-mortem) writes that last snapshot with
/// open/write/rename only.
class Statusz {
 public:
  using SectionFn = std::function<void(StatuszWriter&)>;

  static Statusz& global();

  /// Registers a named section; returns a handle for unregister_section.
  /// The callback runs under the statusz mutex on whatever thread renders —
  /// it must be thread-safe and must not call back into Statusz.
  std::uint64_t register_section(std::string name, SectionFn fn);

  /// Removes a section. Blocks until no in-flight render can still call the
  /// callback, so callers may free captured state immediately after.
  void unregister_section(std::uint64_t id);

  [[nodiscard]] std::string render_text();
  [[nodiscard]] std::string render_json();

  /// Renders once, writes text to `path` and JSON to `path`.json (atomic
  /// tmp+rename), and refreshes the crash cache with the same snapshot.
  bool write(const std::filesystem::path& path);

  /// Configures the destination used by dump_if_configured() and arms the
  /// crash-handler path (a fixed char buffer the handler can read).
  void set_dump_path(std::string path);
  [[nodiscard]] std::string dump_path() const;
  bool dump_if_configured();

  /// Re-renders into the fixed crash buffer without touching disk.
  void refresh_crash_cache();

  /// Async-signal-safe: writes the most recently cached snapshot to the
  /// armed dump path (open/write/rename only, a "# dumped from crash
  /// handler" header prepended). No-op (false) when no path is armed or
  /// nothing has been cached. Called by the flight-recorder crash handler.
  static bool crash_dump_cached();

 private:
  Statusz();
  struct Impl;
  Impl* impl_;  ///< never freed: the crash path may fire during shutdown
};

}  // namespace vehigan::telemetry
