#include "telemetry/flight_recorder.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "telemetry/metrics.hpp"
#include "telemetry/statusz.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <fcntl.h>
#include <unistd.h>
#endif

namespace vehigan::telemetry {

namespace {

/// One seqlock-protected ring slot. All members are atomics, so concurrent
/// dump/snapshot readers race benignly (TSan-clean); the seq protocol (odd
/// while the owning thread writes, 2*index+2 once stable) lets readers
/// reject torn or recycled slots.
struct Slot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> mono_ns{0};
  std::atomic<std::uint64_t> trace_id{0};
  std::atomic<std::uint64_t> kind_station{0};  ///< kind << 32 | station_id
  std::atomic<std::uint64_t> value{0};
};

struct ThreadRing {
  std::atomic<std::uint64_t> head{0};  ///< next event index for this thread
  Slot slots[FlightRecorder::kRingCapacity];
};

// --- async-signal-safe formatting helpers (no allocation, no locale) ---

std::size_t append_str(char* buf, std::size_t pos, std::size_t cap, const char* s) {
  while (*s != '\0' && pos + 1 < cap) buf[pos++] = *s++;
  return pos;
}

std::size_t append_u64(char* buf, std::size_t pos, std::size_t cap, std::uint64_t v) {
  char digits[20];
  std::size_t n = 0;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0 && pos + 1 < cap) buf[pos++] = digits[--n];
  return pos;
}

std::size_t append_hex(char* buf, std::size_t pos, std::size_t cap, std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0 && pos + 1 < cap; shift -= 4) {
    buf[pos++] = kDigits[(v >> shift) & 0xF];
  }
  return pos;
}

/// Reads one slot consistently. Returns false for torn/recycled slots.
bool read_slot(const Slot& slot, std::uint64_t index, FlightEvent& out) {
  const std::uint64_t seq1 = slot.seq.load(std::memory_order_acquire);
  if (seq1 != 2 * index + 2) return false;
  out.seq = index;
  out.mono_ns = slot.mono_ns.load(std::memory_order_relaxed);
  out.trace_id = slot.trace_id.load(std::memory_order_relaxed);
  const std::uint64_t ks = slot.kind_station.load(std::memory_order_relaxed);
  out.kind = static_cast<FlightEventKind>(ks >> 32);
  out.station_id = static_cast<std::uint32_t>(ks & 0xFFFFFFFFULL);
  out.value = slot.value.load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  return slot.seq.load(std::memory_order_relaxed) == seq1;
}

// Fixed lock-free crash-hook table: slots are claimed by bumping the count
// *after* the pointer store, so the handler never sees a half-registered
// entry. Hooks are process-lifetime (no unregistration) — the handler may
// fire at any instant, including during static destruction.
std::atomic<FlightRecorder::CrashHook> g_crash_hooks[FlightRecorder::kMaxCrashHooks] = {};
std::atomic<std::size_t> g_crash_hook_count{0};

#if defined(__unix__) || defined(__APPLE__)
char g_crash_path[768] = {0};

void crash_signal_handler(int sig) {
  if (g_crash_path[0] != '\0') FlightRecorder::global().dump(g_crash_path);
  // Statusz rendering is not signal-safe, but its last pre-rendered snapshot
  // is: write it next to the flight-recorder post-mortem (no-op unless a
  // statusz dump path is armed).
  (void)Statusz::crash_dump_cached();
  FlightRecorder::run_crash_hooks();
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}
#endif

}  // namespace

const char* to_string(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kEnqueue: return "enqueue";
    case FlightEventKind::kDrop: return "drop";
    case FlightEventKind::kDrainStart: return "drain_start";
    case FlightEventKind::kDrainEnd: return "drain_end";
    case FlightEventKind::kScore: return "score";
    case FlightEventKind::kDecide: return "decide";
    case FlightEventKind::kReport: return "report";
    case FlightEventKind::kEvict: return "evict";
    case FlightEventKind::kStop: return "stop";
    case FlightEventKind::kMark: return "mark";
  }
  return "unknown";
}

struct FlightRecorder::Impl {
  std::atomic<bool> enabled{true};
  std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
  std::atomic<ThreadRing*> rings[kMaxThreads] = {};
  std::atomic<std::size_t> ring_count{0};
  std::atomic<std::uint64_t> overflow_dropped{0};
  mutable std::mutex path_mutex;
  std::string dump_path;

  [[nodiscard]] std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                          std::chrono::steady_clock::now() - epoch)
                                          .count());
  }
};

FlightRecorder::FlightRecorder() : impl_(new Impl) {}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::set_enabled(bool on) {
  impl_->enabled.store(on, std::memory_order_relaxed);
}

bool FlightRecorder::enabled() const { return impl_->enabled.load(std::memory_order_relaxed); }

void FlightRecorder::record(FlightEventKind kind, std::uint32_t station_id,
                            std::uint64_t trace_id, std::uint64_t value) {
  FlightRecorder& self = global();
  Impl* impl = self.impl_;
  if (!telemetry::enabled() || !impl->enabled.load(std::memory_order_relaxed)) return;

  thread_local ThreadRing* ring = nullptr;
  thread_local bool rejected = false;
  if (ring == nullptr) {
    if (rejected) {
      impl->overflow_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const std::size_t index = impl->ring_count.fetch_add(1, std::memory_order_acq_rel);
    if (index >= kMaxThreads) {
      rejected = true;
      impl->overflow_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // Never freed: the ring must stay dumpable after this thread exits so
    // a post-mortem covers every thread's last seconds.
    ring = new ThreadRing();
    impl->rings[index].store(ring, std::memory_order_release);
  }

  const std::uint64_t h = ring->head.load(std::memory_order_relaxed);
  Slot& slot = ring->slots[h % kRingCapacity];
  slot.seq.store(2 * h + 1, std::memory_order_release);  // odd: mid-write
  slot.mono_ns.store(impl->now_ns(), std::memory_order_relaxed);
  slot.trace_id.store(trace_id, std::memory_order_relaxed);
  slot.kind_station.store((static_cast<std::uint64_t>(kind) << 32) | station_id,
                          std::memory_order_relaxed);
  slot.value.store(value, std::memory_order_relaxed);
  slot.seq.store(2 * h + 2, std::memory_order_release);  // even: stable
  ring->head.store(h + 1, std::memory_order_release);
}

std::vector<std::vector<FlightEvent>> FlightRecorder::snapshot() const {
  std::vector<std::vector<FlightEvent>> out;
  const std::size_t count =
      std::min(impl_->ring_count.load(std::memory_order_acquire), kMaxThreads);
  out.resize(count);
  for (std::size_t r = 0; r < count; ++r) {
    const ThreadRing* ring = impl_->rings[r].load(std::memory_order_acquire);
    if (ring == nullptr) continue;  // registration in flight
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t begin = head > kRingCapacity ? head - kRingCapacity : 0;
    out[r].reserve(static_cast<std::size_t>(head - begin));
    for (std::uint64_t i = begin; i < head; ++i) {
      FlightEvent event;
      if (read_slot(ring->slots[i % kRingCapacity], i, event)) out[r].push_back(event);
    }
  }
  return out;
}

#if defined(__unix__) || defined(__APPLE__)

bool FlightRecorder::dump(const char* path) const {
  if (path == nullptr || path[0] == '\0') return false;
  char tmp_path[1024];
  const std::size_t path_len = ::strlen(path);
  if (path_len + 5 >= sizeof(tmp_path)) return false;
  std::memcpy(tmp_path, path, path_len);
  std::memcpy(tmp_path + path_len, ".tmp", 5);

  const int fd = ::open(tmp_path, O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) return false;

  char line[256];
  std::size_t pos = 0;
  const std::size_t count =
      std::min(impl_->ring_count.load(std::memory_order_acquire), kMaxThreads);
  pos = append_str(line, 0, sizeof(line), "# vehigan flight recorder dump\n# rings=");
  pos = append_u64(line, pos, sizeof(line), count);
  pos = append_str(line, pos, sizeof(line), " capacity=");
  pos = append_u64(line, pos, sizeof(line), kRingCapacity);
  pos = append_str(line, pos, sizeof(line), "\n");
  bool ok = ::write(fd, line, pos) == static_cast<ssize_t>(pos);

  for (std::size_t r = 0; ok && r < count; ++r) {
    const ThreadRing* ring = impl_->rings[r].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t begin = head > kRingCapacity ? head - kRingCapacity : 0;
    for (std::uint64_t i = begin; ok && i < head; ++i) {
      FlightEvent event;
      if (!read_slot(ring->slots[i % kRingCapacity], i, event)) continue;
      pos = append_str(line, 0, sizeof(line), "t=");
      pos = append_u64(line, pos, sizeof(line), r);
      pos = append_str(line, pos, sizeof(line), " seq=");
      pos = append_u64(line, pos, sizeof(line), event.seq);
      pos = append_str(line, pos, sizeof(line), " ns=");
      pos = append_u64(line, pos, sizeof(line), event.mono_ns);
      pos = append_str(line, pos, sizeof(line), " kind=");
      pos = append_str(line, pos, sizeof(line), to_string(event.kind));
      pos = append_str(line, pos, sizeof(line), " station=");
      pos = append_u64(line, pos, sizeof(line), event.station_id);
      pos = append_str(line, pos, sizeof(line), " trace=");
      pos = append_hex(line, pos, sizeof(line), event.trace_id);
      pos = append_str(line, pos, sizeof(line), " value=");
      pos = append_u64(line, pos, sizeof(line), event.value);
      pos = append_str(line, pos, sizeof(line), "\n");
      ok = ::write(fd, line, pos) == static_cast<ssize_t>(pos);
    }
  }

  ok = (::close(fd) == 0) && ok;
  if (ok) ok = ::rename(tmp_path, path) == 0;
  return ok;
}

void FlightRecorder::install_crash_handler(const std::string& path) {
  const std::size_t n = std::min(path.size(), sizeof(g_crash_path) - 1);
  std::memcpy(g_crash_path, path.data(), n);
  g_crash_path[n] = '\0';

  struct sigaction action {};
  action.sa_handler = crash_signal_handler;
  ::sigemptyset(&action.sa_mask);
  // Block the profiler's SIGPROF while the crash handler runs: a sampling
  // tick landing mid-post-mortem would interleave with the dump writes (and
  // sample a dying thread to no benefit).
  ::sigaddset(&action.sa_mask, SIGPROF);
  action.sa_flags = 0;
  for (int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE}) {
    ::sigaction(sig, &action, nullptr);
  }
}

#else  // non-POSIX fallback: dump via stdio (no signal handlers to serve)

bool FlightRecorder::dump(const char* path) const {
  if (path == nullptr || path[0] == '\0') return false;
  std::FILE* file = std::fopen(path, "wb");
  if (file == nullptr) return false;
  const auto rings = snapshot();
  std::fprintf(file, "# vehigan flight recorder dump\n# rings=%zu capacity=%zu\n", rings.size(),
               kRingCapacity);
  for (std::size_t r = 0; r < rings.size(); ++r) {
    for (const FlightEvent& event : rings[r]) {
      std::fprintf(file, "t=%zu seq=%llu ns=%llu kind=%s station=%u trace=%016llx value=%llu\n",
                   r, static_cast<unsigned long long>(event.seq),
                   static_cast<unsigned long long>(event.mono_ns), to_string(event.kind),
                   event.station_id, static_cast<unsigned long long>(event.trace_id),
                   static_cast<unsigned long long>(event.value));
    }
  }
  return std::fclose(file) == 0;
}

void FlightRecorder::install_crash_handler(const std::string&) {}

#endif

bool FlightRecorder::dump(const std::filesystem::path& path) const {
  return dump(path.string().c_str());
}

void FlightRecorder::set_dump_path(std::string path) {
  std::lock_guard<std::mutex> lock(impl_->path_mutex);
  impl_->dump_path = std::move(path);
}

std::string FlightRecorder::dump_path() const {
  std::lock_guard<std::mutex> lock(impl_->path_mutex);
  return impl_->dump_path;
}

bool FlightRecorder::dump_if_configured() const {
  const std::string path = dump_path();
  if (path.empty()) return false;
  return dump(path.c_str());
}

bool FlightRecorder::register_crash_hook(CrashHook hook) {
  if (hook == nullptr) return false;
  const std::size_t index = g_crash_hook_count.fetch_add(1, std::memory_order_acq_rel);
  if (index >= kMaxCrashHooks) {
    g_crash_hook_count.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  g_crash_hooks[index].store(hook, std::memory_order_release);
  return true;
}

void FlightRecorder::run_crash_hooks() {
  const std::size_t count =
      std::min(g_crash_hook_count.load(std::memory_order_acquire), kMaxCrashHooks);
  for (std::size_t i = 0; i < count; ++i) {
    const CrashHook hook = g_crash_hooks[i].load(std::memory_order_acquire);
    if (hook != nullptr) hook();
  }
}

void FlightRecorder::clear() {
  const std::size_t count =
      std::min(impl_->ring_count.load(std::memory_order_acquire), kMaxThreads);
  for (std::size_t r = 0; r < count; ++r) {
    ThreadRing* ring = impl_->rings[r].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    // Only head moves: readers scan [head - cap, head), so stale slots with
    // old generations simply fail the seq check until overwritten.
    ring->head.store(0, std::memory_order_release);
    for (Slot& slot : ring->slots) slot.seq.store(0, std::memory_order_release);
  }
  impl_->overflow_dropped.store(0, std::memory_order_relaxed);
}

std::uint64_t FlightRecorder::dropped_threads_events() const {
  return impl_->overflow_dropped.load(std::memory_order_relaxed);
}

}  // namespace vehigan::telemetry
