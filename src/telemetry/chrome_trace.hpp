#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

#include "telemetry/trace_context.hpp"

namespace vehigan::telemetry {

/// Process-wide recorder of Chrome `trace_event` complete ("X") events, so a
/// multi-shard drain renders as a cross-thread timeline in Perfetto /
/// chrome://tracing. Disabled by default; when disabled the hot-path guard
/// is a single relaxed atomic load. When enabled, call sites additionally
/// consult `sampled(station_id)` so only 1-in-`sample_every` senders pay for
/// event capture.
///
/// Storage is one append-only buffer per recording thread (registered on
/// first use, never freed, capped at kMaxEventsPerThread with overflow
/// counted in dropped()). Appends take the owning buffer's uncontended
/// mutex — tens of nanoseconds, amortized by sender sampling — which keeps
/// a concurrent export_json() exact without seqlock machinery; the flight
/// recorder is the lock-free layer, this one favors lossless JSON export.
///
/// Event names are string literals (stored by pointer); args are one trace
/// id plus one optional named integer. ts/dur derive from steady_clock
/// relative to the recorder's construction epoch.
class TraceRecorder {
 public:
  static constexpr std::size_t kMaxEventsPerThread = 1 << 16;

  static TraceRecorder& global();

  /// Starts capture. `sample_every` = N traces 1-in-N senders (see
  /// sender_sampled); 1 traces everyone. Does not clear prior events, so a
  /// disable/enable cycle accumulates into the same timeline.
  void enable(std::uint32_t sample_every = 64);
  void disable();
  [[nodiscard]] bool enabled() const;
  [[nodiscard]] std::uint32_t sample_every() const;

  /// True iff capture is on and this sender is in the sampled bucket.
  [[nodiscard]] bool sampled(std::uint32_t station_id) const;

  /// Nanoseconds since the recorder epoch (steady clock). Valid event
  /// timestamps must come from here so ts stays consistent across threads.
  [[nodiscard]] std::uint64_t now_ns() const;

  /// Labels the calling thread in the exported timeline (emitted as a
  /// Chrome "M"/thread_name metadata event). Safe to call repeatedly; the
  /// last name wins.
  void set_thread_name(std::string name);

  /// Records a complete event on the calling thread. `name` must be a
  /// string literal; `trace_id` 0 omits the trace arg; `arg_name` non-null
  /// attaches one extra integer arg (also literal-lifetime).
  void record_complete(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns,
                       std::uint64_t trace_id, const char* arg_name = nullptr,
                       std::uint64_t arg_value = 0);

  /// Serializes everything recorded so far as a Chrome trace JSON document
  /// ({"traceEvents": [...]}) with X events sorted by ts across threads.
  [[nodiscard]] std::string to_json() const;

  /// to_json() written via tmp+rename (crash-safe, like metric sidecars).
  void export_json(const std::filesystem::path& path) const;

  /// Total X events currently held across all thread buffers.
  [[nodiscard]] std::size_t event_count() const;

  /// Events discarded because a thread buffer hit kMaxEventsPerThread.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Empties every thread buffer and the drop counter (thread
  /// registrations and names persist). Test isolation only.
  void clear();

 private:
  TraceRecorder();
  struct Impl;
  Impl* impl_;  ///< never freed: threads may record during static destruction
};

}  // namespace vehigan::telemetry
