#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace vehigan::telemetry {

/// Streaming detection-quality monitor: online AUROC and
/// precision/recall-at-threshold over a labeled score stream, computed
/// without retaining the stream.
///
/// The first `Options::warmup` observations are buffered exactly (snapshots
/// over the buffer are the exact Mann-Whitney AUROC); once the buffer
/// fills, the observed score range (plus a margin) is frozen into kBins
/// fixed bins per label, the buffer is replayed into them, and every later
/// observe() is two relaxed atomic increments — safe from concurrent shard
/// workers, no locks on the hot path. AUROC over the bins is the rank-sum
/// with full tie credit inside a bin, so its error is bounded by the
/// per-bin mass (<= 1/kBins of the range per bin; well inside 0.02 for
/// unimodal score distributions).
///
/// "Positive" is caller-defined (the scenario runner uses ground-truth
/// attacker labels); "flagged" is the detector's at-threshold verdict, so
/// precision/recall reflect the deployed operating point, not a sweep.
struct QualityOptions {
  std::size_t warmup = 512;       ///< exact observations before binning
  double margin_fraction = 0.25;  ///< bin-range padding beyond warmup min/max
};

class QualityMonitor {
 public:
  static constexpr std::size_t kBins = 512;

  using Options = QualityOptions;

  struct Snapshot {
    std::uint64_t positives = 0;          ///< labeled-positive windows observed
    std::uint64_t negatives = 0;
    std::uint64_t flagged_positives = 0;  ///< true positives at threshold
    std::uint64_t flagged_negatives = 0;  ///< false positives at threshold
    double auroc = 0.5;     ///< 0.5 when either class is empty
    double precision = 0.0; ///< TP / (TP + FP); 0 when nothing flagged
    double recall = 0.0;    ///< TP / P; 0 when no positives
    bool binned = false;    ///< false while still in the exact warmup phase
  };

  explicit QualityMonitor(Options options = Options());

  /// Records one scored window. Thread-safe; lock-free after warmup.
  void observe(float score, bool positive, bool flagged);

  [[nodiscard]] Snapshot snapshot() const;

  /// Writes the snapshot into the vehigan_quality_* gauges (auroc,
  /// precision, recall, positives, negatives, flagged).
  void publish_metrics() const;

  /// Back to an empty warmup phase. Callers must be quiescent.
  void reset();

 private:
  /// +2: index 0 catches scores below the frozen range, kBins+1 above it.
  static constexpr std::size_t kAllBins = kBins + 2;

  [[nodiscard]] std::size_t bin_of(float score) const;
  void freeze_bins_locked();

  struct Obs {
    float score;
    bool positive;
  };

  Options options_;
  mutable std::mutex mutex_;       ///< guards warmup_ and the freeze
  std::vector<Obs> warmup_;
  std::atomic<bool> binned_{false};
  double lo_ = 0.0;  ///< written once under mutex_ before binned_ is released
  double hi_ = 1.0;
  std::array<std::atomic<std::uint64_t>, kAllBins> pos_bins_{};
  std::array<std::atomic<std::uint64_t>, kAllBins> neg_bins_{};
  std::atomic<std::uint64_t> positives_{0};
  std::atomic<std::uint64_t> negatives_{0};
  std::atomic<std::uint64_t> flagged_positives_{0};
  std::atomic<std::uint64_t> flagged_negatives_{0};
};

}  // namespace vehigan::telemetry
