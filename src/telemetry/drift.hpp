#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace vehigan::telemetry {

/// P² streaming quantile estimator (Jain & Chlamtac, CACM 1985): tracks one
/// quantile of an unbounded stream in O(1) memory by maintaining five
/// markers whose heights are nudged toward their ideal positions with
/// piecewise-parabolic interpolation. Exact for the first five
/// observations; a few percent relative error afterwards — plenty for the
/// p50/p95/p99 score gauges, which exist to make distribution shift
/// visible, not to certify calibration.
class P2Quantile {
 public:
  /// `q` in (0, 1), e.g. 0.95 for the 95th percentile.
  explicit P2Quantile(double q);

  void observe(double x);

  /// Current estimate. With fewer than five observations, returns the exact
  /// sample quantile (0 before any data).
  [[nodiscard]] double value() const;
  [[nodiscard]] std::uint64_t count() const { return count_; }
  void reset();

 private:
  double q_;
  std::array<double, 5> heights_{};    ///< marker values
  std::array<double, 5> positions_{};  ///< actual marker positions n_i
  std::array<double, 5> desired_{};    ///< desired positions n'_i
  std::array<double, 5> rates_{};      ///< dn'_i per observation
  std::uint64_t count_ = 0;
};

/// Tuning for EwmaDriftDetector. Defaults suit per-window ensemble scores
/// at BSM rates (10 Hz per sender): the baseline freezes after ~26 s of
/// single-sender traffic and a sustained >= 5 sigma-of-EWMA mean shift
/// alarms within a few smoothing time constants.
struct DriftConfig {
  std::size_t warmup = 256;    ///< observations used to freeze the baseline
  double alpha = 0.05;         ///< EWMA smoothing factor for the live mean
  double z_threshold = 5.0;    ///< alarm when |ewma - mu0| > z * sigma_ewma
  std::size_t min_gap = 256;   ///< observations of cooldown between alarms
  double min_sigma = 1e-6;     ///< floor on the baseline sigma (degenerate streams)
};

/// EWMA control chart for mean shift: learns the baseline mean/variance
/// from the first `warmup` observations (Welford), freezes it, then tracks
/// an exponentially weighted moving average of the stream and alarms when
/// it leaves the +-z_threshold * sigma_ewma band, where sigma_ewma =
/// sigma0 * sqrt(alpha / (2 - alpha)) is the stationary EWMA deviation.
/// A frozen baseline is the point: under an adaptive attacker the recent
/// window is exactly what cannot be trusted to define "normal".
class EwmaDriftDetector {
 public:
  explicit EwmaDriftDetector(DriftConfig config = {});

  /// Feeds one observation; returns true iff it raised a drift alarm.
  bool observe(double x);

  [[nodiscard]] bool warmed() const { return count_ >= config_.warmup; }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t alarms() const { return alarms_; }
  [[nodiscard]] double baseline_mean() const { return baseline_mean_; }
  [[nodiscard]] double baseline_sigma() const;
  [[nodiscard]] double ewma() const { return ewma_; }
  [[nodiscard]] const DriftConfig& config() const { return config_; }
  void reset();

 private:
  DriftConfig config_;
  std::uint64_t count_ = 0;
  std::uint64_t alarms_ = 0;
  std::uint64_t last_alarm_at_ = 0;
  double mean_ = 0.0;  ///< Welford running mean during warmup
  double m2_ = 0.0;    ///< Welford sum of squared deviations during warmup
  double baseline_mean_ = 0.0;
  double baseline_sigma_ = 0.0;
  double ewma_ = 0.0;
};

/// Per-detector-stream model observability: streaming p50/p95/p99 of the
/// ensemble score, an EWMA drift detector on the score mean, and a second
/// one on the flagged-rate (the label-free AFP-rate proxy: an adversarial
/// false positive campaign moves the flag rate before anyone inspects
/// reports). Single-writer by design — OnlineMbds instances are confined
/// to one shard thread — so there is no internal locking; publication to
/// gauges/counters happens at the call site.
class ScoreDriftMonitor {
 public:
  struct Stats {
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double score_ewma = 0.0;
    double flag_rate_ewma = 0.0;
    std::uint64_t observations = 0;
    std::uint64_t score_alarms = 0;
    std::uint64_t flag_rate_alarms = 0;
    bool warmed = false;
  };

  explicit ScoreDriftMonitor(DriftConfig config = {});

  /// Feeds one scored window. Returns true iff either the score-mean or the
  /// flag-rate detector alarmed on this observation.
  bool observe(double score, bool flagged);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const EwmaDriftDetector& score_detector() const { return score_; }
  [[nodiscard]] const EwmaDriftDetector& flag_rate_detector() const { return flag_rate_; }
  void reset();

 private:
  P2Quantile p50_{0.50};
  P2Quantile p95_{0.95};
  P2Quantile p99_{0.99};
  EwmaDriftDetector score_;
  EwmaDriftDetector flag_rate_;
  std::uint64_t observations_ = 0;
};

}  // namespace vehigan::telemetry
