#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace vehigan::telemetry {

namespace detail {

std::atomic<bool> g_enabled{true};

std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % Counter::kShards;
  return index;
}

}  // namespace detail

// -------------------------------------------------------------- Histogram ---

std::size_t Histogram::bucket_index(double value) {
  if (!(value > 0.0)) return 0;  // non-positive and NaN
  if (std::isinf(value)) return kFiniteBuckets;  // frexp(inf) leaves exp unspecified
  int exp = 0;
  const double mantissa = std::frexp(value, &exp);  // value = m * 2^exp, m in [0.5, 1)
  const int octave = exp - 1;                       // floor(log2(value))
  if (octave < kMinExp) return 0;
  if (octave >= kMaxExp) return kFiniteBuckets;
  // Linear position inside the octave: value / 2^octave - 1 in [0, 1).
  const double frac = mantissa * 2.0 - 1.0;
  const auto sub = std::min(static_cast<std::size_t>(frac * kSubBuckets), kSubBuckets - 1);
  return static_cast<std::size_t>(octave - kMinExp) * kSubBuckets + sub;
}

double Histogram::bucket_upper_bound(std::size_t i) {
  if (i >= kFiniteBuckets) return std::numeric_limits<double>::infinity();
  const int octave = kMinExp + static_cast<int>(i / kSubBuckets);
  const auto sub = i % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets, octave);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const SumShard& s : sums_) {
    total += std::bit_cast<double>(s.v.load(std::memory_order_relaxed));
  }
  return total;
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  for (SumShard& s : sums_) s.v.store(0, std::memory_order_relaxed);
}

// --------------------------------------------------------- MetricsRegistry ---

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::scoped_lock lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) snap.gauges.emplace_back(name, gauge->value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.sum = hist->sum();
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t c = hist->bucket_count(i);
      if (c == 0) continue;
      h.count += c;
      h.buckets.push_back({Histogram::bucket_upper_bound(i), c});
    }
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void MetricsRegistry::reset() {
  const std::scoped_lock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, hist] : histograms_) hist->reset();
}

}  // namespace vehigan::telemetry
