#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace vehigan::telemetry {

/// What happened at one point of the serving pipeline. Numeric values are
/// part of the dump format — append only, never renumber.
enum class FlightEventKind : std::uint32_t {
  kEnqueue = 0,     ///< message accepted by a shard queue; value = shard index
  kDrop = 1,        ///< message rejected/replaced under overload; value = shard index
  kDrainStart = 2,  ///< shard drained a batch; value = batch size
  kDrainEnd = 3,    ///< batch fully scored; value = reports emitted
  kScore = 4,       ///< one window scored; value = bit pattern of the double score
  kDecide = 5,      ///< threshold verdict for one window; value = 1 if flagged
  kReport = 6,      ///< misbehavior report emitted; value = bit pattern of the score
  kEvict = 7,       ///< stale-vehicle sweep; value = vehicles evicted
  kStop = 8,        ///< service/shard shutdown checkpoint; value = scored count
  kMark = 9,        ///< free-form test/debug marker
};

[[nodiscard]] const char* to_string(FlightEventKind kind);

/// One decoded flight-recorder entry (the in-ring representation is a
/// seqlock slot of atomics; this is the stable snapshot view).
struct FlightEvent {
  std::uint64_t seq = 0;       ///< per-thread sequence number, 0-based
  std::uint64_t mono_ns = 0;   ///< steady-clock nanoseconds since recorder epoch
  FlightEventKind kind = FlightEventKind::kMark;
  std::uint32_t station_id = 0;
  std::uint64_t trace_id = 0;  ///< trace_id_of(station, time); 0 = none
  std::uint64_t value = 0;     ///< kind-specific payload (see enum docs)
};

/// Black box for the serving pipeline: every thread that records gets a
/// fixed-size ring of its most recent kRingCapacity events, written
/// lock-free by the owning thread (a seqlock per slot: odd seq = mid-write,
/// even = stable) and readable at any time by dump()/snapshot() without
/// stopping writers — torn slots are simply skipped. Rings live for the
/// process lifetime (a thread's last seconds stay dumpable after it exits),
/// registered in a fixed lock-free table so the dump path never takes a
/// mutex and is async-signal-safe.
///
/// Recording is gated on the process-wide telemetry kill switch
/// (telemetry::enabled()) plus this recorder's own enable flag (on by
/// default): the black box runs in production paths unless explicitly
/// silenced, at a cost of one clock read and a handful of relaxed atomic
/// stores per event.
class FlightRecorder {
 public:
  static constexpr std::size_t kRingCapacity = 2048;  ///< events kept per thread
  static constexpr std::size_t kMaxThreads = 128;     ///< rings; later threads drop

  static FlightRecorder& global();

  /// Records one event into the calling thread's ring. No-op when the
  /// telemetry kill switch or this recorder is off.
  static void record(FlightEventKind kind, std::uint32_t station_id, std::uint64_t trace_id,
                     std::uint64_t value = 0);

  void set_enabled(bool on);
  [[nodiscard]] bool enabled() const;

  /// Consistent events per registered ring, oldest first. Slots being
  /// overwritten concurrently are dropped, never torn. Allocates — not for
  /// signal handlers; use dump().
  [[nodiscard]] std::vector<std::vector<FlightEvent>> snapshot() const;

  /// Writes a text dump (one `t=<ring> seq=... ns=... kind=... station=...
  /// trace=<hex> value=...` line per event) to `<path>.tmp`, then renames
  /// over `path`. Uses only async-signal-safe calls (open/write/rename,
  /// manual formatting) so it is legal from SIGSEGV/SIGABRT handlers.
  /// Returns false if the file could not be written.
  bool dump(const char* path) const;
  bool dump(const std::filesystem::path& path) const;

  /// Configures the destination used by dump_if_configured() — wired to
  /// DetectionService::drain()/stop() — and by install_crash_handler().
  void set_dump_path(std::string path);
  [[nodiscard]] std::string dump_path() const;
  bool dump_if_configured() const;

  /// Installs SIGSEGV/SIGABRT/SIGBUS/SIGFPE handlers that dump the rings to
  /// `path` and then re-raise with the default disposition, so the process
  /// still dies with the original signal (exit status preserved for
  /// supervisors). No-op on non-POSIX builds.
  void install_crash_handler(const std::string& path);

  /// A hook the crash handler runs after the ring dump (and the cached
  /// statusz snapshot). MUST be async-signal-safe: plain function pointer,
  /// no allocation, no locks — the verdict ledger registers one to write
  /// its staged-but-unflushed records before the process dies.
  using CrashHook = void (*)();

  /// Registers `hook` into a fixed lock-free table (at most kMaxCrashHooks;
  /// returns false when full or hook is null). Hooks run in registration
  /// order whenever the installed crash handler fires, whether or not a
  /// flight-recorder dump path is configured. Hooks cannot be unregistered
  /// — register a process-lifetime trampoline that consults its own state.
  static bool register_crash_hook(CrashHook hook);
  static constexpr std::size_t kMaxCrashHooks = 8;

  /// Runs every registered hook, exactly as the crash handler would.
  /// Exposed so tests (and non-POSIX builds) can exercise hook behavior
  /// without dying by signal.
  static void run_crash_hooks();

  /// Resets every ring to empty (heads to zero, slots invalidated) and
  /// clears drop counters. Callers must ensure no thread is concurrently
  /// recording. Test isolation only.
  void clear();

  /// Events not recorded because more than kMaxThreads threads registered.
  [[nodiscard]] std::uint64_t dropped_threads_events() const;

 private:
  FlightRecorder();
  struct Impl;
  Impl* impl_;  ///< never freed: crash handler may fire during shutdown
};

}  // namespace vehigan::telemetry
