#include "telemetry/statusz.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>

#include "telemetry/exporter.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#endif

namespace vehigan::telemetry {

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

// ------------------------------------------------------------ crash cache ---
// Double-buffered pre-rendered text snapshot: refresh writes the inactive
// buffer then publishes its index, so the crash handler always reads a
// complete rendering. Writers are serialized by the statusz mutex; the
// handler only loads + write()s.

constexpr std::size_t kCrashCacheCap = 64 * 1024;
char g_cache[2][kCrashCacheCap];
std::atomic<std::uint32_t> g_cache_len[2] = {};
std::atomic<int> g_cache_which{-1};
char g_statusz_crash_path[768] = {0};

}  // namespace

// ---------------------------------------------------------- StatuszWriter ---

void StatuszWriter::kv(std::string_view key, std::string_view value) {
  text_.append(key).append(": ").append(value).append("\n");
  if (!json_members_.empty()) json_members_ += ',';
  json_members_ += "\"" + json_escape(key) + "\":\"" + json_escape(value) + "\"";
}

void StatuszWriter::kv(std::string_view key, double value) {
  const std::string formatted = format_double(value);
  text_.append(key).append(": ").append(formatted).append("\n");
  if (!json_members_.empty()) json_members_ += ',';
  // format_double emits valid JSON numbers except for non-finite values.
  const bool finite = formatted.find_first_not_of("0123456789+-.eE") == std::string::npos;
  json_members_ += "\"" + json_escape(key) + "\":";
  json_members_ += finite ? formatted : "\"" + formatted + "\"";
}

void StatuszWriter::kv(std::string_view key, std::uint64_t value) {
  const std::string formatted = std::to_string(value);
  text_.append(key).append(": ").append(formatted).append("\n");
  if (!json_members_.empty()) json_members_ += ',';
  json_members_ += "\"" + json_escape(key) + "\":" + formatted;
}

void StatuszWriter::kv(std::string_view key, bool value) {
  const char* formatted = value ? "true" : "false";
  text_.append(key).append(": ").append(formatted).append("\n");
  if (!json_members_.empty()) json_members_ += ',';
  json_members_ += "\"" + json_escape(key) + "\":" + formatted;
}

void StatuszWriter::line(std::string_view text) {
  text_.append(text).append("\n");
  lines_.emplace_back(text);
}

// ------------------------------------------------------------------ Statusz ---

struct Statusz::Impl {
  struct Section {
    std::uint64_t id = 0;
    std::string name;
    SectionFn fn;
  };
  /// One mutex serializes registration, unregistration, and rendering, so
  /// unregister_section returning guarantees the callback is quiescent.
  std::mutex mutex;
  std::vector<Section> sections;
  std::uint64_t next_id = 1;
  std::string dump_path;

  /// Renders into whichever of `text`/`json` is non-null. Caller holds mutex.
  void render(std::string* text, std::string* json);
};

Statusz::Statusz() : impl_(new Impl) {
  // Built-in sections; subsystems above telemetry register their own.
  register_section("profiler", [](StatuszWriter& w) {
    Profiler& profiler = Profiler::global();
    const Profiler::Accounting acc = profiler.accounting();
    w.kv("running", profiler.running());
    w.kv("hz", static_cast<std::uint64_t>(profiler.hz()));
    w.kv("samples_total", acc.total);
    w.kv("samples_kept", acc.kept);
    w.kv("dropped_overwritten", acc.overwritten);
    w.kv("dropped_torn", acc.torn);
    w.kv("dropped_lane_overflow", acc.lane_overflow);
    w.kv("truncated_stacks", acc.truncated);
    const auto stacks = profiler.collapsed();
    const std::size_t top = std::min<std::size_t>(stacks.size(), 5);
    for (std::size_t i = 0; i < top; ++i) {
      std::string stack = stacks[i].stack;
      if (stack.size() > 240) stack = "..." + stack.substr(stack.size() - 237);
      w.line("hot[" + std::to_string(i) + "] " + std::to_string(stacks[i].count) + "x " +
             stack);
    }
  });
  register_section("flight_recorder", [](StatuszWriter& w) {
    const FlightRecorder& recorder = FlightRecorder::global();
    const auto rings = recorder.snapshot();
    std::size_t events = 0;
    for (const auto& ring : rings) events += ring.size();
    w.kv("enabled", recorder.enabled());
    w.kv("rings", static_cast<std::uint64_t>(rings.size()));
    w.kv("events_readable", static_cast<std::uint64_t>(events));
    w.kv("dropped_threads_events", recorder.dropped_threads_events());
    w.kv("dump_path", recorder.dump_path());
  });
  register_section("metrics", [](StatuszWriter& w) {
    const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
    w.kv("enabled", telemetry::enabled());
    w.kv("counters", static_cast<std::uint64_t>(snap.counters.size()));
    w.kv("gauges", static_cast<std::uint64_t>(snap.gauges.size()));
    w.kv("histograms", static_cast<std::uint64_t>(snap.histograms.size()));
    for (const auto& [name, value] : snap.counters) {
      // The ops-triage counters inline; everything else stays in the
      // Prometheus/JSON exporters.
      if (name.rfind("vehigan_serve_", 0) == 0 ||
          name == "vehigan_mbds_score_drift_alarms_total") {
        w.kv(name, value);
      }
    }
  });
}

Statusz& Statusz::global() {
  static Statusz* statusz = new Statusz();  // leaked: see class comment
  return *statusz;
}

std::uint64_t Statusz::register_section(std::string name, SectionFn fn) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  const std::uint64_t id = impl_->next_id++;
  impl_->sections.push_back({id, std::move(name), std::move(fn)});
  return id;
}

void Statusz::unregister_section(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  auto& sections = impl_->sections;
  sections.erase(std::remove_if(sections.begin(), sections.end(),
                                [id](const Impl::Section& s) { return s.id == id; }),
                 sections.end());
}

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Stores rendered text into the inactive crash buffer and publishes it.
/// Caller holds the statusz mutex (serializes writers).
void cache_locked(const std::string& text) {
  const int current = g_cache_which.load(std::memory_order_relaxed);
  const int next = current == 0 ? 1 : 0;
  const std::size_t n = std::min(text.size(), kCrashCacheCap);
  std::memcpy(g_cache[next], text.data(), n);
  g_cache_len[next].store(static_cast<std::uint32_t>(n), std::memory_order_release);
  g_cache_which.store(next, std::memory_order_release);
}

}  // namespace

void Statusz::Impl::render(std::string* text, std::string* json) {
  const std::uint64_t now = steady_now_ns();
  if (text != nullptr) {
    *text = "# vehigan statusz\nmono_ns: " + std::to_string(now) + "\n";
  }
  if (json != nullptr) {
    *json = "{\"mono_ns\":" + std::to_string(now) + ",\"sections\":{";
  }
  bool first = true;
  for (const auto& section : sections) {
    StatuszWriter writer;
    try {
      section.fn(writer);
    } catch (const std::exception& e) {
      writer.line(std::string("section error: ") + e.what());
    } catch (...) {
      writer.line("section error: unknown");
    }
    if (text != nullptr) {
      text->append("\n[").append(section.name).append("]\n").append(writer.text_);
    }
    if (json != nullptr) {
      if (!first) *json += ',';
      *json += "\"" + json_escape(section.name) + "\":{" + writer.json_members_;
      if (!writer.lines_.empty()) {
        if (!writer.json_members_.empty()) *json += ',';
        *json += "\"lines\":[";
        for (std::size_t i = 0; i < writer.lines_.size(); ++i) {
          if (i > 0) *json += ',';
          *json += "\"" + json_escape(writer.lines_[i]) + "\"";
        }
        *json += "]";
      }
      *json += "}";
    }
    first = false;
  }
  if (json != nullptr) *json += "}}\n";
}

std::string Statusz::render_text() {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  std::string text;
  impl_->render(&text, nullptr);
  return text;
}

std::string Statusz::render_json() {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  std::string json;
  impl_->render(nullptr, &json);
  return json;
}

bool Statusz::write(const std::filesystem::path& path) {
  std::string text;
  std::string json;
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->render(&text, &json);
    cache_locked(text);
  }
  try {
    write_file_atomic(path, text);
    std::filesystem::path json_path = path;
    json_path += ".json";
    write_file_atomic(json_path, json);
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

void Statusz::refresh_crash_cache() {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  std::string text;
  impl_->render(&text, nullptr);
  cache_locked(text);
}

void Statusz::set_dump_path(std::string path) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->dump_path = std::move(path);
  const std::size_t n =
      std::min(impl_->dump_path.size(), sizeof(g_statusz_crash_path) - 1);
  std::memcpy(g_statusz_crash_path, impl_->dump_path.data(), n);
  g_statusz_crash_path[n] = '\0';
}

std::string Statusz::dump_path() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->dump_path;
}

bool Statusz::dump_if_configured() {
  const std::string path = dump_path();
  if (path.empty()) return false;
  return write(path);
}

#if defined(__unix__) || defined(__APPLE__)

bool Statusz::crash_dump_cached() {
  if (g_statusz_crash_path[0] == '\0') return false;
  const int which = g_cache_which.load(std::memory_order_acquire);
  if (which < 0) return false;
  const std::uint32_t len = g_cache_len[which].load(std::memory_order_acquire);

  char tmp_path[1024];
  const std::size_t path_len = ::strlen(g_statusz_crash_path);
  if (path_len + 5 >= sizeof(tmp_path)) return false;
  std::memcpy(tmp_path, g_statusz_crash_path, path_len);
  std::memcpy(tmp_path + path_len, ".tmp", 5);

  const int fd = ::open(tmp_path, O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) return false;
  static const char kHeader[] = "# dumped from crash handler (cached snapshot)\n";
  bool ok = ::write(fd, kHeader, sizeof(kHeader) - 1) ==
            static_cast<ssize_t>(sizeof(kHeader) - 1);
  ok = ok && ::write(fd, g_cache[which], len) == static_cast<ssize_t>(len);
  ok = (::close(fd) == 0) && ok;
  if (ok) ok = ::rename(tmp_path, g_statusz_crash_path) == 0;
  return ok;
}

#else

bool Statusz::crash_dump_cached() { return false; }

#endif

}  // namespace vehigan::telemetry
