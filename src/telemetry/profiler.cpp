#include "telemetry/profiler.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>
#include <mutex>
#include <unordered_map>

#include "telemetry/exporter.hpp"

#if defined(__linux__)
#include <dlfcn.h>
#include <pthread.h>
#include <signal.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cxxabi.h>
#include <ucontext.h>

// Older glibc spells the SIGEV_THREAD_ID target field without the macro.
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif
#endif

namespace vehigan::telemetry {

namespace {

/// One seqlock-protected sample slot: the owning thread's signal handler is
/// the only writer (SIGPROF is thread-directed), readers skip torn slots by
/// the same odd/even-seq protocol as the flight recorder.
struct SampleSlot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> mono_ns{0};
  std::atomic<std::uint32_t> depth{0};
  std::atomic<std::uintptr_t> pcs[Profiler::kMaxFrames] = {};
};

/// Per-thread sample ring plus the stack bounds the handler's frame-pointer
/// walk is clamped to. Bounds are plain fields: written by the owning
/// thread at (re)attach, before any timer targets it, and read only from
/// that thread's own signal handler. Lanes are never freed — a dead
/// thread's samples stay dumpable — and are recycled to new threads through
/// a free list.
struct Lane {
  std::atomic<std::uint64_t> head{0};       ///< samples ever pushed here
  std::atomic<std::uint64_t> truncated{0};  ///< samples cut at kMaxFrames
  std::uintptr_t stack_lo = 0;
  std::uintptr_t stack_hi = 0;
  SampleSlot slots[Profiler::kRingCapacity];
};

thread_local Lane* t_lane = nullptr;
thread_local std::size_t t_lane_index = static_cast<std::size_t>(-1);

}  // namespace

struct Profiler::Impl {
  std::atomic<bool> running{false};
  std::atomic<std::uint32_t> hz{0};
  std::uint64_t epoch_ns = 0;  ///< CLOCK_MONOTONIC at construction

  std::atomic<Lane*> lanes[kMaxLanes] = {};
  std::atomic<std::size_t> lane_count{0};
  std::atomic<std::uint64_t> lane_overflow{0};

  /// Timer bookkeeping per lane; cold path only (attach/detach/start/stop),
  /// all under reg_mutex. The signal handler never touches this.
  struct Owner {
    long tid = 0;
    bool alive = false;
    bool armed = false;
#if defined(__linux__)
    timer_t timer{};
#endif
  };
  std::mutex reg_mutex;
  Owner owners[kMaxLanes];
  std::vector<std::size_t> free_lanes;
};

namespace {

Profiler::Impl* g_impl = nullptr;  ///< set once at construction, never freed

std::uint64_t monotonic_ns() {
#if defined(__linux__)
  struct timespec ts {};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

/// Async-signal-safe ring push shared by the SIGPROF handler and the
/// synthetic-record test seam. Single writer per lane.
void push_sample(Lane* lane, const std::uintptr_t* pcs, std::size_t depth,
                 std::uint64_t mono_ns) {
  const std::uint64_t h = lane->head.load(std::memory_order_relaxed);
  SampleSlot& slot = lane->slots[h % Profiler::kRingCapacity];
  slot.seq.store(2 * h + 1, std::memory_order_release);  // odd: mid-write
  slot.mono_ns.store(mono_ns, std::memory_order_relaxed);
  slot.depth.store(static_cast<std::uint32_t>(depth), std::memory_order_relaxed);
  for (std::size_t i = 0; i < depth; ++i) {
    slot.pcs[i].store(pcs[i], std::memory_order_relaxed);
  }
  slot.seq.store(2 * h + 2, std::memory_order_release);  // even: stable
  lane->head.store(h + 1, std::memory_order_release);
}

/// Reads one sample consistently; false for torn/recycled slots.
bool read_sample(const SampleSlot& slot, std::uint64_t index, Profiler::Sample& out) {
  const std::uint64_t seq1 = slot.seq.load(std::memory_order_acquire);
  if (seq1 != 2 * index + 2) return false;
  out.mono_ns = slot.mono_ns.load(std::memory_order_relaxed);
  const std::uint32_t depth =
      std::min<std::uint32_t>(slot.depth.load(std::memory_order_relaxed),
                              static_cast<std::uint32_t>(Profiler::kMaxFrames));
  out.frames.resize(depth);
  for (std::uint32_t i = 0; i < depth; ++i) {
    out.frames[i] = slot.pcs[i].load(std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  return slot.seq.load(std::memory_order_relaxed) == seq1;
}

#if defined(__linux__)

long current_tid() { return static_cast<long>(::syscall(SYS_gettid)); }

/// Anchor recorded when the interrupted context yields no walkable PC (e.g.
/// sanitizer trampolines hand the handler a zeroed ucontext). Exported so
/// dladdr names it in the profile instead of a bare hex address.
extern "C" void vehigan_profiler_unresolved_frame() {}

/// SIGPROF handler: capture PC + frame-pointer chain from the interrupted
/// context into the calling thread's own lane. Signal-safety: thread_local
/// reads, bounded pointer walk with explicit stack-limit checks,
/// clock_gettime, relaxed/release atomic stores, errno save/restore — no
/// allocation, locks, or symbolization (those run offline at dump time).
/// Uninstrumented under sanitizers: the walk reads raw stack words that are
/// legal saved-frame slots but can sit inside ASan redzones, and TSan's
/// interceptors are not async-signal-safe.
#if defined(__clang__) || defined(__GNUC__)
__attribute__((no_sanitize("address", "thread", "undefined")))
#endif
void profiler_signal_handler(int /*sig*/, siginfo_t* /*info*/, void* context) {
  Lane* lane = t_lane;
  Profiler::Impl* impl = g_impl;
  if (lane == nullptr || impl == nullptr) return;
  const int saved_errno = errno;

  std::uintptr_t pcs[Profiler::kMaxFrames];
  std::size_t depth = 0;
  std::uintptr_t pc = 0;
  std::uintptr_t fp = 0;
#if defined(__x86_64__)
  const auto* uc = static_cast<const ucontext_t*>(context);
  pc = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
#elif defined(__aarch64__)
  const auto* uc = static_cast<const ucontext_t*>(context);
  pc = static_cast<std::uintptr_t>(uc->uc_mcontext.pc);
  fp = static_cast<std::uintptr_t>(uc->uc_mcontext.regs[29]);
#else
  (void)context;
#endif
  if (pc != 0) pcs[depth++] = pc;
  // Frame-pointer chain: [fp] = caller's fp, [fp+8] = return address. Every
  // dereference is clamped to this thread's stack and the chain must move
  // strictly toward the stack base, so a corrupt frame ends the walk instead
  // of faulting inside a signal handler.
  while (depth < Profiler::kMaxFrames && fp >= lane->stack_lo &&
         fp + 2 * sizeof(std::uintptr_t) <= lane->stack_hi &&
         (fp & (sizeof(std::uintptr_t) - 1)) == 0) {
    const auto* frame = reinterpret_cast<const std::uintptr_t*>(fp);
    const std::uintptr_t ret = frame[1];
    const std::uintptr_t next = frame[0];
    if (ret < 0x1000) break;
    pcs[depth++] = ret;
    if (next <= fp) break;
    fp = next;
  }
  if (depth == 0) {
    pcs[depth++] = reinterpret_cast<std::uintptr_t>(&vehigan_profiler_unresolved_frame);
  }
  if (depth == Profiler::kMaxFrames) {
    lane->truncated.fetch_add(1, std::memory_order_relaxed);
  }
  push_sample(lane, pcs, depth, monotonic_ns() - impl->epoch_ns);
  errno = saved_errno;
}

/// Captures the calling thread's stack bounds. Not signal-safe (glibc may
/// read /proc/self/maps for the main thread) — which is exactly why it runs
/// at attach time, never in the handler.
void current_stack_bounds(std::uintptr_t& lo, std::uintptr_t& hi) {
  lo = 0;
  hi = 0;
  pthread_attr_t attr;
  if (::pthread_getattr_np(::pthread_self(), &attr) != 0) return;
  void* addr = nullptr;
  std::size_t size = 0;
  if (::pthread_attr_getstack(&attr, &addr, &size) == 0) {
    lo = reinterpret_cast<std::uintptr_t>(addr);
    hi = lo + size;
  }
  ::pthread_attr_destroy(&attr);
}

/// Arms a per-thread CPU-time timer for lane `index`. reg_mutex held.
/// timer_create with SIGEV_THREAD_ID may be issued from any thread, so
/// start() can arm every already-attached thread without their cooperation.
void arm_locked(Profiler::Impl* impl, std::size_t index) {
  Profiler::Impl::Owner& owner = impl->owners[index];
  if (!owner.alive || owner.armed) return;
  struct sigevent sev {};
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = static_cast<pid_t>(owner.tid);
  if (::timer_create(CLOCK_THREAD_CPUTIME_ID, &sev, &owner.timer) != 0) return;
  const std::uint32_t hz = impl->hz.load(std::memory_order_relaxed);
  const long interval_ns =
      std::max(100000L, static_cast<long>(1000000000ULL / std::max(1u, hz)));
  struct itimerspec its {};
  its.it_interval.tv_nsec = interval_ns;
  its.it_value.tv_nsec = interval_ns;
  if (::timer_settime(owner.timer, 0, &its, nullptr) != 0) {
    ::timer_delete(owner.timer);
    return;
  }
  owner.armed = true;
}

void disarm_locked(Profiler::Impl* impl, std::size_t index) {
  Profiler::Impl::Owner& owner = impl->owners[index];
  if (!owner.armed) return;
  ::timer_delete(owner.timer);
  owner.armed = false;
}

#else  // !__linux__

long current_tid() { return 0; }
void current_stack_bounds(std::uintptr_t& lo, std::uintptr_t& hi) { lo = hi = 0; }
void arm_locked(Profiler::Impl*, std::size_t) {}
void disarm_locked(Profiler::Impl*, std::size_t) {}

#endif

/// Thread-exit hook: releases the lane (ring contents stay readable) and
/// deletes this thread's timer so SIGPROF never targets a dead tid.
void detach_current_thread() {
  Profiler::Impl* impl = g_impl;
  if (impl == nullptr || t_lane == nullptr) return;
  const std::lock_guard<std::mutex> lock(impl->reg_mutex);
  disarm_locked(impl, t_lane_index);
  impl->owners[t_lane_index].alive = false;
  impl->owners[t_lane_index].tid = 0;
  impl->free_lanes.push_back(t_lane_index);
  t_lane = nullptr;
  t_lane_index = static_cast<std::size_t>(-1);
}

struct LaneGuard {
  ~LaneGuard() { detach_current_thread(); }
};

std::size_t append_hex_str(std::string& out, std::uintptr_t v) {
  char buf[2 + 2 * sizeof(v) + 1];
  std::snprintf(buf, sizeof(buf), "%llx", static_cast<unsigned long long>(v));
  out += buf;
  return out.size();
}

}  // namespace

Profiler::Profiler() : impl_(new Impl) {
  impl_->epoch_ns = monotonic_ns();
  g_impl = impl_;
}

Profiler& Profiler::global() {
  static Profiler profiler;
  return profiler;
}

void Profiler::attach_current_thread() {
  if (t_lane != nullptr) return;
  Impl* impl = global().impl_;
  std::uintptr_t lo = 0;
  std::uintptr_t hi = 0;
  current_stack_bounds(lo, hi);

  const std::lock_guard<std::mutex> lock(impl->reg_mutex);
  std::size_t index;
  if (!impl->free_lanes.empty()) {
    index = impl->free_lanes.back();
    impl->free_lanes.pop_back();
  } else {
    index = impl->lane_count.load(std::memory_order_relaxed);
    if (index >= kMaxLanes) {
      impl->lane_overflow.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // Never freed: samples must stay dumpable after the thread exits.
    impl->lanes[index].store(new Lane(), std::memory_order_release);
    impl->lane_count.store(index + 1, std::memory_order_release);
  }
  Lane* lane = impl->lanes[index].load(std::memory_order_acquire);
  lane->stack_lo = lo;
  lane->stack_hi = hi;
  impl->owners[index].tid = current_tid();
  impl->owners[index].alive = true;
  impl->owners[index].armed = false;
  t_lane = lane;
  t_lane_index = index;
  thread_local LaneGuard guard;
  (void)guard;
  if (impl->running.load(std::memory_order_relaxed)) arm_locked(impl, index);
}

bool Profiler::start(std::uint32_t hz) {
#if !defined(__linux__)
  (void)hz;
  return false;
#else
  if (hz == 0) return false;
  {
    const std::lock_guard<std::mutex> lock(impl_->reg_mutex);
    if (impl_->running.load(std::memory_order_relaxed)) return false;
    struct sigaction action {};
    action.sa_sigaction = profiler_signal_handler;
    ::sigemptyset(&action.sa_mask);
    action.sa_flags = SA_SIGINFO | SA_RESTART;
    if (::sigaction(SIGPROF, &action, nullptr) != 0) return false;
    impl_->hz.store(hz, std::memory_order_relaxed);
    impl_->running.store(true, std::memory_order_relaxed);
    const std::size_t count =
        std::min(impl_->lane_count.load(std::memory_order_acquire), kMaxLanes);
    for (std::size_t i = 0; i < count; ++i) arm_locked(impl_, i);
  }
  attach_current_thread();  // takes reg_mutex itself; arms the caller
  return true;
#endif
}

void Profiler::stop() {
  const std::lock_guard<std::mutex> lock(impl_->reg_mutex);
  if (!impl_->running.load(std::memory_order_relaxed)) return;
  impl_->running.store(false, std::memory_order_relaxed);
  const std::size_t count =
      std::min(impl_->lane_count.load(std::memory_order_acquire), kMaxLanes);
  for (std::size_t i = 0; i < count; ++i) disarm_locked(impl_, i);
}

bool Profiler::running() const { return impl_->running.load(std::memory_order_relaxed); }

std::uint32_t Profiler::hz() const { return impl_->hz.load(std::memory_order_relaxed); }

void Profiler::record_synthetic(std::span<const std::uintptr_t> frames) {
  attach_current_thread();
  if (t_lane == nullptr) {
    impl_->lane_overflow.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::uintptr_t pcs[kMaxFrames];
  const std::size_t depth = std::min(frames.size(), kMaxFrames);
  std::copy_n(frames.begin(), depth, pcs);
  if (depth == kMaxFrames && frames.size() >= kMaxFrames) {
    t_lane->truncated.fetch_add(1, std::memory_order_relaxed);
  }
  push_sample(t_lane, pcs, depth, monotonic_ns() - impl_->epoch_ns);
}

Profiler::Snapshot Profiler::snapshot() const {
  Snapshot snap;
  const std::size_t count =
      std::min(impl_->lane_count.load(std::memory_order_acquire), kMaxLanes);
  snap.accounting.lane_overflow = impl_->lane_overflow.load(std::memory_order_relaxed);
  snap.accounting.total = snap.accounting.lane_overflow;
  for (std::size_t r = 0; r < count; ++r) {
    const Lane* lane = impl_->lanes[r].load(std::memory_order_acquire);
    if (lane == nullptr) continue;  // registration in flight
    LaneSnapshot out;
    out.lane = r;
    const std::uint64_t head = lane->head.load(std::memory_order_acquire);
    const std::uint64_t begin = head > kRingCapacity ? head - kRingCapacity : 0;
    snap.accounting.total += head;
    snap.accounting.overwritten += begin;
    snap.accounting.truncated += lane->truncated.load(std::memory_order_relaxed);
    out.samples.reserve(static_cast<std::size_t>(head - begin));
    for (std::uint64_t i = begin; i < head; ++i) {
      Sample sample;
      if (read_sample(lane->slots[i % kRingCapacity], i, sample)) {
        out.samples.push_back(std::move(sample));
      } else {
        ++snap.accounting.torn;
      }
    }
    snap.accounting.kept += out.samples.size();
    snap.lanes.push_back(std::move(out));
  }
  return snap;
}

Profiler::Accounting Profiler::accounting() const { return snapshot().accounting; }

void Profiler::clear() {
  const std::size_t count =
      std::min(impl_->lane_count.load(std::memory_order_acquire), kMaxLanes);
  for (std::size_t r = 0; r < count; ++r) {
    Lane* lane = impl_->lanes[r].load(std::memory_order_acquire);
    if (lane == nullptr) continue;
    lane->head.store(0, std::memory_order_release);
    lane->truncated.store(0, std::memory_order_relaxed);
    for (SampleSlot& slot : lane->slots) slot.seq.store(0, std::memory_order_release);
  }
  impl_->lane_overflow.store(0, std::memory_order_relaxed);
}

std::string Profiler::symbolize(std::uintptr_t pc) {
#if defined(__linux__)
  Dl_info info{};
  if (::dladdr(reinterpret_cast<void*>(pc), &info) != 0 && info.dli_sname != nullptr) {
    int status = -1;
    char* demangled = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    std::string name = (status == 0 && demangled != nullptr) ? demangled : info.dli_sname;
    std::free(demangled);
    return name;
  }
  if (info.dli_fname != nullptr) {
    const char* base = std::strrchr(info.dli_fname, '/');
    std::string out = base != nullptr ? base + 1 : info.dli_fname;
    out += "+0x";
    append_hex_str(out, pc - reinterpret_cast<std::uintptr_t>(info.dli_fbase));
    return out;
  }
#endif
  std::string out = "0x";
  append_hex_str(out, pc);
  return out;
}

std::vector<Profiler::CollapsedStack> Profiler::collapsed() const {
  const Snapshot snap = snapshot();
  // Symbolization cache: hot profiles repeat a handful of PCs thousands of
  // times; dladdr + demangling per occurrence would dominate dump time.
  std::unordered_map<std::uintptr_t, std::string> names;
  auto name_of = [&](std::uintptr_t pc) -> const std::string& {
    auto it = names.find(pc);
    if (it == names.end()) it = names.emplace(pc, symbolize(pc)).first;
    return it->second;
  };
  std::map<std::string, std::uint64_t> folded;
  std::string key;
  for (const LaneSnapshot& lane : snap.lanes) {
    for (const Sample& sample : lane.samples) {
      key.clear();
      // Samples store frames leaf-first; folded format is root-first.
      // Caller frames hold *return* addresses — symbolize pc-1 so a call
      // that ends a function doesn't get attributed to the next symbol.
      for (std::size_t i = sample.frames.size(); i-- > 0;) {
        const std::uintptr_t pc = i == 0 ? sample.frames[i] : sample.frames[i] - 1;
        if (!key.empty()) key += ';';
        key += name_of(pc);
      }
      if (!key.empty()) ++folded[key];
    }
  }
  std::vector<CollapsedStack> out;
  out.reserve(folded.size());
  for (auto& [stack, n] : folded) out.push_back({stack, n});
  std::sort(out.begin(), out.end(), [](const CollapsedStack& a, const CollapsedStack& b) {
    return a.count != b.count ? a.count > b.count : a.stack < b.stack;
  });
  return out;
}

bool Profiler::write_collapsed(const std::filesystem::path& path) const {
  std::string body;
  for (const CollapsedStack& stack : collapsed()) {
    body += stack.stack;
    body += ' ';
    body += std::to_string(stack.count);
    body += '\n';
  }
  write_file_atomic(path, body);  // throws on failure
  return true;
}

bool Profiler::parse_collapsed_line(std::string_view line, CollapsedStack& out) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  const std::size_t space = line.rfind(' ');
  if (space == std::string_view::npos || space == 0 || space + 1 >= line.size()) {
    return false;
  }
  const std::string_view count_str = line.substr(space + 1);
  std::uint64_t count = 0;
  for (char c : count_str) {
    if (c < '0' || c > '9') return false;
    count = count * 10 + static_cast<std::uint64_t>(c - '0');
  }
  const std::string_view stack = line.substr(0, space);
  // Every ';'-separated frame must be nonempty.
  std::size_t begin = 0;
  while (true) {
    const std::size_t sep = stack.find(';', begin);
    const std::string_view frame =
        stack.substr(begin, sep == std::string_view::npos ? sep : sep - begin);
    if (frame.empty()) return false;
    if (sep == std::string_view::npos) break;
    begin = sep + 1;
  }
  out.stack = std::string(stack);
  out.count = count;
  return true;
}

bool Profiler::write_chrome_trace(const std::filesystem::path& path) const {
  const Snapshot snap = snapshot();
  std::unordered_map<std::uintptr_t, std::string> names;
  auto name_of = [&](std::uintptr_t pc) -> const std::string& {
    auto it = names.find(pc);
    if (it == names.end()) it = names.emplace(pc, symbolize(pc)).first;
    return it->second;
  };
  auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        out += ' ';
      } else {
        out += c;
      }
    }
    return out;
  };

  // stackFrames is a trie keyed by (parent, name); each sample references
  // its leaf frame id.
  std::map<std::pair<std::uint64_t, std::string>, std::uint64_t> frame_ids;
  std::string frames_json;
  std::string samples_json;
  std::string meta_json;
  bool first_sample = true;
  for (const LaneSnapshot& lane : snap.lanes) {
    if (!meta_json.empty()) meta_json += ',';
    meta_json += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(lane.lane + 1) +
                 ",\"name\":\"thread_name\",\"args\":{\"name\":\"profiler-lane-" +
                 std::to_string(lane.lane) + "\"}}";
    for (const Sample& sample : lane.samples) {
      std::uint64_t parent = 0;  // 0 = root sentinel (no "parent" key emitted)
      for (std::size_t i = sample.frames.size(); i-- > 0;) {
        const std::uintptr_t pc = i == 0 ? sample.frames[i] : sample.frames[i] - 1;
        const std::string& name = name_of(pc);
        auto [it, inserted] =
            frame_ids.emplace(std::make_pair(parent, name), frame_ids.size() + 1);
        if (inserted) {
          if (!frames_json.empty()) frames_json += ',';
          frames_json += "\"" + std::to_string(it->second) + "\":{\"name\":\"" +
                         escape(name) + "\"";
          if (parent != 0) frames_json += ",\"parent\":\"" + std::to_string(parent) + "\"";
          frames_json += "}";
        }
        parent = it->second;
      }
      if (parent == 0) continue;
      if (!first_sample) samples_json += ',';
      first_sample = false;
      samples_json += "{\"cpu\":0,\"tid\":" + std::to_string(lane.lane + 1) +
                      ",\"ts\":" + std::to_string(sample.mono_ns / 1000.0) +
                      ",\"name\":\"cpu_profile\",\"sf\":" + std::to_string(parent) +
                      ",\"weight\":1}";
    }
  }
  const std::string body = "{\"traceEvents\":[" + meta_json + "],\"stackFrames\":{" +
                           frames_json + "},\"samples\":[" + samples_json + "]}\n";
  write_file_atomic(path, body);  // throws on failure
  return true;
}

}  // namespace vehigan::telemetry
