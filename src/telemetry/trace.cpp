#include "telemetry/trace.hpp"

#include <cassert>
#include <vector>

namespace vehigan::telemetry {

namespace {

/// Open spans of this thread, outermost first. Entries are the string
/// literals passed to ScopedSpan, so the stack is pointer-sized and cheap.
std::vector<const char*>& span_stack() {
  thread_local std::vector<const char*> stack;
  return stack;
}

}  // namespace

ScopedSpan::ScopedSpan(Histogram& sink, const char* name) : sink_(nullptr) {
  if (!enabled()) return;
  sink_ = &sink;
  span_stack().push_back(name != nullptr ? name : "?");
  start_ = std::chrono::steady_clock::now();
#ifndef NDEBUG
  owner_ = std::this_thread::get_id();
#endif
}

ScopedSpan::ScopedSpan(ScopedSpan&& other) noexcept
    : sink_(other.sink_), start_(other.start_) {
#ifndef NDEBUG
  owner_ = other.owner_;
#endif
  other.sink_ = nullptr;
}

double ScopedSpan::stop() {
  if (sink_ == nullptr) return 0.0;
#ifndef NDEBUG
  assert(owner_ == std::this_thread::get_id() &&
         "ScopedSpan must be stopped on the thread that opened it");
#endif
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  sink_->observe(elapsed);
  sink_ = nullptr;
  span_stack().pop_back();
  return elapsed;
}

ScopedSpan::~ScopedSpan() { stop(); }

std::size_t ScopedSpan::depth() { return span_stack().size(); }

std::string ScopedSpan::path() {
  std::string out;
  for (const char* name : span_stack()) {
    if (!out.empty()) out += '/';
    out += name;
  }
  return out;
}

}  // namespace vehigan::telemetry
