#include "telemetry/chrome_trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <sstream>
#include <vector>

#include "telemetry/exporter.hpp"

namespace vehigan::telemetry {

namespace {

struct Event {
  const char* name;
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
  std::uint64_t trace_id;
  const char* arg_name;
  std::uint64_t arg_value;
};

struct ThreadBuffer {
  std::mutex mutex;  ///< uncontended except against export/clear
  std::vector<Event> events;
  std::string name;
  std::uint64_t tid = 0;
  std::uint64_t dropped = 0;
};

std::string hex_u64(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

/// Microseconds with nanosecond precision, the units Chrome expects for
/// ts/dur. Printed manually so output is locale-independent and exact.
std::string micros(std::uint64_t ns) {
  std::string out = std::to_string(ns / 1000);
  const std::uint64_t rem = ns % 1000;
  out += '.';
  out += static_cast<char>('0' + rem / 100);
  out += static_cast<char>('0' + (rem / 10) % 10);
  out += static_cast<char>('0' + rem % 10);
  return out;
}

void escape_json_into(std::ostringstream& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xF] << "0123456789abcdef"[c & 0xF];
    } else {
      out << c;
    }
  }
}

}  // namespace

struct TraceRecorder::Impl {
  std::atomic<bool> enabled{false};
  std::atomic<std::uint32_t> sample_every{64};
  std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();

  std::mutex registry_mutex;                ///< guards `buffers` growth
  std::deque<ThreadBuffer> buffers;         ///< stable addresses, never freed

  ThreadBuffer& buffer_for_this_thread() {
    thread_local ThreadBuffer* cached = nullptr;
    // A second TraceRecorder never exists (global() singleton), so the
    // thread-local cache cannot point into a different Impl.
    if (cached == nullptr) {
      std::lock_guard<std::mutex> lock(registry_mutex);
      buffers.emplace_back();
      buffers.back().tid = buffers.size() - 1;
      cached = &buffers.back();
    }
    return *cached;
  }
};

TraceRecorder::TraceRecorder() : impl_(new Impl) {}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::enable(std::uint32_t sample_every) {
  impl_->sample_every.store(sample_every == 0 ? 1 : sample_every, std::memory_order_relaxed);
  impl_->enabled.store(true, std::memory_order_release);
}

void TraceRecorder::disable() { impl_->enabled.store(false, std::memory_order_release); }

bool TraceRecorder::enabled() const { return impl_->enabled.load(std::memory_order_relaxed); }

std::uint32_t TraceRecorder::sample_every() const {
  return impl_->sample_every.load(std::memory_order_relaxed);
}

bool TraceRecorder::sampled(std::uint32_t station_id) const {
  return enabled() && sender_sampled(station_id, sample_every());
}

std::uint64_t TraceRecorder::now_ns() const {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - impl_->epoch)
                                        .count());
}

void TraceRecorder::set_thread_name(std::string name) {
  ThreadBuffer& buffer = impl_->buffer_for_this_thread();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.name = std::move(name);
}

void TraceRecorder::record_complete(const char* name, std::uint64_t start_ns,
                                    std::uint64_t dur_ns, std::uint64_t trace_id,
                                    const char* arg_name, std::uint64_t arg_value) {
  if (!enabled()) return;
  ThreadBuffer& buffer = impl_->buffer_for_this_thread();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  if (buffer.events.size() >= kMaxEventsPerThread) {
    ++buffer.dropped;
    return;
  }
  buffer.events.push_back(
      Event{name != nullptr ? name : "?", start_ns, dur_ns, trace_id, arg_name, arg_value});
}

std::string TraceRecorder::to_json() const {
  struct Flat {
    Event event;
    std::uint64_t tid;
  };
  std::vector<Flat> flat;
  std::vector<std::pair<std::uint64_t, std::string>> names;
  {
    std::lock_guard<std::mutex> registry(impl_->registry_mutex);
    for (ThreadBuffer& buffer : impl_->buffers) {
      std::lock_guard<std::mutex> lock(buffer.mutex);
      if (!buffer.name.empty()) names.emplace_back(buffer.tid, buffer.name);
      for (const Event& event : buffer.events) flat.push_back(Flat{event, buffer.tid});
    }
  }
  std::stable_sort(flat.begin(), flat.end(), [](const Flat& a, const Flat& b) {
    return a.event.start_ns < b.event.start_ns;
  });

  std::ostringstream out;
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const auto& [tid, name] : names) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"ph\": \"M\", \"pid\": 1, \"tid\": " << tid
        << ", \"name\": \"thread_name\", \"args\": {\"name\": \"";
    escape_json_into(out, name);
    out << "\"}}";
  }
  for (const Flat& f : flat) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"ph\": \"X\", \"pid\": 1, \"tid\": " << f.tid << ", \"name\": \"";
    escape_json_into(out, f.event.name);
    out << "\", \"ts\": " << micros(f.event.start_ns) << ", \"dur\": " << micros(f.event.dur_ns)
        << ", \"args\": {";
    bool first_arg = true;
    if (f.event.trace_id != 0) {
      out << "\"trace\": \"" << hex_u64(f.event.trace_id) << "\"";
      first_arg = false;
    }
    if (f.event.arg_name != nullptr) {
      if (!first_arg) out << ", ";
      out << "\"";
      escape_json_into(out, f.event.arg_name);
      out << "\": " << f.event.arg_value;
    }
    out << "}}";
  }
  out << "\n]}\n";
  return out.str();
}

void TraceRecorder::export_json(const std::filesystem::path& path) const {
  write_file_atomic(path, to_json());
}

std::size_t TraceRecorder::event_count() const {
  std::size_t total = 0;
  std::lock_guard<std::mutex> registry(impl_->registry_mutex);
  for (ThreadBuffer& buffer : impl_->buffers) {
    std::lock_guard<std::mutex> lock(buffer.mutex);
    total += buffer.events.size();
  }
  return total;
}

std::uint64_t TraceRecorder::dropped() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> registry(impl_->registry_mutex);
  for (ThreadBuffer& buffer : impl_->buffers) {
    std::lock_guard<std::mutex> lock(buffer.mutex);
    total += buffer.dropped;
  }
  return total;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> registry(impl_->registry_mutex);
  for (ThreadBuffer& buffer : impl_->buffers) {
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.events.clear();
    buffer.dropped = 0;
  }
}

}  // namespace vehigan::telemetry
