#include "telemetry/quality.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/metrics.hpp"

namespace vehigan::telemetry {

namespace {

/// Exact Mann-Whitney AUROC over (score, positive) pairs, 0.5 tie credit —
/// the same statistic metrics::auroc computes, restated over the warmup
/// buffer so the monitor has no dependency on the metrics library.
double exact_auroc(std::vector<std::pair<float, bool>>& obs) {
  std::uint64_t positives = 0;
  for (const auto& [score, positive] : obs) positives += positive ? 1 : 0;
  const std::uint64_t negatives = obs.size() - positives;
  if (positives == 0 || negatives == 0) return 0.5;
  std::sort(obs.begin(), obs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  double u = 0.0;
  std::uint64_t neg_below = 0;
  std::size_t i = 0;
  while (i < obs.size()) {
    std::size_t j = i;
    std::uint64_t group_pos = 0;
    std::uint64_t group_neg = 0;
    while (j < obs.size() && obs[j].first == obs[i].first) {
      (obs[j].second ? group_pos : group_neg) += 1;
      ++j;
    }
    u += static_cast<double>(group_pos) *
         (static_cast<double>(neg_below) + 0.5 * static_cast<double>(group_neg));
    neg_below += group_neg;
    i = j;
  }
  return u / (static_cast<double>(positives) * static_cast<double>(negatives));
}

struct QualityGauges {
  Gauge& auroc;
  Gauge& precision;
  Gauge& recall;
  Gauge& positives;
  Gauge& negatives;
  Gauge& flagged;

  static QualityGauges& get() {
    auto& reg = MetricsRegistry::global();
    static QualityGauges gauges{
        reg.gauge("vehigan_quality_auroc"),     reg.gauge("vehigan_quality_precision"),
        reg.gauge("vehigan_quality_recall"),    reg.gauge("vehigan_quality_positives"),
        reg.gauge("vehigan_quality_negatives"), reg.gauge("vehigan_quality_flagged"),
    };
    return gauges;
  }
};

}  // namespace

QualityMonitor::QualityMonitor(Options options) : options_(options) {
  if (options_.warmup == 0) options_.warmup = 1;
  warmup_.reserve(options_.warmup);
}

std::size_t QualityMonitor::bin_of(float score) const {
  const double s = static_cast<double>(score);
  if (!(s >= lo_)) return 0;  // below range, and NaN
  if (s >= hi_) return kBins + 1;
  const auto bin =
      static_cast<std::size_t>((s - lo_) / (hi_ - lo_) * static_cast<double>(kBins));
  return 1 + std::min(bin, kBins - 1);
}

void QualityMonitor::freeze_bins_locked() {
  float lo = warmup_.front().score;
  float hi = lo;
  for (const Obs& obs : warmup_) {
    lo = std::min(lo, obs.score);
    hi = std::max(hi, obs.score);
  }
  double margin = (static_cast<double>(hi) - static_cast<double>(lo)) * options_.margin_fraction;
  if (margin <= 0.0) margin = 1e-6;  // constant warmup scores still get a range
  lo_ = static_cast<double>(lo) - margin;
  hi_ = static_cast<double>(hi) + margin;
  for (const Obs& obs : warmup_) {
    (obs.positive ? pos_bins_ : neg_bins_)[bin_of(obs.score)].fetch_add(
        1, std::memory_order_relaxed);
  }
  warmup_.clear();
  warmup_.shrink_to_fit();
  binned_.store(true, std::memory_order_release);
}

void QualityMonitor::observe(float score, bool positive, bool flagged) {
  (positive ? positives_ : negatives_).fetch_add(1, std::memory_order_relaxed);
  if (flagged) {
    (positive ? flagged_positives_ : flagged_negatives_)
        .fetch_add(1, std::memory_order_relaxed);
  }
  if (!binned_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!binned_.load(std::memory_order_relaxed)) {
      warmup_.push_back(Obs{score, positive});
      if (warmup_.size() >= options_.warmup) freeze_bins_locked();
      return;
    }
    // Lost the freeze race: fall through to the binned path.
  }
  (positive ? pos_bins_ : neg_bins_)[bin_of(score)].fetch_add(1,
                                                              std::memory_order_relaxed);
}

QualityMonitor::Snapshot QualityMonitor::snapshot() const {
  Snapshot snap;
  snap.positives = positives_.load(std::memory_order_relaxed);
  snap.negatives = negatives_.load(std::memory_order_relaxed);
  snap.flagged_positives = flagged_positives_.load(std::memory_order_relaxed);
  snap.flagged_negatives = flagged_negatives_.load(std::memory_order_relaxed);
  const std::uint64_t flagged_total = snap.flagged_positives + snap.flagged_negatives;
  snap.precision = flagged_total == 0 ? 0.0
                                      : static_cast<double>(snap.flagged_positives) /
                                            static_cast<double>(flagged_total);
  snap.recall = snap.positives == 0 ? 0.0
                                    : static_cast<double>(snap.flagged_positives) /
                                          static_cast<double>(snap.positives);
  snap.binned = binned_.load(std::memory_order_acquire);
  if (!snap.binned) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<float, bool>> obs;
    obs.reserve(warmup_.size());
    for (const Obs& o : warmup_) obs.emplace_back(o.score, o.positive);
    snap.auroc = exact_auroc(obs);
    return snap;
  }
  // Histogram rank-sum: every score inside a bin ties with every other.
  double u = 0.0;
  std::uint64_t positives = 0;
  std::uint64_t negatives = 0;
  std::uint64_t neg_below = 0;
  for (std::size_t b = 0; b < kAllBins; ++b) {
    const std::uint64_t pos = pos_bins_[b].load(std::memory_order_relaxed);
    const std::uint64_t neg = neg_bins_[b].load(std::memory_order_relaxed);
    u += static_cast<double>(pos) *
         (static_cast<double>(neg_below) + 0.5 * static_cast<double>(neg));
    neg_below += neg;
    positives += pos;
    negatives += neg;
  }
  snap.auroc = (positives == 0 || negatives == 0)
                   ? 0.5
                   : u / (static_cast<double>(positives) * static_cast<double>(negatives));
  return snap;
}

void QualityMonitor::publish_metrics() const {
  const Snapshot snap = snapshot();
  QualityGauges& gauges = QualityGauges::get();
  gauges.auroc.set(snap.auroc);
  gauges.precision.set(snap.precision);
  gauges.recall.set(snap.recall);
  gauges.positives.set(static_cast<double>(snap.positives));
  gauges.negatives.set(static_cast<double>(snap.negatives));
  gauges.flagged.set(static_cast<double>(snap.flagged_positives + snap.flagged_negatives));
}

void QualityMonitor::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  binned_.store(false, std::memory_order_relaxed);
  warmup_.clear();
  warmup_.reserve(options_.warmup);
  lo_ = 0.0;
  hi_ = 1.0;
  for (auto& bin : pos_bins_) bin.store(0, std::memory_order_relaxed);
  for (auto& bin : neg_bins_) bin.store(0, std::memory_order_relaxed);
  positives_.store(0, std::memory_order_relaxed);
  negatives_.store(0, std::memory_order_relaxed);
  flagged_positives_.store(0, std::memory_order_relaxed);
  flagged_negatives_.store(0, std::memory_order_relaxed);
}

}  // namespace vehigan::telemetry
