#pragma once

#include <chrono>
#include <string>
#ifndef NDEBUG
#include <thread>
#endif

#include "telemetry/metrics.hpp"

namespace vehigan::telemetry {

/// RAII stage timer: construction stamps steady_clock, destruction records
/// the elapsed seconds into a latency histogram. Spans nest via a
/// thread-local stack, so the online pipeline's stage hierarchy
/// (ingest -> window_build -> score -> decide) is visible to tests and
/// debuggers through depth()/path(); stack unwinding during exception
/// propagation pops and records spans like any other exit.
///
/// Hot paths construct spans from a pre-resolved Histogram& (no registry
/// lookup, no allocation beyond the first push on a fresh thread). `name`
/// must outlive the span — pass a string literal.
///
/// The nesting stack is thread-local, so a span must be stopped (or
/// destroyed) on the thread that opened it; moving a live span to another
/// thread would pop a different thread's stack. Debug builds assert this
/// in stop(). depth()/path() read only the calling thread's stack and,
/// like the stack itself, are test/debug-only introspection — production
/// code must not branch on them.
class ScopedSpan {
 public:
  ScopedSpan(Histogram& sink, const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan(ScopedSpan&& other) noexcept;
  ScopedSpan& operator=(ScopedSpan&&) = delete;

  /// Ends the span early; records once and returns the elapsed seconds.
  /// Subsequent stop() calls and the destructor are no-ops.
  double stop();

  /// Nesting depth of the calling thread's open spans. Test/debug only.
  [[nodiscard]] static std::size_t depth();

  /// Slash-joined names of the calling thread's open spans, outermost
  /// first (e.g. "ingest/score"). Allocates — test/debug use only.
  [[nodiscard]] static std::string path();

 private:
  Histogram* sink_;  ///< nullptr when inactive (disabled or moved-from)
  std::chrono::steady_clock::time_point start_;
#ifndef NDEBUG
  std::thread::id owner_;  ///< thread whose stack holds this span's frame
#endif
};

/// Convenience factory bound to a registry for cold-path spans where a
/// per-call histogram lookup is acceptable:
///   Tracer tracer;  // global registry
///   auto span = tracer.span("vehigan_store_save_seconds");
class Tracer {
 public:
  explicit Tracer(MetricsRegistry& registry = MetricsRegistry::global())
      : registry_(&registry) {}

  [[nodiscard]] ScopedSpan span(const char* name) {
    return ScopedSpan(registry_->histogram(name), name);
  }

  [[nodiscard]] MetricsRegistry& registry() const { return *registry_; }

 private:
  MetricsRegistry* registry_;
};

}  // namespace vehigan::telemetry
