#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace vehigan::telemetry {

// ---------------------------------------------------------------- switch ---

namespace detail {
extern std::atomic<bool> g_enabled;

/// Stable per-thread shard index in [0, kCounterShards). Threads are dealt
/// shards round-robin on first use, so up to kCounterShards concurrent
/// threads never contend on the same cache line.
std::size_t shard_index();
}  // namespace detail

/// Process-wide telemetry kill switch. Instrumented call sites early-return
/// on a relaxed load when disabled; the overhead-guard test uses this to
/// measure the instrumented hot path against an uninstrumented baseline.
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }
inline void set_enabled(bool on) { detail::g_enabled.store(on, std::memory_order_relaxed); }

// ------------------------------------------------------------- primitives ---

/// Monotonically increasing counter. add() is wait-free: each thread lands
/// on its own cache-line-padded shard, so the 10 Hz ingest hot path never
/// bounces a line between cores. value() sums the shards (read side only).
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void add(std::uint64_t n = 1) {
    if (!enabled()) return;
    shards_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void increment() { add(1); }

  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kShards> shards_{};
};

/// Last-write-wins instantaneous value (queue depth, current loss, ...).
/// Stored as the bit pattern of the double so reads and writes are single
/// relaxed atomics; add() is a CAS loop (rare path).
class Gauge {
 public:
  void set(double v) {
    if (!enabled()) return;
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
  }

  void add(double delta) {
    if (!enabled()) return;
    std::uint64_t old = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(
        old, std::bit_cast<std::uint64_t>(std::bit_cast<double>(old) + delta),
        std::memory_order_relaxed)) {
    }
  }

  /// Raises the gauge to `v` iff it exceeds the current value — a lock-free
  /// high-water mark that many threads can fold into one gauge (per-shard
  /// queue peaks, batch-size peaks). Starts from 0 (or the last reset), so
  /// negative observations never lower it below the initial 0.
  void set_max(double v) {
    if (!enabled()) return;
    std::uint64_t old = bits_.load(std::memory_order_relaxed);
    while (std::bit_cast<double>(old) < v &&
           !bits_.compare_exchange_weak(old, std::bit_cast<std::uint64_t>(v),
                                        std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

  void reset() { bits_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> bits_{0};
};

/// Log-linear-bucket histogram sized for latencies in seconds: base-2
/// octaves from 2^-30 s (~1 ns) to 2^6 s (64 s), each split into 4 linear
/// sub-buckets (worst-case relative bucket width 25 %), plus an overflow
/// (+Inf) bucket. Non-positive and NaN observations land in bucket 0 so the
/// total count stays exact.
///
/// observe() is two relaxed atomic RMWs (bucket count + sharded sum), no
/// locks, no allocation — cheap enough for per-message call sites.
class Histogram {
 public:
  static constexpr int kMinExp = -30;           ///< first octave: [2^-30, 2^-29)
  static constexpr int kMaxExp = 6;             ///< overflow at >= 2^6 s
  static constexpr std::size_t kSubBuckets = 4; ///< linear splits per octave
  static constexpr std::size_t kFiniteBuckets =
      static_cast<std::size_t>(kMaxExp - kMinExp) * kSubBuckets;
  static constexpr std::size_t kBuckets = kFiniteBuckets + 1;  ///< + overflow

  /// Bucket that a value lands in: buckets are half-open [lower, upper), so
  /// an exact power of two starts its octave's first sub-bucket.
  static std::size_t bucket_index(double value);

  /// Exclusive upper bound of finite bucket i; +infinity for the overflow
  /// bucket (i == kFiniteBuckets).
  static double bucket_upper_bound(std::size_t i);

  /// Inclusive lower bound of bucket i (0 for bucket 0).
  static double bucket_lower_bound(std::size_t i) {
    return i == 0 ? 0.0 : bucket_upper_bound(i - 1);
  }

  void observe(double value) {
    if (!enabled()) return;
    counts_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    add_to_sum(value);
  }

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }

  void reset();

 private:
  void add_to_sum(double value) {
    std::atomic<std::uint64_t>& slot = sums_[detail::shard_index() % kSumShards].v;
    std::uint64_t old = slot.load(std::memory_order_relaxed);
    while (!slot.compare_exchange_weak(
        old, std::bit_cast<std::uint64_t>(std::bit_cast<double>(old) + value),
        std::memory_order_relaxed)) {
    }
  }

  static constexpr std::size_t kSumShards = 8;
  struct alignas(64) SumShard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::array<SumShard, kSumShards> sums_{};
};

// --------------------------------------------------------------- registry ---

/// Point-in-time copy of one histogram. `buckets` holds only buckets with a
/// nonzero count (individual, not cumulative), sorted by upper bound; the
/// exporters re-cumulate for the Prometheus exposition.
struct HistogramSnapshot {
  struct Bucket {
    double upper = 0.0;  ///< +infinity for the overflow bucket
    std::uint64_t count = 0;
  };
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  std::vector<Bucket> buckets;
};

/// Point-in-time copy of every registered metric, sorted by name within
/// each kind — the unit the exporters and the bench sidecars consume.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// Owns metrics by name. Lookup takes a mutex and is meant for cold paths
/// (construction, test setup); hot paths resolve a Counter&/Histogram& once
/// and keep the reference — references stay valid (and keep counting) for
/// the registry's lifetime, across reset().
///
/// Naming scheme (DESIGN.md): vehigan_<subsystem>_<name>, suffixed _total
/// for counters and _seconds for latency histograms.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry used by the instrumented library code.
  static MetricsRegistry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every metric in place. References handed out earlier remain
  /// valid. Test isolation only — Prometheus counters are cumulative.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace vehigan::telemetry
