#pragma once

#include <cstdint>

#include "util/hash.hpp"

namespace vehigan::telemetry {

/// Identity of one BSM's journey through the serving pipeline. The trace id
/// is a pure function of the message's origin (station id + transmission
/// timestamp), so every stage — producer submit, shard drain, ensemble
/// scoring, report emission — can recompute it locally instead of widening
/// `sim::Bsm` or the bounded queue's element type. Two stages that saw the
/// same message therefore stamp the same id without any plumbing between
/// them, and an offline consumer holding a `MisbehaviorReport` can rejoin it
/// to the trace timeline from the (suspect_id, time) pair alone.
///
/// Span ids distinguish the individual timed sections recorded under one
/// trace; they are allocated process-wide by the Chrome trace recorder and
/// carry no semantics beyond uniqueness.
struct TraceContext {
  std::uint64_t trace_id = 0;  ///< 0 = unsampled / absent
  std::uint64_t span_id = 0;

  [[nodiscard]] bool sampled() const { return trace_id != 0; }
};

/// Deterministic per-message trace id: FNV-1a over the station id and the
/// raw IEEE-754 bits of the transmission time. Remapping to 1 keeps 0 free
/// as the "no trace" sentinel (FNV-1a hits 0 only adversarially).
[[nodiscard]] inline std::uint64_t trace_id_of(std::uint32_t station_id, double time_s) {
  util::Fnv1a hash;
  hash.add_pod(station_id);
  hash.add_pod(time_s);
  const std::uint64_t value = hash.value();
  return value == 0 ? 1 : value;
}

/// Sender-level sampling: a station is traced iff the FNV-1a hash of its id
/// falls in the 1-in-`sample_every` bucket. Hash-based (not modulo on the
/// raw id) so dense id ranges from the simulator don't alias the sampling
/// pattern, and stable across shards/processes so every stage agrees on
/// which senders are traced without coordination.
[[nodiscard]] inline bool sender_sampled(std::uint32_t station_id, std::uint32_t sample_every) {
  if (sample_every <= 1) return true;
  util::Fnv1a hash;
  hash.add_pod(station_id);
  return hash.value() % sample_every == 0;
}

}  // namespace vehigan::telemetry
