#pragma once

#include <filesystem>
#include <string>

#include "telemetry/metrics.hpp"

namespace vehigan::telemetry {

/// Shortest decimal rendering of `v` that parses back to exactly the same
/// double (tries increasing precision until the round trip closes), so the
/// exposition is both byte-deterministic and lossless.
std::string format_double(double v);

/// Renders a snapshot in Prometheus text exposition format 0.0.4:
/// `# TYPE` comment per family, counters/gauges as single samples,
/// histograms as cumulative `_bucket{le="..."}` samples (only buckets that
/// received observations, plus the mandatory `+Inf`) with `_sum`/`_count`.
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// Renders a snapshot as structured JSON:
///   {"counters": {...}, "gauges": {...},
///    "histograms": {name: {"count": n, "sum": s,
///                          "buckets": [{"le": "...", "count": n}, ...]}}}
/// Bucket `le` bounds are strings so `+Inf` needs no special casing.
std::string to_json(const MetricsSnapshot& snapshot);

/// Flattens a snapshot to CSV rows (header `metric,kind,le,value`): one row
/// per counter/gauge, one per non-empty histogram bucket (kind `bucket`,
/// cumulative counts) plus `sum` and `count` rows — the bench sidecar
/// format, trivially loadable next to the bench's own CSV results.
std::string to_csv(const MetricsSnapshot& snapshot);

/// Writes `content` atomically (tmp + rename) so a scrape or a test never
/// reads a half-written snapshot file.
void write_file_atomic(const std::filesystem::path& path, const std::string& content);

}  // namespace vehigan::telemetry
