#include "telemetry/exporter.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace vehigan::telemetry {

namespace {

std::string le_label(double upper) {
  return std::isinf(upper) ? "+Inf" : format_double(upper);
}

/// Escapes a metric name for use as a JSON key. Names follow the
/// [a-zA-Z0-9_:] Prometheus charset so this is a formality.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string format_double(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    out << "# TYPE " << name << " counter\n";
    out << name << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out << "# TYPE " << name << " gauge\n";
    out << name << ' ' << format_double(value) << '\n';
  }
  for (const HistogramSnapshot& hist : snapshot.histograms) {
    out << "# TYPE " << hist.name << " histogram\n";
    std::uint64_t cumulative = 0;
    bool has_inf = false;
    for (const auto& bucket : hist.buckets) {
      cumulative += bucket.count;
      has_inf = has_inf || std::isinf(bucket.upper);
      out << hist.name << "_bucket{le=\"" << le_label(bucket.upper) << "\"} " << cumulative
          << '\n';
    }
    if (!has_inf) out << hist.name << "_bucket{le=\"+Inf\"} " << cumulative << '\n';
    out << hist.name << "_sum " << format_double(hist.sum) << '\n';
    out << hist.name << "_count " << hist.count << '\n';
  }
  return std::move(out).str();
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(snapshot.counters[i].first)
        << "\": " << snapshot.counters[i].second;
  }
  out << (snapshot.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(snapshot.gauges[i].first)
        << "\": " << format_double(snapshot.gauges[i].second);
  }
  out << (snapshot.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSnapshot& hist = snapshot.histograms[i];
    out << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(hist.name) << "\": {\"count\": "
        << hist.count << ", \"sum\": " << format_double(hist.sum) << ", \"buckets\": [";
    for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
      out << (b == 0 ? "" : ", ") << "{\"le\": \"" << le_label(hist.buckets[b].upper)
          << "\", \"count\": " << hist.buckets[b].count << '}';
    }
    out << "]}";
  }
  out << (snapshot.histograms.empty() ? "" : "\n  ") << "}\n}\n";
  return std::move(out).str();
}

std::string to_csv(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "metric,kind,le,value\n";
  for (const auto& [name, value] : snapshot.counters) {
    out << name << ",counter,," << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out << name << ",gauge,," << format_double(value) << '\n';
  }
  for (const HistogramSnapshot& hist : snapshot.histograms) {
    std::uint64_t cumulative = 0;
    for (const auto& bucket : hist.buckets) {
      cumulative += bucket.count;
      out << hist.name << ",bucket," << le_label(bucket.upper) << ',' << cumulative << '\n';
    }
    out << hist.name << ",sum,," << format_double(hist.sum) << '\n';
    out << hist.name << ",count,," << hist.count << '\n';
  }
  return std::move(out).str();
}

void write_file_atomic(const std::filesystem::path& path, const std::string& content) {
  if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path());
  std::filesystem::path tmp = path;
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << content;
    if (!out) throw std::runtime_error("telemetry: failed to write " + tmp.string());
  }
  std::filesystem::rename(tmp, path);
}

}  // namespace vehigan::telemetry
