#include "telemetry/drift.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vehigan::telemetry {

P2Quantile::P2Quantile(double q) : q_(q) {
  if (!(q > 0.0 && q < 1.0)) {
    throw std::invalid_argument("P2Quantile: q must lie strictly inside (0, 1)");
  }
}

void P2Quantile::observe(double x) {
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      positions_ = {1, 2, 3, 4, 5};
      desired_ = {1, 1 + 2 * q_, 1 + 4 * q_, 3 + 2 * q_, 5};
      rates_ = {0, q_ / 2, q_, (1 + q_) / 2, 1};
    }
    return;
  }

  // Locate the cell k with heights_[k] <= x < heights_[k + 1], widening the
  // extreme markers when x falls outside the current range.
  std::size_t k = 0;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (std::size_t i = k + 1; i < 5; ++i) positions_[i] += 1;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += rates_[i];
  ++count_;

  // Nudge the three interior markers toward their desired positions, with
  // piecewise-parabolic (P^2) height prediction and a linear fallback when
  // the parabola would leave the bracketing heights.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double gap = desired_[i] - positions_[i];
    const bool move_right = gap >= 1 && positions_[i + 1] - positions_[i] > 1;
    const bool move_left = gap <= -1 && positions_[i - 1] - positions_[i] < -1;
    if (!move_right && !move_left) continue;
    const double d = move_right ? 1.0 : -1.0;

    const double parabolic =
        heights_[i] +
        d / (positions_[i + 1] - positions_[i - 1]) *
            ((positions_[i] - positions_[i - 1] + d) * (heights_[i + 1] - heights_[i]) /
                 (positions_[i + 1] - positions_[i]) +
             (positions_[i + 1] - positions_[i] - d) * (heights_[i] - heights_[i - 1]) /
                 (positions_[i] - positions_[i - 1]));
    if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
      heights_[i] = parabolic;
    } else {
      const std::size_t j = d > 0 ? i + 1 : i - 1;
      heights_[i] += d * (heights_[j] - heights_[i]) / (positions_[j] - positions_[i]);
    }
    positions_[i] += d;
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(count_));
    const double rank = q_ * static_cast<double>(count_);
    std::size_t index = rank <= 1.0 ? 0 : static_cast<std::size_t>(std::ceil(rank)) - 1;
    index = std::min(index, static_cast<std::size_t>(count_ - 1));
    return sorted[index];
  }
  return heights_[2];
}

void P2Quantile::reset() {
  heights_ = {};
  positions_ = {};
  desired_ = {};
  rates_ = {};
  count_ = 0;
}

EwmaDriftDetector::EwmaDriftDetector(DriftConfig config) : config_(config) {
  config_.warmup = std::max<std::size_t>(config_.warmup, 2);
  if (!(config_.alpha > 0.0 && config_.alpha <= 1.0)) {
    throw std::invalid_argument("EwmaDriftDetector: alpha must lie in (0, 1]");
  }
}

double EwmaDriftDetector::baseline_sigma() const { return baseline_sigma_; }

bool EwmaDriftDetector::observe(double x) {
  ++count_;
  if (count_ <= config_.warmup) {
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    ewma_ = mean_;
    if (count_ == config_.warmup) {
      baseline_mean_ = mean_;
      baseline_sigma_ = std::sqrt(m2_ / static_cast<double>(count_ - 1));
      baseline_sigma_ = std::max(baseline_sigma_, config_.min_sigma);
    }
    return false;
  }

  ewma_ = (1.0 - config_.alpha) * ewma_ + config_.alpha * x;
  const double sigma_ewma =
      baseline_sigma_ * std::sqrt(config_.alpha / (2.0 - config_.alpha));
  if (std::abs(ewma_ - baseline_mean_) <= config_.z_threshold * sigma_ewma) return false;
  if (last_alarm_at_ != 0 && count_ - last_alarm_at_ < config_.min_gap) return false;
  ++alarms_;
  last_alarm_at_ = count_;
  return true;
}

void EwmaDriftDetector::reset() {
  count_ = 0;
  alarms_ = 0;
  last_alarm_at_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
  baseline_mean_ = 0.0;
  baseline_sigma_ = 0.0;
  ewma_ = 0.0;
}

ScoreDriftMonitor::ScoreDriftMonitor(DriftConfig config) : score_(config), flag_rate_(config) {}

bool ScoreDriftMonitor::observe(double score, bool flagged) {
  ++observations_;
  p50_.observe(score);
  p95_.observe(score);
  p99_.observe(score);
  const bool score_alarm = score_.observe(score);
  const bool flag_alarm = flag_rate_.observe(flagged ? 1.0 : 0.0);
  return score_alarm || flag_alarm;
}

ScoreDriftMonitor::Stats ScoreDriftMonitor::stats() const {
  Stats stats;
  stats.p50 = p50_.value();
  stats.p95 = p95_.value();
  stats.p99 = p99_.value();
  stats.score_ewma = score_.ewma();
  stats.flag_rate_ewma = flag_rate_.ewma();
  stats.observations = observations_;
  stats.score_alarms = score_.alarms();
  stats.flag_rate_alarms = flag_rate_.alarms();
  stats.warmed = score_.warmed();
  return stats;
}

void ScoreDriftMonitor::reset() {
  p50_.reset();
  p95_.reset();
  p99_.reset();
  score_.reset();
  flag_rate_.reset();
  observations_ = 0;
}

}  // namespace vehigan::telemetry
