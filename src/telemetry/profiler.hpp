#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

namespace vehigan::telemetry {

/// Always-available in-process sampling CPU profiler.
///
/// Each registered thread gets a POSIX per-thread CPU-time timer
/// (timer_create(CLOCK_THREAD_CPUTIME_ID) delivering SIGPROF to that thread
/// only), so sampling cost is proportional to CPU actually burned — idle
/// threads cost nothing. The signal handler walks the frame-pointer chain
/// from the interrupted context (the build compiles with
/// -fno-omit-frame-pointer for exactly this) and appends the raw PC stack
/// into the calling thread's fixed seqlock ring — the same single-writer
/// slot protocol as the flight recorder, so dump()/snapshot() readers never
/// stop the handler and torn slots are skipped, never misread.
///
/// Signal-safety contract (DESIGN.md Sec. 7): the handler touches only its
/// own thread's ring (thread_local pointer, plain and atomic stores), reads
/// CLOCK_MONOTONIC, saves/restores errno, and never allocates, locks, or
/// symbolizes. Everything expensive — dladdr symbolization, demangling,
/// aggregation into collapsed stacks — happens offline at dump time on a
/// normal thread.
///
/// Accounting is exact: every SIGPROF tick that lands in a ring advances
/// that lane's head, so dropped-by-overwrite = head - readable; samples shed
/// because the lane table was full, and slots torn mid-read, are counted
/// separately. total == kept + overwritten + torn + lane_overflow always
/// holds for a quiescent profiler.
///
/// Threads opt in via attach_current_thread() (shard workers, the report
/// collector, and thread-pool workers do; start() attaches the caller).
/// Lanes are recycled through a free list when threads exit, so services
/// that churn worker threads (bench sweeps) don't exhaust the fixed table.
class Profiler {
 public:
  static constexpr std::size_t kMaxFrames = 32;    ///< frames kept per sample
  static constexpr std::size_t kRingCapacity = 4096;  ///< samples per lane
  static constexpr std::size_t kMaxLanes = 64;     ///< concurrent profiled threads
  static constexpr std::uint32_t kDefaultHz = 99;  ///< default sampling rate

  static Profiler& global();

  /// Registers the calling thread for sampling (idempotent per thread).
  /// Captures the thread's stack bounds — pthread introspection is not
  /// signal-safe, so it must happen here, not in the handler — and arms a
  /// per-thread timer if the profiler is running. Safe to call
  /// unconditionally from worker loops; costs one thread_local check when
  /// already attached.
  static void attach_current_thread();

  /// Starts sampling every attached thread (and attaches the caller) at
  /// `hz`. Returns false (and changes nothing) if already running, hz == 0,
  /// or the platform has no per-thread CPU timers.
  bool start(std::uint32_t hz = kDefaultHz);

  /// Disarms and deletes every timer. Samples already in the rings stay
  /// readable. Idempotent.
  void stop();

  [[nodiscard]] bool running() const;
  [[nodiscard]] std::uint32_t hz() const;

  /// One decoded sample: program counters leaf-first (frames[0] is the
  /// interrupted PC, frames.back() the outermost caller).
  struct Sample {
    std::uint64_t mono_ns = 0;  ///< steady-clock ns since profiler epoch
    std::vector<std::uintptr_t> frames;
  };

  struct LaneSnapshot {
    std::size_t lane = 0;
    std::vector<Sample> samples;  ///< oldest first
  };

  /// Exact sample accounting; see class comment. Totals are consistent for
  /// a stopped profiler (concurrent sampling can advance heads mid-read).
  struct Accounting {
    std::uint64_t total = 0;          ///< ticks that reached a ring + lane overflow
    std::uint64_t kept = 0;           ///< samples readable in the rings
    std::uint64_t overwritten = 0;    ///< lost to ring wraparound
    std::uint64_t torn = 0;           ///< skipped mid-write during this read
    std::uint64_t lane_overflow = 0;  ///< ticks shed: > kMaxLanes threads
    std::uint64_t truncated = 0;      ///< kept samples cut at kMaxFrames
  };

  struct Snapshot {
    std::vector<LaneSnapshot> lanes;
    Accounting accounting;
  };

  /// Consistent view of every lane. Allocates — not for signal handlers.
  [[nodiscard]] Snapshot snapshot() const;
  [[nodiscard]] Accounting accounting() const;

  /// Best-effort symbol for a PC: demangled function name via dladdr, else
  /// "module+0xoff", else "0xaddr". Allocates; offline use only.
  [[nodiscard]] static std::string symbolize(std::uintptr_t pc);

  /// One aggregated stack in flamegraph "folded" form: frames root-first
  /// joined by ';' (demangled names may contain spaces — flamegraph tools
  /// split the count off the *last* space, and so does our parser).
  struct CollapsedStack {
    std::string stack;
    std::uint64_t count = 0;
  };

  /// Aggregates + symbolizes every readable sample, sorted by count
  /// descending. Caller frames are symbolized at pc-1 (the return address
  /// points past the call site).
  [[nodiscard]] std::vector<CollapsedStack> collapsed() const;

  /// Writes collapsed stacks ("stack count\n" per line, nothing else — the
  /// file feeds flamegraph.pl / speedscope directly). Atomic via tmp+rename.
  bool write_collapsed(const std::filesystem::path& path) const;

  /// Writes a Chrome trace with "stackFrames" + "samples" (the sampling
  /// profiler format Perfetto and chrome://tracing render as a CPU profile
  /// track per lane).
  bool write_chrome_trace(const std::filesystem::path& path) const;

  /// Parses one collapsed-stack line into (stack, count); false if the line
  /// is not well-formed. The inverse of write_collapsed's formatting, used
  /// by tests and by offline tooling that re-aggregates sidecars.
  static bool parse_collapsed_line(std::string_view line, CollapsedStack& out);

  /// Test-only seam: records a fabricated sample (frames leaf-first)
  /// through the same ring path as the signal handler, attaching the
  /// calling thread if needed. Lets tests exercise wraparound accounting
  /// without burning minutes of CPU.
  void record_synthetic(std::span<const std::uintptr_t> frames);

  /// Drops every recorded sample and zeroes the accounting (lanes stay
  /// attached). Callers must ensure sampling is stopped. Test isolation.
  void clear();

  /// Public only so the file-local signal handler and timer helpers in
  /// profiler.cpp can name it; not part of the API.
  struct Impl;

 private:
  Profiler();
  Impl* impl_;  ///< never freed: the handler may fire during shutdown
};

}  // namespace vehigan::telemetry
