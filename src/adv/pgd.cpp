#include "adv/pgd.hpp"

#include <algorithm>
#include <stdexcept>

namespace vehigan::adv {

namespace {

/// One projected step for an arbitrary gradient provider.
template <typename GradientFn>
std::vector<float> pgd_iterate(std::span<const float> snapshot, const PgdOptions& options,
                               AttackGoal goal, GradientFn&& gradient_of) {
  const float direction = goal == AttackGoal::kFalsePositive ? 1.0F : -1.0F;
  std::vector<float> current(snapshot.begin(), snapshot.end());
  for (int it = 0; it < options.iterations; ++it) {
    const std::vector<float> gradient = gradient_of(current);
    for (std::size_t i = 0; i < current.size(); ++i) {
      if (gradient[i] > 0.0F) current[i] += direction * options.step_size;
      else if (gradient[i] < 0.0F) current[i] -= direction * options.step_size;
      // Project back into the eps-ball around the original value.
      current[i] = std::clamp(current[i], snapshot[i] - options.eps, snapshot[i] + options.eps);
    }
  }
  return current;
}

}  // namespace

std::vector<float> pgd_perturb(mbds::WganDetector& model, std::span<const float> snapshot,
                               const PgdOptions& options, AttackGoal goal) {
  return pgd_iterate(snapshot, options, goal, [&](const std::vector<float>& x) {
    return model.score_gradient(x);
  });
}

std::vector<float> pgd_perturb_multi(
    const std::vector<std::shared_ptr<mbds::WganDetector>>& models,
    std::span<const float> snapshot, const PgdOptions& options, AttackGoal goal) {
  if (models.empty()) throw std::invalid_argument("pgd_perturb_multi: no models");
  return pgd_iterate(snapshot, options, goal, [&](const std::vector<float>& x) {
    std::vector<float> mean(x.size(), 0.0F);
    for (const auto& model : models) {
      const std::vector<float> g = model->score_gradient(x);
      for (std::size_t i = 0; i < g.size(); ++i) mean[i] += g[i];
    }
    const float inv = 1.0F / static_cast<float>(models.size());
    for (auto& g : mean) g *= inv;
    return mean;
  });
}

namespace {

template <typename PerturbFn>
features::WindowSet craft_set(const features::WindowSet& windows, PerturbFn&& perturb) {
  features::WindowSet out;
  out.window = windows.window;
  out.width = windows.width;
  out.vehicle_ids = windows.vehicle_ids;
  out.data.reserve(windows.data.size());
  for (std::size_t i = 0; i < windows.count(); ++i) {
    const std::vector<float> adv = perturb(windows.snapshot(i));
    out.data.insert(out.data.end(), adv.begin(), adv.end());
  }
  return out;
}

}  // namespace

features::WindowSet craft_pgd(mbds::WganDetector& source, const features::WindowSet& windows,
                              const PgdOptions& options, AttackGoal goal) {
  return craft_set(windows, [&](std::span<const float> snap) {
    return pgd_perturb(source, snap, options, goal);
  });
}

features::WindowSet craft_pgd_multi(
    const std::vector<std::shared_ptr<mbds::WganDetector>>& sources,
    const features::WindowSet& windows, const PgdOptions& options, AttackGoal goal) {
  return craft_set(windows, [&](std::span<const float> snap) {
    return pgd_perturb_multi(sources, snap, options, goal);
  });
}

}  // namespace vehigan::adv
