#include "adv/robustness.hpp"

namespace vehigan::adv {

double flag_rate(mbds::WganDetector& detector, const features::WindowSet& windows) {
  if (windows.count() == 0) return 0.0;
  std::size_t flagged = 0;
  for (std::size_t i = 0; i < windows.count(); ++i) {
    if (detector.flags(windows.snapshot(i))) ++flagged;
  }
  return static_cast<double>(flagged) / static_cast<double>(windows.count());
}

double miss_rate(mbds::WganDetector& detector, const features::WindowSet& windows) {
  if (windows.count() == 0) return 0.0;
  return 1.0 - flag_rate(detector, windows);
}

double ensemble_flag_rate(mbds::VehiGan& ensemble, const features::WindowSet& windows) {
  if (windows.count() == 0) return 0.0;
  std::size_t flagged = 0;
  for (std::size_t i = 0; i < windows.count(); ++i) {
    if (ensemble.evaluate(windows.snapshot(i)).flagged) ++flagged;
  }
  return static_cast<double>(flagged) / static_cast<double>(windows.count());
}

}  // namespace vehigan::adv
