#pragma once

#include "adv/fgsm.hpp"
#include "mbds/ensemble.hpp"

namespace vehigan::adv {

/// Rate helpers for the robustness evaluations of Sec. V-B.

/// Fraction of windows a single detector flags at its threshold. Applied to
/// adversarial *benign* windows this is the FPR (Fig. 5a/5c); applied to
/// untouched benign windows it is the clean FPR.
double flag_rate(mbds::WganDetector& detector, const features::WindowSet& windows);

/// Fraction of windows a single detector *misses* (score <= threshold).
/// Applied to adversarial attack windows this is the FNR (Fig. 5b).
double miss_rate(mbds::WganDetector& detector, const features::WindowSet& windows);

/// Fraction of windows the ensemble flags with fresh random-k draws
/// (Fig. 7 FPR measurement).
double ensemble_flag_rate(mbds::VehiGan& ensemble, const features::WindowSet& windows);

}  // namespace vehigan::adv
