#pragma once

#include "adv/fgsm.hpp"

namespace vehigan::adv {

/// Projected Gradient Descent (Madry et al.) — the iterated, stronger
/// extension of the paper's FGSM attacker (Sec. III-G considers FGSM; PGD is
/// the natural "more computationally capable adversary" follow-up and is
/// included here as an extension experiment).
///
/// Each step moves `step_size` along the score-gradient sign and re-projects
/// into the L-infinity ball of radius eps around the original input, so the
/// final perturbation obeys the same budget as FGSM at the same eps.
struct PgdOptions {
  float eps = 0.05F;        ///< L_inf budget (scaled units)
  float step_size = 0.01F;  ///< per-iteration step
  int iterations = 10;
};

/// Single-model PGD.
std::vector<float> pgd_perturb(mbds::WganDetector& model, std::span<const float> snapshot,
                               const PgdOptions& options, AttackGoal goal);

/// Multi-model PGD following the mean ensemble-score gradient each step.
std::vector<float> pgd_perturb_multi(
    const std::vector<std::shared_ptr<mbds::WganDetector>>& models,
    std::span<const float> snapshot, const PgdOptions& options, AttackGoal goal);

/// Applies single-model PGD to a whole window set.
features::WindowSet craft_pgd(mbds::WganDetector& source, const features::WindowSet& windows,
                              const PgdOptions& options, AttackGoal goal);

/// Applies multi-model PGD to a whole window set.
features::WindowSet craft_pgd_multi(
    const std::vector<std::shared_ptr<mbds::WganDetector>>& sources,
    const features::WindowSet& windows, const PgdOptions& options, AttackGoal goal);

}  // namespace vehigan::adv
