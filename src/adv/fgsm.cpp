#include "adv/fgsm.hpp"

#include <stdexcept>

namespace vehigan::adv {

namespace {

float direction_of(AttackGoal goal) {
  // AFP climbs the anomaly score; AFN descends it.
  return goal == AttackGoal::kFalsePositive ? 1.0F : -1.0F;
}

std::vector<float> apply_signed(std::span<const float> snapshot,
                                std::span<const float> gradient, float eps, float direction) {
  std::vector<float> adv(snapshot.begin(), snapshot.end());
  for (std::size_t i = 0; i < adv.size(); ++i) {
    const float g = gradient[i];
    if (g > 0.0F) adv[i] += direction * eps;
    else if (g < 0.0F) adv[i] -= direction * eps;
    // g == 0: FGSM leaves the coordinate untouched (sign(0) = 0).
  }
  return adv;
}

}  // namespace

std::vector<float> fgsm_perturb(mbds::WganDetector& model, std::span<const float> snapshot,
                                float eps, AttackGoal goal) {
  const std::vector<float> gradient = model.score_gradient(snapshot);
  return apply_signed(snapshot, gradient, eps, direction_of(goal));
}

std::vector<float> fgsm_perturb_multi(
    const std::vector<std::shared_ptr<mbds::WganDetector>>& models,
    std::span<const float> snapshot, float eps, AttackGoal goal) {
  if (models.empty()) throw std::invalid_argument("fgsm_perturb_multi: no models");
  std::vector<float> mean_gradient(snapshot.size(), 0.0F);
  for (const auto& model : models) {
    const std::vector<float> g = model->score_gradient(snapshot);
    for (std::size_t i = 0; i < g.size(); ++i) mean_gradient[i] += g[i];
  }
  const float inv = 1.0F / static_cast<float>(models.size());
  for (auto& g : mean_gradient) g *= inv;
  return apply_signed(snapshot, mean_gradient, eps, direction_of(goal));
}

std::vector<float> random_sign_noise(std::span<const float> snapshot, float eps,
                                     util::Rng& rng) {
  std::vector<float> noisy(snapshot.begin(), snapshot.end());
  for (auto& v : noisy) v += rng.bernoulli(0.5) ? eps : -eps;
  return noisy;
}

namespace {

template <typename PerturbFn>
features::WindowSet craft(const features::WindowSet& windows, PerturbFn&& perturb) {
  features::WindowSet out;
  out.window = windows.window;
  out.width = windows.width;
  out.data.reserve(windows.data.size());
  out.vehicle_ids = windows.vehicle_ids;
  for (std::size_t i = 0; i < windows.count(); ++i) {
    const std::vector<float> adv = perturb(windows.snapshot(i));
    out.data.insert(out.data.end(), adv.begin(), adv.end());
  }
  return out;
}

}  // namespace

features::WindowSet craft_adversarial(mbds::WganDetector& source,
                                      const features::WindowSet& windows, float eps,
                                      AttackGoal goal) {
  return craft(windows, [&](std::span<const float> snap) {
    return fgsm_perturb(source, snap, eps, goal);
  });
}

features::WindowSet craft_adversarial_multi(
    const std::vector<std::shared_ptr<mbds::WganDetector>>& sources,
    const features::WindowSet& windows, float eps, AttackGoal goal) {
  return craft(windows, [&](std::span<const float> snap) {
    return fgsm_perturb_multi(sources, snap, eps, goal);
  });
}

features::WindowSet craft_noise(const features::WindowSet& windows, float eps, util::Rng& rng) {
  return craft(windows, [&](std::span<const float> snap) {
    return random_sign_noise(snap, eps, rng);
  });
}

}  // namespace vehigan::adv
