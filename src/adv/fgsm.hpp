#pragma once

#include <memory>

#include "features/windows.hpp"
#include "mbds/wgan_detector.hpp"
#include "util/rng.hpp"

namespace vehigan::adv {

/// Which error the adaptive attacker is buying (Sec. III-G).
enum class AttackGoal {
  kFalsePositive,  ///< AFP: push benign windows over the threshold (Eq. 6)
  kFalseNegative,  ///< AFN: pull misbehavior windows under it (Eq. 7)
};

/// Single-model FGSM on the anomaly score s(x) = -D(x):
///   AFP: x + eps * sign(grad_x s(x))   (= x - eps * sign(grad_x D))
///   AFN: x - eps * sign(grad_x s(x))   (= x + eps * sign(grad_x D))
/// eps is expressed in scaled units (1 % of a sensor's benign dynamic range
/// per 0.01), matching the paper's epsilon range [0, 0.02].
std::vector<float> fgsm_perturb(mbds::WganDetector& model, std::span<const float> snapshot,
                                float eps, AttackGoal goal);

/// Multi-model FGSM used by the white-box adaptive attacker of Fig. 7b: the
/// perturbation follows the sign of the *ensemble* score gradient, i.e. the
/// mean of all member score gradients.
std::vector<float> fgsm_perturb_multi(
    const std::vector<std::shared_ptr<mbds::WganDetector>>& models,
    std::span<const float> snapshot, float eps, AttackGoal goal);

/// Magnitude-matched random baseline (Sec. V-B): each value moves by
/// +-eps with a random sign — the same L_inf budget as FGSM but without the
/// gradient information.
std::vector<float> random_sign_noise(std::span<const float> snapshot, float eps, util::Rng& rng);

/// Applies fgsm_perturb to every window of a set (the attack source models
/// see exactly the windows the defender will score).
features::WindowSet craft_adversarial(mbds::WganDetector& source,
                                      const features::WindowSet& windows, float eps,
                                      AttackGoal goal);

/// Multi-model variant over a whole window set.
features::WindowSet craft_adversarial_multi(
    const std::vector<std::shared_ptr<mbds::WganDetector>>& sources,
    const features::WindowSet& windows, float eps, AttackGoal goal);

/// Random-noise variant over a whole window set.
features::WindowSet craft_noise(const features::WindowSet& windows, float eps, util::Rng& rng);

}  // namespace vehigan::adv
