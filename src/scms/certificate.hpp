#pragma once

#include <cstdint>
#include <string>

namespace vehigan::scms {

/// A short-term pseudonym certificate (Sec. I/II of the paper: the SCMS
/// delivers digital certificates that serve as signing identities for BSMs;
/// pseudonyms rotate to preserve privacy).
struct PseudonymCertificate {
  std::uint64_t cert_id = 0;       ///< serial; what the CRL revokes
  std::uint32_t pseudonym = 0;     ///< the vehicle_id broadcast in BSMs
  std::uint64_t holder_public = 0; ///< verification key of the holder
  double valid_from = 0.0;         ///< [s] simulation time
  double valid_until = 0.0;        ///< [s]
  std::uint64_t ca_signature = 0;  ///< CA tag over the fields above

  /// Canonical byte string the CA signs.
  [[nodiscard]] std::string payload() const {
    std::string bytes;
    auto append = [&bytes](const void* p, std::size_t n) {
      bytes.append(static_cast<const char*>(p), n);
    };
    append(&cert_id, sizeof(cert_id));
    append(&pseudonym, sizeof(pseudonym));
    append(&holder_public, sizeof(holder_public));
    append(&valid_from, sizeof(valid_from));
    append(&valid_until, sizeof(valid_until));
    return bytes;
  }
};

}  // namespace vehigan::scms
