#include "scms/pseudonym.hpp"

#include <cmath>

namespace vehigan::scms {

std::uint32_t PseudonymRotation::fresh_pseudonym(
    std::map<std::uint32_t, std::uint32_t>& ownership, std::uint32_t owner) {
  for (;;) {
    // High range keeps rotated pseudonyms disjoint from original fleet ids.
    const auto candidate =
        static_cast<std::uint32_t>(rng_.uniform_int(1'000'000, 4'000'000'000LL));
    if (!ownership.contains(candidate)) {
      ownership[candidate] = owner;
      return candidate;
    }
  }
}

sim::BsmDataset PseudonymRotation::apply(const sim::BsmDataset& dataset,
                                         std::map<std::uint32_t, std::uint32_t>& ownership) {
  sim::BsmDataset out;
  for (const auto& trace : dataset.traces) {
    if (trace.messages.empty()) continue;
    long current_epoch = -1;
    sim::VehicleTrace* current = nullptr;
    for (const auto& message : trace.messages) {
      const long epoch =
          period_s_ <= 0.0 ? 0 : static_cast<long>(std::floor(message.time / period_s_));
      if (epoch != current_epoch || current == nullptr) {
        current_epoch = epoch;
        out.traces.emplace_back();
        current = &out.traces.back();
        current->vehicle_id = fresh_pseudonym(ownership, trace.vehicle_id);
      }
      sim::Bsm renamed = message;
      renamed.vehicle_id = current->vehicle_id;
      current->messages.push_back(renamed);
    }
  }
  return out;
}

}  // namespace vehigan::scms
