#include "scms/authority.hpp"

#include <stdexcept>

namespace vehigan::scms {

CredentialAuthority::CredentialAuthority(std::uint64_t ca_secret)
    : ca_keys_(make_key_pair(ca_secret)) {}

std::uint64_t CredentialAuthority::enroll(std::uint32_t vehicle_id, util::Rng& rng) {
  const auto secret =
      static_cast<std::uint64_t>(rng.uniform_int(1, std::numeric_limits<std::int64_t>::max()));
  enrolled_[vehicle_id] = make_key_pair(secret);
  return secret;
}

PseudonymCertificate CredentialAuthority::issue(std::uint32_t vehicle_id,
                                                std::uint32_t pseudonym, double valid_from,
                                                double valid_until) {
  const auto it = enrolled_.find(vehicle_id);
  if (it == enrolled_.end()) {
    throw std::out_of_range("CredentialAuthority::issue: vehicle not enrolled");
  }
  PseudonymCertificate cert;
  cert.cert_id = next_cert_id_++;
  cert.pseudonym = pseudonym;
  cert.holder_public = it->second.public_id;
  cert.valid_from = valid_from;
  cert.valid_until = valid_until;
  cert.ca_signature = sign_with_cert(ca_keys_.secret, cert.payload());
  issued_[pseudonym].push_back(cert.cert_id);
  return cert;
}

VerifyResult CredentialAuthority::verify(const SignedBsm& message, double now) const {
  const PseudonymCertificate& cert = message.certificate;
  if (!verify_with_cert(ca_keys_.public_id, cert.payload(), cert.ca_signature)) {
    return VerifyResult::kBadCaSignature;
  }
  if (crl_.contains(cert.cert_id)) return VerifyResult::kRevoked;
  if (now < cert.valid_from || now > cert.valid_until) return VerifyResult::kExpired;
  if (message.payload.vehicle_id != cert.pseudonym) return VerifyResult::kPseudonymMismatch;
  if (!verify_with_cert(cert.holder_public, bsm_payload_bytes(message.payload),
                        message.signature)) {
    return VerifyResult::kBadMessageSignature;
  }
  return VerifyResult::kAccepted;
}

void CredentialAuthority::revoke(std::uint64_t cert_id) { crl_.insert(cert_id); }

void CredentialAuthority::revoke_pseudonym(std::uint32_t pseudonym) {
  const auto it = issued_.find(pseudonym);
  if (it == issued_.end()) return;
  for (std::uint64_t cert_id : it->second) crl_.insert(cert_id);
}

}  // namespace vehigan::scms
