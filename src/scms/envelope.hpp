#pragma once

#include "scms/certificate.hpp"
#include "scms/crypto.hpp"
#include "sim/bsm.hpp"

namespace vehigan::scms {

/// A BSM as it travels over the air: payload + the sender's pseudonym
/// certificate + signature over the payload. This is what an OBU/RSU
/// actually receives; signature verification filters *outsider* forgeries,
/// and everything that passes goes to the MBDS for content checks.
struct SignedBsm {
  sim::Bsm payload;
  PseudonymCertificate certificate;
  std::uint64_t signature = 0;
};

/// Canonical byte string of the signed fields.
inline std::string bsm_payload_bytes(const sim::Bsm& m) {
  std::string bytes;
  auto append = [&bytes](const void* p, std::size_t n) {
    bytes.append(static_cast<const char*>(p), n);
  };
  append(&m.vehicle_id, sizeof(m.vehicle_id));
  append(&m.time, sizeof(m.time));
  append(&m.x, sizeof(m.x));
  append(&m.y, sizeof(m.y));
  append(&m.speed, sizeof(m.speed));
  append(&m.accel, sizeof(m.accel));
  append(&m.heading, sizeof(m.heading));
  append(&m.yaw_rate, sizeof(m.yaw_rate));
  return bytes;
}

/// Signs one BSM with the holder's secret under its certificate.
inline SignedBsm sign_bsm(const sim::Bsm& message, const PseudonymCertificate& certificate,
                          std::uint64_t holder_secret) {
  SignedBsm out;
  out.payload = message;
  out.certificate = certificate;
  out.signature = sign_with_cert(holder_secret, bsm_payload_bytes(message));
  return out;
}

}  // namespace vehigan::scms
