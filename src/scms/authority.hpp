#pragma once

#include <map>
#include <set>
#include <vector>

#include "scms/certificate.hpp"
#include "scms/envelope.hpp"
#include "util/rng.hpp"

namespace vehigan::scms {

/// Why a received message was rejected (or accepted) at the security layer.
enum class VerifyResult {
  kAccepted,
  kBadCaSignature,      ///< certificate not issued by this CA
  kBadMessageSignature, ///< payload tampered / signer lacks the cert's key
  kExpired,             ///< outside the certificate validity window
  kRevoked,             ///< certificate on the CRL
  kPseudonymMismatch,   ///< BSM sender id != certificate pseudonym
};

/// The Security Credential Management System model: a certificate authority
/// that enrolls vehicles, issues rotating pseudonym certificates, maintains
/// the certificate revocation list (CRL), and verifies received messages.
///
/// Together with mbds::MisbehaviorAuthority this closes the paper's loop:
/// MBDS reports -> MA investigation -> credentials placed on the CRL ->
/// the vehicle's messages stop verifying network-wide.
class CredentialAuthority {
 public:
  explicit CredentialAuthority(std::uint64_t ca_secret = 0xC0FFEE);

  /// Enrolls a vehicle: creates its long-term key pair and returns the
  /// holder secret (kept on the OBU).
  std::uint64_t enroll(std::uint32_t vehicle_id, util::Rng& rng);

  /// Issues a pseudonym certificate for an enrolled vehicle.
  /// @throws std::out_of_range if the vehicle was never enrolled.
  PseudonymCertificate issue(std::uint32_t vehicle_id, std::uint32_t pseudonym,
                             double valid_from, double valid_until);

  /// Full receive-side verification of one over-the-air message.
  [[nodiscard]] VerifyResult verify(const SignedBsm& message, double now) const;

  /// Places a certificate on the CRL (the MA's enforcement action).
  void revoke(std::uint64_t cert_id);

  /// Revokes every certificate issued to the given pseudonym.
  void revoke_pseudonym(std::uint32_t pseudonym);

  [[nodiscard]] bool is_revoked(std::uint64_t cert_id) const {
    return crl_.contains(cert_id);
  }
  [[nodiscard]] const std::set<std::uint64_t>& crl() const { return crl_; }
  [[nodiscard]] std::uint64_t ca_public() const { return ca_keys_.public_id; }

 private:
  KeyPair ca_keys_;
  std::uint64_t next_cert_id_ = 1;
  std::map<std::uint32_t, KeyPair> enrolled_;              ///< vehicle -> keys
  std::map<std::uint32_t, std::vector<std::uint64_t>> issued_;  ///< pseudonym -> certs
  std::set<std::uint64_t> crl_;
};

}  // namespace vehigan::scms
