#pragma once

#include <cstdint>
#include <string>

#include "util/hash.hpp"

namespace vehigan::scms {

/// Toy message-authentication primitives for the SCMS model.
///
/// NOT cryptography: tags are keyed FNV hashes, stand-ins that exercise the
/// exact same control flow as ECDSA signatures in a real SCMS (sign at the
/// sender, verify against the certificate, reject on mismatch) without an
/// external crypto library. DESIGN.md documents this substitution; nothing
/// in the paper's evaluation depends on the hardness of the primitive —
/// the paper's whole point is that valid signatures cannot vouch for
/// message *content*.
struct KeyPair {
  std::uint64_t secret = 0;  ///< private signing key
  std::uint64_t public_id = 0;  ///< derived verification key
};

/// Derives the public verification key from a secret.
inline std::uint64_t derive_public(std::uint64_t secret) {
  util::Fnv1a h;
  h.add("vehigan-pub");
  h.add_pod(secret);
  return h.value();
}

inline KeyPair make_key_pair(std::uint64_t secret) {
  return KeyPair{secret, derive_public(secret)};
}

/// Keyed tag over an opaque byte string.
inline std::uint64_t sign_bytes(std::uint64_t secret, const std::string& payload) {
  util::Fnv1a h;
  h.add_pod(secret);
  h.add(payload);
  return h.value();
}

/// Verification needs the *secret* in a real MAC; to model signatures
/// (verify with public material only) the tag binds the public id instead,
/// derived through the secret — same trust topology as certificates.
inline std::uint64_t sign_with_cert(std::uint64_t secret, const std::string& payload) {
  util::Fnv1a h;
  h.add_pod(derive_public(secret));
  h.add("vehigan-sig");
  h.add(payload);
  return h.value();
}

inline bool verify_with_cert(std::uint64_t public_id, const std::string& payload,
                             std::uint64_t tag) {
  util::Fnv1a h;
  h.add_pod(public_id);
  h.add("vehigan-sig");
  h.add(payload);
  return h.value() == tag;
}

}  // namespace vehigan::scms
