#pragma once

#include <map>

#include "sim/bsm.hpp"
#include "util/rng.hpp"

namespace vehigan::scms {

/// Pseudonym rotation (Sec. I: BSMs carry a *short-term* pseudonym). Real
/// deployments rotate identifiers every few minutes to limit tracking;
/// rotation also truncates the per-sender history an MBDS can accumulate,
/// which is an operational cost this module lets the experiments quantify.
class PseudonymRotation {
 public:
  /// @param period_s rotate every period_s seconds (epochs aligned to t=0)
  /// @param seed     pseudonym draw seed
  PseudonymRotation(double period_s, std::uint64_t seed)
      : period_s_(period_s), rng_(seed) {}

  /// Rewrites every trace's vehicle_id per rotation epoch with fresh random
  /// pseudonyms, splitting each trace accordingly. Fills `ownership` with
  /// pseudonym -> true vehicle id (the resolution only the SCMS can do).
  sim::BsmDataset apply(const sim::BsmDataset& dataset,
                        std::map<std::uint32_t, std::uint32_t>& ownership);

  [[nodiscard]] double period() const { return period_s_; }

 private:
  std::uint32_t fresh_pseudonym(std::map<std::uint32_t, std::uint32_t>& ownership,
                                std::uint32_t owner);

  double period_s_;
  util::Rng rng_;
};

}  // namespace vehigan::scms
