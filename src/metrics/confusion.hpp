#pragma once

#include <cstdint>
#include <span>

namespace vehigan::metrics {

/// Binary-classification outcome counts for a detector at a fixed threshold
/// (Sec. IV-A2 of the paper). Positive = misbehavior, negative = benign.
struct ConfusionMatrix {
  std::uint64_t tp = 0;  ///< misbehavior flagged as misbehavior
  std::uint64_t tn = 0;  ///< benign accepted as benign
  std::uint64_t fp = 0;  ///< benign flagged as misbehavior
  std::uint64_t fn = 0;  ///< misbehavior accepted as benign

  void add(bool actual_positive, bool predicted_positive) {
    if (actual_positive) {
      predicted_positive ? ++tp : ++fn;
    } else {
      predicted_positive ? ++fp : ++tn;
    }
  }

  [[nodiscard]] std::uint64_t total() const { return tp + tn + fp + fn; }

  /// TPR = TP / (TP + FN); 0 when there are no positives.
  [[nodiscard]] double tpr() const {
    const auto denom = tp + fn;
    return denom == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(denom);
  }

  /// FPR = FP / (FP + TN); 0 when there are no negatives.
  [[nodiscard]] double fpr() const {
    const auto denom = fp + tn;
    return denom == 0 ? 0.0 : static_cast<double>(fp) / static_cast<double>(denom);
  }

  /// FNR = FN / (TP + FN); 0 when there are no positives.
  [[nodiscard]] double fnr() const {
    const auto denom = tp + fn;
    return denom == 0 ? 0.0 : static_cast<double>(fn) / static_cast<double>(denom);
  }

  [[nodiscard]] double precision() const {
    const auto denom = tp + fp;
    return denom == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(denom);
  }

  [[nodiscard]] double accuracy() const {
    const auto t = total();
    return t == 0 ? 0.0 : static_cast<double>(tp + tn) / static_cast<double>(t);
  }

  [[nodiscard]] double f1() const {
    const double p = precision();
    const double r = tpr();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

/// Builds a confusion matrix from anomaly scores: a sample is predicted
/// positive when its score strictly exceeds the threshold, matching the
/// VEHIGAN detection rule s_v > tau_ens (Sec. III-F).
ConfusionMatrix confusion_at_threshold(std::span<const float> benign_scores,
                                       std::span<const float> attack_scores,
                                       double threshold);

}  // namespace vehigan::metrics
