#include "metrics/confusion.hpp"

namespace vehigan::metrics {

ConfusionMatrix confusion_at_threshold(std::span<const float> benign_scores,
                                       std::span<const float> attack_scores,
                                       double threshold) {
  ConfusionMatrix cm;
  for (float s : benign_scores) cm.add(/*actual_positive=*/false, s > threshold);
  for (float s : attack_scores) cm.add(/*actual_positive=*/true, s > threshold);
  return cm;
}

}  // namespace vehigan::metrics
