#include "metrics/roc.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace vehigan::metrics {

namespace {

/// Labeled score for sorting: label=1 positive, 0 negative.
struct Labeled {
  float score;
  int label;
};

}  // namespace

double auroc(std::span<const float> negative_scores, std::span<const float> positive_scores) {
  const std::size_t n_neg = negative_scores.size();
  const std::size_t n_pos = positive_scores.size();
  if (n_neg == 0 || n_pos == 0) return 0.5;

  // Rank-sum with midranks for ties (exact Mann-Whitney).
  std::vector<Labeled> all;
  all.reserve(n_neg + n_pos);
  for (float s : negative_scores) all.push_back({s, 0});
  for (float s : positive_scores) all.push_back({s, 1});
  std::sort(all.begin(), all.end(), [](const Labeled& a, const Labeled& b) { return a.score < b.score; });

  double rank_sum_pos = 0.0;
  std::size_t i = 0;
  while (i < all.size()) {
    std::size_t j = i;
    while (j < all.size() && all[j].score == all[i].score) ++j;
    // Midrank of the tie group [i, j): average of 1-based ranks i+1 .. j.
    const double midrank = (static_cast<double>(i) + 1.0 + static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k < j; ++k) {
      if (all[k].label == 1) rank_sum_pos += midrank;
    }
    i = j;
  }
  const double u = rank_sum_pos - static_cast<double>(n_pos) * (static_cast<double>(n_pos) + 1.0) / 2.0;
  return u / (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

std::vector<RocPoint> roc_curve(std::span<const float> negative_scores,
                                std::span<const float> positive_scores) {
  std::vector<Labeled> all;
  all.reserve(negative_scores.size() + positive_scores.size());
  for (float s : negative_scores) all.push_back({s, 0});
  for (float s : positive_scores) all.push_back({s, 1});
  // Descending by score: as the threshold drops, TPR/FPR only grow.
  std::sort(all.begin(), all.end(), [](const Labeled& a, const Labeled& b) { return a.score > b.score; });

  const double n_pos = static_cast<double>(positive_scores.size());
  const double n_neg = static_cast<double>(negative_scores.size());
  std::vector<RocPoint> curve;
  curve.push_back({std::numeric_limits<double>::infinity(), 0.0, 0.0});
  std::uint64_t tp = 0;
  std::uint64_t fp = 0;
  std::size_t i = 0;
  while (i < all.size()) {
    std::size_t j = i;
    // Advance through a tie group atomically so the curve is well defined.
    while (j < all.size() && all[j].score == all[i].score) {
      all[j].label == 1 ? ++tp : ++fp;
      ++j;
    }
    curve.push_back({static_cast<double>(all[i].score),
                     n_neg == 0 ? 0.0 : static_cast<double>(fp) / n_neg,
                     n_pos == 0 ? 0.0 : static_cast<double>(tp) / n_pos});
    i = j;
  }
  return curve;
}

double tpr_at_fpr(std::span<const float> negative_scores,
                  std::span<const float> positive_scores, double target_fpr) {
  if (negative_scores.empty() || positive_scores.empty()) return 0.0;
  std::vector<float> negatives(negative_scores.begin(), negative_scores.end());
  std::sort(negatives.begin(), negatives.end());
  // Strictly-greater detection rule: pick the smallest threshold such that
  // at most target_fpr of negatives exceed it.
  const auto allowed = static_cast<std::size_t>(
      std::floor(target_fpr * static_cast<double>(negatives.size())));
  const float threshold = negatives[negatives.size() - 1 - allowed];
  std::size_t detected = 0;
  for (float s : positive_scores) {
    if (s > threshold) ++detected;
  }
  return static_cast<double>(detected) / static_cast<double>(positive_scores.size());
}

double auprc(std::span<const float> negative_scores, std::span<const float> positive_scores) {
  const double n_pos = static_cast<double>(positive_scores.size());
  const double n_all = n_pos + static_cast<double>(negative_scores.size());
  if (positive_scores.empty() || negative_scores.empty()) {
    return n_all == 0.0 ? 0.0 : n_pos / n_all;
  }
  std::vector<Labeled> all;
  all.reserve(static_cast<std::size_t>(n_all));
  for (float s : negative_scores) all.push_back({s, 0});
  for (float s : positive_scores) all.push_back({s, 1});
  std::sort(all.begin(), all.end(), [](const Labeled& a, const Labeled& b) { return a.score > b.score; });

  // Average precision: sum over positives of precision at each recall step.
  double ap = 0.0;
  std::uint64_t tp = 0;
  std::uint64_t seen = 0;
  std::size_t i = 0;
  while (i < all.size()) {
    std::size_t j = i;
    std::uint64_t tp_in_group = 0;
    while (j < all.size() && all[j].score == all[i].score) {
      if (all[j].label == 1) ++tp_in_group;
      ++j;
    }
    const auto group = static_cast<std::uint64_t>(j - i);
    tp += tp_in_group;
    seen += group;
    if (tp_in_group > 0) {
      const double precision = static_cast<double>(tp) / static_cast<double>(seen);
      ap += precision * static_cast<double>(tp_in_group) / n_pos;
    }
    i = j;
  }
  return ap;
}

}  // namespace vehigan::metrics
