#pragma once

#include <span>
#include <vector>

namespace vehigan::metrics {

/// One point of a ROC curve.
struct RocPoint {
  double threshold;
  double fpr;
  double tpr;
};

/// Area under the ROC curve, computed exactly via the Mann-Whitney U
/// statistic with tie correction:
///   AUROC = P(score(positive) > score(negative)) + 0.5 * P(tie).
/// Positive class = attack/misbehavior; higher score = more anomalous.
/// Returns 0.5 when either class is empty (undefined -> chance level).
double auroc(std::span<const float> negative_scores, std::span<const float> positive_scores);

/// Full ROC sweep over every distinct score threshold (plus sentinels),
/// suitable for plotting. Points are ordered from (0,0) to (1,1).
std::vector<RocPoint> roc_curve(std::span<const float> negative_scores,
                                std::span<const float> positive_scores);

/// Area under the precision-recall curve (average precision formulation).
/// Returns the positive prevalence when either class is empty.
double auprc(std::span<const float> negative_scores, std::span<const float> positive_scores);

/// TPR at a fixed FPR operating point: the threshold is set to the
/// (1 - target_fpr) quantile of the negative scores (the paper's
/// 99th-percentile rule corresponds to target_fpr = 0.01), and the returned
/// value is the fraction of positives above it. Returns 0 when either class
/// is empty.
double tpr_at_fpr(std::span<const float> negative_scores,
                  std::span<const float> positive_scores, double target_fpr);

}  // namespace vehigan::metrics
