// Latency-anatomy tests: the exemplar reservoir, and the headline
// reconciliation bar from the issue — drive the real serving stack with 4
// producers and assert the stage histograms add back up to the end-to-end
// latency (sum(e2e) == sum(queue_wait) + sum(compute) to float tolerance,
// counts exactly equal to messages scored, nested stages contained).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "features/scaler.hpp"
#include "gan/architecture.hpp"
#include "mbds/online.hpp"
#include "nn/layers.hpp"
#include "serve/latency_anatomy.hpp"
#include "serve/service.hpp"
#include "telemetry/metrics.hpp"

namespace vehigan::serve {
namespace {

TEST(LatencyAnatomyClock, NowNsIsMonotonicAndNeverZero) {
  const std::uint64_t a = LatencyAnatomy::now_ns();
  const std::uint64_t b = LatencyAnatomy::now_ns();
  EXPECT_GT(a, 0U) << "0 is reserved for 'unstamped'";
  EXPECT_GE(b, a);
}

TEST(LatencyAnatomyExemplars, ReservoirKeepsTheWorstKWorstFirst) {
  LatencyAnatomy& anatomy = LatencyAnatomy::global();
  anatomy.reset_exemplars();

  // 20 candidates, seconds = 1..20: only the top kExemplars survive.
  for (std::uint32_t i = 1; i <= 20; ++i) {
    anatomy.offer_exemplar(static_cast<double>(i), /*trace_id=*/100 + i,
                           /*station_id=*/i, /*shard=*/i % 4);
  }
  const auto worst = anatomy.exemplars();
  ASSERT_EQ(worst.size(), LatencyAnatomy::kExemplars);
  for (std::size_t i = 0; i < worst.size(); ++i) {
    EXPECT_DOUBLE_EQ(worst[i].seconds, static_cast<double>(20 - i)) << "worst-first";
    EXPECT_EQ(worst[i].trace_id, 100U + (20 - i)) << "identity rides along";
  }

  // Below-floor candidates are rejected without displacing anything.
  anatomy.offer_exemplar(0.5, 999, 999, 0);
  EXPECT_EQ(anatomy.exemplars().back().seconds, 13.0);

  anatomy.reset_exemplars();
  EXPECT_TRUE(anatomy.exemplars().empty());
  // After a reset the floor must drop back so new (smaller) latencies enter.
  anatomy.offer_exemplar(0.25, 7, 7, 0);
  ASSERT_EQ(anatomy.exemplars().size(), 1U);
  EXPECT_DOUBLE_EQ(anatomy.exemplars()[0].seconds, 0.25);
}

// ------------------------------------------------ serving reconciliation ---

features::MinMaxScaler identity_scaler(std::size_t width = 12) {
  features::Series s;
  s.width = width;
  for (std::size_t c = 0; c < width; ++c) s.values.push_back(0.0F);
  for (std::size_t c = 0; c < width; ++c) s.values.push_back(1.0F);
  features::MinMaxScaler scaler;
  scaler.fit({s});
  return scaler;
}

std::shared_ptr<mbds::VehiGan> make_ensemble(std::uint64_t seed) {
  std::vector<std::shared_ptr<mbds::WganDetector>> detectors;
  for (std::size_t i = 0; i < 2; ++i) {
    gan::TrainedWgan model;
    model.config.id = static_cast<int>(i);
    model.config.window = 10;
    model.config.width = 12;
    model.discriminator.add<nn::Flatten>();
    auto& dense = model.discriminator.add<nn::Dense>(120, 1);
    dense.weights().assign(120, -(1.0F + 0.5F * static_cast<float>(i)));
    dense.bias() = {0.0F};
    auto det = std::make_shared<mbds::WganDetector>(std::move(model));
    det->set_threshold(-1e9);  // flag every complete window
    detectors.push_back(std::move(det));
  }
  auto ensemble = std::make_shared<mbds::VehiGan>(detectors, /*k=*/1, seed);
  ensemble->set_subset_draw(mbds::SubsetDraw::kContentKeyed);
  return ensemble;
}

struct StageDelta {
  telemetry::Histogram& hist;
  std::uint64_t count0;
  double sum0;

  explicit StageDelta(const char* name)
      : hist(telemetry::MetricsRegistry::global().histogram(name)),
        count0(hist.count()),
        sum0(hist.sum()) {}

  [[nodiscard]] std::uint64_t count() const { return hist.count() - count0; }
  [[nodiscard]] double sum() const { return hist.sum() - sum0; }
};

TEST(LatencyAnatomyReconciliation, StageHistogramsAddUpToEndToEndLatency) {
  telemetry::set_enabled(true);  // stamps are gated on the telemetry switch
  LatencyAnatomy& anatomy = LatencyAnatomy::global();
  anatomy.reset_exemplars();

  StageDelta queue_wait("vehigan_serve_queue_wait_seconds");
  StageDelta assembly("vehigan_serve_drain_assembly_seconds");
  StageDelta compute("vehigan_serve_compute_seconds");
  StageDelta cycle("vehigan_serve_cycle_seconds");
  StageDelta e2e("vehigan_serve_e2e_seconds");
  StageDelta merge("vehigan_serve_report_merge_seconds");
  StageDelta window_build("vehigan_mbds_window_build_seconds");
  StageDelta score("vehigan_mbds_score_seconds");
  StageDelta decide("vehigan_mbds_decide_seconds");

  ServiceConfig config;
  config.num_shards = 2;
  config.queue_capacity = 128;
  config.policy = OverloadPolicy::kBlock;  // lose nothing: every message is stamped
  config.station_id = 42;
  config.report_cooldown_s = 0.25;
  config.gap_reset_s = 1e9;
  config.evict_after_s = 0.0;

  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kSendersPerProducer = 4;
  constexpr std::size_t kTicks = 50;
  constexpr std::size_t kMessages = kProducers * kSendersPerProducer * kTicks;
  std::atomic<std::size_t> reports{0};
  ServiceStats stats;
  {
    DetectionService service(
        config, [&](std::size_t) { return make_ensemble(7); }, identity_scaler());
    service.set_report_sink([&](const mbds::MisbehaviorReport&) { ++reports; });
    std::vector<std::thread> producers;
    for (std::size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (std::size_t t = 0; t < kTicks; ++t) {
          for (std::size_t v = 0; v < kSendersPerProducer; ++v) {
            sim::Bsm m;
            m.vehicle_id = static_cast<std::uint32_t>(1 + p * kSendersPerProducer + v);
            m.time = 0.1 * static_cast<double>(t);
            m.speed = 10.0;
            m.x = m.speed * m.time;
            m.y = static_cast<double>(m.vehicle_id);
            ASSERT_TRUE(service.submit(m));
          }
        }
      });
    }
    for (auto& t : producers) t.join();
    service.drain();
    stats = service.stats();
    service.stop();
  }
  ASSERT_EQ(stats.total.scored, kMessages);
  ASSERT_GT(reports.load(), 0U);

  // Counts: every scored message contributes exactly one observation to each
  // per-message stage; every non-empty drain cycle contributes one to each
  // per-cycle stage.
  EXPECT_EQ(e2e.count(), kMessages);
  EXPECT_EQ(queue_wait.count(), kMessages);
  EXPECT_EQ(compute.count(), kMessages);
  EXPECT_EQ(cycle.count(), stats.total.batches);
  EXPECT_EQ(assembly.count(), stats.total.batches);

  // The headline identity, from the shared stamps: e2e == queue_wait +
  // compute per message, so the sums reconcile to float rounding.
  ASSERT_GT(e2e.sum(), 0.0);
  EXPECT_NEAR(e2e.sum(), queue_wait.sum() + compute.sum(), 1e-9 + 1e-9 * e2e.sum());

  // Containment: batch assembly happens inside its cycle; a message's
  // compute charge is its whole cycle, and every observed cycle carries at
  // least one message.
  EXPECT_LE(assembly.sum(), cycle.sum() * 1.0000001 + 1e-9);
  EXPECT_LE(cycle.sum(), compute.sum() * 1.0000001 + 1e-9);
  // The detector's inner stages (window build / score / decide) run on the
  // shard thread inside the cycle, so their time is bounded by cycle time.
  // Moderate tolerance: the inner spans come from their own clock reads.
  EXPECT_LE(window_build.sum() + score.sum() + decide.sum(), cycle.sum() * 1.05 + 1e-3);

  // Reports flowed through the collector, each merge delivery measured from
  // its publish stamp.
  EXPECT_GE(merge.count(), 1U);
  EXPECT_GT(merge.sum(), 0.0);

  // Exemplars: worst-K populated, worst-first, carrying chaseable identity.
  const auto worst = anatomy.exemplars();
  ASSERT_FALSE(worst.empty());
  for (std::size_t i = 1; i < worst.size(); ++i) {
    EXPECT_LE(worst[i].seconds, worst[i - 1].seconds);
  }
  EXPECT_GT(worst[0].seconds, 0.0);
  EXPECT_NE(worst[0].trace_id, 0U) << "exemplars must carry a chaseable trace id";

  // Utilization gauges: fractions are sane and the shards did real work.
  ASSERT_FALSE(stats.shards.empty());
  for (const ShardStats& shard : stats.shards) {
    EXPECT_GE(shard.busy_fraction(), 0.0);
    EXPECT_LE(shard.busy_fraction(), 1.0);
  }
  EXPECT_GT(stats.total.busy_ns, 0U);
  EXPECT_GT(stats.total.busy_fraction(), 0.0);
}

}  // namespace
}  // namespace vehigan::serve
