// Cross-cutting property tests: invariants that must hold over randomized
// inputs rather than single examples.

#include <gtest/gtest.h>

#include <cmath>

#include "adv/fgsm.hpp"
#include "adv/pgd.hpp"
#include "features/scaler.hpp"
#include "features/windows.hpp"
#include "gan/architecture.hpp"
#include "mbds/wgan_detector.hpp"
#include "metrics/roc.hpp"
#include "nn/lite.hpp"
#include "test_utils.hpp"
#include "util/math.hpp"

namespace vehigan {
namespace {

// ------------------------------------------------------------- metrics -----

TEST(Property, AurocIsInvariantUnderMonotoneTransforms) {
  util::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> neg(60), pos(40);
    for (auto& v : neg) v = rng.normal_f(0.0F, 1.0F);
    for (auto& v : pos) v = rng.normal_f(0.7F, 1.3F);
    const double base = metrics::auroc(neg, pos);
    auto transform = [](float v) { return std::exp(0.5F * v) + 3.0F; };  // strictly increasing
    for (auto& v : neg) v = transform(v);
    for (auto& v : pos) v = transform(v);
    EXPECT_NEAR(metrics::auroc(neg, pos), base, 1e-12) << "trial " << trial;
  }
}

TEST(Property, AurocOfSwappedClassesIsComplement) {
  util::Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> a(50), b(30);
    for (auto& v : a) v = static_cast<float>(rng.uniform_int(0, 15));  // with ties
    for (auto& v : b) v = static_cast<float>(rng.uniform_int(5, 20));
    EXPECT_NEAR(metrics::auroc(a, b) + metrics::auroc(b, a), 1.0, 1e-12);
  }
}

TEST(Property, PercentileIsMonotoneInP) {
  util::Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> values(1 + rng.index(200));
    for (auto& v : values) v = rng.normal(0.0, 5.0);
    double previous = -1e18;
    for (double p = 0.0; p <= 100.0; p += 7.3) {
      const double current = util::percentile(values, p);
      EXPECT_GE(current, previous - 1e-12);
      previous = current;
    }
  }
}

// ------------------------------------------------------------- detector ----

mbds::WganDetector random_detector(std::uint64_t seed) {
  gan::WganConfig cfg;
  util::Rng rng(seed);
  cfg.z_dim = 8;
  cfg.layers = 6 + static_cast<int>(rng.index(3));
  cfg.id = static_cast<int>(seed);
  util::Rng g_rng = rng.split(1);
  util::Rng d_rng = rng.split(2);
  gan::TrainedWgan model;
  model.config = cfg;
  model.generator = gan::build_generator(cfg, g_rng);
  model.discriminator = gan::build_discriminator(cfg, d_rng);
  return mbds::WganDetector(std::move(model));
}

TEST(Property, CalibrationNeverChangesAurocOrFgsmDirection) {
  util::Rng rng(5);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    mbds::WganDetector raw = random_detector(seed);
    mbds::WganDetector calibrated = random_detector(seed);

    std::vector<float> neg_raw, pos_raw, neg_cal, pos_cal;
    std::vector<std::vector<float>> negatives, positives;
    for (int i = 0; i < 30; ++i) {
      std::vector<float> snap(120);
      for (auto& v : snap) v = rng.uniform_f(0.0F, 1.0F);
      negatives.push_back(snap);
      for (auto& v : snap) v += rng.uniform_f(0.0F, 2.0F);
      positives.push_back(snap);
    }
    // Calibrate with arbitrary benign stats.
    std::vector<float> benign_scores;
    for (const auto& snap : negatives) benign_scores.push_back(calibrated.score(snap));
    calibrated.calibrate(benign_scores);

    for (const auto& snap : negatives) {
      neg_raw.push_back(raw.score(snap));
      neg_cal.push_back(calibrated.score(snap));
    }
    for (const auto& snap : positives) {
      pos_raw.push_back(raw.score(snap));
      pos_cal.push_back(calibrated.score(snap));
    }
    EXPECT_NEAR(metrics::auroc(neg_raw, pos_raw), metrics::auroc(neg_cal, pos_cal), 1e-9);

    // FGSM moves every coordinate identically (sign(grad/sigma) == sign(grad)).
    const auto adv_raw =
        adv::fgsm_perturb(raw, negatives[0], 0.01F, adv::AttackGoal::kFalsePositive);
    const auto adv_cal =
        adv::fgsm_perturb(calibrated, negatives[0], 0.01F, adv::AttackGoal::kFalsePositive);
    for (std::size_t i = 0; i < adv_raw.size(); ++i) {
      EXPECT_FLOAT_EQ(adv_raw[i], adv_cal[i]);
    }
  }
}

TEST(Property, LiteMatchesSequentialAcrossRandomArchitectures) {
  util::Rng rng(11);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    mbds::WganDetector detector = random_detector(seed + 100);
    auto lite = nn::lite::LiteModel::compile(detector.model().discriminator, {1, 10, 12});
    for (int trial = 0; trial < 3; ++trial) {
      std::vector<float> snap(120);
      for (auto& v : snap) v = rng.uniform_f(-1.0F, 2.0F);
      const float reference =
          nn::forward_scalar(detector.model().discriminator, snap, 10, 12);
      EXPECT_NEAR(lite.infer_scalar(snap), reference,
                  1e-4F * (1.0F + std::abs(reference)))
          << "arch seed " << seed;
    }
  }
}

// ---------------------------------------------------------- adversarial ----

TEST(Property, FgsmAndPgdRespectTheLinfBudget) {
  util::Rng rng(13);
  mbds::WganDetector detector = random_detector(7);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<float> snap(120);
    for (auto& v : snap) v = rng.uniform_f(0.0F, 1.0F);
    const float eps = rng.uniform_f(0.005F, 0.2F);
    const auto fgsm = adv::fgsm_perturb(detector, snap, eps, adv::AttackGoal::kFalsePositive);
    adv::PgdOptions options;
    options.eps = eps;
    options.step_size = eps / 3.0F;
    options.iterations = 6;
    const auto pgd = adv::pgd_perturb(detector, snap, options, adv::AttackGoal::kFalsePositive);
    for (std::size_t i = 0; i < snap.size(); ++i) {
      EXPECT_LE(std::abs(fgsm[i] - snap[i]), eps + 1e-6F);
      EXPECT_LE(std::abs(pgd[i] - snap[i]), eps + 1e-6F);
    }
  }
}

// -------------------------------------------------------------- windows ----

TEST(Property, WindowCountMatchesClosedForm) {
  util::Rng rng(17);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t rows = 1 + rng.index(60);
    const std::size_t width = 1 + rng.index(6);
    const std::size_t window = 1 + rng.index(15);
    const std::size_t stride = 1 + rng.index(5);
    features::Series s;
    s.vehicle_id = 1;
    s.width = width;
    s.values.assign(rows * width, 0.5F);
    const auto set = features::make_windows({s}, window, stride);
    const std::size_t expected = rows < window ? 0 : (rows - window) / stride + 1;
    EXPECT_EQ(set.count(), expected)
        << "rows=" << rows << " window=" << window << " stride=" << stride;
  }
}

TEST(Property, ScalerRoundTripsRandomData) {
  util::Rng rng(19);
  for (int trial = 0; trial < 20; ++trial) {
    features::Series s;
    s.width = 1 + rng.index(8);
    const std::size_t rows = 2 + rng.index(50);
    for (std::size_t i = 0; i < rows * s.width; ++i) {
      s.values.push_back(rng.normal_f(0.0F, 100.0F));
    }
    features::MinMaxScaler scaler;
    scaler.fit({s});
    features::Series copy = s;
    scaler.transform(copy);
    scaler.inverse_transform(copy);
    for (std::size_t i = 0; i < s.values.size(); ++i) {
      EXPECT_NEAR(copy.values[i], s.values[i], 1e-2F) << "trial " << trial;
    }
  }
}

TEST(Property, SubsampleNeverChangesShapeInvariants) {
  util::Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    features::Series s;
    s.width = 2;
    s.values.assign((10 + rng.index(100)) * 2, 1.0F);
    auto set = features::make_windows({s}, 4, 1);
    const std::size_t keep = 1 + rng.index(7);
    const auto sub = set.subsample(keep);
    EXPECT_EQ(sub.window, set.window);
    EXPECT_EQ(sub.width, set.width);
    EXPECT_EQ(sub.count(), (set.count() + keep - 1) / keep);
    EXPECT_EQ(sub.vehicle_ids.size(), sub.count());
  }
}

}  // namespace
}  // namespace vehigan
