#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>

#include "data/json.hpp"
#include "data/veremi.hpp"
#include "sim/traffic_sim.hpp"
#include "util/math.hpp"

namespace vehigan::data {
namespace {

// ----------------------------------------------------------------- json ----

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(Json::parse("-3.25e2").as_number(), -325.0);
  EXPECT_EQ(Json::parse("\"hi\\nthere\"").as_string(), "hi\nthere");
}

TEST(Json, ParsesNestedStructures) {
  const Json doc = Json::parse(R"({"a":[1,2,{"b":true}],"c":"x","d":null})");
  EXPECT_EQ(doc.at("a").as_array().size(), 3U);
  EXPECT_TRUE(doc.at("a").at(2).at("b").as_bool());
  EXPECT_EQ(doc.at("c").as_string(), "x");
  EXPECT_TRUE(doc.at("d").is_null());
  EXPECT_TRUE(doc.contains("a"));
  EXPECT_FALSE(doc.contains("zzz"));
}

TEST(Json, DumpParseRoundTrip) {
  Json::Object object;
  object["name"] = Json("vehi\"gan\n");
  object["pi"] = Json(3.14159265358979);
  object["count"] = Json(60);
  object["list"] = Json(Json::Array{Json(1), Json(false), Json(nullptr)});
  const Json original{std::move(object)};
  const Json reparsed = Json::parse(original.dump());
  EXPECT_EQ(reparsed.at("name").as_string(), "vehi\"gan\n");
  EXPECT_DOUBLE_EQ(reparsed.at("pi").as_number(), 3.14159265358979);
  EXPECT_DOUBLE_EQ(reparsed.at("count").as_number(), 60.0);
  EXPECT_FALSE(reparsed.at("list").at(1).as_bool());
  EXPECT_TRUE(reparsed.at("list").at(2).is_null());
}

TEST(Json, IntegersDumpWithoutDecimalPoint) {
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(Json::parse("tru"), std::runtime_error);
  EXPECT_THROW(Json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(Json::parse("1 2"), std::runtime_error);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), std::runtime_error);
}

TEST(Json, TypeMismatchesThrow) {
  const Json number = Json::parse("5");
  EXPECT_THROW((void)number.as_string(), std::runtime_error);
  EXPECT_THROW((void)number.as_array(), std::runtime_error);
  const Json object = Json::parse("{}");
  EXPECT_THROW((void)object.at("missing"), std::out_of_range);
}

TEST(Json, ParsePrefixSupportsJsonLines) {
  const std::string lines = "{\"a\":1}\n{\"a\":2}";
  std::size_t pos = 0;
  const Json first = Json::parse_prefix(lines, pos);
  const Json second = Json::parse_prefix(lines, pos);
  EXPECT_DOUBLE_EQ(first.at("a").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(second.at("a").as_number(), 2.0);
}

// --------------------------------------------------------------- veremi ----

vasp::MisbehaviorDataset small_scenario() {
  sim::TrafficSimConfig cfg;
  cfg.duration_s = 8.0;
  cfg.num_platoons = 2;
  cfg.vehicles_per_platoon = 2;
  cfg.seed = 15;
  const auto fleet = sim::TrafficSimulator(cfg).run();
  return vasp::build_scenario(fleet, vasp::attack_by_name("HighYawRate"), {});
}

TEST(Veremi, RoundTripsMessagesAndLabels) {
  const auto scenario = small_scenario();
  const auto dir = std::filesystem::temp_directory_path() / "vehigan_veremi_test";
  const VeremiExport files = write_veremi(scenario, 28, dir, "highyaw");
  const VeremiImport imported = read_veremi(files);

  ASSERT_EQ(imported.dataset.traces.size(), scenario.traces.size());
  ASSERT_EQ(imported.attacker_type.size(), scenario.traces.size());

  std::map<std::uint32_t, const sim::VehicleTrace*> original;
  for (const auto& labeled : scenario.traces) {
    original[labeled.trace.vehicle_id] = &labeled.trace;
    EXPECT_EQ(imported.attacker_type.at(labeled.trace.vehicle_id),
              labeled.malicious ? 28 : 0);
  }
  for (const auto& trace : imported.dataset.traces) {
    const sim::VehicleTrace* source = original.at(trace.vehicle_id);
    ASSERT_EQ(trace.messages.size(), source->messages.size());
    for (std::size_t i = 0; i < trace.messages.size(); ++i) {
      const auto& got = trace.messages[i];
      const auto& want = source->messages[i];
      EXPECT_NEAR(got.time, want.time, 1e-9);
      EXPECT_NEAR(got.x, want.x, 1e-9);
      EXPECT_NEAR(got.y, want.y, 1e-9);
      EXPECT_NEAR(got.speed, want.speed, 1e-6);
      EXPECT_NEAR(std::abs(util::angle_diff(got.heading, want.heading)), 0.0, 1e-6);
      EXPECT_NEAR(got.accel, want.accel, 1e-6);
      EXPECT_NEAR(got.yaw_rate, want.yaw_rate, 1e-9);
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(Veremi, ImportWithoutYawFieldDefaultsToZero) {
  const auto dir = std::filesystem::temp_directory_path() / "vehigan_veremi_noyaw";
  std::filesystem::create_directories(dir);
  VeremiExport files{dir / "m.json", dir / "m.gt.json"};
  {
    std::ofstream m(files.messages);
    m << R"({"type":3,"sendTime":1.0,"sender":5,"pos":[1,2,0],)"
      << R"("spd":[3,0,0],"acl":[0.5,0,0],"hed":[1,0,0]})" << "\n";
    std::ofstream gt(files.ground_truth);
    gt << R"({"sender":5,"attackerType":0})" << "\n";
  }
  const VeremiImport imported = read_veremi(files);
  ASSERT_EQ(imported.dataset.traces.size(), 1U);
  EXPECT_DOUBLE_EQ(imported.dataset.traces[0].messages[0].yaw_rate, 0.0);
  EXPECT_DOUBLE_EQ(imported.dataset.traces[0].messages[0].speed, 3.0);
  std::filesystem::remove_all(dir);
}

TEST(Veremi, MissingFilesThrow) {
  EXPECT_THROW(read_veremi({"/nonexistent/a.json", "/nonexistent/b.json"}),
               std::runtime_error);
}

TEST(Veremi, NegativeAccelerationSurvivesVectorRoundTrip) {
  // Braking (accel < 0) must keep its sign through the acl-vector encoding.
  sim::Bsm m;
  m.vehicle_id = 3;
  m.time = 2.0;
  m.speed = 10.0;
  m.heading = 2.1;
  m.accel = -3.0;
  vasp::MisbehaviorDataset scenario;
  scenario.traces.push_back({sim::VehicleTrace{3, {m}}, false});
  const auto dir = std::filesystem::temp_directory_path() / "vehigan_veremi_brake";
  const VeremiExport files = write_veremi(scenario, 0, dir, "brake");
  const VeremiImport imported = read_veremi(files);
  EXPECT_NEAR(imported.dataset.traces[0].messages[0].accel, -3.0, 1e-6);
  std::filesystem::remove_all(dir);
}

// ------------------------------------------- veremi golden-file fixtures ----
//
// Checked-in real-format traces (VeReMi-Extension receiver-log dialect with
// rcvTime/senderPseudo/messageID/noise fields and interleaved type-2 GPS
// self-reports). These pin the parser's reconstruction math and its
// rejection paths against files that never change.

std::filesystem::path fixture(const std::string& name) {
  return std::filesystem::path(VEHIGAN_TEST_FIXTURES_DIR) / name;
}

TEST(VeremiGolden, BenignFixtureReconstructsFieldsExactly) {
  const VeremiImport imported =
      read_veremi({fixture("veremi_benign.json"), fixture("veremi_benign.gt.json")});

  // Two type-3 senders; the two type-2 GPS self-reports are skipped.
  ASSERT_EQ(imported.dataset.traces.size(), 2U);
  ASSERT_EQ(imported.attacker_type.size(), 2U);
  EXPECT_EQ(imported.attacker_type.at(101), 0);
  EXPECT_EQ(imported.attacker_type.at(102), 0);

  const auto& s101 = imported.dataset.traces[0];
  ASSERT_EQ(s101.vehicle_id, 101U);
  ASSERT_EQ(s101.messages.size(), 3U);
  const sim::Bsm& first = s101.messages[0];
  EXPECT_DOUBLE_EQ(first.time, 25200.0);
  EXPECT_DOUBLE_EQ(first.x, 100.0);
  EXPECT_DOUBLE_EQ(first.y, 200.0);
  // spd [3,4] -> speed hypot = 5; hed [0.6,0.8] -> heading atan2(0.8,0.6);
  // acl [0.6,0.8] aligned with heading -> accel +|acl| = +1.
  EXPECT_DOUBLE_EQ(first.speed, 5.0);
  EXPECT_DOUBLE_EQ(first.heading, std::atan2(0.8, 0.6));
  EXPECT_DOUBLE_EQ(first.accel, 1.0);
  EXPECT_DOUBLE_EQ(first.yaw_rate, 0.02);
  EXPECT_DOUBLE_EQ(s101.messages[2].time, 25200.2);
  EXPECT_DOUBLE_EQ(s101.messages[2].x, 100.6);

  const auto& s102 = imported.dataset.traces[1];
  ASSERT_EQ(s102.vehicle_id, 102U);
  ASSERT_EQ(s102.messages.size(), 3U);
  const sim::Bsm& braking = s102.messages[0];
  // spd [-5,12] -> speed 13; hed [-5,12] (non-unit, direction only) ->
  // heading atan2(12,-5); acl [1.25,-3] opposes the heading -> accel
  // -hypot(1.25,3) = -3.25; no yaw field -> 0.
  EXPECT_DOUBLE_EQ(braking.speed, 13.0);
  EXPECT_DOUBLE_EQ(braking.heading, std::atan2(12.0, -5.0));
  EXPECT_DOUBLE_EQ(braking.accel, -3.25);
  EXPECT_DOUBLE_EQ(braking.yaw_rate, 0.0);
}

TEST(VeremiGolden, AttackFixtureCarriesLabels) {
  const VeremiImport imported =
      read_veremi({fixture("veremi_attack.json"), fixture("veremi_attack.gt.json")});
  ASSERT_EQ(imported.dataset.traces.size(), 2U);
  EXPECT_EQ(imported.attacker_type.at(201), 0);
  EXPECT_EQ(imported.attacker_type.at(202), 16);  // ConstantPosition cohort
  // The attacker's trace really is a frozen position with a live kinematic
  // story — exactly the inconsistency the detector keys on.
  const auto& attacker = imported.dataset.traces[1];
  ASSERT_EQ(attacker.vehicle_id, 202U);
  for (const sim::Bsm& m : attacker.messages) {
    EXPECT_DOUBLE_EQ(m.x, 500.0);
    EXPECT_DOUBLE_EQ(m.y, 500.0);
    EXPECT_DOUBLE_EQ(m.speed, 15.0);
  }
}

TEST(VeremiGolden, MalformedLineIsRejectedWithFileAndLineContext) {
  try {
    read_veremi({fixture("veremi_malformed.json"), fixture("veremi_benign.gt.json")});
    FAIL() << "malformed line should throw";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("veremi_malformed.json:2:"), std::string::npos) << what;
    EXPECT_NE(what.find("malformed record"), std::string::npos) << what;
  }
}

TEST(VeremiGolden, TruncatedFileIsRejectedAtTheCutLine) {
  try {
    read_veremi({fixture("veremi_truncated.json"), fixture("veremi_benign.gt.json")});
    FAIL() << "truncated file should throw";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("veremi_truncated.json:3:"), std::string::npos) << what;
  }
}

TEST(VeremiGolden, GroundTruthMissingLabelFieldIsRejected) {
  try {
    read_veremi({fixture("veremi_attack.json"), fixture("veremi_bad_truth.gt.json")});
    FAIL() << "label record without attackerType should throw";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("veremi_bad_truth.gt.json:2:"), std::string::npos) << what;
  }
}

TEST(Veremi, MissingRequiredFieldNamesTheField) {
  const auto dir = std::filesystem::temp_directory_path() / "vehigan_veremi_missing";
  std::filesystem::create_directories(dir);
  VeremiExport files{dir / "m.json", dir / "m.gt.json"};
  {
    std::ofstream m(files.messages);
    m << R"({"type":3,"sendTime":1.0,"sender":5,"pos":[1,2,0],"acl":[0,0,0],"hed":[1,0,0]})"
      << "\n";  // no "spd"
    std::ofstream gt(files.ground_truth);
    gt << R"({"sender":5,"attackerType":0})" << "\n";
  }
  try {
    read_veremi(files);
    FAIL() << "missing spd should throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("\"spd\""), std::string::npos) << error.what();
  }
  std::filesystem::remove_all(dir);
}

TEST(Veremi, ShortPositionVectorIsRejected) {
  const auto dir = std::filesystem::temp_directory_path() / "vehigan_veremi_shortpos";
  std::filesystem::create_directories(dir);
  VeremiExport files{dir / "m.json", dir / "m.gt.json"};
  {
    std::ofstream m(files.messages);
    m << R"({"type":3,"sendTime":1.0,"sender":5,"pos":[1],)"
      << R"("spd":[3,0,0],"acl":[0,0,0],"hed":[1,0,0]})" << "\n";
    std::ofstream gt(files.ground_truth);
    gt << R"({"sender":5,"attackerType":0})" << "\n";
  }
  EXPECT_THROW(read_veremi(files), std::runtime_error);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace vehigan::data
