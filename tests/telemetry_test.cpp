#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "features/scaler.hpp"
#include "gan/architecture.hpp"
#include "mbds/online.hpp"
#include "nn/layers.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/exporter.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/trace.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace vehigan::telemetry {
namespace {

/// Restores the process-wide telemetry switch on scope exit, so a test that
/// flips it (the overhead guard, the disabled-path tests) cannot leak a
/// disabled registry into later tests.
struct EnabledGuard {
  bool saved = enabled();
  ~EnabledGuard() { set_enabled(saved); }
};

// -------------------------------------------------------------- primitives ---

TEST(Counter, ConcurrentAddsAreExact) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  counter.add(5);
  EXPECT_EQ(counter.value(), kThreads * kPerThread + 5);
  counter.reset();
  EXPECT_EQ(counter.value(), 0U);
}

TEST(Gauge, SetAddAndNegativeValues) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.set(2.5);
  EXPECT_EQ(gauge.value(), 2.5);
  gauge.add(0.25);
  EXPECT_EQ(gauge.value(), 2.75);
  gauge.set(-7.0);
  EXPECT_EQ(gauge.value(), -7.0);
  gauge.reset();
  EXPECT_EQ(gauge.value(), 0.0);
}

TEST(Gauge, SetMaxKeepsTheHighWaterMark) {
  Gauge gauge;
  gauge.set_max(3.0);
  EXPECT_EQ(gauge.value(), 3.0);
  gauge.set_max(1.5);  // lower: no effect
  EXPECT_EQ(gauge.value(), 3.0);
  gauge.set_max(7.25);
  EXPECT_EQ(gauge.value(), 7.25);
  gauge.set(-2.0);  // plain set still overwrites
  gauge.set_max(-5.0);
  EXPECT_EQ(gauge.value(), -2.0);
}

TEST(Gauge, ConcurrentSetMaxConvergesToTheGlobalMax) {
  Gauge gauge;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge, t] {
      for (int i = 0; i < kPerThread; ++i) {
        gauge.set_max(static_cast<double>(t * kPerThread + i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(gauge.value(), static_cast<double>(kThreads * kPerThread - 1));
}

TEST(Histogram, ConcurrentObservationsKeepExactTotals) {
  Histogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  // Dyadic values: every partial sum is exactly representable, so the
  // sharded CAS accumulation must reproduce the total bit-for-bit no matter
  // how the threads interleave.
  static constexpr double kValues[] = {0.5, 0.25, 2.0, 0.0078125};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) hist.observe(kValues[(t + i) % 4]);
    });
  }
  for (auto& t : threads) t.join();
  constexpr std::uint64_t kTotal = std::uint64_t{kThreads} * kPerThread;
  EXPECT_EQ(hist.count(), kTotal);
  EXPECT_DOUBLE_EQ(hist.sum(), (0.5 + 0.25 + 2.0 + 0.0078125) * (kTotal / 4));
  // Each distinct value lands in exactly one bucket, kTotal/4 observations
  // apiece; everything else (including overflow) stays empty.
  std::uint64_t nonzero_buckets = 0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    if (hist.bucket_count(i) == 0) continue;
    ++nonzero_buckets;
    EXPECT_EQ(hist.bucket_count(i), kTotal / 4) << "bucket " << i;
  }
  EXPECT_EQ(nonzero_buckets, 4U);
  EXPECT_EQ(hist.bucket_count(Histogram::kFiniteBuckets), 0U);
}

TEST(Histogram, BucketBoundariesAreConsistentForEveryFiniteBucket) {
  for (std::size_t i = 0; i < Histogram::kFiniteBuckets; ++i) {
    const double lower = Histogram::bucket_lower_bound(i);
    const double upper = Histogram::bucket_upper_bound(i);
    ASSERT_LT(lower, upper) << "bucket " << i;
    // Buckets are half-open [lower, upper): the lower bound belongs to the
    // bucket (bucket 0 owns everything <= its power-of-two base)...
    if (i > 0) {
      EXPECT_EQ(Histogram::bucket_index(lower), i) << "lower of bucket " << i;
    }
    // ...a value just below the upper bound still belongs...
    EXPECT_EQ(Histogram::bucket_index(std::nextafter(upper, 0.0)), i) << "bucket " << i;
    // ...and the upper bound itself starts the next bucket.
    EXPECT_EQ(Histogram::bucket_index(upper), i + 1) << "upper of bucket " << i;
    // Midpoint sanity for the round trip on a non-boundary value.
    const double mid = lower + (upper - lower) / 2.0;
    EXPECT_EQ(Histogram::bucket_index(mid), i) << "mid of bucket " << i;
  }
  EXPECT_EQ(Histogram::bucket_upper_bound(Histogram::kFiniteBuckets),
            std::numeric_limits<double>::infinity());
}

TEST(Histogram, BucketIndexContainsRandomValues) {
  util::Rng rng(99);
  for (int trial = 0; trial < 10'000; ++trial) {
    // Log-uniform across the full finite range plus a margin beyond both
    // ends, so the clamping paths get hit too.
    const double exponent = rng.uniform_f(-34.0F, 10.0F);
    const double v = std::pow(2.0, exponent) * (1.0 + rng.uniform_f(0.0F, 1.0F));
    const std::size_t i = Histogram::bucket_index(v);
    ASSERT_LT(i, Histogram::kBuckets);
    EXPECT_LE(Histogram::bucket_lower_bound(i), v) << "v=" << v;
    EXPECT_LT(v, Histogram::bucket_upper_bound(i)) << "v=" << v;
  }
}

TEST(Histogram, EdgeValuesLandInTerminalBuckets) {
  EXPECT_EQ(Histogram::bucket_index(0.0), 0U);
  EXPECT_EQ(Histogram::bucket_index(-1.0), 0U);
  EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<double>::quiet_NaN()), 0U);
  EXPECT_EQ(Histogram::bucket_index(1e-12), 0U);  // below 2^-30: clamped down
  EXPECT_EQ(Histogram::bucket_index(1e9), Histogram::kFiniteBuckets);
  EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<double>::infinity()),
            Histogram::kFiniteBuckets);
  Histogram hist;
  hist.observe(-3.0);
  hist.observe(std::numeric_limits<double>::quiet_NaN());
  hist.observe(1e9);
  EXPECT_EQ(hist.count(), 3U);  // junk observations still count exactly
  EXPECT_EQ(hist.bucket_count(0), 2U);
  EXPECT_EQ(hist.bucket_count(Histogram::kFiniteBuckets), 1U);
}

TEST(KillSwitch, DisabledPrimitivesRecordNothing) {
  const EnabledGuard guard;
  Counter counter;
  Gauge gauge;
  Histogram hist;
  set_enabled(false);
  counter.add(7);
  gauge.set(1.0);
  hist.observe(0.5);
  EXPECT_EQ(counter.value(), 0U);
  EXPECT_EQ(gauge.value(), 0.0);
  EXPECT_EQ(hist.count(), 0U);
  set_enabled(true);
  counter.add(7);
  EXPECT_EQ(counter.value(), 7U);
}

// ---------------------------------------------------------------- registry ---

TEST(Registry, ResetZeroesInPlaceAndReferencesStayValid) {
  MetricsRegistry reg;
  Counter& c = reg.counter("vehigan_test_total");
  Histogram& h = reg.histogram("vehigan_test_seconds");
  c.add(3);
  h.observe(0.5);
  reg.reset();
  EXPECT_EQ(c.value(), 0U);
  EXPECT_EQ(h.count(), 0U);
  c.add(2);  // the old reference still feeds the same registered metric
  EXPECT_EQ(reg.counter("vehigan_test_total").value(), 2U);
  EXPECT_EQ(&c, &reg.counter("vehigan_test_total"));
}

TEST(Registry, SnapshotIsSortedByNameWithinEachKind) {
  MetricsRegistry reg;
  reg.counter("vehigan_b_total").add(2);
  reg.counter("vehigan_a_total").add(1);
  reg.gauge("vehigan_z_depth").set(9.0);
  reg.gauge("vehigan_m_depth").set(4.0);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2U);
  EXPECT_EQ(snap.counters[0].first, "vehigan_a_total");
  EXPECT_EQ(snap.counters[1].first, "vehigan_b_total");
  ASSERT_EQ(snap.gauges.size(), 2U);
  EXPECT_EQ(snap.gauges[0].first, "vehigan_m_depth");
  EXPECT_EQ(snap.gauges[1].first, "vehigan_z_depth");
}

// --------------------------------------------------------------- exporters ---

/// One registry exercised the same way for every golden test: a counter, a
/// gauge, and a histogram holding 0.5 (bucket upper bound 0.625) and 3.0
/// (bucket upper bound 3.5).
MetricsSnapshot golden_snapshot() {
  static MetricsRegistry reg;
  reg.reset();
  reg.counter("vehigan_test_requests_total").add(3);
  reg.gauge("vehigan_test_queue_depth").set(2.5);
  Histogram& h = reg.histogram("vehigan_test_latency_seconds");
  h.observe(0.5);
  h.observe(3.0);
  return reg.snapshot();
}

TEST(Exporter, PrometheusGolden) {
  const std::string expected =
      "# TYPE vehigan_test_requests_total counter\n"
      "vehigan_test_requests_total 3\n"
      "# TYPE vehigan_test_queue_depth gauge\n"
      "vehigan_test_queue_depth 2.5\n"
      "# TYPE vehigan_test_latency_seconds histogram\n"
      "vehigan_test_latency_seconds_bucket{le=\"0.625\"} 1\n"
      "vehigan_test_latency_seconds_bucket{le=\"3.5\"} 2\n"
      "vehigan_test_latency_seconds_bucket{le=\"+Inf\"} 2\n"
      "vehigan_test_latency_seconds_sum 3.5\n"
      "vehigan_test_latency_seconds_count 2\n";
  EXPECT_EQ(to_prometheus(golden_snapshot()), expected);
}

TEST(Exporter, JsonGolden) {
  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"vehigan_test_requests_total\": 3\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"vehigan_test_queue_depth\": 2.5\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"vehigan_test_latency_seconds\": {\"count\": 2, \"sum\": 3.5, \"buckets\": "
      "[{\"le\": \"0.625\", \"count\": 1}, {\"le\": \"3.5\", \"count\": 1}]}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(to_json(golden_snapshot()), expected);
}

TEST(Exporter, CsvGoldenWithCumulativeBuckets) {
  const std::string expected =
      "metric,kind,le,value\n"
      "vehigan_test_requests_total,counter,,3\n"
      "vehigan_test_queue_depth,gauge,,2.5\n"
      "vehigan_test_latency_seconds,bucket,0.625,1\n"
      "vehigan_test_latency_seconds,bucket,3.5,2\n"
      "vehigan_test_latency_seconds,sum,,3.5\n"
      "vehigan_test_latency_seconds,count,,2\n";
  EXPECT_EQ(to_csv(golden_snapshot()), expected);
}

TEST(Exporter, EmptySnapshotRendersValidSkeletons) {
  const MetricsSnapshot empty;
  EXPECT_EQ(to_prometheus(empty), "");
  EXPECT_EQ(to_json(empty), "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}\n}\n");
  EXPECT_EQ(to_csv(empty), "metric,kind,le,value\n");
}

TEST(Exporter, OverflowObservationEmitsSingleInfBucket) {
  MetricsRegistry reg;
  reg.histogram("vehigan_test_slow_seconds").observe(1e9);
  const std::string text = to_prometheus(reg.snapshot());
  // The overflow observation IS the +Inf bucket; the exporter must not add a
  // second one.
  EXPECT_NE(text.find("vehigan_test_slow_seconds_bucket{le=\"+Inf\"} 1\n"), std::string::npos);
  EXPECT_EQ(text.find("le=\"+Inf\""), text.rfind("le=\"+Inf\""));
}

TEST(Exporter, FormatDoubleIsShortestRoundTrip) {
  EXPECT_EQ(format_double(0.1), "0.1");
  EXPECT_EQ(format_double(2.5), "2.5");
  EXPECT_EQ(format_double(3.0), "3");
  EXPECT_EQ(format_double(-0.625), "-0.625");
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "+Inf");
  EXPECT_EQ(format_double(-std::numeric_limits<double>::infinity()), "-Inf");
  EXPECT_EQ(format_double(std::numeric_limits<double>::quiet_NaN()), "NaN");
  // Awkward doubles must parse back to the identical bit pattern.
  for (const double v : {1.0 / 3.0, 1e-300, 6.62607015e-34, 123456789.123456789}) {
    EXPECT_EQ(std::strtod(format_double(v).c_str(), nullptr), v) << v;
  }
}

TEST(Exporter, WriteFileAtomicLeavesNoTempBehind) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "vehigan_telemetry_test";
  std::filesystem::remove_all(dir);
  const std::filesystem::path target = dir / "snap.prom";
  write_file_atomic(target, "vehigan_test_total 1\n");
  std::ifstream in(target);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "vehigan_test_total 1\n");
  EXPECT_FALSE(std::filesystem::exists(target.string() + ".tmp"));
  write_file_atomic(target, "vehigan_test_total 2\n");  // overwrite is atomic too
  std::ifstream again(target);
  std::stringstream content2;
  content2 << again.rdbuf();
  EXPECT_EQ(content2.str(), "vehigan_test_total 2\n");
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------------------- spans ---

TEST(ScopedSpan, NestingTracksDepthAndPath) {
  MetricsRegistry reg;
  Histogram& outer_h = reg.histogram("vehigan_test_outer_seconds");
  Histogram& inner_h = reg.histogram("vehigan_test_inner_seconds");
  EXPECT_EQ(ScopedSpan::depth(), 0U);
  {
    ScopedSpan outer(outer_h, "outer");
    EXPECT_EQ(ScopedSpan::depth(), 1U);
    EXPECT_EQ(ScopedSpan::path(), "outer");
    {
      ScopedSpan inner(inner_h, "inner");
      EXPECT_EQ(ScopedSpan::depth(), 2U);
      EXPECT_EQ(ScopedSpan::path(), "outer/inner");
    }
    EXPECT_EQ(ScopedSpan::depth(), 1U);
    EXPECT_EQ(inner_h.count(), 1U);
  }
  EXPECT_EQ(ScopedSpan::depth(), 0U);
  EXPECT_EQ(outer_h.count(), 1U);
  EXPECT_GE(outer_h.sum(), 0.0);
}

TEST(ScopedSpan, StopIsIdempotentAndReturnsElapsed) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("vehigan_test_span_seconds");
  ScopedSpan span(h, "once");
  const double first = span.stop();
  EXPECT_GE(first, 0.0);
  EXPECT_EQ(span.stop(), 0.0);  // second stop: no-op
  EXPECT_EQ(h.count(), 1U);     // destructor must not double-record
}

TEST(ScopedSpan, ExceptionUnwindRecordsAndPopsTheStack) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("vehigan_test_boom_seconds");
  try {
    ScopedSpan span(h, "boom");
    EXPECT_EQ(ScopedSpan::depth(), 1U);
    throw std::runtime_error("mid-span failure");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(h.count(), 1U);  // unwind recorded the span like a normal exit
  EXPECT_EQ(ScopedSpan::depth(), 0U);
}

TEST(ScopedSpan, MoveTransfersRecordingToTheSurvivor) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("vehigan_test_move_seconds");
  {
    ScopedSpan a(h, "moved");
    ScopedSpan b(std::move(a));
    EXPECT_EQ(ScopedSpan::depth(), 1U);  // still one open span
  }
  EXPECT_EQ(h.count(), 1U);  // exactly one record despite two destructors
  EXPECT_EQ(ScopedSpan::depth(), 0U);
}

TEST(ScopedSpan, DisabledSwitchMakesSpansInert) {
  const EnabledGuard guard;
  MetricsRegistry reg;
  Histogram& h = reg.histogram("vehigan_test_off_seconds");
  set_enabled(false);
  {
    ScopedSpan span(h, "off");
    EXPECT_EQ(ScopedSpan::depth(), 0U);  // never pushed
    EXPECT_EQ(span.stop(), 0.0);
  }
  EXPECT_EQ(h.count(), 0U);
}

TEST(Tracer, SpanResolvesHistogramByNameInItsRegistry) {
  MetricsRegistry reg;
  Tracer tracer(reg);
  { auto span = tracer.span("vehigan_test_traced_seconds"); }
  EXPECT_EQ(reg.histogram("vehigan_test_traced_seconds").count(), 1U);
  EXPECT_EQ(&tracer.registry(), &reg);
}

// ---------------------------------------------- pipeline flow + overhead ---

features::MinMaxScaler identity_scaler(std::size_t width) {
  features::Series s;
  s.width = width;
  for (std::size_t c = 0; c < width; ++c) s.values.push_back(0.0F);
  for (std::size_t c = 0; c < width; ++c) s.values.push_back(1.0F);
  features::MinMaxScaler scaler;
  scaler.fit({s});
  return scaler;
}

/// Small ensemble of real paper-architecture critics with random weights —
/// representative batched-inference work for the overhead guard.
std::shared_ptr<mbds::VehiGan> grid_ensemble(std::size_t m, double threshold) {
  std::vector<std::shared_ptr<mbds::WganDetector>> members;
  util::Rng rng(2024);
  for (std::size_t i = 0; i < m; ++i) {
    gan::WganConfig config;
    config.id = static_cast<int>(i);
    config.layers = 6 + static_cast<int>(i % 3);
    gan::TrainedWgan model;
    model.config = config;
    model.discriminator = gan::build_discriminator(config, rng);
    auto det = std::make_shared<mbds::WganDetector>(std::move(model));
    det->set_calibration(0.0, 1.0);
    det->set_threshold(threshold);
    members.push_back(std::move(det));
  }
  return std::make_shared<mbds::VehiGan>(std::move(members), m, 7);
}

sim::Bsm cruise_msg(std::uint32_t id, double t) {
  sim::Bsm m;
  m.vehicle_id = id;
  m.time = t;
  m.x = 10.0 * t;
  m.y = static_cast<double>(id);
  m.speed = 10.0;
  m.heading = 0.0;
  return m;
}

/// `ticks[t]` = one 100 ms tick of BSMs from `vehicles` senders.
std::vector<std::vector<sim::Bsm>> make_ticks(std::size_t vehicles, std::size_t ticks) {
  std::vector<std::vector<sim::Bsm>> out(ticks);
  for (std::size_t t = 0; t < ticks; ++t) {
    out[t].reserve(vehicles);
    for (std::size_t v = 0; v < vehicles; ++v) {
      out[t].push_back(cruise_msg(static_cast<std::uint32_t>(v + 1), 0.1 * t));
    }
  }
  return out;
}

TEST(PipelineFlow, IngestFeedsTheGlobalRegistry) {
  auto& reg = MetricsRegistry::global();
  const std::uint64_t messages_before = reg.counter("vehigan_mbds_messages_total").value();
  const std::uint64_t windows_before = reg.counter("vehigan_mbds_windows_scored_total").value();
  const std::uint64_t ingest_before = reg.histogram("vehigan_mbds_ingest_seconds").count();
  const std::uint64_t batch_before = reg.histogram("vehigan_mbds_ingest_batch_seconds").count();

  mbds::OnlineMbds monitor(1, grid_ensemble(2, 1e9), identity_scaler(12));
  const auto ticks = make_ticks(/*vehicles=*/3, /*ticks=*/12);
  // First 6 ticks message by message, the rest batched: both entry points
  // must flow into the same registry.
  std::size_t single = 0;
  for (std::size_t t = 0; t < 6; ++t) {
    for (const sim::Bsm& m : ticks[t]) {
      (void)monitor.ingest(m);
      ++single;
    }
  }
  std::size_t batched = 0;
  for (std::size_t t = 6; t < ticks.size(); ++t) {
    (void)monitor.ingest_batch(ticks[t]);
    batched += ticks[t].size();
  }

  EXPECT_EQ(reg.counter("vehigan_mbds_messages_total").value() - messages_before,
            single + batched);
  EXPECT_EQ(reg.histogram("vehigan_mbds_ingest_seconds").count() - ingest_before, single);
  EXPECT_EQ(reg.histogram("vehigan_mbds_ingest_batch_seconds").count() - batch_before, 6U);
  // 12 ticks x 3 vehicles with a 10-step window: every message from tick 11
  // onward (per vehicle) completes a window.
  EXPECT_GT(reg.counter("vehigan_mbds_windows_scored_total").value() - windows_before, 0U);
  EXPECT_EQ(reg.gauge("vehigan_mbds_tracked_vehicles").value(), 3.0);

  // The whole flow must be visible in one exported snapshot.
  const std::string text = to_prometheus(reg.snapshot());
  EXPECT_NE(text.find("vehigan_mbds_ingest_seconds_bucket"), std::string::npos);
  EXPECT_NE(text.find("vehigan_mbds_messages_total"), std::string::npos);
}

TEST(OverheadGuard, InstrumentationCostsUnderFivePercentOnIngestBatch) {
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  GTEST_SKIP() << "timing is meaningless under a sanitizer";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
  GTEST_SKIP() << "timing is meaningless under a sanitizer";
#endif
#endif
  const EnabledGuard guard;
  // Enough real critic work per trial (8 vehicles x 2 six-plus-layer
  // critics, a window completed per vehicle per tick after warmup) that the
  // handful of clock stamps and relaxed atomics per tick is lost in it.
  mbds::OnlineMbds monitor(1, grid_ensemble(2, 1e9), identity_scaler(12));
  const auto ticks = make_ticks(/*vehicles=*/8, /*ticks=*/40);

  const auto run_once = [&] {
    for (const auto& tick : ticks) (void)monitor.ingest_batch(tick);
  };
  // The instrumented variant carries the full observability stack: metrics,
  // flight-recorder events (on whenever telemetry is), per-message causal
  // tracing at the production sampling rate of 1-in-64 senders, and the
  // sampling CPU profiler ticking at the default 99 Hz.
  const auto timed = [&](bool instrumented) {
    set_enabled(instrumented);
    if (instrumented) {
      TraceRecorder::global().enable(/*sample_every=*/64);
      (void)Profiler::global().start(/*hz=*/99);
    } else {
      TraceRecorder::global().disable();
      Profiler::global().stop();
    }
    double best = std::numeric_limits<double>::infinity();
    for (int trial = 0; trial < 7; ++trial) {
      util::Stopwatch sw;
      run_once();
      best = std::min(best, sw.elapsed_seconds());
    }
    return best;
  };

  run_once();  // warm caches + fill every vehicle window before timing
  // Interleave a spare round so neither variant benefits from running last.
  timed(false);
  const double instrumented = timed(true);
  const double baseline = timed(false);
  set_enabled(true);
  TraceRecorder::global().disable();
  TraceRecorder::global().clear();
  Profiler::global().stop();
  Profiler::global().clear();

  ASSERT_GT(baseline, 0.0);
  const double overhead = instrumented / baseline - 1.0;
  // <5% is the acceptance bar; the epsilon forgives timer granularity on a
  // noisy host without masking a real regression.
  EXPECT_LE(instrumented, baseline * 1.05 + 1e-4)
      << "instrumented=" << instrumented << "s baseline=" << baseline
      << "s overhead=" << overhead * 100.0 << "%";
}

}  // namespace
}  // namespace vehigan::telemetry
