#include "test_utils.hpp"

#include "util/math.hpp"

namespace vehigan::testing {

GradCheckResult gradient_check(nn::Sequential& model, nn::Tensor input, util::Rng& rng,
                               float h) {
  // Fixed random loss weights.
  nn::Tensor probe = model.forward(input);
  nn::Tensor loss_weights(probe.shape());
  fill_uniform(loss_weights, rng, -1.0F, 1.0F);

  auto loss_of = [&](const nn::Tensor& x) -> double {
    const nn::Tensor y = model.forward(x);
    double loss = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
      loss += static_cast<double>(loss_weights[i]) * y[i];
    }
    return loss;
  };

  // Analytic gradients.
  model.zero_grad();
  (void)model.forward(input);
  const nn::Tensor input_grad = model.backward(loss_weights);
  // Copy parameter grads before numeric probing mutates caches.
  std::vector<std::vector<float>> param_grads;
  for (auto& p : model.parameters()) param_grads.push_back(*p.grads);

  GradCheckResult result;

  std::vector<double> input_errors;
  for (std::size_t i = 0; i < input.size(); ++i) {
    nn::Tensor plus = input;
    nn::Tensor minus = input;
    plus[i] += h;
    minus[i] -= h;
    const double numeric = (loss_of(plus) - loss_of(minus)) / (2.0 * h);
    input_errors.push_back(rel_error(input_grad[i], numeric));
  }

  std::vector<double> param_errors;
  auto params = model.parameters();
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    auto& values = *params[pi].values;
    for (std::size_t i = 0; i < values.size(); ++i) {
      const float saved = values[i];
      values[i] = saved + h;
      const double l_plus = loss_of(input);
      values[i] = saved - h;
      const double l_minus = loss_of(input);
      values[i] = saved;
      const double numeric = (l_plus - l_minus) / (2.0 * h);
      param_errors.push_back(rel_error(param_grads[pi][i], numeric));
    }
  }

  auto p95 = [](std::vector<double> errors) {
    if (errors.empty()) return 0.0;
    return vehigan::util::percentile(std::move(errors), 95.0);
  };
  result.p95_input_error = p95(input_errors);
  result.p95_param_error = p95(param_errors);
  for (double e : input_errors) result.max_input_error = std::max(result.max_input_error, e);
  for (double e : param_errors) result.max_param_error = std::max(result.max_param_error, e);
  return result;
}

}  // namespace vehigan::testing
