#include <gtest/gtest.h>

#include "metrics/confusion.hpp"
#include "metrics/roc.hpp"
#include "util/rng.hpp"

namespace vehigan::metrics {
namespace {

// ----------------------------------------------------------- confusion -----

TEST(ConfusionMatrix, RatesFromCounts) {
  ConfusionMatrix cm;
  cm.tp = 8;
  cm.fn = 2;
  cm.tn = 85;
  cm.fp = 5;
  EXPECT_DOUBLE_EQ(cm.tpr(), 0.8);
  EXPECT_DOUBLE_EQ(cm.fnr(), 0.2);
  EXPECT_NEAR(cm.fpr(), 5.0 / 90.0, 1e-12);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.93);
  EXPECT_NEAR(cm.precision(), 8.0 / 13.0, 1e-12);
}

TEST(ConfusionMatrix, EmptyClassesGiveZeroRates) {
  ConfusionMatrix cm;
  EXPECT_DOUBLE_EQ(cm.tpr(), 0.0);
  EXPECT_DOUBLE_EQ(cm.fpr(), 0.0);
  EXPECT_DOUBLE_EQ(cm.fnr(), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(), 0.0);
}

TEST(ConfusionMatrix, AddRoutesOutcomes) {
  ConfusionMatrix cm;
  cm.add(true, true);    // TP
  cm.add(true, false);   // FN
  cm.add(false, true);   // FP
  cm.add(false, false);  // TN
  EXPECT_EQ(cm.tp, 1U);
  EXPECT_EQ(cm.fn, 1U);
  EXPECT_EQ(cm.fp, 1U);
  EXPECT_EQ(cm.tn, 1U);
}

TEST(ConfusionAtThreshold, UsesStrictGreaterThan) {
  const std::vector<float> benign{0.1F, 0.5F, 0.5F};
  const std::vector<float> attack{0.5F, 0.9F};
  const ConfusionMatrix cm = confusion_at_threshold(benign, attack, 0.5);
  // Scores exactly at the threshold are NOT flagged (s > tau rule).
  EXPECT_EQ(cm.fp, 0U);
  EXPECT_EQ(cm.tn, 3U);
  EXPECT_EQ(cm.tp, 1U);
  EXPECT_EQ(cm.fn, 1U);
}

// ----------------------------------------------------------------- roc -----

TEST(Auroc, PerfectSeparationIsOne) {
  const std::vector<float> neg{0.0F, 0.1F, 0.2F};
  const std::vector<float> pos{0.9F, 1.0F};
  EXPECT_DOUBLE_EQ(auroc(neg, pos), 1.0);
}

TEST(Auroc, InvertedSeparationIsZero) {
  const std::vector<float> neg{0.9F, 1.0F};
  const std::vector<float> pos{0.0F, 0.1F};
  EXPECT_DOUBLE_EQ(auroc(neg, pos), 0.0);
}

TEST(Auroc, IdenticalDistributionsGiveHalf) {
  const std::vector<float> neg{0.5F, 0.5F, 0.5F};
  const std::vector<float> pos{0.5F, 0.5F};
  EXPECT_DOUBLE_EQ(auroc(neg, pos), 0.5);
}

TEST(Auroc, HandlesPartialOverlapExactly) {
  // neg = {1, 3}, pos = {2, 4}: P(pos>neg) pairs: (2>1), (4>1), (4>3) = 3/4.
  const std::vector<float> neg{1.0F, 3.0F};
  const std::vector<float> pos{2.0F, 4.0F};
  EXPECT_DOUBLE_EQ(auroc(neg, pos), 0.75);
}

TEST(Auroc, TieGetsHalfCredit) {
  const std::vector<float> neg{1.0F};
  const std::vector<float> pos{1.0F};
  EXPECT_DOUBLE_EQ(auroc(neg, pos), 0.5);
}

TEST(Auroc, EmptyClassReturnsChance) {
  const std::vector<float> some{1.0F, 2.0F};
  EXPECT_DOUBLE_EQ(auroc({}, some), 0.5);
  EXPECT_DOUBLE_EQ(auroc(some, {}), 0.5);
}

TEST(Auroc, AgreesWithBruteForcePairCountingOnRandomData) {
  util::Rng rng(77);
  std::vector<float> neg(97), pos(83);
  for (auto& v : neg) v = static_cast<float>(rng.uniform_int(0, 20));  // force ties
  for (auto& v : pos) v = static_cast<float>(rng.uniform_int(5, 25));
  double wins = 0.0;
  for (float p : pos) {
    for (float n : neg) {
      if (p > n) wins += 1.0;
      else if (p == n) wins += 0.5;
    }
  }
  const double brute = wins / (static_cast<double>(neg.size()) * pos.size());
  EXPECT_NEAR(auroc(neg, pos), brute, 1e-12);
}

TEST(RocCurve, StartsAtOriginEndsAtOneOneAndIsMonotone) {
  util::Rng rng(5);
  std::vector<float> neg(50), pos(50);
  for (auto& v : neg) v = rng.uniform_f(0.0F, 1.0F);
  for (auto& v : pos) v = rng.uniform_f(0.3F, 1.3F);
  const auto curve = roc_curve(neg, pos);
  ASSERT_GE(curve.size(), 2U);
  EXPECT_DOUBLE_EQ(curve.front().fpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().tpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().fpr, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().tpr, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].fpr, curve[i - 1].fpr);
    EXPECT_GE(curve[i].tpr, curve[i - 1].tpr);
    EXPECT_LE(curve[i].threshold, curve[i - 1].threshold);
  }
}

TEST(RocCurve, TrapezoidalAreaMatchesAuroc) {
  util::Rng rng(6);
  std::vector<float> neg(200), pos(200);
  for (auto& v : neg) v = rng.normal_f(0.0F, 1.0F);
  for (auto& v : pos) v = rng.normal_f(1.0F, 1.0F);
  const auto curve = roc_curve(neg, pos);
  double area = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    area += (curve[i].fpr - curve[i - 1].fpr) * (curve[i].tpr + curve[i - 1].tpr) / 2.0;
  }
  EXPECT_NEAR(area, auroc(neg, pos), 1e-9);
}

TEST(TprAtFpr, PerfectSeparationDetectsEverything) {
  const std::vector<float> neg{0.1F, 0.2F, 0.3F};
  const std::vector<float> pos{0.9F, 1.0F};
  EXPECT_DOUBLE_EQ(tpr_at_fpr(neg, pos, 0.01), 1.0);
}

TEST(TprAtFpr, ThresholdRespectsBudget) {
  // 100 negatives 0..99; budget 5% -> threshold at the 94th value (index
  // 100-1-5), positives above 94 are detected.
  std::vector<float> neg(100), pos{90.0F, 95.0F, 99.0F};
  for (int i = 0; i < 100; ++i) neg[static_cast<std::size_t>(i)] = static_cast<float>(i);
  EXPECT_NEAR(tpr_at_fpr(neg, pos, 0.05), 2.0 / 3.0, 1e-12);
}

TEST(TprAtFpr, ZeroBudgetUsesMaxNegative) {
  std::vector<float> neg{1.0F, 2.0F, 3.0F};
  std::vector<float> pos{2.5F, 3.5F};
  EXPECT_DOUBLE_EQ(tpr_at_fpr(neg, pos, 0.0), 0.5);
}

TEST(TprAtFpr, EmptyClassesGiveZero) {
  const std::vector<float> some{1.0F};
  EXPECT_DOUBLE_EQ(tpr_at_fpr({}, some, 0.01), 0.0);
  EXPECT_DOUBLE_EQ(tpr_at_fpr(some, {}, 0.01), 0.0);
}

TEST(Auprc, PerfectDetectorScoresOne) {
  const std::vector<float> neg{0.0F, 0.1F};
  const std::vector<float> pos{0.8F, 0.9F};
  EXPECT_DOUBLE_EQ(auprc(neg, pos), 1.0);
}

TEST(Auprc, RandomScoresApproachPrevalence) {
  util::Rng rng(8);
  std::vector<float> neg(4000), pos(1000);
  for (auto& v : neg) v = rng.uniform_f();
  for (auto& v : pos) v = rng.uniform_f();
  // Prevalence = 0.2; random ranking gives AP near prevalence.
  EXPECT_NEAR(auprc(neg, pos), 0.2, 0.05);
}

}  // namespace
}  // namespace vehigan::metrics
