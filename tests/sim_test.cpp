#include <gtest/gtest.h>

#include <filesystem>

#include "sim/bsm.hpp"
#include "sim/idm.hpp"
#include "sim/path.hpp"
#include "sim/road_network.hpp"
#include "sim/traffic_sim.hpp"
#include "util/math.hpp"

namespace vehigan::sim {
namespace {

using util::kPi;

// ---------------------------------------------------------------- path -----

TEST(PathSegment, StraightLinePose) {
  PathSegment seg{/*x0=*/1.0, /*y0=*/2.0, /*heading0=*/0.0, /*length=*/10.0, /*curvature=*/0.0};
  const Pose p = seg.pose_at(4.0);
  EXPECT_DOUBLE_EQ(p.x, 5.0);
  EXPECT_DOUBLE_EQ(p.y, 2.0);
  EXPECT_DOUBLE_EQ(p.heading, 0.0);
  EXPECT_DOUBLE_EQ(p.curvature, 0.0);
}

TEST(PathSegment, QuarterLeftTurnEndsRotated90) {
  const double r = 8.0;
  PathSegment arc{0.0, 0.0, 0.0, r * kPi / 2.0, 1.0 / r};
  const Pose end = arc.end_pose();
  EXPECT_NEAR(end.heading, kPi / 2.0, 1e-9);
  // A left quarter turn from heading 0 ends at (r, r).
  EXPECT_NEAR(end.x, r, 1e-9);
  EXPECT_NEAR(end.y, r, 1e-9);
}

TEST(PathSegment, RightTurnHasNegativeCurvatureEffect) {
  const double r = 5.0;
  PathSegment arc{0.0, 0.0, kPi / 2.0, r * kPi / 2.0, -1.0 / r};
  const Pose end = arc.end_pose();
  EXPECT_NEAR(end.heading, 0.0, 1e-9);
  EXPECT_NEAR(end.x, r, 1e-9);
  EXPECT_NEAR(end.y, r, 1e-9);
}

TEST(Path, PoseLookupMatchesSegmentChaining) {
  PathSegment s1{0, 0, 0, 10.0, 0.0};
  const Pose mid = s1.end_pose();
  PathSegment s2{mid.x, mid.y, mid.heading, 8.0 * kPi / 2.0, 1.0 / 8.0};
  Path path({s1, s2});
  EXPECT_DOUBLE_EQ(path.total_length(), 10.0 + 8.0 * kPi / 2.0);
  const Pose p = path.pose_at(10.0 + 8.0 * kPi / 4.0);  // halfway through the arc
  EXPECT_NEAR(p.heading, kPi / 4.0, 1e-9);
}

TEST(Path, HeadingIsContinuousAcrossSegments) {
  PathSegment s1{0, 0, 0, 20.0, 0.0};
  const Pose end1 = s1.end_pose();
  PathSegment arc{end1.x, end1.y, end1.heading, 8.0 * kPi / 2.0, 1.0 / 8.0};
  Path path({s1, arc});
  const double eps = 1e-6;
  const Pose before = path.pose_at(20.0 - eps);
  const Pose after = path.pose_at(20.0 + eps);
  EXPECT_NEAR(util::angle_diff(after.heading, before.heading), 0.0, 1e-4);
  EXPECT_NEAR(after.x, before.x, 1e-4);
  EXPECT_NEAR(after.y, before.y, 1e-4);
}

TEST(Path, SafeSpeedDropsBeforeACurve) {
  PathSegment s1{0, 0, 0, 100.0, 0.0};
  const Pose e = s1.end_pose();
  PathSegment arc{e.x, e.y, e.heading, 8.0 * kPi / 2.0, 1.0 / 8.0};
  Path path({s1, arc});
  const double road_limit = 20.0;
  const double far = path.safe_speed_at(0.0, road_limit, 2.0, 25.0);
  const double near = path.safe_speed_at(95.0, road_limit, 2.0, 25.0);
  EXPECT_DOUBLE_EQ(far, road_limit);
  EXPECT_NEAR(near, std::sqrt(2.0 * 8.0), 1e-9);  // sqrt(a_lat * r)
}

TEST(Path, PoseClampsOutOfRangeArcLength) {
  Path path({PathSegment{0, 0, 0, 10.0, 0.0}});
  EXPECT_DOUBLE_EQ(path.pose_at(-5.0).x, 0.0);
  EXPECT_DOUBLE_EQ(path.pose_at(50.0).x, 10.0);
}

// ---------------------------------------------------------------- idm ------

TEST(Idm, FreeRoadAcceleratesTowardDesiredSpeed) {
  IdmParams p;
  const double a = idm_acceleration(p, 5.0, 15.0, std::numeric_limits<double>::infinity(), 0.0);
  EXPECT_GT(a, 0.0);
  EXPECT_LE(a, p.a_max);
}

TEST(Idm, AtDesiredSpeedAccelerationIsZeroish) {
  IdmParams p;
  const double a = idm_acceleration(p, 15.0, 15.0, std::numeric_limits<double>::infinity(), 0.0);
  EXPECT_NEAR(a, 0.0, 1e-9);
}

TEST(Idm, TailgatingCausesBraking) {
  IdmParams p;
  // Close gap, closing fast.
  const double a = idm_acceleration(p, 15.0, 15.0, 3.0, 5.0);
  EXPECT_LT(a, -2.0);
}

TEST(Idm, LargerGapBrakesLess) {
  IdmParams p;
  const double tight = idm_acceleration(p, 12.0, 15.0, 5.0, 2.0);
  const double loose = idm_acceleration(p, 12.0, 15.0, 50.0, 2.0);
  EXPECT_LT(tight, loose);
}

// ------------------------------------------------------------- network -----

TEST(RoadNetwork, RouteIsAtLeastRequestedLength) {
  RoadNetwork network(RoadNetworkConfig{});
  util::Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    const Route route = network.random_route(rng, 800.0);
    EXPECT_GE(route.path.total_length(), 800.0);
    EXPECT_GE(route.speed_limit, RoadNetworkConfig{}.min_speed_limit);
    EXPECT_LE(route.speed_limit, RoadNetworkConfig{}.max_speed_limit);
  }
}

TEST(RoadNetwork, RouteGeometryIsContinuous) {
  RoadNetwork network(RoadNetworkConfig{});
  util::Rng rng(11);
  const Route route = network.random_route(rng, 1500.0);
  // Sample densely: consecutive poses must be close in position and heading.
  const double step = 0.5;
  Pose prev = route.path.pose_at(0.0);
  for (double s = step; s < route.path.total_length(); s += step) {
    const Pose cur = route.path.pose_at(s);
    const double dist = std::hypot(cur.x - prev.x, cur.y - prev.y);
    EXPECT_NEAR(dist, step, 0.01) << "discontinuity at s=" << s;
    EXPECT_LT(std::abs(util::angle_diff(cur.heading, prev.heading)), 0.2);
    prev = cur;
  }
}

// ---------------------------------------------------------- traffic sim ----

TrafficSimConfig small_sim() {
  TrafficSimConfig cfg;
  cfg.duration_s = 30.0;
  cfg.num_platoons = 3;
  cfg.vehicles_per_platoon = 3;
  cfg.seed = 77;
  return cfg;
}

TEST(TrafficSim, ProducesTracesForAllVehicles) {
  const BsmDataset data = TrafficSimulator(small_sim()).run();
  EXPECT_EQ(data.traces.size(), 9U);
  EXPECT_GT(data.total_messages(), 1000U);
}

TEST(TrafficSim, IsDeterministicGivenSeed) {
  const BsmDataset a = TrafficSimulator(small_sim()).run();
  const BsmDataset b = TrafficSimulator(small_sim()).run();
  ASSERT_EQ(a.traces.size(), b.traces.size());
  for (std::size_t i = 0; i < a.traces.size(); ++i) {
    ASSERT_EQ(a.traces[i].messages.size(), b.traces[i].messages.size());
    for (std::size_t j = 0; j < a.traces[i].messages.size(); ++j) {
      EXPECT_DOUBLE_EQ(a.traces[i].messages[j].x, b.traces[i].messages[j].x);
      EXPECT_DOUBLE_EQ(a.traces[i].messages[j].speed, b.traces[i].messages[j].speed);
    }
  }
}

TEST(TrafficSim, BsmCadenceIsTenHertz) {
  const BsmDataset data = TrafficSimulator(small_sim()).run();
  for (const auto& trace : data.traces) {
    for (std::size_t j = 1; j < trace.messages.size(); ++j) {
      EXPECT_NEAR(trace.messages[j].time - trace.messages[j - 1].time, 0.1, 1e-9);
    }
  }
}

TEST(TrafficSim, KinematicsAreSelfConsistentUpToNoise) {
  auto cfg = small_sim();
  cfg.noise = SensorNoiseModel{0, 0, 0, 0, 0};  // disable noise for this check
  const BsmDataset data = TrafficSimulator(cfg).run();
  std::size_t checked = 0;
  for (const auto& trace : data.traces) {
    for (std::size_t j = 1; j < trace.messages.size(); ++j) {
      const Bsm& prev = trace.messages[j - 1];
      const Bsm& cur = trace.messages[j];
      const double dx = cur.x - prev.x;
      const double dy = cur.y - prev.y;
      // Position increments must match speed*heading (midpoint accuracy).
      EXPECT_NEAR(dx, cur.speed * std::cos(cur.heading) * 0.1, 0.12);
      EXPECT_NEAR(dy, cur.speed * std::sin(cur.heading) * 0.1, 0.12);
      // Speed change must match reported acceleration.
      EXPECT_NEAR(cur.speed - prev.speed, cur.accel * 0.1, 0.08);
      ++checked;
    }
  }
  EXPECT_GT(checked, 500U);
}

TEST(TrafficSim, SpeedsStayNonNegativeAndBounded) {
  const BsmDataset data = TrafficSimulator(small_sim()).run();
  for (const auto& trace : data.traces) {
    for (const auto& m : trace.messages) {
      EXPECT_GE(m.speed, 0.0);
      EXPECT_LT(m.speed, 25.0);  // urban limits + jitter + noise
    }
  }
}

TEST(TrafficSim, FollowersDoNotPassLeaders) {
  auto cfg = small_sim();
  cfg.duration_s = 60.0;
  cfg.noise = SensorNoiseModel{0, 0, 0, 0, 0};
  const BsmDataset data = TrafficSimulator(cfg).run();
  // Vehicles are numbered per platoon in spawn order: leader first. Within a
  // platoon, positions along the shared route must stay ordered; we verify
  // via pairwise distance: consecutive vehicles never collide (distance >
  // ~1 vehicle length at equal timestamps).
  for (std::size_t p = 0; p < 3; ++p) {
    const auto& lead = data.traces[p * 3];
    const auto& follow = data.traces[p * 3 + 1];
    for (const auto& fm : follow.messages) {
      // Find the leader message at the same timestamp.
      for (const auto& lm : lead.messages) {
        if (std::abs(lm.time - fm.time) < 1e-9) {
          const double dist = std::hypot(lm.x - fm.x, lm.y - fm.y);
          EXPECT_GT(dist, 1.0) << "collision at t=" << fm.time;
          break;
        }
      }
    }
  }
}

TEST(SensorNoise, PerturbsEveryFieldButKeepsSpeedNonNegative) {
  SensorNoiseModel noise;
  util::Rng rng(3);
  Bsm truth;
  truth.speed = 0.01;
  truth.heading = 0.1;
  const Bsm noisy = noise.apply(truth, rng);
  EXPECT_GE(noisy.speed, 0.0);
  EXPECT_GE(noisy.heading, 0.0);
  EXPECT_LT(noisy.heading, 2 * kPi);
}

// ----------------------------------------------------------------- csv -----

TEST(BsmCsv, RoundTripsDataset) {
  auto cfg = small_sim();
  cfg.duration_s = 5.0;
  const BsmDataset data = TrafficSimulator(cfg).run();
  const auto path = std::filesystem::temp_directory_path() / "vehigan_bsm_test.csv";
  write_bsm_csv(data, path);
  const BsmDataset loaded = read_bsm_csv(path);
  ASSERT_EQ(loaded.traces.size(), data.traces.size());
  EXPECT_EQ(loaded.total_messages(), data.total_messages());
  // Spot-check one trace end to end (read groups by id, ordered by id).
  const auto& orig = data.traces.front();
  const VehicleTrace* match = nullptr;
  for (const auto& t : loaded.traces) {
    if (t.vehicle_id == orig.vehicle_id) match = &t;
  }
  ASSERT_NE(match, nullptr);
  ASSERT_EQ(match->messages.size(), orig.messages.size());
  for (std::size_t j = 0; j < orig.messages.size(); ++j) {
    EXPECT_DOUBLE_EQ(match->messages[j].x, orig.messages[j].x);
    EXPECT_DOUBLE_EQ(match->messages[j].yaw_rate, orig.messages[j].yaw_rate);
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace vehigan::sim
