// Tests for the model-provenance chain: gan::content_hash (checkpoint
// identity), WganDetector hash fill-in, VehiGan::provenance_hash,
// the ModelProvenance registry, EnsembleHealth, and the "models" /
// "ensemble" statusz sections they register.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "gan/model_store.hpp"
#include "gan/wgan.hpp"
#include "mbds/ensemble.hpp"
#include "mbds/ensemble_health.hpp"
#include "mbds/provenance.hpp"
#include "mbds/wgan_detector.hpp"
#include "nn/layers.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/statusz.hpp"

namespace vehigan {
namespace {

namespace fs = std::filesystem;

/// Tiny hand-built linear critic (no training): enough structure for the
/// checkpoint serializer and the detector forward pass.
gan::TrainedWgan linear_model(int id, float weight) {
  gan::TrainedWgan model;
  model.config.id = id;
  model.config.window = 10;
  model.config.width = 12;
  model.discriminator.add<nn::Flatten>();
  auto& dense = model.discriminator.add<nn::Dense>(120, 1);
  dense.weights().assign(120, weight);
  dense.bias() = {0.0F};
  return model;
}

std::vector<std::shared_ptr<mbds::WganDetector>> linear_detectors(std::size_t m) {
  std::vector<std::shared_ptr<mbds::WganDetector>> detectors;
  for (std::size_t i = 0; i < m; ++i) {
    auto det = std::make_shared<mbds::WganDetector>(
        linear_model(static_cast<int>(i), -(1.0F + 0.5F * static_cast<float>(i))));
    det->set_threshold(0.25 * static_cast<double>(i));
    detectors.push_back(std::move(det));
  }
  return detectors;
}

class ScratchDir {
 public:
  ScratchDir() : path_(fs::temp_directory_path() / "vehigan_provenance_test") {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  [[nodiscard]] const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

TEST(ContentHash, IsDeterministicAndWeightSensitive) {
  const gan::TrainedWgan a = linear_model(3, -1.0F);
  const gan::TrainedWgan b = linear_model(3, -1.0F);
  const std::uint64_t ha = gan::content_hash(a);
  EXPECT_NE(ha, 0U);
  EXPECT_EQ(ha, gan::content_hash(b)) << "identical models must hash identically";

  gan::TrainedWgan c = linear_model(3, -1.0F);
  dynamic_cast<nn::Dense&>(c.discriminator.layer(1)).weights()[7] += 1e-3F;
  EXPECT_NE(gan::content_hash(c), ha) << "one perturbed weight must change the hash";

  const gan::TrainedWgan d = linear_model(4, -1.0F);
  EXPECT_NE(gan::content_hash(d), ha) << "config identity is part of the hash";
}

TEST(ContentHash, SurvivesTheCheckpointRoundTrip) {
  ScratchDir dir;
  const fs::path path = dir.path() / "model.vgan";
  gan::TrainedWgan model = linear_model(11, -2.5F);
  const std::uint64_t expected = gan::content_hash(model);
  gan::save_wgan(model, path);
  const gan::TrainedWgan loaded = gan::load_wgan(path);
  EXPECT_EQ(loaded.content_hash, expected)
      << "a loaded model must carry the exact hash stored in its checkpoint";
  EXPECT_EQ(gan::content_hash(loaded), expected);
}

TEST(WganDetector, FillsTheContentHashOnConstruction) {
  gan::TrainedWgan model = linear_model(5, -1.5F);
  ASSERT_EQ(model.content_hash, 0U);  // fresh from the "trainer"
  const std::uint64_t expected = gan::content_hash(model);
  mbds::WganDetector detector(std::move(model));
  EXPECT_EQ(detector.model().content_hash, expected);

  // An already-stamped model (checkpoint load) is passed through untouched.
  gan::TrainedWgan stamped = linear_model(5, -1.5F);
  stamped.content_hash = 0x1234ULL;
  mbds::WganDetector detector2(std::move(stamped));
  EXPECT_EQ(detector2.model().content_hash, 0x1234ULL);
}

TEST(VehiGanProvenance, HashIsStableAcrossInstancesAndSensitiveToShape) {
  auto detectors = linear_detectors(4);
  mbds::VehiGan a(detectors, 2, 99);
  mbds::VehiGan b(detectors, 2, 99);
  EXPECT_NE(a.provenance_hash(), 0U);
  EXPECT_EQ(a.provenance_hash(), b.provenance_hash());

  mbds::VehiGan different_k(detectors, 3, 99);
  EXPECT_NE(different_k.provenance_hash(), a.provenance_hash());

  mbds::VehiGan fewer(linear_detectors(3), 2, 99);
  EXPECT_NE(fewer.provenance_hash(), a.provenance_hash());
}

TEST(ModelProvenanceRegistry, DescribesEnsemblesAndCountsInstances) {
  auto& registry = mbds::ModelProvenance::global();
  registry.reset();

  auto detectors = linear_detectors(3);
  mbds::VehiGan ensemble(detectors, 2, 7);
  const std::uint64_t hash = ensemble.provenance_hash();

  const auto info = registry.lookup(hash);
  EXPECT_EQ(info.hash, hash);
  EXPECT_EQ(info.name, ensemble.name());
  EXPECT_EQ(info.m, 3U);
  EXPECT_EQ(info.k, 2U);
  EXPECT_EQ(info.instances, 1U);
  ASSERT_EQ(info.candidates.size(), 3U);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(info.candidates[i].name, detectors[i]->name());
    EXPECT_EQ(info.candidates[i].content_hash, detectors[i]->model().content_hash);
    EXPECT_DOUBLE_EQ(info.candidates[i].threshold, detectors[i]->threshold());
  }

  // A second identical build only bumps the instance count.
  mbds::VehiGan twin(detectors, 2, 7);
  EXPECT_EQ(registry.lookup(hash).instances, 2U);
  EXPECT_EQ(registry.snapshot().size(), 1U);

  // Unknown hashes come back empty, not fatal.
  EXPECT_TRUE(registry.lookup(0xFFFF0000FFFF0000ULL).name.empty());
}

TEST(ModelProvenanceRegistry, HexSpellingIsThe16DigitLowercaseForm) {
  EXPECT_EQ(mbds::provenance_hex(0), "0000000000000000");
  EXPECT_EQ(mbds::provenance_hex(0xDEADBEEFULL), "00000000deadbeef");
  EXPECT_EQ(mbds::provenance_hex(0xFEEDFACE12345678ULL), "feedface12345678");
}

TEST(EnsembleHealthTap, FoldsPerCriticDistributionsAndSpread) {
  auto& health = mbds::EnsembleHealth::global();
  health.reset();

  mbds::DetectionResult r1;
  r1.members = {0, 2};
  r1.member_scores = {1.0F, 3.0F};
  r1.spread = 2.0F;
  mbds::DetectionResult r2;
  r2.members = {2};
  r2.member_scores = {5.0F};
  r2.spread = 0.0F;
  health.observe(r1);
  health.observe(r2);

  const auto snap = health.snapshot();
  EXPECT_EQ(snap.windows, 2U);
  ASSERT_EQ(snap.critics.size(), 3U);  // highest live index is 2
  EXPECT_EQ(snap.critics[0].contributions, 1U);
  EXPECT_DOUBLE_EQ(snap.critics[0].mean, 1.0);
  EXPECT_EQ(snap.critics[1].contributions, 0U);
  EXPECT_EQ(snap.critics[2].contributions, 2U);
  EXPECT_DOUBLE_EQ(snap.critics[2].mean, 4.0);
  EXPECT_DOUBLE_EQ(snap.critics[2].min, 3.0);
  EXPECT_DOUBLE_EQ(snap.critics[2].max, 5.0);
  EXPECT_DOUBLE_EQ(snap.spread_mean, 1.0);
  EXPECT_DOUBLE_EQ(snap.spread_max, 2.0);

  // Hand-built results without member scores are ignored, not fatal.
  health.observe(mbds::DetectionResult{});
  EXPECT_EQ(health.snapshot().windows, 2U);

  vehigan::telemetry::set_enabled(true);
  health.publish_metrics();
  auto& reg = telemetry::MetricsRegistry::global();
  EXPECT_DOUBLE_EQ(reg.gauge("vehigan_mbds_critic_spread_mean").value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.gauge("vehigan_mbds_critic_spread_max").value(), 2.0);
  EXPECT_DOUBLE_EQ(reg.gauge("vehigan_mbds_critic_2_contributions").value(), 2.0);
  EXPECT_DOUBLE_EQ(reg.gauge("vehigan_mbds_critic_2_score_mean").value(), 4.0);

  health.reset();
  EXPECT_EQ(health.snapshot().windows, 0U);
  EXPECT_TRUE(health.snapshot().critics.empty());
}

TEST(ProvenanceStatusz, ModelsAndEnsembleSectionsRender) {
  auto& provenance = mbds::ModelProvenance::global();
  auto& health = mbds::EnsembleHealth::global();
  provenance.reset();
  health.reset();

  mbds::VehiGan ensemble(linear_detectors(2), 1, 13);
  mbds::DetectionResult result;
  result.members = {1};
  result.member_scores = {2.5F};
  result.spread = 0.0F;
  health.observe(result);

  const std::string text = telemetry::Statusz::global().render_text();
  EXPECT_NE(text.find("[models]"), std::string::npos);
  EXPECT_NE(text.find(mbds::provenance_hex(ensemble.provenance_hash())), std::string::npos)
      << "the registered ensemble's provenance hash must appear in statusz";
  EXPECT_NE(text.find("[ensemble]"), std::string::npos);
  EXPECT_NE(text.find("spread_mean"), std::string::npos);
}

}  // namespace
}  // namespace vehigan
