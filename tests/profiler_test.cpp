// Sampling-profiler tests: start/stop lifecycle, exact wraparound
// accounting through the synthetic seam, the collapsed-stack format and its
// parser, real SIGPROF sampling with symbolized frames, and a high-Hz soak
// over the concurrent serving stack (the test TSan/ASan CI runs to prove
// the handler races nothing).

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "data/json.hpp"
#include "features/scaler.hpp"
#include "gan/architecture.hpp"
#include "mbds/online.hpp"
#include "nn/layers.hpp"
#include "serve/service.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"

namespace vehigan::telemetry {

// Exported (the build links with -rdynamic) so dladdr can name it: the
// real-sampling test asserts this exact frame shows up in the profile.
// noinline + volatile sink keep the optimizer from folding the loop away.
extern "C" __attribute__((noinline)) double vehigan_profiler_test_burn(long iters) {
  volatile double sink = 0.0;
  for (long i = 0; i < iters; ++i) sink = sink + static_cast<double>(i) * 1e-9;
  return sink;
}

namespace {

/// Every test leaves the global profiler stopped and empty.
struct ProfilerTest : ::testing::Test {
  void SetUp() override {
    Profiler::global().stop();
    Profiler::global().clear();
  }
  void TearDown() override {
    Profiler::global().stop();
    Profiler::global().clear();
  }
};

std::filesystem::path temp_path(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / "vehigan_profiler_test";
  std::filesystem::create_directories(dir);
  return dir / name;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ------------------------------------------------------------ lifecycle ---

TEST_F(ProfilerTest, StartIsExclusiveAndStopIsIdempotent) {
  auto& profiler = Profiler::global();
  EXPECT_FALSE(profiler.running());
  EXPECT_FALSE(profiler.start(0)) << "hz == 0 must be rejected";
  EXPECT_FALSE(profiler.running());

  ASSERT_TRUE(profiler.start(250));
  EXPECT_TRUE(profiler.running());
  EXPECT_EQ(profiler.hz(), 250U);
  EXPECT_FALSE(profiler.start(99)) << "second start must fail, not re-arm";
  EXPECT_EQ(profiler.hz(), 250U) << "failed start must not change the rate";

  profiler.stop();
  EXPECT_FALSE(profiler.running());
  profiler.stop();  // idempotent
  EXPECT_FALSE(profiler.running());

  ASSERT_TRUE(profiler.start(99)) << "stop must allow a fresh start";
  EXPECT_EQ(profiler.hz(), 99U);
}

// ----------------------------------------------------------- accounting ---

TEST_F(ProfilerTest, SyntheticWraparoundAccountingIsExact) {
  auto& profiler = Profiler::global();
  const std::array<std::uintptr_t, 3> frames = {0x3000, 0x2000, 0x1000};

  constexpr std::uint64_t kExtra = 100;
  for (std::uint64_t i = 0; i < Profiler::kRingCapacity + kExtra; ++i) {
    profiler.record_synthetic(frames);
  }

  const Profiler::Accounting acc = profiler.accounting();
  EXPECT_EQ(acc.total, Profiler::kRingCapacity + kExtra);
  EXPECT_EQ(acc.kept, Profiler::kRingCapacity);
  EXPECT_EQ(acc.overwritten, kExtra) << "wraparound losses must be counted exactly";
  EXPECT_EQ(acc.torn, 0U) << "no concurrent writer, so no torn slots";
  EXPECT_EQ(acc.lane_overflow, 0U);
  EXPECT_EQ(acc.total, acc.kept + acc.overwritten + acc.torn + acc.lane_overflow);

  // The readable samples carry the frames verbatim, leaf-first.
  const Profiler::Snapshot snap = profiler.snapshot();
  ASSERT_FALSE(snap.lanes.empty());
  std::size_t readable = 0;
  for (const auto& lane : snap.lanes) readable += lane.samples.size();
  EXPECT_EQ(readable, Profiler::kRingCapacity);
  const Profiler::Sample& sample = snap.lanes.front().samples.front();
  ASSERT_EQ(sample.frames.size(), 3U);
  EXPECT_EQ(sample.frames[0], 0x3000U);
  EXPECT_EQ(sample.frames[2], 0x1000U);
}

TEST_F(ProfilerTest, DeepStacksTruncateAtMaxFramesAndAreCounted) {
  auto& profiler = Profiler::global();
  std::vector<std::uintptr_t> deep(Profiler::kMaxFrames + 10);
  for (std::size_t i = 0; i < deep.size(); ++i) deep[i] = 0x1000 + i;
  profiler.record_synthetic(deep);

  const Profiler::Accounting acc = profiler.accounting();
  EXPECT_EQ(acc.kept, 1U);
  EXPECT_EQ(acc.truncated, 1U);
  const Profiler::Snapshot snap = profiler.snapshot();
  ASSERT_EQ(snap.lanes.front().samples.front().frames.size(), Profiler::kMaxFrames);
}

TEST_F(ProfilerTest, ClearDropsSamplesAndZeroesAccounting) {
  auto& profiler = Profiler::global();
  const std::array<std::uintptr_t, 1> frames = {0x1234};
  for (int i = 0; i < 10; ++i) profiler.record_synthetic(frames);
  ASSERT_EQ(profiler.accounting().kept, 10U);

  profiler.clear();
  const Profiler::Accounting acc = profiler.accounting();
  EXPECT_EQ(acc.total, 0U);
  EXPECT_EQ(acc.kept, 0U);
  EXPECT_EQ(acc.overwritten, 0U);
  EXPECT_TRUE(profiler.collapsed().empty());
}

// ------------------------------------------------------ collapsed format ---

TEST_F(ProfilerTest, ParseCollapsedLineRoundTripsAndRejectsMalformedInput) {
  Profiler::CollapsedStack out;

  ASSERT_TRUE(Profiler::parse_collapsed_line("main;foo;bar 42", out));
  EXPECT_EQ(out.stack, "main;foo;bar");
  EXPECT_EQ(out.count, 42U);

  // Demangled C++ names contain spaces: the count splits off the LAST space.
  ASSERT_TRUE(Profiler::parse_collapsed_line(
      "main;std::vector<int, std::allocator<int> >::push_back(int const&) 7", out));
  EXPECT_EQ(out.stack, "main;std::vector<int, std::allocator<int> >::push_back(int const&)");
  EXPECT_EQ(out.count, 7U);

  EXPECT_FALSE(Profiler::parse_collapsed_line("", out));
  EXPECT_FALSE(Profiler::parse_collapsed_line("no-count-here", out));
  EXPECT_FALSE(Profiler::parse_collapsed_line("stack ", out)) << "empty count";
  EXPECT_FALSE(Profiler::parse_collapsed_line("stack 12x", out)) << "non-numeric count";
  EXPECT_FALSE(Profiler::parse_collapsed_line(" 42", out)) << "empty stack";
  EXPECT_FALSE(Profiler::parse_collapsed_line(";; 5", out)) << "empty frames";
}

TEST_F(ProfilerTest, SyntheticSamplesAggregateIntoSortedCollapsedStacks) {
  auto& profiler = Profiler::global();
  const std::array<std::uintptr_t, 2> hot = {0x2000, 0x1000};
  const std::array<std::uintptr_t, 2> cold = {0x3000, 0x1000};
  for (int i = 0; i < 5; ++i) profiler.record_synthetic(hot);
  profiler.record_synthetic(cold);

  const auto stacks = profiler.collapsed();
  ASSERT_EQ(stacks.size(), 2U);
  EXPECT_EQ(stacks[0].count, 5U) << "sorted by count descending";
  EXPECT_EQ(stacks[1].count, 1U);

  const auto path = temp_path("synthetic.collapsed");
  ASSERT_TRUE(profiler.write_collapsed(path));
  std::istringstream lines(slurp(path));
  std::string line;
  std::size_t parsed = 0;
  std::uint64_t total = 0;
  Profiler::CollapsedStack parsed_stack;
  while (std::getline(lines, line)) {
    ASSERT_TRUE(Profiler::parse_collapsed_line(line, parsed_stack)) << line;
    ++parsed;
    total += parsed_stack.count;
  }
  EXPECT_EQ(parsed, 2U);
  EXPECT_EQ(total, 6U) << "every kept sample lands in exactly one folded line";
}

// --------------------------------------------------------- real sampling ---

TEST_F(ProfilerTest, RealSamplingCapturesAndSymbolizesTheBurnFrame) {
  auto& profiler = Profiler::global();
  ASSERT_TRUE(profiler.start(/*hz=*/997)) << "per-thread CPU timers unavailable";

  // Burn CPU on this (attached) thread until enough ticks landed. The timer
  // counts thread CPU time, so wall-clock stalls can't starve it forever.
  volatile double sink = 0.0;
  for (int spins = 0; profiler.accounting().total < 25 && spins < 20000; ++spins) {
    sink = sink + vehigan_profiler_test_burn(200000);
  }
  profiler.stop();

  const Profiler::Accounting acc = profiler.accounting();
  ASSERT_GT(acc.total, 0U) << "no SIGPROF tick ever landed";
  EXPECT_EQ(acc.total, acc.kept + acc.overwritten + acc.torn + acc.lane_overflow);

  bool saw_burn = false;
  for (const auto& stack : profiler.collapsed()) {
    if (stack.stack.find("vehigan_profiler_test_burn") != std::string::npos) {
      saw_burn = true;
      break;
    }
  }
  EXPECT_TRUE(saw_burn) << "the burn function must appear in a symbolized stack";

  // Both export formats stay machine-readable.
  const auto folded = temp_path("real.collapsed");
  ASSERT_TRUE(profiler.write_collapsed(folded));
  std::istringstream lines(slurp(folded));
  std::string line;
  Profiler::CollapsedStack parsed;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ASSERT_TRUE(Profiler::parse_collapsed_line(line, parsed)) << line;
    ++n;
  }
  EXPECT_GT(n, 0U);

  const auto chrome = temp_path("real.chrome.json");
  ASSERT_TRUE(profiler.write_chrome_trace(chrome));
  const data::Json doc = data::Json::parse(slurp(chrome));  // throws if malformed
  EXPECT_GT(doc.at("samples").as_array().size(), 0U);
  EXPECT_TRUE(doc.contains("stackFrames"));
}

// --------------------------------------------------------- high-Hz soak ---
// The serving stack under live profiling: 4 producers, 2 shards + the
// report collector, SIGPROF ticking at ~1 kHz per busy thread. Under TSan
// this is the data-race proof for the handler/ring/snapshot protocol; in
// plain builds it is a crash/accounting soak.

features::MinMaxScaler identity_scaler(std::size_t width = 12) {
  features::Series s;
  s.width = width;
  for (std::size_t c = 0; c < width; ++c) s.values.push_back(0.0F);
  for (std::size_t c = 0; c < width; ++c) s.values.push_back(1.0F);
  features::MinMaxScaler scaler;
  scaler.fit({s});
  return scaler;
}

std::shared_ptr<mbds::VehiGan> make_ensemble(std::uint64_t seed) {
  std::vector<std::shared_ptr<mbds::WganDetector>> detectors;
  for (std::size_t i = 0; i < 2; ++i) {
    gan::TrainedWgan model;
    model.config.id = static_cast<int>(i);
    model.config.window = 10;
    model.config.width = 12;
    model.discriminator.add<nn::Flatten>();
    auto& dense = model.discriminator.add<nn::Dense>(120, 1);
    dense.weights().assign(120, -(1.0F + 0.5F * static_cast<float>(i)));
    dense.bias() = {0.0F};
    auto det = std::make_shared<mbds::WganDetector>(std::move(model));
    det->set_threshold(-1e9);  // flag every complete window
    detectors.push_back(std::move(det));
  }
  auto ensemble = std::make_shared<mbds::VehiGan>(detectors, /*k=*/1, seed);
  ensemble->set_subset_draw(mbds::SubsetDraw::kContentKeyed);
  return ensemble;
}

TEST_F(ProfilerTest, HighHzSoakOverFourProducerServeWorkload) {
  auto& profiler = Profiler::global();
  ASSERT_TRUE(profiler.start(/*hz=*/997));

  serve::ServiceConfig config;
  config.num_shards = 2;
  config.queue_capacity = 128;
  config.policy = serve::OverloadPolicy::kBlock;  // lose nothing: exact accounting
  config.station_id = 42;
  config.report_cooldown_s = 0.25;
  config.gap_reset_s = 1e9;
  config.evict_after_s = 0.0;

  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kSendersPerProducer = 4;
  constexpr std::size_t kTicks = 60;
  std::atomic<std::size_t> reports{0};
  {
    serve::DetectionService service(
        config, [&](std::size_t) { return make_ensemble(7); }, identity_scaler());
    service.set_report_sink([&](const mbds::MisbehaviorReport&) { ++reports; });
    std::vector<std::thread> producers;
    for (std::size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        Profiler::attach_current_thread();
        for (std::size_t t = 0; t < kTicks; ++t) {
          for (std::size_t v = 0; v < kSendersPerProducer; ++v) {
            sim::Bsm m;
            m.vehicle_id = static_cast<std::uint32_t>(1 + p * kSendersPerProducer + v);
            m.time = 0.1 * static_cast<double>(t);
            m.speed = 10.0;
            m.x = m.speed * m.time;
            m.y = static_cast<double>(m.vehicle_id);
            ASSERT_TRUE(service.submit(m));
          }
        }
      });
    }
    for (auto& t : producers) t.join();
    service.drain();
    // Snapshot concurrently with live sampling: readers must never block or
    // misread the handler (seqlock skips, counted as torn).
    (void)profiler.snapshot();
    service.stop();
  }
  EXPECT_GT(reports.load(), 0U);

  profiler.stop();
  const Profiler::Accounting acc = profiler.accounting();
  EXPECT_EQ(acc.total, acc.kept + acc.overwritten + acc.torn + acc.lane_overflow)
      << "exact accounting must survive concurrent multi-thread sampling";
}

}  // namespace
}  // namespace vehigan::telemetry
