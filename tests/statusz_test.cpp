// Statusz tests: section registry lifecycle, well-formed text and JSON
// renderings (built-in sections included), atomic file writes, and the
// crash-cache path the flight-recorder signal handler uses.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "data/json.hpp"
#include "serve/latency_anatomy.hpp"
#include "telemetry/statusz.hpp"

namespace vehigan::telemetry {
namespace {

std::filesystem::path temp_path(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / "vehigan_statusz_test";
  std::filesystem::create_directories(dir);
  return dir / name;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Statusz is a process-wide singleton: every test disarms the dump path and
/// removes its sections so the next test (and the crash cache) start clean.
struct StatuszTest : ::testing::Test {
  void TearDown() override { Statusz::global().set_dump_path(""); }
};

TEST_F(StatuszTest, BuiltInSectionsRenderInTextAndJson) {
  (void)serve::LatencyAnatomy::global();  // registers the "anatomy" section
  const std::string text = Statusz::global().render_text();
  EXPECT_EQ(text.rfind("# vehigan statusz", 0), 0U) << "text dump must self-identify";
  EXPECT_NE(text.find("mono_ns:"), std::string::npos);
  EXPECT_NE(text.find("[profiler]"), std::string::npos);
  EXPECT_NE(text.find("[flight_recorder]"), std::string::npos);
  EXPECT_NE(text.find("[metrics]"), std::string::npos);
  EXPECT_NE(text.find("[anatomy]"), std::string::npos)
      << "LatencyAnatomy registers its section on first use";

  const data::Json doc = data::Json::parse(Statusz::global().render_json());
  EXPECT_GE(doc.at("mono_ns").as_number(), 0.0);
  const data::Json& sections = doc.at("sections");
  EXPECT_TRUE(sections.contains("profiler"));
  EXPECT_TRUE(sections.contains("flight_recorder"));
  EXPECT_TRUE(sections.contains("metrics"));
}

TEST_F(StatuszTest, RegisteredSectionAppearsAndUnregisterRemovesIt) {
  auto& statusz = Statusz::global();
  const std::uint64_t id = statusz.register_section("unit_test", [](StatuszWriter& w) {
    w.kv("answer", std::uint64_t{42});
    w.kv("ratio", 0.25);
    w.kv("armed", true);
    w.line("row 1 free-form");
  });

  const std::string text = statusz.render_text();
  EXPECT_NE(text.find("[unit_test]"), std::string::npos);
  EXPECT_NE(text.find("answer: 42"), std::string::npos);
  EXPECT_NE(text.find("armed: true"), std::string::npos);
  EXPECT_NE(text.find("row 1 free-form"), std::string::npos);

  const data::Json doc = data::Json::parse(statusz.render_json());
  const data::Json& section = doc.at("sections").at("unit_test");
  EXPECT_DOUBLE_EQ(section.at("answer").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(section.at("ratio").as_number(), 0.25);
  const auto& lines = section.at("lines").as_array();
  ASSERT_EQ(lines.size(), 1U);
  EXPECT_EQ(lines[0].as_string(), "row 1 free-form");

  statusz.unregister_section(id);
  EXPECT_EQ(statusz.render_text().find("[unit_test]"), std::string::npos);
}

TEST_F(StatuszTest, ThrowingSectionDoesNotPoisonTheDump) {
  auto& statusz = Statusz::global();
  const std::uint64_t id = statusz.register_section(
      "faulty", [](StatuszWriter&) { throw std::runtime_error("broken provider"); });

  const std::string text = statusz.render_text();
  EXPECT_NE(text.find("[faulty]"), std::string::npos);
  EXPECT_NE(text.find("section error:"), std::string::npos);
  EXPECT_NE(text.find("[metrics]"), std::string::npos)
      << "sections after the faulty one must still render";
  EXPECT_NO_THROW((void)data::Json::parse(statusz.render_json()));

  statusz.unregister_section(id);
}

TEST_F(StatuszTest, SectionValuesNeedEscapingStayValidJson) {
  auto& statusz = Statusz::global();
  const std::uint64_t id = statusz.register_section("escapes", [](StatuszWriter& w) {
    w.kv("quote", "say \"hi\"\\path\n");
    w.line("tab\there");
  });
  // Quotes and backslashes are escaped; control characters are flattened to
  // spaces (they would corrupt the line-oriented text rendering too).
  const data::Json doc = data::Json::parse(statusz.render_json());
  EXPECT_EQ(doc.at("sections").at("escapes").at("quote").as_string(), "say \"hi\"\\path ");
  EXPECT_EQ(doc.at("sections").at("escapes").at("lines").as_array()[0].as_string(),
            "tab here");
  statusz.unregister_section(id);
}

TEST_F(StatuszTest, WriteProducesTextAndJsonFiles) {
  const auto path = temp_path("snapshot.statusz");
  ASSERT_TRUE(Statusz::global().write(path));

  const std::string text = slurp(path);
  EXPECT_EQ(text.rfind("# vehigan statusz", 0), 0U);
  EXPECT_NE(text.find("[profiler]"), std::string::npos);

  const std::string json = slurp(path.string() + ".json");
  ASSERT_FALSE(json.empty());
  EXPECT_NO_THROW((void)data::Json::parse(json));
}

TEST_F(StatuszTest, DumpIfConfiguredIsANoopWithoutAPath) {
  Statusz::global().set_dump_path("");
  EXPECT_FALSE(Statusz::global().dump_if_configured());
}

TEST_F(StatuszTest, DumpIfConfiguredWritesTheArmedPath) {
  const auto path = temp_path("configured.statusz");
  std::filesystem::remove(path);
  Statusz::global().set_dump_path(path.string());
  EXPECT_EQ(Statusz::global().dump_path(), path.string());
  ASSERT_TRUE(Statusz::global().dump_if_configured());
  EXPECT_NE(slurp(path).find("# vehigan statusz"), std::string::npos);
}

TEST_F(StatuszTest, CrashDumpIsANoopWithoutAnArmedPath) {
  Statusz::global().set_dump_path("");
  EXPECT_FALSE(Statusz::crash_dump_cached());
}

TEST_F(StatuszTest, CrashDumpWritesTheCachedSnapshotWithHeader) {
  const auto path = temp_path("crash.statusz");
  std::filesystem::remove(path);
  Statusz::global().set_dump_path(path.string());
  Statusz::global().refresh_crash_cache();

  ASSERT_TRUE(Statusz::crash_dump_cached());
  const std::string dumped = slurp(path);
  EXPECT_EQ(dumped.rfind("# dumped from crash handler", 0), 0U)
      << "the post-mortem must say it is a cached snapshot";
  EXPECT_NE(dumped.find("# vehigan statusz"), std::string::npos);
  EXPECT_NE(dumped.find("[profiler]"), std::string::npos);
}

}  // namespace
}  // namespace vehigan::telemetry
