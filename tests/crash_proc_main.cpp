// Helper process for the flight-recorder crash-dump test (not a gtest
// binary). Arms the crash handler at the given path, records a recognizable
// event pattern, then dies by the requested signal — the parent asserts the
// post-mortem dump exists and contains the pattern.
//
// Usage: crash_proc <dump-path> <segv|abort|none|segv-profiled>
//   segv           raise(SIGSEGV) (signal path without UB, sanitizer-friendly)
//   abort          std::abort()
//   none           exit 0 without crashing (the dump must NOT appear)
//   segv-profiled  start the sampling profiler at high Hz, arm a statusz
//                  dump at <dump-path>.statusz, burn CPU so SIGPROF fires,
//                  then raise(SIGSEGV) — the parent asserts both the
//                  flight-recorder dump AND the cached statusz snapshot
//                  survive a crash that races live profiling

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/statusz.hpp"
#include "telemetry/trace_context.hpp"

int main(int argc, char** argv) {
  if (argc != 3) {
    std::cerr << "usage: crash_proc <dump-path> <segv|abort|none|segv-profiled>\n";
    return 2;
  }
  const char* dump_path = argv[1];
  const char* mode = argv[2];

  using vehigan::telemetry::FlightEventKind;
  using vehigan::telemetry::FlightRecorder;

  FlightRecorder::global().install_crash_handler(dump_path);

  // A recognizable pattern: stations 9000..9099, enqueue+score per message.
  for (std::uint32_t i = 0; i < 100; ++i) {
    const std::uint32_t station = 9000 + i;
    const std::uint64_t trace =
        vehigan::telemetry::trace_id_of(station, 0.1 * static_cast<double>(i));
    FlightRecorder::record(FlightEventKind::kEnqueue, station, trace, i % 4);
    FlightRecorder::record(FlightEventKind::kScore, station, trace, i);
  }

  if (std::strcmp(mode, "segv") == 0) {
    std::raise(SIGSEGV);  // delivers the real signal without UB under sanitizers
  } else if (std::strcmp(mode, "segv-profiled") == 0) {
    // Crash while SIGPROF is live: the crash handler blocks SIGPROF, dumps
    // the flight recorder, and writes the *cached* statusz snapshot (the
    // refresh below renders it; rendering itself is not signal-safe).
    vehigan::telemetry::Statusz::global().set_dump_path(std::string(dump_path) +
                                                        ".statusz");
    if (!vehigan::telemetry::Profiler::global().start(1000)) {
      std::cerr << "profiler failed to start\n";
      return 2;
    }
    // Burn CPU until samples actually land, so the crash genuinely races
    // live profiling instead of an idle timer.
    volatile double sink = 0.0;
    while (vehigan::telemetry::Profiler::global().accounting().total < 10) {
      for (int i = 0; i < 1000000; ++i) sink = sink + static_cast<double>(i) * 1e-9;
    }
    vehigan::telemetry::Statusz::global().refresh_crash_cache();
    std::raise(SIGSEGV);
  } else if (std::strcmp(mode, "abort") == 0) {
    std::abort();
  } else if (std::strcmp(mode, "none") == 0) {
    return 0;
  } else {
    std::cerr << "unknown mode: " << mode << "\n";
    return 2;
  }
  return 3;  // unreachable: the signal should have killed us
}
