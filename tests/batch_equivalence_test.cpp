// Batch-equivalence property suite: the contract every batched inference
// path rests on is that a batched forward over N windows is (numerically)
// the same computation as N single-row forwards. This file pins that for
// every layer type, for full WGAN critic/generator stacks, and for the
// detector-level score_all overrides — over randomized shapes, seeds, and
// batch sizes N in {1, 2, 7, 64}.

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "gan/architecture.hpp"
#include "mbds/ensemble.hpp"
#include "mbds/wgan_detector.hpp"
#include "nn/layers.hpp"
#include "nn/sequential.hpp"
#include "test_utils.hpp"
#include "util/thread_pool.hpp"

namespace vehigan {
namespace {

using vehigan::testing::expect_tensor_near;
using vehigan::testing::fill_uniform;
using vehigan::testing::random_window_set;

constexpr float kTol = 1e-5F;
const std::vector<std::size_t> kBatchSizes{1, 2, 7, 64};

/// Extracts row i of a batched tensor as a [1, ...sample] tensor.
nn::Tensor batch_row(const nn::Tensor& batched, std::size_t i) {
  std::vector<std::size_t> shape = batched.shape();
  shape[0] = 1;
  const std::size_t stride = nn::Tensor::element_count(shape);
  std::vector<float> data(batched.data() + i * stride, batched.data() + (i + 1) * stride);
  return nn::Tensor(std::move(shape), std::move(data));
}

/// Runs `model` on a batch of n samples and on each sample individually (on
/// an independent clone, so per-layer caches cannot leak between the two
/// paths) and asserts the outputs agree within kTol.
void expect_batched_equals_single(const nn::Sequential& model,
                                  const std::vector<std::size_t>& sample_shape, std::size_t n,
                                  util::Rng& rng) {
  std::vector<std::size_t> batch_shape{n};
  batch_shape.insert(batch_shape.end(), sample_shape.begin(), sample_shape.end());
  nn::Tensor input(batch_shape);
  fill_uniform(input, rng, -1.2F, 1.2F);

  nn::Sequential batched = model.clone();
  const nn::Tensor batch_out = batched.forward(input);
  ASSERT_EQ(batch_out.dim(0), n);

  nn::Sequential single = model.clone();
  for (std::size_t i = 0; i < n; ++i) {
    const nn::Tensor row_out = single.forward(batch_row(input, i));
    expect_tensor_near(batch_row(batch_out, i), row_out, kTol);
  }
}

// ------------------------------------------------------- per-layer cases ---

struct LayerCase {
  std::string name;
  /// Builds a randomly-shaped single-layer model and returns its per-sample
  /// input shape. Each call may pick different dimensions from `rng`.
  std::function<nn::Sequential(util::Rng&, std::vector<std::size_t>&)> build;
};

std::vector<LayerCase> layer_cases() {
  auto dim = [](util::Rng& rng, std::size_t lo, std::size_t hi) {
    return static_cast<std::size_t>(rng.uniform_int(static_cast<std::int64_t>(lo),
                                                    static_cast<std::int64_t>(hi)));
  };
  std::vector<LayerCase> cases;
  cases.push_back({"dense", [dim](util::Rng& rng, std::vector<std::size_t>& shape) {
                     const std::size_t in = dim(rng, 1, 24), out = dim(rng, 1, 16);
                     nn::Sequential m;
                     m.add<nn::Dense>(in, out).init_weights(rng);
                     shape = {in};
                     return m;
                   }});
  cases.push_back({"conv2d", [dim](util::Rng& rng, std::vector<std::size_t>& shape) {
                     const std::size_t ic = dim(rng, 1, 3), oc = dim(rng, 1, 4);
                     const std::size_t kh = dim(rng, 1, 3), kw = dim(rng, 1, 3);
                     const std::size_t stride = dim(rng, 1, 2);
                     const std::size_t h = dim(rng, 3, 10), w = dim(rng, 3, 12);
                     nn::Sequential m;
                     m.add<nn::Conv2D>(ic, oc, kh, kw, stride).init_weights(rng);
                     shape = {ic, h, w};
                     return m;
                   }});
  cases.push_back({"conv2d_transpose", [dim](util::Rng& rng, std::vector<std::size_t>& shape) {
                     const std::size_t ic = dim(rng, 1, 3), oc = dim(rng, 1, 3);
                     const std::size_t k = dim(rng, 1, 3);
                     const std::size_t stride = dim(rng, 1, 2);
                     nn::Sequential m;
                     m.add<nn::Conv2DTranspose>(ic, oc, k, k, stride).init_weights(rng);
                     shape = {ic, dim(rng, 2, 6), dim(rng, 2, 6)};
                     return m;
                   }});
  cases.push_back({"upsample2d", [dim](util::Rng& rng, std::vector<std::size_t>& shape) {
                     nn::Sequential m;
                     m.add<nn::UpSample2D>(dim(rng, 1, 3));
                     shape = {dim(rng, 1, 3), dim(rng, 2, 6), dim(rng, 2, 6)};
                     return m;
                   }});
  cases.push_back({"leaky_relu", [dim](util::Rng& rng, std::vector<std::size_t>& shape) {
                     nn::Sequential m;
                     m.add<nn::LeakyReLU>(rng.uniform_f(0.05F, 0.4F));
                     shape = {dim(rng, 1, 30)};
                     return m;
                   }});
  cases.push_back({"sigmoid", [dim](util::Rng& rng, std::vector<std::size_t>& shape) {
                     nn::Sequential m;
                     m.add<nn::Sigmoid>();
                     shape = {dim(rng, 1, 30)};
                     return m;
                   }});
  cases.push_back({"tanh", [dim](util::Rng& rng, std::vector<std::size_t>& shape) {
                     nn::Sequential m;
                     m.add<nn::Tanh>();
                     shape = {dim(rng, 1, 30)};
                     return m;
                   }});
  cases.push_back({"flatten", [dim](util::Rng& rng, std::vector<std::size_t>& shape) {
                     nn::Sequential m;
                     m.add<nn::Flatten>();
                     shape = {dim(rng, 1, 3), dim(rng, 2, 5), dim(rng, 2, 5)};
                     return m;
                   }});
  cases.push_back({"reshape", [dim](util::Rng& rng, std::vector<std::size_t>& shape) {
                     const std::size_t a = dim(rng, 1, 3), b = dim(rng, 2, 4), c = dim(rng, 2, 4);
                     nn::Sequential m;
                     m.add<nn::Reshape>(std::vector<std::size_t>{a, b, c});
                     shape = {a * b * c};
                     return m;
                   }});
  return cases;
}

class LayerBatchEquivalence : public ::testing::TestWithParam<LayerCase> {};

TEST_P(LayerBatchEquivalence, BatchedForwardMatchesSingleRows) {
  for (std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    util::Rng rng(seed);
    std::vector<std::size_t> sample_shape;
    const nn::Sequential model = GetParam().build(rng, sample_shape);
    for (std::size_t n : kBatchSizes) {
      SCOPED_TRACE(GetParam().name + " seed=" + std::to_string(seed) +
                   " n=" + std::to_string(n));
      expect_batched_equals_single(model, sample_shape, n, rng);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllLayers, LayerBatchEquivalence, ::testing::ValuesIn(layer_cases()),
                         [](const ::testing::TestParamInfo<LayerCase>& info) {
                           return info.param.name;
                         });

// ------------------------------------------------- full WGAN critic stacks ---

TEST(CriticBatchEquivalence, ForwardScalarsMatchesPerSampleForward) {
  // Every depth of the paper's grid; z_dim only affects G, but vary it too.
  for (int layers : {6, 7, 8}) {
    gan::WganConfig config;
    config.layers = layers;
    config.z_dim = 8U * static_cast<std::size_t>(layers);
    util::Rng init(100 + static_cast<std::uint64_t>(layers));
    nn::Sequential critic = gan::build_discriminator(config, init);

    for (std::size_t n : kBatchSizes) {
      SCOPED_TRACE("layers=" + std::to_string(layers) + " n=" + std::to_string(n));
      util::Rng data(200 + n);
      const features::WindowSet windows =
          testing::random_window_set(data, n, config.window, config.width);
      nn::Sequential batched = critic.clone();
      const std::vector<float> batch =
          nn::forward_scalars(batched, windows.data, n, config.window, config.width);
      ASSERT_EQ(batch.size(), n);
      nn::Sequential single = critic.clone();
      for (std::size_t i = 0; i < n; ++i) {
        const float one =
            nn::forward_scalar(single, windows.snapshot(i), config.window, config.width);
        EXPECT_NEAR(batch[i], one, kTol) << "window " << i;
      }
    }
  }
}

TEST(CriticBatchEquivalence, GeneratorStackMatchesToo) {
  // The generator exercises Reshape + UpSample2D + Sigmoid in one stack.
  gan::WganConfig config;
  util::Rng init(7);
  const nn::Sequential gen = gan::build_generator(config, init);
  util::Rng rng(8);
  expect_batched_equals_single(gen, {config.z_dim}, 7, rng);
}

TEST(WganDetectorBatchEquivalence, ScoreAllMatchesPerSampleScores) {
  gan::WganConfig config;
  util::Rng init(55);
  gan::TrainedWgan model;
  model.config = config;
  model.discriminator = gan::build_discriminator(config, init);
  model.generator = gan::build_generator(config, init);
  mbds::WganDetector detector(std::move(model));
  detector.set_calibration(0.37, 2.1);

  for (std::size_t n : kBatchSizes) {
    SCOPED_TRACE("n=" + std::to_string(n));
    util::Rng data(300 + n);
    const features::WindowSet windows =
        testing::random_window_set(data, n, config.window, config.width);
    const std::vector<float> batched = detector.score_all(windows);
    ASSERT_EQ(batched.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(batched[i], detector.score(windows.snapshot(i)), kTol) << "window " << i;
    }
  }
}

TEST(WganDetectorBatchEquivalence, ScoreAllSpansMultipleChunks) {
  // Force the kMaxBatch chunking path: count > one chunk.
  gan::WganConfig config;
  util::Rng init(56);
  gan::TrainedWgan model;
  model.config = config;
  model.discriminator = gan::build_discriminator(config, init);
  mbds::WganDetector detector(std::move(model));

  const std::size_t n = mbds::WganDetector::kMaxBatch + 17;
  util::Rng data(57);
  const features::WindowSet windows =
      testing::random_window_set(data, n, config.window, config.width);
  const std::vector<float> batched = detector.score_all(windows);
  ASSERT_EQ(batched.size(), n);
  for (std::size_t i : {std::size_t{0}, mbds::WganDetector::kMaxBatch - 1,
                        mbds::WganDetector::kMaxBatch, n - 1}) {
    EXPECT_NEAR(batched[i], detector.score(windows.snapshot(i)), kTol) << "window " << i;
  }
}

TEST(WganDetectorBatchEquivalence, ScoreAllRejectsShapeMismatch) {
  gan::WganConfig config;
  util::Rng init(58);
  gan::TrainedWgan model;
  model.config = config;
  model.discriminator = gan::build_discriminator(config, init);
  mbds::WganDetector detector(std::move(model));
  util::Rng data(59);
  const features::WindowSet wrong = testing::random_window_set(data, 3, 4, 4);
  EXPECT_THROW(detector.score_all(wrong), std::invalid_argument);
}

// ---------------------------------------------------- ensemble equivalence ---

std::vector<std::shared_ptr<mbds::WganDetector>> grid_detectors(std::size_t m) {
  std::vector<std::shared_ptr<mbds::WganDetector>> detectors;
  for (std::size_t i = 0; i < m; ++i) {
    gan::WganConfig config;
    config.id = static_cast<int>(i);
    config.layers = 6 + static_cast<int>(i % 3);
    util::Rng init(400 + i);
    gan::TrainedWgan model;
    model.config = config;
    model.discriminator = gan::build_discriminator(config, init);
    auto det = std::make_shared<mbds::WganDetector>(std::move(model));
    det->set_calibration(0.1 * static_cast<double>(i), 1.0 + 0.2 * static_cast<double>(i));
    det->set_threshold(0.5 + 0.1 * static_cast<double>(i));
    detectors.push_back(std::move(det));
  }
  return detectors;
}

/// Batched VehiGan::score_all must equal the per-sample sequential loop of a
/// same-seed twin — scores and implicit member draws alike.
void expect_ensemble_batch_equivalence(std::shared_ptr<util::ThreadPool> pool) {
  constexpr std::uint64_t kSeed = 99;
  for (std::size_t n : kBatchSizes) {
    SCOPED_TRACE("n=" + std::to_string(n));
    mbds::VehiGan batched(grid_detectors(5), 2, kSeed);
    batched.set_thread_pool(pool);
    mbds::VehiGan sequential(grid_detectors(5), 2, kSeed);

    util::Rng data(500 + n);
    const features::WindowSet windows = testing::random_window_set(data, n, 10, 12);
    const std::vector<float> batch_scores = batched.score_all(windows);
    ASSERT_EQ(batch_scores.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(batch_scores[i], sequential.score(windows.snapshot(i)), kTol)
          << "window " << i;
    }
  }
}

TEST(VehiGanBatchEquivalence, ScoreAllMatchesSequentialTwinInline) {
  expect_ensemble_batch_equivalence(nullptr);
}

TEST(VehiGanBatchEquivalence, ScoreAllMatchesSequentialTwinWithThreadPool) {
  expect_ensemble_batch_equivalence(std::make_shared<util::ThreadPool>(4));
}

TEST(VehiGanBatchEquivalence, EvaluateAllMatchesSequentialEvaluates) {
  constexpr std::uint64_t kSeed = 123;
  mbds::VehiGan batched(grid_detectors(4), 3, kSeed);
  batched.set_thread_pool(std::make_shared<util::ThreadPool>(2));
  mbds::VehiGan sequential(grid_detectors(4), 3, kSeed);

  util::Rng data(77);
  const features::WindowSet windows = testing::random_window_set(data, 19, 10, 12);
  const std::vector<mbds::DetectionResult> batch = batched.evaluate_all(windows);
  ASSERT_EQ(batch.size(), windows.count());
  for (std::size_t i = 0; i < windows.count(); ++i) {
    const mbds::DetectionResult one = sequential.evaluate(windows.snapshot(i));
    EXPECT_EQ(batch[i].members, one.members) << "window " << i;
    EXPECT_NEAR(batch[i].score, one.score, kTol) << "window " << i;
    EXPECT_DOUBLE_EQ(batch[i].threshold, one.threshold) << "window " << i;
    EXPECT_EQ(batch[i].flagged, one.flagged) << "window " << i;
  }
}

TEST(VehiGanBatchEquivalence, EmptyWindowSetYieldsEmptyResults) {
  mbds::VehiGan ensemble(grid_detectors(3), 1, 5);
  features::WindowSet empty;
  empty.window = 10;
  empty.width = 12;
  EXPECT_TRUE(ensemble.evaluate_all(empty).empty());
  EXPECT_TRUE(ensemble.score_all(empty).empty());
}

}  // namespace
}  // namespace vehigan
