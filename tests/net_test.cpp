#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "net/channel.hpp"
#include "net/codec.hpp"
#include "scms/pseudonym.hpp"
#include "sim/traffic_sim.hpp"
#include "util/math.hpp"

namespace vehigan::net {
namespace {

// -------------------------------------------------------------- channel ----

TEST(Channel, DeliveryProbabilityRampsWithDistance) {
  Channel channel(ChannelConfig{}, 1);
  const auto& cfg = channel.config();
  EXPECT_NEAR(channel.delivery_probability(0.0), cfg.p_delivery_near, 1e-12);
  EXPECT_NEAR(channel.delivery_probability(cfg.max_range_m), cfg.p_delivery_edge, 1e-12);
  EXPECT_GT(channel.delivery_probability(50.0), channel.delivery_probability(250.0));
}

TEST(Channel, NothingBeyondRangeOrBehindNegativeDistance) {
  Channel channel(ChannelConfig{}, 1);
  EXPECT_DOUBLE_EQ(channel.delivery_probability(301.0), 0.0);
  EXPECT_DOUBLE_EQ(channel.delivery_probability(-1.0), 0.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(channel.received(0, 0, 1000, 1000));
  }
}

TEST(Channel, CongestionLossScalesDelivery) {
  ChannelConfig cfg;
  cfg.p_congestion_loss = 0.5;
  Channel lossy(cfg, 1);
  Channel clean(ChannelConfig{}, 1);
  EXPECT_NEAR(lossy.delivery_probability(0.0), clean.delivery_probability(0.0) * 0.5, 1e-12);
}

TEST(Channel, EmpiricalReceptionRateMatchesProbability) {
  Channel channel(ChannelConfig{}, 7);
  const double distance = 150.0;
  const double expected = channel.delivery_probability(distance);
  int received = 0;
  constexpr int kTrials = 5000;
  for (int i = 0; i < kTrials; ++i) {
    if (channel.received(0, 0, distance, 0)) ++received;
  }
  EXPECT_NEAR(static_cast<double>(received) / kTrials, expected, 0.03);
}

TEST(Channel, RangeBoundaryIsInclusiveAndZeroDistanceIsNear) {
  ChannelConfig cfg;
  cfg.max_range_m = 300.0;
  cfg.p_delivery_edge = 0.60;
  Channel channel(cfg, 1);
  // Exactly at the cutoff the edge probability still applies (the cutoff is
  // `>`); the first representable distance beyond it delivers nothing.
  EXPECT_DOUBLE_EQ(channel.delivery_probability(cfg.max_range_m), cfg.p_delivery_edge);
  EXPECT_GT(channel.delivery_probability(cfg.max_range_m), 0.0);
  const double beyond = std::nextafter(cfg.max_range_m, 1e9);
  EXPECT_DOUBLE_EQ(channel.delivery_probability(beyond), 0.0);
  EXPECT_DOUBLE_EQ(channel.delivery_probability(0.0), cfg.p_delivery_near);
}

TEST(Channel, DeliveryProbabilityIsMonotonicNonIncreasingOverTheRamp) {
  // Property over the whole ramp, for the default channel and a congested
  // one: moving away never increases delivery probability, and every value
  // stays a probability.
  std::vector<ChannelConfig> configs(2);
  configs[1].p_congestion_loss = 0.35;
  for (const ChannelConfig& cfg : configs) {
    Channel channel(cfg, 1);
    double previous = channel.delivery_probability(0.0);
    for (double d = 0.0; d <= cfg.max_range_m + 50.0; d += 1.5) {
      const double p = channel.delivery_probability(d);
      EXPECT_LE(p, previous + 1e-12) << "distance " << d;
      EXPECT_GE(p, 0.0) << "distance " << d;
      EXPECT_LE(p, 1.0) << "distance " << d;
      previous = p;
    }
  }
}

TEST(Channel, UsesTruePositionNotClaimedPosition) {
  // An attacker claiming a far-away position is still heard if physically
  // near: the channel takes the true transmitter coordinates.
  Channel channel(ChannelConfig{}, 3);
  int received = 0;
  for (int i = 0; i < 200; ++i) {
    if (channel.received(/*true_x=*/10, /*true_y=*/0, /*rx_x=*/0, /*rx_y=*/0)) ++received;
  }
  EXPECT_GT(received, 150);
}

// ---------------------------------------------------------------- codec ----

TEST(Codec, WireSizeIsFixed) {
  sim::Bsm m;
  EXPECT_EQ(encode_bsm(m).size(), kWireSize);
}

TEST(Codec, RoundTripWithinQuantization) {
  sim::Bsm m;
  m.vehicle_id = 1234;
  m.time = 17.37;
  m.x = 483.123456;
  m.y = -120.987;
  m.speed = 13.777;
  m.accel = -2.345;
  m.heading = 4.32109;
  m.yaw_rate = 0.2345;
  const sim::Bsm q = quantize_bsm(m);
  EXPECT_EQ(q.vehicle_id, m.vehicle_id);
  EXPECT_NEAR(q.time, m.time, 0.01);
  EXPECT_NEAR(q.x, m.x, 0.01);
  EXPECT_NEAR(q.y, m.y, 0.01);
  EXPECT_NEAR(q.speed, m.speed, 0.02);
  EXPECT_NEAR(q.accel, m.accel, 0.01);
  EXPECT_NEAR(q.heading, m.heading, 0.0125 * util::kPi / 180.0 + 1e-9);
  EXPECT_NEAR(q.yaw_rate, m.yaw_rate, 0.01 * util::kPi / 180.0 + 1e-9);
}

TEST(Codec, QuantizationIsIdempotent) {
  sim::Bsm m;
  m.x = 123.4567;
  m.speed = 9.87654;
  m.heading = 1.23456;
  const sim::Bsm once = quantize_bsm(m);
  const sim::Bsm twice = quantize_bsm(once);
  EXPECT_DOUBLE_EQ(once.x, twice.x);
  EXPECT_DOUBLE_EQ(once.speed, twice.speed);
  EXPECT_DOUBLE_EQ(once.heading, twice.heading);
}

TEST(Codec, SaturatesOutOfRangeValues) {
  sim::Bsm m;
  m.speed = 1e9;       // beyond u16 * 0.02
  m.accel = -1e9;      // beyond i16 * 0.01
  m.yaw_rate = 1e9;
  const sim::Bsm q = quantize_bsm(m);
  EXPECT_NEAR(q.speed, 65535 * 0.02, 1e-6);
  EXPECT_NEAR(q.accel, -32768 * 0.01, 1e-6);
  EXPECT_GT(q.yaw_rate, 0.0);
  EXPECT_LT(q.yaw_rate, 6.0);
}

TEST(Codec, DecodeRejectsWrongSize) {
  EXPECT_THROW(decode_bsm("short"), std::invalid_argument);
}

TEST(Codec, DatasetQuantizationPreservesStructure) {
  sim::TrafficSimConfig cfg;
  cfg.duration_s = 5.0;
  cfg.num_platoons = 2;
  cfg.vehicles_per_platoon = 2;
  cfg.seed = 9;
  const sim::BsmDataset data = sim::TrafficSimulator(cfg).run();
  const sim::BsmDataset q = quantize_dataset(data);
  ASSERT_EQ(q.traces.size(), data.traces.size());
  EXPECT_EQ(q.total_messages(), data.total_messages());
  for (std::size_t i = 0; i < data.traces.size(); ++i) {
    EXPECT_EQ(q.traces[i].vehicle_id, data.traces[i].vehicle_id);
    for (std::size_t j = 0; j < data.traces[i].messages.size(); ++j) {
      EXPECT_NEAR(q.traces[i].messages[j].x, data.traces[i].messages[j].x, 0.011);
      EXPECT_NEAR(q.traces[i].messages[j].speed, data.traces[i].messages[j].speed, 0.021);
    }
  }
}

}  // namespace
}  // namespace vehigan::net

namespace vehigan::scms {
namespace {

sim::BsmDataset two_vehicle_dataset(double duration = 30.0) {
  sim::BsmDataset data;
  for (std::uint32_t id : {1U, 2U}) {
    sim::VehicleTrace trace;
    trace.vehicle_id = id;
    for (double t = 0.0; t < duration; t += 0.1) {
      sim::Bsm m;
      m.vehicle_id = id;
      m.time = t;
      m.x = 10.0 * t;
      trace.messages.push_back(m);
    }
    data.traces.push_back(std::move(trace));
  }
  return data;
}

TEST(PseudonymRotation, SplitsTracesPerEpoch) {
  PseudonymRotation rotation(10.0, 5);
  std::map<std::uint32_t, std::uint32_t> ownership;
  const auto rotated = rotation.apply(two_vehicle_dataset(30.0), ownership);
  // 2 vehicles x 3 epochs.
  EXPECT_EQ(rotated.traces.size(), 6U);
  EXPECT_EQ(ownership.size(), 6U);
}

TEST(PseudonymRotation, PseudonymsAreFreshAndOwnershipResolves) {
  PseudonymRotation rotation(10.0, 5);
  std::map<std::uint32_t, std::uint32_t> ownership;
  const auto rotated = rotation.apply(two_vehicle_dataset(30.0), ownership);
  std::set<std::uint32_t> seen;
  for (const auto& trace : rotated.traces) {
    EXPECT_FALSE(seen.contains(trace.vehicle_id)) << "pseudonym reused";
    seen.insert(trace.vehicle_id);
    ASSERT_TRUE(ownership.contains(trace.vehicle_id));
    EXPECT_TRUE(ownership.at(trace.vehicle_id) == 1 || ownership.at(trace.vehicle_id) == 2);
    // Messages inside a rotated trace carry the pseudonym.
    for (const auto& m : trace.messages) EXPECT_EQ(m.vehicle_id, trace.vehicle_id);
  }
}

TEST(PseudonymRotation, PreservesPayloadContentAndOrder) {
  PseudonymRotation rotation(10.0, 5);
  std::map<std::uint32_t, std::uint32_t> ownership;
  const auto original = two_vehicle_dataset(30.0);
  const auto rotated = rotation.apply(original, ownership);
  // Reassemble vehicle 1's stream via ownership and compare x/time.
  std::vector<const sim::Bsm*> reassembled;
  for (const auto& trace : rotated.traces) {
    if (ownership.at(trace.vehicle_id) != 1) continue;
    for (const auto& m : trace.messages) reassembled.push_back(&m);
  }
  ASSERT_EQ(reassembled.size(), original.traces[0].messages.size());
  for (std::size_t i = 0; i < reassembled.size(); ++i) {
    EXPECT_DOUBLE_EQ(reassembled[i]->time, original.traces[0].messages[i].time);
    EXPECT_DOUBLE_EQ(reassembled[i]->x, original.traces[0].messages[i].x);
  }
}

TEST(PseudonymRotation, NonPositivePeriodMeansSinglePseudonym) {
  PseudonymRotation rotation(-1.0, 5);
  std::map<std::uint32_t, std::uint32_t> ownership;
  const auto rotated = rotation.apply(two_vehicle_dataset(30.0), ownership);
  EXPECT_EQ(rotated.traces.size(), 2U);
}

}  // namespace
}  // namespace vehigan::scms
