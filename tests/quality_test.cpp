// Tests for telemetry::QualityMonitor — the streaming online-quality
// monitor (windowed AUROC + precision/recall-at-threshold). The headline
// property pinned here is the ISSUE acceptance bar: the binned online AUROC
// stays within 0.02 of the exact offline Mann-Whitney AUROC on overlapping
// score distributions.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <random>
#include <thread>
#include <vector>

#include "metrics/roc.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/quality.hpp"

using vehigan::telemetry::QualityMonitor;
using vehigan::telemetry::QualityOptions;

namespace {

/// Exact AUROC over the observations fed to a monitor, via the offline
/// metrics implementation (the ground truth the online estimate must track).
double exact_auroc(const std::vector<float>& neg, const std::vector<float>& pos) {
  return vehigan::metrics::auroc(neg, pos);
}

}  // namespace

TEST(QualityMonitor, WarmupPhaseIsExact) {
  QualityMonitor monitor(QualityOptions{.warmup = 1024});
  std::vector<float> neg;
  std::vector<float> pos;
  std::mt19937 rng(7);
  std::normal_distribution<float> dn(0.0F, 1.0F);
  std::normal_distribution<float> dp(1.0F, 1.0F);
  for (int i = 0; i < 200; ++i) {
    const float n = dn(rng);
    const float p = dp(rng);
    neg.push_back(n);
    pos.push_back(p);
    monitor.observe(n, /*positive=*/false, /*flagged=*/false);
    monitor.observe(p, /*positive=*/true, /*flagged=*/true);
  }
  const auto snap = monitor.snapshot();
  EXPECT_FALSE(snap.binned);  // 400 < warmup: still exact
  EXPECT_EQ(snap.positives, 200U);
  EXPECT_EQ(snap.negatives, 200U);
  EXPECT_DOUBLE_EQ(snap.auroc, exact_auroc(neg, pos));
}

TEST(QualityMonitor, BinnedAurocTracksExactWithinAcceptanceBound) {
  // Overlapping normals (AUROC ~ 0.76), well past warmup so the estimate is
  // fully histogram-driven — the regime the scenario runner exercises.
  QualityMonitor monitor;  // default warmup = 512
  std::vector<float> neg;
  std::vector<float> pos;
  std::mt19937 rng(42);
  std::normal_distribution<float> dn(0.0F, 1.0F);
  std::normal_distribution<float> dp(1.0F, 1.0F);
  for (int i = 0; i < 10000; ++i) {
    const float n = dn(rng);
    const float p = dp(rng);
    neg.push_back(n);
    pos.push_back(p);
    monitor.observe(n, false, n > 0.5F);
    monitor.observe(p, true, p > 0.5F);
  }
  const auto snap = monitor.snapshot();
  EXPECT_TRUE(snap.binned);
  EXPECT_EQ(snap.positives + snap.negatives, 20000U);
  const double exact = exact_auroc(neg, pos);
  EXPECT_NEAR(snap.auroc, exact, 0.02) << "online AUROC drifted past the acceptance bound";
  // With this separation the bins are fine enough to do much better.
  EXPECT_NEAR(snap.auroc, exact, 0.005);
}

TEST(QualityMonitor, SeparableClassesReachExtremeAuroc) {
  QualityMonitor monitor(QualityOptions{.warmup = 16});
  for (int i = 0; i < 2000; ++i) {
    monitor.observe(static_cast<float>(i % 10), false, false);
    monitor.observe(100.0F + static_cast<float>(i % 10), true, true);
  }
  const auto snap = monitor.snapshot();
  EXPECT_TRUE(snap.binned);
  EXPECT_NEAR(snap.auroc, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(snap.precision, 1.0);
  EXPECT_DOUBLE_EQ(snap.recall, 1.0);
}

TEST(QualityMonitor, PrecisionRecallCountFlagsAtTheDeployedThreshold) {
  QualityMonitor monitor(QualityOptions{.warmup = 4});
  // 10 positives: 7 flagged (TP), 3 missed. 20 negatives: 5 flagged (FP).
  for (int i = 0; i < 10; ++i) monitor.observe(2.0F, true, i < 7);
  for (int i = 0; i < 20; ++i) monitor.observe(-1.0F, false, i < 5);
  const auto snap = monitor.snapshot();
  EXPECT_EQ(snap.positives, 10U);
  EXPECT_EQ(snap.negatives, 20U);
  EXPECT_EQ(snap.flagged_positives, 7U);
  EXPECT_EQ(snap.flagged_negatives, 5U);
  EXPECT_DOUBLE_EQ(snap.precision, 7.0 / 12.0);
  EXPECT_DOUBLE_EQ(snap.recall, 0.7);
}

TEST(QualityMonitor, EmptyClassYieldsNeutralAuroc) {
  QualityMonitor monitor;
  const auto empty = monitor.snapshot();
  EXPECT_DOUBLE_EQ(empty.auroc, 0.5);
  EXPECT_DOUBLE_EQ(empty.precision, 0.0);
  EXPECT_DOUBLE_EQ(empty.recall, 0.0);

  for (int i = 0; i < 100; ++i) monitor.observe(0.1F * static_cast<float>(i), false, false);
  const auto only_neg = monitor.snapshot();
  EXPECT_EQ(only_neg.negatives, 100U);
  EXPECT_EQ(only_neg.positives, 0U);
  EXPECT_DOUBLE_EQ(only_neg.auroc, 0.5);
}

TEST(QualityMonitor, OutOfRangeAndNanScoresLandInOverflowBinsWithoutCrashing) {
  QualityMonitor monitor(QualityOptions{.warmup = 8});
  // Freeze the bins around [0, 1]...
  for (int i = 0; i < 16; ++i) {
    monitor.observe(static_cast<float>(i % 2), i % 2 == 1, false);
  }
  ASSERT_TRUE(monitor.snapshot().binned);
  // ...then feed values far outside the frozen range plus a NaN.
  monitor.observe(1e9F, true, true);
  monitor.observe(-1e9F, false, false);
  monitor.observe(std::nanf(""), false, false);
  const auto snap = monitor.snapshot();
  EXPECT_EQ(snap.positives, 9U);
  EXPECT_EQ(snap.negatives, 10U);
  EXPECT_TRUE(std::isfinite(snap.auroc));
  EXPECT_GE(snap.auroc, 0.0);
  EXPECT_LE(snap.auroc, 1.0);
}

TEST(QualityMonitor, ConcurrentObserversNeverLoseCounts) {
  QualityMonitor monitor(QualityOptions{.warmup = 64});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&monitor, t] {
      std::mt19937 rng(static_cast<unsigned>(100 + t));
      std::normal_distribution<float> dn(0.0F, 1.0F);
      std::normal_distribution<float> dp(1.5F, 1.0F);
      for (int i = 0; i < kPerThread; ++i) {
        const bool positive = (i % 2) == 0;
        const float score = positive ? dp(rng) : dn(rng);
        monitor.observe(score, positive, score > 0.75F);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = monitor.snapshot();
  EXPECT_EQ(snap.positives, static_cast<std::uint64_t>(kThreads) * kPerThread / 2);
  EXPECT_EQ(snap.negatives, static_cast<std::uint64_t>(kThreads) * kPerThread / 2);
  EXPECT_TRUE(std::isfinite(snap.auroc));
  EXPECT_GT(snap.auroc, 0.7);  // well-separated normals
  EXPECT_LE(snap.flagged_positives, snap.positives);
  EXPECT_LE(snap.flagged_negatives, snap.negatives);
}

TEST(QualityMonitor, ResetReturnsToExactWarmup) {
  QualityMonitor monitor(QualityOptions{.warmup = 8});
  for (int i = 0; i < 100; ++i) monitor.observe(static_cast<float>(i), i % 2 == 0, false);
  ASSERT_TRUE(monitor.snapshot().binned);
  monitor.reset();
  const auto snap = monitor.snapshot();
  EXPECT_FALSE(snap.binned);
  EXPECT_EQ(snap.positives, 0U);
  EXPECT_EQ(snap.negatives, 0U);
  EXPECT_DOUBLE_EQ(snap.auroc, 0.5);
  // Usable again after reset.
  monitor.observe(1.0F, true, true);
  monitor.observe(0.0F, false, false);
  EXPECT_DOUBLE_EQ(monitor.snapshot().auroc, 1.0);
}

TEST(QualityMonitor, PublishMetricsWritesTheQualityGauges) {
  vehigan::telemetry::set_enabled(true);
  QualityMonitor monitor(QualityOptions{.warmup = 4});
  for (int i = 0; i < 10; ++i) monitor.observe(2.0F, true, true);
  for (int i = 0; i < 30; ++i) monitor.observe(-2.0F, false, false);
  monitor.publish_metrics();
  auto& registry = vehigan::telemetry::MetricsRegistry::global();
  EXPECT_DOUBLE_EQ(registry.gauge("vehigan_quality_auroc").value(), 1.0);
  EXPECT_DOUBLE_EQ(registry.gauge("vehigan_quality_precision").value(), 1.0);
  EXPECT_DOUBLE_EQ(registry.gauge("vehigan_quality_recall").value(), 1.0);
  EXPECT_DOUBLE_EQ(registry.gauge("vehigan_quality_positives").value(), 10.0);
  EXPECT_DOUBLE_EQ(registry.gauge("vehigan_quality_negatives").value(), 30.0);
  EXPECT_DOUBLE_EQ(registry.gauge("vehigan_quality_flagged").value(), 10.0);
}
