#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>

#include "gan/architecture.hpp"
#include "gan/model_store.hpp"
#include "gan/wgan.hpp"
#include "test_utils.hpp"

namespace vehigan::gan {
namespace {

// ----------------------------------------------------------------- grid ----

TEST(Grid, HasSixtyUniqueConfigs) {
  const auto grid = default_grid();
  EXPECT_EQ(grid.size(), 60U);
  std::set<std::string> names;
  std::set<int> ids;
  for (const auto& cfg : grid) {
    names.insert(cfg.name());
    ids.insert(cfg.id);
  }
  EXPECT_EQ(names.size(), 60U);
  EXPECT_EQ(ids.size(), 60U);
  EXPECT_EQ(*ids.begin(), 0);
  EXPECT_EQ(*ids.rbegin(), 59);
}

TEST(Grid, CoversPaperHyperparameterAxes) {
  const auto grid = default_grid();
  std::set<std::size_t> z_dims;
  std::set<int> layers;
  std::set<int> epochs;
  for (const auto& cfg : grid) {
    z_dims.insert(cfg.z_dim);
    layers.insert(cfg.layers);
    epochs.insert(cfg.paper_epochs);
  }
  EXPECT_EQ(z_dims, (std::set<std::size_t>{8, 16, 32, 48, 64}));
  EXPECT_EQ(layers, (std::set<int>{6, 7, 8}));
  EXPECT_EQ(epochs, (std::set<int>{25, 50, 75, 100}));
}

TEST(Grid, EpochScaleMapsTiers) {
  const auto grid = default_grid(GridScale{0.08});
  for (const auto& cfg : grid) {
    EXPECT_EQ(cfg.train_epochs, std::max(1, static_cast<int>(std::lround(cfg.paper_epochs * 0.08))));
  }
}

TEST(Grid, NameEncodesHyperparameters) {
  WganConfig cfg;
  cfg.z_dim = 48;
  cfg.layers = 7;
  cfg.paper_epochs = 75;
  EXPECT_EQ(cfg.name(), "wgan_z48_l7_e75");
}

// -------------------------------------------------------- architectures ----

class ArchitectureTest : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(ArchitectureTest, GeneratorMapsNoiseToSnapshot) {
  WganConfig cfg;
  cfg.z_dim = std::get<0>(GetParam());
  cfg.layers = std::get<1>(GetParam());
  util::Rng rng(1);
  nn::Sequential g = build_generator(cfg, rng);
  nn::Tensor z({3, cfg.z_dim});
  vehigan::testing::fill_uniform(z, rng);
  const nn::Tensor x = g.forward(z);
  EXPECT_EQ(x.shape(), (std::vector<std::size_t>{3, 1, cfg.window, cfg.width}));
  // Sigmoid head: outputs in [0, 1].
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_GE(x[i], 0.0F);
    EXPECT_LE(x[i], 1.0F);
  }
}

TEST_P(ArchitectureTest, DiscriminatorMapsSnapshotToScalar) {
  WganConfig cfg;
  cfg.z_dim = std::get<0>(GetParam());
  cfg.layers = std::get<1>(GetParam());
  util::Rng rng(2);
  nn::Sequential d = build_discriminator(cfg, rng);
  nn::Tensor x({4, 1, cfg.window, cfg.width});
  vehigan::testing::fill_uniform(x, rng, 0.0F, 1.0F);
  const nn::Tensor y = d.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{4, 1}));
}

INSTANTIATE_TEST_SUITE_P(Shapes, ArchitectureTest,
                         ::testing::Combine(::testing::Values(8, 32, 64),
                                            ::testing::Values(6, 7, 8)));

TEST(Architecture, DeconvGeneratorMatchesOutputContract) {
  WganConfig cfg;
  cfg.z_dim = 16;
  cfg.layers = 7;
  util::Rng rng(9);
  nn::Sequential g = build_generator_deconv(cfg, rng);
  nn::Tensor z({2, cfg.z_dim});
  vehigan::testing::fill_uniform(z, rng);
  const nn::Tensor x = g.forward(z);
  EXPECT_EQ(x.shape(), (std::vector<std::size_t>{2, 1, cfg.window, cfg.width}));
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_GE(x[i], 0.0F);
    EXPECT_LE(x[i], 1.0F);
  }
}

TEST(Architecture, DeeperConfigsHaveMoreLayers) {
  util::Rng rng(3);
  WganConfig c6, c8;
  c6.layers = 6;
  c8.layers = 8;
  EXPECT_GT(build_discriminator(c8, rng).layer_count(),
            build_discriminator(c6, rng).layer_count());
  EXPECT_GT(build_generator(c8, rng).layer_count(), build_generator(c6, rng).layer_count());
}

TEST(Architecture, RejectsOutOfRangeDepth) {
  util::Rng rng(4);
  WganConfig bad;
  bad.layers = 5;
  EXPECT_THROW(build_generator(bad, rng), std::invalid_argument);
  EXPECT_THROW(build_discriminator(bad, rng), std::invalid_argument);
}

// ------------------------------------------------------------- trainer -----

/// Synthetic benign windows: smooth low-amplitude patterns in [0.3, 0.7].
features::WindowSet synthetic_windows(std::size_t count, std::size_t window = 10,
                                      std::size_t width = 12, std::uint64_t seed = 5) {
  util::Rng rng(seed);
  features::WindowSet set;
  set.window = window;
  set.width = width;
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<float> snap(window * width);
    const float phase = rng.uniform_f(0.0F, 6.28F);
    for (std::size_t t = 0; t < window; ++t) {
      for (std::size_t f = 0; f < width; ++f) {
        snap[t * width + f] =
            0.5F + 0.2F * std::sin(phase + 0.3F * static_cast<float>(t + f)) +
            rng.normal_f(0.0F, 0.01F);
      }
    }
    set.append(snap, static_cast<std::uint32_t>(i));
  }
  return set;
}

WganConfig tiny_config() {
  WganConfig cfg;
  cfg.id = 0;
  cfg.z_dim = 8;
  cfg.layers = 6;
  cfg.train_epochs = 2;
  return cfg;
}

TEST(WganTrainer, TrainsAndRecordsHistory) {
  TrainOptions opts;
  opts.batch_size = 16;
  const auto windows = synthetic_windows(128);
  const TrainedWgan model = WganTrainer(opts).train(tiny_config(), windows);
  EXPECT_EQ(model.history.size(), 2U);
  for (const auto& epoch : model.history) {
    EXPECT_TRUE(std::isfinite(epoch.critic_loss));
    EXPECT_TRUE(std::isfinite(epoch.generator_loss));
  }
}

TEST(WganTrainer, WeightClippingKeepsCriticParametersBounded) {
  TrainOptions opts;
  opts.batch_size = 16;
  opts.clip_value = 0.02F;
  const auto windows = synthetic_windows(96);
  TrainedWgan model = WganTrainer(opts).train(tiny_config(), windows);
  for (auto& param : model.discriminator.parameters()) {
    for (float v : *param.values) {
      EXPECT_LE(std::abs(v), 0.02F + 1e-6F);
    }
  }
}

TEST(WganTrainer, IsDeterministicGivenSeeds) {
  TrainOptions opts;
  opts.batch_size = 16;
  const auto windows = synthetic_windows(96);
  TrainedWgan a = WganTrainer(opts).train(tiny_config(), windows);
  TrainedWgan b = WganTrainer(opts).train(tiny_config(), windows);
  nn::Tensor x({1, 1, 10, 12});
  util::Rng rng(9);
  vehigan::testing::fill_uniform(x, rng, 0.0F, 1.0F);
  EXPECT_FLOAT_EQ(a.discriminator.forward(x)[0], b.discriminator.forward(x)[0]);
}

TEST(WganTrainer, DifferentGridIdsProduceDifferentModels) {
  TrainOptions opts;
  opts.batch_size = 16;
  const auto windows = synthetic_windows(96);
  WganConfig c0 = tiny_config();
  WganConfig c1 = tiny_config();
  c1.id = 1;
  TrainedWgan a = WganTrainer(opts).train(c0, windows);
  TrainedWgan b = WganTrainer(opts).train(c1, windows);
  nn::Tensor x({1, 1, 10, 12});
  util::Rng rng(9);
  vehigan::testing::fill_uniform(x, rng, 0.0F, 1.0F);
  EXPECT_NE(a.discriminator.forward(x)[0], b.discriminator.forward(x)[0]);
}

TEST(WganTrainer, CriticSeparatesRealFromFarOffNoiseAfterTraining) {
  // Not a strict guarantee of WGANs in general, but on this synthetic set a
  // trained critic reliably scores in-manifold data higher than extreme
  // outliers; this is the anomaly-detection property VehiGAN relies on.
  TrainOptions opts;
  opts.batch_size = 32;
  WganConfig cfg = tiny_config();
  cfg.train_epochs = 8;
  const auto windows = synthetic_windows(512);
  TrainedWgan model = WganTrainer(opts).train(cfg, windows);

  double real_mean = 0.0;
  for (std::size_t i = 0; i < 50; ++i) {
    real_mean += nn::forward_scalar(model.discriminator, windows.snapshot(i), 10, 12);
  }
  real_mean /= 50.0;

  util::Rng rng(6);
  double noise_mean = 0.0;
  for (std::size_t i = 0; i < 50; ++i) {
    std::vector<float> junk(120);
    for (auto& v : junk) v = rng.uniform_f(-20.0F, 20.0F);
    noise_mean += nn::forward_scalar(model.discriminator, junk, 10, 12);
  }
  noise_mean /= 50.0;
  EXPECT_GT(real_mean, noise_mean);
}

TEST(WganTrainer, GradientPenaltyModeTrainsWithoutClipping) {
  TrainOptions opts;
  opts.batch_size = 16;
  opts.reg = Regularization::kGradientPenalty;
  const auto windows = synthetic_windows(96);
  TrainedWgan model = WganTrainer(opts).train(tiny_config(), windows);
  // GP mode must leave at least some weights beyond the clipping bound —
  // i.e. clipping really was off — and training must stay finite.
  bool any_large = false;
  for (auto& param : model.discriminator.parameters()) {
    for (float v : *param.values) {
      ASSERT_TRUE(std::isfinite(v));
      if (std::abs(v) > TrainOptions{}.clip_value) any_large = true;
    }
  }
  EXPECT_TRUE(any_large);
}

TEST(WganTrainer, RejectsUndersizedDatasets) {
  TrainOptions opts;
  opts.batch_size = 64;
  const auto windows = synthetic_windows(10);
  EXPECT_THROW(WganTrainer(opts).train(tiny_config(), windows), std::invalid_argument);
}

TEST(WganTrainer, SampleProducesRequestedSnapshots) {
  TrainOptions opts;
  opts.batch_size = 16;
  const auto windows = synthetic_windows(64);
  TrainedWgan model = WganTrainer(opts).train(tiny_config(), windows);
  util::Rng rng(11);
  const auto fakes = WganTrainer::sample(model, 7, rng);
  EXPECT_EQ(fakes.count(), 7U);
  EXPECT_EQ(fakes.window, 10U);
  EXPECT_EQ(fakes.width, 12U);
  for (float v : fakes.data) {
    EXPECT_GE(v, 0.0F);
    EXPECT_LE(v, 1.0F);
  }
}

// ----------------------------------------------------------- model store ---

TEST(ModelStore, SaveLoadRoundTripsModelAndMetadata) {
  TrainOptions opts;
  opts.batch_size = 16;
  const auto windows = synthetic_windows(64);
  WganConfig cfg = tiny_config();
  cfg.id = 42;
  cfg.paper_epochs = 75;
  TrainedWgan model = WganTrainer(opts).train(cfg, windows);

  const auto path = std::filesystem::temp_directory_path() / "vehigan_model_test.bin";
  save_wgan(model, path);
  TrainedWgan loaded = load_wgan(path);
  EXPECT_EQ(loaded.config.id, 42);
  EXPECT_EQ(loaded.config.paper_epochs, 75);
  EXPECT_EQ(loaded.history.size(), model.history.size());

  nn::Tensor x({1, 1, 10, 12});
  util::Rng rng(3);
  vehigan::testing::fill_uniform(x, rng, 0.0F, 1.0F);
  EXPECT_FLOAT_EQ(loaded.discriminator.forward(x)[0], model.discriminator.forward(x)[0]);
  nn::Tensor z({1, cfg.z_dim});
  vehigan::testing::fill_uniform(z, rng);
  EXPECT_FLOAT_EQ(loaded.generator.forward(z)[0], model.generator.forward(z)[0]);
  std::filesystem::remove(path);
}

TEST(ModelStore, LoadRejectsMissingOrCorruptFiles) {
  EXPECT_THROW(load_wgan("/nonexistent/model.bin"), std::runtime_error);
  const auto path = std::filesystem::temp_directory_path() / "vehigan_corrupt.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "garbage";
  }
  EXPECT_THROW(load_wgan(path), std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace vehigan::gan
