// Flight recorder: seqlock ring exactness (wraparound, concurrent writers
// under TSan), on-demand/async-signal-safe dumps, and the crash post-mortem
// via a real child process dying by SIGSEGV/SIGABRT (the cache_proc
// helper-process pattern).
#include "telemetry/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__)
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "telemetry/metrics.hpp"
#include "telemetry/trace_context.hpp"

namespace vehigan {
namespace {

namespace fs = std::filesystem;
using telemetry::FlightEvent;
using telemetry::FlightEventKind;
using telemetry::FlightRecorder;

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::set_enabled(true);
    FlightRecorder::global().set_enabled(true);
    FlightRecorder::global().clear();
    root_ = fs::temp_directory_path() / "vehigan_flight_recorder_test" /
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override {
    FlightRecorder::global().set_dump_path("");
    FlightRecorder::global().clear();
    fs::remove_all(root_);
  }

  fs::path root_;
};

/// All consistent events for one station, across every registered ring.
std::vector<FlightEvent> events_for_station(std::uint32_t station) {
  std::vector<FlightEvent> out;
  for (const auto& ring : FlightRecorder::global().snapshot()) {
    for (const FlightEvent& event : ring) {
      if (event.station_id == station) out.push_back(event);
    }
  }
  return out;
}

TEST_F(FlightRecorderTest, RecordAndSnapshotRoundTrip) {
  const std::uint32_t station = 5100;
  const std::uint64_t trace = telemetry::trace_id_of(station, 12.5);
  FlightRecorder::record(FlightEventKind::kEnqueue, station, trace, 3);
  FlightRecorder::record(FlightEventKind::kScore, station, trace, 77);
  FlightRecorder::record(FlightEventKind::kDecide, station, trace, 1);

  const auto events = events_for_station(station);
  ASSERT_EQ(events.size(), 3U);
  EXPECT_EQ(events[0].kind, FlightEventKind::kEnqueue);
  EXPECT_EQ(events[0].value, 3U);
  EXPECT_EQ(events[1].kind, FlightEventKind::kScore);
  EXPECT_EQ(events[1].value, 77U);
  EXPECT_EQ(events[2].kind, FlightEventKind::kDecide);
  EXPECT_EQ(events[2].value, 1U);
  for (const FlightEvent& event : events) EXPECT_EQ(event.trace_id, trace);
  // Monotonic stamps and sequence numbers, in recording order.
  EXPECT_LE(events[0].mono_ns, events[1].mono_ns);
  EXPECT_LE(events[1].mono_ns, events[2].mono_ns);
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LT(events[1].seq, events[2].seq);
}

TEST_F(FlightRecorderTest, WraparoundKeepsOnlyTheMostRecentCapacityEvents) {
  const std::uint32_t station = 5200;
  constexpr std::uint64_t kExtra = 100;
  constexpr std::uint64_t kTotal = FlightRecorder::kRingCapacity + kExtra;
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    FlightRecorder::record(FlightEventKind::kMark, station, 0, i);
  }
  const auto events = events_for_station(station);
  ASSERT_EQ(events.size(), FlightRecorder::kRingCapacity);
  // The first kExtra events were overwritten; survivors keep value == seq.
  EXPECT_EQ(events.front().seq, kExtra);
  EXPECT_EQ(events.back().seq, kTotal - 1);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, kExtra + i);
    EXPECT_EQ(events[i].value, events[i].seq) << "torn or misattributed slot";
  }
}

TEST_F(FlightRecorderTest, ConcurrentWritersStaySelfConsistentUnderSnapshots) {
  // Each writer thread owns its ring; value == seq is a per-ring invariant
  // that any torn read would break. A snapshot thread hammers the rings
  // while writers run (the TSan bar), then a final quiescent snapshot
  // checks exactness.
  constexpr std::size_t kWriters = 4;
  constexpr std::uint64_t kEvents = 1500;  // < capacity: nothing overwritten
  static_assert(kEvents < FlightRecorder::kRingCapacity);
  const std::uint32_t base_station = 5300;

  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load()) {
      for (const auto& ring : FlightRecorder::global().snapshot()) {
        for (const FlightEvent& event : ring) {
          if (event.station_id < base_station ||
              event.station_id >= base_station + kWriters) {
            continue;
          }
          EXPECT_EQ(event.value, event.seq) << "torn slot surfaced by snapshot";
          EXPECT_EQ(event.kind, FlightEventKind::kMark);
        }
      }
    }
  });

  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      const auto station = static_cast<std::uint32_t>(base_station + w);
      for (std::uint64_t i = 0; i < kEvents; ++i) {
        FlightRecorder::record(FlightEventKind::kMark, station, w + 1, i);
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true);
  reader.join();

  for (std::size_t w = 0; w < kWriters; ++w) {
    const auto events = events_for_station(static_cast<std::uint32_t>(base_station + w));
    ASSERT_EQ(events.size(), kEvents) << "writer " << w << " lost events";
    for (std::uint64_t i = 0; i < kEvents; ++i) {
      EXPECT_EQ(events[i].seq, i);
      EXPECT_EQ(events[i].value, i);
      EXPECT_EQ(events[i].trace_id, w + 1);
    }
  }
}

TEST_F(FlightRecorderTest, KillSwitchAndRecorderDisableSilenceRecording) {
  const std::uint32_t station = 5400;
  telemetry::set_enabled(false);
  FlightRecorder::record(FlightEventKind::kMark, station, 0, 1);
  telemetry::set_enabled(true);
  FlightRecorder::global().set_enabled(false);
  FlightRecorder::record(FlightEventKind::kMark, station, 0, 2);
  FlightRecorder::global().set_enabled(true);
  EXPECT_TRUE(events_for_station(station).empty());
  FlightRecorder::record(FlightEventKind::kMark, station, 0, 3);
  EXPECT_EQ(events_for_station(station).size(), 1U);
}

TEST_F(FlightRecorderTest, DumpWritesParseableAtomicFile) {
  const std::uint32_t station = 5500;
  const std::uint64_t trace = telemetry::trace_id_of(station, 1.0);
  FlightRecorder::record(FlightEventKind::kEnqueue, station, trace, 2);
  FlightRecorder::record(FlightEventKind::kReport, station, trace, 9);

  const fs::path path = root_ / "blackbox.txt";
  ASSERT_TRUE(FlightRecorder::global().dump(path));
  ASSERT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(root_ / "blackbox.txt.tmp")) << "tmp file not renamed away";

  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "# vehigan flight recorder dump");
  std::size_t enqueue_lines = 0, report_lines = 0;
  const std::string station_token = "station=" + std::to_string(station);
  while (std::getline(in, line)) {
    if (line.find(station_token) == std::string::npos) continue;
    if (line.find("kind=enqueue") != std::string::npos) ++enqueue_lines;
    if (line.find("kind=report") != std::string::npos) ++report_lines;
    EXPECT_NE(line.find("trace="), std::string::npos);
    EXPECT_NE(line.find("ns="), std::string::npos);
  }
  EXPECT_EQ(enqueue_lines, 1U);
  EXPECT_EQ(report_lines, 1U);
}

TEST_F(FlightRecorderTest, DumpIfConfiguredUsesTheArmedPath) {
  EXPECT_FALSE(FlightRecorder::global().dump_if_configured()) << "no path armed yet";
  const fs::path path = root_ / "armed.txt";
  FlightRecorder::global().set_dump_path(path.string());
  FlightRecorder::record(FlightEventKind::kStop, 5600, 0, 42);
  EXPECT_TRUE(FlightRecorder::global().dump_if_configured());
  EXPECT_TRUE(fs::exists(path));
}

#if defined(__unix__)

fs::path helper_path() {
  // The helper binary is built next to this test executable.
  return fs::read_symlink("/proc/self/exe").parent_path() / "crash_proc";
}

pid_t spawn(const std::vector<std::string>& args) {
  std::vector<const char*> argv;
  argv.reserve(args.size() + 1);
  for (const auto& a : args) argv.push_back(a.c_str());
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(argv[0], const_cast<char* const*>(argv.data()));
    _exit(127);  // exec failed
  }
  return pid;
}

int wait_exit_code(pid_t pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CrashDumpTest : public FlightRecorderTest {
 protected:
  void SetUp() override {
    FlightRecorderTest::SetUp();
    ASSERT_TRUE(fs::exists(helper_path()))
        << helper_path() << " missing — build the crash_proc target";
  }

  void expect_post_mortem(const std::string& mode, int expected_signal) {
    const fs::path dump = root_ / (mode + ".dump");
    const pid_t pid = spawn({helper_path().string(), dump.string(), mode});
    ASSERT_GT(pid, 0);
    EXPECT_EQ(wait_exit_code(pid), -expected_signal)
        << "helper must die by the original signal after dumping";
    ASSERT_TRUE(fs::exists(dump)) << "no post-mortem dump from the " << mode << " handler";
    const std::string text = slurp(dump);
    EXPECT_NE(text.find("# vehigan flight recorder dump"), std::string::npos);
    EXPECT_NE(text.find("station=9000"), std::string::npos);
    EXPECT_NE(text.find("station=9099"), std::string::npos);
    EXPECT_NE(text.find("kind=enqueue"), std::string::npos);
    EXPECT_NE(text.find("kind=score"), std::string::npos);
  }
};

TEST_F(CrashDumpTest, SigsegvLeavesPostMortemDump) { expect_post_mortem("segv", SIGSEGV); }

TEST_F(CrashDumpTest, SigabrtLeavesPostMortemDump) { expect_post_mortem("abort", SIGABRT); }

// Satellite of the profiler PR: a SIGSEGV landing *while the sampling
// profiler is firing SIGPROF* must still leave a parseable flight-recorder
// post-mortem AND the cached statusz snapshot (the crash handler blocks
// SIGPROF and writes the pre-rendered statusz with open/write/rename only).
TEST_F(CrashDumpTest, SigsegvWhileProfilingLeavesBothDumps) {
  const fs::path dump = root_ / "profiled.dump";
  const fs::path statusz = root_ / "profiled.dump.statusz";
  const pid_t pid = spawn({helper_path().string(), dump.string(), "segv-profiled"});
  ASSERT_GT(pid, 0);
  EXPECT_EQ(wait_exit_code(pid), -SIGSEGV)
      << "helper must die by the original signal after dumping";
  ASSERT_TRUE(fs::exists(dump)) << "no flight-recorder post-mortem while profiling";
  const std::string text = slurp(dump);
  EXPECT_NE(text.find("# vehigan flight recorder dump"), std::string::npos);
  EXPECT_NE(text.find("station=9000"), std::string::npos);
  EXPECT_NE(text.find("kind=enqueue"), std::string::npos);
  ASSERT_TRUE(fs::exists(statusz)) << "no statusz crash dump while profiling";
  const std::string snap = slurp(statusz);
  EXPECT_NE(snap.find("# dumped from crash handler"), std::string::npos);
  EXPECT_NE(snap.find("# vehigan statusz"), std::string::npos);
  EXPECT_NE(snap.find("[profiler]"), std::string::npos);
  EXPECT_NE(snap.find("running: true"), std::string::npos);
}

TEST_F(CrashDumpTest, CleanExitLeavesNoDump) {
  const fs::path dump = root_ / "none.dump";
  const pid_t pid = spawn({helper_path().string(), dump.string(), "none"});
  ASSERT_GT(pid, 0);
  EXPECT_EQ(wait_exit_code(pid), 0);
  EXPECT_FALSE(fs::exists(dump));
}

#endif  // __unix__

}  // namespace
}  // namespace vehigan
